package idaax

// Serving-layer acceptance tests: the wire protocol end-to-end over a real
// socket, admission control under saturation, session reaping and graceful
// drain, a concurrent-clients-during-rebalance stress (run with -race in CI),
// a goroutine-leak regression on shutdown, and the Close-ordering durability
// regression — an acknowledged wire commit must survive a shutdown that
// races in-flight traffic, verified with the crash-simulating filesystem.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idaax/internal/testutil/crashfs"
	"idaax/internal/wire"
)

// startWireSystem builds an in-memory fleet and a wire server on a loopback
// port, returning both plus a cleanup-registered address.
func startWireSystem(t *testing.T, n int, cfg ServeConfig) (*System, *WireServer) {
	t.Helper()
	sys := New(memoryConfig(n))
	t.Cleanup(func() { sys.Close() })
	cfg.Addr = "127.0.0.1:0"
	srv, err := sys.ServeWire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv
}

// TestWireEndToEnd drives DDL, DML, a query, a streamed query and an explicit
// transaction through the wire protocol against a real engine.
func TestWireEndToEnd(t *testing.T) {
	_, srv := startWireSystem(t, 1, ServeConfig{DefaultUser: "SYSADM"})
	c := wire.NewClient(srv.Addr(), nil)
	if err := c.OpenSession(); err != nil {
		t.Fatal(err)
	}
	defer c.CloseSession()

	if _, err := c.Exec("CREATE TABLE wt (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("INSERT INTO wt VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("rows affected = %d, want 3", res.RowsAffected)
	}
	q, err := c.Query("SELECT k, v FROM wt WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 1 || q.Rows[0][0] != "2" {
		t.Fatalf("query result = %+v", q.Rows)
	}
	if q.Routed == "" {
		t.Fatal("routed missing from wire result")
	}

	// Streamed framing over a real result set.
	var streamed int
	sres, err := c.QueryStream("SELECT k, v FROM wt", 2, func(rows [][]string) error {
		streamed += len(rows)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != 3 || len(sres.Columns) != 2 {
		t.Fatalf("streamed %d rows, columns %v", streamed, sres.Columns)
	}

	// An explicit transaction spanning requests, rolled back.
	for _, stmt := range []string{"BEGIN", "INSERT INTO wt VALUES (9, 9.5)", "ROLLBACK"} {
		if _, err := c.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	q, err = c.Query("SELECT COUNT(*) FROM wt")
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows[0][0] != "3" {
		t.Fatalf("rolled-back insert visible: count = %s", q.Rows[0][0])
	}
}

// TestWireSaturationShedsAndPrioritises proves the serving layer under
// saturation: queue-depth fast-fails surface as 429s while admitted work
// completes, and the admission metrics land in /metrics.
func TestWireSaturationShedsAndPrioritises(t *testing.T) {
	sys, srv := startWireSystem(t, 1, ServeConfig{
		DefaultUser:    "SYSADM",
		AdmissionSlots: 1,
		AdmissionQueue: 1,
	})
	admin := sys.AdminSession()
	admin.MustExec("CREATE TABLE sat (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	for i := 0; i < 8000; i += 200 {
		var vals []string
		for j := i; j < i+200; j++ {
			vals = append(vals, fmt.Sprintf("(%d, %d.5)", j, j))
		}
		admin.MustExec("INSERT INTO sat VALUES " + strings.Join(vals, ", "))
	}

	// One slot, a one-deep queue, and 24 pre-warmed connections looping
	// aggregates: far more demand than slots+queue can hold, so a healthy
	// fraction must be fast-failed.
	const clients = 24
	conns := make([]*wire.Client, clients)
	for i := range conns {
		conns[i] = wire.NewClient(srv.Addr(), nil)
		conns[i].SetPriority("batch")
		if _, err := conns[i].Query("SELECT COUNT(*) FROM sat WHERE k = 1"); err != nil {
			t.Fatal(err)
		}
	}
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, c := range conns {
		wg.Add(1)
		go func(c *wire.Client) {
			defer wg.Done()
			<-start
			for iter := 0; iter < 10; iter++ {
				_, err := c.Query("SELECT COUNT(*), SUM(v) FROM sat")
				switch {
				case err == nil:
					ok.Add(1)
				case wire.IsShed(err):
					shed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request completed under saturation")
	}
	if shed.Load() == 0 {
		t.Fatal("no request was shed with slots=1 queue=1 and 24 looping clients")
	}
	st := srv.AdmissionStats()
	if st.Shed[1] != shed.Load() {
		t.Fatalf("controller shed %d, clients saw %d", st.Shed[1], shed.Load())
	}
	text := sys.MetricsText()
	for _, m := range []string{"admission_shed_batch", "admission_admitted_batch", "wire_requests_total"} {
		if !strings.Contains(text, m) {
			t.Errorf("/metrics missing %s", m)
		}
	}
	// The shed burst must have journaled shed + saturation events.
	evs, err := sys.Events(0, "WARN")
	if err != nil {
		t.Fatal(err)
	}
	var sawShed bool
	for _, e := range evs {
		if e.Type == "admission_shed" {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatal("no admission_shed event journaled")
	}
}

// TestWireQueueWaitInTrace proves admission queue time shows up in the
// statement trace via the query history.
func TestWireQueueWaitInTrace(t *testing.T) {
	sys, srv := startWireSystem(t, 1, ServeConfig{
		DefaultUser:    "SYSADM",
		AdmissionSlots: 1,
		AdmissionQueue: 64,
	})
	sys.SetSlowQueryThreshold(time.Nanosecond) // every statement records its trace
	admin := sys.AdminSession()
	admin.MustExec("CREATE TABLE qw (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	for i := 0; i < 4000; i += 200 {
		var vals []string
		for j := i; j < i+200; j++ {
			vals = append(vals, fmt.Sprintf("(%d, %d.5)", j, j))
		}
		admin.MustExec("INSERT INTO qw VALUES " + strings.Join(vals, ", "))
	}

	// One slot and a burst of aggregates from pre-warmed connections: most
	// statements must spend real time in the admission queue.
	const clients = 12
	conns := make([]*wire.Client, clients)
	for i := range conns {
		conns[i] = wire.NewClient(srv.Addr(), nil)
		if _, err := conns[i].Query("SELECT COUNT(*) FROM qw WHERE k = 1"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, c := range conns {
		wg.Add(1)
		go func(c *wire.Client) {
			defer wg.Done()
			<-start
			for iter := 0; iter < 3; iter++ {
				if _, err := c.Query("SELECT COUNT(*), SUM(v) FROM qw"); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(c)
	}
	close(start)
	wg.Wait()
	var found bool
	for _, rec := range sys.QueryHistory(0) {
		if strings.Contains(rec.Trace, "admission_queue") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no statement trace contains an admission_queue span")
	}
}

// TestWireSessionReapAndDrain proves the system-level pool behaviour: idle
// sessions are reaped with their transactions rolled back, and Close drains.
func TestWireSessionReapAndDrain(t *testing.T) {
	sys, srv := startWireSystem(t, 1, ServeConfig{
		DefaultUser: "SYSADM",
		IdleTimeout: 50 * time.Millisecond,
	})
	admin := sys.AdminSession()
	admin.MustExec("CREATE TABLE rp (k BIGINT) IN ACCELERATOR IDAA1")

	c := wire.NewClient(srv.Addr(), nil)
	if err := c.OpenSession(); err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{"BEGIN", "INSERT INTO rp VALUES (1)"} {
		if _, err := c.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon the session; the reaper must roll the transaction back.
	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.SessionCount() != 0 {
		t.Fatal("idle session never reaped")
	}
	res, err := admin.Query("SELECT COUNT(*) FROM rp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "0" {
		t.Fatalf("reap did not roll back: count = %s", res.Rows[0][0])
	}

	// Close drains: afterwards the port rejects connections.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.NewClient(srv.Addr(), nil).Query("SELECT 1"); err == nil {
		t.Fatal("server still serving after System.Close")
	}
}

// TestWireConcurrentClientsWithRebalance is the -race stress: 200+ concurrent
// wire clients mixing reads, writes and transactions while a shard member
// joins and the group rebalances live. Every response must be correct and the
// fleet must converge.
func TestWireConcurrentClientsWithRebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys, srv := startWireSystem(t, 3, ServeConfig{
		DefaultUser:    "SYSADM",
		AdmissionSlots: runtime.NumCPU() * 2,
		AdmissionQueue: 4096,
	})
	admin := sys.AdminSession()
	admin.MustExec("CREATE TABLE st (k BIGINT, grp BIGINT, v DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(k)")
	const seed = 3000
	for i := 0; i < seed; i += 200 {
		var vals []string
		for j := i; j < i+200; j++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d.5)", j, j%10, j))
		}
		admin.MustExec("INSERT INTO st VALUES " + strings.Join(vals, ", "))
	}

	const clients = 210
	var inserted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := wire.NewClient(srv.Addr(), nil)
			if id%2 == 0 {
				c.SetPriority("batch")
			}
			<-start
			for iter := 0; iter < 4; iter++ {
				switch (id + iter) % 3 {
				case 0: // point read
					k := (id*7 + iter) % seed
					res, err := c.Query(fmt.Sprintf("SELECT v FROM st WHERE k = %d", k))
					if err != nil {
						t.Errorf("point read: %v", err)
						return
					}
					if len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprintf("%d.5", k) {
						t.Errorf("point read k=%d got %+v", k, res.Rows)
						return
					}
				case 1: // aggregate
					if _, err := c.Query("SELECT grp, COUNT(*) FROM st GROUP BY grp"); err != nil {
						t.Errorf("aggregate: %v", err)
						return
					}
				case 2: // transactional insert on a pooled session
					tc := wire.NewClient(srv.Addr(), nil)
					if err := tc.OpenSession(); err != nil {
						t.Errorf("open session: %v", err)
						return
					}
					k := 100000 + id*100 + iter
					stmts := []string{"BEGIN", fmt.Sprintf("INSERT INTO st VALUES (%d, -1, 0.5)", k), "COMMIT"}
					failed := false
					for _, s := range stmts {
						if _, err := tc.Exec(s); err != nil {
							t.Errorf("%s: %v", s, err)
							failed = true
							break
						}
					}
					_ = tc.CloseSession()
					if failed {
						return
					}
					inserted.Add(1)
				}
			}
		}(i)
	}
	close(start)
	// Live rebalance while the clients hammer the fleet.
	if err := sys.AddShardMember("", "IDAA4", 0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := sys.WaitForRebalance(""); err != nil {
		t.Fatal(err)
	}
	res, err := admin.Query("SELECT COUNT(*) FROM st WHERE grp = -1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0]; got != fmt.Sprint(inserted.Load()) {
		t.Fatalf("committed inserts = %s, want %d", got, inserted.Load())
	}
}

// TestWireShutdownGoroutineLeak is the leak regression: after Close, the
// serving layer's goroutines (HTTP server, reaper, admission waiters) must
// all be gone.
func TestWireShutdownGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	sys := New(memoryConfig(1))
	srv, err := sys.ServeWire(ServeConfig{Addr: "127.0.0.1:0", DefaultUser: "SYSADM", IdleTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	admin := sys.AdminSession()
	admin.MustExec("CREATE TABLE lk (k BIGINT) IN ACCELERATOR IDAA1")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := wire.NewClient(srv.Addr(), nil)
			_ = c.OpenSession()
			_, _ = c.Exec(fmt.Sprintf("INSERT INTO lk VALUES (%d)", i))
			// Half the clients leak their session for the reaper to collect.
			if i%2 == 0 {
				_ = c.CloseSession()
			}
		}(i)
	}
	wg.Wait()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Idle HTTP keep-alive connections and reapers take a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
}

// TestCloseDrainsWireBeforeCheckpoint is the Close-ordering regression: a
// commit acknowledged over the wire while System.Close is racing the traffic
// must be part of the durable image — drain runs before the final checkpoint,
// and the crash filesystem then drops everything that was not made durable.
func TestCloseDrainsWireBeforeCheckpoint(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := sys.ServeWire(ServeConfig{Addr: "127.0.0.1:0", DefaultUser: "SYSADM"})
	if err != nil {
		t.Fatal(err)
	}
	sys.AdminSession().MustExec("CREATE TABLE dw (k BIGINT) IN ACCELERATOR IDAA1")

	// Writers hammer single-statement commits over the wire; every key whose
	// response was HTTP 200 is an acknowledged commit.
	const writers = 8
	acked := make([][]int, writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := wire.NewClient(srv.Addr(), nil)
			for k := w * 1000000; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Exec(fmt.Sprintf("INSERT INTO dw VALUES (%d)", k)); err != nil {
					return // draining or closed: unacknowledged, excluded
				}
				acked[w] = append(acked[w], k)
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let traffic build
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Drop everything not durable, as a process kill after the clean shutdown
	// would, then recover.
	fs.Crash()
	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	res, err := re.AdminSession().Query("SELECT k FROM dw")
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool, len(res.Rows))
	for _, row := range res.Rows {
		have[row[0]] = true
	}
	var total int
	for w := range acked {
		total += len(acked[w])
		for _, k := range acked[w] {
			if !have[fmt.Sprint(k)] {
				t.Fatalf("acknowledged commit k=%d lost across shutdown", k)
			}
		}
	}
	if total == 0 {
		t.Fatal("no commit was acknowledged before Close; test proved nothing")
	}
}
