// serving is a tour of the network front end: it starts a wire+ops server on
// a loopback port the way cmd/idaaserver does, then plays both sides —
// opening a pooled session, running statements and a streamed query through
// the v1 wire protocol, demonstrating a fast-fail 429 when a tiny admission
// envelope saturates, and finally scraping the admission metrics the
// controller published. Every endpoint it touches is documented in
// docs/WIRE_PROTOCOL.md; the tuning knobs are in docs/OPERATIONS.md.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"idaax"
	"idaax/internal/wire"
)

func main() {
	sys := idaax.New(idaax.Config{
		Accelerators: []idaax.AcceleratorConfig{
			{Name: "IDAA1"}, {Name: "IDAA2"}, {Name: "IDAA3"},
		},
		AnalyticsPublic: true,
	})
	defer sys.Close()

	// A deliberately tiny admission envelope — one execution slot, a
	// one-deep queue per class — so the saturation demo below can trigger a
	// 429 with a handful of clients. A real deployment sizes these with
	// -slots and -queue-depth on cmd/idaaserver.
	srv, err := sys.ServeWire(idaax.ServeConfig{
		Addr:           "127.0.0.1:0",
		AdmissionSlots: 1,
		AdmissionQueue: 1,
		DefaultUser:    "SYSADM",
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("wire server on http://%s (also serving /metrics, /healthz, /events)\n\n", srv.Addr())

	// --- A pooled session: transactions span requests. -------------------
	c := wire.NewClient(srv.Addr(), nil)
	if err := c.OpenSession(); err != nil {
		panic(err)
	}
	defer c.CloseSession()
	fmt.Printf("opened session %s\n", c.Session())

	must := func(sql string) *wire.ClientResult {
		res, err := c.Exec(sql)
		if err != nil {
			panic(err)
		}
		return res
	}
	must("CREATE TABLE orders (id BIGINT NOT NULL, region VARCHAR(8), amount DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	must("BEGIN")
	regions := []string{"EU", "US", "APAC"}
	for i := 0; i < 3000; i++ {
		must(fmt.Sprintf("INSERT INTO orders VALUES (%d, '%s', %g)", i, regions[i%3], float64(i%500)*0.5))
	}
	must("COMMIT")
	fmt.Println("loaded 3000 rows inside one wire-session transaction")

	res, err := c.Query("SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region")
	if err != nil {
		panic(err)
	}
	fmt.Printf("aggregate over the wire (routed to %s):\n", res.Routed)
	for _, row := range res.Rows {
		fmt.Println("  ", strings.Join(row, " | "))
	}

	// --- Streaming: rows arrive in NDJSON chunks, not one buffered body. --
	chunks := 0
	streamed := 0
	_, err = c.QueryStream("SELECT id, amount FROM orders WHERE amount > 200", 256, func(rows [][]string) error {
		chunks++
		streamed += len(rows)
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("streamed %d rows in %d chunks of <=256\n\n", streamed, chunks)

	// --- Saturation: with 1 slot + 1 queue spot, concurrency sheds. -------
	var shed, served int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := wire.NewClient(srv.Addr(), nil)
			cl.SetPriority("batch")
			_, err := cl.Query("SELECT COUNT(*), AVG(amount) FROM orders WHERE amount > 10")
			mu.Lock()
			defer mu.Unlock()
			if wire.IsShed(err) {
				shed++
			} else if err == nil {
				served++
			}
		}()
	}
	wg.Wait()
	fmt.Printf("8 concurrent batch aggregates against 1 slot: %d served, %d shed with HTTP 429 + Retry-After\n\n", served, shed)

	// --- The ops plane shares the port: scrape the admission metrics. -----
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("admission metrics after the demo:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "admission_") && !strings.Contains(line, "seconds") {
			fmt.Println("  ", line)
		}
	}

	// Give the reaper nothing to do: close cleanly, draining in-flight work.
	start := time.Now()
	if err := srv.Close(); err != nil {
		panic(err)
	}
	fmt.Printf("\nserver drained and closed in %v\n", time.Since(start).Round(time.Millisecond))
}
