// Rebalance: a tour of the elastic shard fleet. A hash-distributed table is
// loaded onto a 3-member shard group, a query workload starts hammering it,
// and the fleet grows to 4 members via ALTER ACCELERATOR ... ADD MEMBER. The
// background rebalancer live-migrates the keys the new member owns while the
// workload keeps running — every query result stays identical to the
// pre-growth answers — and afterwards the fleet shrinks back, draining the
// member before it detaches.
//
//	go run ./examples/rebalance
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"idaax"
)

const totalRows = 6000

func main() {
	sys := idaax.New(idaax.Config{
		Accelerators: []idaax.AcceleratorConfig{
			{Name: "IDAA1", Slices: 2}, {Name: "IDAA2", Slices: 2}, {Name: "IDAA3", Slices: 2},
		},
		AnalyticsPublic: true,
	})
	defer sys.Close()
	session := sys.AdminSession()

	fmt.Println("== 1. A hash-distributed table on a 3-member shard group ==")
	session.MustExec("CREATE TABLE events (id BIGINT NOT NULL, kind VARCHAR(8), amount DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	kinds := []string{"VIEW", "CLICK", "BUY"}
	for lo := 0; lo < totalRows; lo += 1000 {
		stmt := "INSERT INTO events VALUES "
		for i := lo; i < lo+1000; i++ {
			if i > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, '%s', %g)", i, kinds[i%3], float64(i%11)*0.5)
		}
		session.MustExec(stmt)
	}
	printDistribution(sys, "after load")

	// The workload's answers must never change while the fleet reshapes: the
	// table contents are static, so every scan/aggregate has one right answer.
	wantCount := session.MustExec("SELECT COUNT(*) FROM events").Rows[0][0]
	wantSum := session.MustExec("SELECT SUM(amount) FROM events").Rows[0][0]

	fmt.Println("\n== 2. Grow the fleet mid-workload ==")
	var queries, mismatches int64
	stop := make(chan struct{})
	ready := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws := sys.AdminSession()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i == 1 {
				close(ready) // at least one query completed pre-growth
			}
			var got string
			if i%2 == 0 {
				got = ws.MustExec("SELECT COUNT(*) FROM events").Rows[0][0]
				if got != wantCount {
					atomic.AddInt64(&mismatches, 1)
				}
			} else {
				got = ws.MustExec("SELECT SUM(amount) FROM events").Rows[0][0]
				if got != wantSum {
					atomic.AddInt64(&mismatches, 1)
				}
			}
			atomic.AddInt64(&queries, 1)
		}
	}()

	<-ready
	res := session.MustExec("ALTER ACCELERATOR SHARDS ADD MEMBER IDAA4 SLICES 2")
	fmt.Println(res.Message)
	if status, err := sys.RebalanceStatus(""); err == nil && status.Active {
		fmt.Printf("rebalance running: migrating tables %v\n", status.MigratingTables)
	}
	if err := sys.WaitForRebalance(""); err != nil {
		panic(err)
	}
	close(stop)
	wg.Wait()
	fmt.Printf("workload during rebalance: %d queries, %d wrong answers\n",
		atomic.LoadInt64(&queries), atomic.LoadInt64(&mismatches))
	printDistribution(sys, "after ADD MEMBER IDAA4")

	stats, _ := sys.ShardGroupStats("")
	fmt.Printf("rebalancer: %d rows migrated in %d batches (epoch %d)\n",
		stats.RowsMigrated, stats.RebalanceBatches, stats.Epoch)

	fmt.Println("\n== 3. Differential check: the grown fleet answers unchanged ==")
	fmt.Println(session.MustExec("SELECT kind, COUNT(*) AS n, SUM(amount) AS total FROM events GROUP BY kind ORDER BY kind").FormatTable())

	fmt.Println("== 4. Shrink back: drain IDAA2, then detach it ==")
	res = session.MustExec("ALTER ACCELERATOR SHARDS REMOVE MEMBER IDAA2")
	fmt.Println(res.Message)
	printDistribution(sys, "after REMOVE MEMBER IDAA2")
	fmt.Println(session.MustExec("SELECT COUNT(*), SUM(amount) FROM events").FormatTable())

	fmt.Println("== 5. A 2-member group refuses to shrink further ==")
	session.MustExec("ALTER ACCELERATOR SHARDS REMOVE MEMBER IDAA3")
	printDistribution(sys, "after REMOVE MEMBER IDAA3")
	if _, err := session.Exec("ALTER ACCELERATOR SHARDS REMOVE MEMBER IDAA4"); err != nil {
		fmt.Println("refused as designed:", err)
	}
}

// printDistribution shows how the table's rows spread over the fleet.
func printDistribution(sys *idaax.System, label string) {
	stats, err := sys.ShardGroupStats("")
	if err != nil {
		panic(err)
	}
	router, err := sys.Coordinator().ShardGroup("SHARDS")
	if err != nil {
		panic(err)
	}
	fmt.Printf("row distribution %s (%d members):\n", label, len(stats.Shards))
	for _, m := range router.Members() {
		n, err := m.RowCount(0, "EVENTS")
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-6s %5d rows (%4.1f%%)\n", m.Name(), n, 100*float64(n)/float64(totalRows))
	}
}
