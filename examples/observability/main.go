// Observability: a tour of query-level observability on a sharded fleet —
// EXPLAIN ANALYZE with per-operator actuals beside the planner's estimates,
// the metrics registry (counters, gauges, latency histograms), the query
// history ring, and the slow-query log with full execution traces.
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"idaax"
)

func main() {
	sys := idaax.New(idaax.Config{
		Accelerators: []idaax.AcceleratorConfig{
			{Name: "IDAA1", Slices: 4},
			{Name: "IDAA2", Slices: 4},
			{Name: "IDAA3", Slices: 4},
		},
		AnalyticsPublic: true,
		// Keep the trace of anything slower than 1ms in the slow-query log.
		SlowQueryThreshold: time.Millisecond,
	})
	defer sys.Close()
	session := sys.AdminSession()

	session.MustExec("CREATE TABLE orders (oid BIGINT NOT NULL, customer_id BIGINT, amount DOUBLE, region VARCHAR(8)) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(customer_id)")
	session.MustExec("CREATE TABLE customers (id BIGINT NOT NULL, name VARCHAR(16), segment VARCHAR(8)) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	regions := []string{"EU", "US", "APAC"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO orders VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %g, '%s')", i, i%80, float64(i%19)*0.5, regions[i%3])
	}
	session.MustExec(sb.String())
	sb.Reset()
	sb.WriteString("INSERT INTO customers VALUES ")
	for i := 0; i < 80; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'C%03d', '%s')", i, i, []string{"SMB", "ENT", "GOV"}[i%3])
	}
	session.MustExec(sb.String())
	session.MustExec("ANALYZE TABLE orders")
	session.MustExec("ANALYZE TABLE customers")

	fmt.Println("== 1. EXPLAIN ANALYZE: estimates vs what actually happened ==")
	fmt.Println()
	for _, sql := range []string{
		"EXPLAIN ANALYZE SELECT c.segment, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment",
		"EXPLAIN ANALYZE SELECT COUNT(*) FROM orders WHERE customer_id = 7",
	} {
		fmt.Println(sql)
		res := session.MustExec(sql)
		fmt.Printf("  routed to %s (%s)\n", res.Rows[0][1], res.Rows[0][2])
		for _, row := range res.Rows[1:] {
			fmt.Println("  " + row[3])
		}
		fmt.Println()
	}

	fmt.Println("== 2. A mixed workload: queries, DML, analytics ==")
	for i := 0; i < 20; i++ {
		session.MustExec("SELECT region, SUM(amount) FROM orders GROUP BY region")
	}
	session.MustExec("INSERT INTO orders VALUES (99001, 13, 7.5, 'EU')")
	session.MustExec("CALL IDAX.SUMMARY('ORDERS', 'AMOUNT')")
	fmt.Println("ran 20 aggregations, one INSERT, one IDAX.SUMMARY scatter")
	fmt.Println()

	fmt.Println("== 3. The metrics registry ==")
	rep := sys.ObservabilityReport()
	fmt.Printf("statements: %d total, %d select, %d dml, %d call\n",
		rep.Counters["stmt_total"], rep.Counters["stmt_class_select"],
		rep.Counters["stmt_class_dml"], rep.Counters["stmt_class_call"])
	h := rep.Histograms["stmt_seconds_select"]
	fmt.Printf("select latency: n=%d mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms\n",
		h.Count, h.Mean.Seconds()*1000, h.P50.Seconds()*1000, h.P95.Seconds()*1000, h.P99.Seconds()*1000)
	var gauges []string
	for name := range rep.Gauges {
		if strings.HasPrefix(name, "shard_") || strings.HasPrefix(name, "accel_") {
			gauges = append(gauges, name)
		}
	}
	sort.Strings(gauges)
	for _, name := range gauges {
		fmt.Printf("  %-28s %d\n", name, rep.Gauges[name])
	}
	fmt.Println()

	fmt.Println("== 4. The same registry as a Prometheus-style endpoint (excerpt) ==")
	for _, line := range strings.Split(sys.MetricsText(), "\n") {
		if strings.HasPrefix(line, "stmt_total") || strings.HasPrefix(line, "shard_queries_routed") ||
			strings.Contains(line, `quantile="0.95"`) {
			fmt.Println("  " + line)
		}
	}
	fmt.Println()

	fmt.Println("== 5. ...and as a SQL result set ==")
	res := session.MustExec("CALL SYSPROC.ACCEL_METRICS()")
	fmt.Printf("CALL SYSPROC.ACCEL_METRICS() returned %d samples, e.g.:\n", len(res.Rows))
	for _, row := range res.Rows {
		if strings.HasPrefix(row[0], "stmt_total") || strings.HasPrefix(row[0], "accel_rows_scanned") {
			fmt.Printf("  %-24s %-10s %s\n", row[0], row[1], row[2])
		}
	}
	fmt.Println()

	fmt.Println("== 6. Query history and the slow-query log ==")
	for i, rec := range sys.QueryHistory(5) {
		fmt.Printf("  [%d] seq=%d class=%-6s routed=%-6s rows=%-4d %.3fms  %s\n",
			i, rec.Seq, rec.Class, rec.Routed, rec.Rows,
			float64(rec.Elapsed)/float64(time.Millisecond), rec.SQL)
	}
	res = session.MustExec("CALL SYSPROC.ACCEL_QUERY_HISTORY(3)")
	fmt.Printf("CALL SYSPROC.ACCEL_QUERY_HISTORY(3) returned %d rows\n", len(res.Rows))
	fmt.Println()

	// Force a statement over the threshold so the slow-query log has a trace.
	sys.SetSlowQueryThreshold(time.Nanosecond)
	session.MustExec("SELECT c.segment, COUNT(*) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment")
	sys.SetSlowQueryThreshold(time.Millisecond)
	if slow := sys.SlowQueries(1); len(slow) > 0 {
		fmt.Println("slowest recent statement with its full span tree:")
		fmt.Printf("  %s (%.3fms)\n", slow[0].SQL, float64(slow[0].Elapsed)/float64(time.Millisecond))
		for _, line := range strings.Split(strings.TrimRight(slow[0].Trace, "\n"), "\n") {
			fmt.Println("    " + line)
		}
	}
}
