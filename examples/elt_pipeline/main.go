// elt_pipeline runs the four-stage feature-engineering pipeline from the
// paper's motivation twice: once with every intermediate result materialised
// in DB2 (the pre-AOT baseline, which forces a replication round trip before
// each accelerated stage) and once with accelerator-only tables. It prints the
// per-stage latency and the cross-system data movement of both runs.
//
//	go run ./examples/elt_pipeline
package main

import (
	"fmt"

	"idaax"
	"idaax/internal/pipeline"
	"idaax/internal/workload"
)

const orderCount = 50000

func main() {
	for _, mode := range []pipeline.Materialization{pipeline.MaterializeDB2, pipeline.MaterializeAOT} {
		sys := idaax.Open()
		coord := sys.Coordinator()
		admin := sys.AdminSession()

		// Base data lives in DB2 and is accelerated, as in production.
		admin.MustExec("CREATE TABLE customers (customer_id BIGINT NOT NULL, name VARCHAR(32), region VARCHAR(16), segment VARCHAR(16), age BIGINT, income DOUBLE, since TIMESTAMP)")
		admin.MustExec("CREATE TABLE orders (order_id BIGINT NOT NULL, customer_id BIGINT NOT NULL, product VARCHAR(16), quantity BIGINT, amount DOUBLE, order_ts TIMESTAMP)")
		if _, err := coord.BulkInsert("SYSADM", "CUSTOMERS", workload.Customers(orderCount/10, 1)); err != nil {
			panic(err)
		}
		if _, err := coord.BulkInsert("SYSADM", "ORDERS", workload.Orders(orderCount, orderCount/10, 2)); err != nil {
			panic(err)
		}
		admin.MustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'CUSTOMERS,ORDERS')")
		admin.MustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'CUSTOMERS,ORDERS')")

		runner := pipeline.NewRunner(coord, coord.Session("SYSADM"), "IDAA1")
		report, err := runner.Run(pipeline.ChurnFeaturePipeline("DEMO"), mode)
		if err != nil {
			panic(err)
		}

		fmt.Printf("\n=== %s intermediates (%d orders) ===\n", mode, orderCount)
		for _, st := range report.Stages {
			fmt.Printf("  %-28s -> %-22s %7d rows  %8.1f ms  (DB2->accel %d, accel->DB2 %d)\n",
				st.Stage, st.Target, st.Rows, float64(st.Elapsed.Microseconds())/1000, st.RowsToAccel, st.RowsFromAcc)
		}
		fmt.Printf("  total: %.1f ms, %d intermediate rows, %d rows DB2->accel, %d rows accel->DB2, %d rows re-replicated\n",
			float64(report.Elapsed.Microseconds())/1000, report.TotalRows,
			report.RowsMovedToAcc, report.RowsMovedToDB2, report.ReplicationRows)

		// The final stage output is immediately usable for analytics on the
		// accelerator, e.g. as input to IDAX procedures.
		res := admin.MustExec("SELECT COUNT(*) AS n, AVG(spend_ratio) AS avg_ratio FROM DEMO_STG4_FEATURES")
		fmt.Printf("  final feature table: %s rows, avg spend ratio %s (query ran on %s)\n",
			res.Value(0, "N"), res.Value(0, "AVG_RATIO"), res.Routed)
		sys.Close()
	}
}
