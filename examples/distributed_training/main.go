// Distributed training: a tour of shard-local analytics. A labelled table is
// hash-distributed over a 4-member shard group, and the IDAX.* procedures
// train where the rows live: each shard reduces its partition to a partial
// (Gram matrix, gradient sums, class moments, a local model) and the
// coordinator merges the partials into one model — no base row ever travels.
// Scoring scatters too, writing every prediction on the shard that computed
// it; because the id column is the distribution key, the prediction table
// inherits the key and joins against the input run shard-local. The tour
// ends with the A/B switch bench E12 uses: forcing the old gather path and
// comparing the data-movement counters.
//
//	go run ./examples/distributed_training
package main

import (
	"fmt"

	"idaax"
)

const rows = 8000

func main() {
	sys := idaax.New(idaax.Config{
		Accelerators: []idaax.AcceleratorConfig{
			{Name: "IDAA1", Slices: 2}, {Name: "IDAA2", Slices: 2},
			{Name: "IDAA3", Slices: 2}, {Name: "IDAA4", Slices: 2},
		},
		AnalyticsPublic: true,
	})
	defer sys.Close()
	session := sys.AdminSession()

	fmt.Println("== 1. A labelled table, hash-distributed over 4 shards ==")
	session.MustExec("CREATE TABLE signups (uid BIGINT NOT NULL, visits DOUBLE, spend DOUBLE, tickets DOUBLE, churned BIGINT) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(uid)")
	for lo := 0; lo < rows; lo += 1000 {
		stmt := "INSERT INTO signups VALUES "
		for i := lo; i < lo+1000; i++ {
			if i > lo {
				stmt += ", "
			}
			visits := float64(1 + i%37)
			spend := float64(i%220) * 0.8
			tickets := float64(i % 7)
			churned := 0
			if 2.2-0.09*visits+0.5*tickets-0.01*spend > 0 {
				churned = 1
			}
			stmt += fmt.Sprintf("(%d, %g, %g, %g, %d)", i, visits, spend, tickets, churned)
		}
		session.MustExec(stmt)
	}
	fmt.Printf("loaded %d rows over 4 shards\n", rows)

	fmt.Println("\n== 2. Training scatters; only partials travel ==")
	res := session.MustExec("CALL IDAX.LOGISTIC_REGRESSION('SIGNUPS', 'CHURNED', 'VISITS,SPEND,TICKETS', 'CHURN_MODEL', 120, 0.3)")
	fmt.Println(res.Message)
	res = session.MustExec("CALL IDAX.SUMMARY('SIGNUPS', 'VISITS,SPEND,TICKETS')")
	fmt.Println(res.Message)

	st, _ := sys.ShardGroupStats("")
	fmt.Printf("analytics scatters: %d, per-shard partials: %d, base rows gathered to the coordinator: %d\n",
		st.AnalyticsScatters, st.AnalyticsPartials, st.RowsGathered)
	fmt.Printf("per-procedure scatter counts: %v\n", st.DistributedProcCalls)

	fmt.Println("\n== 3. Scoring writes predictions shard-local, co-located with the input ==")
	res = session.MustExec("CALL IDAX.PREDICT('CHURN_MODEL', 'SIGNUPS', 'UID', 'CHURN_SCORES')")
	fmt.Println(res.Message)
	st2, _ := sys.ShardGroupStats("")
	fmt.Printf("predictions written on their own shard: %d\n", st2.AnalyticsRowsWrittenLocal)

	// The score table inherited HASH(uid), so this join never gathers.
	res = session.MustExec("SELECT COUNT(*) FROM signups s INNER JOIN churn_scores c ON s.uid = c.id WHERE c.label = '1'")
	st3, _ := sys.ShardGroupStats("")
	fmt.Printf("predicted churners: %s (join ran co-located: %v)\n",
		res.Rows[0][0], st3.ColocatedJoins > st2.ColocatedJoins)

	fmt.Println("\n== 4. The A/B switch: force the old gather path ==")
	if err := sys.SetShardLocalAnalytics("", false); err != nil {
		panic(err)
	}
	before, _ := sys.ShardGroupStats("")
	res = session.MustExec("CALL IDAX.LOGISTIC_REGRESSION('SIGNUPS', 'CHURNED', 'VISITS,SPEND,TICKETS', 'CHURN_MODEL_GATHERED', 120, 0.3)")
	fmt.Println(res.Message)
	after, _ := sys.ShardGroupStats("")
	fmt.Printf("gather path moved %d base rows to the coordinator for one training run;\n", after.RowsGathered-before.RowsGathered)
	fmt.Println("the scatter path moved none. Both models are identical (differential tests pin it);")
	fmt.Println("bench E12 measures the throughput and data-movement gap, and CI gates on it.")
}
