// churn_scoring is the predictive-analytics use case from the paper's
// introduction: a multi-stage mining pipeline that prepares data, trains
// models and scores customers — entirely in-database. Every intermediate
// (standardised features, train/test split, model parameters, predictions)
// is an accelerator-only table, so nothing flows back through DB2 between the
// stages.
//
//	go run ./examples/churn_scoring
package main

import (
	"fmt"

	"idaax"
	"idaax/internal/workload"
)

const churnRows = 20000

func main() {
	sys := idaax.Open()
	defer sys.Close()
	admin := sys.AdminSession()
	coord := sys.Coordinator()

	// 1. Operational data in DB2, accelerated for analytics.
	admin.MustExec("CREATE TABLE churn (customer_id BIGINT NOT NULL, tenure_months DOUBLE, monthly_spend DOUBLE, support_calls DOUBLE, late_payments DOUBLE, discount_rate DOUBLE, churned BIGINT)")
	if _, err := coord.BulkInsert("SYSADM", "CHURN", workload.Churn(churnRows, 3)); err != nil {
		panic(err)
	}
	admin.MustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'CHURN')")
	admin.MustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'CHURN')")
	fmt.Printf("loaded %d labelled customers and accelerated the table\n\n", churnRows)

	features := "TENURE_MONTHS,MONTHLY_SPEND,SUPPORT_CALLS,LATE_PAYMENTS,DISCOUNT_RATE"

	// 2. Data preparation on the accelerator via the procedure framework.
	fmt.Println(admin.MustExec("CALL IDAX.SUMMARY('CHURN', '" + features + "')").FormatTable())
	fmt.Println(admin.MustExec("CALL IDAX.STANDARDIZE('CHURN', '" + features + "', 'CHURN_STD')").Message)
	fmt.Println(admin.MustExec("CALL IDAX.SPLIT_DATA('CHURN_STD', 'CHURN_TRAIN', 'CHURN_TEST', 0.8, 42)").Message)

	// 3. Train two models on the training AOT.
	fmt.Println(admin.MustExec("CALL IDAX.LOGISTIC_REGRESSION('CHURN_TRAIN', 'CHURNED', '" + features + "', 'MODEL_LOGIT', 200, 0.2)").Message)
	fmt.Println(admin.MustExec("CALL IDAX.DECISION_TREE('CHURN_TRAIN', 'CHURNED', '" + features + "', 'MODEL_TREE', 6)").Message)

	// Model metrics are ordinary rows in accelerator-only tables.
	fmt.Println(admin.MustExec("SELECT param, value FROM MODEL_LOGIT WHERE param <> 'JSON' ORDER BY param").FormatTable())

	// 4. Score the held-out test set in-database; predictions land in an AOT.
	fmt.Println(admin.MustExec("CALL IDAX.PREDICT('MODEL_LOGIT', 'CHURN_TEST', 'CUSTOMER_ID', 'SCORES_LOGIT')").Message)
	fmt.Println(admin.MustExec("CALL IDAX.PREDICT('MODEL_TREE', 'CHURN_TEST', 'CUSTOMER_ID', 'SCORES_TREE')").Message)

	// 5. Evaluate both models with plain SQL joins against the ground truth —
	// again without moving anything out of the accelerator.
	evalSQL := `SELECT COUNT(*) AS scored,
		SUM(CASE WHEN (s.prediction >= 0.5 AND t.churned = 1) OR (s.prediction < 0.5 AND t.churned = 0) THEN 1 ELSE 0 END) AS correct
		FROM %s s INNER JOIN CHURN_TEST t ON s.id = t.customer_id`
	for _, scores := range []string{"SCORES_LOGIT"} {
		res := admin.MustExec(fmt.Sprintf(evalSQL, scores))
		fmt.Printf("%s: %s of %s test customers scored correctly (evaluated on %s)\n",
			scores, res.Value(0, "CORRECT"), res.Value(0, "SCORED"), res.Routed)
	}
	treeEval := `SELECT COUNT(*) AS scored,
		SUM(CASE WHEN (s.label = '1' AND t.churned = 1) OR (s.label = '0' AND t.churned = 0) THEN 1 ELSE 0 END) AS correct
		FROM SCORES_TREE s INNER JOIN CHURN_TEST t ON s.id = t.customer_id`
	res := admin.MustExec(treeEval)
	fmt.Printf("SCORES_TREE: %s of %s test customers scored correctly (evaluated on %s)\n",
		res.Value(0, "CORRECT"), res.Value(0, "SCORED"), res.Routed)

	m := sys.Metrics()
	fmt.Printf("\ncross-system data movement for the whole pipeline: %d rows DB2->accel (initial load only), %d rows accel->DB2\n",
		m.ReplicationRowsCopied, m.RowsMovedToDB2)
}
