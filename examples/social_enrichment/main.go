// social_enrichment demonstrates the loader use case from the paper: data that
// never lived on the mainframe (here: social-media posts with sentiment
// scores) is ingested directly into an accelerator-only table and joined with
// accelerated operational data to enrich an analytics result. A custom
// procedure registered through the public framework API computes a per-region
// "social risk" table on the accelerator.
//
//	go run ./examples/social_enrichment
package main

import (
	"fmt"
	"strings"

	"idaax"
	"idaax/internal/workload"
)

const (
	customerCount = 5000
	postCount     = 40000
)

func main() {
	sys := idaax.Open()
	defer sys.Close()
	admin := sys.AdminSession()
	coord := sys.Coordinator()

	// Operational customer data: DB2-resident, accelerated.
	admin.MustExec("CREATE TABLE customers (customer_id BIGINT NOT NULL, name VARCHAR(32), region VARCHAR(16), segment VARCHAR(16), age BIGINT, income DOUBLE, since TIMESTAMP)")
	if _, err := coord.BulkInsert("SYSADM", "CUSTOMERS", workload.Customers(customerCount, 1)); err != nil {
		panic(err)
	}
	admin.MustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'CUSTOMERS')")
	admin.MustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'CUSTOMERS')")

	// External enrichment data: CSV produced outside the mainframe, loaded by
	// the IDAA Loader directly into an accelerator-only table.
	admin.MustExec("CREATE TABLE social_posts (post_id BIGINT, customer_id BIGINT, platform VARCHAR(16), sentiment VARCHAR(8), sentiment_score DOUBLE, posted_ts TIMESTAMP) IN ACCELERATOR IDAA1")
	csv := workload.SocialPostsCSV(postCount, customerCount, 99)
	report, err := sys.Load("SOCIAL_POSTS", strings.NewReader(csv), idaax.LoadOptions{HasHeader: true, MapByHeader: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("loader ingested %d posts directly into the accelerator (%s) in %s\n\n",
		report.RowsLoaded, report.LoadedInto, report.Elapsed)

	// Join external and operational data where both already live: on the
	// accelerator.
	res := admin.MustExec(`SELECT c.region, COUNT(*) AS posts,
			AVG(s.sentiment_score) AS avg_sentiment,
			SUM(CASE WHEN s.sentiment = 'NEGATIVE' THEN 1 ELSE 0 END) AS negative_posts
		FROM social_posts s INNER JOIN customers c ON s.customer_id = c.customer_id
		GROUP BY c.region ORDER BY avg_sentiment`)
	fmt.Printf("sentiment by region (query ran on %s):\n%s\n", res.Routed, res.FormatTable())

	// A custom in-database procedure registered through the public API: it
	// runs arbitrary SQL on the accelerator under DB2 governance and
	// materialises its result as a new AOT.
	err = sys.RegisterProcedure("DEMO.SOCIAL_RISK",
		"Build a per-region social risk table: (out_table, negative_threshold)", true,
		func(ctx *idaax.ProcedureContext, args []string) (*idaax.ProcedureResult, error) {
			out := "SOCIAL_RISK"
			if len(args) > 0 && args[0] != "" {
				out = args[0]
			}
			threshold := "0.3"
			if len(args) > 1 && args[1] != "" {
				threshold = args[1]
			}
			if _, err := ctx.Exec("DROP TABLE IF EXISTS " + out); err != nil {
				return nil, err
			}
			if _, err := ctx.Exec("CREATE TABLE " + out + " (region VARCHAR(16), customers BIGINT, at_risk BIGINT, risk_ratio DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
				return nil, err
			}
			n, err := ctx.Exec(`INSERT INTO ` + out + `
				SELECT region, COUNT(*), SUM(at_risk), CAST(SUM(at_risk) AS DOUBLE) / COUNT(*)
				FROM (SELECT c.region AS region, c.customer_id,
						CASE WHEN AVG(s.sentiment_score) < -` + threshold + ` THEN 1 ELSE 0 END AS at_risk
					FROM social_posts s INNER JOIN customers c ON s.customer_id = c.customer_id
					GROUP BY c.region, c.customer_id) x
				GROUP BY region`)
			if err != nil {
				return nil, err
			}
			return &idaax.ProcedureResult{RowsAffected: n, Message: fmt.Sprintf("built %s with %d regions", out, n)}, nil
		})
	if err != nil {
		panic(err)
	}
	callRes := admin.MustExec("CALL DEMO.SOCIAL_RISK('SOCIAL_RISK', '0.25')")
	fmt.Println("custom procedure:", callRes.Message)
	fmt.Println(admin.MustExec("SELECT * FROM social_risk ORDER BY risk_ratio DESC").FormatTable())

	m := sys.Metrics()
	fmt.Printf("statements offloaded: %d, rows moved accel->DB2: %d (the enrichment data never existed in DB2)\n",
		m.StatementsOffloaded, m.RowsMovedToDB2)
}
