// Explain: a tour of the cost-based query planner on a sharded fleet —
// table statistics and ANALYZE, EXPLAIN plan trees, co-located and broadcast
// joins, and distribution-key pruning with IN lists and ranges.
//
//	go run ./examples/explain
package main

import (
	"fmt"
	"strings"

	"idaax"
)

func main() {
	// A fleet of three accelerators; the implicit SHARDS group spans them.
	sys := idaax.New(idaax.Config{
		Accelerators: []idaax.AcceleratorConfig{
			{Name: "IDAA1", Slices: 4},
			{Name: "IDAA2", Slices: 4},
			{Name: "IDAA3", Slices: 4},
		},
	})
	defer sys.Close()
	session := sys.AdminSession()

	fmt.Println("== 1. A co-located pair: both tables hash-distributed on the join key ==")
	session.MustExec("CREATE TABLE orders (oid BIGINT NOT NULL, customer_id BIGINT, amount DOUBLE, region VARCHAR(8)) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(customer_id)")
	session.MustExec("CREATE TABLE customers (id BIGINT NOT NULL, name VARCHAR(16), segment VARCHAR(8)) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	session.MustExec("CREATE TABLE fx (region VARCHAR(8), rate DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY RANDOM")

	regions := []string{"EU", "US", "APAC"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO orders VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %g, '%s')", i, i%80, float64(i%19)*0.5, regions[i%3])
	}
	session.MustExec(sb.String())
	sb.Reset()
	sb.WriteString("INSERT INTO customers VALUES ")
	segments := []string{"SMB", "ENT", "GOV"}
	for i := 0; i < 80; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'C%03d', '%s')", i, i, segments[i%3])
	}
	session.MustExec(sb.String())
	session.MustExec("INSERT INTO fx VALUES ('EU', 1.1), ('US', 1.0), ('APAC', 0.8)")

	fmt.Println("\n== 2. ANALYZE TABLE builds exact statistics (histograms included) ==")
	res := session.MustExec("ANALYZE TABLE orders")
	fmt.Println(res.Message)
	res = session.MustExec("CALL SYSPROC.ACCEL_ANALYZE('SHARDS', 'customers,fx')")
	fmt.Println(res.Message)
	stats, _ := sys.TableStatistics("orders")
	fmt.Printf("orders: %d rows, analyzed=%v; columns (NDV merged across shards, an upper bound):\n", stats.Rows, stats.Analyzed)
	for _, c := range stats.Columns {
		fmt.Printf("  %-12s %-9s ndv<=%-6.0f min=%-5s max=%-5s nulls=%d\n",
			c.Name, c.Type, c.DistinctEst, c.Min, c.Max, c.Nulls)
	}

	explain := func(sql string) {
		res := session.MustExec("EXPLAIN " + sql)
		fmt.Printf("\nEXPLAIN %s\n", sql)
		fmt.Printf("  routed to %s (%s)\n", res.Value(0, "ROUTED_TO"), res.Value(0, "REASON"))
		for _, row := range res.Rows[1:] {
			fmt.Println("  " + row[3])
		}
	}

	fmt.Println("\n== 3. A join on the shared distribution key stays shard-local ==")
	explain("SELECT c.segment, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment")

	fmt.Println("\n== 4. A small round-robin table is broadcast to the shards ==")
	explain("SELECT f.region, SUM(o.amount * f.rate) FROM orders o JOIN fx f ON o.region = f.region GROUP BY f.region")

	fmt.Println("\n== 5. Distribution-key predicates prune shards: =, IN, BETWEEN ==")
	explain("SELECT COUNT(*) FROM orders WHERE customer_id = 42")
	explain("SELECT COUNT(*) FROM orders WHERE customer_id IN (7, 9)")
	explain("SELECT COUNT(*) FROM orders WHERE customer_id BETWEEN 10 AND 11")

	fmt.Println("\n== 6. The plans execute with identical results — and far less data movement ==")
	session.MustExec("SELECT COUNT(*) FROM orders WHERE customer_id = 42")
	session.MustExec("SELECT COUNT(*) FROM orders WHERE customer_id IN (7, 9)")
	session.MustExec("SELECT COUNT(*) FROM orders WHERE customer_id BETWEEN 10 AND 11")
	res = session.MustExec("SELECT c.segment, COUNT(*) AS orders, SUM(o.amount) AS revenue FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment ORDER BY revenue DESC")
	fmt.Print(res.FormatTable())
	st, _ := sys.ShardGroupStats("SHARDS")
	fmt.Printf("router: colocated_joins=%d broadcast_joins=%d pruned=%d shard_scans_avoided=%d rows_gathered=%d\n",
		st.ColocatedJoins, st.BroadcastJoins, st.QueriesPruned, st.ShardScansAvoided, st.RowsGathered)
}
