// Quickstart: create a table in DB2, accelerate it, watch queries get
// offloaded, then create an accelerator-only table (AOT) and run a
// transformation that never leaves the accelerator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"idaax"
)

func main() {
	sys := idaax.Open()
	defer sys.Close()
	session := sys.AdminSession()

	fmt.Println("== 1. A regular DB2 table ==")
	session.MustExec("CREATE TABLE sales (id BIGINT NOT NULL, region VARCHAR(16), amount DOUBLE, quantity BIGINT)")
	session.MustExec(`INSERT INTO sales VALUES
		(1, 'EMEA', 1200.50, 3), (2, 'AMERICAS', 340.00, 1), (3, 'EMEA', 78.25, 2),
		(4, 'APAC', 990.10, 5), (5, 'AMERICAS', 1500.00, 4), (6, 'APAC', 42.42, 1)`)
	res := session.MustExec("SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC")
	fmt.Printf("query ran on %s:\n%s\n", res.Routed, res.FormatTable())

	fmt.Println("== 2. Accelerate it (ACCEL_ADD_TABLES + ACCEL_LOAD_TABLES) ==")
	session.MustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'SALES')")
	session.MustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'SALES')")
	res = session.MustExec("SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC")
	fmt.Printf("same query now ran on %s:\n%s\n", res.Routed, res.FormatTable())
	fmt.Println(session.MustExec("EXPLAIN SELECT SUM(amount) FROM sales").FormatTable())

	fmt.Println("== 3. An accelerator-only table: CREATE TABLE ... IN ACCELERATOR ==")
	session.MustExec("CREATE TABLE sales_summary (region VARCHAR(16), revenue DOUBLE, avg_ticket DOUBLE) IN ACCELERATOR IDAA1")
	res = session.MustExec("INSERT INTO sales_summary SELECT region, SUM(amount), AVG(amount) FROM sales GROUP BY region")
	fmt.Printf("INSERT ... SELECT routed to %s, %d rows materialised on the accelerator\n", res.Routed, res.RowsAffected)
	fmt.Println(session.MustExec("SELECT * FROM sales_summary ORDER BY revenue DESC").FormatTable())

	fmt.Println("== 4. AOT DML honours the DB2 transaction context ==")
	if err := session.Begin(); err != nil {
		panic(err)
	}
	session.MustExec("UPDATE sales_summary SET revenue = revenue * 1.1 WHERE region = 'EMEA'")
	inTxn := session.MustExec("SELECT revenue FROM sales_summary WHERE region = 'EMEA'")
	fmt.Println("inside the transaction EMEA revenue is", inTxn.Value(0, "REVENUE"))
	if err := session.Rollback(); err != nil {
		panic(err)
	}
	after := session.MustExec("SELECT revenue FROM sales_summary WHERE region = 'EMEA'")
	fmt.Println("after ROLLBACK it is back to   ", after.Value(0, "REVENUE"))

	fmt.Println("\n== 5. What the system looks like ==")
	fmt.Println(session.MustExec("SHOW TABLES").FormatTable())
	fmt.Println(session.MustExec("SHOW ACCELERATORS").FormatTable())
	m := sys.Metrics()
	fmt.Printf("rows moved DB2->accelerator: %d, accelerator->DB2: %d, offloaded statements: %d\n",
		m.RowsMovedToAccelerator, m.RowsMovedToDB2, m.StatementsOffloaded)
}
