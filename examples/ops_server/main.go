// ops_server is a tour of the operations plane: a sharded fleet with the ops
// HTTP server live, driven by a short burst of SQL so every endpoint has
// something to show. It scrapes its own endpoints and prints excerpts — the
// Prometheus exposition, the health report before and after a watchdog-visible
// incident (a rebalance pinned by an uncommitted transaction), the event
// journal and the fleet capacity view — then shows the same journal through
// SQL via CALL SYSPROC.ACCEL_EVENTS.
//
//	go run ./examples/ops_server
package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"idaax"
)

func get(addr, path string) string {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf("HTTP %d\n%s", resp.StatusCode, body)
}

func main() {
	sys := idaax.New(idaax.Config{
		Accelerators: []idaax.AcceleratorConfig{
			{Name: "IDAA1", Slices: 2}, {Name: "IDAA2", Slices: 2},
		},
		AnalyticsPublic:  true,
		WatchdogInterval: 20 * time.Millisecond,
	})
	defer sys.Close()

	// A sharded table gives the fleet endpoints real capacity to report.
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE metrics (id BIGINT, region VARCHAR(8), v DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	regions := []string{"EMEA", "APAC", "AMER"}
	var rows []string
	for i := 0; i < 3000; i++ {
		rows = append(rows, fmt.Sprintf("(%d, '%s', %.1f)", i, regions[i%3], float64(i%100)))
	}
	s.MustExec("INSERT INTO metrics VALUES " + strings.Join(rows, ", "))
	s.MustExec("ANALYZE TABLE metrics")
	for i := 0; i < 5; i++ {
		if _, err := s.Query("SELECT region, COUNT(*), SUM(v) FROM metrics GROUP BY region"); err != nil {
			panic(err)
		}
	}

	srv, err := sys.ServeOps("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Printf("ops server on http://%s — /metrics /healthz /readyz /events /queries /fleet /debug/pprof/\n\n", srv.Addr())

	fmt.Println("--- /metrics (excerpt) ---")
	for _, line := range strings.Split(get(srv.Addr(), "/metrics"), "\n") {
		if strings.HasPrefix(line, "fleet_") || strings.HasPrefix(line, "health_status") || strings.HasPrefix(line, "stmt_total") {
			fmt.Println(line)
		}
	}

	fmt.Println("\n--- /healthz (fleet healthy) ---")
	fmt.Println(get(srv.Addr(), "/healthz"))

	fmt.Println("--- /fleet ---")
	fmt.Println(get(srv.Addr(), "/fleet"))

	// Incident: pin row fates with an uncommitted transaction, then grow the
	// fleet. The rebalancer cannot finalize while the inserts are in flight;
	// after a few intervals with no progress the watchdog declares the
	// rebalance stalled and /healthz flips to 503.
	fmt.Println("--- incident: rebalance pinned by an open transaction ---")
	s.MustExec("BEGIN")
	var pinned []string
	for i := 900000; i < 900040; i++ {
		pinned = append(pinned, fmt.Sprintf("(%d, 'EMEA', 1.0)", i))
	}
	s.MustExec("INSERT INTO metrics VALUES " + strings.Join(pinned, ", "))
	if err := sys.AddShardMember("SHARDS", "IDAA3", 2); err != nil {
		panic(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if !sys.HealthReport().Healthy() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println(get(srv.Addr(), "/healthz"))

	fmt.Println("--- recovery: COMMIT releases the pinned rows ---")
	s.MustExec("COMMIT")
	if err := sys.WaitForRebalance("SHARDS"); err != nil {
		panic(err)
	}
	for time.Now().Before(deadline) {
		if sys.HealthReport().Ready() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println(get(srv.Addr(), "/readyz"))

	fmt.Println("--- /events?n=8 (journal, newest first) ---")
	fmt.Println(get(srv.Addr(), "/events?n=8"))

	fmt.Println("--- the same journal over SQL ---")
	res, err := s.Query("CALL SYSPROC.ACCEL_EVENTS(5)")
	if err != nil {
		panic(err)
	}
	fmt.Println(res.FormatTable())
}
