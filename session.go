package idaax

import (
	"fmt"
	"strings"

	"idaax/internal/federation"
)

// Session is one application connection to the system. It is not safe for
// concurrent use; open one session per goroutine.
type Session struct {
	sys *System
	fed *federation.Session
}

// Result is the outcome of one SQL statement. Result-set values are rendered
// as strings; NULL renders as the literal "NULL".
type Result struct {
	// Columns are the result-set column names (empty for DML).
	Columns []string
	// Rows holds the rendered result set.
	Rows [][]string
	// RowsAffected counts modified rows for DML statements.
	RowsAffected int
	// Routed names the system the statement ran on ("DB2", an accelerator
	// name, or "DB2->IDAA1" for cross-system INSERT ... SELECT).
	Routed string
	// Message is an informational completion message.
	Message string
}

func convertResult(r *federation.Result) *Result {
	if r == nil {
		return nil
	}
	out := &Result{
		Columns:      append([]string(nil), r.Columns...),
		RowsAffected: r.RowsAffected,
		Routed:       r.Routed,
		Message:      r.Message,
	}
	for _, row := range r.Rows {
		rendered := make([]string, len(row))
		for i, v := range row {
			rendered[i] = v.String()
		}
		out.Rows = append(out.Rows, rendered)
	}
	return out
}

// FormatTable renders the result set as an aligned text table for terminals.
func (r *Result) FormatTable() string {
	if len(r.Columns) == 0 {
		if r.Message != "" {
			return r.Message
		}
		return fmt.Sprintf("%d row(s) affected", r.RowsAffected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(r.Columns)
	seps := make([]string, len(r.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	writeRow(seps)
	for _, row := range r.Rows {
		writeRow(row)
	}
	sb.WriteString(fmt.Sprintf("(%d rows)\n", len(r.Rows)))
	return sb.String()
}

// Value returns the rendered cell at (row, column-name), or "" when absent.
func (r *Result) Value(row int, column string) string {
	if row < 0 || row >= len(r.Rows) {
		return ""
	}
	for i, c := range r.Columns {
		if strings.EqualFold(c, column) {
			if i < len(r.Rows[row]) {
				return r.Rows[row][i]
			}
		}
	}
	return ""
}

// User returns the session's authorization id.
func (s *Session) User() string { return s.fed.User() }

// Exec parses and executes one SQL statement.
func (s *Session) Exec(sql string) (*Result, error) {
	res, err := s.fed.Exec(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// MustExec executes a statement and panics on error; intended for examples
// and setup scripts where failure is unrecoverable.
func (s *Session) MustExec(sql string) *Result {
	res, err := s.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("idaax: %v (statement: %s)", err, sql))
	}
	return res
}

// Query executes a statement that must produce a result set.
func (s *Session) Query(sql string) (*Result, error) {
	res, err := s.fed.Query(sql)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error.
func (s *Session) ExecScript(sql string) ([]*Result, error) {
	results, err := s.fed.ExecScript(sql)
	out := make([]*Result, 0, len(results))
	for _, r := range results {
		out = append(out, convertResult(r))
	}
	return out, err
}

// Begin starts an explicit transaction spanning DB2 and the accelerators.
func (s *Session) Begin() error { return s.fed.Begin() }

// Commit commits the explicit transaction on both sides.
func (s *Session) Commit() error { return s.fed.Commit() }

// Rollback rolls the explicit transaction back on both sides.
func (s *Session) Rollback() error { return s.fed.Rollback() }

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.fed.InTransaction() }

// SetAcceleration sets the CURRENT QUERY ACCELERATION register
// ("NONE", "ENABLE", "ELIGIBLE" or "ALL").
func (s *Session) SetAcceleration(mode string) error {
	m, err := federation.ParseAccelerationMode(mode)
	if err != nil {
		return err
	}
	s.fed.SetAccelerationMode(m)
	return nil
}

// Acceleration returns the current value of the acceleration register.
func (s *Session) Acceleration() string { return s.fed.AccelerationMode().String() }
