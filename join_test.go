package idaax_test

import (
	"fmt"
	"strings"
	"testing"

	"idaax"
)

// seedJoinCorpusTables creates a fact table (NULLs in both join-key columns) and a
// dimension table whose string columns stay low-cardinality, so join corpora
// exercise NULL keys, many-to-many string matches and dictionary-coded keys.
func seedJoinCorpusTables(t *testing.T, sys *idaax.System, accelerator, factDist, dimDist string, factRows, dimRows int) {
	t.Helper()
	s := sys.AdminSession()
	ddls := []string{
		fmt.Sprintf("CREATE TABLE jfact (id BIGINT NOT NULL, gid BIGINT, cat VARCHAR(8), v DOUBLE) IN ACCELERATOR %s%s", accelerator, factDist),
		fmt.Sprintf("CREATE TABLE jdim (gid BIGINT NOT NULL, code VARCHAR(8), label VARCHAR(16), w DOUBLE) IN ACCELERATOR %s%s", accelerator, dimDist),
	}
	for _, ddl := range ddls {
		if _, err := s.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO jfact VALUES ")
	for i := 0; i < factRows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		gid := fmt.Sprintf("%d", i%(dimRows+5)) // some gids miss the dim side
		cat := fmt.Sprintf("'c%d'", i%5)
		if i%11 == 3 {
			gid = "NULL"
		}
		if i%13 == 7 {
			cat = "NULL"
		}
		v := fmt.Sprintf("%g", float64((i*7)%200)/4-20)
		if i%17 == 9 {
			v = "NULL"
		}
		fmt.Fprintf(&sb, "(%d, %s, %s, %s)", i, gid, cat, v)
	}
	if _, err := s.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	sb.WriteString("INSERT INTO jdim VALUES ")
	for i := 0; i < dimRows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		code := fmt.Sprintf("'c%d'", i%5)
		if i%9 == 4 {
			code = "NULL"
		}
		fmt.Fprintf(&sb, "(%d, %s, 'L%d', %g)", i, code, i%6, float64(i)*0.5)
	}
	if _, err := s.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
}

// joinDifferentialQueries covers the join shapes the vectorized engine
// accepts (equi-joins, multi-key, LEFT, aggregation above the probe, empty
// sides, dictionary-coded string keys) and the shapes it must decline
// identically (non-equi ON, three tables) — every one must return the same
// rows with the engine on and off.
var joinDifferentialQueries = []struct {
	sql     string
	ordered bool
}{
	{"SELECT f.id, d.label FROM jfact f JOIN jdim d ON f.gid = d.gid", false},
	{"SELECT f.id, d.label, d.w FROM jfact f JOIN jdim d ON f.gid = d.gid WHERE f.v > 0 AND d.w <= 12", false},
	{"SELECT f.id, d.gid FROM jfact f JOIN jdim d ON f.cat = d.code WHERE d.gid < 10", false},
	{"SELECT f.id FROM jfact f JOIN jdim d ON f.gid = d.gid AND f.cat = d.code", false},
	{"SELECT f.id, d.label FROM jfact f LEFT JOIN jdim d ON f.gid = d.gid", false},
	{"SELECT f.id FROM jfact f LEFT JOIN jdim d ON f.gid = d.gid WHERE d.w IS NULL", false},
	{"SELECT f.id FROM jfact f LEFT JOIN jdim d ON f.gid = d.gid WHERE d.w > 3", false},
	{"SELECT f.id FROM jfact f, jdim d WHERE f.gid = d.gid AND d.gid IN (1, 3, 5)", false},
	{"SELECT COUNT(*) FROM jfact a, jfact b WHERE a.id = b.id", true},
	{"SELECT d.label, COUNT(*), SUM(f.v), MIN(f.v), MAX(f.cat) FROM jfact f JOIN jdim d ON f.gid = d.gid GROUP BY d.label", false},
	{"SELECT d.label, COUNT(*) FROM jfact f JOIN jdim d ON f.gid = d.gid GROUP BY d.label ORDER BY d.label", true},
	{"SELECT d.label, AVG(f.v) FROM jfact f LEFT JOIN jdim d ON f.gid = d.gid WHERE f.v IS NOT NULL GROUP BY d.label", false},
	{"SELECT COUNT(*), SUM(d.w) FROM jfact f JOIN jdim d ON f.gid = d.gid WHERE f.cat = 'c2'", true},
	// Empty probe and empty build sides.
	{"SELECT f.id, d.label FROM jfact f JOIN jdim d ON f.gid = d.gid WHERE f.id > 1000000", false},
	{"SELECT f.id, d.label FROM jfact f JOIN jdim d ON f.gid = d.gid WHERE d.gid > 1000000", false},
	{"SELECT f.id FROM jfact f LEFT JOIN jdim d ON f.gid = d.gid WHERE d.gid > 1000000", false},
	// Shapes both engines must run row-at-a-time, with identical results.
	{"SELECT COUNT(*) FROM jfact f JOIN jdim d ON f.gid < d.gid WHERE d.gid < 5", true},
	{"SELECT COUNT(*) FROM jfact f JOIN jdim d ON f.gid = d.gid JOIN jdim e ON f.gid = e.gid", true},
}

func runJoinCorpus(t *testing.T, sys *idaax.System, queries []struct {
	sql     string
	ordered bool
}) map[bool][]string {
	t.Helper()
	s := sys.AdminSession()
	results := map[bool][]string{}
	for _, vectorized := range []bool{true, false} {
		sys.SetVectorizedExecution(vectorized)
		for _, q := range queries {
			res, err := s.Query(q.sql)
			if err != nil {
				t.Fatalf("%s (vectorized=%v): %v", q.sql, vectorized, err)
			}
			fp := sortedFingerprint(res)
			if q.ordered {
				fp = resultFingerprint(res)
			}
			results[vectorized] = append(results[vectorized], fp)
		}
	}
	return results
}

// TestJoinDifferentialSQL is the single-accelerator acceptance test: every
// corpus statement returns identical results with the vectorized hash join on
// and off, and the join engine actually executes while it is on.
func TestJoinDifferentialSQL(t *testing.T) {
	sys := newTestSystem(t)
	defer sys.Close()
	seedJoinCorpusTables(t, sys, "IDAA1", "", "", 800, 40)

	before, err := sys.AcceleratorStats("")
	if err != nil {
		t.Fatal(err)
	}
	results := runJoinCorpus(t, sys, joinDifferentialQueries)
	after, err := sys.AcceleratorStats("")
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range joinDifferentialQueries {
		if results[true][i] != results[false][i] {
			t.Errorf("%s: engines disagree\nvectorized:\n%s\nrow:\n%s",
				q.sql, results[true][i], results[false][i])
		}
	}
	if joins := after.VectorizedJoins - before.VectorizedJoins; joins == 0 {
		t.Fatal("no statement ran through the vectorized hash join")
	}
}

// TestJoinDifferentialSharded runs the corpus against a 3-shard fleet twice:
// once with both tables hash-distributed on the join key (co-located,
// shard-local vectorized joins) and once with the dimension distributed on an
// unrelated key (broadcast, the row join at the members). Both layouts must
// agree with the engine on and off.
func TestJoinDifferentialSharded(t *testing.T) {
	layouts := []struct {
		name              string
		factDist, dimDist string
		wantVexecJoins    bool
	}{
		{"colocated", " DISTRIBUTE BY HASH(gid)", " DISTRIBUTE BY HASH(gid)", true},
		{"broadcast", " DISTRIBUTE BY HASH(id)", " DISTRIBUTE BY HASH(label)", false},
	}
	for _, layout := range layouts {
		t.Run(layout.name, func(t *testing.T) {
			sys := newShardedSystem(t, 3)
			defer sys.Close()
			seedJoinCorpusTables(t, sys, "SHARDS", layout.factDist, layout.dimDist, 1200, 40)

			results := runJoinCorpus(t, sys, joinDifferentialQueries)
			for i, q := range joinDifferentialQueries {
				if results[true][i] != results[false][i] {
					t.Errorf("%s: sharded engines disagree\nvectorized:\n%s\nrow:\n%s",
						q.sql, results[true][i], results[false][i])
				}
			}
			if layout.wantVexecJoins {
				stats, err := sys.ShardGroupStats("")
				if err != nil {
					t.Fatal(err)
				}
				if stats.Group.VectorizedJoins == 0 {
					t.Fatal("co-located layout ran no shard-local vectorized join")
				}
			}
		})
	}
}

// TestJoinDuringRebalance races a co-located self-join against a live
// rebalance: while rows migrate, the join must keep matching every row with
// itself exactly once per snapshot.
func TestJoinDuringRebalance(t *testing.T) {
	const rows = 3000
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", rows)
	sys.SetVectorizedExecution(true)
	s := sys.AdminSession()

	const joinSQL = "SELECT COUNT(*), SUM(m.id) FROM metrics m JOIN metrics o ON m.id = o.id"
	wantRes, err := s.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(wantRes)

	if err := sys.AddShardMember("", "IDAA4", 2); err != nil {
		t.Fatal(err)
	}
	checks := 0
	for {
		status, err := sys.RebalanceStatus("")
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Query(joinSQL)
		if err != nil {
			t.Fatal(err)
		}
		if got := resultFingerprint(res); got != want {
			t.Fatalf("join drifted during rebalance (check %d):\n%s\nvs\n%s", checks, got, want)
		}
		checks++
		if !status.Active {
			break
		}
	}
	if err := sys.WaitForRebalance(""); err != nil {
		t.Fatal(err)
	}
	// Post-rebalance, the engines must still agree on a grouped join.
	groupSQL := "SELECT m.region, COUNT(*), SUM(o.amount) FROM metrics m JOIN metrics o ON m.id = o.id GROUP BY m.region ORDER BY m.region"
	vec, err := s.Query(groupSQL)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetVectorizedExecution(false)
	row, err := s.Query(groupSQL)
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(vec) != resultFingerprint(row) {
		t.Fatalf("post-rebalance grouped join differs between engines:\n%s\nvs\n%s",
			resultFingerprint(vec), resultFingerprint(row))
	}
}

// TestTwoPhaseFrameShipping pins tentpole (c) end to end: a dictionary-keyed
// grouped aggregate over a sharded table executes as two-phase partials whose
// shard->coordinator wire is binary frames, and those frames measure smaller
// than the re-encoded-text baseline they replaced. The accumulator values are
// deliberately non-terminating decimals — the shape where text re-encoding
// balloons (17+ digits per float) and fixed-width payloads pay off.
func TestTwoPhaseFrameShipping(t *testing.T) {
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	s := sys.AdminSession()
	if _, err := s.Exec("CREATE TABLE wire (k BIGINT NOT NULL, seg VARCHAR(24), x DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(k)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO wire VALUES ")
	for i := 0; i < 3000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'SEGMENT%02d', %.17g)", i, i%24, (float64(i)+0.1)/3)
	}
	if _, err := s.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		if _, err := s.Query("SELECT seg, COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM wire GROUP BY seg"); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := sys.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}
	if stats.TwoPhaseAggregates == 0 {
		t.Fatal("grouped aggregate did not execute two-phase")
	}
	if stats.TwoPhaseFrames == 0 {
		t.Fatal("two-phase aggregation shipped no binary frames")
	}
	if stats.TwoPhaseFrameBytes <= 0 || stats.TwoPhaseTextBytes <= 0 {
		t.Fatalf("frame byte counters not populated: frame=%d text=%d",
			stats.TwoPhaseFrameBytes, stats.TwoPhaseTextBytes)
	}
	if stats.TwoPhaseFrameBytes >= stats.TwoPhaseTextBytes {
		t.Fatalf("binary frames (%d bytes) did not undercut the text baseline (%d bytes)",
			stats.TwoPhaseFrameBytes, stats.TwoPhaseTextBytes)
	}
}
