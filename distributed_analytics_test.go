package idaax_test

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"idaax"
	"idaax/internal/analytics"
)

// seedChurnLike creates a labelled training table and fills it with a
// deterministic workload: Y = 4 + 3*F1 - 2*F2 plus a 0/1 label. The same rows
// land in every system, so single- and multi-shard training see identical
// populations.
func seedChurnLike(t *testing.T, sys *idaax.System, accelerator string, rows int) {
	t.Helper()
	s := sys.AdminSession()
	ddl := fmt.Sprintf(
		"CREATE TABLE train (cid BIGINT NOT NULL, f1 DOUBLE, f2 DOUBLE, y DOUBLE, flag BIGINT) IN ACCELERATOR %s DISTRIBUTE BY HASH(cid)",
		accelerator)
	if _, err := s.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	const batch = 500
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO train VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			f1 := float64(i%97) * 0.13
			f2 := float64(i%61) * 0.21
			y := 4 + 3*f1 - 2*f2
			flag := 0
			if y > 10 {
				flag = 1
			}
			fmt.Fprintf(&sb, "(%d, %g, %g, %g, %d)", i, f1, f2, y, flag)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// modelPayload loads the JSON payload row of a model table.
func modelPayload(t *testing.T, sys *idaax.System, table string) []byte {
	t.Helper()
	res, err := sys.AdminSession().Query("SELECT TEXT FROM " + table + " WHERE PARAM = 'JSON'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("model table %s: %d payload rows", table, len(res.Rows))
	}
	return []byte(res.Rows[0][0])
}

func withinRel(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	denom := math.Abs(want)
	if denom < 1 {
		denom = 1
	}
	if math.Abs(got-want)/denom > tol {
		t.Fatalf("%s: distributed %v vs single %v (tolerance %v)", what, got, want, tol)
	}
}

// TestDistributedTrainingDifferential is the tentpole acceptance test:
// training on a hash-distributed table scatters per shard, merges partials,
// and produces the same model a single backend computes over identical rows —
// exactly (to floating-point summation order) for linear/logistic regression
// and naive Bayes, without gathering a single base row to the coordinator.
func TestDistributedTrainingDifferential(t *testing.T) {
	const rows = 3000
	sharded := newShardedSystem(t, 3)
	defer sharded.Close()
	single := newTestSystem(t)
	defer single.Close()
	seedChurnLike(t, sharded, "SHARDS", rows)
	seedChurnLike(t, single, "IDAA1", rows)

	before, err := sharded.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}

	calls := []string{
		"CALL IDAX.LINEAR_REGRESSION('TRAIN', 'Y', 'F1,F2', 'M_LIN', 0.000001)",
		"CALL IDAX.LOGISTIC_REGRESSION('TRAIN', 'FLAG', 'F1,F2', 'M_LOG', 80, 0.3)",
		"CALL IDAX.NAIVE_BAYES('TRAIN', 'FLAG', 'F1,F2', 'M_NB')",
	}
	for _, call := range calls {
		res, err := sharded.AdminSession().Exec(call)
		if err != nil {
			t.Fatalf("sharded %s: %v", call, err)
		}
		if res.RowsAffected != rows {
			t.Fatalf("sharded %s trained on %d rows, want %d", call, res.RowsAffected, rows)
		}
		if !strings.Contains(res.Message, "shard-local") {
			t.Fatalf("sharded %s did not scatter: %q", call, res.Message)
		}
		if _, err := single.AdminSession().Exec(call); err != nil {
			t.Fatalf("single %s: %v", call, err)
		}
	}

	after, err := sharded.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}
	if after.AnalyticsScatters-before.AnalyticsScatters < 3 {
		t.Fatalf("expected >= 3 analytics scatters, got %d", after.AnalyticsScatters-before.AnalyticsScatters)
	}
	if after.DistributedProcCalls["IDAX.LINEAR_REGRESSION"] == 0 {
		t.Fatalf("per-procedure counters missing: %v", after.DistributedProcCalls)
	}
	if after.RowsGathered != before.RowsGathered {
		t.Fatalf("training gathered %d base rows to the coordinator; the scatter path must move none",
			after.RowsGathered-before.RowsGathered)
	}

	// Linear model: coefficients merge exactly (Gram matrices are row sums).
	var linD, linS struct {
		Linear *analytics.LinearModel `json:"linear"`
	}
	if err := json.Unmarshal(modelPayload(t, sharded, "M_LIN"), &linD); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(modelPayload(t, single, "M_LIN"), &linS); err != nil {
		t.Fatal(err)
	}
	withinRel(t, "linreg intercept", linD.Linear.Intercept, linS.Linear.Intercept, 1e-8)
	for j := range linS.Linear.Coefficients {
		withinRel(t, "linreg coefficient", linD.Linear.Coefficients[j], linS.Linear.Coefficients[j], 1e-8)
	}
	withinRel(t, "linreg RMSE", linD.Linear.RMSE, linS.Linear.RMSE, 1e-6)

	var logD, logS struct {
		Logistic *analytics.LogisticModel `json:"logistic"`
	}
	if err := json.Unmarshal(modelPayload(t, sharded, "M_LOG"), &logD); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(modelPayload(t, single, "M_LOG"), &logS); err != nil {
		t.Fatal(err)
	}
	withinRel(t, "logreg intercept", logD.Logistic.Intercept, logS.Logistic.Intercept, 1e-6)
	for j := range logS.Logistic.Coefficients {
		withinRel(t, "logreg coefficient", logD.Logistic.Coefficients[j], logS.Logistic.Coefficients[j], 1e-6)
	}
	withinRel(t, "logreg accuracy", logD.Logistic.TrainAccuracy, logS.Logistic.TrainAccuracy, 1e-9)

	var nbD, nbS struct {
		NaiveBayes *analytics.NaiveBayesModel `json:"naive_bayes"`
	}
	if err := json.Unmarshal(modelPayload(t, sharded, "M_NB"), &nbD); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(modelPayload(t, single, "M_NB"), &nbS); err != nil {
		t.Fatal(err)
	}
	if strings.Join(nbD.NaiveBayes.Classes, ",") != strings.Join(nbS.NaiveBayes.Classes, ",") {
		t.Fatalf("naive bayes classes differ: %v vs %v", nbD.NaiveBayes.Classes, nbS.NaiveBayes.Classes)
	}
	for _, class := range nbS.NaiveBayes.Classes {
		withinRel(t, "nb prior", nbD.NaiveBayes.Priors[class], nbS.NaiveBayes.Priors[class], 1e-12)
		for j := range nbS.NaiveBayes.Means[class] {
			withinRel(t, "nb mean", nbD.NaiveBayes.Means[class][j], nbS.NaiveBayes.Means[class][j], 1e-9)
			withinRel(t, "nb variance", nbD.NaiveBayes.Variances[class][j], nbS.NaiveBayes.Variances[class][j], 1e-9)
		}
	}

	// SUMMARY: moment merge equals the single-backend summary.
	sumD, err := sharded.AdminSession().Query("CALL IDAX.SUMMARY('TRAIN', 'F1,F2,Y')")
	if err != nil {
		t.Fatal(err)
	}
	sumS, err := single.AdminSession().Query("CALL IDAX.SUMMARY('TRAIN', 'F1,F2,Y')")
	if err != nil {
		t.Fatal(err)
	}
	if len(sumD.Rows) != len(sumS.Rows) {
		t.Fatalf("summary row counts differ: %d vs %d", len(sumD.Rows), len(sumS.Rows))
	}
	for i := range sumS.Rows {
		for c := range sumS.Rows[i] {
			dv, errD := strconv.ParseFloat(sumD.Rows[i][c], 64)
			sv, errS := strconv.ParseFloat(sumS.Rows[i][c], 64)
			if errD != nil || errS != nil {
				if sumD.Rows[i][c] != sumS.Rows[i][c] {
					t.Fatalf("summary cell (%d,%d): %q vs %q", i, c, sumD.Rows[i][c], sumS.Rows[i][c])
				}
				continue
			}
			withinRel(t, "summary "+sumS.Columns[c], dv, sv, 1e-9)
		}
	}
}

// TestDistributedScoringShardLocal checks the scoring half: PREDICT on a
// sharded table writes every prediction on the shard that computed it (no
// gather, no coordinator write), produces the same scores as a single
// backend, scores each row exactly once, and — because the id column is the
// distribution key — the prediction table inherits the key and stays
// co-located with its input.
func TestDistributedScoringShardLocal(t *testing.T) {
	const rows = 2000
	sharded := newShardedSystem(t, 3)
	defer sharded.Close()
	single := newTestSystem(t)
	defer single.Close()
	seedChurnLike(t, sharded, "SHARDS", rows)
	seedChurnLike(t, single, "IDAA1", rows)

	for _, sys := range []*idaax.System{sharded, single} {
		if _, err := sys.AdminSession().Exec("CALL IDAX.LINEAR_REGRESSION('TRAIN', 'Y', 'F1,F2', 'M_LIN', 0.000001)"); err != nil {
			t.Fatal(err)
		}
	}

	before, err := sharded.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sharded.AdminSession().Exec("CALL IDAX.PREDICT('M_LIN', 'TRAIN', 'CID', 'SCORES')")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != rows {
		t.Fatalf("scored %d rows, want %d", res.RowsAffected, rows)
	}
	if !strings.Contains(res.Message, "co-located with input by CID") {
		t.Fatalf("prediction table did not inherit the distribution key: %q", res.Message)
	}
	if _, err := single.AdminSession().Exec("CALL IDAX.PREDICT('M_LIN', 'TRAIN', 'CID', 'SCORES')"); err != nil {
		t.Fatal(err)
	}

	after, err := sharded.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}
	if got := after.AnalyticsRowsWrittenLocal - before.AnalyticsRowsWrittenLocal; got != rows {
		t.Fatalf("rows written shard-local: %d, want %d", got, rows)
	}

	// Exactly-once: every input row has exactly one score.
	dup, err := sharded.AdminSession().Query("SELECT id FROM scores GROUP BY id HAVING COUNT(*) > 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(dup.Rows) != 0 {
		t.Fatalf("%d ids scored more than once", len(dup.Rows))
	}

	// Same scores as the single backend.
	q := "SELECT id, prediction FROM scores ORDER BY id"
	got, err := sharded.AdminSession().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.AdminSession().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != rows || len(want.Rows) != rows {
		t.Fatalf("row counts: sharded %d, single %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if got.Rows[i][0] != want.Rows[i][0] {
			t.Fatalf("row %d id: %s vs %s", i, got.Rows[i][0], want.Rows[i][0])
		}
		gv, _ := strconv.ParseFloat(got.Rows[i][1], 64)
		wv, _ := strconv.ParseFloat(want.Rows[i][1], 64)
		withinRel(t, "prediction", gv, wv, 1e-8)
	}

	// Co-location: joining input to scores on the shared key runs shard-local.
	preJoin, _ := sharded.ShardGroupStats("")
	if _, err := sharded.AdminSession().Query(
		"SELECT COUNT(*) FROM train t INNER JOIN scores s ON t.cid = s.id WHERE t.y > 10"); err != nil {
		t.Fatal(err)
	}
	postJoin, _ := sharded.ShardGroupStats("")
	if postJoin.ColocatedJoins <= preJoin.ColocatedJoins {
		t.Fatalf("train ⋈ scores did not run co-located (colocated joins %d -> %d)",
			preJoin.ColocatedJoins, postJoin.ColocatedJoins)
	}
}

// TestTrainAndScoreDuringRebalanceExactlyOnce runs training and scoring
// while the fleet is growing and rows are live-migrating between shards. The
// scatter holds the table's migration fence and snapshots all members under
// the commit fence, so every row must be trained on and scored exactly once —
// no row double-counted from both its source and destination shard, none
// missed mid-flight.
func TestTrainAndScoreDuringRebalanceExactlyOnce(t *testing.T) {
	const rows = 4000
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedChurnLike(t, sys, "SHARDS", rows)
	s := sys.AdminSession()

	if _, err := s.Exec("CALL IDAX.LINEAR_REGRESSION('TRAIN', 'Y', 'F1,F2', 'M_LIN', 0.000001)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddShardMember("", "IDAA4", 2); err != nil {
		t.Fatal(err)
	}

	// Race the migration: train and score repeatedly until the rebalance
	// completes, asserting exact row coverage on every round.
	rounds := 0
	for {
		status, err := sys.RebalanceStatus("")
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Exec("CALL IDAX.LINEAR_REGRESSION('TRAIN', 'Y', 'F1,F2', 'M_MID', 0.000001)")
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != rows {
			t.Fatalf("training mid-rebalance saw %d rows, want %d", res.RowsAffected, rows)
		}
		out := fmt.Sprintf("SCORES_R%d", rounds)
		res, err = s.Exec(fmt.Sprintf("CALL IDAX.PREDICT('M_LIN', 'TRAIN', 'CID', '%s')", out))
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != rows {
			t.Fatalf("scoring mid-rebalance wrote %d rows, want %d", res.RowsAffected, rows)
		}
		dup, err := s.Query(fmt.Sprintf("SELECT id FROM %s GROUP BY id HAVING COUNT(*) > 1", out))
		if err != nil {
			t.Fatal(err)
		}
		if len(dup.Rows) != 0 {
			t.Fatalf("round %d: %d ids scored twice during migration", rounds, len(dup.Rows))
		}
		rounds++
		if !status.Active && len(status.MigratingTables) == 0 {
			break
		}
		if rounds > 50 {
			break
		}
	}
	if err := sys.WaitForRebalance(""); err != nil {
		t.Fatal(err)
	}

	// After the fleet settles the new member owns part of the table, and a
	// final scatter still covers every row exactly once.
	res, err := s.Exec("CALL IDAX.PREDICT('M_LIN', 'TRAIN', 'CID', 'SCORES_FINAL')")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != rows {
		t.Fatalf("post-rebalance scoring wrote %d rows, want %d", res.RowsAffected, rows)
	}
	st, err := sys.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("fleet did not grow: %d members", len(st.Shards))
	}
}

// TestDistributedKMeansAndForestEndToEnd covers the consolidation-merged
// algorithms end to end: k-means writes its assignments shard-local and the
// decision forest scores through the standard PREDICT path.
func TestDistributedKMeansAndForestEndToEnd(t *testing.T) {
	const rows = 1200
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedChurnLike(t, sys, "SHARDS", rows)
	s := sys.AdminSession()

	res, err := s.Exec("CALL IDAX.KMEANS('TRAIN', 'F1,F2', 3, 'M_KM', 'KM_ASSIGN', 'CID', 25, 7)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != rows || !strings.Contains(res.Message, "shard-local") {
		t.Fatalf("kmeans: %+v", res)
	}
	cnt, err := s.Query("SELECT COUNT(*) FROM km_assign")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Rows[0][0] != fmt.Sprint(rows) {
		t.Fatalf("assignments: %s rows, want %d", cnt.Rows[0][0], rows)
	}
	clusters, err := s.Query("SELECT CLUSTER, COUNT(*) FROM km_assign GROUP BY CLUSTER")
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters.Rows) != 3 {
		t.Fatalf("expected 3 clusters, got %d", len(clusters.Rows))
	}

	// Without an id column, synthetic assignment ids must still be unique
	// fleet-wide (per-shard row numbers are renumbered to a global 0..N-1).
	if _, err := s.Exec("CALL IDAX.KMEANS('TRAIN', 'F1,F2', 3, 'M_KM2', 'KM_ASSIGN2')"); err != nil {
		t.Fatal(err)
	}
	dupIDs, err := s.Query("SELECT id FROM km_assign2 GROUP BY id HAVING COUNT(*) > 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(dupIDs.Rows) != 0 {
		t.Fatalf("synthetic assignment ids collide across shards: %d duplicates", len(dupIDs.Rows))
	}
	total, err := s.Query("SELECT COUNT(*) FROM km_assign2")
	if err != nil {
		t.Fatal(err)
	}
	if total.Rows[0][0] != fmt.Sprint(rows) {
		t.Fatalf("synthetic-id assignments: %s rows, want %d", total.Rows[0][0], rows)
	}

	res, err = s.Exec("CALL IDAX.DECISION_TREE('TRAIN', 'FLAG', 'F1,F2', 'M_DT', 6)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "decision forest of 3 shard-local trees") {
		t.Fatalf("forest message: %q", res.Message)
	}
	res, err = s.Exec("CALL IDAX.PREDICT('M_DT', 'TRAIN', 'CID', 'DT_SCORES')")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != rows {
		t.Fatalf("forest scored %d rows, want %d", res.RowsAffected, rows)
	}
	// Forest predictions must broadly agree with the labels they trained on.
	agree, err := s.Query("SELECT COUNT(*) FROM train t INNER JOIN dt_scores d ON t.cid = d.id WHERE t.flag = CAST(d.label AS BIGINT)")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := strconv.Atoi(agree.Rows[0][0])
	if n < rows*8/10 {
		t.Fatalf("forest agrees on only %d of %d rows", n, rows)
	}
}
