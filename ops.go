package idaax

import (
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/obs/health"
	"idaax/internal/ops"
)

// This file is the operations-plane facade: the event journal, the health
// report, the fleet resource accounting and the ops HTTP server, all reading
// the same surfaces CALL SYSPROC.ACCEL_EVENTS / ACCEL_METRICS serve over SQL.

// Event is one entry of the structured event journal: membership changes,
// rebalance lifecycle, CDC lag crossings, slow queries, scatter and scan
// failures, transaction aborts and health verdict flips.
type Event = eventlog.Event

// EventSeverity classifies an event's operational urgency.
type EventSeverity = eventlog.Severity

// Event severities, in increasing urgency.
const (
	EventInfo  = eventlog.Info
	EventWarn  = eventlog.Warn
	EventError = eventlog.Error
)

// HealthReport is the aggregated fleet health verdict: the worst component
// wins. /healthz serves it with status 503 when any component is unhealthy.
type HealthReport = health.Report

// FleetResources is the fleet-wide capacity view: per-member memory
// accounting (tables, rows, bytes, blocks, zone-map entries) plus the skew
// summary the fleet_capacity_skew_pct gauge exports.
type FleetResources = obs.FleetResources

// Events returns up to n of the most recent journal events, newest first
// (n <= 0 returns everything retained). minSeverity filters to events at or
// above the given severity ("" or "INFO" keeps all).
func (s *System) Events(n int, minSeverity string) ([]Event, error) {
	var f eventlog.Filter
	if minSeverity != "" {
		sev, ok := eventlog.ParseSeverity(minSeverity)
		if !ok {
			return nil, errUnknownSeverity(minSeverity)
		}
		f.MinSeverity = sev
	}
	return s.coord.Events.Recent(n, f), nil
}

// EmitEvent appends an application event to the journal (applications share
// the ring with the system's own events; eventType is free-form).
func (s *System) EmitEvent(eventType string, severity EventSeverity, message string) Event {
	return s.coord.Events.Emitf(eventType, severity, "", "", message)
}

// HealthReport runs every component check and folds in any watchdog
// overrides. The same report backs /healthz and /readyz.
func (s *System) HealthReport() HealthReport {
	return s.coord.Health.Report()
}

// FleetResources gathers every paired accelerator's memory accounting into
// the fleet capacity view (the /fleet endpoint serves the same data).
func (s *System) FleetResources() FleetResources {
	return s.coord.FleetResources()
}

// StartHealthWatchdog starts the background rule evaluation loop (rebalance
// no-progress, CDC lag, slow-query spikes, scan-error streaks). ServeOps
// starts it implicitly; call this to run the watchdog without the HTTP
// server. Idempotent; Close stops it.
func (s *System) StartHealthWatchdog() { s.coord.Watchdog.Start() }

// OpsServer is a running operations HTTP server (see System.ServeOps).
type OpsServer struct {
	srv *ops.Server
}

// Addr returns the server's bound address (useful when ServeOps was given
// ":0").
func (o *OpsServer) Addr() string { return o.srv.Addr() }

// Close gracefully shuts the server down. The system-wide watchdog keeps
// running until System.Close.
func (o *OpsServer) Close() error { return o.srv.Close() }

// ServeOps starts the read-only operations HTTP server on addr and the
// health watchdog behind it. Endpoints: /metrics (Prometheus exposition),
// /healthz and /readyz (503 on unhealthy / not ready), /events, /queries,
// /fleet (JSON) and /debug/pprof/. System.Close shuts the server down;
// closing the returned handle directly also works.
func (s *System) ServeOps(addr string) (*OpsServer, error) {
	srv := ops.NewServer(addr, s.opsSource())
	if err := srv.Start(); err != nil {
		return nil, err
	}
	s.coord.Watchdog.Start()
	o := &OpsServer{srv: srv}
	s.opsMu.Lock()
	s.opsSrvs = append(s.opsSrvs, o)
	s.opsMu.Unlock()
	return o, nil
}

// opsSource adapts the coordinator's surfaces to the ops server's read-only
// closures.
func (s *System) opsSource() ops.Source {
	return ops.Source{
		MetricsText: s.MetricsText,
		Health:      s.coord.Health.Report,
		Events:      s.coord.Events,
		Queries: func(n int, slow bool) []obs.QueryRecord {
			if slow {
				return s.coord.History.SlowQueries(n)
			}
			return s.coord.History.Recent(n)
		},
		Fleet: s.coord.FleetResources,
	}
}

type severityError string

func errUnknownSeverity(s string) error { return severityError(s) }

func (e severityError) Error() string {
	return "idaax: unknown event severity " + string(e) + " (use INFO, WARN or ERROR)"
}
