// Command idaaserver is the network front end of the system: it serves the
// versioned wire protocol (POST /v1/query, POST /v1/exec, session pooling
// with per-session transaction state, streamed row chunks) with admission
// control — bounded concurrency slots, interactive/batch priority classes,
// queue-depth fast-fail — plus, on the same port, the read-only operations
// surface: Prometheus /metrics, /healthz and /readyz probes, the /events
// journal, /queries history, the /fleet capacity view and /debug/pprof/.
//
// Connect with `idaasql -remote host:port`, or curl it directly:
//
//	curl -s localhost:8080/v1/query -d '{"sql":"SELECT COUNT(*) FROM orders"}'
//
// With -demo it loads a small sharded dataset and runs a background query
// loop so every endpoint has live data to show. SIGTERM drains in-flight
// statements before the final durable checkpoint, so acknowledged commits
// always survive a restart. The protocol contract is docs/WIRE_PROTOCOL.md;
// tuning guidance is docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idaax"
)

func main() {
	addr := flag.String("addr", ":8080", "wire + ops server listen address")
	opsAddr := flag.String("ops-addr", "", "optional separate ops-only listen address (ops stays mounted on -addr too)")
	shards := flag.Int("shards", 3, "accelerators in the fleet (>=2 registers a shard group)")
	demo := flag.Bool("demo", false, "load a demo dataset and run a background query loop")
	watchdog := flag.Duration("watchdog", time.Second, "health watchdog evaluation interval")
	dataDir := flag.String("data", "", "durable data directory (WAL + checkpoints); empty = in-memory")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, grouped or never")
	ckptMB := flag.Int64("checkpoint-wal-mb", 64, "auto-checkpoint when the WAL grows past this many MiB (0 disables)")
	slots := flag.Int("slots", 0, "admission concurrency slots (0 = default, negative = admission off)")
	queueDepth := flag.Int("queue-depth", 0, "per-class admission queue depth before fast-fail 429 (0 = default)")
	maxWait := flag.Duration("max-queue-wait", 0, "shed queued requests after this long (0 = wait until the client gives up)")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "reap wire sessions idle this long (negative disables)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "bound on waiting for in-flight statements at shutdown")
	user := flag.String("default-user", "PUBLIC", "authorization id for requests that name none")
	flag.Parse()

	var accels []idaax.AcceleratorConfig
	for i := 0; i < *shards; i++ {
		accels = append(accels, idaax.AcceleratorConfig{Name: fmt.Sprintf("IDAA%d", i+1)})
	}
	ckptBytes := *ckptMB << 20
	if ckptBytes <= 0 {
		ckptBytes = -1
	}
	sys, err := idaax.OpenDurable(idaax.Config{
		Accelerators:       accels,
		AnalyticsPublic:    true,
		WatchdogInterval:   *watchdog,
		DataDir:            *dataDir,
		FsyncPolicy:        *fsync,
		CheckpointWALBytes: ckptBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if *dataDir != "" {
		fmt.Printf("durable store open at %s (fsync=%s)\n", *dataDir, *fsync)
	}

	stop := make(chan struct{})
	if *demo {
		if err := loadDemo(sys, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "demo load:", err)
			os.Exit(1)
		}
		go queryLoop(sys, stop)
	}

	srv, err := sys.ServeWire(idaax.ServeConfig{
		Addr:             *addr,
		AdmissionSlots:   *slots,
		AdmissionQueue:   *queueDepth,
		AdmissionMaxWait: *maxWait,
		DefaultUser:      *user,
		IdleTimeout:      *idle,
		DrainTimeout:     *drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wire server listening on http://%s (endpoints: /v1/query /v1/exec /v1/sessions /metrics /healthz /readyz /events /queries /fleet /debug/pprof/)\n", srv.Addr())

	if *opsAddr != "" {
		osrv, err := sys.ServeOps(*opsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("ops server listening on http://%s\n", osrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	fmt.Println("shutting down: draining in-flight statements")
}

// loadDemo creates a sharded orders table and fills it with enough rows that
// the fleet gauges and zone maps have something to report.
func loadDemo(sys *idaax.System, shards int) error {
	s := sys.AdminSession()
	target := "IDAA1"
	if shards >= 2 {
		target = "SHARDS"
	}
	stmts := []string{
		fmt.Sprintf("CREATE TABLE orders (id BIGINT, customer BIGINT, region VARCHAR(16), amount DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(customer)", target),
		// The demo exists to be poked at with curl; one-shot wire requests
		// default to PUBLIC, so the demo table must be readable by it.
		"GRANT SELECT ON orders TO PUBLIC",
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(stmt); err != nil {
			return err
		}
	}
	regions := []string{"EMEA", "APAC", "AMER", "LATAM"}
	for i := 0; i < 20000; i++ {
		stmt := fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, '%s', %.2f)",
			i, i%997, regions[i%len(regions)], float64(i%5000)/7.0)
		if _, err := s.Exec(stmt); err != nil {
			return err
		}
	}
	_, err := s.Exec("ANALYZE TABLE orders")
	return err
}

// queryLoop keeps the history, histograms and event journal moving.
func queryLoop(sys *idaax.System, stop <-chan struct{}) {
	s := sys.AdminSession()
	queries := []string{
		"SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region",
		"SELECT COUNT(*) FROM orders WHERE amount > 500",
		"SELECT customer, SUM(amount) FROM orders WHERE region = 'EMEA' GROUP BY customer",
	}
	i := 0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			_, _ = s.Query(queries[i%len(queries)])
			i++
		}
	}
}
