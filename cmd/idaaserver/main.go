// Command idaaserver runs a system with its operations HTTP server: the
// Prometheus /metrics endpoint, /healthz and /readyz probes, the /events
// journal, /queries history, the /fleet capacity view and /debug/pprof/. With
// -demo it loads a small sharded dataset and runs a background query loop so
// every endpoint has live data to show.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idaax"
)

func main() {
	addr := flag.String("addr", ":8080", "ops server listen address")
	shards := flag.Int("shards", 3, "accelerators in the fleet (>=2 registers a shard group)")
	demo := flag.Bool("demo", false, "load a demo dataset and run a background query loop")
	watchdog := flag.Duration("watchdog", time.Second, "health watchdog evaluation interval")
	dataDir := flag.String("data", "", "durable data directory (WAL + checkpoints); empty = in-memory")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, grouped or never")
	ckptMB := flag.Int64("checkpoint-wal-mb", 64, "auto-checkpoint when the WAL grows past this many MiB (0 disables)")
	flag.Parse()

	var accels []idaax.AcceleratorConfig
	for i := 0; i < *shards; i++ {
		accels = append(accels, idaax.AcceleratorConfig{Name: fmt.Sprintf("IDAA%d", i+1)})
	}
	ckptBytes := *ckptMB << 20
	if ckptBytes <= 0 {
		ckptBytes = -1
	}
	sys, err := idaax.OpenDurable(idaax.Config{
		Accelerators:       accels,
		AnalyticsPublic:    true,
		WatchdogInterval:   *watchdog,
		DataDir:            *dataDir,
		FsyncPolicy:        *fsync,
		CheckpointWALBytes: ckptBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if *dataDir != "" {
		fmt.Printf("durable store open at %s (fsync=%s)\n", *dataDir, *fsync)
	}

	stop := make(chan struct{})
	if *demo {
		if err := loadDemo(sys, *shards); err != nil {
			fmt.Fprintln(os.Stderr, "demo load:", err)
			os.Exit(1)
		}
		go queryLoop(sys, stop)
	}

	srv, err := sys.ServeOps(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("ops server listening on http://%s (endpoints: /metrics /healthz /readyz /events /queries /fleet /debug/pprof/)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	fmt.Println("shutting down")
}

// loadDemo creates a sharded orders table and fills it with enough rows that
// the fleet gauges and zone maps have something to report.
func loadDemo(sys *idaax.System, shards int) error {
	s := sys.AdminSession()
	target := "IDAA1"
	if shards >= 2 {
		target = "SHARDS"
	}
	stmts := []string{
		fmt.Sprintf("CREATE TABLE orders (id BIGINT, customer BIGINT, region VARCHAR(16), amount DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(customer)", target),
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(stmt); err != nil {
			return err
		}
	}
	regions := []string{"EMEA", "APAC", "AMER", "LATAM"}
	for i := 0; i < 20000; i++ {
		stmt := fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, '%s', %.2f)",
			i, i%997, regions[i%len(regions)], float64(i%5000)/7.0)
		if _, err := s.Exec(stmt); err != nil {
			return err
		}
	}
	_, err := s.Exec("ANALYZE TABLE orders")
	return err
}

// queryLoop keeps the history, histograms and event journal moving.
func queryLoop(sys *idaax.System, stop <-chan struct{}) {
	s := sys.AdminSession()
	queries := []string{
		"SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region",
		"SELECT COUNT(*) FROM orders WHERE amount > 500",
		"SELECT customer, SUM(amount) FROM orders WHERE region = 'EMEA' GROUP BY customer",
	}
	i := 0
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			_, _ = s.Query(queries[i%len(queries)])
			i++
		}
	}
}
