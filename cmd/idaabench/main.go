// Command idaabench regenerates the evaluation tables of the reproduction
// (experiments E1–E12 and the architecture figure F1). Each experiment builds
// its own system instance, generates its workload deterministically and prints
// the resulting table, so the numbers in EXPERIMENTS.md can be reproduced with
//
//	go run ./cmd/idaabench -scale full
//	go run ./cmd/idaabench -experiment e12 -scale small
//
// For CI and tooling, -json writes a machine-readable report of every table
// (including each experiment's named metrics), and -baseline compares the
// fresh metrics against a checked-in report, exiting non-zero when any metric
// regresses by more than -tolerance (throughput dropping, data movement
// rising):
//
//	go run ./cmd/idaabench -experiment e12 -scale small \
//	    -json BENCH_E12.json -baseline .github/bench-baselines/BENCH_E12.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"idaax/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id to run (e1..e12, f1, or 'all')")
	scaleName := flag.String("scale", "small", "dataset scale: small or full")
	slices := flag.Int("slices", 0, "accelerator worker slices (0 = number of CPUs)")
	jsonPath := flag.String("json", "", "write a machine-readable report of the run to this path")
	baselinePath := flag.String("baseline", "", "compare the run's metrics against this report; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.30, "allowed relative regression before -baseline fails the run")
	flag.Parse()

	var scale bench.Scale
	switch strings.ToLower(*scaleName) {
	case "small":
		scale = bench.SmallScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (use small or full)\n", *scaleName)
		os.Exit(2)
	}
	scale.Slices = *slices

	ids := bench.IDs()
	if strings.ToLower(*experiment) != "all" {
		ids = []string{strings.ToLower(*experiment)}
	}

	report := &bench.Report{Scale: scale.Name}
	exitCode := 0
	for _, id := range ids {
		start := time.Now()
		table, err := bench.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			exitCode = 1
			continue
		}
		report.Experiments = append(report.Experiments, table)
		fmt.Println(table.Format())
		fmt.Printf("  (scale=%s, wall clock %.1fs)\n\n", scale.Name, time.Since(start).Seconds())
	}

	if *jsonPath != "" {
		payload, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(payload, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}

	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read baseline %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		var baseline bench.Report
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "parse baseline %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		regressions := bench.CompareMetrics(&baseline, report, *tolerance)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "bench regression against %s (tolerance %.0f%%):\n", *baselinePath, *tolerance*100)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions against %s (tolerance %.0f%%)\n", *baselinePath, *tolerance*100)
	}
	os.Exit(exitCode)
}
