// Command idaabench regenerates the evaluation tables of the reproduction
// (experiments E1–E10 and the architecture figure F1). Each experiment builds
// its own system instance, generates its workload deterministically and prints
// the resulting table, so the numbers in EXPERIMENTS.md can be reproduced with
//
//	go run ./cmd/idaabench -scale full
//	go run ./cmd/idaabench -experiment e1 -scale small
//
// E10 exercises the cost-based planner: co-located shard-local joins versus
// the forced gather plan, at two data scales.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"idaax/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id to run (e1..e10, f1, or 'all')")
	scaleName := flag.String("scale", "small", "dataset scale: small or full")
	slices := flag.Int("slices", 0, "accelerator worker slices (0 = number of CPUs)")
	flag.Parse()

	var scale bench.Scale
	switch strings.ToLower(*scaleName) {
	case "small":
		scale = bench.SmallScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (use small or full)\n", *scaleName)
		os.Exit(2)
	}
	scale.Slices = *slices

	ids := bench.IDs()
	if strings.ToLower(*experiment) != "all" {
		ids = []string{strings.ToLower(*experiment)}
	}

	exitCode := 0
	for _, id := range ids {
		start := time.Now()
		table, err := bench.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Println(table.Format())
		fmt.Printf("  (scale=%s, wall clock %.1fs)\n\n", scale.Name, time.Since(start).Seconds())
	}
	os.Exit(exitCode)
}
