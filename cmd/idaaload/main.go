// Command idaaload is the loader front end: it bulk-loads CSV or JSON-lines
// files into a table of a freshly created system and reports where the data
// landed (directly on the accelerator for accelerator-only targets, DB2
// otherwise). It exists mainly as a runnable demonstration of the loader
// component; applications embed the library and call System.Load directly.
//
//	go run ./cmd/idaaload -ddl "CREATE TABLE posts (...) IN ACCELERATOR IDAA1" -table posts -file posts.csv -header
package main

import (
	"flag"
	"fmt"
	"os"

	"idaax"
)

func main() {
	ddl := flag.String("ddl", "", "CREATE TABLE statement executed before the load (optional)")
	table := flag.String("table", "", "target table name (required)")
	file := flag.String("file", "", "input file (required; '-' for stdin)")
	format := flag.String("format", "csv", "input format: csv or jsonl")
	header := flag.Bool("header", false, "first CSV record is a header; map columns by name")
	nullToken := flag.String("null", "", "literal treated as NULL")
	batch := flag.Int("batch", 5000, "rows per insert batch")
	flag.Parse()

	if *table == "" || *file == "" {
		flag.Usage()
		os.Exit(2)
	}

	sys := idaax.Open()
	defer sys.Close()
	session := sys.AdminSession()
	if *ddl != "" {
		if _, err := session.Exec(*ddl); err != nil {
			fmt.Fprintln(os.Stderr, "ddl failed:", err)
			os.Exit(1)
		}
	}

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	report, err := sys.Load(*table, in, idaax.LoadOptions{
		Format:      *format,
		HasHeader:   *header,
		MapByHeader: *header,
		NullToken:   *nullToken,
		BatchSize:   *batch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "load failed:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d of %d rows into %s (%s) in %s, %d batches, %d skipped\n",
		report.RowsLoaded, report.RowsRead, report.Table, report.LoadedInto, report.Elapsed, report.Batches, report.RowsSkipped)

	info, err := sys.TableInfo(*table)
	if err == nil {
		fmt.Printf("table state: kind=%s accelerator=%s db2_rows=%d accel_rows=%d\n",
			info.Kind, info.Accelerator, info.DB2Rows, info.AcceleratorRows)
	}
}
