// Command idaasql is an interactive SQL shell for the federated system: a DB2
// host engine with one attached accelerator. It demonstrates the full surface
// of the reproduction — regular tables, ACCEL_* procedures, accelerator-only
// tables, CALL-based analytics, EXPLAIN routing and SHOW commands — from a
// terminal.
//
//	go run ./cmd/idaasql
//	idaa> CREATE TABLE t (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1;
//	idaa> INSERT INTO t VALUES (1, 2.5);
//	idaa> EXPLAIN ANALYZE SELECT * FROM t;
//
// The shell also has psql-style meta-commands: "\timing" toggles printing
// each statement's elapsed wall time, "\health" prints the per-component
// health report, and "\events [n]" prints the n most recent journal events
// (default 20). EXPLAIN ANALYZE renders the plan with per-operator actual
// rows and time next to the planner's estimates.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"idaax"
)

func main() {
	user := flag.String("user", "SYSADM", "authorization id for the session")
	slices := flag.Int("slices", 0, "accelerator worker slices (0 = number of CPUs)")
	script := flag.String("file", "", "execute the SQL script in this file and exit")
	flag.Parse()

	sys := idaax.New(idaax.Config{AcceleratorSlices: *slices, AnalyticsPublic: true})
	defer sys.Close()
	session := sys.Session(*user)

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results, err := session.ExecScript(string(data))
		for _, res := range results {
			fmt.Println(res.FormatTable())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("idaax SQL shell — DB2 host + accelerator", "(user", *user+")")
	fmt.Println(`Type SQL statements terminated by ';'. Try "SHOW TABLES;", "EXPLAIN ANALYZE SELECT ...;", "\timing", "\health", "\events [n]" or "\q" to quit.`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buffer strings.Builder
	timing := false
	prompt := "idaa> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == `\q` || strings.EqualFold(trimmed, "quit") || strings.EqualFold(trimmed, "exit") {
			break
		}
		if trimmed == `\timing` {
			timing = !timing
			if timing {
				fmt.Println("Timing is on.")
			} else {
				fmt.Println("Timing is off.")
			}
			continue
		}
		if trimmed == `\health` {
			printHealth(sys)
			continue
		}
		if trimmed == `\events` || strings.HasPrefix(trimmed, `\events `) {
			printEvents(sys, trimmed)
			continue
		}
		if trimmed == "" {
			continue
		}
		buffer.WriteString(line)
		buffer.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "   -> "
			continue
		}
		prompt = "idaa> "
		sql := buffer.String()
		buffer.Reset()
		start := time.Now()
		results, err := session.ExecScript(sql)
		elapsed := time.Since(start)
		for _, res := range results {
			fmt.Println(res.FormatTable())
			if res.Routed != "" {
				fmt.Printf("  [routed to %s]\n", res.Routed)
			}
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		if timing {
			fmt.Printf("Time: %.3f ms\n", float64(elapsed)/float64(time.Millisecond))
		}
	}
}

// printHealth renders the fleet health verdict and every component line.
func printHealth(sys *idaax.System) {
	rep := sys.HealthReport()
	fmt.Printf("fleet: %s\n", rep.Status)
	for _, c := range rep.Components {
		line := fmt.Sprintf("  %-16s %s", c.Name, c.Status)
		if c.Detail != "" {
			line += " — " + c.Detail
		}
		if c.Watchdog {
			line += " [watchdog]"
		}
		fmt.Println(line)
	}
}

// printEvents renders the n most recent journal events (default 20),
// newest first: "\events" or "\events 50".
func printEvents(sys *idaax.System, cmd string) {
	n := 20
	if rest := strings.TrimSpace(strings.TrimPrefix(cmd, `\events`)); rest != "" {
		v, err := strconv.Atoi(rest)
		if err != nil || v < 0 {
			fmt.Printf("usage: \\events [n] (got %q)\n", rest)
			return
		}
		n = v
	}
	evs, err := sys.Events(n, "")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(evs) == 0 {
		fmt.Println("no events")
		return
	}
	for _, e := range evs {
		line := fmt.Sprintf("%s  %-5s %-20s %s", e.Time.Format("15:04:05.000"), e.Severity, e.Type, e.Message)
		fmt.Println(line)
	}
}
