// Command idaasql is an interactive SQL shell for the federated system: a DB2
// host engine with one attached accelerator. It demonstrates the full surface
// of the reproduction — regular tables, ACCEL_* procedures, accelerator-only
// tables, CALL-based analytics, EXPLAIN routing and SHOW commands — from a
// terminal.
//
//	go run ./cmd/idaasql
//	idaa> CREATE TABLE t (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1;
//	idaa> INSERT INTO t VALUES (1, 2.5);
//	idaa> EXPLAIN ANALYZE SELECT * FROM t;
//
// With -remote host:port the shell speaks the wire protocol to a running
// idaaserver instead of embedding an engine: statements run on a pooled
// server session (so BEGIN/COMMIT work), -priority sets the admission class,
// and "\health"/"\events" read the server's ops endpoints.
//
//	go run ./cmd/idaasql -remote localhost:8080 -priority batch
//
// The shell also has psql-style meta-commands: "\timing" toggles printing
// each statement's elapsed wall time, "\health" prints the per-component
// health report, and "\events [n]" prints the n most recent journal events
// (default 20). EXPLAIN ANALYZE renders the plan with per-operator actual
// rows and time next to the planner's estimates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"idaax"
	"idaax/internal/wire"
)

// shell abstracts the two backends of the REPL: the embedded system and a
// remote idaaserver spoken to over the wire protocol.
type shell interface {
	// ExecScript runs a semicolon-separated script, returning one rendered
	// table per statement and stopping at the first error.
	ExecScript(sql string) ([]*idaax.Result, error)
	// Health prints the health report; Events prints the n most recent events.
	Health()
	Events(n int)
	Close()
}

func main() {
	user := flag.String("user", "SYSADM", "authorization id for the session")
	slices := flag.Int("slices", 0, "accelerator worker slices (0 = number of CPUs)")
	script := flag.String("file", "", "execute the SQL script in this file and exit")
	remote := flag.String("remote", "", "connect to a running idaaserver (host:port) instead of embedding an engine")
	priority := flag.String("priority", "", "admission priority class for -remote sessions: interactive or batch")
	flag.Parse()

	var sh shell
	if *remote != "" {
		rsh, err := newRemoteShell(*remote, *user, *priority)
		if err != nil {
			fmt.Fprintln(os.Stderr, "connect:", err)
			os.Exit(1)
		}
		sh = rsh
	} else {
		sh = newLocalShell(*user, *slices)
	}
	defer sh.Close()

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results, err := sh.ExecScript(string(data))
		for _, res := range results {
			fmt.Println(res.FormatTable())
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	if *remote != "" {
		fmt.Println("idaax SQL shell — remote", *remote, "(user", *user+")")
	} else {
		fmt.Println("idaax SQL shell — DB2 host + accelerator", "(user", *user+")")
	}
	fmt.Println(`Type SQL statements terminated by ';'. Try "SHOW TABLES;", "EXPLAIN ANALYZE SELECT ...;", "\timing", "\health", "\events [n]" or "\q" to quit.`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buffer strings.Builder
	timing := false
	prompt := "idaa> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == `\q` || strings.EqualFold(trimmed, "quit") || strings.EqualFold(trimmed, "exit") {
			break
		}
		if trimmed == `\timing` {
			timing = !timing
			if timing {
				fmt.Println("Timing is on.")
			} else {
				fmt.Println("Timing is off.")
			}
			continue
		}
		if trimmed == `\health` {
			sh.Health()
			continue
		}
		if trimmed == `\events` || strings.HasPrefix(trimmed, `\events `) {
			n := 20
			if rest := strings.TrimSpace(strings.TrimPrefix(trimmed, `\events`)); rest != "" {
				v, err := strconv.Atoi(rest)
				if err != nil || v < 0 {
					fmt.Printf("usage: \\events [n] (got %q)\n", rest)
					continue
				}
				n = v
			}
			sh.Events(n)
			continue
		}
		if trimmed == "" {
			continue
		}
		buffer.WriteString(line)
		buffer.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "   -> "
			continue
		}
		prompt = "idaa> "
		sql := buffer.String()
		buffer.Reset()
		start := time.Now()
		results, err := sh.ExecScript(sql)
		elapsed := time.Since(start)
		for _, res := range results {
			fmt.Println(res.FormatTable())
			if res.Routed != "" {
				fmt.Printf("  [routed to %s]\n", res.Routed)
			}
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		if timing {
			fmt.Printf("Time: %.3f ms\n", float64(elapsed)/float64(time.Millisecond))
		}
	}
}

// ---------------------------------------------------------------------------
// Local (embedded) backend
// ---------------------------------------------------------------------------

type localShell struct {
	sys     *idaax.System
	session *idaax.Session
}

func newLocalShell(user string, slices int) *localShell {
	sys := idaax.New(idaax.Config{AcceleratorSlices: slices, AnalyticsPublic: true})
	return &localShell{sys: sys, session: sys.Session(user)}
}

func (l *localShell) ExecScript(sql string) ([]*idaax.Result, error) {
	return l.session.ExecScript(sql)
}

func (l *localShell) Close() { l.sys.Close() }

func (l *localShell) Health() {
	rep := l.sys.HealthReport()
	fmt.Printf("fleet: %s\n", rep.Status)
	for _, c := range rep.Components {
		line := fmt.Sprintf("  %-16s %s", c.Name, c.Status)
		if c.Detail != "" {
			line += " — " + c.Detail
		}
		if c.Watchdog {
			line += " [watchdog]"
		}
		fmt.Println(line)
	}
}

func (l *localShell) Events(n int) {
	evs, err := l.sys.Events(n, "")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(evs) == 0 {
		fmt.Println("no events")
		return
	}
	for _, e := range evs {
		fmt.Printf("%s  %-5s %-20s %s\n", e.Time.Format("15:04:05.000"), e.Severity, e.Type, e.Message)
	}
}

// ---------------------------------------------------------------------------
// Remote (wire-protocol) backend
// ---------------------------------------------------------------------------

type remoteShell struct {
	client *wire.Client
}

func newRemoteShell(addr, user, priority string) (*remoteShell, error) {
	c := wire.NewClient(addr, nil)
	c.SetUser(user)
	c.SetPriority(priority)
	// A pooled server session so explicit transactions span statements and the
	// priority class sticks; the server reaps it if the shell vanishes.
	if err := c.OpenSession(); err != nil {
		return nil, err
	}
	return &remoteShell{client: c}, nil
}

func (r *remoteShell) ExecScript(sql string) ([]*idaax.Result, error) {
	var out []*idaax.Result
	for _, stmt := range splitStatements(sql) {
		res, err := r.client.Exec(stmt)
		if err != nil {
			return out, err
		}
		out = append(out, &idaax.Result{
			Columns:      res.Columns,
			Rows:         res.Rows,
			RowsAffected: res.RowsAffected,
			Routed:       res.Routed,
			Message:      res.Message,
		})
	}
	return out, nil
}

func (r *remoteShell) Close() { _ = r.client.CloseSession() }

func (r *remoteShell) Health() {
	raw, status, err := r.client.Health()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var rep struct {
		Status     string `json:"status"`
		Components []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Detail string `json:"detail"`
		} `json:"components"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		fmt.Printf("health (HTTP %d): %s\n", status, strings.TrimSpace(string(raw)))
		return
	}
	fmt.Printf("fleet: %s (HTTP %d)\n", rep.Status, status)
	for _, c := range rep.Components {
		line := fmt.Sprintf("  %-16s %s", c.Name, c.Status)
		if c.Detail != "" {
			line += " — " + c.Detail
		}
		fmt.Println(line)
	}
}

func (r *remoteShell) Events(n int) {
	raw, err := r.client.Events(n)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var evs []struct {
		Time     time.Time `json:"time"`
		Type     string    `json:"type"`
		Severity string    `json:"severity"`
		Message  string    `json:"message"`
	}
	if err := json.Unmarshal(raw, &evs); err != nil {
		fmt.Println(strings.TrimSpace(string(raw)))
		return
	}
	if len(evs) == 0 {
		fmt.Println("no events")
		return
	}
	for _, e := range evs {
		fmt.Printf("%s  %-5s %-20s %s\n", e.Time.Format("15:04:05.000"), e.Severity, e.Type, e.Message)
	}
}

// splitStatements splits a script on semicolons outside single-quoted
// strings; the wire protocol runs one statement per request.
func splitStatements(sql string) []string {
	var out []string
	var sb strings.Builder
	inString := false
	for _, r := range sql {
		switch {
		case r == '\'':
			inString = !inString
			sb.WriteRune(r)
		case r == ';' && !inString:
			if stmt := strings.TrimSpace(sb.String()); stmt != "" {
				out = append(out, stmt)
			}
			sb.Reset()
		default:
			sb.WriteRune(r)
		}
	}
	if stmt := strings.TrimSpace(sb.String()); stmt != "" {
		out = append(out, stmt)
	}
	return out
}
