package idaax_test

import (
	"fmt"
	"strings"
	"testing"

	"idaax"
)

// seedJoinTables creates a co-located pair (ORDERS hash on CUSTOMER_ID,
// CUSTOMERS hash on ID) plus a round-robin LOOKUP table on the given
// accelerator and loads deterministic rows through the SQL INSERT path.
func seedJoinTables(t *testing.T, sys *idaax.System, accelerator string) {
	t.Helper()
	s := sys.AdminSession()
	ddl := []string{
		fmt.Sprintf("CREATE TABLE orders (oid BIGINT NOT NULL, customer_id BIGINT, amount DOUBLE, region VARCHAR(8)) IN ACCELERATOR %s DISTRIBUTE BY HASH(customer_id)", accelerator),
		fmt.Sprintf("CREATE TABLE customers (id BIGINT NOT NULL, name VARCHAR(16), segment VARCHAR(8)) IN ACCELERATOR %s DISTRIBUTE BY HASH(id)", accelerator),
		fmt.Sprintf("CREATE TABLE lookup (region VARCHAR(8), factor DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY RANDOM", accelerator),
	}
	for _, d := range ddl {
		if _, err := s.Exec(d); err != nil {
			t.Fatal(err)
		}
	}
	regions := []string{"EU", "US", "APAC"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO orders VALUES ")
	for i := 0; i < 400; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %g, '%s')", i, i%59, float64(i%11)*0.5, regions[i%3])
	}
	s.MustExec(sb.String())
	sb.Reset()
	sb.WriteString("INSERT INTO customers VALUES ")
	segments := []string{"SMB", "ENT", "GOV"}
	for i := 0; i < 59; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'C%03d', '%s')", i, i, segments[i%3])
	}
	s.MustExec(sb.String())
	s.MustExec("INSERT INTO lookup VALUES ('EU', 1.5), ('US', 2.0), ('APAC', 0.5)")
}

// TestPlannerDifferentialSQL runs join and pruning statements on a 3-shard
// system and a single-accelerator system; result sets must be byte-identical.
func TestPlannerDifferentialSQL(t *testing.T) {
	sharded := newShardedSystem(t, 3)
	single := idaax.New(idaax.Config{AcceleratorSlices: 2})
	seedJoinTables(t, sharded, "SHARDS")
	seedJoinTables(t, single, "IDAA1")

	queries := []string{
		// Co-located joins.
		"SELECT o.oid, c.name FROM orders o JOIN customers c ON o.customer_id = c.id ORDER BY o.oid",
		"SELECT c.segment, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment ORDER BY c.segment",
		"SELECT o.oid, c.name FROM orders o, customers c WHERE o.customer_id = c.id AND o.amount > 2 ORDER BY o.oid",
		// Broadcast join (LOOKUP is round robin).
		"SELECT l.region, SUM(o.amount * l.factor) FROM orders o JOIN lookup l ON o.region = l.region GROUP BY l.region ORDER BY l.region",
		// Three-way.
		"SELECT c.segment, l.region, COUNT(*) FROM orders o JOIN customers c ON o.customer_id = c.id JOIN lookup l ON o.region = l.region GROUP BY c.segment, l.region ORDER BY c.segment, l.region",
		// Gather fallback.
		"SELECT c.id, COUNT(o.oid) FROM customers c LEFT JOIN orders o ON c.id = o.customer_id GROUP BY c.id ORDER BY c.id",
		// IN-list / range pruning.
		"SELECT COUNT(*), SUM(amount) FROM orders WHERE customer_id IN (3, 17, 42)",
		"SELECT COUNT(*) FROM orders WHERE customer_id BETWEEN 10 AND 12",
		"SELECT oid FROM orders WHERE customer_id >= 55 AND customer_id < 58 ORDER BY oid",
		// Pruned co-located join.
		"SELECT o.oid, c.name FROM orders o JOIN customers c ON o.customer_id = c.id WHERE o.customer_id = 7 ORDER BY o.oid",
	}
	shardedSess := sharded.AdminSession()
	singleSess := single.AdminSession()
	for _, q := range queries {
		got, err := shardedSess.Query(q)
		if err != nil {
			t.Fatalf("sharded %q: %v", q, err)
		}
		want, err := singleSess.Query(q)
		if err != nil {
			t.Fatalf("single %q: %v", q, err)
		}
		if resultFingerprint(got) != resultFingerprint(want) {
			t.Fatalf("%q differs:\nsharded:\n%s\nsingle:\n%s", q, resultFingerprint(got), resultFingerprint(want))
		}
	}

	st, err := sharded.ShardGroupStats("SHARDS")
	if err != nil {
		t.Fatal(err)
	}
	if st.ColocatedJoins == 0 || st.BroadcastJoins == 0 || st.ShardScansAvoided == 0 {
		t.Fatalf("planner counters missing activity: %+v", st)
	}
}

// TestExplainColocatedJoin is the EXPLAIN acceptance criterion: a two-table
// join over a sharded pair with a shared distribution key must show a
// shard-local (co-located) plan with cost and cardinality estimates.
func TestExplainColocatedJoin(t *testing.T) {
	sys := newShardedSystem(t, 3)
	seedJoinTables(t, sys, "SHARDS")
	s := sys.AdminSession()

	if _, err := s.Exec("ANALYZE TABLE orders"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("EXPLAIN SELECT o.oid, c.name FROM orders o JOIN customers c ON o.customer_id = c.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1] != "SHARDS" {
		t.Fatalf("expected routing to SHARDS, got %v", res.Rows[0])
	}
	plan := ""
	for _, row := range res.Rows[1:] {
		plan += row[3] + "\n"
	}
	for _, want := range []string{"co-located", "HASH JOIN", "SCAN ORDERS", "SCAN CUSTOMERS", "cost=", "rows="} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}

	// A pruned statement shows the single-shard placement.
	res, err = s.Query("EXPLAIN SELECT COUNT(*) FROM orders WHERE customer_id = 7")
	if err != nil {
		t.Fatal(err)
	}
	plan = ""
	for _, row := range res.Rows[1:] {
		plan += row[3] + "\n"
	}
	if !strings.Contains(plan, "single shard") {
		t.Fatalf("pruned plan missing single-shard placement:\n%s", plan)
	}
}

// TestAnalyzeStatementAndProcedure exercises ANALYZE TABLE, the
// SYSPROC.ACCEL_ANALYZE procedure and the statistics facade.
func TestAnalyzeStatementAndProcedure(t *testing.T) {
	sys := newShardedSystem(t, 2)
	seedJoinTables(t, sys, "SHARDS")
	s := sys.AdminSession()

	res, err := s.Exec("ANALYZE TABLE orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 400 {
		t.Fatalf("analyzed %d rows, want 400", res.RowsAffected)
	}
	if res.Routed != "SHARDS" {
		t.Fatalf("routed to %s", res.Routed)
	}

	if _, err := s.Exec("CALL SYSPROC.ACCEL_ANALYZE('SHARDS', 'customers,lookup')"); err != nil {
		t.Fatal(err)
	}

	stats, err := sys.TableStatistics("orders")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rows != 400 {
		t.Fatalf("stats rows = %d", stats.Rows)
	}
	var cust *idaax.ColumnStatistics
	for i := range stats.Columns {
		if stats.Columns[i].Name == "CUSTOMER_ID" {
			cust = &stats.Columns[i]
		}
	}
	if cust == nil {
		t.Fatal("no CUSTOMER_ID column stats")
	}
	if cust.DistinctEst < 50 || cust.DistinctEst > 70 {
		t.Fatalf("CUSTOMER_ID NDV = %f, want ~59", cust.DistinctEst)
	}

	// ANALYZE on a DB2-only table is an error.
	s.MustExec("CREATE TABLE plain (id BIGINT)")
	if _, err := s.Exec("ANALYZE TABLE plain"); err == nil {
		t.Fatal("ANALYZE of a DB2-resident table should fail")
	}
}
