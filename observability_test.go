package idaax_test

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"idaax"
)

var timePat = regexp.MustCompile(`time=\d+\.\d{3}ms`)

// planText joins the PLAN column of an EXPLAIN result and normalizes measured
// times so golden comparisons only see structure, rows and counters.
func planText(res *idaax.Result) string {
	var sb strings.Builder
	for _, row := range res.Rows[1:] {
		sb.WriteString(row[3])
		sb.WriteString("\n")
	}
	return timePat.ReplaceAllString(sb.String(), "time=<t>")
}

// TestExplainGolden pins the full EXPLAIN and EXPLAIN ANALYZE output for the
// plan shapes the planner distinguishes: co-located join, broadcast join,
// distribution-key pruning, vectorized single-accelerator execution and the
// row-at-a-time fallback. Measured times are normalized; every other token —
// estimates, actual row counts, shard counts, placement — is exact.
func TestExplainGolden(t *testing.T) {
	sharded := newShardedSystem(t, 3)
	seedJoinTables(t, sharded, "SHARDS")
	single := idaax.New(idaax.Config{AcceleratorSlices: 2})
	seedJoinTables(t, single, "IDAA1")
	for _, sys := range []*idaax.System{sharded, single} {
		s := sys.AdminSession()
		for _, tbl := range []string{"orders", "customers", "lookup"} {
			s.MustExec("ANALYZE TABLE " + tbl)
		}
	}
	noVec := idaax.New(idaax.Config{AcceleratorSlices: 2})
	seedJoinTables(t, noVec, "IDAA1")
	noVec.AdminSession().MustExec("ANALYZE TABLE orders")
	noVec.SetVectorizedExecution(false)

	cases := []struct {
		name        string
		sys         *idaax.System
		sql         string
		want        string
		wantAnalyze string
	}{
		{
			name: "colocated join",
			sys:  sharded,
			sql:  "SELECT o.oid, c.name FROM orders o JOIN customers c ON o.customer_id = c.id",
			want: `estimated cost=1257.0 rows=400
execution: vectorized (hash-join)
placement: co-located, shard-local execution on all 3 shards
HASH JOIN (O.CUSTOMER_ID = C.ID) rows=400 cost=1257.0 [co-located on distribution keys] [vectorized batch]
  SCAN ORDERS O rows=400/400 (analyzed) encoding=dict(region:3)
  SCAN CUSTOMERS C rows=59/59 (analyzed) encoding=dict(name:27,segment:3)
`,
			wantAnalyze: `estimated cost=1257.0 rows=400
actual rows=400 time=<t>
execution: vectorized (hash-join)
placement: co-located, shard-local execution on all 3 shards
HASH JOIN (O.CUSTOMER_ID = C.ID) rows=400 cost=1257.0 [co-located on distribution keys] [vectorized batch]
  SCAN ORDERS O rows=400/400 (analyzed) encoding=dict(region:3) (actual rows=400 time=<t> shards=3)
  SCAN CUSTOMERS C rows=59/59 (analyzed) encoding=dict(name:27,segment:3) (actual rows=59 time=<t> shards=3)
`,
		},
		{
			name: "broadcast join",
			sys:  sharded,
			sql:  "SELECT l.region, SUM(o.amount * l.factor) FROM orders o JOIN lookup l ON o.region = l.region GROUP BY l.region",
			want: `estimated cost=955.7 rows=133
execution: vectorized (scan)
placement: broadcast L to all 3 shards, join shard-local
HASH JOIN (O.REGION = L.REGION) rows=133 cost=955.7
  SCAN ORDERS O rows=400/400 (analyzed) encoding=dict(region:3)
  SCAN LOOKUP L rows=3/3 (analyzed) encoding=dict(region:1) [broadcast]
`,
			wantAnalyze: `estimated cost=955.7 rows=133
actual rows=3 time=<t>
execution: vectorized (scan)
placement: broadcast L to all 3 shards, join shard-local
HASH JOIN (O.REGION = L.REGION) rows=133 cost=955.7
  SCAN ORDERS O rows=400/400 (analyzed) encoding=dict(region:3) (actual rows=400 time=<t> shards=3)
  SCAN LOOKUP L rows=3/3 (analyzed) encoding=dict(region:1) [broadcast] (actual rows=3 time=<t> shards=3)
`,
		},
		{
			name: "pruned",
			sys:  sharded,
			sql:  "SELECT COUNT(*) FROM orders WHERE customer_id = 7",
			want: `estimated cost=6.8 rows=7
execution: vectorized (scan+filter+aggregate)
placement: single shard 0 of 3 (pruned by distribution key)
SCAN ORDERS rows=7/400 pushdown=[CUSTOMER_ID = 7] (analyzed) encoding=dict(region:3) [shards 0]
`,
			wantAnalyze: `estimated cost=6.8 rows=7
actual rows=1 time=<t>
execution: vectorized (scan+filter+aggregate)
placement: single shard 0 of 3 (pruned by distribution key)
SCAN ORDERS rows=7/400 pushdown=[CUSTOMER_ID = 7] (analyzed) encoding=dict(region:3) [shards 0] (actual rows=7 time=<t>)
`,
		},
		{
			name: "vectorized",
			sys:  single,
			sql:  "SELECT region, COUNT(*), SUM(amount) FROM orders WHERE amount > 1 GROUP BY region",
			want: `estimated cost=290.9 rows=291
execution: vectorized (scan+filter+aggregate)
SCAN ORDERS rows=291/400 pushdown=[AMOUNT > 1] (analyzed) encoding=dict(region:3)
`,
			wantAnalyze: `estimated cost=290.9 rows=291
actual rows=3 time=<t>
execution: vectorized (scan+filter+aggregate)
SCAN ORDERS rows=291/400 pushdown=[AMOUNT > 1] (analyzed) encoding=dict(region:3) (actual rows=289 time=<t>)
`,
		},
		{
			name: "row fallback",
			sys:  noVec,
			sql:  "SELECT region, COUNT(*), SUM(amount) FROM orders WHERE amount > 1 GROUP BY region",
			want: `estimated cost=290.9 rows=291
execution: row-at-a-time
SCAN ORDERS rows=291/400 pushdown=[AMOUNT > 1] (analyzed) encoding=dict(region:3)
`,
			wantAnalyze: `estimated cost=290.9 rows=291
actual rows=3 time=<t>
execution: row-at-a-time
SCAN ORDERS rows=291/400 pushdown=[AMOUNT > 1] (analyzed) encoding=dict(region:3) (actual rows=289 time=<t>)
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.sys.AdminSession()
			res, err := s.Query("EXPLAIN " + tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			if got := planText(res); got != tc.want {
				t.Fatalf("EXPLAIN mismatch:\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
			res, err = s.Query("EXPLAIN ANALYZE " + tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			if got := planText(res); got != tc.wantAnalyze {
				t.Fatalf("EXPLAIN ANALYZE mismatch:\ngot:\n%s\nwant:\n%s", got, tc.wantAnalyze)
			}
		})
	}
}

// TestExplainAnalyzeDB2Route covers the statement EXPLAIN ANALYZE can only
// time as a whole: a DB2-routed SELECT has no accelerator plan tree, so the
// output is the routing summary plus total actual rows and time.
func TestExplainAnalyzeDB2Route(t *testing.T) {
	sys := idaax.New(idaax.Config{})
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE plain (id BIGINT, v DOUBLE)")
	s.MustExec("INSERT INTO plain VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
	res, err := s.Query("EXPLAIN ANALYZE SELECT * FROM plain WHERE id > 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1] != "DB2" {
		t.Fatalf("routed to %s, want DB2", res.Rows[0][1])
	}
	got := planText(res)
	want := "execution: DB2 row engine (no accelerator plan)\nactual rows=2 time=<t>\n"
	if got != want {
		t.Fatalf("DB2 EXPLAIN ANALYZE mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestObservabilityMixedWorkload is the acceptance test for the metrics
// registry and query history: a workload mixing queries, DML, analytics CALLs
// and a live rebalance must be visible through System.QueryHistory,
// System.ObservabilityReport, SYSPROC.ACCEL_METRICS and
// SYSPROC.ACCEL_QUERY_HISTORY.
func TestObservabilityMixedWorkload(t *testing.T) {
	sys := newShardedSystem(t, 2)
	seedJoinTables(t, sys, "SHARDS")
	sys.SetSlowQueryThreshold(time.Nanosecond) // capture every statement's trace
	s := sys.AdminSession()

	s.MustExec("SELECT c.segment, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment")
	s.MustExec("SELECT COUNT(*) FROM orders WHERE customer_id = 7")
	s.MustExec("INSERT INTO lookup VALUES ('LATAM', 1.1)")
	if _, err := s.Exec("CALL IDAX.SUMMARY('ORDERS', 'AMOUNT')"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddShardMember("SHARDS", "IDAA9", 2); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitForRebalance("SHARDS"); err != nil {
		t.Fatal(err)
	}

	// Query history: every statement class recorded, newest first, with traces.
	hist := sys.QueryHistory(0)
	if len(hist) < 4 {
		t.Fatalf("history has %d records, want >= 4", len(hist))
	}
	classes := map[string]bool{}
	for _, rec := range hist {
		classes[rec.Class] = true
	}
	for _, want := range []string{"select", "dml", "call"} {
		if !classes[want] {
			t.Fatalf("history missing class %q: %v", want, classes)
		}
	}
	slow := sys.SlowQueries(0)
	if len(slow) == 0 {
		t.Fatal("slow-query log is empty despite 1ns threshold")
	}
	foundScanTrace := false
	for _, rec := range slow {
		if strings.Contains(rec.Trace, "scan") {
			foundScanTrace = true
		}
	}
	if !foundScanTrace {
		t.Fatalf("no slow-query trace contains a scan span: %+v", slow[0])
	}

	// Metrics registry: statement counters, class histograms, fleet gauges.
	rep := sys.ObservabilityReport()
	if rep.Counters["stmt_total"] < 4 {
		t.Fatalf("stmt_total = %d, want >= 4", rep.Counters["stmt_total"])
	}
	if rep.Histograms["stmt_seconds_select"].Count == 0 {
		t.Fatal("no select latency histogram samples")
	}
	if rep.Gauges["shard_rows_migrated"] == 0 {
		t.Fatal("rebalance did not surface in shard_rows_migrated gauge")
	}
	if rep.Gauges["accel_queries"] == 0 {
		t.Fatal("accelerator activity missing from gauges")
	}
	text := sys.MetricsText()
	for _, want := range []string{"stmt_total", "shard_rows_migrated", `stmt_seconds_select{quantile="0.95"}`} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}

	// The SQL surface sees the same data.
	res, err := s.Query("CALL SYSPROC.ACCEL_METRICS()")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("ACCEL_METRICS returned %d rows", len(res.Rows))
	}
	res, err = s.Query("CALL SYSPROC.ACCEL_QUERY_HISTORY(100)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("ACCEL_QUERY_HISTORY returned %d rows", len(res.Rows))
	}
	res, err = s.Query("CALL SYSPROC.ACCEL_QUERY_HISTORY(100, 'SLOW')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("ACCEL_QUERY_HISTORY(..., 'SLOW') returned no rows")
	}

	// Rebalance progress surfaced in the status struct.
	st, err := sys.RebalanceStatus("SHARDS")
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsMigrated == 0 {
		t.Fatal("rebalance moved no rows")
	}
}

// TestStatsHammerRace drives queries and DML from several goroutines while
// others poll every stats surface. Run with -race it proves the counters the
// observability layer reads are all atomic or lock-guarded.
func TestStatsHammerRace(t *testing.T) {
	sys := newShardedSystem(t, 2)
	seedJoinTables(t, sys, "SHARDS")
	sys.SetSlowQueryThreshold(time.Millisecond)

	const writers, iters = 4, 30
	var workers sync.WaitGroup
	for w := 0; w < writers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			s := sys.AdminSession()
			for i := 0; i < iters; i++ {
				if _, err := s.Query("SELECT c.segment, COUNT(*) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Exec("SELECT COUNT(*) FROM orders WHERE customer_id = 7"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	workers.Add(1)
	go func() {
		defer workers.Done()
		s := sys.AdminSession()
		for i := 0; i < iters; i++ {
			if _, err := s.Exec("CALL SYSPROC.ACCEL_METRICS()"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// The poller reads every stats surface until the workload finishes.
	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sys.ObservabilityReport()
			sys.MetricsText()
			sys.QueryHistory(10)
			sys.SlowQueries(10)
			if _, err := sys.AcceleratorStats("IDAA1"); err != nil {
				t.Error(err)
				return
			}
			if _, err := sys.ShardGroupStats("SHARDS"); err != nil {
				t.Error(err)
				return
			}
			sys.Metrics()
		}
	}()

	workers.Wait()
	close(stop)
	poller.Wait()
}
