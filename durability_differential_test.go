package idaax

// Differential durability suite: a durable 3-shard system and an always-in-
// memory twin run the same randomized DML (plus checkpoints and an online
// rebalance), the durable one is killed at a random filesystem operation,
// reopened, and must then be byte-identical to the twin's view of the
// acknowledged statements. The suite runs under -race in CI.

import (
	"fmt"
	"math/rand"
	"testing"

	"idaax/internal/testutil/crashfs"
)

// diffStmt generates the i-th statement of the randomized workload from the
// iteration's private rng, so the sequence is deterministic per seed and
// independent of where the crash lands.
func diffStmt(rng *rand.Rand, i int) string {
	table := "d_sharded"
	if rng.Intn(3) == 0 {
		table = "d_local"
	}
	switch k := rng.Intn(10); {
	case k < 6: // insert 1-3 rows
		n := 1 + rng.Intn(3)
		stmt := fmt.Sprintf("INSERT INTO %s VALUES ", table)
		for j := 0; j < n; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %g)", i*10+j, float64(rng.Intn(1000))/4.0)
		}
		return stmt
	case k < 8:
		return fmt.Sprintf("UPDATE %s SET v = %g WHERE k < %d", table, float64(rng.Intn(100)), rng.Intn(i*10+1))
	default:
		return fmt.Sprintf("DELETE FROM %s WHERE k = %d", table, rng.Intn(i*10+1))
	}
}

// runDifferential drives one crash point: the durable system executes each
// statement first; only acknowledged statements are replayed onto the twin.
// Returns how many statements were acknowledged.
func runDifferential(t *testing.T, sys, twin *System, rng *rand.Rand) int {
	t.Helper()
	ds, ts := sys.AdminSession(), twin.AdminSession()
	ddl := []string{
		"CREATE TABLE d_sharded (k BIGINT, v DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(k)",
		"CREATE TABLE d_local (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1",
	}
	acked := 0
	for _, stmt := range ddl {
		if _, err := ds.Exec(stmt); err != nil {
			return acked
		}
		ts.MustExec(stmt)
		acked++
	}
	const statements = 60
	for i := 1; i <= statements; i++ {
		// Deterministically interleave checkpoints and a rebalance so crash
		// points land inside segment writes, manifest swaps and migrations.
		if i == 25 || i == 45 {
			if err := sys.Checkpoint(); err != nil {
				return acked
			}
			continue
		}
		if i == 35 {
			if err := sys.RebalanceShardGroup("SHARDS"); err != nil {
				return acked
			}
			if err := sys.WaitForRebalance("SHARDS"); err != nil {
				return acked
			}
			continue
		}
		stmt := diffStmt(rng, i)
		if _, err := ds.Exec(stmt); err != nil {
			return acked
		}
		ts.MustExec(stmt)
		acked++
	}
	return acked
}

// TestDifferentialDurability runs >= 50 randomized crash points. Every
// reopened store must match the twin exactly on both tables.
func TestDifferentialDurability(t *testing.T) {
	const crashPoints = 50
	// Measure a clean run's filesystem op count once, to bound arm points.
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 3))
	if err != nil {
		t.Fatal(err)
	}
	twin := New(memoryConfig(3))
	fs.Arm(1<<62, crashfs.Fail)
	if acked := runDifferential(t, sys, twin, rand.New(rand.NewSource(0))); acked < 50 {
		t.Fatalf("clean run acknowledged only %d statements", acked)
	}
	totalOps := fs.Ops()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	twin.Close()
	if totalOps < crashPoints {
		t.Fatalf("workload performs only %d fs ops", totalOps)
	}

	for i := 0; i < crashPoints; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(i)))
			armAt := 1 + rng.Int63n(totalOps)
			mode := crashfs.Fail
			if i%2 == 1 {
				mode = crashfs.TornWrite
			}
			fs := crashfs.New()
			sys, err := OpenDurable(durableConfig(fs, 3))
			if err != nil {
				t.Fatal(err)
			}
			twin := New(memoryConfig(3))
			defer twin.Close()
			fs.Arm(armAt, mode)
			acked := runDifferential(t, sys, twin, rng)
			fs.Crash()

			re, err := OpenDurable(durableConfig(fs, 3))
			if err != nil {
				t.Fatalf("reopen (arm=%d mode=%v acked=%d): %v", armAt, mode, acked, err)
			}
			defer re.Close()
			for _, table := range []string{"d_sharded", "d_local"} {
				if acked < 2 {
					break // DDL itself was not acknowledged
				}
				got := sortedRows(t, re, table)
				want := sortedRows(t, twin, table)
				if !rowsEqual(got, want) {
					t.Fatalf("%s diverged after crash at op %d (%v, %d acked):\nrecovered %v\ntwin      %v",
						table, armAt, mode, acked, got, want)
				}
			}
		})
	}
}
