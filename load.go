package idaax

import (
	"fmt"
	"io"
	"time"

	"idaax/internal/loader"
	"idaax/internal/types"
)

// LoadOptions configure bulk ingestion through the loader component.
type LoadOptions struct {
	// Format selects the input format: "csv" (default) or "jsonl".
	Format string
	// HasHeader skips the first CSV record.
	HasHeader bool
	// MapByHeader matches CSV columns to table columns by header name.
	MapByHeader bool
	// Delimiter is the CSV field separator (default ',').
	Delimiter rune
	// NullToken is the literal treated as NULL (default "").
	NullToken string
	// BatchSize is the number of rows per insert batch (default 5000).
	BatchSize int
	// SkipMalformed skips unparsable records instead of failing the load.
	SkipMalformed bool
	// User is the authorization id performing the load (default the admin
	// user); it needs INSERT privilege on the target table.
	User string
}

// LoadReport summarises one bulk load.
type LoadReport struct {
	Table       string
	RowsRead    int
	RowsLoaded  int
	RowsSkipped int
	Batches     int
	Elapsed     time.Duration
	// LoadedInto reports where the data landed: "ACCELERATOR" for
	// accelerator-only targets (the data never touches DB2), "DB2" otherwise.
	LoadedInto string
}

// Load ingests external data from r into the named table. Accelerator-only
// target tables receive the data directly on the accelerator — the loader path
// the paper describes for enriching analytics with non-mainframe data (e.g.
// social media extracts). Regular and accelerated tables are loaded through
// DB2 (and flow to the accelerator via replication as usual).
func (s *System) Load(table string, r io.Reader, opts LoadOptions) (*LoadReport, error) {
	table = normalize(table)
	meta, err := s.coord.Catalog().Table(table)
	if err != nil {
		return nil, err
	}
	user := opts.User
	if user == "" {
		user = s.cfg.AdminUser
	}

	l := loader.New(loader.Options{
		BatchSize:     opts.BatchSize,
		HasHeader:     opts.HasHeader,
		MapByHeader:   opts.MapByHeader,
		Delimiter:     opts.Delimiter,
		NullToken:     opts.NullToken,
		SkipMalformed: opts.SkipMalformed,
	})
	sink := func(rows []types.Row) (int, error) {
		return s.coord.BulkInsert(user, table, rows)
	}

	var rep *loader.Report
	switch opts.Format {
	case "", "csv", "CSV":
		rep, err = l.LoadCSV(r, meta.Schema, sink)
	case "jsonl", "JSONL", "json", "JSON":
		rep, err = l.LoadJSONLines(r, meta.Schema, sink)
	default:
		return nil, fmt.Errorf("idaax: unsupported load format %q", opts.Format)
	}
	if err != nil {
		return nil, err
	}
	loadedInto := "DB2"
	if meta.Kind.String() == "ACCELERATOR-ONLY" {
		loadedInto = "ACCELERATOR"
	}
	return &LoadReport{
		Table:       table,
		RowsRead:    rep.RowsRead,
		RowsLoaded:  rep.RowsLoaded,
		RowsSkipped: rep.RowsSkipped,
		Batches:     rep.Batches,
		Elapsed:     rep.Elapsed,
		LoadedInto:  loadedInto,
	}, nil
}
