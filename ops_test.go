package idaax_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"idaax"
	"idaax/internal/obs"
)

// httpGet fetches a path from the ops server and returns status and body.
func httpGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOpsServerEndToEnd drives every endpoint of a live ops server over a
// 3-member fleet: the Prometheus exposition must be strictly conformant, the
// fleet view must account for all members, and statements and events must
// show up on their endpoints.
func TestOpsServerEndToEnd(t *testing.T) {
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", 500)

	srv, err := sys.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	if _, err := s.Query("SELECT region, COUNT(*) FROM metrics GROUP BY region"); err != nil {
		t.Fatal(err)
	}

	code, body := httpGet(t, srv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics not conformant: %v", err)
	}
	for _, want := range []string{"fleet_bytes_total", "fleet_capacity_skew_pct", "health_status", "events_total", "stmt_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	code, body = httpGet(t, srv.Addr(), "/fleet")
	if code != http.StatusOK {
		t.Fatalf("/fleet = %d", code)
	}
	var fleet idaax.FleetResources
	if err := json.Unmarshal([]byte(body), &fleet); err != nil {
		t.Fatalf("/fleet body: %v", err)
	}
	if len(fleet.Members) != 3 {
		t.Fatalf("fleet members = %d", len(fleet.Members))
	}
	var rows int64
	for _, m := range fleet.Members {
		rows += m.Rows
	}
	if rows < 500 {
		t.Fatalf("fleet rows = %d, want >= 500", rows)
	}

	code, body = httpGet(t, srv.Addr(), "/queries?n=10")
	if code != http.StatusOK || !strings.Contains(body, "GROUP BY region") {
		t.Fatalf("/queries = %d: %s", code, body)
	}

	sys.EmitEvent("app_test", idaax.EventWarn, "hello from the test")
	code, body = httpGet(t, srv.Addr(), "/events?severity=WARN&type=app_test")
	if code != http.StatusOK || !strings.Contains(body, "hello from the test") {
		t.Fatalf("/events = %d: %s", code, body)
	}

	// The journal is also reachable over SQL.
	res, err := s.Query("CALL SYSPROC.ACCEL_EVENTS(10, 'WARN')")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if strings.Contains(fmt.Sprint(row), "hello from the test") {
			found = true
		}
	}
	if !found {
		t.Fatalf("ACCEL_EVENTS missing the app event: %v", res.Rows)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthzFlipsOnRebalanceStall is the acceptance test of the watchdog:
// a rebalance pinned by an uncommitted transaction makes no progress, the
// rebalance-stall rule flips the rebalancer component unhealthy, /healthz
// serves 503 — and recovery (committing the transaction) brings it back.
func TestHealthzFlipsOnRebalanceStall(t *testing.T) {
	accels := []idaax.AcceleratorConfig{{Name: "IDAA1", Slices: 2}, {Name: "IDAA2", Slices: 2}}
	sys := idaax.New(idaax.Config{
		Accelerators:     accels,
		AnalyticsPublic:  true,
		WatchdogInterval: 10 * time.Millisecond,
	})
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", 2000)

	srv, err := sys.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := httpGet(t, srv.Addr(), "/healthz"); code != http.StatusOK {
		t.Fatalf("baseline /healthz = %d", code)
	}

	// Pin row fates with an uncommitted transaction, then grow the fleet: the
	// rebalancer cannot finalize while the inserts are in flight. A spread of
	// keys guarantees some land on shards the new map no longer assigns them
	// to (a single key could happen to keep its owner).
	s := sys.AdminSession()
	if _, err := s.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(metricsInsertSQL(900000, 900040)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddShardMember("SHARDS", "IDAA3", 2); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 15*time.Second, "/healthz to flip 503 on the stalled rebalance", func() bool {
		code, _ := httpGet(t, srv.Addr(), "/healthz")
		return code == http.StatusServiceUnavailable
	})
	code, body := httpGet(t, srv.Addr(), "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "rebalance stalled") {
		t.Fatalf("/healthz = %d: %s", code, body)
	}
	if code, _ := httpGet(t, srv.Addr(), "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during stall = %d", code)
	}
	if code, body := httpGet(t, srv.Addr(), "/events?type=rebalance_stalled"); code != http.StatusOK || !strings.Contains(body, "no progress") {
		t.Fatalf("stall event missing: %d %s", code, body)
	}

	// Recovery: commit releases the pinned fate, the rebalance completes and
	// the watchdog lifts the override.
	if _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitForRebalance("SHARDS"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "/healthz to recover after commit", func() bool {
		code, _ := httpGet(t, srv.Addr(), "/healthz")
		return code == http.StatusOK
	})
	ready := func() bool {
		code, _ := httpGet(t, srv.Addr(), "/readyz")
		return code == http.StatusOK
	}
	waitFor(t, 15*time.Second, "/readyz to recover after commit", ready)

	evs, err := sys.Events(0, "INFO")
	if err != nil {
		t.Fatal(err)
	}
	sawRecovery := false
	for _, e := range evs {
		if e.Type == "health_changed" && strings.Contains(e.Message, "recovered") {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Fatalf("no health_changed recovery event in %d events", len(evs))
	}
}

// TestMetricsTextConformance is the strict exposition gate on the library
// surface (satellite of the ops tentpole): whatever the registry renders must
// parse as valid Prometheus text format with HELP/TYPE pairs and no duplicate
// series.
func TestMetricsTextConformance(t *testing.T) {
	sys := newShardedSystem(t, 2)
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", 100)
	s := sys.AdminSession()
	for i := 0; i < 5; i++ {
		if _, err := s.Query("SELECT COUNT(*) FROM metrics"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Exec("DELETE FROM metrics WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	text := sys.MetricsText()
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("MetricsText not conformant: %v\n%s", err, text)
	}
	if !strings.Contains(text, "# HELP fleet_capacity_skew_pct ") {
		t.Fatalf("missing registered help text:\n%s", text)
	}
}

// TestOpsConcurrentStress hammers the ops surfaces from many goroutines while
// a rebalance runs: event emitters, HTTP pollers on every endpoint and SQL
// traffic. Run with -race in CI; the invariant is simply no race, no panic,
// and a conformant exposition at the end.
func TestOpsConcurrentStress(t *testing.T) {
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", 1500)

	srv, err := sys.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					fn(i)
				}
			}
		}()
	}

	for w := 0; w < 3; w++ {
		worker(func(i int) {
			sys.EmitEvent("stress", idaax.EventInfo, fmt.Sprintf("tick %d", i))
		})
	}
	paths := []string{"/metrics", "/healthz", "/readyz", "/events?n=20", "/queries?n=20", "/fleet"}
	client := &http.Client{Timeout: 5 * time.Second}
	for _, p := range paths {
		path := p
		worker(func(i int) {
			resp, err := client.Get("http://" + srv.Addr() + path)
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		})
	}
	worker(func(i int) {
		s := sys.AdminSession()
		_, _ = s.Query("SELECT region, COUNT(*) FROM metrics GROUP BY region")
	})

	if err := sys.AddShardMember("SHARDS", "IDAA4", 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if err := sys.WaitForRebalance("SHARDS"); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(sys.MetricsText()); err != nil {
		t.Fatalf("exposition after stress: %v", err)
	}
}

// TestCloseStopsOpsCleanly is the goroutine-leak regression test: Close must
// stop the watchdog loop and the HTTP server, returning the process to its
// baseline goroutine count.
func TestCloseStopsOpsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	sys := newShardedSystem(t, 2)
	seedElasticTable(t, sys, "SHARDS", 100)
	srv, err := sys.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sys.StartHealthWatchdog()
	for i := 0; i < 3; i++ {
		if code, _ := httpGet(t, srv.Addr(), "/metrics"); code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close must be safe.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, "goroutines to drain after Close", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
