package idaax

// Dictionary durability tests: the per-column string dictionaries must
// survive checkpoints, WAL replay and injected crashes — a recovered column
// serves the same rows AND keeps (or correctly re-derives) its encoding, so
// dictionary-coded predicates behave identically before and after the crash.

import (
	"fmt"
	"strings"
	"testing"

	"idaax/internal/colstore"
	"idaax/internal/testutil/crashfs"
)

// dictWorkload drives a low-cardinality column through a checkpoint plus
// post-checkpoint WAL appends, so recovery has to restore the dictionary from
// the segment AND extend it during replay. Statements past the fault are
// simply not acknowledged; the returned count is how many were.
func dictWorkload(sys *System) (acked int) {
	s := sys.AdminSession()
	steps := []string{
		"CREATE TABLE dcat (k BIGINT, tag VARCHAR(8)) IN ACCELERATOR IDAA1",
		"INSERT INTO dcat VALUES (1, 'RED'), (2, 'GREEN'), (3, 'BLUE'), (4, 'RED')",
		"INSERT INTO dcat VALUES (5, 'GREEN'), (6, NULL), (7, 'AMBER')",
		"__CHECKPOINT__",
		"INSERT INTO dcat VALUES (8, 'BLUE'), (9, 'VIOLET'), (10, NULL)",
		"UPDATE dcat SET tag = 'TEAL' WHERE k = 2",
		"DELETE FROM dcat WHERE k = 4",
		"INSERT INTO dcat VALUES (11, 'RED'), (12, 'TEAL')",
	}
	for _, stmt := range steps {
		var err error
		if stmt == "__CHECKPOINT__" {
			err = sys.Checkpoint()
		} else {
			_, err = s.Exec(stmt)
		}
		if err != nil {
			return acked
		}
		acked++
	}
	return acked
}

// explainEncoding returns the encoding= annotation EXPLAIN prints for the
// dcat scan ("" when the column is not dictionary-encoded).
func explainEncoding(t *testing.T, sys *System) string {
	t.Helper()
	res, err := sys.AdminSession().Query("EXPLAIN SELECT COUNT(*) FROM dcat WHERE tag = 'RED'")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if i := strings.Index(row[3], "encoding="); i >= 0 {
			return strings.Fields(row[3][i:])[0]
		}
	}
	return ""
}

// TestDictionaryCheckpointRecovery runs the workload to completion, kills the
// filesystem, reopens, and requires the recovered store to serve identical
// rows, identical dictionary-predicate results, and the same EXPLAIN encoding
// annotation as the in-memory twin — then keeps appending to prove the
// recovered dictionary still accepts new distinct values and still spills
// past the threshold.
func TestDictionaryCheckpointRecovery(t *testing.T) {
	prev := colstore.SetDictThreshold(8)
	defer colstore.SetDictThreshold(prev)

	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	twin := New(memoryConfig(1))
	defer twin.Close()
	if acked := dictWorkload(sys); acked != 8 {
		t.Fatalf("clean workload acknowledged %d/8 statements", acked)
	}
	dictWorkload(twin)
	wantRows := sortedRows(t, twin, "dcat")
	wantEnc := explainEncoding(t, twin)
	if !strings.HasPrefix(wantEnc, "encoding=dict(tag:") {
		t.Fatalf("twin is not dictionary-encoded: %q", wantEnc)
	}

	fs.Crash()
	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := sortedRows(t, re, "dcat"); !rowsEqual(got, wantRows) {
		t.Fatalf("recovered rows differ:\n%v\nvs\n%v", got, wantRows)
	}
	if got := explainEncoding(t, re); got != wantEnc {
		t.Fatalf("recovered encoding %q, want %q", got, wantEnc)
	}
	for _, q := range []string{
		"SELECT COUNT(*) FROM dcat WHERE tag = 'RED'",
		"SELECT tag, COUNT(*) FROM dcat GROUP BY tag ORDER BY tag",
		"SELECT k FROM dcat WHERE tag IS NULL ORDER BY k",
	} {
		a, err := re.AdminSession().Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := twin.AdminSession().Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
			t.Fatalf("%s: recovered %v, twin %v", q, a.Rows, b.Rows)
		}
	}

	// The recovered dictionary must keep absorbing new values and spill once
	// the 8-value threshold is crossed, exactly like a never-crashed column.
	s := re.AdminSession()
	var sb strings.Builder
	sb.WriteString("INSERT INTO dcat VALUES ")
	for i := 0; i < 12; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'X%d')", 100+i, i)
	}
	if _, err := s.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	if got := explainEncoding(t, re); got != "" {
		t.Fatalf("column should have spilled past the threshold, still %q", got)
	}
	res, err := s.Query("SELECT COUNT(*) FROM dcat WHERE tag = 'X7'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "1" {
		t.Fatalf("post-spill predicate found %s rows, want 1", res.Rows[0][0])
	}
}

// TestDictionaryCrashInjection spreads faults across the whole workload in
// every mode: wherever the crash lands (dictionary segment write, manifest
// swap, WAL append), the reopened store must hold exactly the acknowledged
// statements and answer dictionary predicates like the replayed twin.
func TestDictionaryCrashInjection(t *testing.T) {
	prev := colstore.SetDictThreshold(8)
	defer colstore.SetDictThreshold(prev)

	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	fs.Arm(1<<62, crashfs.Fail)
	if acked := dictWorkload(sys); acked != 8 {
		t.Fatalf("clean workload acknowledged %d/8 statements", acked)
	}
	totalOps := fs.Ops()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	const points = 24
	modes := []crashfs.Mode{crashfs.Fail, crashfs.ShortWrite, crashfs.TornWrite}
	for i := 0; i < points; i++ {
		armAt := 1 + int64(i)*totalOps/points
		mode := modes[i%len(modes)]
		t.Run(fmt.Sprintf("op%d_%v", armAt, mode), func(t *testing.T) {
			fs := crashfs.New()
			sys, err := OpenDurable(durableConfig(fs, 1))
			if err != nil {
				t.Fatal(err)
			}
			fs.Arm(armAt, mode)
			acked := dictWorkload(sys)
			fs.Crash()

			twin := New(memoryConfig(1))
			defer twin.Close()
			ts := twin.AdminSession()
			steps := []string{
				"CREATE TABLE dcat (k BIGINT, tag VARCHAR(8)) IN ACCELERATOR IDAA1",
				"INSERT INTO dcat VALUES (1, 'RED'), (2, 'GREEN'), (3, 'BLUE'), (4, 'RED')",
				"INSERT INTO dcat VALUES (5, 'GREEN'), (6, NULL), (7, 'AMBER')",
				"__CHECKPOINT__",
				"INSERT INTO dcat VALUES (8, 'BLUE'), (9, 'VIOLET'), (10, NULL)",
				"UPDATE dcat SET tag = 'TEAL' WHERE k = 2",
				"DELETE FROM dcat WHERE k = 4",
				"INSERT INTO dcat VALUES (11, 'RED'), (12, 'TEAL')",
			}
			for j := 0; j < acked && j < len(steps); j++ {
				if steps[j] != "__CHECKPOINT__" {
					ts.MustExec(steps[j])
				}
			}

			re, err := OpenDurable(durableConfig(fs, 1))
			if err != nil {
				t.Fatalf("reopen (arm=%d mode=%v acked=%d): %v", armAt, mode, acked, err)
			}
			defer re.Close()
			if acked == 0 {
				return
			}
			if got, want := sortedRows(t, re, "dcat"), sortedRows(t, twin, "dcat"); !rowsEqual(got, want) {
				t.Fatalf("arm=%d mode=%v acked=%d: rows differ\n%v\nvs\n%v", armAt, mode, acked, got, want)
			}
			a, err := re.AdminSession().Query("SELECT tag, COUNT(*) FROM dcat GROUP BY tag ORDER BY tag")
			if err != nil {
				t.Fatal(err)
			}
			b, err := ts.Query("SELECT tag, COUNT(*) FROM dcat GROUP BY tag ORDER BY tag")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
				t.Fatalf("arm=%d mode=%v: grouped dictionary column differs: %v vs %v", armAt, mode, a.Rows, b.Rows)
			}
		})
	}
}
