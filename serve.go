package idaax

import (
	"time"

	"idaax/internal/admission"
	"idaax/internal/ops"
	"idaax/internal/wire"
)

// This file is the serving-layer facade: the wire-protocol HTTP server
// (POST /v1/query, /v1/exec, session pooling, streaming) with admission
// control in front of it, plus the mounted read-only ops endpoints so one
// port serves both application traffic and /metrics. The protocol contract
// is docs/WIRE_PROTOCOL.md; tuning guidance is docs/OPERATIONS.md.

// ServeConfig parameterises System.ServeWire.
type ServeConfig struct {
	// Addr is the listen address (e.g. ":8080", "127.0.0.1:0").
	Addr string
	// AdmissionSlots is the number of statements allowed to run concurrently.
	// 0 uses admission.DefaultSlots; negative disables admission control
	// entirely (every request runs immediately — the bench's "off" arm).
	AdmissionSlots int
	// AdmissionQueue bounds how many requests of each priority class may wait
	// for a slot before new arrivals are shed with HTTP 429 (0 = default).
	AdmissionQueue int
	// AdmissionMaxWait sheds a queued request after this long (0 = wait until
	// the client gives up).
	AdmissionMaxWait time.Duration
	// DefaultUser is the authorization id for requests that name none
	// (default "PUBLIC").
	DefaultUser string
	// IdleTimeout reaps pooled sessions unused for this long, rolling back
	// whatever transaction they left open (0 = wire.DefaultIdleTimeout;
	// negative disables reaping).
	IdleTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight statements
	// (0 = wire.DefaultDrainTimeout).
	DrainTimeout time.Duration
	// ChunkRows is the default rows-per-frame of streamed responses (0 = 512).
	ChunkRows int
	// DisableOps leaves the ops endpoints (/metrics, /healthz, /events, ...)
	// off this port; by default they are mounted next to /v1.
	DisableOps bool
}

// WireServer is a running wire-protocol server (see System.ServeWire).
type WireServer struct {
	srv *wire.Server
	ctl *admission.Controller
}

// Addr returns the bound address (useful when ServeWire was given ":0").
func (w *WireServer) Addr() string { return w.srv.Addr() }

// Draining reports whether Close has begun.
func (w *WireServer) Draining() bool { return w.srv.Draining() }

// SessionCount returns how many pooled wire sessions are open.
func (w *WireServer) SessionCount() int { return w.srv.SessionCount() }

// AdmissionStats snapshots the admission controller (zero value when
// admission is disabled).
func (w *WireServer) AdmissionStats() admission.Stats { return w.ctl.Stats() }

// Close drains in-flight statements, rolls back and releases every pooled
// session, and shuts the listener down. System.Close calls it automatically —
// before the ops servers stop and before the final durable checkpoint, so an
// acknowledged commit is never lost to a shutdown race.
func (w *WireServer) Close() error { return w.srv.Close() }

// ServeWire starts the wire-protocol server on cfg.Addr and the health
// watchdog behind it. Endpoints: POST /v1/sessions, DELETE /v1/sessions/{t},
// POST /v1/query (optionally streamed), POST /v1/exec — plus, unless
// cfg.DisableOps, the read-only ops surface (/metrics, /healthz, /readyz,
// /events, /queries, /fleet, /debug/pprof/) on the same port. System.Close
// drains and shuts the server down; closing the returned handle directly
// also works.
func (s *System) ServeWire(cfg ServeConfig) (*WireServer, error) {
	var ctl *admission.Controller
	if cfg.AdmissionSlots >= 0 {
		ctl = admission.New(admission.Config{
			Slots:    cfg.AdmissionSlots,
			MaxQueue: cfg.AdmissionQueue,
			MaxWait:  cfg.AdmissionMaxWait,
			Obs:      s.coord.Obs,
			Events:   s.coord.Events,
		})
	}
	wcfg := wire.Config{
		NewSession:   func(user string) wire.Session { return &wireSession{s.Session(user)} },
		Admission:    ctl,
		Obs:          s.coord.Obs,
		Events:       s.coord.Events,
		DefaultUser:  cfg.DefaultUser,
		IdleTimeout:  cfg.IdleTimeout,
		DrainTimeout: cfg.DrainTimeout,
		ChunkRows:    cfg.ChunkRows,
	}
	if !cfg.DisableOps {
		wcfg.OpsHandler = ops.NewServer("", s.opsSource()).Handler()
	}
	srv := wire.NewServer(wcfg)
	if err := srv.Start(cfg.Addr); err != nil {
		_ = srv.Close()
		return nil, err
	}
	s.coord.Watchdog.Start()
	w := &WireServer{srv: srv, ctl: ctl}
	s.opsMu.Lock()
	s.wireSrvs = append(s.wireSrvs, w)
	s.opsMu.Unlock()
	return w, nil
}

// wireSession adapts the public Session facade to the wire layer's interface.
type wireSession struct {
	s *Session
}

func (w *wireSession) Exec(sql string) (*wire.Result, error) {
	res, err := w.s.Exec(sql)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, nil
	}
	return &wire.Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
		Routed:       res.Routed,
		Message:      res.Message,
	}, nil
}

func (w *wireSession) InTransaction() bool { return w.s.InTransaction() }
func (w *wireSession) Rollback() error     { return w.s.Rollback() }

// NoteQueueWait forwards admission queue time into the statement trace.
func (w *wireSession) NoteQueueWait(d time.Duration) { w.s.fed.NoteQueueWait(d) }
