package idaax

import (
	"time"

	"idaax/internal/obs"
)

// ObservabilityReport is a point-in-time snapshot of every registered metric:
// counters (statement totals, errors), gauges (movement, routing, accelerator
// activity, rebalance progress, CDC replication lag) and latency histograms
// (per query class, with p50/p95/p99).
type ObservabilityReport = obs.Report

// HistogramSnapshot summarises one latency histogram.
type HistogramSnapshot = obs.HistogramSnapshot

// QueryRecord is one statement's entry in the query history. Slow statements
// (at or above the slow-query threshold) carry their full rendered trace.
type QueryRecord = obs.QueryRecord

// ObservabilityReport snapshots the system's metrics registry. The same data
// is reachable from SQL via CALL SYSPROC.ACCEL_METRICS.
func (s *System) ObservabilityReport() ObservabilityReport {
	return s.coord.Obs.Snapshot()
}

// MetricsText renders the metrics registry in Prometheus exposition format —
// the text a /metrics endpoint would serve.
func (s *System) MetricsText() string {
	return s.coord.Obs.Text()
}

// QueryHistory returns up to n of the most recently executed statements,
// newest first (n <= 0 returns everything retained; the ring holds
// Config.QueryHistorySize statements).
func (s *System) QueryHistory(n int) []QueryRecord {
	return s.coord.History.Recent(n)
}

// SlowQueries returns up to n of the most recent statements that crossed the
// slow-query threshold, newest first, each with its full trace attached.
func (s *System) SlowQueries(n int) []QueryRecord {
	return s.coord.History.SlowQueries(n)
}

// SetSlowQueryThreshold changes the latency at or above which a statement's
// trace is captured into the slow-query log (0 or negative disables it).
func (s *System) SetSlowQueryThreshold(d time.Duration) {
	s.coord.History.SetSlowThreshold(d)
}

// SlowQueryThreshold returns the current slow-query threshold (0 = disabled).
func (s *System) SlowQueryThreshold() time.Duration {
	return s.coord.History.SlowThreshold()
}
