package idaax_test

import (
	"strings"
	"testing"

	"idaax"
	"idaax/internal/bench"
)

// The Benchmark* functions below regenerate the evaluation tables (one per
// experiment / figure, see DESIGN.md §3 and EXPERIMENTS.md). Each benchmark
// runs the full experiment once per iteration and reports the rendered table
// via b.Log, so `go test -bench=. -benchmem` reproduces the paper-style
// results end to end. Use -short (or the small scale in cmd/idaabench) for a
// quick pass.

func benchScale(b *testing.B) bench.Scale {
	b.Helper()
	if testing.Short() {
		return bench.SmallScale()
	}
	// Benchmarks default to the small scale as well so the suite stays in the
	// minutes range; cmd/idaabench -scale full regenerates the full tables.
	return bench.SmallScale()
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	scale := benchScale(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := bench.Run(id, scale)
		if err != nil {
			b.Fatalf("experiment %s failed: %v", id, err)
		}
		if i == 0 {
			b.Logf("\n%s", table.Format())
		}
	}
}

// BenchmarkE1PipelineMaterialization reproduces E1: multi-stage pipeline with
// DB2-materialised intermediates vs accelerator-only tables.
func BenchmarkE1PipelineMaterialization(b *testing.B) { runExperiment(b, "e1") }

// BenchmarkE2QueryAcceleration reproduces E2: analytical queries on the DB2
// row engine vs the accelerator.
func BenchmarkE2QueryAcceleration(b *testing.B) { runExperiment(b, "e2") }

// BenchmarkE3LoadPaths reproduces E3: the three ingestion paths.
func BenchmarkE3LoadPaths(b *testing.B) { runExperiment(b, "e3") }

// BenchmarkE4TransactionOverhead reproduces E4: AOT DML under the DB2
// transaction context.
func BenchmarkE4TransactionOverhead(b *testing.B) { runExperiment(b, "e4") }

// BenchmarkE5ScoringPushdown reproduces E5: client-side vs in-database scoring.
func BenchmarkE5ScoringPushdown(b *testing.B) { runExperiment(b, "e5") }

// BenchmarkE6Training reproduces E6: in-database model training.
func BenchmarkE6Training(b *testing.B) { runExperiment(b, "e6") }

// BenchmarkE7Ablation reproduces E7: the offload/AOT/loader ablation.
func BenchmarkE7Ablation(b *testing.B) { runExperiment(b, "e7") }

// BenchmarkE8Governance reproduces E8: privilege enforcement and its cost.
func BenchmarkE8Governance(b *testing.B) { runExperiment(b, "e8") }

// BenchmarkF1Architecture reproduces the architecture figure as a component
// and data-path inventory.
func BenchmarkF1Architecture(b *testing.B) { runExperiment(b, "f1") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot paths behind the experiments
// ---------------------------------------------------------------------------

// BenchmarkOffloadedAggregation measures one offloaded aggregation query.
func BenchmarkOffloadedAggregation(b *testing.B) {
	sys := idaax.New(idaax.Config{AnalyticsPublic: true})
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE bench_orders (id BIGINT, product VARCHAR(16), amount DOUBLE)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO bench_orders VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("(1, 'A', 10.5)")
	}
	s.MustExec(sb.String())
	s.MustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'BENCH_ORDERS')")
	s.MustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'BENCH_ORDERS')")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query("SELECT product, SUM(amount) FROM bench_orders GROUP BY product"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAOTInsertSelect measures an accelerator-internal INSERT ... SELECT.
func BenchmarkAOTInsertSelect(b *testing.B) {
	sys := idaax.New(idaax.Config{AnalyticsPublic: true})
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE src_aot (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	var sb strings.Builder
	sb.WriteString("INSERT INTO src_aot VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString("(1, 2.5)")
	}
	s.MustExec(sb.String())
	s.MustExec("CREATE TABLE dst_aot (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec("INSERT INTO dst_aot SELECT id, v * 2 FROM src_aot WHERE v > 1"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParser measures statement parsing throughput.
func BenchmarkSQLParser(b *testing.B) {
	const q = "SELECT c.region, COUNT(*) AS n, SUM(o.amount) FROM orders o INNER JOIN customers c ON o.customer_id = c.customer_id WHERE o.amount > 100 AND c.segment IN ('SMB','ENTERPRISE') GROUP BY c.region HAVING SUM(o.amount) > 1000 ORDER BY n DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := idaax.ParseSQL(q); err != nil {
			b.Fatal(err)
		}
	}
}
