package idaax

import (
	"fmt"

	"idaax/internal/core"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// ProcedureContext is the execution context handed to user-registered
// analytics procedures. It exposes routed SQL execution (so a procedure can
// read accelerated tables and AOTs transparently) and bulk materialisation of
// result rows — everything needed to implement a new in-database analytics
// operation without touching the engine internals.
type ProcedureContext struct {
	inner *core.ProcContext
}

// User returns the authorization id invoking the procedure.
func (p *ProcedureContext) User() string { return p.inner.User }

// Query runs a SELECT and returns its result.
func (p *ProcedureContext) Query(sql string) (*Result, error) {
	rel, err := p.inner.QuerySQL(sql)
	if err != nil {
		return nil, err
	}
	return relationToResult(rel), nil
}

// Exec runs a non-query statement (DDL/DML/CALL) and returns the number of
// affected rows.
func (p *ProcedureContext) Exec(sql string) (int, error) { return p.inner.ExecSQL(sql) }

// InsertValues bulk-inserts rows given as Go values (string, int, int64,
// float64, bool, nil) into a table under the calling transaction.
func (p *ProcedureContext) InsertValues(table string, rows [][]any) (int, error) {
	converted := make([]types.Row, len(rows))
	for i, row := range rows {
		r := make(types.Row, len(row))
		for j, v := range row {
			cv, err := goValue(v)
			if err != nil {
				return 0, fmt.Errorf("idaax: row %d column %d: %w", i, j, err)
			}
			r[j] = cv
		}
		converted[i] = r
	}
	return p.inner.InsertRows(table, converted)
}

// ProcedureResult is what a user-registered procedure returns.
type ProcedureResult struct {
	Message      string
	RowsAffected int
}

// ProcedureFunc is the signature of user-registered procedures. Arguments are
// the CALL statement's arguments rendered as strings.
type ProcedureFunc func(ctx *ProcedureContext, args []string) (*ProcedureResult, error)

// RegisterProcedure registers a custom analytics procedure with the in-database
// framework. When public is true any user may CALL it; otherwise only the
// administrator and users granted EXECUTE via SYSPROC.ACCEL_GRANT_PROCEDURE.
func (s *System) RegisterProcedure(name, description string, public bool, fn ProcedureFunc) error {
	proc := &core.FuncProcedure{
		ProcName: name,
		Desc:     description,
		Fn: func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			strArgs := make([]string, len(args))
			for i, a := range args {
				strArgs[i] = a.AsString()
			}
			res, err := fn(&ProcedureContext{inner: ctx}, strArgs)
			if err != nil {
				return nil, err
			}
			if res == nil {
				res = &ProcedureResult{Message: "ok"}
			}
			return &core.ProcResult{Message: res.Message, RowsAffected: res.RowsAffected}, nil
		},
	}
	return s.coord.Procs.Register(proc, public)
}

// GrantProcedure grants EXECUTE on a registered procedure to a user.
func (s *System) GrantProcedure(procedure, user string) error {
	return s.coord.Procs.GrantExecute(procedure, user)
}

// Procedures lists all registered procedure names.
func (s *System) Procedures() []string { return s.coord.Procs.List() }

func relationToResult(rel *relalg.Relation) *Result {
	out := &Result{}
	for i, c := range rel.Cols {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("COL%d", i+1)
		}
		out.Columns = append(out.Columns, name)
	}
	for _, row := range rel.Rows {
		rendered := make([]string, len(row))
		for i, v := range row {
			rendered[i] = v.String()
		}
		out.Rows = append(out.Rows, rendered)
	}
	return out
}

func goValue(v any) (types.Value, error) {
	switch x := v.(type) {
	case nil:
		return types.Null(), nil
	case string:
		return types.NewString(x), nil
	case int:
		return types.NewInt(int64(x)), nil
	case int64:
		return types.NewInt(x), nil
	case float64:
		return types.NewFloat(x), nil
	case float32:
		return types.NewFloat(float64(x)), nil
	case bool:
		return types.NewBool(x), nil
	default:
		return types.Null(), fmt.Errorf("unsupported Go value of type %T", v)
	}
}

// ParseSQL validates that a statement parses in the system's SQL dialect and
// returns a normalised description; useful for tooling built on the facade.
func ParseSQL(sql string) (string, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%T", st), nil
}
