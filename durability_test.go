package idaax

// Durability acceptance tests. They live in the idaax package (not
// idaax_test) so they can inject the crash-simulating filesystem through the
// unexported Config.fs hook; everything else goes through the public facade,
// exactly as a durable deployment would.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"idaax/internal/testutil/crashfs"
)

// durableConfig builds a Config backed by the given crash filesystem. With
// n >= 2 the fleet gets n accelerators and the implicit SHARDS group.
func durableConfig(fs *crashfs.FS, n int) Config {
	cfg := memoryConfig(n)
	cfg.fs = fs
	return cfg
}

// memoryConfig is durableConfig without a filesystem: a purely in-memory
// system with the same fleet topology (the differential twin).
func memoryConfig(n int) Config {
	cfg := Config{AnalyticsPublic: true, AcceleratorSlices: 2}
	for i := 0; i < n && n >= 2; i++ {
		cfg.Accelerators = append(cfg.Accelerators,
			AcceleratorConfig{Name: fmt.Sprintf("IDAA%d", i+1), Slices: 2})
	}
	return cfg
}

// sortedRows reads every row of a table through the session layer and returns
// a canonical sorted fingerprint, so two systems can be compared exactly.
func sortedRows(t *testing.T, sys *System, table string) []string {
	t.Helper()
	res, err := sys.AdminSession().Query("SELECT * FROM " + table)
	if err != nil {
		t.Fatalf("read %s: %v", table, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, "|")
	}
	sort.Strings(rows)
	return rows
}

// db2Rows reads a table with query acceleration off, so the fingerprint is
// the DB2 ground truth and not a replication-lagged accelerator copy.
func db2Rows(t *testing.T, sys *System, table string) []string {
	t.Helper()
	s := sys.AdminSession()
	if err := s.SetAcceleration("NONE"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT * FROM " + table)
	if err != nil {
		t.Fatalf("read %s from DB2: %v", table, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, "|")
	}
	sort.Strings(rows)
	return rows
}

func rowsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDurableRoundTrip is the basic life cycle: write, close cleanly, reopen,
// and find the exact committed state — an accelerator-only table, a DB2 heap
// table and an accelerated (replicated) table all survive.
func TestDurableRoundTrip(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Durable() {
		t.Fatal("system with an injected fs should report durable")
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE aot (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	s.MustExec("INSERT INTO aot VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
	s.MustExec("DELETE FROM aot WHERE k = 2")
	s.MustExec("CREATE TABLE heap (id BIGINT, name VARCHAR(8))")
	s.MustExec("INSERT INTO heap VALUES (10, 'a'), (11, 'b')")
	s.MustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'HEAP')")
	s.MustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'HEAP')")
	s.MustExec("INSERT INTO heap VALUES (12, 'c')")
	wantAOT := sortedRows(t, sys, "aot")
	wantHeap := db2Rows(t, sys, "heap")
	if err := sys.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := sortedRows(t, re, "aot"); !rowsEqual(got, wantAOT) {
		t.Fatalf("aot after reopen: %v, want %v", got, wantAOT)
	}
	if got := db2Rows(t, re, "heap"); !rowsEqual(got, wantHeap) {
		t.Fatalf("heap after reopen: %v, want %v", got, wantHeap)
	}
	if !re.Coordinator().RecoveryInfo().Recovered {
		t.Fatal("reopen should report a recovered store")
	}
	// The reopened system keeps working: new DML lands on recovered tables.
	re.AdminSession().MustExec("INSERT INTO aot VALUES (9, 9.5)")
	if got := len(sortedRows(t, re, "aot")); got != len(wantAOT)+1 {
		t.Fatalf("insert after recovery: %d rows", got)
	}
}

// TestDurableReopenAfterKill loses the process without Close: everything a
// successful statement committed must be there after WAL replay.
func TestDurableReopenAfterKill(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE kv (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	s.MustExec("INSERT INTO kv VALUES (1, 1), (2, 2), (3, 3)")
	if err := sys.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint DML lives only in the WAL at kill time.
	s.MustExec("INSERT INTO kv VALUES (4, 4)")
	s.MustExec("UPDATE kv SET v = 20 WHERE k = 2")
	s.MustExec("DELETE FROM kv WHERE k = 1")
	want := sortedRows(t, sys, "kv")

	fs.Crash() // kill -9: drop everything that was not fsynced
	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer re.Close()
	info := re.Coordinator().RecoveryInfo()
	if !info.Recovered || info.WALRecords == 0 {
		t.Fatalf("kill recovery should replay WAL records: %+v", info)
	}
	if got := sortedRows(t, re, "kv"); !rowsEqual(got, want) {
		t.Fatalf("after kill: %v, want %v", got, want)
	}
}

// TestCloseFlushesFinalCheckpoint is the System.Close regression: a clean
// shutdown writes a final checkpoint and fsyncs the WAL, so reopening replays
// nothing, leaks no goroutines, and a second Close is a no-op.
func TestCloseFlushesFinalCheckpoint(t *testing.T) {
	before := runtime.NumGoroutine()
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE fin (k BIGINT, v DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(k)")
	s.MustExec("INSERT INTO fin VALUES (1, 1), (2, 2), (3, 3), (4, 4)")
	want := sortedRows(t, sys, "fin")
	if err := sys.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("second close must be an idempotent no-op, got %v", err)
	}

	// All background goroutines (watchdog, group-commit, auto-checkpoint)
	// must be gone; allow the runtime a moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak after Close: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}

	re, err := OpenDurable(durableConfig(fs, 2))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	info := re.Coordinator().RecoveryInfo()
	if info.WALRecords != 0 {
		t.Fatalf("clean shutdown must leave nothing to replay, replayed %d records", info.WALRecords)
	}
	if got := sortedRows(t, re, "fin"); !rowsEqual(got, want) {
		t.Fatalf("after clean shutdown: %v, want %v", got, want)
	}
}

// TestCDCCatchUpAfterRestart proves a restarted member resumes from its
// durable replication cursor — the accelerated table takes the incremental
// CDC path, not a full re-load from DB2.
func TestCDCCatchUpAfterRestart(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE facts (id BIGINT, amount DOUBLE)")
	s.MustExec("INSERT INTO facts VALUES (1, 10), (2, 20)")
	s.MustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'FACTS')")
	s.MustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'FACTS')")
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Changes after the checkpoint arrive via the CDC stream on recovery.
	s.MustExec("INSERT INTO facts VALUES (3, 30), (4, 40)")
	s.MustExec("DELETE FROM facts WHERE id = 1")
	want := db2Rows(t, sys, "facts")
	fs.Crash()

	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	info := re.Coordinator().RecoveryInfo()
	if info.CaughtUp < 1 {
		t.Fatalf("accelerated table should catch up incrementally: %+v", info)
	}
	if info.FullLoaded != 0 {
		t.Fatalf("no table should need a full re-load, got %d: %+v", info.FullLoaded, info)
	}
	if got := sortedRows(t, re, "facts"); !rowsEqual(got, want) {
		t.Fatalf("after catch-up: %v, want %v", got, want)
	}
	// The accelerator copy (not just the DB2 heap) must answer queries.
	res, err := re.AdminSession().Query("SELECT SUM(amount) FROM facts")
	if err != nil || res.Routed == "" || res.Routed == "DB2" {
		t.Fatalf("query after catch-up should offload: routed=%q err=%v", res.Routed, err)
	}
}

// TestFleetKillRestart kills a 3-shard fleet mid-flight and reopens it with
// the same topology: every shard-local slice of the table recovers exactly
// and scatter-gather queries see the full committed data set.
func TestFleetKillRestart(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 3))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE events (id BIGINT NOT NULL, region VARCHAR(8), amount DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	regions := []string{"EU", "US", "APAC"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO events VALUES ")
	for i := 0; i < 240; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, '%s', %g)", i, regions[i%3], float64(i%17)*0.5)
	}
	s.MustExec(sb.String())
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.MustExec("INSERT INTO events VALUES (1000, 'EU', 99.5), (1001, 'US', 98.5)")
	s.MustExec("DELETE FROM events WHERE id < 10")
	want := sortedRows(t, sys, "events")
	wantAgg, err := s.Query("SELECT region, COUNT(*), SUM(amount) FROM events GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	re, err := OpenDurable(durableConfig(fs, 3))
	if err != nil {
		t.Fatalf("reopen fleet: %v", err)
	}
	defer re.Close()
	if got := sortedRows(t, re, "events"); !rowsEqual(got, want) {
		t.Fatalf("fleet restart lost rows: %d got vs %d want", len(got), len(want))
	}
	gotAgg, err := re.AdminSession().Query("SELECT region, COUNT(*), SUM(amount) FROM events GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(gotAgg.Rows, func(i, j int) bool { return gotAgg.Rows[i][0] < gotAgg.Rows[j][0] })
	sort.Slice(wantAgg.Rows, func(i, j int) bool { return wantAgg.Rows[i][0] < wantAgg.Rows[j][0] })
	if fmt.Sprint(gotAgg.Rows) != fmt.Sprint(wantAgg.Rows) {
		t.Fatalf("scatter-gather after restart: %v, want %v", gotAgg.Rows, wantAgg.Rows)
	}
	// Every member still owns a slice: the group stats must not be empty.
	gs, err := re.ShardGroupStats("SHARDS")
	if err != nil || len(gs.Shards) != 3 {
		t.Fatalf("shard group after restart: %+v, %v", gs, err)
	}
}

// TestRecoveryRebuildsStatistics checks that zone maps and table statistics
// come back after a restart: ANALYZE'd statistics are reusable and a fresh
// ANALYZE on recovered data succeeds with the same row count.
func TestRecoveryRebuildsStatistics(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE st (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	var sb strings.Builder
	sb.WriteString("INSERT INTO st VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %g)", i, float64(i))
	}
	s.MustExec(sb.String())
	if _, err := sys.AnalyzeTable("st"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	n, err := re.AnalyzeTable("st")
	if err != nil || n != 500 {
		t.Fatalf("analyze recovered table: n=%d err=%v", n, err)
	}
	stats, err := re.TableStatistics("st")
	if err != nil || stats.Rows != 500 {
		t.Fatalf("statistics after recovery: %+v, %v", stats, err)
	}
	// Zone-map pruning still works on recovered segments: a selective range
	// scan returns the exact rows.
	res, err := re.AdminSession().Query("SELECT COUNT(*) FROM st WHERE k >= 490")
	if err != nil || res.Rows[0][0] != "10" {
		t.Fatalf("range scan after recovery: %+v, %v", res, err)
	}
}
