package idaax

import (
	"fmt"
	"sync"

	"idaax/internal/accel"
	"idaax/internal/analytics"
	"idaax/internal/federation"
	"idaax/internal/types"
)

// System is a complete instance of the extended accelerator architecture: the
// DB2-style host engine, one (or more) attached accelerators, the federation
// layer, replication, the AOT manager and the analytics procedure framework.
type System struct {
	cfg   Config
	coord *federation.Coordinator

	// opsMu guards the server lists below (Close shuts them down).
	opsMu sync.Mutex
	// opsSrvs are the operations HTTP servers started by ServeOps.
	opsSrvs []*OpsServer
	// wireSrvs are the wire-protocol servers started by ServeWire.
	wireSrvs []*WireServer
}

// federationConfig maps the public config onto the federation layer's.
func (cfg Config) federationConfig() federation.Config {
	specs := make([]federation.AcceleratorSpec, len(cfg.Accelerators))
	for i, a := range cfg.Accelerators {
		specs[i] = federation.AcceleratorSpec{Name: a.Name, Slices: a.Slices}
	}
	return federation.Config{
		AcceleratorName: cfg.AcceleratorName,
		Slices:          cfg.AcceleratorSlices,
		Accelerators:    specs,
		ShardGroup:      cfg.ShardGroupName,
		LockTimeout:     cfg.LockTimeout,
		AdminUser:       cfg.AdminUser,

		QueryHistorySize:   cfg.QueryHistorySize,
		SlowQueryThreshold: cfg.SlowQueryThreshold,
		EventLogSize:       cfg.EventLogSize,
		WatchdogInterval:   cfg.WatchdogInterval,
		CDCLagThreshold:    cfg.CDCLagThreshold,

		DataDir:             cfg.DataDir,
		FS:                  cfg.fs,
		FsyncPolicy:         cfg.FsyncPolicy,
		GroupCommitInterval: cfg.GroupCommitInterval,
		CheckpointWALBytes:  cfg.CheckpointWALBytes,
		RecoveryParallelism: cfg.RecoveryParallelism,
	}
}

// New creates a system with the given configuration. With DataDir set the
// system is durable and New recovers the previous state, panicking if the
// store cannot be opened — use OpenDurable to handle that error instead.
func New(cfg Config) *System {
	sys, err := OpenDurable(cfg)
	if err != nil {
		panic(err)
	}
	return sys
}

// OpenDurable creates a system like New but returns store open/recovery
// errors instead of panicking. It is the constructor durable deployments use:
// with cfg.DataDir set, the previous committed state — DB2 heap tables,
// accelerator shadow and accelerator-only tables, catalog, in-flight CDC —
// is recovered from the checkpoint plus WAL replay before the call returns.
func OpenDurable(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	coord, err := federation.OpenCoordinator(cfg.federationConfig())
	if err != nil {
		return nil, err
	}
	if !cfg.DisableAnalytics {
		analytics.RegisterAll(coord.Procs, cfg.AnalyticsPublic)
	}
	return &System{cfg: cfg, coord: coord}, nil
}

// Open creates a system with default configuration and publicly callable
// analytics procedures; it is the one-liner used by the examples.
func Open() *System {
	return New(Config{AnalyticsPublic: true})
}

// Checkpoint forces a checkpoint on a durable system: the WAL is rotated,
// every table is written as segment files and the manifest is atomically
// replaced, after which recovery starts from the new image. On an in-memory
// system it is a no-op. Checkpoints also happen automatically when the WAL
// grows past Config.CheckpointWALBytes, and on Close.
func (s *System) Checkpoint() error { return s.coord.Checkpoint() }

// Durable reports whether the system runs on a durable store.
func (s *System) Durable() bool { return s.coord.Durable() }

// Close releases the system in dependency order: first every wire-protocol
// server drains — in-flight statements finish and their commits reach the
// WAL, new requests get 503 — then the ops HTTP servers and the health
// watchdog stop, and only then does a durable system flush its final
// checkpoint and close the WAL. Draining before the checkpoint is what makes
// a SIGTERM mid-query safe: a commit acknowledged over the wire is always
// part of the durable image a clean shutdown leaves behind. Close is
// idempotent.
func (s *System) Close() error {
	s.opsMu.Lock()
	wireSrvs := s.wireSrvs
	s.wireSrvs = nil
	opsSrvs := s.opsSrvs
	s.opsSrvs = nil
	s.opsMu.Unlock()
	var firstErr error
	for _, w := range wireSrvs {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, o := range opsSrvs {
		if err := o.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := s.coord.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Coordinator exposes the underlying federation coordinator for advanced use
// (benchmark harness, custom tooling). Most applications only need Session.
func (s *System) Coordinator() *federation.Coordinator { return s.coord }

// Session opens a session for the given authorization id.
func (s *System) Session(user string) *Session {
	return &Session{sys: s, fed: s.coord.Session(user)}
}

// AdminSession opens a session with administrative authority.
func (s *System) AdminSession() *Session { return s.Session(s.cfg.AdminUser) }

// AddAccelerator pairs an additional accelerator.
func (s *System) AddAccelerator(name string, slices int) {
	s.coord.AddAccelerator(name, slices)
}

// AddShardGroup registers a sharded virtual accelerator spanning the named,
// already-paired accelerators. Tables created IN ACCELERATOR <name> are
// partitioned across every member.
func (s *System) AddShardGroup(name string, members ...string) error {
	_, err := s.coord.AddShardGroup(name, members...)
	return err
}

// Metrics summarises cross-system data movement and routing since start (or
// the last ResetMetrics call).
type Metrics struct {
	RowsMovedToAccelerator int64
	RowsMovedToDB2         int64
	RowsReturnedToClient   int64
	StatementsOffloaded    int64
	StatementsLocal        int64
	ProcedureCalls         int64
	ReplicationRowsCopied  int64
}

// Metrics returns the current movement/routing counters.
func (s *System) Metrics() Metrics {
	m := s.coord.Metrics()
	r := s.coord.Repl.Stats()
	return Metrics{
		RowsMovedToAccelerator: m.RowsMovedToAccel,
		RowsMovedToDB2:         m.RowsMovedToDB2,
		RowsReturnedToClient:   m.RowsReturnedToClient,
		StatementsOffloaded:    m.StatementsOffloaded,
		StatementsLocal:        m.StatementsLocal,
		ProcedureCalls:         m.ProcedureCalls,
		ReplicationRowsCopied:  r.RowsFullLoaded + r.RowsIncremental,
	}
}

// ResetMetrics zeroes the statement-level movement counters.
func (s *System) ResetMetrics() { s.coord.ResetMetrics() }

// AcceleratorStats describes one accelerator's activity.
type AcceleratorStats struct {
	Name          string
	Slices        int
	Tables        int
	QueriesRun    int64
	RowsScanned   int64
	BlocksPruned  int64
	RowsIngested  int64
	DMLStatements int64
	// VectorizedQueries counts statements executed by the vectorized batch
	// engine (see SetVectorizedExecution).
	VectorizedQueries int64
	// VectorizedJoins counts the subset of VectorizedQueries that ran a
	// batch hash join (two-table statements joined from column batches).
	VectorizedJoins int64
	// VexecFallbacks counts statements the vectorized engine declined
	// (unsupported shape) that fell back to the row-at-a-time path.
	VexecFallbacks int64
}

// AcceleratorStats returns activity counters for the named accelerator (empty
// name = default accelerator).
func (s *System) AcceleratorStats(name string) (AcceleratorStats, error) {
	a, err := s.coord.Accelerator(name)
	if err != nil {
		return AcceleratorStats{}, err
	}
	return toAcceleratorStats(a.Name(), a.Stats()), nil
}

func toAcceleratorStats(name string, st accel.Stats) AcceleratorStats {
	return AcceleratorStats{
		Name:              name,
		Slices:            st.Slices,
		Tables:            st.Tables,
		QueriesRun:        st.QueriesRun,
		RowsScanned:       st.RowsScanned,
		BlocksPruned:      st.BlocksPruned,
		RowsIngested:      st.RowsIngested,
		DMLStatements:     st.DMLStatements,
		VectorizedQueries: st.VectorizedQueries,
		VectorizedJoins:   st.VectorizedJoins,
		VexecFallbacks:    st.VexecFallbacks,
	}
}

// ShardGroupStats describes a sharded backend: the fleet-wide aggregate,
// every shard's own counters (in shard order), and the router-level routing
// decisions. It is the observability surface the sharded-scan benchmark and
// capacity planning read.
type ShardGroupStats struct {
	// Group aggregates the counters of every shard.
	Group AcceleratorStats
	// Shards holds each member accelerator's own counters.
	Shards []AcceleratorStats
	// QueriesRouted counts SELECTs executed through the shard router.
	QueriesRouted int64
	// QueriesPruned counts SELECTs answered by a single shard because an
	// equality predicate covered the distribution key.
	QueriesPruned int64
	// TwoPhaseAggregates counts SELECTs executed as shard-local partial
	// aggregation finalised at the coordinator.
	TwoPhaseAggregates int64
	// TwoPhaseFrames counts binary aggregation frames shipped shard ->
	// coordinator by those statements (one per participating shard).
	TwoPhaseFrames int64
	// TwoPhaseFrameBytes is the actual wire size of the frames (fixed-width
	// binary keys and accumulator states, strings as dictionary codes);
	// TwoPhaseTextBytes estimates the classic re-rendered-text size of the
	// same partials, so the difference is the measured wire saving.
	TwoPhaseFrameBytes int64
	TwoPhaseTextBytes  int64
	// RowsGathered counts rows shipped shard -> coordinator by queries.
	RowsGathered int64
	// ColocatedJoins counts multi-table SELECTs whose joins ran entirely
	// shard-local (tables joined on their distribution keys, or with the
	// smaller side broadcast).
	ColocatedJoins int64
	// BroadcastJoins counts the subset of ColocatedJoins that replicated at
	// least one table to the participating shards.
	BroadcastJoins int64
	// ShardScansAvoided counts per-table shard scans eliminated by
	// distribution-key pruning (equality, IN lists, bounded ranges).
	ShardScansAvoided int64
	// AnalyticsScatters counts shard-local scatter operations issued by
	// analytics procedures instead of gathering the table. One CALL usually
	// issues one scatter, but may issue more (KMEANS with an assignment
	// output scatters once to train and once to write); DistributedProcCalls
	// counts CALLs.
	AnalyticsScatters int64
	// AnalyticsPartials counts per-shard partial computations those scatters
	// produced (one per shard per scatter).
	AnalyticsPartials int64
	// AnalyticsRowsWrittenLocal counts predictions and cluster assignments
	// written on the shard that computed them (never passing the coordinator).
	AnalyticsRowsWrittenLocal int64
	// DistributedProcCalls breaks AnalyticsScatters down by procedure name
	// (e.g. "IDAX.LINEAR_REGRESSION").
	DistributedProcCalls map[string]int64
	// RowsMigrated counts rows the online rebalancer moved between shards
	// (AddShardMember / RemoveShardMember / ACCEL_REBALANCE).
	RowsMigrated int64
	// RebalanceBatches counts committed migration batches behind RowsMigrated.
	RebalanceBatches int64
	// RebalancesCompleted counts rebalance runs that drove every table back to
	// a single placement map.
	RebalancesCompleted int64
	// Epoch counts membership changes of the group; it advances when a member
	// is added, starts draining, or is detached.
	Epoch int64
}

// ShardGroupStats returns per-shard and aggregate activity counters for the
// named shard group (empty name = the configured default group).
func (s *System) ShardGroupStats(name string) (ShardGroupStats, error) {
	if name == "" {
		name = s.cfg.ShardGroupName
	}
	router, err := s.coord.ShardGroup(name)
	if err != nil {
		return ShardGroupStats{}, err
	}
	group, err := s.AcceleratorStats(name)
	if err != nil {
		return ShardGroupStats{}, err
	}
	members := router.Members()
	perShard := make([]AcceleratorStats, len(members))
	for i, m := range members {
		perShard[i] = toAcceleratorStats(m.Name(), m.Stats())
	}
	routing := router.ShardingStats()
	return ShardGroupStats{
		Group:                     group,
		Shards:                    perShard,
		QueriesRouted:             routing.QueriesRouted,
		QueriesPruned:             routing.QueriesPruned,
		TwoPhaseAggregates:        routing.TwoPhaseAggregates,
		TwoPhaseFrames:            routing.TwoPhaseFrames,
		TwoPhaseFrameBytes:        routing.TwoPhaseFrameBytes,
		TwoPhaseTextBytes:         routing.TwoPhaseTextBytes,
		RowsGathered:              routing.RowsGathered,
		ColocatedJoins:            routing.ColocatedJoins,
		BroadcastJoins:            routing.BroadcastJoins,
		ShardScansAvoided:         routing.ShardScansAvoided,
		AnalyticsScatters:         routing.AnalyticsScatters,
		AnalyticsPartials:         routing.AnalyticsPartials,
		AnalyticsRowsWrittenLocal: routing.AnalyticsRowsWrittenLocal,
		DistributedProcCalls:      router.DistributedProcCalls(),
		RowsMigrated:              routing.RowsMigrated,
		RebalanceBatches:          routing.RebalanceBatches,
		RebalancesCompleted:       routing.RebalancesCompleted,
		Epoch:                     routing.Epoch,
	}, nil
}

// SetShardLocalAnalytics enables or disables shard-local procedure execution
// for the named shard group (empty name = the configured default group).
// Enabled by default; the benchmark harness disables it to measure the
// gather baseline (bench E12).
func (s *System) SetShardLocalAnalytics(group string, enabled bool) error {
	if group == "" {
		group = s.cfg.ShardGroupName
	}
	router, err := s.coord.ShardGroup(group)
	if err != nil {
		return err
	}
	router.SetShardLocalAnalytics(enabled)
	return nil
}

// SetVectorizedExecution enables or disables the vectorized batch execution
// engine on every paired backend — single accelerators and shard groups alike
// (shard groups fan the setting to their members, including members added
// later). Enabled by default; it is the A/B switch mirroring the router's
// SetCostBasedPlanning, and bench E13 uses it to measure the batch engine
// against the row-at-a-time baseline. Both engines return identical results.
func (s *System) SetVectorizedExecution(enabled bool) {
	for _, name := range s.coord.Accelerators() {
		if a, err := s.coord.Accelerator(name); err == nil {
			a.SetVectorizedExecution(enabled)
		}
	}
}

// ColumnStatistics describes one column's planner statistics.
type ColumnStatistics struct {
	Name         string
	Type         string
	NonNull      int64
	Nulls        int64
	DistinctEst  float64
	Min          string
	Max          string
	HasHistogram bool
}

// TableStatistics describes a table's planner statistics (merged across
// shards for sharded tables). Counters are maintained incrementally on every
// insert/delete and rebuilt exactly by AnalyzeTable / ANALYZE TABLE.
type TableStatistics struct {
	Rows     int64
	Analyzed bool
	Columns  []ColumnStatistics
}

// TableStatistics returns the planner statistics of an accelerated table.
func (s *System) TableStatistics(table string) (TableStatistics, error) {
	meta, err := s.coord.Catalog().Table(table)
	if err != nil {
		return TableStatistics{}, err
	}
	a, err := s.coord.Accelerator(meta.Accelerator)
	if err != nil {
		return TableStatistics{}, err
	}
	snap, err := a.TableStatistics(meta.Name)
	if err != nil {
		return TableStatistics{}, err
	}
	out := TableStatistics{Rows: snap.Rows, Analyzed: snap.Analyzed}
	for _, c := range snap.Cols {
		out.Columns = append(out.Columns, ColumnStatistics{
			Name:         c.Name,
			Type:         c.Kind.String(),
			NonNull:      c.NonNull,
			Nulls:        c.Nulls,
			DistinctEst:  c.NDV,
			Min:          c.Min.String(),
			Max:          c.Max.String(),
			HasHistogram: c.Hist != nil,
		})
	}
	return out, nil
}

// AnalyzeTable rebuilds a table's planner statistics exactly (the API twin of
// ANALYZE TABLE / SYSPROC.ACCEL_ANALYZE) and returns the rows analyzed.
func (s *System) AnalyzeTable(table string) (int, error) {
	meta, err := s.coord.Catalog().Table(table)
	if err != nil {
		return 0, err
	}
	a, err := s.coord.Accelerator(meta.Accelerator)
	if err != nil {
		return 0, err
	}
	return a.Analyze(meta.Name)
}

// TableInfo describes a table's acceleration state.
type TableInfo struct {
	Name            string
	Kind            string
	Accelerator     string
	DB2Rows         int
	AcceleratorRows int
	PendingChanges  int
}

// TableInfo returns the acceleration state of a table.
func (s *System) TableInfo(name string) (TableInfo, error) {
	meta, err := s.coord.Catalog().Table(name)
	if err != nil {
		return TableInfo{}, err
	}
	info := TableInfo{
		Name:        meta.Name,
		Kind:        meta.Kind.String(),
		Accelerator: meta.Accelerator,
		DB2Rows:     -1, AcceleratorRows: -1,
	}
	if st, err := s.coord.DB2.Storage(meta.Name); err == nil {
		info.DB2Rows = st.RowCount()
	}
	if meta.Accelerator != "" {
		if a, err := s.coord.Accelerator(meta.Accelerator); err == nil {
			if n, err := a.RowCount(0, meta.Name); err == nil {
				info.AcceleratorRows = n
			}
		}
	}
	info.PendingChanges = s.coord.Repl.PendingChanges(meta.Name)
	return info, nil
}

// Tables lists all tables in the catalog.
func (s *System) Tables() []TableInfo {
	var out []TableInfo
	for _, meta := range s.coord.Catalog().Tables() {
		if info, err := s.TableInfo(meta.Name); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// normalize is a tiny helper shared by the facade files.
func normalize(name string) string { return types.NormalizeName(name) }

var _ = fmt.Sprintf
