package idaax

// Crash-injection recovery tests: a fixed workload is run against a durable
// system whose filesystem is armed to fail at the Nth mutating operation —
// failing outright, applying a short write, or tearing a write and killing
// the process one syscall later. At every injection point, across every
// mode, the reopened system must hold exactly the rows of the statements
// that were acknowledged before the fault: acknowledged commits never
// disappear, unacknowledged statements never half-appear.

import (
	"fmt"
	"sort"
	"testing"

	"idaax/internal/testutil/crashfs"
)

// crashStep is one step of the injection workload: a statement plus the
// table contents expected if it commits (nil = no visible change tracked).
type crashStep struct {
	sql string
	// mutate applies the step's effect to the expected-state model.
	mutate func(state map[int64]float64)
	// checkpoint runs System.Checkpoint instead of a statement.
	checkpoint bool
}

// crashWorkload is the fixed statement sequence every injection point runs.
// It covers DDL, multi-row inserts, updates, deletes, an explicit checkpoint
// (so faults land inside segment/manifest writes too) and post-checkpoint DML
// (so faults land in the fresh WAL).
func crashWorkload() []crashStep {
	set := func(k int64, v float64) func(map[int64]float64) {
		return func(m map[int64]float64) { m[k] = v }
	}
	del := func(k int64) func(map[int64]float64) {
		return func(m map[int64]float64) { delete(m, k) }
	}
	multi := func(fns ...func(map[int64]float64)) func(map[int64]float64) {
		return func(m map[int64]float64) {
			for _, fn := range fns {
				fn(m)
			}
		}
	}
	return []crashStep{
		{sql: "CREATE TABLE cx (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1", mutate: func(map[int64]float64) {}},
		{sql: "INSERT INTO cx VALUES (1, 1.5), (2, 2.5), (3, 3.5)", mutate: multi(set(1, 1.5), set(2, 2.5), set(3, 3.5))},
		{sql: "INSERT INTO cx VALUES (4, 4.5)", mutate: set(4, 4.5)},
		{sql: "UPDATE cx SET v = 20.5 WHERE k = 2", mutate: set(2, 20.5)},
		{sql: "DELETE FROM cx WHERE k = 3", mutate: del(3)},
		{checkpoint: true},
		{sql: "INSERT INTO cx VALUES (5, 5.5), (6, 6.5)", mutate: multi(set(5, 5.5), set(6, 6.5))},
		{sql: "DELETE FROM cx WHERE k = 1", mutate: del(1)},
		{sql: "UPDATE cx SET v = 40.5 WHERE k = 4", mutate: set(4, 40.5)},
		{sql: "INSERT INTO cx VALUES (7, 7.5)", mutate: set(7, 7.5)},
	}
}

// runCrashWorkload executes the workload until the injected fault surfaces,
// returning the expected table state (of acknowledged statements only) and
// whether the table's DDL was acknowledged.
func runCrashWorkload(sys *System) (state map[int64]float64, created bool) {
	state = make(map[int64]float64)
	s := sys.AdminSession()
	for i, step := range crashWorkload() {
		var err error
		if step.checkpoint {
			err = sys.Checkpoint()
		} else if _, err = s.Exec(step.sql); err == nil {
			step.mutate(state)
			if i == 0 {
				created = true
			}
		}
		if err != nil {
			return state, created
		}
	}
	return state, created
}

func expectedRows(state map[int64]float64) []string {
	rows := make([]string, 0, len(state))
	for k, v := range state {
		rows = append(rows, fmt.Sprintf("%d|%g", k, v))
	}
	sort.Strings(rows)
	return rows
}

// totalWorkloadOps measures how many filesystem operations a clean run of
// the workload performs, so injection points can be spread across all of it.
func totalWorkloadOps(t *testing.T) int64 {
	t.Helper()
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	fs.Arm(1<<62, crashfs.Fail) // never fires; resets the op counter
	if state, _ := runCrashWorkload(sys); len(state) == 0 {
		t.Fatal("clean workload run failed")
	}
	ops := fs.Ops()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if ops < 10 {
		t.Fatalf("workload performed only %d fs ops", ops)
	}
	return ops
}

// TestCrashInjectionRecovery is the table-driven acceptance suite: >= 50
// injection points spread across the whole workload, in all three fault
// modes. After every crash the store must reopen and hold exactly the
// acknowledged state.
func TestCrashInjectionRecovery(t *testing.T) {
	total := totalWorkloadOps(t)
	const pointsPerMode = 20 // 3 modes x 20 = 60 injection points
	modes := []crashfs.Mode{crashfs.Fail, crashfs.ShortWrite, crashfs.TornWrite}
	for _, mode := range modes {
		for i := 0; i < pointsPerMode; i++ {
			n := 1 + (total-1)*int64(i)/int64(pointsPerMode-1)
			t.Run(fmt.Sprintf("%s/op%d", mode, n), func(t *testing.T) {
				fs := crashfs.New()
				sys, err := OpenDurable(durableConfig(fs, 1))
				if err != nil {
					t.Fatal(err)
				}
				fs.Arm(n, mode)
				state, created := runCrashWorkload(sys)
				fired := fs.Fired()
				fs.Crash()

				re, err := OpenDurable(durableConfig(fs, 1))
				if err != nil {
					t.Fatalf("reopen after %s at op %d: %v", mode, n, err)
				}
				defer re.Close()
				if !created {
					// DDL itself was not acknowledged; the table may or may
					// not exist, but opening must have succeeded (above) and
					// the system must accept new work.
					re.AdminSession().MustExec("CREATE TABLE probe (k BIGINT) IN ACCELERATOR IDAA1")
					return
				}
				got := sortedRows(t, re, "cx")
				want := expectedRows(state)
				if !rowsEqual(got, want) {
					t.Fatalf("%s at op %d (fired=%v): recovered %v, want %v", mode, n, fired, got, want)
				}
				// The recovered system must stay writable.
				re.AdminSession().MustExec("INSERT INTO cx VALUES (100, 0.5)")
				if g := len(sortedRows(t, re, "cx")); g != len(want)+1 {
					t.Fatalf("insert after recovery: %d rows, want %d", g, len(want)+1)
				}
			})
		}
	}
}

// TestCrashInjectionDDLVisibility pins the acknowledged-DDL guarantee
// explicitly: once CREATE TABLE returns success, the table exists after any
// subsequent crash — even with zero rows and zero checkpoints.
func TestCrashInjectionDDLVisibility(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	sys.AdminSession().MustExec("CREATE TABLE ddl_only (k BIGINT, note VARCHAR(8)) IN ACCELERATOR IDAA1")
	fs.Crash()
	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res, err := re.AdminSession().Query("SELECT COUNT(*) FROM ddl_only")
	if err != nil || res.Rows[0][0] != "0" {
		t.Fatalf("acknowledged DDL lost in crash: %+v, %v", res, err)
	}
}

// TestCrashDuringRecoveryIsRetryable arms a fault inside recovery itself:
// reopening fails, but after the fault clears the store opens with nothing
// lost — recovery never mutates the durable image destructively.
func TestCrashDuringRecoveryIsRetryable(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE rr (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	s.MustExec("INSERT INTO rr VALUES (1, 1.5), (2, 2.5)")
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.MustExec("INSERT INTO rr VALUES (3, 3.5)")
	want := sortedRows(t, sys, "rr")
	fs.Crash()

	// A recovery attempt that dies on its first mutating operation (the
	// fresh WAL file creation) must not corrupt anything.
	fs.Arm(1, crashfs.Fail)
	if _, err := OpenDurable(durableConfig(fs, 1)); err == nil {
		t.Fatal("open with a failing filesystem should error")
	}
	fs.Crash()

	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatalf("retry after failed recovery: %v", err)
	}
	defer re.Close()
	if got := sortedRows(t, re, "rr"); !rowsEqual(got, want) {
		t.Fatalf("after failed recovery retry: %v, want %v", got, want)
	}
}

// TestTornWALTailIsIgnored writes a torn frame into the live WAL tail and
// proves replay stops cleanly at the last whole record instead of erroring
// or resurrecting half a transaction.
func TestTornWALTailIsIgnored(t *testing.T) {
	fs := crashfs.New()
	sys, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE tt (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	s.MustExec("INSERT INTO tt VALUES (1, 1.5)")
	want := sortedRows(t, sys, "tt")

	// Tear the next append: its prefix lands in the volatile image, the
	// statement is never acknowledged, and the crash follows immediately.
	fs.Arm(1, crashfs.TornWrite)
	if _, err := s.Exec("INSERT INTO tt VALUES (2, 2.5)"); err == nil {
		// The torn write itself reports success; the statement may still
		// fail on the fsync that follows. Either way it was not durable.
		_ = err
	}
	fs.Crash()

	re, err := OpenDurable(durableConfig(fs, 1))
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer re.Close()
	got := sortedRows(t, re, "tt")
	if rowsEqual(got, want) {
		return
	}
	// The only other legal outcome is the full statement, never a fragment.
	withRow := append(append([]string{}, want...), "2|2.5")
	sort.Strings(withRow)
	if !rowsEqual(got, withRow) {
		t.Fatalf("torn tail recovered %v, want %v or %v", got, want, withRow)
	}
}
