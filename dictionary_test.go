package idaax_test

import (
	"fmt"
	"strings"
	"testing"

	"idaax"
	"idaax/internal/colstore"
)

// withDictThreshold runs fn with the process-wide dictionary threshold set to
// n, restoring the previous value afterwards. The threshold applies at append
// time, so each run seeds its own system.
func withDictThreshold(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := colstore.SetDictThreshold(n)
	defer colstore.SetDictThreshold(prev)
	fn()
}

// TestDictionaryDifferentialSQL seeds the same data with dictionary encoding
// enabled (default threshold) and disabled (threshold 0) and runs the full
// scan/filter/aggregate corpus plus the join corpus on both, with the
// vectorized engine on and off: four execution configurations, one answer.
func TestDictionaryDifferentialSQL(t *testing.T) {
	type cfgResult struct {
		name string
		fps  map[bool][]string
	}
	var runs []cfgResult
	for _, threshold := range []int{colstore.DefaultDictThreshold, 0} {
		withDictThreshold(t, threshold, func() {
			sys := newTestSystem(t)
			defer sys.Close()
			seedVectorTable(t, sys, "IDAA1", "", 1000)
			seedJoinCorpusTables(t, sys, "IDAA1", "", "", 800, 40)
			s := sys.AdminSession()

			fps := map[bool][]string{}
			for _, vectorized := range []bool{true, false} {
				sys.SetVectorizedExecution(vectorized)
				for _, q := range vectorizedDifferentialQueries {
					res, err := s.Query(q.sql)
					if err != nil {
						t.Fatalf("%s (dict=%d vectorized=%v): %v", q.sql, threshold, vectorized, err)
					}
					fp := sortedFingerprint(res)
					if q.ordered {
						fp = resultFingerprint(res)
					}
					fps[vectorized] = append(fps[vectorized], fp)
				}
				for _, q := range joinDifferentialQueries {
					res, err := s.Query(q.sql)
					if err != nil {
						t.Fatalf("%s (dict=%d vectorized=%v): %v", q.sql, threshold, vectorized, err)
					}
					fp := sortedFingerprint(res)
					if q.ordered {
						fp = resultFingerprint(res)
					}
					fps[vectorized] = append(fps[vectorized], fp)
				}
			}

			// The EXPLAIN surface must reflect the storage state: dictionary
			// columns are listed when encoding is on and absent when it is off.
			res, err := s.Query("EXPLAIN SELECT cat, COUNT(*) FROM vdiff GROUP BY cat")
			if err != nil {
				t.Fatal(err)
			}
			var plan strings.Builder
			for _, row := range res.Rows {
				plan.WriteString(row[3] + "\n")
			}
			hasDict := strings.Contains(plan.String(), "encoding=dict(")
			if threshold > 0 && !hasDict {
				t.Errorf("dict threshold %d: EXPLAIN shows no dictionary encoding:\n%s", threshold, plan.String())
			}
			if threshold == 0 && hasDict {
				t.Errorf("dict threshold 0: EXPLAIN still shows dictionary encoding:\n%s", plan.String())
			}
			runs = append(runs, cfgResult{name: fmt.Sprintf("dict=%d", threshold), fps: fps})
		})
	}

	base := runs[0]
	for _, other := range runs[1:] {
		for _, vectorized := range []bool{true, false} {
			for i := range base.fps[vectorized] {
				if base.fps[vectorized][i] != other.fps[vectorized][i] {
					t.Errorf("query %d (vectorized=%v): %s and %s disagree\n%s\nvs\n%s",
						i, vectorized, base.name, other.name,
						base.fps[vectorized][i], other.fps[vectorized][i])
				}
			}
		}
	}
}

// TestDictionaryCardinalityOverflow drives one column past the threshold
// mid-insert so it spills to raw strings while a sibling column keeps its
// dictionary, and verifies results match the raw-path twin and EXPLAIN lists
// only the surviving dictionary.
func TestDictionaryCardinalityOverflow(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM spill WHERE lo = 'k3'",
		"SELECT lo, COUNT(*), MIN(hi), MAX(hi) FROM spill GROUP BY lo ORDER BY lo",
		"SELECT COUNT(*) FROM spill WHERE hi = 'v123'",
		"SELECT COUNT(*) FROM spill WHERE hi > 'v50' AND lo <> 'k1'",
		"SELECT lo, hi FROM spill WHERE n < 40 ORDER BY n",
	}
	seed := func(sys *idaax.System) {
		s := sys.AdminSession()
		if _, err := s.Exec("CREATE TABLE spill (n BIGINT, lo VARCHAR(8), hi VARCHAR(16)) IN ACCELERATOR IDAA1"); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO spill VALUES ")
		for i := 0; i < 500; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			// lo stays at 6 distinct values; hi reaches 500 and overflows.
			fmt.Fprintf(&sb, "(%d, 'k%d', 'v%d')", i, i%6, i)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	run := func(sys *idaax.System) []string {
		s := sys.AdminSession()
		var out []string
		for _, q := range queries {
			res, err := s.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			out = append(out, resultFingerprint(res))
		}
		return out
	}

	var withDict, raw []string
	withDictThreshold(t, 16, func() {
		sys := newTestSystem(t)
		defer sys.Close()
		seed(sys)
		withDict = run(sys)

		res, err := sys.AdminSession().Query("EXPLAIN SELECT COUNT(*) FROM spill WHERE lo = 'k2'")
		if err != nil {
			t.Fatal(err)
		}
		var plan strings.Builder
		for _, row := range res.Rows {
			plan.WriteString(row[3] + "\n")
		}
		if !strings.Contains(plan.String(), "encoding=dict(lo:6)") {
			t.Errorf("low-cardinality column lost its dictionary:\n%s", plan.String())
		}
		if strings.Contains(plan.String(), "hi:") {
			t.Errorf("overflowed column still listed as dictionary-encoded:\n%s", plan.String())
		}
	})
	withDictThreshold(t, 0, func() {
		sys := newTestSystem(t)
		defer sys.Close()
		seed(sys)
		raw = run(sys)
	})
	for i, q := range queries {
		if withDict[i] != raw[i] {
			t.Errorf("%s: spilled/dict results differ from raw\n%s\nvs\n%s", q, withDict[i], raw[i])
		}
	}
}
