package analytics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements the merge half of shard-local ("distributed") training:
// every shard reduces its partition of the input table to a partial —
// sufficient statistics where the algorithm's math is a sum over rows, a
// locally trained model where it is not — and the coordinator folds the
// partials into one model. Linear and logistic regression, naive Bayes and
// column summaries merge exactly (their estimators are sums of per-row
// terms); k-means and decision trees merge by consolidation (weighted
// reclustering of the shards' centers, a voting ensemble of the shards'
// trees) and agree with single-backend training up to local-optima tolerance.

// forEachPart runs fn(i, parts[i]) concurrently for every non-empty partition
// and returns the first error.
func forEachPart(parts []*Dataset, fn func(i int, ds *Dataset) error) error {
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, ds := range parts {
		if ds == nil || ds.Rows() == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, ds *Dataset) {
			defer wg.Done()
			errs[i] = fn(i, ds)
		}(i, ds)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// partStats validates a partition list and returns the shared feature names
// and total row count. Partitions may be nil/empty (shards holding no rows).
func partStats(parts []*Dataset) (featureNames []string, total int, err error) {
	for _, ds := range parts {
		if ds == nil || ds.Rows() == 0 {
			continue
		}
		total += ds.Rows()
		if featureNames == nil {
			featureNames = ds.FeatureNames
			continue
		}
		if len(ds.FeatureNames) != len(featureNames) {
			return nil, 0, fmt.Errorf("analytics: partitions disagree on feature count (%d vs %d)", len(ds.FeatureNames), len(featureNames))
		}
		for j, name := range ds.FeatureNames {
			if name != featureNames[j] {
				return nil, 0, fmt.Errorf("analytics: partitions disagree on feature %d (%s vs %s)", j, name, featureNames[j])
			}
		}
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("analytics: no rows in any partition")
	}
	return featureNames, total, nil
}

// ---------------------------------------------------------------------------
// Linear regression: per-shard Gram matrices (X'X, X'y) merge exactly.
// ---------------------------------------------------------------------------

// LinRegPartial is one shard's contribution to the normal equations: the
// local Gram matrix X'X and moment vector X'y (intercept column first), plus
// the target moments needed to finalise RMSE/R².
type LinRegPartial struct {
	XtX [][]float64
	XtY []float64
	N   int
}

// LinRegPartialFromDataset reduces one partition to its normal-equation
// contribution. The dataset must carry a numeric target.
func LinRegPartialFromDataset(ds *Dataset) (*LinRegPartial, error) {
	n := ds.Rows()
	if len(ds.Target) != n {
		return nil, fmt.Errorf("analytics: linear regression requires a numeric target")
	}
	d := ds.Cols() + 1
	p := &LinRegPartial{XtX: make([][]float64, d), XtY: make([]float64, d), N: n}
	for i := range p.XtX {
		p.XtX[i] = make([]float64, d)
	}
	xrow := make([]float64, d)
	for i := 0; i < n; i++ {
		xrow[0] = 1
		copy(xrow[1:], ds.Features[i])
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				p.XtX[a][b] += xrow[a] * xrow[b]
			}
			p.XtY[a] += xrow[a] * ds.Target[i]
		}
	}
	return p, nil
}

// MergeLinRegPartials sums per-shard Gram matrices and solves the merged
// normal equations — the exact estimator a single backend computes over all
// rows, because matrix sums commute with row grouping.
func MergeLinRegPartials(parts []*LinRegPartial, ridge float64) (beta []float64, n int, err error) {
	var xtx [][]float64
	var xty []float64
	for _, p := range parts {
		if p == nil {
			continue
		}
		if xtx == nil {
			d := len(p.XtY)
			xtx = make([][]float64, d)
			for i := range xtx {
				xtx[i] = append([]float64(nil), p.XtX[i]...)
			}
			xty = append([]float64(nil), p.XtY...)
			n = p.N
			continue
		}
		if len(p.XtY) != len(xty) {
			return nil, 0, fmt.Errorf("analytics: mismatched linear-regression partials (%d vs %d terms)", len(p.XtY), len(xty))
		}
		for a := range xtx {
			for b := range xtx[a] {
				xtx[a][b] += p.XtX[a][b]
			}
			xty[a] += p.XtY[a]
		}
		n += p.N
	}
	if xtx == nil || n == 0 {
		return nil, 0, fmt.Errorf("analytics: linear regression requires at least one row")
	}
	if ridge < 0 {
		ridge = 0
	}
	for a := 1; a < len(xtx); a++ {
		xtx[a][a] += ridge
	}
	beta, err = solveLinearSystem(xtx, xty)
	if err != nil {
		return nil, 0, err
	}
	return beta, n, nil
}

// TrainLinearRegressionDistributed fits the same least-squares model as
// TrainLinearRegression, but from per-shard partitions: shards reduce to
// Gram-matrix partials, the coordinator merges and solves, and a second
// scatter of per-row residual sums finalises RMSE/R² with the single-backend
// formulas.
func TrainLinearRegressionDistributed(parts []*Dataset, ridge float64) (*LinearModel, error) {
	featureNames, total, err := partStats(parts)
	if err != nil {
		return nil, fmt.Errorf("analytics: linear regression requires at least one row (%w)", err)
	}
	partials := make([]*LinRegPartial, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		p, err := LinRegPartialFromDataset(ds)
		partials[i] = p
		return err
	}); err != nil {
		return nil, err
	}
	beta, n, err := MergeLinRegPartials(partials, ridge)
	if err != nil {
		return nil, err
	}
	if ridge < 0 {
		ridge = 0
	}
	model := &LinearModel{
		FeatureNames: append([]string(nil), featureNames...),
		Intercept:    beta[0],
		Coefficients: beta[1:],
		Ridge:        ridge,
		N:            n,
	}

	// Metric scatter: Σy is the intercept component of the merged X'y, so the
	// global mean is known before the residual pass.
	var sumY float64
	for _, p := range partials {
		if p != nil {
			sumY += p.XtY[0]
		}
	}
	mean := sumY / float64(total)
	ssRes := make([]float64, len(parts))
	ssTot := make([]float64, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		for r := 0; r < ds.Rows(); r++ {
			diff := ds.Target[r] - model.Predict(ds.Features[r])
			ssRes[i] += diff * diff
			dt := ds.Target[r] - mean
			ssTot[i] += dt * dt
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var res, tot float64
	for i := range ssRes {
		res += ssRes[i]
		tot += ssTot[i]
	}
	model.RMSE = math.Sqrt(res / float64(total))
	if tot > 0 {
		model.R2 = 1 - res/tot
	}
	return model, nil
}

// ---------------------------------------------------------------------------
// Logistic regression: per-iteration gradient sums merge exactly.
// ---------------------------------------------------------------------------

// TrainLogisticRegressionDistributed fits the same batch-gradient-descent
// model as TrainLogisticRegression from per-shard partitions: feature
// standardisation comes from merged moments, every iteration scatters the
// gradient computation (each shard sums its own rows) and merges the per-
// shard sums — only 2(p+1) floats per shard per round travel, never rows.
func TrainLogisticRegressionDistributed(parts []*Dataset, iterations int, learningRate, l2 float64) (*LogisticModel, error) {
	featureNames, n, err := partStats(parts)
	if err != nil {
		return nil, fmt.Errorf("analytics: logistic regression requires at least one row (%w)", err)
	}
	for _, ds := range parts {
		if ds != nil && ds.Rows() > 0 && len(ds.Target) != ds.Rows() {
			return nil, fmt.Errorf("analytics: logistic regression requires a numeric 0/1 target")
		}
	}
	p := len(featureNames)
	if iterations <= 0 {
		iterations = 200
	}
	if learningRate <= 0 {
		learningRate = 0.1
	}
	if l2 < 0 {
		l2 = 0
	}

	// Global standardisation moments, merged across shards.
	sums := make([]float64, p)
	sumSqs := make([]float64, p)
	var mu sync.Mutex
	if err := forEachPart(parts, func(_ int, ds *Dataset) error {
		localSum := make([]float64, p)
		localSq := make([]float64, p)
		for i := 0; i < ds.Rows(); i++ {
			for j := 0; j < p; j++ {
				v := ds.Features[i][j]
				localSum[j] += v
				localSq[j] += v * v
			}
		}
		mu.Lock()
		for j := 0; j < p; j++ {
			sums[j] += localSum[j]
			sumSqs[j] += localSq[j]
		}
		mu.Unlock()
		return nil
	}); err != nil {
		return nil, err
	}
	means := make([]float64, p)
	stds := make([]float64, p)
	for j := 0; j < p; j++ {
		means[j] = sums[j] / float64(n)
		variance := sumSqs[j]/float64(n) - means[j]*means[j]
		if variance < 1e-12 {
			variance = 1
		}
		stds[j] = math.Sqrt(variance)
	}

	// Standardize each partition once, like the single-backend trainer does,
	// instead of re-deriving every cell on every iteration.
	stdParts := make([][][]float64, len(parts))
	yParts := make([][]float64, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		std := make([][]float64, ds.Rows())
		y := make([]float64, ds.Rows())
		for r := 0; r < ds.Rows(); r++ {
			std[r] = make([]float64, p)
			for j := 0; j < p; j++ {
				std[r][j] = (ds.Features[r][j] - means[j]) / stds[j]
			}
			if ds.Target[r] > 0.5 {
				y[r] = 1
			}
		}
		stdParts[i] = std
		yParts[i] = y
		return nil
	}); err != nil {
		return nil, err
	}

	w := make([]float64, p)
	b := 0.0
	// One flat gradient frame per round: shard i owns the (p+1)-wide stripe
	// at frame[i*(p+1) : (i+1)*(p+1)] — p weight gradients followed by the
	// bias gradient. In a networked deployment this stripe is exactly the
	// fixed-width binary payload each shard ships back per iteration; here it
	// also means the round allocates nothing (the frame is zeroed and reused),
	// where the old shape built a fresh gw slice per shard per round. The
	// merge still folds stripes in shard-ordinal order, so the floating-point
	// summation order — and therefore the trained model — is unchanged.
	stripe := p + 1
	frame := make([]float64, len(parts)*stripe)
	mergedW := make([]float64, p)
	for iter := 0; iter < iterations; iter++ {
		for k := range frame {
			frame[k] = 0
		}
		// Scatter: each shard sums gradients over its own standardized rows
		// directly into its stripe of the shared frame.
		if err := forEachPart(parts, func(i int, ds *Dataset) error {
			g := frame[i*stripe : (i+1)*stripe]
			std := stdParts[i]
			y := yParts[i]
			for r := 0; r < ds.Rows(); r++ {
				z := b
				for j := 0; j < p; j++ {
					z += w[j] * std[r][j]
				}
				pred := sigmoid(z)
				errTerm := pred - y[r]
				for j := 0; j < p; j++ {
					g[j] += errTerm * std[r][j]
				}
				g[p] += errTerm
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// Merge the frame's stripes in shard order and update.
		scale := learningRate / float64(n)
		mergedB := 0.0
		for j := range mergedW {
			mergedW[j] = 0
		}
		for i := range parts {
			g := frame[i*stripe : (i+1)*stripe]
			for j := 0; j < p; j++ {
				mergedW[j] += g[j]
			}
			mergedB += g[p]
		}
		for j := 0; j < p; j++ {
			w[j] -= scale * (mergedW[j] + l2*w[j])
		}
		b -= scale * mergedB
	}

	coeffs := make([]float64, p)
	intercept := b
	for j := 0; j < p; j++ {
		coeffs[j] = w[j] / stds[j]
		intercept -= w[j] * means[j] / stds[j]
	}
	model := &LogisticModel{
		FeatureNames: append([]string(nil), featureNames...),
		Intercept:    intercept,
		Coefficients: coeffs,
		Iterations:   iterations,
		LearningRate: learningRate,
		N:            n,
	}

	// Metric scatter with the final model.
	correct := make([]int, len(parts))
	logLoss := make([]float64, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		for r := 0; r < ds.Rows(); r++ {
			prob := model.PredictProbability(ds.Features[r])
			y := 0.0
			if ds.Target[r] > 0.5 {
				y = 1
			}
			if (prob >= 0.5) == (y == 1) {
				correct[i]++
			}
			eps := 1e-12
			logLoss[i] += -(y*math.Log(prob+eps) + (1-y)*math.Log(1-prob+eps))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	totalCorrect := 0
	totalLoss := 0.0
	for i := range parts {
		totalCorrect += correct[i]
		totalLoss += logLoss[i]
	}
	model.TrainAccuracy = float64(totalCorrect) / float64(n)
	model.TrainLogLoss = totalLoss / float64(n)
	return model, nil
}

// ---------------------------------------------------------------------------
// Naive Bayes: per-class count/sum/sum-of-squares merge exactly.
// ---------------------------------------------------------------------------

// NaiveBayesPartial is one shard's per-class moment set.
type NaiveBayesPartial struct {
	Features int
	Counts   map[string]int
	Sums     map[string][]float64
	SumSqs   map[string][]float64
	N        int
}

// NaiveBayesPartialFromDataset reduces one labelled partition to its
// per-class moments.
func NaiveBayesPartialFromDataset(ds *Dataset) (*NaiveBayesPartial, error) {
	n := ds.Rows()
	if len(ds.Labels) != n {
		return nil, fmt.Errorf("analytics: naive bayes requires a categorical target")
	}
	p := ds.Cols()
	out := &NaiveBayesPartial{
		Features: p,
		Counts:   make(map[string]int),
		Sums:     make(map[string][]float64),
		SumSqs:   make(map[string][]float64),
		N:        n,
	}
	for i := 0; i < n; i++ {
		label := ds.Labels[i]
		if _, ok := out.Counts[label]; !ok {
			out.Sums[label] = make([]float64, p)
			out.SumSqs[label] = make([]float64, p)
		}
		out.Counts[label]++
		for j := 0; j < p; j++ {
			v := ds.Features[i][j]
			out.Sums[label][j] += v
			out.SumSqs[label][j] += v * v
		}
	}
	return out, nil
}

// MergeNaiveBayesPartials folds per-shard class moments and finalises the
// gaussian parameters with the single-backend formulas.
func MergeNaiveBayesPartials(featureNames []string, parts []*NaiveBayesPartial) (*NaiveBayesModel, error) {
	p := len(featureNames)
	counts := make(map[string]int)
	sums := make(map[string][]float64)
	sumSqs := make(map[string][]float64)
	n := 0
	for _, part := range parts {
		if part == nil {
			continue
		}
		if part.Features != p {
			return nil, fmt.Errorf("analytics: mismatched naive-bayes partials (%d vs %d features)", part.Features, p)
		}
		n += part.N
		for label, c := range part.Counts {
			if _, ok := counts[label]; !ok {
				sums[label] = make([]float64, p)
				sumSqs[label] = make([]float64, p)
			}
			counts[label] += c
			for j := 0; j < p; j++ {
				sums[label][j] += part.Sums[label][j]
				sumSqs[label][j] += part.SumSqs[label][j]
			}
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("analytics: naive bayes requires at least one row")
	}
	model := &NaiveBayesModel{
		FeatureNames: append([]string(nil), featureNames...),
		Priors:       make(map[string]float64),
		Means:        make(map[string][]float64),
		Variances:    make(map[string][]float64),
		N:            n,
	}
	for label, c := range counts {
		model.Classes = append(model.Classes, label)
		model.Priors[label] = float64(c) / float64(n)
		means := make([]float64, p)
		variances := make([]float64, p)
		for j := 0; j < p; j++ {
			means[j] = sums[label][j] / float64(c)
			v := sumSqs[label][j]/float64(c) - means[j]*means[j]
			if v < 1e-9 {
				v = 1e-9
			}
			variances[j] = v
		}
		model.Means[label] = means
		model.Variances[label] = variances
	}
	sort.Strings(model.Classes)
	return model, nil
}

// TrainNaiveBayesDistributed fits the same gaussian naive Bayes model as
// TrainNaiveBayes from per-shard partitions.
func TrainNaiveBayesDistributed(parts []*Dataset) (*NaiveBayesModel, error) {
	featureNames, _, err := partStats(parts)
	if err != nil {
		return nil, fmt.Errorf("analytics: naive bayes requires at least one row (%w)", err)
	}
	partials := make([]*NaiveBayesPartial, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		p, err := NaiveBayesPartialFromDataset(ds)
		partials[i] = p
		return err
	}); err != nil {
		return nil, err
	}
	return MergeNaiveBayesPartials(featureNames, partials)
}

// ---------------------------------------------------------------------------
// K-means: local clustering + weighted center consolidation (k-means‖ style).
// ---------------------------------------------------------------------------

// KMeansPartial is one shard's locally trained centers with their cluster
// populations — the shard's data distribution compressed to K weighted points.
type KMeansPartial struct {
	Centroids [][]float64
	Weights   []int
	N         int
}

// TrainKMeansDistributed clusters per-shard partitions: every shard runs
// k-means locally, the coordinator consolidates the K·S weighted centers with
// weighted Lloyd iterations (the k-means‖ reclustering step), and a final
// scatter assigns every row to the consolidated centers. Returns the model
// and per-partition assignments aligned with parts (nil for empty
// partitions). Results agree with single-backend k-means up to local-optima
// tolerance, not bit-exactly.
func TrainKMeansDistributed(parts []*Dataset, opts KMeansOptions) (*KMeansModel, [][]int, error) {
	featureNames, total, err := partStats(parts)
	if err != nil {
		return nil, nil, fmt.Errorf("analytics: k-means requires at least one row (%w)", err)
	}
	if opts.K <= 0 {
		return nil, nil, fmt.Errorf("analytics: k-means requires K > 0")
	}
	if opts.K > total {
		opts.K = total
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 50
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-6
	}

	// Local clustering per shard (seeds decorrelated per ordinal).
	partials := make([]*KMeansPartial, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		localOpts := opts
		localOpts.Seed = opts.Seed + int64(i)*101
		model, assignments, err := TrainKMeans(ds, localOpts)
		if err != nil {
			return err
		}
		weights := make([]int, len(model.Centroids))
		for _, c := range assignments {
			weights[c]++
		}
		partials[i] = &KMeansPartial{Centroids: model.Centroids, Weights: weights, N: ds.Rows()}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	centroids := MergeKMeansPartials(partials, opts)

	// Final scatter: assign every row to the consolidated centers.
	assignments := make([][]int, len(parts))
	inertia := make([]float64, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		assign := make([]int, ds.Rows())
		inertia[i] = assignParallel(ds, centroids, assign, opts.Parallelism)
		assignments[i] = assign
		return nil
	}); err != nil {
		return nil, nil, err
	}
	totalInertia := 0.0
	for _, v := range inertia {
		totalInertia += v
	}
	model := &KMeansModel{
		FeatureNames: append([]string(nil), featureNames...),
		Centroids:    centroids,
		Inertia:      totalInertia,
		Iterations:   opts.MaxIterations,
		N:            total,
	}
	return model, assignments, nil
}

// MergeKMeansPartials consolidates per-shard centers into K global centers by
// weighted Lloyd iterations over the union of centers (each weighted by its
// local cluster population), seeded with weighted k-means++.
func MergeKMeansPartials(partials []*KMeansPartial, opts KMeansOptions) [][]float64 {
	var points [][]float64
	var weights []float64
	for _, p := range partials {
		if p == nil {
			continue
		}
		for c, centroid := range p.Centroids {
			if p.Weights[c] == 0 {
				continue
			}
			points = append(points, centroid)
			weights = append(weights, float64(p.Weights[c]))
		}
	}
	k := opts.K
	if k > len(points) {
		k = len(points)
	}
	if k == 0 {
		return nil
	}

	// Weighted k-means++ seeding.
	r := newRNG(opts.Seed)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), points[weightedPick(weights, r)]...))
	for len(centroids) < k {
		dists := make([]float64, len(points))
		total := 0.0
		for i, pt := range points {
			_, d := nearestCentroid(pt, centroids)
			dists[i] = d * weights[i]
			total += dists[i]
		}
		if total == 0 {
			centroids = append(centroids, append([]float64(nil), points[r.Intn(len(points))]...))
			continue
		}
		centroids = append(centroids, append([]float64(nil), points[weightedPick(dists, r)]...))
	}

	// Weighted Lloyd iterations over the compressed point set.
	dims := len(points[0])
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 50
	}
	for iter := 0; iter < maxIter; iter++ {
		sums := make([][]float64, k)
		counts := make([]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, pt := range points {
			c, _ := nearestCentroid(pt, centroids)
			counts[c] += weights[i]
			for j := 0; j < dims; j++ {
				sums[c][j] += pt[j] * weights[i]
			}
		}
		movement := 0.0
		next := make([][]float64, k)
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				next[c] = centroids[c]
				continue
			}
			next[c] = make([]float64, dims)
			for j := 0; j < dims; j++ {
				next[c][j] = sums[c][j] / counts[c]
				movement += math.Abs(next[c][j] - centroids[c][j])
			}
		}
		centroids = next
		if movement < opts.Tolerance {
			break
		}
	}
	return centroids
}

// weightedPick samples an index proportionally to the given weights.
func weightedPick(weights []float64, r *rng) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if acc >= target {
			return i
		}
	}
	return len(weights) - 1
}
