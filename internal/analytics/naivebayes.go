package analytics

import (
	"fmt"
	"math"
	"sort"
)

// NaiveBayesModel is a Gaussian naive Bayes classifier over numeric features
// with categorical class labels.
type NaiveBayesModel struct {
	FeatureNames []string
	Classes      []string
	Priors       map[string]float64
	// Means[class][feature] and Variances[class][feature] parameterise the
	// per-class gaussians.
	Means     map[string][]float64
	Variances map[string][]float64
	N         int
}

// TrainNaiveBayes fits a Gaussian naive Bayes model. The dataset must carry
// categorical labels.
func TrainNaiveBayes(ds *Dataset) (*NaiveBayesModel, error) {
	n := ds.Rows()
	p := ds.Cols()
	if n == 0 {
		return nil, fmt.Errorf("analytics: naive bayes requires at least one row")
	}
	if len(ds.Labels) != n {
		return nil, fmt.Errorf("analytics: naive bayes requires a categorical target")
	}

	counts := make(map[string]int)
	sums := make(map[string][]float64)
	sumSqs := make(map[string][]float64)
	for i := 0; i < n; i++ {
		label := ds.Labels[i]
		if _, ok := counts[label]; !ok {
			sums[label] = make([]float64, p)
			sumSqs[label] = make([]float64, p)
		}
		counts[label]++
		for j := 0; j < p; j++ {
			v := ds.Features[i][j]
			sums[label][j] += v
			sumSqs[label][j] += v * v
		}
	}

	model := &NaiveBayesModel{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		Priors:       make(map[string]float64),
		Means:        make(map[string][]float64),
		Variances:    make(map[string][]float64),
		N:            n,
	}
	for label, c := range counts {
		model.Classes = append(model.Classes, label)
		model.Priors[label] = float64(c) / float64(n)
		means := make([]float64, p)
		variances := make([]float64, p)
		for j := 0; j < p; j++ {
			means[j] = sums[label][j] / float64(c)
			v := sumSqs[label][j]/float64(c) - means[j]*means[j]
			if v < 1e-9 {
				v = 1e-9 // variance smoothing
			}
			variances[j] = v
		}
		model.Means[label] = means
		model.Variances[label] = variances
	}
	sort.Strings(model.Classes)
	return model, nil
}

// PredictClass returns the most probable class and its log-probability score.
func (m *NaiveBayesModel) PredictClass(features []float64) (string, float64) {
	bestClass := ""
	bestScore := math.Inf(-1)
	for _, class := range m.Classes {
		score := math.Log(m.Priors[class])
		means := m.Means[class]
		variances := m.Variances[class]
		for j := range m.FeatureNames {
			if j >= len(features) {
				break
			}
			x := features[j]
			mu := means[j]
			va := variances[j]
			score += -0.5*math.Log(2*math.Pi*va) - (x-mu)*(x-mu)/(2*va)
		}
		if score > bestScore {
			bestScore = score
			bestClass = class
		}
	}
	return bestClass, bestScore
}

// Accuracy computes classification accuracy against a labelled dataset.
func (m *NaiveBayesModel) Accuracy(ds *Dataset) float64 {
	if ds.Rows() == 0 || len(ds.Labels) != ds.Rows() {
		return 0
	}
	correct := 0
	for i := 0; i < ds.Rows(); i++ {
		pred, _ := m.PredictClass(ds.Features[i])
		if pred == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Rows())
}
