// Package analytics implements the in-database analytics operations that run
// on the accelerator through the procedure framework (paper, Section 3): data
// preparation transformations (standardisation, imputation, binning, one-hot
// encoding, train/test splitting) and predictive algorithms (linear and
// logistic regression, k-means, gaussian naive Bayes, decision trees) together
// with their scoring counterparts. Models and derived tables are materialised
// as accelerator-only tables so that multi-stage pipelines never move data
// back into DB2.
package analytics

import (
	"fmt"
	"math"

	"idaax/internal/relalg"
	"idaax/internal/types"
)

// Dataset is a numeric feature matrix extracted from a relation, plus the
// optional target column (numeric or categorical) and a row identifier column
// used to join scores back to the input rows.
type Dataset struct {
	FeatureNames []string
	Features     [][]float64 // row-major: Features[i][j] = value of feature j in row i
	Target       []float64   // numeric target (regression / binary classification)
	Labels       []string    // categorical target (classification)
	IDs          []types.Value
}

// Rows returns the number of observations.
func (d *Dataset) Rows() int { return len(d.Features) }

// Cols returns the number of features.
func (d *Dataset) Cols() int { return len(d.FeatureNames) }

// ExtractOptions configures dataset extraction from a relation.
type ExtractOptions struct {
	// Features are the feature column names (must be numeric or coercible).
	Features []string
	// Target is the optional target column.
	Target string
	// TargetCategorical extracts the target as string labels instead of floats.
	TargetCategorical bool
	// ID is the optional identifier column carried through to scoring output.
	ID string
	// SkipIncomplete drops rows with NULL/non-numeric features instead of
	// failing the extraction.
	SkipIncomplete bool
	// AllowEmpty returns a zero-row dataset instead of an error when the
	// relation is empty or every row was skipped. Per-shard extraction sets
	// it: one shard may legitimately hold no usable rows as long as the
	// fleet-wide total does (which the merge layer verifies).
	AllowEmpty bool
}

// Extract builds a Dataset from a relation. An empty relation — and a
// relation whose every row is dropped for NULL/non-numeric values under
// SkipIncomplete — is an error: silently returning a zero-row dataset would
// surface later as a confusing training failure (or worse, zero statistics).
func Extract(rel *relalg.Relation, opts ExtractOptions) (*Dataset, error) {
	schema := rel.Schema()
	featIdx := make([]int, len(opts.Features))
	for i, f := range opts.Features {
		idx := schema.IndexOf(f)
		if idx < 0 {
			return nil, fmt.Errorf("analytics: feature column %s not found", f)
		}
		featIdx[i] = idx
	}
	targetIdx := -1
	if opts.Target != "" {
		targetIdx = schema.IndexOf(opts.Target)
		if targetIdx < 0 {
			return nil, fmt.Errorf("analytics: target column %s not found", opts.Target)
		}
	}
	idIdx := -1
	if opts.ID != "" {
		idIdx = schema.IndexOf(opts.ID)
		if idIdx < 0 {
			return nil, fmt.Errorf("analytics: id column %s not found", opts.ID)
		}
	}

	ds := &Dataset{FeatureNames: normalizeNames(opts.Features)}
	for _, row := range rel.Rows {
		features := make([]float64, len(featIdx))
		ok := true
		for j, idx := range featIdx {
			f, good := row[idx].AsFloat()
			if !good {
				ok = false
				break
			}
			features[j] = f
		}
		var targetVal float64
		var label string
		if targetIdx >= 0 {
			if opts.TargetCategorical {
				if row[targetIdx].IsNull() {
					ok = false
				} else {
					label = row[targetIdx].AsString()
				}
			} else {
				f, good := row[targetIdx].AsFloat()
				if !good {
					ok = false
				}
				targetVal = f
			}
		}
		if !ok {
			if opts.SkipIncomplete {
				continue
			}
			return nil, fmt.Errorf("analytics: row contains NULL or non-numeric values in feature/target columns")
		}
		ds.Features = append(ds.Features, features)
		if targetIdx >= 0 {
			if opts.TargetCategorical {
				ds.Labels = append(ds.Labels, label)
			} else {
				ds.Target = append(ds.Target, targetVal)
			}
		}
		if idIdx >= 0 {
			ds.IDs = append(ds.IDs, row[idIdx])
		} else {
			ds.IDs = append(ds.IDs, types.NewInt(int64(len(ds.IDs))))
		}
	}
	if !opts.AllowEmpty {
		if len(rel.Rows) == 0 {
			return nil, fmt.Errorf("analytics: input relation is empty (no rows to extract)")
		}
		if ds.Rows() == 0 {
			return nil, fmt.Errorf("analytics: all %d input rows were skipped (NULL or non-numeric values in feature/target columns)", len(rel.Rows))
		}
	}
	return ds, nil
}

func normalizeNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = types.NormalizeName(n)
	}
	return out
}

// ColumnStats summarises one numeric column.
type ColumnStats struct {
	Name   string
	Count  int
	Nulls  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// ColumnMoments are the mergeable sufficient statistics behind ColumnStats:
// what one shard contributes to a fleet-wide column summary. Moments from
// disjoint row sets merge exactly (counts and sums add, min/max widen), so a
// distributed summary equals the single-backend one.
type ColumnMoments struct {
	Name  string
	Count int
	Nulls int
	Sum   float64
	SumSq float64
	Min   float64
	Max   float64
}

// SummarizePartial computes the column moments of the named numeric columns
// over one relation (one shard's partition, or the whole table).
func SummarizePartial(rel *relalg.Relation, columns []string) ([]ColumnMoments, error) {
	schema := rel.Schema()
	out := make([]ColumnMoments, 0, len(columns))
	for _, col := range columns {
		idx := schema.IndexOf(col)
		if idx < 0 {
			return nil, fmt.Errorf("analytics: column %s not found", col)
		}
		m := ColumnMoments{Name: types.NormalizeName(col), Min: math.Inf(1), Max: math.Inf(-1)}
		for _, row := range rel.Rows {
			if row[idx].IsNull() {
				m.Nulls++
				continue
			}
			f, ok := row[idx].AsFloat()
			if !ok {
				m.Nulls++
				continue
			}
			m.Count++
			m.Sum += f
			m.SumSq += f * f
			if f < m.Min {
				m.Min = f
			}
			if f > m.Max {
				m.Max = f
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// MergeColumnMoments folds per-shard moments (all computed for the same
// column list) and finalises them into ColumnStats. A column with no numeric
// value on any shard is an error — zero statistics would silently poison
// whatever is computed from them (standardisation, binning, imputation).
func MergeColumnMoments(parts [][]ColumnMoments) ([]ColumnStats, error) {
	var merged []ColumnMoments
	var err error
	for _, part := range parts {
		if merged, err = MergeColumnMomentsInto(merged, part); err != nil {
			return nil, err
		}
	}
	return FinalizeColumnMoments(merged)
}

// MergeColumnMomentsInto folds one shard's moments into the running
// accumulator (nil acc starts the fold; nil part is a shard with nothing to
// contribute) — the streaming form of MergeColumnMoments, used where partials
// merge as they arrive instead of being collected first.
func MergeColumnMomentsInto(acc, part []ColumnMoments) ([]ColumnMoments, error) {
	if part == nil {
		return acc, nil
	}
	if acc == nil {
		acc = make([]ColumnMoments, len(part))
		copy(acc, part)
		return acc, nil
	}
	if len(part) != len(acc) {
		return nil, fmt.Errorf("analytics: mismatched column moment sets (%d vs %d columns)", len(part), len(acc))
	}
	for i := range acc {
		acc[i].Count += part[i].Count
		acc[i].Nulls += part[i].Nulls
		acc[i].Sum += part[i].Sum
		acc[i].SumSq += part[i].SumSq
		if part[i].Min < acc[i].Min {
			acc[i].Min = part[i].Min
		}
		if part[i].Max > acc[i].Max {
			acc[i].Max = part[i].Max
		}
	}
	return acc, nil
}

// FinalizeColumnMoments turns folded moments into ColumnStats (see
// MergeColumnMoments for the all-NULL column contract).
func FinalizeColumnMoments(merged []ColumnMoments) ([]ColumnStats, error) {
	if merged == nil {
		return nil, fmt.Errorf("analytics: no column moments to merge")
	}
	out := make([]ColumnStats, len(merged))
	for i, m := range merged {
		if m.Count == 0 {
			return nil, fmt.Errorf("analytics: column %s has no numeric values (empty input or all rows NULL/non-numeric)", m.Name)
		}
		st := ColumnStats{Name: m.Name, Count: m.Count, Nulls: m.Nulls, Min: m.Min, Max: m.Max}
		st.Mean = m.Sum / float64(m.Count)
		variance := m.SumSq/float64(m.Count) - st.Mean*st.Mean
		if variance < 0 {
			variance = 0
		}
		st.StdDev = math.Sqrt(variance)
		out[i] = st
	}
	return out, nil
}

// Summarize computes per-column statistics of the named numeric columns. An
// empty relation or an all-NULL column is an error (see MergeColumnMoments).
func Summarize(rel *relalg.Relation, columns []string) ([]ColumnStats, error) {
	moments, err := SummarizePartial(rel, columns)
	if err != nil {
		return nil, err
	}
	return MergeColumnMoments([][]ColumnMoments{moments})
}

// rng is a small deterministic linear congruential generator so that sampling
// and initialisation are reproducible without math/rand seeding ambiguity.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	state := uint64(seed)
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	return &rng{state: state}
}

func (r *rng) next() uint64 {
	// xorshift64*
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Intn returns a pseudo-random number in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
