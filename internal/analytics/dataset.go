// Package analytics implements the in-database analytics operations that run
// on the accelerator through the procedure framework (paper, Section 3): data
// preparation transformations (standardisation, imputation, binning, one-hot
// encoding, train/test splitting) and predictive algorithms (linear and
// logistic regression, k-means, gaussian naive Bayes, decision trees) together
// with their scoring counterparts. Models and derived tables are materialised
// as accelerator-only tables so that multi-stage pipelines never move data
// back into DB2.
package analytics

import (
	"fmt"
	"math"

	"idaax/internal/relalg"
	"idaax/internal/types"
)

// Dataset is a numeric feature matrix extracted from a relation, plus the
// optional target column (numeric or categorical) and a row identifier column
// used to join scores back to the input rows.
type Dataset struct {
	FeatureNames []string
	Features     [][]float64 // row-major: Features[i][j] = value of feature j in row i
	Target       []float64   // numeric target (regression / binary classification)
	Labels       []string    // categorical target (classification)
	IDs          []types.Value
}

// Rows returns the number of observations.
func (d *Dataset) Rows() int { return len(d.Features) }

// Cols returns the number of features.
func (d *Dataset) Cols() int { return len(d.FeatureNames) }

// ExtractOptions configures dataset extraction from a relation.
type ExtractOptions struct {
	// Features are the feature column names (must be numeric or coercible).
	Features []string
	// Target is the optional target column.
	Target string
	// TargetCategorical extracts the target as string labels instead of floats.
	TargetCategorical bool
	// ID is the optional identifier column carried through to scoring output.
	ID string
	// SkipIncomplete drops rows with NULL/non-numeric features instead of
	// failing the extraction.
	SkipIncomplete bool
}

// Extract builds a Dataset from a relation.
func Extract(rel *relalg.Relation, opts ExtractOptions) (*Dataset, error) {
	schema := rel.Schema()
	featIdx := make([]int, len(opts.Features))
	for i, f := range opts.Features {
		idx := schema.IndexOf(f)
		if idx < 0 {
			return nil, fmt.Errorf("analytics: feature column %s not found", f)
		}
		featIdx[i] = idx
	}
	targetIdx := -1
	if opts.Target != "" {
		targetIdx = schema.IndexOf(opts.Target)
		if targetIdx < 0 {
			return nil, fmt.Errorf("analytics: target column %s not found", opts.Target)
		}
	}
	idIdx := -1
	if opts.ID != "" {
		idIdx = schema.IndexOf(opts.ID)
		if idIdx < 0 {
			return nil, fmt.Errorf("analytics: id column %s not found", opts.ID)
		}
	}

	ds := &Dataset{FeatureNames: normalizeNames(opts.Features)}
	for _, row := range rel.Rows {
		features := make([]float64, len(featIdx))
		ok := true
		for j, idx := range featIdx {
			f, good := row[idx].AsFloat()
			if !good {
				ok = false
				break
			}
			features[j] = f
		}
		var targetVal float64
		var label string
		if targetIdx >= 0 {
			if opts.TargetCategorical {
				if row[targetIdx].IsNull() {
					ok = false
				} else {
					label = row[targetIdx].AsString()
				}
			} else {
				f, good := row[targetIdx].AsFloat()
				if !good {
					ok = false
				}
				targetVal = f
			}
		}
		if !ok {
			if opts.SkipIncomplete {
				continue
			}
			return nil, fmt.Errorf("analytics: row contains NULL or non-numeric values in feature/target columns")
		}
		ds.Features = append(ds.Features, features)
		if targetIdx >= 0 {
			if opts.TargetCategorical {
				ds.Labels = append(ds.Labels, label)
			} else {
				ds.Target = append(ds.Target, targetVal)
			}
		}
		if idIdx >= 0 {
			ds.IDs = append(ds.IDs, row[idIdx])
		} else {
			ds.IDs = append(ds.IDs, types.NewInt(int64(len(ds.IDs))))
		}
	}
	return ds, nil
}

func normalizeNames(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = types.NormalizeName(n)
	}
	return out
}

// ColumnStats summarises one numeric column.
type ColumnStats struct {
	Name   string
	Count  int
	Nulls  int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes per-column statistics of the named numeric columns.
func Summarize(rel *relalg.Relation, columns []string) ([]ColumnStats, error) {
	schema := rel.Schema()
	out := make([]ColumnStats, 0, len(columns))
	for _, col := range columns {
		idx := schema.IndexOf(col)
		if idx < 0 {
			return nil, fmt.Errorf("analytics: column %s not found", col)
		}
		st := ColumnStats{Name: types.NormalizeName(col), Min: math.Inf(1), Max: math.Inf(-1)}
		var sum, sumSq float64
		for _, row := range rel.Rows {
			if row[idx].IsNull() {
				st.Nulls++
				continue
			}
			f, ok := row[idx].AsFloat()
			if !ok {
				st.Nulls++
				continue
			}
			st.Count++
			sum += f
			sumSq += f * f
			if f < st.Min {
				st.Min = f
			}
			if f > st.Max {
				st.Max = f
			}
		}
		if st.Count > 0 {
			st.Mean = sum / float64(st.Count)
			variance := sumSq/float64(st.Count) - st.Mean*st.Mean
			if variance < 0 {
				variance = 0
			}
			st.StdDev = math.Sqrt(variance)
		} else {
			st.Min, st.Max = 0, 0
		}
		out = append(out, st)
	}
	return out, nil
}

// rng is a small deterministic linear congruential generator so that sampling
// and initialisation are reproducible without math/rand seeding ambiguity.
type rng struct{ state uint64 }

func newRNG(seed int64) *rng {
	state := uint64(seed)
	if state == 0 {
		state = 0x9E3779B97F4A7C15
	}
	return &rng{state: state}
}

func (r *rng) next() uint64 {
	// xorshift64*
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Intn returns a pseudo-random number in [0, n).
func (r *rng) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
