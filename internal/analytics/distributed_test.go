package analytics

import (
	"math"
	"sort"
	"testing"

	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// splitDataset deals the dataset's rows round-robin into n partitions — the
// shape per-shard extraction produces, with every partition seeing a
// different subset of the same population.
func splitDataset(ds *Dataset, n int) []*Dataset {
	parts := make([]*Dataset, n)
	for i := range parts {
		parts[i] = &Dataset{FeatureNames: ds.FeatureNames}
	}
	for i := 0; i < ds.Rows(); i++ {
		p := parts[i%n]
		p.Features = append(p.Features, ds.Features[i])
		if ds.Target != nil {
			p.Target = append(p.Target, ds.Target[i])
		}
		if ds.Labels != nil {
			p.Labels = append(p.Labels, ds.Labels[i])
		}
		if ds.IDs != nil {
			p.IDs = append(p.IDs, ds.IDs[i])
		}
	}
	return parts
}

func relClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	denom := math.Abs(want)
	if denom < 1 {
		denom = 1
	}
	if math.Abs(got-want)/denom > tol {
		t.Fatalf("%s: got %v, want %v (tolerance %v)", name, got, want, tol)
	}
}

func TestDistributedLinearRegressionMatchesSingle(t *testing.T) {
	ds := extractXY(t, syntheticRelation(2000), false)
	single, err := TrainLinearRegression(ds, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 7} {
		dist, err := TrainLinearRegressionDistributed(splitDataset(ds, shards), 1e-6)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if dist.N != single.N {
			t.Fatalf("%d shards: N = %d, want %d", shards, dist.N, single.N)
		}
		relClose(t, "intercept", dist.Intercept, single.Intercept, 1e-9)
		for j := range single.Coefficients {
			relClose(t, "coefficient", dist.Coefficients[j], single.Coefficients[j], 1e-9)
		}
		relClose(t, "RMSE", dist.RMSE, single.RMSE, 1e-6)
		relClose(t, "R2", dist.R2, single.R2, 1e-6)
	}
	// A partition list where one shard is empty still trains on the total.
	parts := splitDataset(ds, 3)
	parts = append(parts, nil, &Dataset{FeatureNames: ds.FeatureNames})
	dist, err := TrainLinearRegressionDistributed(parts, 1e-6)
	if err != nil || dist.N != single.N {
		t.Fatalf("empty shards: N=%d err=%v", dist.N, err)
	}
}

func TestDistributedLogisticRegressionMatchesSingle(t *testing.T) {
	rel := syntheticRelation(1500)
	rel2 := rel.Clone()
	rel2.Cols = append(rel2.Cols, expr.InputColumn{Name: "TARGET", Kind: types.KindInt})
	rel2.Rows = nil
	for _, r := range rel.Rows {
		v := int64(0)
		if r[4].Str == "POS" {
			v = 1
		}
		rel2.Rows = append(rel2.Rows, append(r.Clone(), types.NewInt(v)))
	}
	ds, err := Extract(rel2, ExtractOptions{Features: []string{"X1", "X2"}, Target: "TARGET"})
	if err != nil {
		t.Fatal(err)
	}
	single, err := TrainLogisticRegression(ds, 120, 0.3, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := TrainLogisticRegressionDistributed(splitDataset(ds, 4), 120, 0.3, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	relClose(t, "intercept", dist.Intercept, single.Intercept, 1e-6)
	for j := range single.Coefficients {
		relClose(t, "coefficient", dist.Coefficients[j], single.Coefficients[j], 1e-6)
	}
	relClose(t, "accuracy", dist.TrainAccuracy, single.TrainAccuracy, 1e-9)
	relClose(t, "logloss", dist.TrainLogLoss, single.TrainLogLoss, 1e-6)
}

func TestDistributedNaiveBayesMatchesSingle(t *testing.T) {
	ds := extractXY(t, syntheticRelation(1500), true)
	single, err := TrainNaiveBayes(ds)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := TrainNaiveBayesDistributed(splitDataset(ds, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Classes) != len(single.Classes) || dist.N != single.N {
		t.Fatalf("shape: classes %v vs %v, N %d vs %d", dist.Classes, single.Classes, dist.N, single.N)
	}
	for _, class := range single.Classes {
		relClose(t, "prior "+class, dist.Priors[class], single.Priors[class], 1e-12)
		for j := range single.Means[class] {
			relClose(t, "mean", dist.Means[class][j], single.Means[class][j], 1e-9)
			relClose(t, "variance", dist.Variances[class][j], single.Variances[class][j], 1e-9)
		}
	}
}

func TestDistributedSummarizeMatchesSingle(t *testing.T) {
	rel := syntheticRelation(900)
	single, err := Summarize(rel, []string{"X1", "X2", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	// Split the relation's rows over three "shards" and merge the moments.
	var parts [][]ColumnMoments
	for s := 0; s < 3; s++ {
		sub := &relalg.Relation{Cols: rel.Cols}
		for i := s; i < len(rel.Rows); i += 3 {
			sub.Rows = append(sub.Rows, rel.Rows[i])
		}
		m, err := SummarizePartial(sub, []string{"X1", "X2", "Y"})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, m)
	}
	merged, err := MergeColumnMoments(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		if merged[i].Count != single[i].Count || merged[i].Nulls != single[i].Nulls {
			t.Fatalf("column %s counts: %+v vs %+v", single[i].Name, merged[i], single[i])
		}
		relClose(t, "mean", merged[i].Mean, single[i].Mean, 1e-9)
		relClose(t, "stddev", merged[i].StdDev, single[i].StdDev, 1e-9)
		relClose(t, "min", merged[i].Min, single[i].Min, 0)
		relClose(t, "max", merged[i].Max, single[i].Max, 0)
	}
}

func TestDistributedKMeansWithinTolerance(t *testing.T) {
	// Well-separated clusters: both single and consolidated training must
	// find the same three centers.
	ds := &Dataset{FeatureNames: []string{"A", "B"}}
	r := newRNG(11)
	centers := [][]float64{{0, 0}, {20, 20}, {-20, 20}}
	for i := 0; i < 900; i++ {
		c := centers[i%3]
		ds.Features = append(ds.Features, []float64{c[0] + r.Float64(), c[1] + r.Float64()})
		ds.IDs = append(ds.IDs, types.NewInt(int64(i)))
	}
	single, _, err := TrainKMeans(ds, KMeansOptions{K: 3, MaxIterations: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dist, assignments, err := TrainKMeansDistributed(splitDataset(ds, 4), KMeansOptions{K: 3, MaxIterations: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dist.N != 900 {
		t.Fatalf("N = %d", dist.N)
	}
	rowsAssigned := 0
	for _, a := range assignments {
		rowsAssigned += len(a)
	}
	if rowsAssigned != 900 {
		t.Fatalf("assignments cover %d rows", rowsAssigned)
	}
	// Compare sorted centroid sets.
	sortCentroids := func(cs [][]float64) [][]float64 {
		out := append([][]float64(nil), cs...)
		sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
		return out
	}
	s, d := sortCentroids(single.Centroids), sortCentroids(dist.Centroids)
	for i := range s {
		for j := range s[i] {
			if math.Abs(s[i][j]-d[i][j]) > 1.0 {
				t.Fatalf("centroid %d dim %d: single %v, distributed %v", i, j, s[i], d[i])
			}
		}
	}
	relClose(t, "inertia", dist.Inertia, single.Inertia, 0.25)
}

func TestDistributedDecisionForestWithinTolerance(t *testing.T) {
	ds := extractXY(t, syntheticRelation(1600), true)
	single, err := TrainDecisionTree(ds, DecisionTreeOptions{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := TrainDecisionForestDistributed(splitDataset(ds, 4), DecisionTreeOptions{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Trees) != 4 || forest.N != 1600 {
		t.Fatalf("forest shape: %d trees, N=%d", len(forest.Trees), forest.N)
	}
	singleAcc := single.Accuracy(ds)
	forestAcc := forest.Accuracy(ds)
	if math.Abs(singleAcc-forestAcc) > 0.05 {
		t.Fatalf("accuracy gap too large: single %.4f, forest %.4f", singleAcc, forestAcc)
	}
	// Forest models round-trip through model tables like any other kind.
	rows, err := ModelRows(ModelKindForest, forest, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel := &relalg.Relation{Cols: []expr.InputColumn{
		{Name: "MODEL_KIND", Kind: types.KindString},
		{Name: "PARAM", Kind: types.KindString},
		{Name: "VALUE", Kind: types.KindFloat},
		{Name: "TEXT", Kind: types.KindString},
	}, Rows: rows}
	kind, loaded, err := LoadModel(rel)
	if err != nil || kind != ModelKindForest {
		t.Fatalf("load: %v %v", kind, err)
	}
	reloaded := loaded.(*ForestModel)
	if len(reloaded.Trees) != len(forest.Trees) {
		t.Fatalf("round trip lost trees: %d vs %d", len(reloaded.Trees), len(forest.Trees))
	}
	probe := ds.Features[7]
	if reloaded.PredictClass(probe) != forest.PredictClass(probe) {
		t.Fatal("round-tripped forest predicts differently")
	}
}

// Regression tests for the empty-input fix: Extract and Summarize must return
// clear errors, not zero-valued results, on empty or all-NULL input.
func TestExtractAndSummarizeEmptyInputErrors(t *testing.T) {
	empty := &relalg.Relation{Cols: syntheticRelation(1).Cols}
	if _, err := Extract(empty, ExtractOptions{Features: []string{"X1"}}); err == nil {
		t.Fatal("Extract on an empty relation must fail")
	}
	if _, err := Summarize(empty, []string{"X1"}); err == nil {
		t.Fatal("Summarize on an empty relation must fail")
	}

	// All-NULL feature column: every row is skipped.
	allNull := syntheticRelation(20)
	allNull.Rows = append([]types.Row(nil), allNull.Rows...)
	for i, r := range allNull.Rows {
		row := r.Clone()
		row[1] = types.Null()
		allNull.Rows[i] = row
	}
	if _, err := Extract(allNull, ExtractOptions{Features: []string{"X1"}, SkipIncomplete: true}); err == nil {
		t.Fatal("Extract with every row skipped must fail")
	}
	if _, err := Summarize(allNull, []string{"X1"}); err == nil {
		t.Fatal("Summarize on an all-NULL column must fail")
	}
	// AllowEmpty (per-shard extraction) suppresses the error.
	ds, err := Extract(empty, ExtractOptions{Features: []string{"X1"}, AllowEmpty: true})
	if err != nil || ds.Rows() != 0 {
		t.Fatalf("AllowEmpty: %v", err)
	}
	// Other columns of the relation stay summarisable.
	if _, err := Summarize(allNull, []string{"X2"}); err != nil {
		t.Fatalf("X2 should still summarise: %v", err)
	}

	// Scoring: the exported entry point errors on an unusable relation, but
	// the per-shard variant tolerates a partition whose every row is
	// incomplete (other shards may still hold scoreable rows).
	trainDS := extractXY(t, syntheticRelation(200), false)
	model, err := TrainLinearRegression(trainDS, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScoreRelation(ModelKindLinear, model, allNull, "ID"); err == nil {
		t.Fatal("ScoreRelation on an all-skipped relation must fail")
	}
	rows, _, err := scorePartition(ModelKindLinear, model, allNull, "ID", true)
	if err != nil || len(rows) != 0 {
		t.Fatalf("scorePartition(allowEmpty): %d rows, %v", len(rows), err)
	}
}
