package analytics

import (
	"encoding/json"
	"fmt"

	"idaax/internal/relalg"
	"idaax/internal/types"
)

// Model kinds stored in model tables.
const (
	ModelKindLinear       = "LINEAR_REGRESSION"
	ModelKindLogistic     = "LOGISTIC_REGRESSION"
	ModelKindKMeans       = "KMEANS"
	ModelKindNaiveBayes   = "NAIVE_BAYES"
	ModelKindDecisionTree = "DECISION_TREE"
	// ModelKindForest is the voting ensemble distributed decision-tree
	// training produces (one tree per shard).
	ModelKindForest = "DECISION_FOREST"
)

// ModelSchema is the schema of model tables. Models are persisted as
// accelerator-only tables so trained models stay inside the accelerator and
// scoring never needs DB2. The JSON payload row carries the full model; the
// metric rows make key training metrics queryable with plain SQL.
func ModelSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "MODEL_KIND", Kind: types.KindString, NotNull: true},
		types.Column{Name: "PARAM", Kind: types.KindString, NotNull: true},
		types.Column{Name: "VALUE", Kind: types.KindFloat},
		types.Column{Name: "TEXT", Kind: types.KindString},
	)
}

// modelEnvelope wraps any concrete model for JSON persistence.
type modelEnvelope struct {
	Kind         string             `json:"kind"`
	Linear       *LinearModel       `json:"linear,omitempty"`
	Logistic     *LogisticModel     `json:"logistic,omitempty"`
	KMeans       *KMeansModel       `json:"kmeans,omitempty"`
	NaiveBayes   *NaiveBayesModel   `json:"naive_bayes,omitempty"`
	DecisionTree *DecisionTreeModel `json:"decision_tree,omitempty"`
	Forest       *ForestModel       `json:"forest,omitempty"`
}

// ModelRows serialises a model into rows of ModelSchema. metrics are appended
// as additional queryable rows.
func ModelRows(kind string, model any, metrics map[string]float64) ([]types.Row, error) {
	env := modelEnvelope{Kind: kind}
	switch m := model.(type) {
	case *LinearModel:
		env.Linear = m
	case *LogisticModel:
		env.Logistic = m
	case *KMeansModel:
		env.KMeans = m
	case *NaiveBayesModel:
		env.NaiveBayes = m
	case *DecisionTreeModel:
		env.DecisionTree = m
	case *ForestModel:
		env.Forest = m
	default:
		return nil, fmt.Errorf("analytics: unsupported model type %T", model)
	}
	payload, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	rows := []types.Row{
		{types.NewString(kind), types.NewString("JSON"), types.NewFloat(0), types.NewString(string(payload))},
	}
	for name, value := range metrics {
		rows = append(rows, types.Row{types.NewString(kind), types.NewString(name), types.NewFloat(value), types.NewString("")})
	}
	return rows, nil
}

// LoadModel reconstructs a model from the rows of a model table (as returned
// by SELECT * FROM <model table>).
func LoadModel(rel *relalg.Relation) (string, any, error) {
	schema := rel.Schema()
	paramIdx := schema.IndexOf("PARAM")
	textIdx := schema.IndexOf("TEXT")
	kindIdx := schema.IndexOf("MODEL_KIND")
	if paramIdx < 0 || textIdx < 0 || kindIdx < 0 {
		return "", nil, fmt.Errorf("analytics: relation is not a model table (missing MODEL_KIND/PARAM/TEXT columns)")
	}
	for _, row := range rel.Rows {
		if row[paramIdx].AsString() != "JSON" {
			continue
		}
		var env modelEnvelope
		if err := json.Unmarshal([]byte(row[textIdx].AsString()), &env); err != nil {
			return "", nil, fmt.Errorf("analytics: corrupt model payload: %w", err)
		}
		switch env.Kind {
		case ModelKindLinear:
			return env.Kind, env.Linear, nil
		case ModelKindLogistic:
			return env.Kind, env.Logistic, nil
		case ModelKindKMeans:
			return env.Kind, env.KMeans, nil
		case ModelKindNaiveBayes:
			return env.Kind, env.NaiveBayes, nil
		case ModelKindDecisionTree:
			return env.Kind, env.DecisionTree, nil
		case ModelKindForest:
			return env.Kind, env.Forest, nil
		default:
			return "", nil, fmt.Errorf("analytics: unknown model kind %q", env.Kind)
		}
	}
	return "", nil, fmt.Errorf("analytics: model table has no JSON payload row")
}
