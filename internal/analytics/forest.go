package analytics

import (
	"fmt"
	"sort"
)

// ForestModel is a voting ensemble of CART trees — the consolidation strategy
// for distributed decision-tree training, where every shard grows a tree on
// its own partition and scoring takes the majority vote. Tree induction's
// greedy splits do not decompose into mergeable per-shard statistics the way
// regression's Gram matrices do, so the ensemble is the honest merge: it
// agrees with a single tree trained on all rows within accuracy tolerance,
// not structurally.
type ForestModel struct {
	FeatureNames []string
	Trees        []*DecisionTreeModel
	N            int
}

// TrainDecisionForestDistributed grows one tree per non-empty partition.
func TrainDecisionForestDistributed(parts []*Dataset, opts DecisionTreeOptions) (*ForestModel, error) {
	featureNames, total, err := partStats(parts)
	if err != nil {
		return nil, fmt.Errorf("analytics: decision tree requires at least one row (%w)", err)
	}
	trees := make([]*DecisionTreeModel, len(parts))
	if err := forEachPart(parts, func(i int, ds *Dataset) error {
		tree, err := TrainDecisionTree(ds, opts)
		trees[i] = tree
		return err
	}); err != nil {
		return nil, err
	}
	model := &ForestModel{FeatureNames: append([]string(nil), featureNames...), N: total}
	for _, tree := range trees {
		if tree != nil {
			model.Trees = append(model.Trees, tree)
		}
	}
	if len(model.Trees) == 0 {
		return nil, fmt.Errorf("analytics: decision forest trained no trees")
	}
	return model, nil
}

// PredictClass returns the majority vote of the ensemble; ties break to the
// lexicographically smallest class so predictions are deterministic.
func (m *ForestModel) PredictClass(features []float64) string {
	votes := make(map[string]int, len(m.Trees))
	for _, tree := range m.Trees {
		votes[tree.PredictClass(features)]++
	}
	best := ""
	bestCount := -1
	classes := make([]string, 0, len(votes))
	for c := range votes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		if votes[c] > bestCount {
			bestCount = votes[c]
			best = c
		}
	}
	return best
}

// Accuracy computes classification accuracy against a labelled dataset.
func (m *ForestModel) Accuracy(ds *Dataset) float64 {
	if ds.Rows() == 0 || len(ds.Labels) != ds.Rows() {
		return 0
	}
	correct := 0
	for i := 0; i < ds.Rows(); i++ {
		if m.PredictClass(ds.Features[i]) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Rows())
}

// Nodes returns the total node count over all trees.
func (m *ForestModel) Nodes() int {
	total := 0
	for _, tree := range m.Trees {
		total += tree.Nodes
	}
	return total
}

// Depth returns the deepest tree's depth.
func (m *ForestModel) Depth() int {
	max := 0
	for _, tree := range m.Trees {
		if d := tree.Depth(); d > max {
			max = d
		}
	}
	return max
}
