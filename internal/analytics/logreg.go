package analytics

import (
	"fmt"
	"math"
)

// LogisticModel is a binary logistic regression model trained with batch
// gradient descent.
type LogisticModel struct {
	FeatureNames []string
	Intercept    float64
	Coefficients []float64
	Iterations   int
	LearningRate float64
	// TrainAccuracy and TrainLogLoss are training-set metrics.
	TrainAccuracy float64
	TrainLogLoss  float64
	N             int
}

// TrainLogisticRegression fits a binary logistic regression. The target must
// be 0/1 (values > 0.5 are treated as the positive class). Features are
// standardised internally for stable gradients and the coefficients are
// transformed back to the original scale.
func TrainLogisticRegression(ds *Dataset, iterations int, learningRate, l2 float64) (*LogisticModel, error) {
	n := ds.Rows()
	p := ds.Cols()
	if n == 0 {
		return nil, fmt.Errorf("analytics: logistic regression requires at least one row")
	}
	if len(ds.Target) != n {
		return nil, fmt.Errorf("analytics: logistic regression requires a numeric 0/1 target")
	}
	if iterations <= 0 {
		iterations = 200
	}
	if learningRate <= 0 {
		learningRate = 0.1
	}
	if l2 < 0 {
		l2 = 0
	}

	// Standardise features.
	means := make([]float64, p)
	stds := make([]float64, p)
	for j := 0; j < p; j++ {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := ds.Features[i][j]
			sum += v
			sumSq += v * v
		}
		means[j] = sum / float64(n)
		variance := sumSq/float64(n) - means[j]*means[j]
		if variance < 1e-12 {
			variance = 1
		}
		stds[j] = math.Sqrt(variance)
	}
	std := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		std[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			std[i][j] = (ds.Features[i][j] - means[j]) / stds[j]
		}
		if ds.Target[i] > 0.5 {
			y[i] = 1
		}
	}

	w := make([]float64, p)
	b := 0.0
	for iter := 0; iter < iterations; iter++ {
		gradW := make([]float64, p)
		gradB := 0.0
		for i := 0; i < n; i++ {
			z := b
			for j := 0; j < p; j++ {
				z += w[j] * std[i][j]
			}
			pred := sigmoid(z)
			err := pred - y[i]
			for j := 0; j < p; j++ {
				gradW[j] += err * std[i][j]
			}
			gradB += err
		}
		scale := learningRate / float64(n)
		for j := 0; j < p; j++ {
			w[j] -= scale * (gradW[j] + l2*w[j])
		}
		b -= scale * gradB
	}

	// Transform coefficients back to the original feature scale.
	coeffs := make([]float64, p)
	intercept := b
	for j := 0; j < p; j++ {
		coeffs[j] = w[j] / stds[j]
		intercept -= w[j] * means[j] / stds[j]
	}

	model := &LogisticModel{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		Intercept:    intercept,
		Coefficients: coeffs,
		Iterations:   iterations,
		LearningRate: learningRate,
		N:            n,
	}

	// Training metrics.
	correct := 0
	logLoss := 0.0
	for i := 0; i < n; i++ {
		prob := model.PredictProbability(ds.Features[i])
		if (prob >= 0.5) == (y[i] == 1) {
			correct++
		}
		eps := 1e-12
		logLoss += -(y[i]*math.Log(prob+eps) + (1-y[i])*math.Log(1-prob+eps))
	}
	model.TrainAccuracy = float64(correct) / float64(n)
	model.TrainLogLoss = logLoss / float64(n)
	return model, nil
}

// PredictProbability returns P(class = 1 | features).
func (m *LogisticModel) PredictProbability(features []float64) float64 {
	z := m.Intercept
	for j, c := range m.Coefficients {
		if j < len(features) {
			z += c * features[j]
		}
	}
	return sigmoid(z)
}

// PredictClass returns the 0/1 class using a 0.5 threshold.
func (m *LogisticModel) PredictClass(features []float64) int {
	if m.PredictProbability(features) >= 0.5 {
		return 1
	}
	return 0
}

func sigmoid(z float64) float64 {
	switch {
	case z > 35:
		return 1
	case z < -35:
		return 0
	default:
		return 1 / (1 + math.Exp(-z))
	}
}
