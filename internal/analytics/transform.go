package analytics

import (
	"fmt"
	"math"
	"sort"

	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// Standardize z-score-normalises the named numeric columns of a relation and
// returns a new relation with the same shape (non-selected columns pass
// through unchanged). Columns with zero variance become 0.
func Standardize(rel *relalg.Relation, columns []string) (*relalg.Relation, error) {
	stats, err := Summarize(rel, columns)
	if err != nil {
		return nil, err
	}
	schema := rel.Schema()
	colIdx := make([]int, len(columns))
	for i, c := range columns {
		colIdx[i] = schema.IndexOf(c)
	}
	out := rel.Clone()
	out.Rows = make([]types.Row, len(rel.Rows))
	for ri, row := range rel.Rows {
		newRow := row.Clone()
		for i, idx := range colIdx {
			if newRow[idx].IsNull() {
				continue
			}
			f, ok := newRow[idx].AsFloat()
			if !ok {
				continue
			}
			st := stats[i]
			if st.StdDev > 0 {
				newRow[idx] = types.NewFloat((f - st.Mean) / st.StdDev)
			} else {
				newRow[idx] = types.NewFloat(0)
			}
		}
		out.Rows[ri] = newRow
	}
	// Standardised columns are floating point even if the input was integral.
	for _, idx := range colIdx {
		out.Cols[idx].Kind = types.KindFloat
	}
	return out, nil
}

// ImputeStrategy selects how missing values are replaced.
type ImputeStrategy string

const (
	// ImputeMean replaces NULLs with the column mean.
	ImputeMean ImputeStrategy = "MEAN"
	// ImputeMedian replaces NULLs with the column median.
	ImputeMedian ImputeStrategy = "MEDIAN"
	// ImputeZero replaces NULLs with zero.
	ImputeZero ImputeStrategy = "ZERO"
)

// Impute replaces NULLs in the named numeric columns.
func Impute(rel *relalg.Relation, columns []string, strategy ImputeStrategy) (*relalg.Relation, int, error) {
	schema := rel.Schema()
	replacements := make(map[int]float64)
	for _, c := range columns {
		idx := schema.IndexOf(c)
		if idx < 0 {
			return nil, 0, fmt.Errorf("analytics: column %s not found", c)
		}
		var value float64
		switch strategy {
		case ImputeZero:
			value = 0
		case ImputeMedian:
			var vals []float64
			for _, row := range rel.Rows {
				if f, ok := row[idx].AsFloat(); ok && !row[idx].IsNull() {
					vals = append(vals, f)
				}
			}
			sort.Float64s(vals)
			if len(vals) > 0 {
				value = vals[len(vals)/2]
			}
		default: // mean
			stats, err := Summarize(rel, []string{c})
			if err != nil {
				return nil, 0, err
			}
			value = stats[0].Mean
		}
		replacements[idx] = value
	}

	out := rel.Clone()
	out.Rows = make([]types.Row, len(rel.Rows))
	replaced := 0
	for ri, row := range rel.Rows {
		newRow := row.Clone()
		for idx, value := range replacements {
			if newRow[idx].IsNull() {
				newRow[idx] = types.NewFloat(value)
				replaced++
			}
		}
		out.Rows[ri] = newRow
	}
	return out, replaced, nil
}

// Bin performs equal-width binning of a numeric column, appending a new
// integer column "<col>_BIN" with values 0..bins-1.
func Bin(rel *relalg.Relation, column string, bins int) (*relalg.Relation, error) {
	if bins < 2 {
		return nil, fmt.Errorf("analytics: binning requires at least 2 bins")
	}
	schema := rel.Schema()
	idx := schema.IndexOf(column)
	if idx < 0 {
		return nil, fmt.Errorf("analytics: column %s not found", column)
	}
	stats, err := Summarize(rel, []string{column})
	if err != nil {
		return nil, err
	}
	min, max := stats[0].Min, stats[0].Max
	width := (max - min) / float64(bins)
	if width <= 0 {
		width = 1
	}

	out := rel.Clone()
	out.Cols = append(out.Cols, relColumn(types.NormalizeName(column)+"_BIN", types.KindInt))
	out.Rows = make([]types.Row, len(rel.Rows))
	for ri, row := range rel.Rows {
		newRow := append(row.Clone(), types.Null())
		if f, ok := row[idx].AsFloat(); ok && !row[idx].IsNull() {
			bin := int64(math.Floor((f - min) / width))
			if bin >= int64(bins) {
				bin = int64(bins) - 1
			}
			if bin < 0 {
				bin = 0
			}
			newRow[len(newRow)-1] = types.NewInt(bin)
		}
		out.Rows[ri] = newRow
	}
	return out, nil
}

// OneHot appends one 0/1 integer column per distinct value of a categorical
// column ("<col>_<value>"). The number of distinct values is capped to avoid
// exploding schemas.
func OneHot(rel *relalg.Relation, column string, maxCategories int) (*relalg.Relation, []string, error) {
	if maxCategories <= 0 {
		maxCategories = 32
	}
	schema := rel.Schema()
	idx := schema.IndexOf(column)
	if idx < 0 {
		return nil, nil, fmt.Errorf("analytics: column %s not found", column)
	}
	// Collect distinct values in first-seen order.
	var categories []string
	seen := map[string]bool{}
	for _, row := range rel.Rows {
		if row[idx].IsNull() {
			continue
		}
		v := row[idx].AsString()
		if !seen[v] {
			seen[v] = true
			categories = append(categories, v)
			if len(categories) > maxCategories {
				return nil, nil, fmt.Errorf("analytics: column %s has more than %d distinct values", column, maxCategories)
			}
		}
	}
	sort.Strings(categories)

	out := rel.Clone()
	newCols := make([]string, len(categories))
	for i, cat := range categories {
		name := types.NormalizeName(column) + "_" + sanitizeIdent(cat)
		newCols[i] = name
		out.Cols = append(out.Cols, relColumn(name, types.KindInt))
	}
	out.Rows = make([]types.Row, len(rel.Rows))
	for ri, row := range rel.Rows {
		newRow := row.Clone()
		val := ""
		if !row[idx].IsNull() {
			val = row[idx].AsString()
		}
		for _, cat := range categories {
			if val == cat {
				newRow = append(newRow, types.NewInt(1))
			} else {
				newRow = append(newRow, types.NewInt(0))
			}
		}
		out.Rows[ri] = newRow
	}
	return out, newCols, nil
}

// SplitData partitions a relation into train and test subsets with a
// deterministic pseudo-random assignment.
func SplitData(rel *relalg.Relation, trainFraction float64, seed int64) (train, test *relalg.Relation) {
	if trainFraction <= 0 || trainFraction >= 1 {
		trainFraction = 0.8
	}
	r := newRNG(seed)
	train = &relalg.Relation{Cols: rel.Cols}
	test = &relalg.Relation{Cols: rel.Cols}
	for _, row := range rel.Rows {
		if r.Float64() < trainFraction {
			train.Rows = append(train.Rows, row)
		} else {
			test.Rows = append(test.Rows, row)
		}
	}
	return train, test
}

func relColumn(name string, kind types.Kind) expr.InputColumn {
	return expr.InputColumn{Name: name, Kind: kind}
}

func sanitizeIdent(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range types.NormalizeName(s) {
		if (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' {
			out = append(out, r)
		} else {
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "X"
	}
	return string(out)
}
