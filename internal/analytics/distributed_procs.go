package analytics

import (
	"fmt"

	"idaax/internal/accel"
	"idaax/internal/core"
	"idaax/internal/obs"
	"idaax/internal/planner"
	"idaax/internal/types"
)

// This file routes the IDAX.* procedures through the shard-local analytics
// seam. When a CALL's input table lives on a sharded backend, training and
// scoring scatter over the members that own the rows (accel.Backend.
// CallShardLocal) and only partials — sufficient statistics, local models,
// completion counts — return to the coordinator for merging. Scoring writes
// its predictions shard-local, next to the partition they were computed from.

// scatterTarget decides whether a procedure on the given input table should
// run shard-local: the table's backend must partition it over at least two
// members and shard-local analytics must not be disabled (bench A/B switch).
func scatterTarget(ctx *core.ProcContext, table string) (accel.Backend, string, bool) {
	if ctx.BackendFor == nil {
		return nil, "", false
	}
	be, name := ctx.BackendFor(table)
	if be == nil {
		return nil, "", false
	}
	ms, ok := be.(accel.MultiShard)
	if !ok || ms.ShardCount() < 2 || !ms.ShardLocalAnalytics() {
		return nil, "", false
	}
	if !be.HasTable(types.NormalizeName(table)) {
		return nil, "", false
	}
	return be, name, true
}

// scatterCall runs one shard-local scatter through the traced analytics seam,
// nesting the per-shard partition spans under the calling statement's trace
// (a no-op when the CALL is untraced).
func scatterCall(ctx *core.ProcContext, be accel.Backend, table, proc string, fn accel.ShardLocalFunc) ([]any, error) {
	sp := ctx.Span.Child("analytics")
	sp.Label(obs.LabelTable, types.NormalizeName(table))
	if proc != "" {
		sp.Label(obs.LabelMode, types.NormalizeName(proc))
	}
	partials, err := be.CallShardLocalTraced(ctx.TxnID, table, proc, sp, fn)
	sp.Finish()
	return partials, err
}

// scatterStream is scatterCall through the streaming seam: merge consumes
// each shard's partial in ordinal order as it completes, so single-pass
// reductions (moment merges, completion counts) never hold one partial per
// shard at the coordinator.
func scatterStream(ctx *core.ProcContext, be accel.Backend, table, proc string, fn accel.ShardLocalFunc, merge func(ordinal int, partial any) error) error {
	sp := ctx.Span.Child("analytics")
	sp.Label(obs.LabelTable, types.NormalizeName(table))
	if proc != "" {
		sp.Label(obs.LabelMode, types.NormalizeName(proc))
	}
	err := be.CallShardLocalStream(ctx.TxnID, table, proc, sp, fn, merge)
	sp.Finish()
	return err
}

// plannerInfo asks the backend's planner catalog about a table — the same
// placement metadata (distribution key, member set, migration state) the
// query planner consults.
func plannerInfo(be accel.Backend, table string) (planner.TableInfo, bool) {
	prov, ok := be.(interface{ PlannerCatalog() planner.Catalog })
	if !ok {
		return planner.TableInfo{}, false
	}
	return prov.PlannerCatalog()(types.NormalizeName(table))
}

// scatterExtract runs one shard-local scatter that reduces every partition of
// the input table to a Dataset. Partitions with no usable rows come back nil;
// at least one row fleet-wide is required.
func scatterExtract(ctx *core.ProcContext, be accel.Backend, table, proc string, opts ExtractOptions) ([]*Dataset, int, error) {
	if err := ctx.CheckSelect(table); err != nil {
		return nil, 0, err
	}
	opts.AllowEmpty = true
	partials, err := scatterCall(ctx, be, table, proc, func(p *accel.ShardPartition) (any, error) {
		if len(p.Rows.Rows) == 0 {
			return (*Dataset)(nil), nil
		}
		return Extract(p.Rows, opts)
	})
	if err != nil {
		return nil, 0, err
	}
	parts := make([]*Dataset, len(partials))
	total := 0
	for i, p := range partials {
		if ds, ok := p.(*Dataset); ok && ds != nil && ds.Rows() > 0 {
			parts[i] = ds
			total += ds.Rows()
		}
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("analytics: table %s has no usable rows on any shard", types.NormalizeName(table))
	}
	return parts, total, nil
}

// shardsUsed counts the partitions that contributed rows.
func shardsUsed(parts []*Dataset) int {
	n := 0
	for _, ds := range parts {
		if ds != nil && ds.Rows() > 0 {
			n++
		}
	}
	return n
}

// classifierCorrect scatters an accuracy computation: correct predictions and
// labelled rows summed over the partitions.
func classifierCorrect(predict func([]float64) string, parts []*Dataset) (correct, total int) {
	corrects := make([]int, len(parts))
	totals := make([]int, len(parts))
	_ = forEachPart(parts, func(i int, ds *Dataset) error {
		if len(ds.Labels) != ds.Rows() {
			return nil
		}
		totals[i] = ds.Rows()
		for r := 0; r < ds.Rows(); r++ {
			if predict(ds.Features[r]) == ds.Labels[r] {
				corrects[i]++
			}
		}
		return nil
	})
	for i := range parts {
		correct += corrects[i]
		total += totals[i]
	}
	return correct, total
}

// materializeTarget drops/creates the output AOT like materializeRows, but on
// an explicit backend (so shard-local writes find the table on every member)
// and with an optional distribution key.
func materializeTarget(ctx *core.ProcContext, outTable, accName string, schema types.Schema, distKey string) (string, error) {
	outTable = types.NormalizeName(outTable)
	if ctx.Catalog.HasTable(outTable) {
		if !ctx.AOTs.IsAOT(outTable) {
			return "", fmt.Errorf("analytics: output table %s exists and is not accelerator-only", outTable)
		}
		if err := ctx.AOTs.Drop(outTable); err != nil {
			return "", err
		}
	}
	if err := ctx.AOTs.CreateFromSchema(ctx.User, outTable, accName, schema, distKey); err != nil {
		return "", err
	}
	return outTable, nil
}

// ---------------------------------------------------------------------------
// Distributed training
// ---------------------------------------------------------------------------

func distLinearRegression(ctx *core.ProcContext, be accel.Backend, table, target, features, modelTable string, ridge float64) (*core.ProcResult, error) {
	parts, _, err := scatterExtract(ctx, be, table, "IDAX.LINEAR_REGRESSION",
		ExtractOptions{Features: core.SplitList(features), Target: target, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainLinearRegressionDistributed(parts, ridge)
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{"RMSE": model.RMSE, "R2": model.R2, "N": float64(model.N), "SHARDS": float64(shardsUsed(parts))}
	if err := saveModel(ctx, modelTable, ModelKindLinear, model, metrics); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("linear regression trained shard-local on %d rows across %d shards (RMSE=%.4f R2=%.4f)", model.N, shardsUsed(parts), model.RMSE, model.R2),
	}, nil
}

func distLogisticRegression(ctx *core.ProcContext, be accel.Backend, table, target, features, modelTable string, iterations int, learningRate float64) (*core.ProcResult, error) {
	parts, _, err := scatterExtract(ctx, be, table, "IDAX.LOGISTIC_REGRESSION",
		ExtractOptions{Features: core.SplitList(features), Target: target, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainLogisticRegressionDistributed(parts, iterations, learningRate, 1e-4)
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{"ACCURACY": model.TrainAccuracy, "LOGLOSS": model.TrainLogLoss, "N": float64(model.N), "SHARDS": float64(shardsUsed(parts))}
	if err := saveModel(ctx, modelTable, ModelKindLogistic, model, metrics); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("logistic regression trained shard-local on %d rows across %d shards (accuracy=%.4f)", model.N, shardsUsed(parts), model.TrainAccuracy),
	}, nil
}

func distNaiveBayes(ctx *core.ProcContext, be accel.Backend, table, target, features, modelTable string) (*core.ProcResult, error) {
	parts, _, err := scatterExtract(ctx, be, table, "IDAX.NAIVE_BAYES",
		ExtractOptions{Features: core.SplitList(features), Target: target, TargetCategorical: true, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainNaiveBayesDistributed(parts)
	if err != nil {
		return nil, err
	}
	correct, labelled := classifierCorrect(func(f []float64) string { c, _ := model.PredictClass(f); return c }, parts)
	acc := 0.0
	if labelled > 0 {
		acc = float64(correct) / float64(labelled)
	}
	metrics := map[string]float64{"ACCURACY": acc, "N": float64(model.N), "CLASSES": float64(len(model.Classes)), "SHARDS": float64(shardsUsed(parts))}
	if err := saveModel(ctx, modelTable, ModelKindNaiveBayes, model, metrics); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("naive bayes trained shard-local on %d rows across %d shards, %d classes (accuracy=%.4f)", model.N, shardsUsed(parts), len(model.Classes), acc),
	}, nil
}

func distDecisionTree(ctx *core.ProcContext, be accel.Backend, table, target, features, modelTable string, maxDepth int) (*core.ProcResult, error) {
	parts, _, err := scatterExtract(ctx, be, table, "IDAX.DECISION_TREE",
		ExtractOptions{Features: core.SplitList(features), Target: target, TargetCategorical: true, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainDecisionForestDistributed(parts, DecisionTreeOptions{MaxDepth: maxDepth})
	if err != nil {
		return nil, err
	}
	correct, labelled := classifierCorrect(model.PredictClass, parts)
	acc := 0.0
	if labelled > 0 {
		acc = float64(correct) / float64(labelled)
	}
	metrics := map[string]float64{"ACCURACY": acc, "NODES": float64(model.Nodes()), "DEPTH": float64(model.Depth()), "N": float64(model.N), "TREES": float64(len(model.Trees)), "SHARDS": float64(shardsUsed(parts))}
	if err := saveModel(ctx, modelTable, ModelKindForest, model, metrics); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("decision forest of %d shard-local trees, %d nodes (depth %d, accuracy=%.4f)", len(model.Trees), model.Nodes(), model.Depth(), acc),
	}, nil
}

func distKMeans(ctx *core.ProcContext, be accel.Backend, table, features string, k int, modelTable, assignTable, idColumn string, iterations int, seed int64) (*core.ProcResult, error) {
	parts, _, err := scatterExtract(ctx, be, table, "IDAX.KMEANS",
		ExtractOptions{Features: core.SplitList(features), ID: idColumn, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, assignments, err := TrainKMeansDistributed(parts, KMeansOptions{K: k, MaxIterations: iterations, Seed: seed, Parallelism: be.Slices()})
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{"INERTIA": model.Inertia, "ITERATIONS": float64(model.Iterations), "K": float64(k), "N": float64(model.N), "SHARDS": float64(shardsUsed(parts))}
	if err := saveModel(ctx, modelTable, ModelKindKMeans, model, metrics); err != nil {
		return nil, err
	}
	outputs := []string{types.NormalizeName(modelTable)}
	if assignTable != "" {
		n, err := writeAssignmentsShardLocal(ctx, be, assignTable, parts, assignments, idColumn == "")
		if err != nil {
			return nil, err
		}
		if n != model.N {
			return nil, fmt.Errorf("analytics: wrote %d of %d cluster assignments", n, model.N)
		}
		outputs = append(outputs, types.NormalizeName(assignTable))
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: outputs,
		Message:      fmt.Sprintf("k-means (k=%d) trained shard-local across %d shards (consolidated centers, inertia %.2f)", k, shardsUsed(parts), model.Inertia),
	}, nil
}

// writeAssignmentsShardLocal materialises per-shard cluster assignments next
// to the partition they were computed from: the assignment AOT is created on
// the input table's backend and each shard's batch is written through
// WriteLocal. When the CALL gave no id column (syntheticIDs), each partition's
// IDs are local row numbers that would collide across shards, so they are
// renumbered to a dense global 0..N-1 like the single-backend path produces.
// Batches for shard ordinals that disappeared between the two scatters (a
// concurrent membership change) fall back to the routed insert path, so no
// assignment is ever dropped.
func writeAssignmentsShardLocal(ctx *core.ProcContext, be accel.Backend, assignTable string, parts []*Dataset, assignments [][]int, syntheticIDs bool) (int, error) {
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindString},
		types.Column{Name: "CLUSTER", Kind: types.KindInt},
	)
	outTable, err := materializeTarget(ctx, assignTable, be.Name(), schema, "")
	if err != nil {
		return 0, err
	}
	batches := make([][]types.Row, len(parts))
	base := 0
	for i, ds := range parts {
		if ds == nil || assignments[i] == nil {
			continue
		}
		rows := make([]types.Row, ds.Rows())
		for r, c := range assignments[i] {
			id := ds.IDs[r].AsString()
			if syntheticIDs {
				id = fmt.Sprint(base + r)
			}
			rows[r] = types.Row{types.NewString(id), types.NewInt(int64(c))}
		}
		base += ds.Rows()
		batches[i] = rows
	}
	// proc is empty: this is the second scatter of one CALL IDAX.KMEANS, and
	// the per-procedure counters count CALLs, not scatter operations.
	written := 0
	covered := 0
	partials, err := scatterCall(ctx, be, outTable, "", func(p *accel.ShardPartition) (any, error) {
		if p.Ordinal >= len(batches) || len(batches[p.Ordinal]) == 0 {
			return 0, nil
		}
		return p.WriteLocal(outTable, batches[p.Ordinal])
	})
	if err != nil {
		return 0, err
	}
	covered = len(partials)
	for _, p := range partials {
		if n, ok := p.(int); ok {
			written += n
		}
	}
	for i := covered; i < len(batches); i++ {
		if len(batches[i]) == 0 {
			continue
		}
		n, err := ctx.InsertRows(outTable, batches[i])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ---------------------------------------------------------------------------
// Distributed summary and scoring
// ---------------------------------------------------------------------------

func distSummary(ctx *core.ProcContext, be accel.Backend, table, cols string) (*core.ProcResult, error) {
	if err := ctx.CheckSelect(table); err != nil {
		return nil, err
	}
	columns := core.SplitList(cols)
	// Streaming merge: each shard's moment set folds into the accumulator as
	// it arrives, so the coordinator never holds one moment slice per shard.
	var acc []ColumnMoments
	shards := 0
	err := scatterStream(ctx, be, table, "IDAX.SUMMARY", func(p *accel.ShardPartition) (any, error) {
		return SummarizePartial(p.Rows, columns)
	}, func(_ int, partial any) error {
		shards++
		m, ok := partial.([]ColumnMoments)
		if !ok {
			return nil
		}
		var err error
		acc, err = MergeColumnMomentsInto(acc, m)
		return err
	})
	if err != nil {
		return nil, err
	}
	stats, err := FinalizeColumnMoments(acc)
	if err != nil {
		return nil, err
	}
	rows := 0
	for _, st := range stats {
		if st.Count+st.Nulls > rows {
			rows = st.Count + st.Nulls
		}
	}
	return &core.ProcResult{
		Relation: statsRelation(stats),
		Message:  fmt.Sprintf("summarised %d columns over %d rows across %d shards (moment merge)", len(stats), rows, shards),
	}, nil
}

func distPredict(ctx *core.ProcContext, be accel.Backend, kind string, model any, table, idColumn, outTable string) (*core.ProcResult, error) {
	if err := ctx.CheckSelect(table); err != nil {
		return nil, err
	}
	idColumn = types.NormalizeName(idColumn)

	// Output schema and placement. When the id column is the input's hash
	// distribution key (and the input is not mid-migration), the prediction
	// table inherits the key: every score is written on the shard that owns
	// its input row, and the identical member set places equal key values
	// identically — so scores stay co-located with their inputs and joins
	// between them run shard-local.
	idKind := types.KindString
	outDistKey := ""
	if info, ok := plannerInfo(be, table); ok {
		if idx := info.Schema.IndexOf(idColumn); idx >= 0 {
			idKind = info.Schema.Columns[idx].Kind
		}
		if !info.Migrating && info.DistKey != "" && info.DistKey == idColumn {
			outDistKey = "ID"
		}
	}
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: idKind},
		types.Column{Name: "PREDICTION", Kind: types.KindFloat},
		types.Column{Name: "LABEL", Kind: types.KindString},
	)

	score := func(out string) (int, error) {
		// Streaming merge: the partial is just the count of rows a shard wrote
		// locally, summed as each shard finishes.
		total := 0
		err := scatterStream(ctx, be, table, "IDAX.PREDICT", func(p *accel.ShardPartition) (any, error) {
			if len(p.Rows.Rows) == 0 {
				return 0, nil
			}
			// A partition whose every row is incomplete is allowed — other
			// shards may still hold scoreable rows.
			rows, _, err := scorePartition(kind, model, p.Rows, idColumn, true)
			if err != nil {
				return nil, err
			}
			if len(rows) == 0 {
				return 0, nil
			}
			return p.WriteLocal(out, rows)
		}, func(_ int, partial any) error {
			if n, ok := partial.(int); ok {
				total += n
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return total, nil
	}

	// The Migrating check above ran before the scatter takes the migration
	// fence, so a rebalance starting in between could leave a shard-local
	// write on a shard that does not own its key under the fresh prediction
	// table's placement map — and a key-distributed table is pruned by that
	// map. Detect the race after the fact (fleet epoch advanced or the input
	// went migrating) and redo the scoring into a round-robin table, whose
	// placement is arbitrary by construction.
	type epocher interface{ Epoch() int64 }
	epochBefore := int64(-1)
	if ep, ok := be.(epocher); ok && outDistKey != "" {
		epochBefore = ep.Epoch()
	}
	out, err := materializeTarget(ctx, outTable, be.Name(), schema, outDistKey)
	if err != nil {
		return nil, err
	}
	total, err := score(out)
	if err != nil {
		return nil, err
	}
	if outDistKey != "" {
		stable := true
		if ep, ok := be.(epocher); ok && ep.Epoch() != epochBefore {
			stable = false
		}
		if info, ok := plannerInfo(be, table); !ok || info.Migrating {
			stable = false
		}
		if !stable {
			outDistKey = ""
			out, err = materializeTarget(ctx, outTable, be.Name(), schema, "")
			if err != nil {
				return nil, err
			}
			total, err = score(out)
			if err != nil {
				return nil, err
			}
		}
	}
	colocated := ""
	if outDistKey != "" {
		colocated = ", co-located with input by " + idColumn
	}
	shards := 0
	if ms, ok := be.(accel.MultiShard); ok {
		shards = ms.ShardCount()
	}
	return &core.ProcResult{
		RowsAffected: total,
		OutputTables: []string{out},
		Message:      fmt.Sprintf("scored %d rows shard-local across %d shards with %s model into %s (predictions written on their shard%s)", total, shards, kind, out, colocated),
	}, nil
}
