package analytics

import (
	"fmt"
	"math"
)

// LinearModel is a least-squares linear regression model.
type LinearModel struct {
	FeatureNames []string
	Intercept    float64
	Coefficients []float64
	// Ridge is the L2 regularisation applied during training (also stabilises
	// the normal equations numerically).
	Ridge float64
	// RMSE and R2 are training-set goodness-of-fit metrics.
	RMSE float64
	R2   float64
	N    int
}

// TrainLinearRegression fits a linear regression with the normal equations
// (X'X + ridge*I) beta = X'y solved by Gaussian elimination with partial
// pivoting. It is exact for the modest feature counts analytics pipelines use.
func TrainLinearRegression(ds *Dataset, ridge float64) (*LinearModel, error) {
	n := ds.Rows()
	p := ds.Cols()
	if n == 0 {
		return nil, fmt.Errorf("analytics: linear regression requires at least one row")
	}
	if len(ds.Target) != n {
		return nil, fmt.Errorf("analytics: linear regression requires a numeric target")
	}
	if ridge < 0 {
		ridge = 0
	}
	d := p + 1 // intercept term

	// Build the normal equations.
	xtx := make([][]float64, d)
	for i := range xtx {
		xtx[i] = make([]float64, d)
	}
	xty := make([]float64, d)
	xrow := make([]float64, d)
	for i := 0; i < n; i++ {
		xrow[0] = 1
		copy(xrow[1:], ds.Features[i])
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				xtx[a][b] += xrow[a] * xrow[b]
			}
			xty[a] += xrow[a] * ds.Target[i]
		}
	}
	for a := 1; a < d; a++ {
		xtx[a][a] += ridge
	}

	beta, err := solveLinearSystem(xtx, xty)
	if err != nil {
		return nil, err
	}

	model := &LinearModel{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		Intercept:    beta[0],
		Coefficients: beta[1:],
		Ridge:        ridge,
		N:            n,
	}

	// Training metrics.
	var ssRes, ssTot, mean float64
	for _, y := range ds.Target {
		mean += y
	}
	mean /= float64(n)
	for i := 0; i < n; i++ {
		pred := model.Predict(ds.Features[i])
		diff := ds.Target[i] - pred
		ssRes += diff * diff
		dt := ds.Target[i] - mean
		ssTot += dt * dt
	}
	model.RMSE = math.Sqrt(ssRes / float64(n))
	if ssTot > 0 {
		model.R2 = 1 - ssRes/ssTot
	}
	return model, nil
}

// Predict returns the model's prediction for one feature vector.
func (m *LinearModel) Predict(features []float64) float64 {
	y := m.Intercept
	for j, c := range m.Coefficients {
		if j < len(features) {
			y += c * features[j]
		}
	}
	return y
}

// solveLinearSystem solves A x = b with Gaussian elimination and partial
// pivoting. A is modified in place.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("analytics: singular matrix in linear solve (column %d); add regularisation or remove collinear features", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		x[col], x[pivot] = x[pivot], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			factor := a[r][col] / a[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= factor * a[col][c]
			}
			x[r] -= factor * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= a[col][c] * x[c]
		}
		x[col] = sum / a[col][col]
	}
	return x, nil
}
