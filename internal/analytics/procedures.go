package analytics

import (
	"fmt"
	"strings"

	"idaax/internal/core"
	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// RegisterAll registers the IDAX.* analytics procedures with the framework.
// When public is false, only SYSADM (and explicit grantees via
// SYSPROC.ACCEL_GRANT_PROCEDURE) may call them — the data-governance setting
// the paper argues for.
func RegisterAll(f *core.Framework, public bool) {
	reg := func(name, desc string, fn func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error)) {
		f.MustRegister(&core.FuncProcedure{ProcName: name, Desc: desc, Fn: fn}, public)
	}

	reg("IDAX.SUMMARY", "Column statistics: (in_table, 'col1,col2,...')", procSummary)
	reg("IDAX.STANDARDIZE", "Z-score normalisation into a new AOT: (in_table, 'cols', out_table)", procStandardize)
	reg("IDAX.IMPUTE", "Missing-value imputation into a new AOT: (in_table, 'cols', 'MEAN|MEDIAN|ZERO', out_table)", procImpute)
	reg("IDAX.BIN", "Equal-width binning into a new AOT: (in_table, column, bins, out_table)", procBin)
	reg("IDAX.ONE_HOT", "One-hot encoding into a new AOT: (in_table, column, out_table)", procOneHot)
	reg("IDAX.SPLIT_DATA", "Deterministic train/test split into two AOTs: (in_table, train_table, test_table[, fraction, seed])", procSplitData)
	reg("IDAX.LINEAR_REGRESSION", "Train linear regression: (in_table, target, 'features', model_table[, ridge])", procLinearRegression)
	reg("IDAX.LOGISTIC_REGRESSION", "Train logistic regression: (in_table, target, 'features', model_table[, iterations, learning_rate])", procLogisticRegression)
	reg("IDAX.KMEANS", "Train k-means and assign clusters: (in_table, 'features', k, model_table[, assign_table, id_column, iterations, seed])", procKMeans)
	reg("IDAX.NAIVE_BAYES", "Train gaussian naive Bayes: (in_table, target, 'features', model_table)", procNaiveBayes)
	reg("IDAX.DECISION_TREE", "Train a CART decision tree: (in_table, target, 'features', model_table[, max_depth])", procDecisionTree)
	reg("IDAX.PREDICT", "Score a table with a trained model into a new AOT: (model_table, in_table, id_column, out_table)", procPredict)
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

func readTable(ctx *core.ProcContext, table string) (*relalg.Relation, error) {
	return ctx.QuerySQL("SELECT * FROM " + types.NormalizeName(table))
}

// materialize creates (or replaces) an accelerator-only output table with the
// relation's schema and inserts its rows. Dropping an existing table of the
// same name mirrors the "output table" convention of in-database analytics
// procedures.
func materialize(ctx *core.ProcContext, outTable string, rel *relalg.Relation) (int, error) {
	return materializeRows(ctx, outTable, rel.Schema(), rel.Rows)
}

func materializeRows(ctx *core.ProcContext, outTable string, schema types.Schema, rows []types.Row) (int, error) {
	outTable = types.NormalizeName(outTable)
	if ctx.Catalog.HasTable(outTable) {
		if ctx.AOTs.IsAOT(outTable) {
			if err := ctx.AOTs.Drop(outTable); err != nil {
				return 0, err
			}
		} else {
			return 0, fmt.Errorf("analytics: output table %s exists and is not accelerator-only", outTable)
		}
	}
	if err := ctx.AOTs.CreateFromSchema(ctx.User, outTable, "", schema, ""); err != nil {
		return 0, err
	}
	return ctx.InsertRows(outTable, rows)
}

func statsRelation(stats []ColumnStats) *relalg.Relation {
	rel := &relalg.Relation{Cols: []expr.InputColumn{
		{Name: "COLUMN_NAME", Kind: types.KindString},
		{Name: "N", Kind: types.KindInt},
		{Name: "NULLS", Kind: types.KindInt},
		{Name: "MEAN", Kind: types.KindFloat},
		{Name: "STDDEV", Kind: types.KindFloat},
		{Name: "MIN", Kind: types.KindFloat},
		{Name: "MAX", Kind: types.KindFloat},
	}}
	for _, st := range stats {
		rel.Rows = append(rel.Rows, types.Row{
			types.NewString(st.Name),
			types.NewInt(int64(st.Count)),
			types.NewInt(int64(st.Nulls)),
			types.NewFloat(st.Mean),
			types.NewFloat(st.StdDev),
			types.NewFloat(st.Min),
			types.NewFloat(st.Max),
		})
	}
	return rel
}

func saveModel(ctx *core.ProcContext, modelTable, kind string, model any, metrics map[string]float64) error {
	rows, err := ModelRows(kind, model, metrics)
	if err != nil {
		return err
	}
	_, err = materializeRows(ctx, modelTable, ModelSchema(), rows)
	return err
}

func loadModelFromTable(ctx *core.ProcContext, modelTable string) (string, any, error) {
	rel, err := readTable(ctx, modelTable)
	if err != nil {
		return "", nil, err
	}
	return LoadModel(rel)
}

// ---------------------------------------------------------------------------
// Transformation procedures
// ---------------------------------------------------------------------------

func procSummary(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	cols, err := core.ArgString(args, 1, "column list")
	if err != nil {
		return nil, err
	}
	if be, _, ok := scatterTarget(ctx, table); ok {
		return distSummary(ctx, be, table, cols)
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	stats, err := Summarize(rel, core.SplitList(cols))
	if err != nil {
		return nil, err
	}
	return &core.ProcResult{Relation: statsRelation(stats), Message: fmt.Sprintf("summarised %d columns over %d rows", len(stats), len(rel.Rows))}, nil
}

func procStandardize(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	cols, err := core.ArgString(args, 1, "column list")
	if err != nil {
		return nil, err
	}
	outTable, err := core.ArgString(args, 2, "output table")
	if err != nil {
		return nil, err
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	out, err := Standardize(rel, core.SplitList(cols))
	if err != nil {
		return nil, err
	}
	n, err := materialize(ctx, outTable, out)
	if err != nil {
		return nil, err
	}
	return &core.ProcResult{RowsAffected: n, OutputTables: []string{types.NormalizeName(outTable)}, Message: fmt.Sprintf("standardised %d rows into %s", n, types.NormalizeName(outTable))}, nil
}

func procImpute(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	cols, err := core.ArgString(args, 1, "column list")
	if err != nil {
		return nil, err
	}
	strategy := ImputeStrategy(strings.ToUpper(core.ArgStringDefault(args, 2, string(ImputeMean))))
	outTable, err := core.ArgString(args, 3, "output table")
	if err != nil {
		return nil, err
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	out, replaced, err := Impute(rel, core.SplitList(cols), strategy)
	if err != nil {
		return nil, err
	}
	n, err := materialize(ctx, outTable, out)
	if err != nil {
		return nil, err
	}
	return &core.ProcResult{RowsAffected: n, OutputTables: []string{types.NormalizeName(outTable)}, Message: fmt.Sprintf("imputed %d values into %s", replaced, types.NormalizeName(outTable))}, nil
}

func procBin(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	column, err := core.ArgString(args, 1, "column")
	if err != nil {
		return nil, err
	}
	bins := int(core.ArgInt(args, 2, 10))
	outTable, err := core.ArgString(args, 3, "output table")
	if err != nil {
		return nil, err
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	out, err := Bin(rel, column, bins)
	if err != nil {
		return nil, err
	}
	n, err := materialize(ctx, outTable, out)
	if err != nil {
		return nil, err
	}
	return &core.ProcResult{RowsAffected: n, OutputTables: []string{types.NormalizeName(outTable)}, Message: fmt.Sprintf("binned %s into %d bins", types.NormalizeName(column), bins)}, nil
}

func procOneHot(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	column, err := core.ArgString(args, 1, "column")
	if err != nil {
		return nil, err
	}
	outTable, err := core.ArgString(args, 2, "output table")
	if err != nil {
		return nil, err
	}
	maxCats := int(core.ArgInt(args, 3, 32))
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	out, newCols, err := OneHot(rel, column, maxCats)
	if err != nil {
		return nil, err
	}
	n, err := materialize(ctx, outTable, out)
	if err != nil {
		return nil, err
	}
	return &core.ProcResult{RowsAffected: n, OutputTables: []string{types.NormalizeName(outTable)}, Message: fmt.Sprintf("one-hot encoded %s into %d indicator columns", types.NormalizeName(column), len(newCols))}, nil
}

func procSplitData(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	trainTable, err := core.ArgString(args, 1, "train table")
	if err != nil {
		return nil, err
	}
	testTable, err := core.ArgString(args, 2, "test table")
	if err != nil {
		return nil, err
	}
	fraction := core.ArgFloat(args, 3, 0.8)
	seed := core.ArgInt(args, 4, 42)
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	train, test := SplitData(rel, fraction, seed)
	nTrain, err := materialize(ctx, trainTable, train)
	if err != nil {
		return nil, err
	}
	nTest, err := materialize(ctx, testTable, test)
	if err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: nTrain + nTest,
		OutputTables: []string{types.NormalizeName(trainTable), types.NormalizeName(testTable)},
		Message:      fmt.Sprintf("split %d rows into %d train / %d test", len(rel.Rows), nTrain, nTest),
	}, nil
}

// ---------------------------------------------------------------------------
// Training procedures
// ---------------------------------------------------------------------------

func procLinearRegression(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	target, err := core.ArgString(args, 1, "target column")
	if err != nil {
		return nil, err
	}
	features, err := core.ArgString(args, 2, "feature list")
	if err != nil {
		return nil, err
	}
	modelTable, err := core.ArgString(args, 3, "model table")
	if err != nil {
		return nil, err
	}
	ridge := core.ArgFloat(args, 4, 1e-6)

	if be, _, ok := scatterTarget(ctx, table); ok {
		return distLinearRegression(ctx, be, table, target, features, modelTable, ridge)
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	ds, err := Extract(rel, ExtractOptions{Features: core.SplitList(features), Target: target, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainLinearRegression(ds, ridge)
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{"RMSE": model.RMSE, "R2": model.R2, "N": float64(model.N)}
	if err := saveModel(ctx, modelTable, ModelKindLinear, model, metrics); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("linear regression trained on %d rows (RMSE=%.4f R2=%.4f)", model.N, model.RMSE, model.R2),
	}, nil
}

func procLogisticRegression(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	target, err := core.ArgString(args, 1, "target column")
	if err != nil {
		return nil, err
	}
	features, err := core.ArgString(args, 2, "feature list")
	if err != nil {
		return nil, err
	}
	modelTable, err := core.ArgString(args, 3, "model table")
	if err != nil {
		return nil, err
	}
	iterations := int(core.ArgInt(args, 4, 200))
	learningRate := core.ArgFloat(args, 5, 0.1)

	if be, _, ok := scatterTarget(ctx, table); ok {
		return distLogisticRegression(ctx, be, table, target, features, modelTable, iterations, learningRate)
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	ds, err := Extract(rel, ExtractOptions{Features: core.SplitList(features), Target: target, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainLogisticRegression(ds, iterations, learningRate, 1e-4)
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{"ACCURACY": model.TrainAccuracy, "LOGLOSS": model.TrainLogLoss, "N": float64(model.N)}
	if err := saveModel(ctx, modelTable, ModelKindLogistic, model, metrics); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("logistic regression trained on %d rows (accuracy=%.4f)", model.N, model.TrainAccuracy),
	}, nil
}

func procKMeans(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	features, err := core.ArgString(args, 1, "feature list")
	if err != nil {
		return nil, err
	}
	k := int(core.ArgInt(args, 2, 3))
	modelTable, err := core.ArgString(args, 3, "model table")
	if err != nil {
		return nil, err
	}
	assignTable := core.ArgStringDefault(args, 4, "")
	idColumn := core.ArgStringDefault(args, 5, "")
	iterations := int(core.ArgInt(args, 6, 50))
	seed := core.ArgInt(args, 7, 7)

	if be, _, ok := scatterTarget(ctx, table); ok {
		return distKMeans(ctx, be, table, features, k, modelTable, assignTable, idColumn, iterations, seed)
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	ds, err := Extract(rel, ExtractOptions{Features: core.SplitList(features), ID: idColumn, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, assignments, err := TrainKMeans(ds, KMeansOptions{K: k, MaxIterations: iterations, Seed: seed, Parallelism: ctx.Accelerator.Slices()})
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{"INERTIA": model.Inertia, "ITERATIONS": float64(model.Iterations), "K": float64(k), "N": float64(model.N)}
	if err := saveModel(ctx, modelTable, ModelKindKMeans, model, metrics); err != nil {
		return nil, err
	}
	outputs := []string{types.NormalizeName(modelTable)}
	if assignTable != "" {
		schema := types.NewSchema(
			types.Column{Name: "ID", Kind: types.KindString},
			types.Column{Name: "CLUSTER", Kind: types.KindInt},
		)
		rows := make([]types.Row, len(assignments))
		for i, c := range assignments {
			rows[i] = types.Row{types.NewString(ds.IDs[i].AsString()), types.NewInt(int64(c))}
		}
		if _, err := materializeRows(ctx, assignTable, schema, rows); err != nil {
			return nil, err
		}
		outputs = append(outputs, types.NormalizeName(assignTable))
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: outputs,
		Message:      fmt.Sprintf("k-means (k=%d) converged after %d iterations, inertia %.2f", k, model.Iterations, model.Inertia),
	}, nil
}

func procNaiveBayes(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	target, err := core.ArgString(args, 1, "target column")
	if err != nil {
		return nil, err
	}
	features, err := core.ArgString(args, 2, "feature list")
	if err != nil {
		return nil, err
	}
	modelTable, err := core.ArgString(args, 3, "model table")
	if err != nil {
		return nil, err
	}
	if be, _, ok := scatterTarget(ctx, table); ok {
		return distNaiveBayes(ctx, be, table, target, features, modelTable)
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	ds, err := Extract(rel, ExtractOptions{Features: core.SplitList(features), Target: target, TargetCategorical: true, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainNaiveBayes(ds)
	if err != nil {
		return nil, err
	}
	acc := model.Accuracy(ds)
	if err := saveModel(ctx, modelTable, ModelKindNaiveBayes, model, map[string]float64{"ACCURACY": acc, "N": float64(model.N), "CLASSES": float64(len(model.Classes))}); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("naive bayes trained on %d rows, %d classes (accuracy=%.4f)", model.N, len(model.Classes), acc),
	}, nil
}

func procDecisionTree(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	table, err := core.ArgString(args, 0, "input table")
	if err != nil {
		return nil, err
	}
	target, err := core.ArgString(args, 1, "target column")
	if err != nil {
		return nil, err
	}
	features, err := core.ArgString(args, 2, "feature list")
	if err != nil {
		return nil, err
	}
	modelTable, err := core.ArgString(args, 3, "model table")
	if err != nil {
		return nil, err
	}
	maxDepth := int(core.ArgInt(args, 4, 6))
	if be, _, ok := scatterTarget(ctx, table); ok {
		return distDecisionTree(ctx, be, table, target, features, modelTable, maxDepth)
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	ds, err := Extract(rel, ExtractOptions{Features: core.SplitList(features), Target: target, TargetCategorical: true, SkipIncomplete: true})
	if err != nil {
		return nil, err
	}
	model, err := TrainDecisionTree(ds, DecisionTreeOptions{MaxDepth: maxDepth})
	if err != nil {
		return nil, err
	}
	acc := model.Accuracy(ds)
	if err := saveModel(ctx, modelTable, ModelKindDecisionTree, model, map[string]float64{"ACCURACY": acc, "NODES": float64(model.Nodes), "DEPTH": float64(model.Depth()), "N": float64(model.N)}); err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: model.N,
		OutputTables: []string{types.NormalizeName(modelTable)},
		Message:      fmt.Sprintf("decision tree with %d nodes (depth %d, accuracy=%.4f)", model.Nodes, model.Depth(), acc),
	}, nil
}

// ---------------------------------------------------------------------------
// Scoring
// ---------------------------------------------------------------------------

func procPredict(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
	modelTable, err := core.ArgString(args, 0, "model table")
	if err != nil {
		return nil, err
	}
	table, err := core.ArgString(args, 1, "input table")
	if err != nil {
		return nil, err
	}
	idColumn, err := core.ArgString(args, 2, "id column")
	if err != nil {
		return nil, err
	}
	outTable, err := core.ArgString(args, 3, "output table")
	if err != nil {
		return nil, err
	}

	kind, model, err := loadModelFromTable(ctx, modelTable)
	if err != nil {
		return nil, err
	}
	if be, _, ok := scatterTarget(ctx, table); ok {
		return distPredict(ctx, be, kind, model, table, idColumn, outTable)
	}
	rel, err := readTable(ctx, table)
	if err != nil {
		return nil, err
	}
	rows, schema, err := ScoreRelation(kind, model, rel, idColumn)
	if err != nil {
		return nil, err
	}
	n, err := materializeRows(ctx, outTable, schema, rows)
	if err != nil {
		return nil, err
	}
	return &core.ProcResult{
		RowsAffected: n,
		OutputTables: []string{types.NormalizeName(outTable)},
		Message:      fmt.Sprintf("scored %d rows with %s model into %s", n, kind, types.NormalizeName(outTable)),
	}, nil
}

// ScoreRelation applies a trained model to every row of rel and returns the
// scored rows with their schema. It is exported so the benchmark harness can
// measure "client-side" scoring (same computation, but after extracting the
// data out of the database) against the in-database path. An empty relation
// (or one whose every row is incomplete) is an error; per-shard scoring uses
// scorePartition, where an unusable partition is legitimate as long as other
// shards hold rows.
func ScoreRelation(kind string, model any, rel *relalg.Relation, idColumn string) ([]types.Row, types.Schema, error) {
	return scorePartition(kind, model, rel, idColumn, false)
}

func scorePartition(kind string, model any, rel *relalg.Relation, idColumn string, allowEmpty bool) ([]types.Row, types.Schema, error) {
	var featureNames []string
	switch m := model.(type) {
	case *LinearModel:
		featureNames = m.FeatureNames
	case *LogisticModel:
		featureNames = m.FeatureNames
	case *KMeansModel:
		featureNames = m.FeatureNames
	case *NaiveBayesModel:
		featureNames = m.FeatureNames
	case *DecisionTreeModel:
		featureNames = m.FeatureNames
	case *ForestModel:
		featureNames = m.FeatureNames
	default:
		return nil, types.Schema{}, fmt.Errorf("analytics: unsupported model type %T", model)
	}
	ds, err := Extract(rel, ExtractOptions{Features: featureNames, ID: idColumn, SkipIncomplete: true, AllowEmpty: allowEmpty})
	if err != nil {
		return nil, types.Schema{}, err
	}

	idKind := types.KindString
	if idx := rel.Schema().IndexOf(idColumn); idx >= 0 {
		idKind = rel.Schema().Columns[idx].Kind
	}
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: idKind},
		types.Column{Name: "PREDICTION", Kind: types.KindFloat},
		types.Column{Name: "LABEL", Kind: types.KindString},
	)
	rows := make([]types.Row, ds.Rows())
	for i := 0; i < ds.Rows(); i++ {
		var prediction float64
		var label string
		switch m := model.(type) {
		case *LinearModel:
			prediction = m.Predict(ds.Features[i])
		case *LogisticModel:
			prediction = m.PredictProbability(ds.Features[i])
			if prediction >= 0.5 {
				label = "1"
			} else {
				label = "0"
			}
		case *KMeansModel:
			c := m.Predict(ds.Features[i])
			prediction = float64(c)
			label = fmt.Sprintf("CLUSTER_%d", c)
		case *NaiveBayesModel:
			cls, score := m.PredictClass(ds.Features[i])
			prediction = score
			label = cls
		case *DecisionTreeModel:
			label = m.PredictClass(ds.Features[i])
		case *ForestModel:
			label = m.PredictClass(ds.Features[i])
		}
		rows[i] = types.Row{ds.IDs[i], types.NewFloat(prediction), types.NewString(label)}
	}
	return rows, schema, nil
}
