package analytics

import (
	"fmt"
	"math"
	"sort"
)

// TreeNode is one node of a CART classification tree.
type TreeNode struct {
	// Leaf nodes predict Class; internal nodes split on Feature < Threshold.
	Leaf      bool
	Class     string
	Feature   int
	Threshold float64
	Left      *TreeNode
	Right     *TreeNode
	// Samples and Impurity describe the training data that reached the node.
	Samples  int
	Impurity float64
}

// DecisionTreeModel is a CART classification tree over numeric features.
type DecisionTreeModel struct {
	FeatureNames []string
	Root         *TreeNode
	MaxDepth     int
	MinLeafSize  int
	Nodes        int
	N            int
}

// DecisionTreeOptions configures tree induction.
type DecisionTreeOptions struct {
	MaxDepth    int
	MinLeafSize int
	// MaxThresholdCandidates bounds the number of candidate split points per
	// feature (quantile sampling); 0 means all midpoints.
	MaxThresholdCandidates int
}

// TrainDecisionTree builds a classification tree with gini impurity splits.
func TrainDecisionTree(ds *Dataset, opts DecisionTreeOptions) (*DecisionTreeModel, error) {
	n := ds.Rows()
	if n == 0 {
		return nil, fmt.Errorf("analytics: decision tree requires at least one row")
	}
	if len(ds.Labels) != n {
		return nil, fmt.Errorf("analytics: decision tree requires a categorical target")
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 6
	}
	if opts.MinLeafSize <= 0 {
		opts.MinLeafSize = 5
	}
	if opts.MaxThresholdCandidates <= 0 {
		opts.MaxThresholdCandidates = 32
	}

	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	model := &DecisionTreeModel{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		MaxDepth:     opts.MaxDepth,
		MinLeafSize:  opts.MinLeafSize,
		N:            n,
	}
	model.Root = model.buildNode(ds, indices, 0, opts)
	model.Nodes = countNodes(model.Root)
	return model, nil
}

func (m *DecisionTreeModel) buildNode(ds *Dataset, indices []int, depth int, opts DecisionTreeOptions) *TreeNode {
	majority, impurity := majorityAndGini(ds, indices)
	node := &TreeNode{Samples: len(indices), Impurity: impurity, Class: majority, Leaf: true}
	if depth >= opts.MaxDepth || len(indices) < 2*opts.MinLeafSize || impurity == 0 {
		return node
	}

	bestFeature, bestThreshold, bestGain := -1, 0.0, 0.0
	for j := 0; j < ds.Cols(); j++ {
		threshold, gain := bestSplitForFeature(ds, indices, j, impurity, opts)
		if gain > bestGain {
			bestGain = gain
			bestFeature = j
			bestThreshold = threshold
		}
	}
	if bestFeature < 0 || bestGain < 1e-9 {
		return node
	}

	var left, right []int
	for _, i := range indices {
		if ds.Features[i][bestFeature] < bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < opts.MinLeafSize || len(right) < opts.MinLeafSize {
		return node
	}
	node.Leaf = false
	node.Feature = bestFeature
	node.Threshold = bestThreshold
	node.Left = m.buildNode(ds, left, depth+1, opts)
	node.Right = m.buildNode(ds, right, depth+1, opts)
	return node
}

func bestSplitForFeature(ds *Dataset, indices []int, feature int, parentImpurity float64, opts DecisionTreeOptions) (float64, float64) {
	values := make([]float64, len(indices))
	for i, idx := range indices {
		values[i] = ds.Features[idx][feature]
	}
	sort.Float64s(values)
	// Candidate thresholds: midpoints of distinct neighbours, subsampled.
	var candidates []float64
	step := 1
	if opts.MaxThresholdCandidates > 0 && len(values) > opts.MaxThresholdCandidates {
		step = len(values) / opts.MaxThresholdCandidates
	}
	for i := step; i < len(values); i += step {
		if values[i] != values[i-1] {
			candidates = append(candidates, (values[i]+values[i-1])/2)
		}
	}
	bestThreshold, bestGain := 0.0, 0.0
	total := float64(len(indices))
	for _, threshold := range candidates {
		leftCounts := map[string]int{}
		rightCounts := map[string]int{}
		nl, nr := 0, 0
		for _, idx := range indices {
			if ds.Features[idx][feature] < threshold {
				leftCounts[ds.Labels[idx]]++
				nl++
			} else {
				rightCounts[ds.Labels[idx]]++
				nr++
			}
		}
		if nl == 0 || nr == 0 {
			continue
		}
		gain := parentImpurity - (float64(nl)/total)*giniOfCounts(leftCounts, nl) - (float64(nr)/total)*giniOfCounts(rightCounts, nr)
		if gain > bestGain {
			bestGain = gain
			bestThreshold = threshold
		}
	}
	return bestThreshold, bestGain
}

func majorityAndGini(ds *Dataset, indices []int) (string, float64) {
	counts := map[string]int{}
	for _, i := range indices {
		counts[ds.Labels[i]]++
	}
	best := ""
	bestCount := -1
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestCount {
			bestCount = counts[k]
			best = k
		}
	}
	return best, giniOfCounts(counts, len(indices))
}

func giniOfCounts(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func countNodes(node *TreeNode) int {
	if node == nil {
		return 0
	}
	return 1 + countNodes(node.Left) + countNodes(node.Right)
}

// PredictClass walks the tree for one feature vector.
func (m *DecisionTreeModel) PredictClass(features []float64) string {
	node := m.Root
	for node != nil && !node.Leaf {
		if node.Feature < len(features) && features[node.Feature] < node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	if node == nil {
		return ""
	}
	return node.Class
}

// Accuracy computes classification accuracy against a labelled dataset.
func (m *DecisionTreeModel) Accuracy(ds *Dataset) float64 {
	if ds.Rows() == 0 || len(ds.Labels) != ds.Rows() {
		return 0
	}
	correct := 0
	for i := 0; i < ds.Rows(); i++ {
		if m.PredictClass(ds.Features[i]) == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Rows())
}

// Depth returns the tree depth.
func (m *DecisionTreeModel) Depth() int { return depthOf(m.Root) }

func depthOf(node *TreeNode) int {
	if node == nil || node.Leaf {
		return 0
	}
	l := depthOf(node.Left)
	r := depthOf(node.Right)
	return 1 + int(math.Max(float64(l), float64(r)))
}
