package analytics

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// KMeansModel holds cluster centroids.
type KMeansModel struct {
	FeatureNames []string
	Centroids    [][]float64
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia    float64
	Iterations int
	N          int
}

// KMeansOptions configures training.
type KMeansOptions struct {
	K             int
	MaxIterations int
	Seed          int64
	// Parallelism is the number of goroutines used for the assignment step
	// (the accelerator passes its slice count). <=0 means GOMAXPROCS.
	Parallelism int
	// Tolerance stops iterating when total centroid movement falls below it.
	Tolerance float64
}

// TrainKMeans clusters the dataset with Lloyd's algorithm and k-means++
// initialisation. The assignment step is parallelised across worker slices,
// matching how the accelerator distributes row ranges.
func TrainKMeans(ds *Dataset, opts KMeansOptions) (*KMeansModel, []int, error) {
	n := ds.Rows()
	p := ds.Cols()
	if n == 0 {
		return nil, nil, fmt.Errorf("analytics: k-means requires at least one row")
	}
	if opts.K <= 0 {
		return nil, nil, fmt.Errorf("analytics: k-means requires K > 0")
	}
	if opts.K > n {
		opts.K = n
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 50
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-6
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	centroids := initKMeansPlusPlus(ds, opts.K, newRNG(opts.Seed))
	assignments := make([]int, n)
	iterations := 0
	var inertia float64

	for iter := 0; iter < opts.MaxIterations; iter++ {
		iterations = iter + 1
		inertia = assignParallel(ds, centroids, assignments, workers)

		// Recompute centroids.
		newCentroids := make([][]float64, opts.K)
		counts := make([]int, opts.K)
		for c := range newCentroids {
			newCentroids[c] = make([]float64, p)
		}
		for i := 0; i < n; i++ {
			c := assignments[i]
			counts[c]++
			for j := 0; j < p; j++ {
				newCentroids[c][j] += ds.Features[i][j]
			}
		}
		movement := 0.0
		for c := 0; c < opts.K; c++ {
			if counts[c] == 0 {
				// Empty cluster: keep the previous centroid.
				newCentroids[c] = centroids[c]
				continue
			}
			for j := 0; j < p; j++ {
				newCentroids[c][j] /= float64(counts[c])
				movement += math.Abs(newCentroids[c][j] - centroids[c][j])
			}
		}
		centroids = newCentroids
		if movement < opts.Tolerance {
			break
		}
	}
	inertia = assignParallel(ds, centroids, assignments, workers)

	model := &KMeansModel{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		Centroids:    centroids,
		Inertia:      inertia,
		Iterations:   iterations,
		N:            n,
	}
	return model, assignments, nil
}

// Predict returns the index of the nearest centroid.
func (m *KMeansModel) Predict(features []float64) int {
	best, _ := nearestCentroid(features, m.Centroids)
	return best
}

func initKMeansPlusPlus(ds *Dataset, k int, r *rng) [][]float64 {
	n := ds.Rows()
	centroids := make([][]float64, 0, k)
	first := r.Intn(n)
	centroids = append(centroids, append([]float64(nil), ds.Features[first]...))
	dists := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i := 0; i < n; i++ {
			_, d := nearestCentroid(ds.Features[i], centroids)
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points identical to chosen centroids; pick randomly.
			centroids = append(centroids, append([]float64(nil), ds.Features[r.Intn(n)]...))
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		chosen := n - 1
		for i := 0; i < n; i++ {
			acc += dists[i]
			if acc >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), ds.Features[chosen]...))
	}
	return centroids
}

func nearestCentroid(x []float64, centroids [][]float64) (int, float64) {
	best := 0
	bestDist := math.Inf(1)
	for c, centroid := range centroids {
		d := 0.0
		for j := range centroid {
			diff := x[j] - centroid[j]
			d += diff * diff
		}
		if d < bestDist {
			bestDist = d
			best = c
		}
	}
	return best, bestDist
}

func assignParallel(ds *Dataset, centroids [][]float64, assignments []int, workers int) float64 {
	n := ds.Rows()
	if workers <= 1 {
		total := 0.0
		for i := 0; i < n; i++ {
			c, d := nearestCentroid(ds.Features[i], centroids)
			assignments[i] = c
			total += d
		}
		return total
	}
	chunk := (n + workers - 1) / workers
	partial := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sum := 0.0
			for i := lo; i < hi; i++ {
				c, d := nearestCentroid(ds.Features[i], centroids)
				assignments[i] = c
				sum += d
			}
			partial[w] = sum
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}
