package analytics

import (
	"math"
	"testing"
	"testing/quick"

	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// syntheticRelation builds a relation with columns X1, X2, Y (numeric) and
// LABEL (categorical) where Y = 3 + 2*X1 - X2 and LABEL = "POS" iff Y > 3.
func syntheticRelation(n int) *relalg.Relation {
	rel := &relalg.Relation{Cols: []expr.InputColumn{
		{Name: "ID", Kind: types.KindInt},
		{Name: "X1", Kind: types.KindFloat},
		{Name: "X2", Kind: types.KindFloat},
		{Name: "Y", Kind: types.KindFloat},
		{Name: "LABEL", Kind: types.KindString},
	}}
	r := newRNG(42)
	for i := 0; i < n; i++ {
		x1 := r.Float64() * 10
		x2 := r.Float64() * 5
		y := 3 + 2*x1 - x2
		label := "NEG"
		if y > 3 {
			label = "POS"
		}
		rel.Rows = append(rel.Rows, types.Row{
			types.NewInt(int64(i)), types.NewFloat(x1), types.NewFloat(x2), types.NewFloat(y), types.NewString(label),
		})
	}
	return rel
}

func extractXY(t *testing.T, rel *relalg.Relation, categorical bool) *Dataset {
	t.Helper()
	opts := ExtractOptions{Features: []string{"X1", "X2"}, Target: "Y", ID: "ID"}
	if categorical {
		opts.Target = "LABEL"
		opts.TargetCategorical = true
	}
	ds, err := Extract(rel, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestExtractAndSummarize(t *testing.T) {
	rel := syntheticRelation(500)
	ds := extractXY(t, rel, false)
	if ds.Rows() != 500 || ds.Cols() != 2 || len(ds.Target) != 500 {
		t.Fatalf("extract: %d rows, %d cols", ds.Rows(), ds.Cols())
	}
	stats, err := Summarize(rel, []string{"X1", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Count != 500 || stats[0].Min < 0 || stats[0].Max > 10 {
		t.Fatalf("summary: %+v", stats[0])
	}
	if _, err := Summarize(rel, []string{"NOPE"}); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := Extract(rel, ExtractOptions{Features: []string{"MISSING"}}); err == nil {
		t.Fatal("unknown feature should fail")
	}
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	ds := extractXY(t, syntheticRelation(2000), false)
	model, err := TrainLinearRegression(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.Intercept-3) > 0.01 ||
		math.Abs(model.Coefficients[0]-2) > 0.01 ||
		math.Abs(model.Coefficients[1]+1) > 0.01 {
		t.Fatalf("coefficients not recovered: %v %v", model.Intercept, model.Coefficients)
	}
	if model.R2 < 0.999 || model.RMSE > 0.01 {
		t.Fatalf("fit quality: R2=%v RMSE=%v", model.R2, model.RMSE)
	}
	pred := model.Predict([]float64{1, 1})
	if math.Abs(pred-4) > 0.02 {
		t.Fatalf("prediction = %v", pred)
	}
	if _, err := TrainLinearRegression(&Dataset{}, 0); err == nil {
		t.Fatal("empty dataset should fail")
	}
}

func TestLogisticRegressionSeparatesClasses(t *testing.T) {
	rel := syntheticRelation(2000)
	// Binary target derived from the label.
	rel2 := rel.Clone()
	rel2.Cols = append(rel2.Cols, expr.InputColumn{Name: "TARGET", Kind: types.KindInt})
	rel2.Rows = nil
	for _, r := range rel.Rows {
		v := int64(0)
		if r[4].Str == "POS" {
			v = 1
		}
		rel2.Rows = append(rel2.Rows, append(r.Clone(), types.NewInt(v)))
	}
	ds, err := Extract(rel2, ExtractOptions{Features: []string{"X1", "X2"}, Target: "TARGET"})
	if err != nil {
		t.Fatal(err)
	}
	model, err := TrainLogisticRegression(ds, 300, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if model.TrainAccuracy < 0.95 {
		t.Fatalf("accuracy = %v", model.TrainAccuracy)
	}
	if model.PredictClass([]float64{10, 0}) != 1 || model.PredictClass([]float64{0, 5}) != 0 {
		t.Fatal("predictions on obvious points wrong")
	}
}

func TestKMeansFindsSeparatedClusters(t *testing.T) {
	ds := &Dataset{FeatureNames: []string{"A", "B"}}
	r := newRNG(7)
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for i := 0; i < 600; i++ {
		c := centers[i%3]
		ds.Features = append(ds.Features, []float64{c[0] + r.Float64(), c[1] + r.Float64()})
		ds.IDs = append(ds.IDs, types.NewInt(int64(i)))
	}
	model, assignments, err := TrainKMeans(ds, KMeansOptions{K: 3, MaxIterations: 50, Seed: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Centroids) != 3 || len(assignments) != 600 {
		t.Fatalf("model shape: %d centroids, %d assignments", len(model.Centroids), len(assignments))
	}
	// Points generated from the same centre must share a cluster.
	for i := 3; i < 600; i++ {
		if assignments[i] != assignments[i%3] {
			t.Fatalf("point %d assigned to %d, expected %d", i, assignments[i], assignments[i%3])
		}
	}
	if model.Inertia > 600*2 {
		t.Fatalf("inertia too high: %v", model.Inertia)
	}
}

func TestNaiveBayesAndDecisionTree(t *testing.T) {
	ds := extractXY(t, syntheticRelation(1500), true)
	nb, err := TrainNaiveBayes(ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc := nb.Accuracy(ds); acc < 0.85 {
		t.Fatalf("naive bayes accuracy = %v", acc)
	}
	if len(nb.Classes) != 2 {
		t.Fatalf("classes: %v", nb.Classes)
	}

	dt, err := TrainDecisionTree(ds, DecisionTreeOptions{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := dt.Accuracy(ds); acc < 0.9 {
		t.Fatalf("decision tree accuracy = %v", acc)
	}
	if dt.Depth() > 5 || dt.Nodes < 3 {
		t.Fatalf("tree shape: depth=%d nodes=%d", dt.Depth(), dt.Nodes)
	}
}

func TestTransformations(t *testing.T) {
	rel := syntheticRelation(300)
	std, err := Standardize(rel, []string{"X1", "X2"})
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := Summarize(std, []string{"X1"})
	if math.Abs(stats[0].Mean) > 1e-9 || math.Abs(stats[0].StdDev-1) > 1e-9 {
		t.Fatalf("standardised stats: %+v", stats[0])
	}

	// Inject NULLs, impute them away.
	withNulls := rel.Clone()
	withNulls.Rows = append([]types.Row(nil), rel.Rows...)
	withNulls.Rows[0] = withNulls.Rows[0].Clone()
	withNulls.Rows[0][1] = types.Null()
	imputed, replaced, err := Impute(withNulls, []string{"X1"}, ImputeMean)
	if err != nil || replaced != 1 {
		t.Fatalf("impute: %d, %v", replaced, err)
	}
	if imputed.Rows[0][1].IsNull() {
		t.Fatal("NULL not imputed")
	}

	binned, err := Bin(rel, "X1", 4)
	if err != nil {
		t.Fatal(err)
	}
	binIdx := binned.Schema().IndexOf("X1_BIN")
	if binIdx < 0 {
		t.Fatal("bin column missing")
	}
	for _, r := range binned.Rows {
		if b, _ := r[binIdx].AsInt(); b < 0 || b > 3 {
			t.Fatalf("bin out of range: %d", b)
		}
	}

	oneHot, cols, err := OneHot(rel, "LABEL", 10)
	if err != nil || len(cols) != 2 {
		t.Fatalf("one-hot: %v, %v", cols, err)
	}
	idxPos := oneHot.Schema().IndexOf("LABEL_POS")
	if idxPos < 0 {
		t.Fatal("LABEL_POS missing")
	}

	train, test := SplitData(rel, 0.75, 99)
	if len(train.Rows)+len(test.Rows) != len(rel.Rows) {
		t.Fatal("split lost rows")
	}
	if len(train.Rows) < len(rel.Rows)/2 {
		t.Fatalf("train fraction too small: %d of %d", len(train.Rows), len(rel.Rows))
	}
	// The split is deterministic for a fixed seed.
	train2, _ := SplitData(rel, 0.75, 99)
	if len(train2.Rows) != len(train.Rows) {
		t.Fatal("split not deterministic")
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	ds := extractXY(t, syntheticRelation(400), false)
	model, err := TrainLinearRegression(ds, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ModelRows(ModelKindLinear, model, map[string]float64{"RMSE": model.RMSE})
	if err != nil {
		t.Fatal(err)
	}
	rel := &relalg.Relation{Cols: []expr.InputColumn{
		{Name: "MODEL_KIND", Kind: types.KindString},
		{Name: "PARAM", Kind: types.KindString},
		{Name: "VALUE", Kind: types.KindFloat},
		{Name: "TEXT", Kind: types.KindString},
	}, Rows: rows}
	kind, loaded, err := LoadModel(rel)
	if err != nil || kind != ModelKindLinear {
		t.Fatalf("load: %v, %v", kind, err)
	}
	lm := loaded.(*LinearModel)
	if math.Abs(lm.Intercept-model.Intercept) > 1e-12 {
		t.Fatal("intercept lost in round trip")
	}
	scored, schema, err := ScoreRelation(kind, lm, syntheticRelation(50), "ID")
	if err != nil || len(scored) != 50 || schema.Len() != 3 {
		t.Fatalf("score: %d rows, %v", len(scored), err)
	}
}

// TestLinearSolverProperty: solving A x = b for a random diagonally-dominant
// matrix reproduces b when multiplied back.
func TestLinearSolverProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRNG(seed)
		n := 4
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.Float64()
			}
			a[i][i] += float64(n) // diagonally dominant => well conditioned
			x[i] = r.Float64() * 10
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i][j] * x[j]
			}
		}
		aCopy := make([][]float64, n)
		for i := range a {
			aCopy[i] = append([]float64(nil), a[i]...)
		}
		got, err := solveLinearSystem(aCopy, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
