// Package expr evaluates scalar SQL expressions against rows. Both engines
// use it: the DB2 engine row-at-a-time, the accelerator per-column-chunk with
// the same semantics (the accelerator keeps its data columnar but materialises
// row views for expression evaluation, which preserves result equivalence).
package expr

import (
	"fmt"
	"math"
	"strings"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// InputColumn describes one column of the row an evaluator operates on.
// Qualifier is the table name or alias that may prefix references.
type InputColumn struct {
	Qualifier string
	Name      string
	Kind      types.Kind
}

// Env maps column references to row positions. It is built once per query
// operator and reused for every row.
type Env struct {
	cols []InputColumn
	// byName maps NAME -> unique index, or -1 when the name is ambiguous.
	byName map[string]int
	// byQualified maps QUALIFIER.NAME -> index.
	byQualified map[string]int
	// Overrides maps specific expression nodes (by identity) to precomputed
	// values. The aggregation operators use it to substitute aggregate
	// function calls with their group results when evaluating the select list
	// and HAVING clause.
	Overrides map[sqlparse.Expr]types.Value
}

// NewEnv builds an evaluation environment for the given input columns.
func NewEnv(cols []InputColumn) *Env {
	e := &Env{
		cols:        cols,
		byName:      make(map[string]int, len(cols)),
		byQualified: make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		name := types.NormalizeName(c.Name)
		if prev, ok := e.byName[name]; ok && prev != i {
			e.byName[name] = -1 // ambiguous
		} else {
			e.byName[name] = i
		}
		if c.Qualifier != "" {
			e.byQualified[types.NormalizeName(c.Qualifier)+"."+name] = i
		}
	}
	return e
}

// Columns returns the environment's input columns.
func (e *Env) Columns() []InputColumn { return e.cols }

// Resolve returns the row index for a column reference.
func (e *Env) Resolve(ref *sqlparse.ColumnRef) (int, error) {
	name := types.NormalizeName(ref.Name)
	if ref.Table != "" {
		key := types.NormalizeName(ref.Table) + "." + name
		if idx, ok := e.byQualified[key]; ok {
			return idx, nil
		}
		return 0, fmt.Errorf("expr: unknown column %s.%s", ref.Table, ref.Name)
	}
	idx, ok := e.byName[name]
	if !ok {
		return 0, fmt.Errorf("expr: unknown column %s", ref.Name)
	}
	if idx < 0 {
		return 0, fmt.Errorf("expr: ambiguous column reference %s", ref.Name)
	}
	return idx, nil
}

// Eval evaluates the expression against the row.
func (e *Env) Eval(x sqlparse.Expr, row types.Row) (types.Value, error) {
	if x != nil && e.Overrides != nil {
		if v, ok := e.Overrides[x]; ok {
			return v, nil
		}
	}
	switch n := x.(type) {
	case nil:
		return types.Null(), nil
	case *sqlparse.Literal:
		return n.Val, nil
	case *sqlparse.ColumnRef:
		idx, err := e.Resolve(n)
		if err != nil {
			return types.Null(), err
		}
		if idx >= len(row) {
			return types.Null(), fmt.Errorf("expr: row too short for column %s", n.Name)
		}
		return row[idx], nil
	case *sqlparse.BinaryExpr:
		return e.evalBinary(n, row)
	case *sqlparse.UnaryExpr:
		return e.evalUnary(n, row)
	case *sqlparse.FuncCall:
		return e.evalFunc(n, row)
	case *sqlparse.CaseExpr:
		return e.evalCase(n, row)
	case *sqlparse.IsNullExpr:
		v, err := e.Eval(n.Operand, row)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(v.IsNull() != n.Negate), nil
	case *sqlparse.InExpr:
		return e.evalIn(n, row)
	case *sqlparse.BetweenExpr:
		return e.evalBetween(n, row)
	case *sqlparse.LikeExpr:
		return e.evalLike(n, row)
	case *sqlparse.CastExpr:
		v, err := e.Eval(n.Operand, row)
		if err != nil {
			return types.Null(), err
		}
		return v.Cast(n.To)
	default:
		return types.Null(), fmt.Errorf("expr: unsupported expression node %T", x)
	}
}

// EvalBool evaluates a predicate; NULL is treated as false (SQL three-valued
// logic collapsed at the filter boundary).
func (e *Env) EvalBool(x sqlparse.Expr, row types.Row) (bool, error) {
	if x == nil {
		return true, nil
	}
	v, err := e.Eval(x, row)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	b, ok := v.AsBool()
	if !ok {
		return false, fmt.Errorf("expr: predicate did not evaluate to a boolean (got %s)", v.Kind)
	}
	return b, nil
}

func (e *Env) evalBinary(n *sqlparse.BinaryExpr, row types.Row) (types.Value, error) {
	// AND/OR get short-circuit evaluation with NULL-as-false collapse.
	switch n.Op {
	case sqlparse.OpAnd:
		lb, err := e.EvalBool(n.Left, row)
		if err != nil {
			return types.Null(), err
		}
		if !lb {
			return types.NewBool(false), nil
		}
		rb, err := e.EvalBool(n.Right, row)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(rb), nil
	case sqlparse.OpOr:
		lb, err := e.EvalBool(n.Left, row)
		if err != nil {
			return types.Null(), err
		}
		if lb {
			return types.NewBool(true), nil
		}
		rb, err := e.EvalBool(n.Right, row)
		if err != nil {
			return types.Null(), err
		}
		return types.NewBool(rb), nil
	}
	left, err := e.Eval(n.Left, row)
	if err != nil {
		return types.Null(), err
	}
	right, err := e.Eval(n.Right, row)
	if err != nil {
		return types.Null(), err
	}
	return ApplyBinary(n.Op, left, right)
}

// ApplyBinary applies a non-logical binary operator to two values.
func ApplyBinary(op sqlparse.BinOp, left, right types.Value) (types.Value, error) {
	switch op {
	case sqlparse.OpConcat:
		if left.IsNull() || right.IsNull() {
			return types.Null(), nil
		}
		return types.NewString(left.AsString() + right.AsString()), nil
	case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		if left.IsNull() || right.IsNull() {
			return types.Null(), nil
		}
		c, err := types.Compare(left, right)
		if err != nil {
			return types.Null(), err
		}
		var result bool
		switch op {
		case sqlparse.OpEq:
			result = c == 0
		case sqlparse.OpNe:
			result = c != 0
		case sqlparse.OpLt:
			result = c < 0
		case sqlparse.OpLe:
			result = c <= 0
		case sqlparse.OpGt:
			result = c > 0
		case sqlparse.OpGe:
			result = c >= 0
		}
		return types.NewBool(result), nil
	case sqlparse.OpAdd, sqlparse.OpSub, sqlparse.OpMul, sqlparse.OpDiv, sqlparse.OpMod:
		return applyArithmetic(op, left, right)
	default:
		return types.Null(), fmt.Errorf("expr: unsupported binary operator %v", op)
	}
}

func applyArithmetic(op sqlparse.BinOp, left, right types.Value) (types.Value, error) {
	if left.IsNull() || right.IsNull() {
		return types.Null(), nil
	}
	// Integer arithmetic stays integral (except division by zero handling).
	if left.Kind == types.KindInt && right.Kind == types.KindInt {
		a, b := left.Int, right.Int
		switch op {
		case sqlparse.OpAdd:
			return types.NewInt(a + b), nil
		case sqlparse.OpSub:
			return types.NewInt(a - b), nil
		case sqlparse.OpMul:
			return types.NewInt(a * b), nil
		case sqlparse.OpDiv:
			if b == 0 {
				return types.Null(), fmt.Errorf("expr: division by zero")
			}
			return types.NewInt(a / b), nil
		case sqlparse.OpMod:
			if b == 0 {
				return types.Null(), fmt.Errorf("expr: division by zero")
			}
			return types.NewInt(a % b), nil
		}
	}
	af, aok := left.AsFloat()
	bf, bok := right.AsFloat()
	if !aok || !bok {
		return types.Null(), fmt.Errorf("expr: arithmetic on non-numeric values (%s, %s)", left.Kind, right.Kind)
	}
	switch op {
	case sqlparse.OpAdd:
		return types.NewFloat(af + bf), nil
	case sqlparse.OpSub:
		return types.NewFloat(af - bf), nil
	case sqlparse.OpMul:
		return types.NewFloat(af * bf), nil
	case sqlparse.OpDiv:
		if bf == 0 {
			return types.Null(), fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat(af / bf), nil
	case sqlparse.OpMod:
		if bf == 0 {
			return types.Null(), fmt.Errorf("expr: division by zero")
		}
		return types.NewFloat(math.Mod(af, bf)), nil
	}
	return types.Null(), fmt.Errorf("expr: unsupported arithmetic operator %v", op)
}

func (e *Env) evalUnary(n *sqlparse.UnaryExpr, row types.Row) (types.Value, error) {
	v, err := e.Eval(n.Operand, row)
	if err != nil {
		return types.Null(), err
	}
	switch n.Op {
	case "NOT":
		if v.IsNull() {
			return types.Null(), nil
		}
		b, ok := v.AsBool()
		if !ok {
			return types.Null(), fmt.Errorf("expr: NOT applied to non-boolean %s", v.Kind)
		}
		return types.NewBool(!b), nil
	case "-":
		if v.IsNull() {
			return types.Null(), nil
		}
		switch v.Kind {
		case types.KindInt:
			return types.NewInt(-v.Int), nil
		case types.KindFloat:
			return types.NewFloat(-v.Float), nil
		default:
			f, ok := v.AsFloat()
			if !ok {
				return types.Null(), fmt.Errorf("expr: unary minus on non-numeric %s", v.Kind)
			}
			return types.NewFloat(-f), nil
		}
	default:
		return types.Null(), fmt.Errorf("expr: unsupported unary operator %q", n.Op)
	}
}

func (e *Env) evalCase(n *sqlparse.CaseExpr, row types.Row) (types.Value, error) {
	if n.Operand != nil {
		op, err := e.Eval(n.Operand, row)
		if err != nil {
			return types.Null(), err
		}
		for _, w := range n.Whens {
			wv, err := e.Eval(w.Cond, row)
			if err != nil {
				return types.Null(), err
			}
			if !op.IsNull() && !wv.IsNull() && types.Equal(op, wv) {
				return e.Eval(w.Result, row)
			}
		}
	} else {
		for _, w := range n.Whens {
			ok, err := e.EvalBool(w.Cond, row)
			if err != nil {
				return types.Null(), err
			}
			if ok {
				return e.Eval(w.Result, row)
			}
		}
	}
	if n.Else != nil {
		return e.Eval(n.Else, row)
	}
	return types.Null(), nil
}

func (e *Env) evalIn(n *sqlparse.InExpr, row types.Row) (types.Value, error) {
	v, err := e.Eval(n.Operand, row)
	if err != nil {
		return types.Null(), err
	}
	if v.IsNull() {
		return types.Null(), nil
	}
	for _, item := range n.List {
		iv, err := e.Eval(item, row)
		if err != nil {
			return types.Null(), err
		}
		if !iv.IsNull() && types.Equal(v, iv) {
			return types.NewBool(!n.Negate), nil
		}
	}
	return types.NewBool(n.Negate), nil
}

func (e *Env) evalBetween(n *sqlparse.BetweenExpr, row types.Row) (types.Value, error) {
	v, err := e.Eval(n.Operand, row)
	if err != nil {
		return types.Null(), err
	}
	low, err := e.Eval(n.Low, row)
	if err != nil {
		return types.Null(), err
	}
	high, err := e.Eval(n.High, row)
	if err != nil {
		return types.Null(), err
	}
	if v.IsNull() || low.IsNull() || high.IsNull() {
		return types.Null(), nil
	}
	cl, err := types.Compare(v, low)
	if err != nil {
		return types.Null(), err
	}
	ch, err := types.Compare(v, high)
	if err != nil {
		return types.Null(), err
	}
	in := cl >= 0 && ch <= 0
	return types.NewBool(in != n.Negate), nil
}

func (e *Env) evalLike(n *sqlparse.LikeExpr, row types.Row) (types.Value, error) {
	v, err := e.Eval(n.Operand, row)
	if err != nil {
		return types.Null(), err
	}
	pat, err := e.Eval(n.Pattern, row)
	if err != nil {
		return types.Null(), err
	}
	if v.IsNull() || pat.IsNull() {
		return types.Null(), nil
	}
	matched := MatchLike(v.AsString(), pat.AsString())
	return types.NewBool(matched != n.Negate), nil
}

// MatchLike implements SQL LIKE with '%' (any run) and '_' (any single char).
// Matching is case-sensitive, as in DB2 with default collation.
func MatchLike(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking only on '%'.
	var si, pi int
	star := -1
	match := 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// OutputName derives the column name of a select-list expression when no
// alias is given, mirroring DB2's derived-column naming loosely.
func OutputName(x sqlparse.Expr, position int) string {
	switch n := x.(type) {
	case *sqlparse.ColumnRef:
		return types.NormalizeName(n.Name)
	case *sqlparse.FuncCall:
		return strings.ToUpper(n.Name)
	default:
		return fmt.Sprintf("COL%d", position+1)
	}
}

// InferKind statically infers the result kind of an expression against an
// environment, falling back to KindFloat for arithmetic and KindString when
// unknown. It is used to type derived columns of CREATE TABLE ... AS SELECT
// and INSERT ... SELECT targets.
func (e *Env) InferKind(x sqlparse.Expr) types.Kind {
	switch n := x.(type) {
	case *sqlparse.Literal:
		return n.Val.Kind
	case *sqlparse.ColumnRef:
		idx, err := e.Resolve(n)
		if err != nil {
			return types.KindString
		}
		return e.cols[idx].Kind
	case *sqlparse.CastExpr:
		return n.To
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case sqlparse.OpAnd, sqlparse.OpOr, sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
			return types.KindBool
		case sqlparse.OpConcat:
			return types.KindString
		default:
			lk := e.InferKind(n.Left)
			rk := e.InferKind(n.Right)
			if lk == types.KindInt && rk == types.KindInt {
				return types.KindInt
			}
			return types.KindFloat
		}
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			return types.KindBool
		}
		return e.InferKind(n.Operand)
	case *sqlparse.FuncCall:
		return inferFuncKind(n, e)
	case *sqlparse.CaseExpr:
		for _, w := range n.Whens {
			if k := e.InferKind(w.Result); k != types.KindNull {
				return k
			}
		}
		if n.Else != nil {
			return e.InferKind(n.Else)
		}
		return types.KindString
	case *sqlparse.IsNullExpr, *sqlparse.InExpr, *sqlparse.BetweenExpr, *sqlparse.LikeExpr:
		return types.KindBool
	default:
		return types.KindString
	}
}

func inferFuncKind(n *sqlparse.FuncCall, e *Env) types.Kind {
	switch strings.ToUpper(n.Name) {
	case "COUNT":
		return types.KindInt
	case "SUM", "MIN", "MAX":
		if len(n.Args) == 1 {
			return e.InferKind(n.Args[0])
		}
		return types.KindFloat
	case "AVG", "STDDEV", "VARIANCE", "SQRT", "LN", "LOG", "EXP", "POWER", "RAND":
		return types.KindFloat
	case "ABS", "ROUND", "FLOOR", "CEIL", "CEILING", "MOD":
		if len(n.Args) >= 1 {
			return e.InferKind(n.Args[0])
		}
		return types.KindFloat
	case "LENGTH", "INSTR", "SIGN":
		return types.KindInt
	case "UPPER", "LOWER", "TRIM", "SUBSTR", "SUBSTRING", "CONCAT", "REPLACE", "LPAD", "RPAD":
		return types.KindString
	case "COALESCE", "NULLIF", "IFNULL", "NVL":
		if len(n.Args) >= 1 {
			return e.InferKind(n.Args[0])
		}
		return types.KindString
	case "NOW", "CURRENT_TIMESTAMP":
		return types.KindTimestamp
	case "YEAR", "MONTH", "DAY", "HOUR", "MINUTE":
		return types.KindInt
	default:
		return types.KindFloat
	}
}
