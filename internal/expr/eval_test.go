package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

func testEnv() (*Env, types.Row) {
	cols := []InputColumn{
		{Qualifier: "T", Name: "A", Kind: types.KindInt},
		{Qualifier: "T", Name: "B", Kind: types.KindFloat},
		{Qualifier: "T", Name: "S", Kind: types.KindString},
		{Qualifier: "T", Name: "FLAG", Kind: types.KindBool},
		{Qualifier: "T", Name: "N", Kind: types.KindFloat},
	}
	row := types.Row{types.NewInt(4), types.NewFloat(2.5), types.NewString("Hello"), types.NewBool(true), types.Null()}
	return NewEnv(cols), row
}

func evalSQL(t *testing.T, exprSQL string) types.Value {
	t.Helper()
	env, row := testEnv()
	e, err := sqlparse.ParseExpr(exprSQL)
	if err != nil {
		t.Fatalf("parse %q: %v", exprSQL, err)
	}
	v, err := env.Eval(e, row)
	if err != nil {
		t.Fatalf("eval %q: %v", exprSQL, err)
	}
	return v
}

func TestEvalArithmeticAndComparison(t *testing.T) {
	cases := map[string]string{
		"a + 1":                 "5",
		"a * b":                 "10",
		"a / 2":                 "2",
		"a % 3":                 "1",
		"-a":                    "-4",
		"a > 3":                 "true",
		"a >= 5":                "false",
		"b <> 2.5":              "false",
		"s = 'Hello'":           "true",
		"a > 1 AND b < 3":       "true",
		"a > 10 OR b > 2":       "true",
		"NOT flag":              "false",
		"a BETWEEN 1 AND 4":     "true",
		"a IN (1, 2, 4)":        "true",
		"a NOT IN (1, 2)":       "true",
		"s LIKE 'He%'":          "true",
		"s LIKE '%xx%'":         "false",
		"s NOT LIKE 'H_llo'":    "false",
		"n IS NULL":             "true",
		"a IS NOT NULL":         "true",
		"'x' || s":              "xHello",
		"CAST(a AS DOUBLE) / 8": "0.5",
	}
	for sql, want := range cases {
		if got := evalSQL(t, sql).AsString(); got != want {
			t.Errorf("%s = %q, want %q", sql, got, want)
		}
	}
}

func TestEvalNullPropagation(t *testing.T) {
	for _, sql := range []string{"n + 1", "n > 1", "n || 'x'", "-n"} {
		if v := evalSQL(t, sql); !v.IsNull() {
			t.Errorf("%s should be NULL, got %v", sql, v)
		}
	}
	// NULL collapses to false at predicate boundaries.
	env, row := testEnv()
	e, _ := sqlparse.ParseExpr("n > 1")
	ok, err := env.EvalBool(e, row)
	if err != nil || ok {
		t.Errorf("EvalBool(NULL comparison) = %v, %v", ok, err)
	}
}

func TestEvalCase(t *testing.T) {
	if got := evalSQL(t, "CASE WHEN a > 3 THEN 'big' ELSE 'small' END").AsString(); got != "big" {
		t.Errorf("searched case: %q", got)
	}
	if got := evalSQL(t, "CASE a WHEN 4 THEN 'four' WHEN 5 THEN 'five' END").AsString(); got != "four" {
		t.Errorf("simple case: %q", got)
	}
	if v := evalSQL(t, "CASE WHEN a > 100 THEN 1 END"); !v.IsNull() {
		t.Errorf("no-match case should be NULL, got %v", v)
	}
}

func TestEvalScalarFunctions(t *testing.T) {
	cases := map[string]string{
		"ABS(-3)":                               "3",
		"UPPER(s)":                              "HELLO",
		"LOWER(s)":                              "hello",
		"LENGTH(s)":                             "5",
		"SUBSTR(s, 2, 3)":                       "ell",
		"COALESCE(n, a, 99)":                    "4",
		"NULLIF(a, 4)":                          "",
		"ROUND(b)":                              "3",
		"ROUND(2.345, 2)":                       "2.35",
		"FLOOR(b)":                              "2",
		"CEIL(b)":                               "3",
		"SQRT(4)":                               "2",
		"POWER(2, 3)":                           "8",
		"MOD(7, 3)":                             "1",
		"GREATEST(1, 5, 3)":                     "5",
		"LEAST(2, b, 9)":                        "2",
		"REPLACE(s, 'l', 'L')":                  "HeLLo",
		"CONCAT(s, '!', '?')":                   "Hello!?",
		"SIGN(-2.5)":                            "-1",
		"TRIM('  x  ')":                         "x",
		"YEAR(CAST('2016-03-15' AS TIMESTAMP))": "2016",
	}
	for sql, want := range cases {
		got := evalSQL(t, sql).AsString()
		if got != want {
			t.Errorf("%s = %q, want %q", sql, got, want)
		}
	}
	if _, err := CallScalar("NO_SUCH_FUNC", nil); err == nil {
		t.Error("unknown function should fail")
	}
}

func TestEvalErrors(t *testing.T) {
	env, row := testEnv()
	for _, sql := range []string{"missing_col + 1", "a / 0", "SUM(a)"} {
		e, err := sqlparse.ParseExpr(sql)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, err := env.Eval(e, row); err == nil {
			t.Errorf("%s should fail at evaluation", sql)
		}
	}
}

func TestResolveQualifiedAndAmbiguous(t *testing.T) {
	env := NewEnv([]InputColumn{
		{Qualifier: "A", Name: "ID", Kind: types.KindInt},
		{Qualifier: "B", Name: "ID", Kind: types.KindInt},
		{Qualifier: "B", Name: "V", Kind: types.KindFloat},
	})
	if _, err := env.Resolve(&sqlparse.ColumnRef{Name: "ID"}); err == nil {
		t.Error("unqualified ambiguous reference should fail")
	}
	idx, err := env.Resolve(&sqlparse.ColumnRef{Table: "B", Name: "ID"})
	if err != nil || idx != 1 {
		t.Errorf("qualified resolve = %d, %v", idx, err)
	}
	if _, err := env.Resolve(&sqlparse.ColumnRef{Table: "C", Name: "ID"}); err == nil {
		t.Error("unknown qualifier should fail")
	}
}

func TestOverrides(t *testing.T) {
	env, row := testEnv()
	agg, _ := sqlparse.ParseExpr("SUM(a)")
	env.Overrides = map[sqlparse.Expr]types.Value{agg: types.NewInt(42)}
	wrapped := &sqlparse.BinaryExpr{Op: sqlparse.OpAdd, Left: agg, Right: &sqlparse.Literal{Val: types.NewInt(1)}}
	v, err := env.Eval(wrapped, row)
	if err != nil || v.Int != 43 {
		t.Fatalf("override eval = %v, %v", v, err)
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"mississippi", "%iss%ppi", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestMatchLikeProperties(t *testing.T) {
	// Every string matches '%', and every string matches itself.
	f := func(s string) bool {
		return MatchLike(s, "%") && (strings.ContainsAny(s, "%_") || MatchLike(s, s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateStates(t *testing.T) {
	mk := func(name string, distinct bool) *AggState {
		s, err := NewAggState(&sqlparse.FuncCall{Name: name, Distinct: distinct})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sum := mk("SUM", false)
	for _, v := range []int64{1, 2, 3} {
		if err := sum.Add(types.NewInt(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sum.Add(types.Null()); err != nil {
		t.Fatal(err)
	}
	if got := sum.Result(); got.Int != 6 {
		t.Errorf("SUM = %v", got)
	}

	avg := mk("AVG", false)
	for _, v := range []float64{1, 2, 3, 4} {
		_ = avg.Add(types.NewFloat(v))
	}
	if got := avg.Result(); got.Float != 2.5 {
		t.Errorf("AVG = %v", got)
	}

	cnt := mk("COUNT", true)
	for _, v := range []int64{1, 1, 2, 2, 3} {
		_ = cnt.Add(types.NewInt(v))
	}
	if got := cnt.Result(); got.Int != 3 {
		t.Errorf("COUNT DISTINCT = %v", got)
	}

	mn, mx := mk("MIN", false), mk("MAX", false)
	for _, s := range []string{"b", "a", "c"} {
		_ = mn.Add(types.NewString(s))
		_ = mx.Add(types.NewString(s))
	}
	if mn.Result().Str != "a" || mx.Result().Str != "c" {
		t.Errorf("MIN/MAX = %v/%v", mn.Result(), mx.Result())
	}

	// Empty-group semantics: COUNT()=0, SUM()=NULL, AVG()=NULL.
	if mk("COUNT", false).Result().Int != 0 {
		t.Error("empty COUNT should be 0")
	}
	if !mk("SUM", false).Result().IsNull() {
		t.Error("empty SUM should be NULL")
	}
	if !mk("AVG", false).Result().IsNull() {
		t.Error("empty AVG should be NULL")
	}

	if _, err := NewAggState(&sqlparse.FuncCall{Name: "UPPER"}); err == nil {
		t.Error("non-aggregate should be rejected")
	}
}

// TestAggregateMergeProperty: merging partial SUM/COUNT/MIN/MAX states is
// equivalent to accumulating everything in one state (the invariant the
// accelerator's per-slice partial aggregation relies on).
func TestAggregateMergeProperty(t *testing.T) {
	f := func(xs []int16, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		cut := int(split) % len(xs)
		for _, fn := range []string{"SUM", "COUNT", "MIN", "MAX", "AVG"} {
			whole, _ := NewAggState(&sqlparse.FuncCall{Name: fn})
			left, _ := NewAggState(&sqlparse.FuncCall{Name: fn})
			right, _ := NewAggState(&sqlparse.FuncCall{Name: fn})
			for i, x := range xs {
				v := types.NewInt(int64(x))
				_ = whole.Add(v)
				if i < cut {
					_ = left.Add(v)
				} else {
					_ = right.Add(v)
				}
			}
			if err := left.Merge(right); err != nil {
				return false
			}
			if !types.Equal(whole.Result(), left.Result()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildInsertRows(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "A", Kind: types.KindInt},
		types.Column{Name: "B", Kind: types.KindString},
		types.Column{Name: "C", Kind: types.KindFloat},
	)
	exprs := [][]sqlparse.Expr{{
		&sqlparse.Literal{Val: types.NewInt(1)},
		&sqlparse.Literal{Val: types.NewString("x")},
	}}
	rows, err := BuildInsertRows([]string{"A", "B"}, exprs, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 1 || rows[0][1].Str != "x" || !rows[0][2].IsNull() {
		t.Fatalf("rows = %+v", rows)
	}
	if _, err := BuildInsertRows([]string{"A", "MISSING"}, exprs, schema); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := BuildInsertRows([]string{"A"}, exprs, schema); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestInferKind(t *testing.T) {
	env, _ := testEnv()
	cases := map[string]types.Kind{
		"a":                  types.KindInt,
		"a + 1":              types.KindInt,
		"a + b":              types.KindFloat,
		"a > 1":              types.KindBool,
		"s || 'x'":           types.KindString,
		"COUNT(*)":           types.KindInt,
		"AVG(a)":             types.KindFloat,
		"UPPER(s)":           types.KindString,
		"CAST(a AS VARCHAR)": types.KindString,
	}
	for sql, want := range cases {
		e, err := sqlparse.ParseExpr(sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := env.InferKind(e); got != want {
			t.Errorf("InferKind(%s) = %v, want %v", sql, got, want)
		}
	}
}
