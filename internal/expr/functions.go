package expr

import (
	"fmt"
	"math"
	"strings"
	"time"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// evalFunc dispatches non-aggregate scalar function calls. Aggregate functions
// reaching this path (outside GROUP BY handling) are an error; the engines
// evaluate them in their aggregation operators.
func (e *Env) evalFunc(n *sqlparse.FuncCall, row types.Row) (types.Value, error) {
	name := strings.ToUpper(n.Name)
	if n.IsAggregate() {
		return types.Null(), fmt.Errorf("expr: aggregate function %s used outside of an aggregation context", name)
	}
	args := make([]types.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := e.Eval(a, row)
		if err != nil {
			return types.Null(), err
		}
		args[i] = v
	}
	return CallScalar(name, args)
}

// CallScalar evaluates a builtin scalar function on already-evaluated
// arguments. It is exported so the accelerator's vectorised executor can call
// builtins directly on column chunks.
func CallScalar(name string, args []types.Value) (types.Value, error) {
	switch name {
	case "ABS":
		return numericUnary(name, args, func(f float64) float64 { return math.Abs(f) })
	case "SQRT":
		return floatUnary(name, args, math.Sqrt)
	case "LN", "LOG":
		return floatUnary(name, args, math.Log)
	case "EXP":
		return floatUnary(name, args, math.Exp)
	case "FLOOR":
		return numericUnary(name, args, math.Floor)
	case "CEIL", "CEILING":
		return numericUnary(name, args, math.Ceil)
	case "SIGN":
		if err := arity(name, args, 1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return types.Null(), fmt.Errorf("expr: SIGN requires a numeric argument")
		}
		switch {
		case f > 0:
			return types.NewInt(1), nil
		case f < 0:
			return types.NewInt(-1), nil
		default:
			return types.NewInt(0), nil
		}
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return types.Null(), fmt.Errorf("expr: ROUND takes 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return types.Null(), fmt.Errorf("expr: ROUND requires a numeric argument")
		}
		digits := int64(0)
		if len(args) == 2 && !args[1].IsNull() {
			digits, _ = args[1].AsInt()
		}
		scale := math.Pow(10, float64(digits))
		return types.NewFloat(math.Round(f*scale) / scale), nil
	case "POWER", "POW":
		if err := arity(name, args, 2); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null(), nil
		}
		a, aok := args[0].AsFloat()
		b, bok := args[1].AsFloat()
		if !aok || !bok {
			return types.Null(), fmt.Errorf("expr: POWER requires numeric arguments")
		}
		return types.NewFloat(math.Pow(a, b)), nil
	case "MOD":
		if err := arity(name, args, 2); err != nil {
			return types.Null(), err
		}
		return applyArithmetic(sqlparse.OpMod, args[0], args[1])

	case "UPPER", "UCASE":
		return stringUnary(name, args, strings.ToUpper)
	case "LOWER", "LCASE":
		return stringUnary(name, args, strings.ToLower)
	case "TRIM":
		return stringUnary(name, args, strings.TrimSpace)
	case "LENGTH":
		if err := arity(name, args, 1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		return types.NewInt(int64(len(args[0].AsString()))), nil
	case "SUBSTR", "SUBSTRING":
		return callSubstr(args)
	case "REPLACE":
		if err := arity(name, args, 3); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		return types.NewString(strings.ReplaceAll(args[0].AsString(), args[1].AsString(), args[2].AsString())), nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return types.Null(), nil
			}
			sb.WriteString(a.AsString())
		}
		return types.NewString(sb.String()), nil
	case "INSTR", "POSITION", "LOCATE":
		if err := arity(name, args, 2); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return types.Null(), nil
		}
		return types.NewInt(int64(strings.Index(args[0].AsString(), args[1].AsString()) + 1)), nil

	case "COALESCE", "IFNULL", "NVL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return types.Null(), nil
	case "NULLIF":
		if err := arity(name, args, 2); err != nil {
			return types.Null(), err
		}
		if !args[0].IsNull() && !args[1].IsNull() && types.Equal(args[0], args[1]) {
			return types.Null(), nil
		}
		return args[0], nil
	case "GREATEST":
		return extremum(args, 1)
	case "LEAST":
		return extremum(args, -1)

	case "NOW", "CURRENT_TIMESTAMP":
		return types.NewTimestamp(time.Now()), nil
	case "YEAR", "MONTH", "DAY", "HOUR", "MINUTE":
		if err := arity(name, args, 1); err != nil {
			return types.Null(), err
		}
		if args[0].IsNull() {
			return types.Null(), nil
		}
		ts, err := args[0].Cast(types.KindTimestamp)
		if err != nil {
			return types.Null(), err
		}
		t := ts.Time()
		switch name {
		case "YEAR":
			return types.NewInt(int64(t.Year())), nil
		case "MONTH":
			return types.NewInt(int64(t.Month())), nil
		case "DAY":
			return types.NewInt(int64(t.Day())), nil
		case "HOUR":
			return types.NewInt(int64(t.Hour())), nil
		default:
			return types.NewInt(int64(t.Minute())), nil
		}
	default:
		return types.Null(), fmt.Errorf("expr: unknown function %s", name)
	}
}

func arity(name string, args []types.Value, want int) error {
	if len(args) != want {
		return fmt.Errorf("expr: %s takes %d argument(s), got %d", name, want, len(args))
	}
	return nil
}

func numericUnary(name string, args []types.Value, fn func(float64) float64) (types.Value, error) {
	if err := arity(name, args, 1); err != nil {
		return types.Null(), err
	}
	v := args[0]
	if v.IsNull() {
		return types.Null(), nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return types.Null(), fmt.Errorf("expr: %s requires a numeric argument", name)
	}
	res := fn(f)
	if v.Kind == types.KindInt && res == math.Trunc(res) {
		return types.NewInt(int64(res)), nil
	}
	return types.NewFloat(res), nil
}

func floatUnary(name string, args []types.Value, fn func(float64) float64) (types.Value, error) {
	if err := arity(name, args, 1); err != nil {
		return types.Null(), err
	}
	if args[0].IsNull() {
		return types.Null(), nil
	}
	f, ok := args[0].AsFloat()
	if !ok {
		return types.Null(), fmt.Errorf("expr: %s requires a numeric argument", name)
	}
	return types.NewFloat(fn(f)), nil
}

func stringUnary(name string, args []types.Value, fn func(string) string) (types.Value, error) {
	if err := arity(name, args, 1); err != nil {
		return types.Null(), err
	}
	if args[0].IsNull() {
		return types.Null(), nil
	}
	return types.NewString(fn(args[0].AsString())), nil
}

func callSubstr(args []types.Value) (types.Value, error) {
	if len(args) < 2 || len(args) > 3 {
		return types.Null(), fmt.Errorf("expr: SUBSTR takes 2 or 3 arguments")
	}
	if args[0].IsNull() || args[1].IsNull() {
		return types.Null(), nil
	}
	s := args[0].AsString()
	start, _ := args[1].AsInt()
	if start < 1 {
		start = 1
	}
	if int(start) > len(s) {
		return types.NewString(""), nil
	}
	end := len(s)
	if len(args) == 3 && !args[2].IsNull() {
		length, _ := args[2].AsInt()
		if length < 0 {
			length = 0
		}
		if int(start-1)+int(length) < end {
			end = int(start-1) + int(length)
		}
	}
	return types.NewString(s[start-1 : end]), nil
}

func extremum(args []types.Value, dir int) (types.Value, error) {
	if len(args) == 0 {
		return types.Null(), fmt.Errorf("expr: GREATEST/LEAST require at least one argument")
	}
	best := types.Null()
	for _, a := range args {
		if a.IsNull() {
			return types.Null(), nil
		}
		if best.IsNull() {
			best = a
			continue
		}
		c, err := types.Compare(a, best)
		if err != nil {
			return types.Null(), err
		}
		if c*dir > 0 {
			best = a
		}
	}
	return best, nil
}
