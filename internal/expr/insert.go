package expr

import (
	"fmt"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// BuildInsertRows evaluates the VALUES lists of an INSERT statement into rows
// matching the target schema. A column list reorders/projects the values;
// omitted columns become NULL. The expressions must be constant (they are
// evaluated with an empty environment), which covers literals, arithmetic on
// literals and scalar function calls.
func BuildInsertRows(columns []string, valueRows [][]sqlparse.Expr, schema types.Schema) ([]types.Row, error) {
	env := NewEnv(nil)
	positions, err := insertPositions(columns, schema)
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, 0, len(valueRows))
	for _, exprs := range valueRows {
		if len(exprs) != len(positions) {
			return nil, fmt.Errorf("expr: INSERT has %d values for %d columns", len(exprs), len(positions))
		}
		row := make(types.Row, schema.Len())
		for i := range row {
			row[i] = types.Null()
		}
		for i, e := range exprs {
			v, err := env.Eval(e, nil)
			if err != nil {
				return nil, err
			}
			row[positions[i]] = v
		}
		out = append(out, row)
	}
	return out, nil
}

// MapSelectRows reorders rows produced by an INSERT ... SELECT source to match
// the target schema using the optional column list.
func MapSelectRows(columns []string, srcRows []types.Row, schema types.Schema) ([]types.Row, error) {
	if len(columns) == 0 {
		// Positional assignment; arity is validated per row later.
		return srcRows, nil
	}
	positions, err := insertPositions(columns, schema)
	if err != nil {
		return nil, err
	}
	out := make([]types.Row, len(srcRows))
	for ri, src := range srcRows {
		if len(src) != len(positions) {
			return nil, fmt.Errorf("expr: INSERT SELECT produced %d columns for %d target columns", len(src), len(positions))
		}
		row := make(types.Row, schema.Len())
		for i := range row {
			row[i] = types.Null()
		}
		for i, v := range src {
			row[positions[i]] = v
		}
		out[ri] = row
	}
	return out, nil
}

func insertPositions(columns []string, schema types.Schema) ([]int, error) {
	if len(columns) == 0 {
		positions := make([]int, schema.Len())
		for i := range positions {
			positions[i] = i
		}
		return positions, nil
	}
	positions := make([]int, len(columns))
	for i, c := range columns {
		idx := schema.IndexOf(c)
		if idx < 0 {
			return nil, fmt.Errorf("expr: INSERT references unknown column %s", c)
		}
		positions[i] = idx
	}
	return positions, nil
}
