package expr

import (
	"fmt"
	"math"
	"strings"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// AggState accumulates one aggregate function over a group of rows. Both the
// row engine and the accelerator use it so that aggregate semantics (NULL
// handling, DISTINCT, empty-group results) are identical on both sides.
type AggState struct {
	fn       string
	distinct bool
	seen     map[string]bool
	count    int64
	sum      float64
	sumSq    float64
	min      types.Value
	max      types.Value
	sawFloat bool
	sawValue bool
}

// NewAggState creates the accumulator for an aggregate function call.
func NewAggState(fc *sqlparse.FuncCall) (*AggState, error) {
	name := strings.ToUpper(fc.Name)
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE":
	default:
		return nil, fmt.Errorf("expr: %s is not an aggregate function", fc.Name)
	}
	s := &AggState{fn: name, distinct: fc.Distinct, min: types.Null(), max: types.Null()}
	if fc.Distinct {
		s.seen = make(map[string]bool)
	}
	return s, nil
}

// AddStar accumulates one row for COUNT(*).
func (s *AggState) AddStar() { s.count++ }

// Add accumulates one argument value. SQL semantics: NULLs are ignored by all
// aggregates; DISTINCT de-duplicates on the value.
func (s *AggState) Add(v types.Value) error {
	if v.IsNull() {
		return nil
	}
	if s.distinct {
		key := v.GroupKey()
		if s.seen[key] {
			return nil
		}
		s.seen[key] = true
	}
	s.sawValue = true
	s.count++
	switch s.fn {
	case "COUNT":
		return nil
	case "SUM", "AVG", "STDDEV", "VARIANCE":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("expr: %s requires numeric input, got %s", s.fn, v.Kind)
		}
		if v.Kind == types.KindFloat {
			s.sawFloat = true
		}
		s.sum += f
		s.sumSq += f * f
		return nil
	case "MIN":
		if s.min.IsNull() {
			s.min = v
			return nil
		}
		c, err := types.Compare(v, s.min)
		if err != nil {
			return err
		}
		if c < 0 {
			s.min = v
		}
		return nil
	case "MAX":
		if s.max.IsNull() {
			s.max = v
			return nil
		}
		c, err := types.Compare(v, s.max)
		if err != nil {
			return err
		}
		if c > 0 {
			s.max = v
		}
		return nil
	default:
		return fmt.Errorf("expr: unknown aggregate %s", s.fn)
	}
}

// Merge folds another accumulator of the same aggregate into s. The
// accelerator uses it to combine per-slice partial aggregates. DISTINCT
// aggregates merge their seen-sets, which keeps results exact.
func (s *AggState) Merge(o *AggState) error {
	if s.fn != o.fn {
		return fmt.Errorf("expr: cannot merge %s into %s", o.fn, s.fn)
	}
	if s.distinct {
		// Re-add distinct keys: counts/sums were only applied for unique values
		// in each partial state, so recompute by unioning the seen sets.
		for k := range o.seen {
			if !s.seen[k] {
				s.seen[k] = true
			}
		}
		// Recompute count from the union for COUNT(DISTINCT); SUM(DISTINCT) of
		// overlapping partitions is not supported by the engines (they hash-
		// partition groups so a distinct value lands in exactly one slice).
		s.count = int64(len(s.seen))
		s.sum += o.sum
		s.sumSq += o.sumSq
		s.sawValue = s.sawValue || o.sawValue
		s.sawFloat = s.sawFloat || o.sawFloat
		return nil
	}
	s.count += o.count
	s.sum += o.sum
	s.sumSq += o.sumSq
	s.sawValue = s.sawValue || o.sawValue
	s.sawFloat = s.sawFloat || o.sawFloat
	if !o.min.IsNull() {
		if err := s.mergeMin(o.min); err != nil {
			return err
		}
	}
	if !o.max.IsNull() {
		if err := s.mergeMax(o.max); err != nil {
			return err
		}
	}
	return nil
}

func (s *AggState) mergeMin(v types.Value) error {
	if s.min.IsNull() {
		s.min = v
		return nil
	}
	c, err := types.Compare(v, s.min)
	if err != nil {
		return err
	}
	if c < 0 {
		s.min = v
	}
	return nil
}

func (s *AggState) mergeMax(v types.Value) error {
	if s.max.IsNull() {
		s.max = v
		return nil
	}
	c, err := types.Compare(v, s.max)
	if err != nil {
		return err
	}
	if c > 0 {
		s.max = v
	}
	return nil
}

// Result returns the aggregate's final value.
func (s *AggState) Result() types.Value {
	switch s.fn {
	case "COUNT":
		return types.NewInt(s.count)
	case "SUM":
		if !s.sawValue {
			return types.Null()
		}
		if !s.sawFloat && s.sum == math.Trunc(s.sum) {
			return types.NewInt(int64(s.sum))
		}
		return types.NewFloat(s.sum)
	case "AVG":
		if s.count == 0 {
			return types.Null()
		}
		return types.NewFloat(s.sum / float64(s.count))
	case "MIN":
		return s.min
	case "MAX":
		return s.max
	case "VARIANCE":
		if s.count == 0 {
			return types.Null()
		}
		mean := s.sum / float64(s.count)
		return types.NewFloat(s.sumSq/float64(s.count) - mean*mean)
	case "STDDEV":
		if s.count == 0 {
			return types.Null()
		}
		mean := s.sum / float64(s.count)
		return types.NewFloat(math.Sqrt(math.Max(0, s.sumSq/float64(s.count)-mean*mean)))
	default:
		return types.Null()
	}
}
