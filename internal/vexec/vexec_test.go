package vexec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"idaax/internal/colstore"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// buildTable creates the differential table: every column kind, NULLs in
// every nullable column, enough rows to span batches, and deleted rows.
func buildTable(t *testing.T, n int) (*colstore.Table, colstore.Visibility) {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "GRP", Kind: types.KindInt},
		types.Column{Name: "CAT", Kind: types.KindString},
		types.Column{Name: "V", Kind: types.KindFloat},
		types.Column{Name: "FLAG", Kind: types.KindBool},
	)
	tab := colstore.NewTable("T", schema, "")
	rng := rand.New(rand.NewSource(42))
	rows := make([]types.Row, n)
	for i := range rows {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(rng.Intn(37))),
			types.NewString(fmt.Sprintf("c%d", rng.Intn(9))),
			types.NewFloat(float64(rng.Intn(2000))/8 - 50),
			types.NewBool(rng.Intn(2) == 0),
		}
		switch i % 19 {
		case 3:
			row[1] = types.Null()
		case 7:
			row[2] = types.Null()
		case 11:
			row[3] = types.Null()
		case 13:
			row[4] = types.Null()
		}
		rows[i] = row
	}
	if _, err := tab.Insert(1, rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 23 {
		tab.MarkDeleted(i, 2)
	}
	vis := func(created, deleted int64) bool { return created == 1 && deleted == 0 }
	return tab, vis
}

// rowPath executes sel the row-at-a-time way: materialize every visible row,
// then run the shared relational operators.
func rowPath(t *testing.T, tab *colstore.Table, vis colstore.Visibility, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	t.Helper()
	rows, _ := tab.ParallelScan(1, vis, nil)
	from := relalg.FromTable(sel.From[0].Name(), tab.Schema(), rows)
	return relalg.ExecuteSelect(from, sel, relalg.Options{Parallelism: 1})
}

// vecPath executes sel through the vectorized engine (plus the row remainder
// for non-aggregated plans), the way Accelerator.tryVectorized wires it.
func vecPath(t *testing.T, tab *colstore.Table, vis colstore.Visibility, sel *sqlparse.SelectStmt, slices int) (*relalg.Relation, error) {
	t.Helper()
	plan, ok := PlanQuery(sel, tab.Schema())
	if !ok {
		t.Fatalf("statement unexpectedly out of engine scope")
	}
	rel, _, err := plan.Run(tab, slices, vis)
	if err != nil {
		return nil, err
	}
	if plan.Aggregated() {
		return rel, nil
	}
	rest := *sel
	rest.Where = nil
	return relalg.ExecuteSelect(rel, &rest, relalg.Options{Parallelism: 1})
}

// fingerprint renders a relation as sorted row strings (column names
// included), so result comparison is order-insensitive where SQL gives no
// order guarantee.
func fingerprint(rel *relalg.Relation) string {
	var names []string
	for _, c := range rel.Cols {
		names = append(names, c.Name+":"+c.Kind.String())
	}
	lines := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.Kind.String() + "=" + v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	sort.Strings(lines)
	return strings.Join(names, ",") + "\n" + strings.Join(lines, "\n")
}

// differentialQueries is the unit-level statement corpus: filters of every
// vectorizable shape, residual fallbacks, grouping with every aggregate, NULL
// semantics, and empty results.
var differentialQueries = []string{
	// Plain scans and filters.
	"SELECT * FROM t",
	"SELECT id, v FROM t WHERE id > 900",
	"SELECT id FROM t WHERE v <= 12.5",
	"SELECT id FROM t WHERE v <> 0 AND id >= 10 AND id < 1000",
	"SELECT id FROM t WHERE 100 > id",
	"SELECT id FROM t WHERE cat = 'c3'",
	"SELECT id FROM t WHERE cat >= 'c7'",
	"SELECT id FROM t WHERE cat <> 'c1' AND v > 50",
	"SELECT id FROM t WHERE flag = TRUE",
	"SELECT id FROM t WHERE id BETWEEN 40 AND 90",
	"SELECT id FROM t WHERE v IS NULL",
	"SELECT id, cat FROM t WHERE cat IS NOT NULL AND v > 100",
	"SELECT id FROM t WHERE v IS NULL AND grp IS NOT NULL",
	// Residual conjuncts (IN, LIKE, OR, arithmetic) on top of vector filters.
	"SELECT id FROM t WHERE grp IN (1, 2, 3) AND id < 500",
	"SELECT id FROM t WHERE cat LIKE 'c%' AND v > 0",
	"SELECT id FROM t WHERE (grp = 1 OR grp = 2) AND v > 0",
	"SELECT id FROM t WHERE v * 2 > 300 AND id > 5",
	"SELECT id FROM t WHERE id = 99999",
	// Projection, DISTINCT, ORDER BY, LIMIT run above the vectorized filter.
	"SELECT DISTINCT cat FROM t WHERE v > 0",
	"SELECT id, v * 2 AS dbl FROM t WHERE id < 50 ORDER BY dbl DESC LIMIT 7",
	"SELECT id FROM t WHERE id < 300 ORDER BY id LIMIT 10 OFFSET 5",
	// Vectorized aggregation.
	"SELECT COUNT(*) FROM t",
	"SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
	"SELECT COUNT(*) FROM t WHERE id > 100000",
	"SELECT SUM(v), MIN(id), MAX(cat) FROM t WHERE v IS NOT NULL AND id > 200",
	"SELECT grp, COUNT(*) FROM t GROUP BY grp",
	"SELECT grp, cat, COUNT(*), SUM(v), AVG(v) FROM t GROUP BY grp, cat",
	"SELECT cat, MIN(v), MAX(v), MIN(cat), MAX(flag) FROM t GROUP BY cat",
	"SELECT grp, STDDEV(v), VARIANCE(v) FROM t WHERE id < 800 GROUP BY grp",
	"SELECT grp, COUNT(*) FROM t WHERE id > 100000 GROUP BY grp",
	"SELECT grp, COUNT(*), 42 FROM t GROUP BY grp",
	"SELECT flag, COUNT(*), SUM(id) FROM t GROUP BY flag",
	"SELECT grp, SUM(id) FROM t GROUP BY grp LIMIT 5",
	// Aggregation shapes that fall back to row operators above the
	// vectorized filter (HAVING, ORDER BY, DISTINCT aggs, expressions).
	"SELECT grp, COUNT(*) AS n FROM t GROUP BY grp HAVING COUNT(*) > 20 ORDER BY grp",
	"SELECT grp, COUNT(DISTINCT cat) FROM t GROUP BY grp ORDER BY grp",
	"SELECT grp, SUM(v) / COUNT(*) FROM t WHERE v > 0 GROUP BY grp ORDER BY grp",
	"SELECT grp + 1 AS g2, COUNT(*) FROM t GROUP BY grp + 1 ORDER BY g2",
}

// TestDifferentialVectorizedVsRow is the unit-level half of the differential
// suite: for every statement in the corpus the vectorized engine and the row
// engine must return identical result sets (rows, aggregates, NULLs, column
// names and kinds), at several batch-parallelism degrees.
func TestDifferentialVectorizedVsRow(t *testing.T) {
	tab, vis := buildTable(t, 2500)
	for _, q := range differentialQueries {
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sel := stmt.(*sqlparse.SelectStmt)
		want, wantErr := rowPath(t, tab, vis, sel)
		for _, slices := range []int{1, 4} {
			got, gotErr := vecPath(t, tab, vis, sel, slices)
			if (wantErr != nil) != (gotErr != nil) {
				t.Fatalf("%s (slices=%d): row err=%v, vec err=%v", q, slices, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if fp, gfp := fingerprint(want), fingerprint(got); fp != gfp {
				t.Fatalf("%s (slices=%d): result mismatch\nrow engine:\n%s\nvectorized:\n%s", q, slices, fp, gfp)
			}
		}
	}
}

// TestDifferentialEmptyRelation pins the zero-row edge cases: empty table,
// global aggregates over nothing, grouped aggregates over nothing.
func TestDifferentialEmptyRelation(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "GRP", Kind: types.KindInt},
		types.Column{Name: "CAT", Kind: types.KindString},
		types.Column{Name: "V", Kind: types.KindFloat},
		types.Column{Name: "FLAG", Kind: types.KindBool},
	)
	tab := colstore.NewTable("T", schema, "")
	vis := func(created, deleted int64) bool { return deleted == 0 }
	for _, q := range []string{
		"SELECT * FROM t",
		"SELECT id FROM t WHERE v > 10",
		"SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t",
		"SELECT grp, COUNT(*) FROM t GROUP BY grp",
	} {
		sel := mustParse(t, q)
		want, err := rowPath(t, tab, vis, sel)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := vecPath(t, tab, vis, sel, 2)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if fingerprint(want) != fingerprint(got) {
			t.Fatalf("%s: empty-relation mismatch\nrow:\n%s\nvec:\n%s", q, fingerprint(want), fingerprint(got))
		}
	}
}

// TestFilterPathPreservesOrder pins that the non-aggregated vectorized path
// returns rows in position order, exactly like the row scan — ORDER BY-less
// results are byte-identical, not just set-equal.
func TestFilterPathPreservesOrder(t *testing.T) {
	tab, vis := buildTable(t, 2500)
	for _, q := range []string{
		"SELECT * FROM t",
		"SELECT id, v FROM t WHERE v > 20 AND cat <> 'c4'",
		"SELECT id FROM t WHERE grp IN (2, 4) AND id < 2000",
	} {
		sel := mustParse(t, q)
		want, err := rowPath(t, tab, vis, sel)
		if err != nil {
			t.Fatal(err)
		}
		for _, slices := range []int{1, 3, 8} {
			got, err := vecPath(t, tab, vis, sel, slices)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Rows) != len(got.Rows) {
				t.Fatalf("%s: %d vs %d rows", q, len(want.Rows), len(got.Rows))
			}
			for i := range want.Rows {
				for j := range want.Rows[i] {
					if want.Rows[i][j].String() != got.Rows[i][j].String() {
						t.Fatalf("%s (slices=%d): order mismatch at row %d", q, slices, i)
					}
				}
			}
		}
	}
}

// TestPlanModes pins the eligibility classification EXPLAIN reports.
func TestPlanModes(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "CAT", Kind: types.KindString},
		types.Column{Name: "V", Kind: types.KindFloat},
	)
	cases := map[string]string{
		"SELECT * FROM t":                                     ModeScan,
		"SELECT * FROM t WHERE cat LIKE 'x%'":                 ModeScan,
		"SELECT id FROM t WHERE id > 5":                       ModeScanFilter,
		"SELECT id FROM t WHERE id > 5 AND cat LIKE 'x%'":     ModeScanFilter,
		"SELECT id FROM t WHERE cat IS NOT NULL":              ModeScanFilter,
		"SELECT COUNT(*) FROM t":                              ModeScanFilterAggregate,
		"SELECT cat, SUM(v) FROM t WHERE id > 5 GROUP BY cat": ModeScanFilterAggregate,
		// Aggregation declines (ORDER BY / DISTINCT agg / HAVING): the scan
		// and any vector filter still run batched, row aggregation above.
		"SELECT cat, SUM(v) FROM t GROUP BY cat ORDER BY cat":                 ModeScan,
		"SELECT cat, SUM(v) FROM t WHERE id > 5 GROUP BY cat ORDER BY cat":    ModeScanFilter,
		"SELECT cat, COUNT(DISTINCT id) FROM t WHERE id > 5 GROUP BY cat":     ModeScanFilter,
		"SELECT cat, SUM(v) FROM t WHERE id > 5 GROUP BY cat HAVING SUM(v)>0": ModeScanFilter,
	}
	for q, wantMode := range cases {
		sel := mustParse(t, q)
		plan, ok := PlanQuery(sel, schema)
		if !ok {
			t.Fatalf("%s: rejected", q)
		}
		if plan.Mode() != wantMode {
			t.Fatalf("%s: mode %s, want %s", q, plan.Mode(), wantMode)
		}
	}
	// Multi-table statements are out of scope entirely.
	if _, ok := PlanQuery(mustParse(t, "SELECT * FROM t, u WHERE t.id = u.id"), schema); ok {
		t.Fatal("join statement accepted by single-table engine")
	}
}

// TestIncomparableKindPredicates pins the engine's handling of comparisons
// types.Compare rejects (boolean column vs numeric literal, numeric column vs
// string literal, string column vs numeric BETWEEN bounds): the pushed
// predicate drops every row — matching the row engine, whose scan pushdown
// filters the same rows out before its WHERE re-evaluation could error.
func TestIncomparableKindPredicates(t *testing.T) {
	tab, vis := buildTable(t, 500)
	for _, q := range []string{
		"SELECT id FROM t WHERE flag = 1",
		"SELECT id FROM t WHERE v = TRUE",
		"SELECT id FROM t WHERE cat BETWEEN 1 AND 5",
		"SELECT id FROM t WHERE id < '200'",
		"SELECT COUNT(*) FROM t WHERE flag > 0",
	} {
		sel := mustParse(t, q)
		plan, ok := PlanQuery(sel, tab.Schema())
		if !ok {
			t.Fatalf("%s: rejected", q)
		}
		if plan.Mode() == ModeScan {
			t.Fatalf("%s: conjunct not pushed (mode %s)", q, plan.Mode())
		}
		got, err := vecPath(t, tab, vis, sel, 2)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		wantRows := 0
		if strings.HasPrefix(q, "SELECT COUNT(*)") {
			wantRows = 1 // empty global aggregate still yields one row
			if got.Rows[0][0].Int != 0 {
				t.Fatalf("%s: COUNT=%s, want 0", q, got.Rows[0][0])
			}
		}
		if len(got.Rows) != wantRows {
			t.Fatalf("%s: %d rows, want %d", q, len(got.Rows), wantRows)
		}
	}
}

func mustParse(t *testing.T, q string) *sqlparse.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return stmt.(*sqlparse.SelectStmt)
}
