// Package vexec is the vectorized (batch-at-a-time) execution engine of the
// accelerator, in the MonetDB/X100 style: data stays columnar from the storage
// segment to the aggregate. A statement the engine accepts executes as
//
//	ScanBatches -> vector predicates -> [residual row predicates] ->
//	    late materialization | vectorized hash aggregation
//
// Simple WHERE conjuncts ("col <op> literal", BETWEEN with literal bounds,
// IS [NOT] NULL) evaluate vector-at-a-time into the scan's selection vector
// with tight typed loops; remaining conjuncts are evaluated row-at-a-time but
// only for rows that already survived the vector filters, and only those rows
// are ever materialized as types.Row (late materialization). Grouped
// COUNT/SUM/AVG/MIN/MAX/STDDEV/VARIANCE aggregates accumulate straight off the
// column vectors under fixed-width binary group keys — no string key building
// and no row construction at all.
//
// Statements the engine cannot run entirely (joins, subqueries, DISTINCT or
// DISTINCT aggregates, HAVING, ORDER BY on the aggregate path, complex select
// lists) fall back transparently: either to "vectorized scan + filter, row
// operators above" or to the row engine outright. Every accepted plan returns
// exactly the rows, aggregates and NULL semantics of the row-at-a-time path;
// the differential test suite pins that equivalence.
package vexec

import (
	"strings"

	"idaax/internal/colstore"
	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// Execution modes reported to EXPLAIN and the accelerator's counters.
const (
	// ModeScan is a batch scan with late materialization but no vectorizable
	// predicate (everything, if anything, is residual).
	ModeScan = "scan"
	// ModeScanFilter adds vector predicate evaluation into the selection
	// vector; row operators run above the filtered relation.
	ModeScanFilter = "scan+filter"
	// ModeScanFilterAggregate runs the whole statement vectorized, including
	// hash aggregation with binary group keys.
	ModeScanFilterAggregate = "scan+filter+aggregate"
	// ModeJoin is a vectorized hash join (build and probe over column
	// batches, binary join keys); row operators run above the joined
	// relation.
	ModeJoin = "hash-join"
	// ModeJoinAggregate additionally folds grouping/aggregation into the
	// probe: no joined row is ever materialized.
	ModeJoinAggregate = "hash-join+aggregate"
)

// nullCheck is a vectorized IS [NOT] NULL conjunct.
type nullCheck struct {
	colIdx   int
	wantNull bool // true for IS NULL, false for IS NOT NULL
}

// Plan is an analyzed single-table statement accepted by the vectorized
// engine.
type Plan struct {
	item   sqlparse.FromItem
	schema types.Schema
	cols   []expr.InputColumn

	// preds are the exact vector conjuncts (they are also handed to the scan
	// for zone-map block pruning).
	preds      []colstore.SimplePredicate
	nullChecks []nullCheck
	// residual is the AND of the WHERE conjuncts that must run row-at-a-time,
	// in their original order; nil when the vector filters cover the WHERE
	// clause completely.
	residual sqlparse.Expr

	// agg is non-nil when grouping/aggregation runs vectorized too.
	agg *aggPlan
}

// PlanQuery analyzes a statement for vectorized execution against the given
// base-table schema. ok is false when the statement shape is out of scope
// (multiple FROM items or a subquery); the caller then uses the row path.
// An accepted plan always covers scan+filter; whether aggregation also runs
// vectorized is reported by Aggregated.
func PlanQuery(sel *sqlparse.SelectStmt, schema types.Schema) (*Plan, bool) {
	if sel == nil || len(sel.From) != 1 || sel.From[0].Subquery != nil {
		return nil, false
	}
	item := sel.From[0]
	p := &Plan{item: item, schema: schema, cols: qualifiedColumns(item.Name(), schema)}
	p.analyzeWhere(sel.Where)
	p.agg = analyzeAgg(sel, p)
	return p, true
}

// Aggregated reports whether the plan runs grouping/aggregation vectorized
// (in which case Run returns the final projected relation and the caller must
// not re-run WHERE/GROUP BY/projection).
func (p *Plan) Aggregated() bool { return p.agg != nil }

// Mode names the execution mode for EXPLAIN and counters.
func (p *Plan) Mode() string {
	switch {
	case p.agg != nil:
		return ModeScanFilterAggregate
	case len(p.preds) > 0 || len(p.nullChecks) > 0:
		return ModeScanFilter
	default:
		return ModeScan
	}
}

// Run executes the plan over the table under the visibility snapshot with the
// given scan parallelism. For an aggregated plan the result is the final
// projected relation (LIMIT/OFFSET applied); otherwise it is the filtered
// base relation — all table columns, qualified by the FROM item name, holding
// exactly the rows the row path's scan+Filter would produce, in the same
// order — and the caller runs the remaining operators with the WHERE clause
// stripped.
func (p *Plan) Run(t *colstore.Table, slices int, vis colstore.Visibility) (*relalg.Relation, colstore.ScanStats, error) {
	if p.agg != nil {
		return p.runAggregate(t, slices, vis)
	}
	return p.runFilter(t, slices, vis)
}

func (p *Plan) runFilter(t *colstore.Table, slices int, vis colstore.Visibility) (*relalg.Relation, colstore.ScanStats, error) {
	nw := max(slices, 1)
	buckets := make([][]types.Row, nw)
	var envs []*expr.Env
	if p.residual != nil {
		envs = make([]*expr.Env, nw)
		for i := range envs {
			envs[i] = expr.NewEnv(p.cols)
		}
	}
	stats, err := t.ScanBatches(slices, vis, p.preds, func(w int, b *colstore.Batch) error {
		sel := applyNullChecks(b, p.nullChecks)
		if len(sel) == 0 {
			return nil
		}
		if p.residual == nil {
			b.Sel = sel
			buckets[w] = b.Materialize(buckets[w])
			return nil
		}
		env := envs[w]
		for _, off := range sel {
			row := make(types.Row, len(b.Cols))
			for ci := range b.Cols {
				row[ci] = b.Cols[ci].Value(off)
			}
			ok, err := env.EvalBool(p.residual, row)
			if err != nil {
				return err
			}
			if ok {
				buckets[w] = append(buckets[w], row)
			}
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	total := 0
	for _, rows := range buckets {
		total += len(rows)
	}
	out := make([]types.Row, 0, total)
	for _, rows := range buckets {
		out = append(out, rows...)
	}
	return &relalg.Relation{Cols: p.cols, Rows: out}, stats, nil
}

// applyNullChecks compacts the batch's selection vector through the
// IS [NOT] NULL conjuncts.
func applyNullChecks(b *colstore.Batch, checks []nullCheck) []int {
	sel := b.Sel
	for _, c := range checks {
		nulls := b.Cols[c.colIdx].Nulls
		out := sel[:0]
		for _, i := range sel {
			if nulls[i] == c.wantNull {
				out = append(out, i)
			}
		}
		sel = out
		if len(sel) == 0 {
			break
		}
	}
	return sel
}

// ---------------------------------------------------------------------------
// WHERE analysis
// ---------------------------------------------------------------------------

// analyzeWhere splits the WHERE clause into vector conjuncts and the residual
// expression. It cannot fail: a conjunct that does not vectorize simply stays
// residual, where the shared row evaluator preserves its exact semantics
// (including evaluation errors, which the row path would raise too).
func (p *Plan) analyzeWhere(where sqlparse.Expr) {
	if where == nil {
		return
	}
	var residual []sqlparse.Expr
	for _, conj := range andConjuncts(where, nil) {
		if p.vectorizeConjunct(conj) {
			continue
		}
		residual = append(residual, conj)
	}
	p.residual = andAll(residual)
}

func andConjuncts(e sqlparse.Expr, acc []sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == sqlparse.OpAnd {
		acc = andConjuncts(b.Left, acc)
		return andConjuncts(b.Right, acc)
	}
	return append(acc, e)
}

func andAll(conjs []sqlparse.Expr) sqlparse.Expr {
	var out sqlparse.Expr
	for _, c := range conjs {
		if out == nil {
			out = c
			continue
		}
		out = &sqlparse.BinaryExpr{Op: sqlparse.OpAnd, Left: out, Right: c}
	}
	return out
}

// vectorizeConjunct converts one conjunct to vector form when it is an exact
// filter the predicate machinery can evaluate: a comparison between a column
// of this table and a non-NULL literal, a non-negated BETWEEN with literal
// bounds, or IS [NOT] NULL on a column. Kind-incompatible comparisons (e.g. a
// boolean column against a numeric literal) are pushed too: the vector
// fallback drops every row exactly like rowMatches, which is also what the
// row path's scan pushdown does before its WHERE re-evaluation could raise a
// comparison error — so both engines return the same (empty) result.
func (p *Plan) vectorizeConjunct(e sqlparse.Expr) bool {
	switch n := e.(type) {
	case *sqlparse.BinaryExpr:
		ref, lit, op, ok := SimpleComparison(n)
		if !ok {
			return false
		}
		ci := p.resolve(ref)
		if ci < 0 {
			return false
		}
		p.preds = append(p.preds, colstore.NewSimplePredicate(ci, op, lit))
		return true
	case *sqlparse.BetweenExpr:
		if n.Negate {
			return false
		}
		ref, ok := n.Operand.(*sqlparse.ColumnRef)
		if !ok {
			return false
		}
		lo, okLo := n.Low.(*sqlparse.Literal)
		hi, okHi := n.High.(*sqlparse.Literal)
		if !okLo || !okHi || lo.Val.IsNull() || hi.Val.IsNull() {
			return false
		}
		ci := p.resolve(ref)
		if ci < 0 {
			return false
		}
		p.preds = append(p.preds,
			colstore.NewSimplePredicate(ci, colstore.CmpGe, lo.Val),
			colstore.NewSimplePredicate(ci, colstore.CmpLe, hi.Val))
		return true
	case *sqlparse.IsNullExpr:
		ref, ok := n.Operand.(*sqlparse.ColumnRef)
		if !ok {
			return false
		}
		ci := p.resolve(ref)
		if ci < 0 {
			return false
		}
		p.nullChecks = append(p.nullChecks, nullCheck{colIdx: ci, wantNull: !n.Negate})
		return true
	default:
		return false
	}
}

// resolve maps a column reference onto the table schema (-1 when it does not
// belong to this FROM item).
func (p *Plan) resolve(ref *sqlparse.ColumnRef) int {
	if ref.Table != "" && !strings.EqualFold(ref.Table, p.item.Name()) {
		return -1
	}
	return p.schema.IndexOf(ref.Name)
}

// resolveCol and inputCols implement aggInput.
func (p *Plan) resolveCol(ref *sqlparse.ColumnRef) int { return p.resolve(ref) }
func (p *Plan) inputCols() []expr.InputColumn          { return p.cols }

// SimpleComparison recognises "col <op> literal" and "literal <op> col"
// comparisons with a non-NULL literal, normalising the latter by flipping the
// operator. It is the shared recognizer behind both this engine's vector
// conjuncts and the accelerator's scan pushdown.
func SimpleComparison(b *sqlparse.BinaryExpr) (*sqlparse.ColumnRef, types.Value, colstore.CompareOp, bool) {
	op, ok := CompareOpFor(b.Op)
	if !ok {
		return nil, types.Null(), 0, false
	}
	if ref, isRef := b.Left.(*sqlparse.ColumnRef); isRef {
		if lit, isLit := b.Right.(*sqlparse.Literal); isLit && !lit.Val.IsNull() {
			return ref, lit.Val, op, true
		}
	}
	if ref, isRef := b.Right.(*sqlparse.ColumnRef); isRef {
		if lit, isLit := b.Left.(*sqlparse.Literal); isLit && !lit.Val.IsNull() {
			return ref, lit.Val, FlipOp(op), true
		}
	}
	return nil, types.Null(), 0, false
}

// CompareOpFor maps a comparison AST operator onto the scan predicate op.
func CompareOpFor(op sqlparse.BinOp) (colstore.CompareOp, bool) {
	switch op {
	case sqlparse.OpEq:
		return colstore.CmpEq, true
	case sqlparse.OpNe:
		return colstore.CmpNe, true
	case sqlparse.OpLt:
		return colstore.CmpLt, true
	case sqlparse.OpLe:
		return colstore.CmpLe, true
	case sqlparse.OpGt:
		return colstore.CmpGt, true
	case sqlparse.OpGe:
		return colstore.CmpGe, true
	default:
		return 0, false
	}
}

// FlipOp mirrors a comparison operator for "literal <op> col" normalisation.
func FlipOp(op colstore.CompareOp) colstore.CompareOp {
	switch op {
	case colstore.CmpLt:
		return colstore.CmpGt
	case colstore.CmpLe:
		return colstore.CmpGe
	case colstore.CmpGt:
		return colstore.CmpLt
	case colstore.CmpGe:
		return colstore.CmpLe
	default:
		return op
	}
}

func qualifiedColumns(qualifier string, schema types.Schema) []expr.InputColumn {
	cols := make([]expr.InputColumn, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = expr.InputColumn{Qualifier: types.NormalizeName(qualifier), Name: c.Name, Kind: c.Kind}
	}
	return cols
}
