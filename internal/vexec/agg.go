package vexec

import (
	"math"
	"strings"

	"idaax/internal/colstore"
	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// outItem kinds.
const (
	itemGroupRef = iota
	itemAggregate
	itemLiteral
)

// outItem is one select-list entry of an aggregated plan.
type outItem struct {
	kind int
	pos  int         // groupIdxs position or aggs index
	lit  types.Value // itemLiteral payload
}

// aggSpec is one aggregate call of an aggregated plan.
type aggSpec struct {
	fn     string // COUNT, SUM, AVG, MIN, MAX, STDDEV, VARIANCE
	star   bool   // COUNT(*)
	colIdx int    // argument column (-1 for star)
	kind   types.Kind
}

// aggPlan describes a fully vectorized grouping/aggregation statement.
type aggPlan struct {
	groupIdxs []int
	aggs      []aggSpec
	items     []outItem
	outCols   []expr.InputColumn
	limit     int64
	offset    int64
}

// aggInput abstracts the column space analyzeAgg plans over: the single
// table of a Plan or the combined left+right columns of a JoinPlan. resolveCol
// maps a reference to its input column index (-1 for foreign or ambiguous
// references, which decline the aggregate plan — the row operators above then
// reproduce the row path's semantics, errors included).
type aggInput interface {
	resolveCol(ref *sqlparse.ColumnRef) int
	inputCols() []expr.InputColumn
}

// analyzeAgg decides whether grouping and aggregation run vectorized and
// builds the aggregate plan. It declines (returning nil, which keeps the
// vectorized scan+filter and row operators above it) whenever the statement
// needs semantics only the row engine implements: DISTINCT (statement or
// aggregate level), HAVING, ORDER BY, star items, group keys that are not
// bare columns, select items other than group columns / supported aggregates
// over bare columns / literals, or SUM-family aggregates over string columns
// (the row engine coerces numeric strings; the typed loops do not).
func analyzeAgg(sel *sqlparse.SelectStmt, p aggInput) *aggPlan {
	if !relalg.NeedsAggregation(sel) {
		return nil
	}
	if sel.Distinct || sel.Having != nil || len(sel.OrderBy) > 0 {
		return nil
	}
	ap := &aggPlan{limit: sel.Limit, offset: sel.Offset}
	for _, g := range sel.GroupBy {
		ref, ok := g.(*sqlparse.ColumnRef)
		if !ok {
			return nil
		}
		ci := p.resolveCol(ref)
		if ci < 0 {
			return nil
		}
		ap.groupIdxs = append(ap.groupIdxs, ci)
	}
	env := expr.NewEnv(p.inputCols())
	for i, item := range sel.Items {
		if item.Star {
			return nil
		}
		switch n := item.Expr.(type) {
		case *sqlparse.ColumnRef:
			ci := p.resolveCol(n)
			if ci < 0 {
				return nil
			}
			pos := -1
			for gi, gci := range ap.groupIdxs {
				if gci == ci {
					pos = gi
					break
				}
			}
			if pos < 0 {
				// References the group's representative row; the row engine
				// resolves that, the vectorized engine declines.
				return nil
			}
			ap.items = append(ap.items, outItem{kind: itemGroupRef, pos: pos})
		case *sqlparse.FuncCall:
			spec, ok := aggSpecFor(n, p)
			if !ok {
				return nil
			}
			ap.items = append(ap.items, outItem{kind: itemAggregate, pos: len(ap.aggs)})
			ap.aggs = append(ap.aggs, spec)
		case *sqlparse.Literal:
			ap.items = append(ap.items, outItem{kind: itemLiteral, lit: n.Val})
		default:
			return nil
		}
		name := item.Alias
		if name == "" {
			name = expr.OutputName(item.Expr, i)
		}
		ap.outCols = append(ap.outCols, expr.InputColumn{Name: types.NormalizeName(name), Kind: env.InferKind(item.Expr)})
	}
	return ap
}

func aggSpecFor(fc *sqlparse.FuncCall, p aggInput) (aggSpec, bool) {
	if !fc.IsAggregate() || fc.Distinct {
		return aggSpec{}, false
	}
	name := strings.ToUpper(fc.Name)
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE":
	default:
		return aggSpec{}, false
	}
	if fc.Star || len(fc.Args) == 0 {
		if name != "COUNT" {
			return aggSpec{}, false
		}
		return aggSpec{fn: name, star: true, colIdx: -1}, true
	}
	if len(fc.Args) != 1 {
		return aggSpec{}, false
	}
	ref, ok := fc.Args[0].(*sqlparse.ColumnRef)
	if !ok {
		return aggSpec{}, false
	}
	ci := p.resolveCol(ref)
	if ci < 0 {
		return aggSpec{}, false
	}
	kind := p.inputCols()[ci].Kind
	switch name {
	case "SUM", "AVG", "STDDEV", "VARIANCE":
		if kind == types.KindString {
			return aggSpec{}, false
		}
	}
	return aggSpec{fn: name, colIdx: ci, kind: kind}, true
}

// ---------------------------------------------------------------------------
// Typed accumulators (semantics mirror expr.AggState exactly)
// ---------------------------------------------------------------------------

// acc accumulates one aggregate for one group without boxing values. Sums
// accumulate as float64 like expr.AggState, so SUM over huge integers rounds
// identically on both engines.
type acc struct {
	count      int64
	sum, sumSq float64
	sawValue   bool
	sawFloat   bool
	minI, maxI int64
	minF, maxF float64
	minS, maxS string
	hasMinMax  bool
}

func (a *acc) addInt(fn string, v int64) {
	a.sawValue = true
	a.count++
	switch fn {
	case "SUM", "AVG", "STDDEV", "VARIANCE":
		f := float64(v)
		a.sum += f
		a.sumSq += f * f
	case "MIN", "MAX":
		if !a.hasMinMax {
			a.minI, a.maxI = v, v
			a.hasMinMax = true
			return
		}
		if v < a.minI {
			a.minI = v
		}
		if v > a.maxI {
			a.maxI = v
		}
	}
}

func (a *acc) addFloat(fn string, v float64) {
	a.sawValue = true
	a.count++
	switch fn {
	case "SUM", "AVG", "STDDEV", "VARIANCE":
		a.sawFloat = true
		a.sum += v
		a.sumSq += v * v
	case "MIN", "MAX":
		if !a.hasMinMax {
			a.minF, a.maxF = v, v
			a.hasMinMax = true
			return
		}
		if v < a.minF {
			a.minF = v
		}
		if v > a.maxF {
			a.maxF = v
		}
	}
}

func (a *acc) addStr(fn string, v string) {
	a.sawValue = true
	a.count++
	if fn != "MIN" && fn != "MAX" {
		return
	}
	if !a.hasMinMax {
		a.minS, a.maxS = v, v
		a.hasMinMax = true
		return
	}
	if v < a.minS {
		a.minS = v
	}
	if v > a.maxS {
		a.maxS = v
	}
}

func (a *acc) merge(o *acc, spec *aggSpec) {
	a.count += o.count
	a.sum += o.sum
	a.sumSq += o.sumSq
	a.sawValue = a.sawValue || o.sawValue
	a.sawFloat = a.sawFloat || o.sawFloat
	if !o.hasMinMax {
		return
	}
	if !a.hasMinMax {
		a.minI, a.maxI = o.minI, o.maxI
		a.minF, a.maxF = o.minF, o.maxF
		a.minS, a.maxS = o.minS, o.maxS
		a.hasMinMax = true
		return
	}
	switch spec.kind {
	case types.KindFloat:
		a.minF = math.Min(a.minF, o.minF)
		a.maxF = math.Max(a.maxF, o.maxF)
	case types.KindString:
		a.minS = min(a.minS, o.minS)
		a.maxS = max(a.maxS, o.maxS)
	default:
		a.minI = min(a.minI, o.minI)
		a.maxI = max(a.maxI, o.maxI)
	}
}

// result finalises the accumulator, matching expr.AggState.Result.
func (a *acc) result(spec *aggSpec) types.Value {
	switch spec.fn {
	case "COUNT":
		return types.NewInt(a.count)
	case "SUM":
		if !a.sawValue {
			return types.Null()
		}
		if !a.sawFloat && a.sum == math.Trunc(a.sum) {
			return types.NewInt(int64(a.sum))
		}
		return types.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return types.Null()
		}
		return types.NewFloat(a.sum / float64(a.count))
	case "MIN":
		return a.extreme(spec, true)
	case "MAX":
		return a.extreme(spec, false)
	case "VARIANCE":
		if a.count == 0 {
			return types.Null()
		}
		mean := a.sum / float64(a.count)
		return types.NewFloat(a.sumSq/float64(a.count) - mean*mean)
	case "STDDEV":
		if a.count == 0 {
			return types.Null()
		}
		mean := a.sum / float64(a.count)
		return types.NewFloat(math.Sqrt(math.Max(0, a.sumSq/float64(a.count)-mean*mean)))
	default:
		return types.Null()
	}
}

func (a *acc) extreme(spec *aggSpec, wantMin bool) types.Value {
	if !a.hasMinMax {
		return types.Null()
	}
	switch spec.kind {
	case types.KindFloat:
		if wantMin {
			return types.NewFloat(a.minF)
		}
		return types.NewFloat(a.maxF)
	case types.KindString:
		if wantMin {
			return types.NewString(a.minS)
		}
		return types.NewString(a.maxS)
	case types.KindTimestamp:
		if wantMin {
			return types.NewTimestampMicros(a.minI)
		}
		return types.NewTimestampMicros(a.maxI)
	case types.KindBool:
		if wantMin {
			return types.NewBool(a.minI != 0)
		}
		return types.NewBool(a.maxI != 0)
	default:
		if wantMin {
			return types.NewInt(a.minI)
		}
		return types.NewInt(a.maxI)
	}
}

// ---------------------------------------------------------------------------
// Vectorized hash aggregation
// ---------------------------------------------------------------------------

// group is one GROUP BY group: its binary key, the first-seen key values for
// the output row, and one accumulator per aggregate.
type group struct {
	key  string
	keys []types.Value
	accs []acc
}

// workerAgg is one scan worker's aggregation state.
type workerAgg struct {
	groups map[string]*group
	order  []*group
	env    *expr.Env
	keyBuf []byte
	gids   []*group
}

func (p *Plan) runAggregate(t *colstore.Table, slices int, vis colstore.Visibility) (*relalg.Relation, colstore.ScanStats, error) {
	ap := p.agg
	nw := max(slices, 1)
	workers := make([]*workerAgg, nw)
	for i := range workers {
		workers[i] = &workerAgg{groups: make(map[string]*group)}
		if p.residual != nil {
			workers[i].env = expr.NewEnv(p.cols)
		}
	}

	stats, err := t.ScanBatches(slices, vis, p.preds, func(wi int, b *colstore.Batch) error {
		w := workers[wi]
		sel := applyNullChecks(b, p.nullChecks)
		if p.residual != nil && len(sel) > 0 {
			out := sel[:0]
			row := make(types.Row, len(b.Cols))
			for _, off := range sel {
				for ci := range b.Cols {
					row[ci] = b.Cols[ci].Value(off)
				}
				ok, err := w.env.EvalBool(p.residual, row)
				if err != nil {
					return err
				}
				if ok {
					out = append(out, off)
				}
			}
			sel = out
		}
		if len(sel) == 0 {
			return nil
		}

		// Resolve each selected row to its group through the binary key.
		gids := w.gids[:0]
		for _, off := range sel {
			key := encodeGroupKey(w.keyBuf[:0], b, ap.groupIdxs, off)
			w.keyBuf = key
			g, ok := w.groups[string(key)]
			if !ok {
				g = &group{key: string(key), accs: make([]acc, len(ap.aggs))}
				if len(ap.groupIdxs) > 0 {
					g.keys = make([]types.Value, len(ap.groupIdxs))
					for k, ci := range ap.groupIdxs {
						g.keys[k] = b.Cols[ci].Value(off)
					}
				}
				w.groups[g.key] = g
				w.order = append(w.order, g)
			}
			gids = append(gids, g)
		}
		w.gids = gids

		for ai := range ap.aggs {
			accumulateVector(&ap.aggs[ai], ai, b, sel, gids)
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return finalizeGroups(ap, workers), stats, nil
}

// finalizeGroups merges worker partials in worker order (deterministic, like
// the row engine's parallel group merge — worker ranges are contiguous and
// ordered, so the merged order is first-occurrence order over the full row
// stream), synthesizes the single group of a global aggregate over zero rows,
// and projects the output relation with LIMIT/OFFSET applied. Shared by the
// single-table and join probes.
func finalizeGroups(ap *aggPlan, workers []*workerAgg) *relalg.Relation {
	merged := make(map[string]*group)
	var order []*group
	for _, w := range workers {
		if w == nil {
			continue
		}
		for _, g := range w.order {
			dst, ok := merged[g.key]
			if !ok {
				merged[g.key] = g
				order = append(order, g)
				continue
			}
			for ai := range dst.accs {
				dst.accs[ai].merge(&g.accs[ai], &ap.aggs[ai])
			}
		}
	}

	// A global aggregate over zero rows still yields one output row.
	if len(order) == 0 && len(ap.groupIdxs) == 0 {
		order = append(order, &group{accs: make([]acc, len(ap.aggs))})
	}

	out := &relalg.Relation{Cols: ap.outCols}
	out.Rows = make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, len(ap.items))
		for i, it := range ap.items {
			switch it.kind {
			case itemGroupRef:
				row[i] = g.keys[it.pos]
			case itemAggregate:
				row[i] = g.accs[it.pos].result(&ap.aggs[it.pos])
			default:
				row[i] = it.lit
			}
		}
		out.Rows = append(out.Rows, row)
	}
	applyLimit(out, ap.limit, ap.offset)
	return out
}

// accumulateVector folds one aggregate's argument column into the per-row
// groups with a typed loop over the selection vector.
func accumulateVector(spec *aggSpec, ai int, b *colstore.Batch, sel []int, gids []*group) {
	if spec.star {
		for _, g := range gids {
			g.accs[ai].count++ // COUNT(*) counts rows, NULLs included
		}
		return
	}
	v := b.Cols[spec.colIdx]
	switch {
	case v.Ints != nil:
		for j, off := range sel {
			if v.Nulls[off] {
				continue
			}
			gids[j].accs[ai].addInt(spec.fn, v.Ints[off])
		}
	case v.Floats != nil:
		for j, off := range sel {
			if v.Nulls[off] {
				continue
			}
			gids[j].accs[ai].addFloat(spec.fn, v.Floats[off])
		}
	default:
		for j, off := range sel {
			if v.Nulls[off] {
				continue
			}
			gids[j].accs[ai].addStr(spec.fn, v.Strs[off])
		}
	}
}

// encodeGroupKey appends a fixed-width binary encoding of the row's group key
// to buf: one tag byte per column (NULL keeps only the tag) followed by the
// 8-byte payload, with strings length-prefixed. Two rows encode equal keys
// exactly when the row engine's string GroupKey would group them together.
func encodeGroupKey(buf []byte, b *colstore.Batch, idxs []int, off int) []byte {
	for _, ci := range idxs {
		buf = appendGroupVal(buf, b.Cols[ci], off)
	}
	return buf
}

// appendGroupVal appends one column's group-key encoding for the row at off.
// The join probe shares it for left-side group columns (buildCol.appendGroupVal
// is its slot-side mirror).
func appendGroupVal(buf []byte, v colstore.Vector, off int) []byte {
	if v.Nulls[off] {
		return append(buf, 0x00)
	}
	switch {
	case v.Ints != nil:
		buf = append(buf, 0x01)
		return appendU64(buf, uint64(v.Ints[off]))
	case v.Floats != nil:
		f := v.Floats[off]
		if f == 0 {
			f = 0 // normalize -0.0 to +0.0, like GroupKey's integral formatting
		}
		if math.IsNaN(f) {
			f = math.NaN() // canonical NaN payload, like GroupKey's "NaN" text
		}
		buf = append(buf, 0x02)
		return appendU64(buf, math.Float64bits(f))
	default:
		s := v.Strs[off]
		buf = append(buf, 0x03)
		buf = appendU64(buf, uint64(len(s)))
		return append(buf, s...)
	}
}

func appendU64(buf []byte, u uint64) []byte {
	return append(buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// applyLimit mirrors the row engine's LIMIT/OFFSET application.
func applyLimit(rel *relalg.Relation, limit, offset int64) {
	if offset > 0 {
		if offset >= int64(len(rel.Rows)) {
			rel.Rows = nil
		} else {
			rel.Rows = rel.Rows[offset:]
		}
	}
	if limit >= 0 && int64(len(rel.Rows)) > limit {
		rel.Rows = rel.Rows[:limit]
	}
}
