package vexec

import (
	"math"

	"idaax/internal/colstore"
	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// Vectorized hash join: build and probe run over column batches straight from
// ScanBatches, with fixed-width binary join keys in reused buffers and late
// materialization — a combined types.Row exists only for rows that survive
// every vector filter and, in aggregate mode, not at all.
//
// The match relation replicates the row engine's hash join exactly. There a
// probe row matches a build row when (1) their GroupKey-encoded key strings
// are equal (the bucket pre-filter) and (2) the re-evaluated ON condition is
// true, which for the pure equi-conjunctions this engine accepts means
// types.Compare equality on every key pair. The binary key encoding below is
// equal on two rows precisely when both conditions hold, so one byte-string
// comparison replaces bucket walk plus row-at-a-time recheck:
//
//   - NULL keys never encode (a NULL never matches, exactly like the row
//     engine's joinKey bail-out);
//   - ints, timestamps and bools carry their GroupKey tag byte plus the
//     fixed-width value, so cross-kind pairs (tagged differently) never
//     match — just as their GroupKey buckets never collide;
//   - an integral float in int64 range encodes like the int of the same
//     value (the row engine buckets it by its decimal rendering and the
//     Compare recheck accepts the numeric cross-match); any other float
//     encodes as its bits with NaN canonicalized — bit-equality is exactly
//     the pairs the row engine's bucket+Compare combination accepts, since
//     types.Compare treats a NaN pair as equal;
//   - strings are length-prefixed, so multi-key concatenations cannot
//     collide; the row engine's \x1f-separated buckets can, but its Compare
//     recheck rejects exactly those collisions.
type JoinPlan struct {
	left  joinSide
	right joinSide
	jt    sqlparse.JoinType

	// cols is the combined output column space, left then right — the same
	// layout relalg.JoinWith produces.
	cols []expr.InputColumn

	// residual is the AND of the WHERE conjuncts that run row-at-a-time over
	// the combined row, in original order. Predicates pushed into the right
	// scan of a LEFT join stay here too: the push is a superset filter (it
	// can only turn matches into a NULL-padded row) and the re-application
	// rejects the padded row again, mirroring the row path's pushdown
	// contract.
	residual sqlparse.Expr

	agg *aggPlan
}

// joinSide is one input table of the join: its FROM item, schema, qualified
// columns, equi-key columns, and the scan-time filters pushed to it.
type joinSide struct {
	item       sqlparse.FromItem
	schema     types.Schema
	cols       []expr.InputColumn
	keys       []keyCol
	preds      []colstore.SimplePredicate
	nullChecks []nullCheck
}

// keyCol is one join-key column with its schema kind (the batch vector alone
// cannot distinguish int, timestamp and bool, but the key tag byte must).
type keyCol struct {
	idx  int
	kind types.Kind
}

// JoinStats separates the two scans of a join for tracing; Total sums them
// into the accelerator's counters.
type JoinStats struct {
	Build colstore.ScanStats
	Probe colstore.ScanStats
}

// Total combines both scans' statistics.
func (s JoinStats) Total() colstore.ScanStats {
	return colstore.ScanStats{
		VersionsConsidered: s.Build.VersionsConsidered + s.Probe.VersionsConsidered,
		BlocksPruned:       s.Build.BlocksPruned + s.Probe.BlocksPruned,
		RowsMaterialized:   s.Build.RowsMaterialized + s.Probe.RowsMaterialized,
		Batches:            s.Build.Batches + s.Probe.Batches,
	}
}

// PlanJoin analyzes a two-table statement for vectorized hash-join execution.
// ok is false when the shape is out of scope — anything but two plain tables,
// a join type other than INNER/LEFT, a forced nested loop, or an ON condition
// that is not a pure conjunction of one-column-per-side equalities — and the
// caller uses the row path. Like the row engine, a reference that resolves on
// both sides declines the plan: the row path raises the ambiguity error.
func PlanJoin(sel *sqlparse.SelectStmt, leftSchema, rightSchema types.Schema, method relalg.JoinMethod) (*JoinPlan, bool) {
	if sel == nil || len(sel.From) != 2 || sel.From[0].Subquery != nil || sel.From[1].Subquery != nil {
		return nil, false
	}
	jt := sel.From[1].Join
	if jt != sqlparse.JoinInner && jt != sqlparse.JoinLeft {
		return nil, false
	}
	if sel.From[1].On == nil || method == relalg.MethodNestedLoop {
		return nil, false
	}
	jp := &JoinPlan{
		left:  joinSide{item: sel.From[0], schema: leftSchema, cols: qualifiedColumns(sel.From[0].Name(), leftSchema)},
		right: joinSide{item: sel.From[1], schema: rightSchema, cols: qualifiedColumns(sel.From[1].Name(), rightSchema)},
		jt:    jt,
	}
	jp.cols = append(append([]expr.InputColumn(nil), jp.left.cols...), jp.right.cols...)
	if !jp.analyzeOn(sel.From[1].On) {
		return nil, false
	}
	jp.analyzeJoinWhere(sel.Where)
	jp.agg = analyzeAgg(sel, jp)
	return jp, true
}

// Aggregated reports whether grouping/aggregation runs inside the join probe
// (the result is then final and the caller must not re-run WHERE/GROUP BY).
func (jp *JoinPlan) Aggregated() bool { return jp.agg != nil }

// Mode names the execution mode for EXPLAIN and counters.
func (jp *JoinPlan) Mode() string {
	if jp.agg != nil {
		return ModeJoinAggregate
	}
	return ModeJoin
}

// analyzeOn accepts a pure conjunction of column equalities with exactly one
// column per side and records the key pairs.
func (jp *JoinPlan) analyzeOn(on sqlparse.Expr) bool {
	for _, conj := range andConjuncts(on, nil) {
		b, ok := conj.(*sqlparse.BinaryExpr)
		if !ok || b.Op != sqlparse.OpEq {
			return false
		}
		lref, lok := b.Left.(*sqlparse.ColumnRef)
		rref, rok := b.Right.(*sqlparse.ColumnRef)
		if !lok || !rok {
			return false
		}
		if !jp.addKeyPair(lref, rref) && !jp.addKeyPair(rref, lref) {
			return false
		}
	}
	return len(jp.left.keys) > 0
}

// addKeyPair records lref/rref as a left/right key pair when each reference
// resolves exclusively to its side.
func (jp *JoinPlan) addKeyPair(lref, rref *sqlparse.ColumnRef) bool {
	li := jp.left.resolve(lref)
	ri := jp.right.resolve(rref)
	if li < 0 || ri < 0 {
		return false
	}
	if jp.right.resolve(lref) >= 0 || jp.left.resolve(rref) >= 0 {
		return false
	}
	jp.left.keys = append(jp.left.keys, keyCol{idx: li, kind: jp.left.schema.Columns[li].Kind})
	jp.right.keys = append(jp.right.keys, keyCol{idx: ri, kind: jp.right.schema.Columns[ri].Kind})
	return true
}

func (s *joinSide) resolve(ref *sqlparse.ColumnRef) int {
	p := Plan{item: s.item, schema: s.schema}
	return p.resolve(ref)
}

// analyzeJoinWhere splits the WHERE clause into per-side scan filters and the
// residual row expression.
func (jp *JoinPlan) analyzeJoinWhere(where sqlparse.Expr) {
	if where == nil {
		return
	}
	var residual []sqlparse.Expr
	for _, conj := range andConjuncts(where, nil) {
		if jp.pushConjunct(conj) {
			continue
		}
		residual = append(residual, conj)
	}
	jp.residual = andAll(residual)
}

// pushConjunct pushes one WHERE conjunct into a side's scan. It returns true
// only when the push is exact (the conjunct need not re-run); a superset push
// (comparisons on the right side of a LEFT join, IN ranges) still appends
// scan predicates for zone-map pruning but returns false so the conjunct is
// re-applied as residual — the same contract as the row path's pushdown.
func (jp *JoinPlan) pushConjunct(e sqlparse.Expr) bool {
	switch n := e.(type) {
	case *sqlparse.BinaryExpr:
		ref, lit, op, ok := SimpleComparison(n)
		if !ok {
			return false
		}
		side, ci := jp.sideOf(ref)
		if side == nil {
			return false
		}
		side.preds = append(side.preds, colstore.NewSimplePredicate(ci, op, lit))
		return jp.exactSide(side)
	case *sqlparse.BetweenExpr:
		if n.Negate {
			return false
		}
		ref, ok := n.Operand.(*sqlparse.ColumnRef)
		if !ok {
			return false
		}
		lo, okLo := n.Low.(*sqlparse.Literal)
		hi, okHi := n.High.(*sqlparse.Literal)
		if !okLo || !okHi || lo.Val.IsNull() || hi.Val.IsNull() {
			return false
		}
		side, ci := jp.sideOf(ref)
		if side == nil {
			return false
		}
		side.preds = append(side.preds,
			colstore.NewSimplePredicate(ci, colstore.CmpGe, lo.Val),
			colstore.NewSimplePredicate(ci, colstore.CmpLe, hi.Val))
		return jp.exactSide(side)
	case *sqlparse.IsNullExpr:
		ref, ok := n.Operand.(*sqlparse.ColumnRef)
		if !ok {
			return false
		}
		side, ci := jp.sideOf(ref)
		if side == nil || !jp.exactSide(side) {
			// IS NULL accepts NULL rows, so a push into the padded side of a
			// LEFT join would not be a superset filter; keep it residual.
			return false
		}
		side.nullChecks = append(side.nullChecks, nullCheck{colIdx: ci, wantNull: !n.Negate})
		return true
	case *sqlparse.InExpr:
		if n.Negate || len(n.List) == 0 {
			return false
		}
		ref, ok := n.Operand.(*sqlparse.ColumnRef)
		if !ok {
			return false
		}
		var lo, hi types.Value
		for _, e := range n.List {
			lit, ok := e.(*sqlparse.Literal)
			if !ok {
				return false
			}
			if lit.Val.IsNull() {
				continue // IN (NULL, ...) never matches on NULL
			}
			if lo.IsNull() {
				lo, hi = lit.Val, lit.Val
				continue
			}
			if c, err := types.Compare(lit.Val, lo); err != nil {
				return false
			} else if c < 0 {
				lo = lit.Val
			}
			if c, err := types.Compare(lit.Val, hi); err != nil {
				return false
			} else if c > 0 {
				hi = lit.Val
			}
		}
		if lo.IsNull() {
			return false
		}
		if side, ci := jp.sideOf(ref); side != nil {
			// Range collapse is a superset of the IN list; always residual.
			side.preds = append(side.preds,
				colstore.NewSimplePredicate(ci, colstore.CmpGe, lo),
				colstore.NewSimplePredicate(ci, colstore.CmpLe, hi))
		}
		return false
	default:
		return false
	}
}

// exactSide reports whether predicates pushed into this side filter the join
// output exactly: true for the probe side and for the build side of an INNER
// join. On the build side of a LEFT join a dropped row can only turn matches
// into a NULL-padded row, which the residual re-application rejects again
// (pushed predicates never accept NULL).
func (jp *JoinPlan) exactSide(side *joinSide) bool {
	return side == &jp.left || jp.jt == sqlparse.JoinInner
}

// sideOf resolves a reference to exactly one side. Ambiguous or foreign
// references return nil: the conjunct stays residual, where the shared row
// evaluator raises the same error the row path would.
func (jp *JoinPlan) sideOf(ref *sqlparse.ColumnRef) (*joinSide, int) {
	li := jp.left.resolve(ref)
	ri := jp.right.resolve(ref)
	if li >= 0 && ri >= 0 {
		return nil, -1
	}
	if li >= 0 {
		return &jp.left, li
	}
	if ri >= 0 {
		return &jp.right, ri
	}
	return nil, -1
}

// resolveCol implements aggInput over the combined column space.
func (jp *JoinPlan) resolveCol(ref *sqlparse.ColumnRef) int {
	side, ci := jp.sideOf(ref)
	switch side {
	case &jp.left:
		return ci
	case &jp.right:
		return len(jp.left.schema.Columns) + ci
	default:
		return -1
	}
}

func (jp *JoinPlan) inputCols() []expr.InputColumn { return jp.cols }

// ---------------------------------------------------------------------------
// Binary join keys
// ---------------------------------------------------------------------------

// keyEnc encodes join keys, caching the encoded fragment per dictionary code
// for dictionary-encoded string key columns: the tag+length+bytes fragment is
// built once per distinct value and appended by int32 code thereafter.
type keyEnc struct {
	caches [][][]byte // per key position, indexed by dictionary code
}

func newKeyEnc(nkeys int) *keyEnc { return &keyEnc{caches: make([][][]byte, nkeys)} }

// appendKey appends the row's join-key encoding to buf; ok is false when any
// key column is NULL (a NULL key never matches, and for a LEFT join the row
// pads like any unmatched probe row).
func (e *keyEnc) appendKey(buf []byte, b *colstore.Batch, off int, keys []keyCol) ([]byte, bool) {
	for k, kc := range keys {
		v := b.Cols[kc.idx]
		if v.Nulls[off] {
			return buf, false
		}
		switch kc.kind {
		case types.KindInt:
			buf = append(buf, 0x01)
			buf = appendU64(buf, uint64(v.Ints[off]))
		case types.KindTimestamp:
			buf = append(buf, 0x05)
			buf = appendU64(buf, uint64(v.Ints[off]))
		case types.KindBool:
			buf = append(buf, 0x04, byte(v.Ints[off]&1))
		case types.KindFloat:
			buf = appendKeyFloat(buf, v.Floats[off])
		default:
			if v.Codes != nil {
				buf = append(buf, e.fragment(k, v, off)...)
				continue
			}
			s := v.Strs[off]
			buf = append(buf, 0x03)
			buf = appendU64(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf, true
}

// fragment returns the cached key fragment for a dictionary code, building it
// on first use. The dictionary is fixed for the whole scan, so the cache is
// sized once.
func (e *keyEnc) fragment(k int, v colstore.Vector, off int) []byte {
	cache := e.caches[k]
	if len(cache) < len(v.Dict) {
		grown := make([][]byte, len(v.Dict))
		copy(grown, cache)
		e.caches[k] = grown
		cache = grown
	}
	code := v.Codes[off]
	if cache[code] == nil {
		s := v.Dict[code]
		frag := make([]byte, 0, 9+len(s))
		frag = append(frag, 0x03)
		frag = appendU64(frag, uint64(len(s)))
		frag = append(frag, s...)
		cache[code] = frag
	}
	return cache[code]
}

// appendKeyFloat encodes a float join key. An integral float in int64 range
// takes the int encoding so it matches the int of the same value; everything
// else (including out-of-range integrals) encodes as its bits, where
// bit-equality coincides with the row engine's bucket+Compare match relation.
// -0.0 is integral and lands on the int path as 0; NaN is canonicalized
// because types.Compare, which the row engine rechecks with, reports a NaN
// pair as equal.
func appendKeyFloat(buf []byte, f float64) []byte {
	if f == math.Trunc(f) && !math.IsInf(f, 0) &&
		f >= -9223372036854775808.0 && f < 9223372036854775808.0 {
		buf = append(buf, 0x01)
		return appendU64(buf, uint64(int64(f)))
	}
	if math.IsNaN(f) {
		f = math.NaN()
	}
	buf = append(buf, 0x02)
	return appendU64(buf, math.Float64bits(f))
}

// ---------------------------------------------------------------------------
// Build side
// ---------------------------------------------------------------------------

// buildCol is one build-table column captured columnar during the build scan.
type buildCol struct {
	kind   types.Kind
	ints   []int64
	floats []float64
	strs   []string
	nulls  []bool
}

func (c *buildCol) appendRow(v colstore.Vector, off int) {
	c.nulls = append(c.nulls, v.Nulls[off])
	switch {
	case v.Ints != nil:
		c.ints = append(c.ints, v.Ints[off])
	case v.Floats != nil:
		c.floats = append(c.floats, v.Floats[off])
	default:
		c.strs = append(c.strs, v.Strs[off])
	}
}

func (c *buildCol) appendAll(o *buildCol) {
	c.ints = append(c.ints, o.ints...)
	c.floats = append(c.floats, o.floats...)
	c.strs = append(c.strs, o.strs...)
	c.nulls = append(c.nulls, o.nulls...)
}

func (c *buildCol) value(i int) types.Value {
	if c.nulls[i] {
		return types.Null()
	}
	switch c.kind {
	case types.KindInt:
		return types.NewInt(c.ints[i])
	case types.KindTimestamp:
		return types.NewTimestampMicros(c.ints[i])
	case types.KindBool:
		return types.NewBool(c.ints[i] != 0)
	case types.KindFloat:
		return types.NewFloat(c.floats[i])
	default:
		return types.NewString(c.strs[i])
	}
}

// appendGroupVal mirrors the vector-side appendGroupVal for build slots;
// i < 0 is the NULL-padded side of a LEFT join.
func (c *buildCol) appendGroupVal(buf []byte, i int) []byte {
	if i < 0 || c.nulls[i] {
		return append(buf, 0x00)
	}
	switch c.kind {
	case types.KindFloat:
		f := c.floats[i]
		if f == 0 {
			f = 0
		}
		if math.IsNaN(f) {
			f = math.NaN()
		}
		buf = append(buf, 0x02)
		return appendU64(buf, math.Float64bits(f))
	case types.KindString:
		s := c.strs[i]
		buf = append(buf, 0x03)
		buf = appendU64(buf, uint64(len(s)))
		return append(buf, s...)
	default:
		buf = append(buf, 0x01)
		return appendU64(buf, uint64(c.ints[i]))
	}
}

// accumulate folds the slot's value into one accumulator (NULLs and the
// padded slot contribute nothing, like expr.AggState).
func (c *buildCol) accumulate(a *acc, fn string, i int) {
	if i < 0 || c.nulls[i] {
		return
	}
	switch c.kind {
	case types.KindFloat:
		a.addFloat(fn, c.floats[i])
	case types.KindString:
		a.addStr(fn, c.strs[i])
	default:
		a.addInt(fn, c.ints[i])
	}
}

// buildChunk is one build-scan worker's columnar capture: values, plus each
// row's encoded key in a shared arena.
type buildChunk struct {
	cols    []buildCol
	keys    []byte
	offs    []int // offs[r]..offs[r+1] bound row r's key bytes
	nullKey []bool
	enc     *keyEnc
}

func newBuildChunk(schema types.Schema, nkeys int) *buildChunk {
	ch := &buildChunk{cols: make([]buildCol, len(schema.Columns)), offs: []int{0}, enc: newKeyEnc(nkeys)}
	for ci := range ch.cols {
		ch.cols[ci].kind = schema.Columns[ci].Kind
	}
	return ch
}

// hashTable is the assembled hash table: columnar build values plus bucket
// chains in build-row position order, so probe matches emit in the same order
// as the row engine's bucket lists.
type hashTable struct {
	cols []buildCol
	n    int
	idOf map[string]int32 // encoded key -> bucket id
	head []int32          // bucket id -> first slot
	tail []int32
	next []int32 // slot -> next slot of the same bucket, -1 ends
}

func (jp *JoinPlan) buildRight(t *colstore.Table, slices int, vis colstore.Visibility) (*hashTable, colstore.ScanStats, error) {
	nw := max(slices, 1)
	chunks := make([]*buildChunk, nw)
	stats, err := t.ScanBatches(slices, vis, jp.right.preds, func(w int, b *colstore.Batch) error {
		ch := chunks[w]
		if ch == nil {
			ch = newBuildChunk(jp.right.schema, len(jp.right.keys))
			chunks[w] = ch
		}
		sel := applyNullChecks(b, jp.right.nullChecks)
		for _, off := range sel {
			for ci := range ch.cols {
				ch.cols[ci].appendRow(b.Cols[ci], off)
			}
			start := len(ch.keys)
			key, ok := ch.enc.appendKey(ch.keys, b, off, jp.right.keys)
			if !ok {
				key = key[:start]
			}
			ch.keys = key
			ch.nullKey = append(ch.nullKey, !ok)
			ch.offs = append(ch.offs, len(ch.keys))
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	bt := &hashTable{cols: make([]buildCol, len(jp.right.schema.Columns)), idOf: make(map[string]int32)}
	for ci := range bt.cols {
		bt.cols[ci].kind = jp.right.schema.Columns[ci].Kind
	}
	total := 0
	for _, ch := range chunks {
		if ch != nil {
			total += len(ch.nullKey)
		}
	}
	bt.next = make([]int32, 0, total)
	// Concatenate chunks in worker order (= build-row position order) and
	// chain slots serially, so every bucket lists its rows in position order.
	slot := int32(0)
	for _, ch := range chunks {
		if ch == nil {
			continue
		}
		for ci := range bt.cols {
			bt.cols[ci].appendAll(&ch.cols[ci])
		}
		for r := range ch.nullKey {
			bt.next = append(bt.next, -1)
			if ch.nullKey[r] {
				slot++
				continue
			}
			key := ch.keys[ch.offs[r]:ch.offs[r+1]]
			id, ok := bt.idOf[string(key)]
			if !ok {
				id = int32(len(bt.head))
				bt.idOf[string(key)] = id
				bt.head = append(bt.head, slot)
				bt.tail = append(bt.tail, slot)
			} else {
				bt.next[bt.tail[id]] = slot
				bt.tail[id] = slot
			}
			slot++
		}
	}
	bt.n = int(slot)
	return bt, stats, nil
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

// Run executes the join: build over the right table, then probe over the
// left, both under the same visibility snapshot. For an aggregated plan the
// result is the final projected relation; otherwise it is the joined relation
// with the WHERE clause fully applied, in the row engine's output order, and
// the caller runs the remaining operators with WHERE stripped.
func (jp *JoinPlan) Run(lt, rt *colstore.Table, slices int, vis colstore.Visibility) (*relalg.Relation, JoinStats, error) {
	var js JoinStats
	bt, bstats, err := jp.buildRight(rt, slices, vis)
	js.Build = bstats
	if err != nil {
		return nil, js, err
	}
	var rel *relalg.Relation
	if jp.agg != nil {
		rel, js.Probe, err = jp.probeAggregate(lt, bt, slices, vis)
	} else {
		rel, js.Probe, err = jp.probeMaterialize(lt, bt, slices, vis)
	}
	if err != nil {
		return nil, js, err
	}
	return rel, js, nil
}

// probe walks the left scan and calls emit for every joined pair: (off, slot)
// per bucket match in build order, or slot -1 once for an unmatched probe row
// of a LEFT join.
func (jp *JoinPlan) probe(t *colstore.Table, bt *hashTable, slices int, vis colstore.Visibility,
	emit func(w int, b *colstore.Batch, off, slot int) error) (colstore.ScanStats, error) {
	nw := max(slices, 1)
	encs := make([]*keyEnc, nw)
	bufs := make([][]byte, nw)
	return t.ScanBatches(slices, vis, jp.left.preds, func(w int, b *colstore.Batch) error {
		if encs[w] == nil {
			encs[w] = newKeyEnc(len(jp.left.keys))
		}
		sel := applyNullChecks(b, jp.left.nullChecks)
		for _, off := range sel {
			key, ok := encs[w].appendKey(bufs[w][:0], b, off, jp.left.keys)
			bufs[w] = key
			matched := false
			if ok {
				if id, found := bt.idOf[string(key)]; found {
					for s := bt.head[id]; s >= 0; s = bt.next[s] {
						matched = true
						if err := emit(w, b, off, int(s)); err != nil {
							return err
						}
					}
				}
			}
			if !matched && jp.jt == sqlparse.JoinLeft {
				if err := emit(w, b, off, -1); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// combineRow materializes one joined row; slot < 0 NULL-pads the right side.
func (jp *JoinPlan) combineRow(b *colstore.Batch, off int, bt *hashTable, slot int) types.Row {
	nl := len(jp.left.schema.Columns)
	row := make(types.Row, len(jp.cols))
	for ci := 0; ci < nl; ci++ {
		row[ci] = b.Cols[ci].Value(off)
	}
	for ci := range bt.cols {
		if slot < 0 {
			row[nl+ci] = types.Null()
		} else {
			row[nl+ci] = bt.cols[ci].value(slot)
		}
	}
	return row
}

func (jp *JoinPlan) probeMaterialize(t *colstore.Table, bt *hashTable, slices int, vis colstore.Visibility) (*relalg.Relation, colstore.ScanStats, error) {
	nw := max(slices, 1)
	buckets := make([][]types.Row, nw)
	envs := make([]*expr.Env, nw)
	stats, err := jp.probe(t, bt, slices, vis, func(w int, b *colstore.Batch, off, slot int) error {
		row := jp.combineRow(b, off, bt, slot)
		if jp.residual != nil {
			if envs[w] == nil {
				envs[w] = expr.NewEnv(jp.cols)
			}
			ok, err := envs[w].EvalBool(jp.residual, row)
			if err != nil || !ok {
				return err
			}
		}
		buckets[w] = append(buckets[w], row)
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	total := 0
	for _, rows := range buckets {
		total += len(rows)
	}
	out := make([]types.Row, 0, total)
	for _, rows := range buckets {
		out = append(out, rows...)
	}
	return &relalg.Relation{Cols: jp.cols, Rows: out}, stats, nil
}

func (jp *JoinPlan) probeAggregate(t *colstore.Table, bt *hashTable, slices int, vis colstore.Visibility) (*relalg.Relation, colstore.ScanStats, error) {
	ap := jp.agg
	nl := len(jp.left.schema.Columns)
	nw := max(slices, 1)
	workers := make([]*workerAgg, nw)
	for i := range workers {
		workers[i] = &workerAgg{groups: make(map[string]*group)}
		if jp.residual != nil {
			workers[i].env = expr.NewEnv(jp.cols)
		}
	}
	stats, err := jp.probe(t, bt, slices, vis, func(wi int, b *colstore.Batch, off, slot int) error {
		w := workers[wi]
		if jp.residual != nil {
			keep, err := w.env.EvalBool(jp.residual, jp.combineRow(b, off, bt, slot))
			if err != nil || !keep {
				return err
			}
		}

		key := w.keyBuf[:0]
		for _, ci := range ap.groupIdxs {
			if ci < nl {
				key = appendGroupVal(key, b.Cols[ci], off)
			} else {
				key = bt.cols[ci-nl].appendGroupVal(key, slot)
			}
		}
		w.keyBuf = key
		g, ok := w.groups[string(key)]
		if !ok {
			g = &group{key: string(key), accs: make([]acc, len(ap.aggs))}
			if len(ap.groupIdxs) > 0 {
				g.keys = make([]types.Value, len(ap.groupIdxs))
				for k, ci := range ap.groupIdxs {
					switch {
					case ci < nl:
						g.keys[k] = b.Cols[ci].Value(off)
					case slot < 0:
						g.keys[k] = types.Null()
					default:
						g.keys[k] = bt.cols[ci-nl].value(slot)
					}
				}
			}
			w.groups[g.key] = g
			w.order = append(w.order, g)
		}

		for ai := range ap.aggs {
			spec := &ap.aggs[ai]
			a := &g.accs[ai]
			if spec.star {
				a.count++ // COUNT(*) counts joined rows, padded ones included
				continue
			}
			if spec.colIdx < nl {
				v := b.Cols[spec.colIdx]
				if v.Nulls[off] {
					continue
				}
				switch {
				case v.Ints != nil:
					a.addInt(spec.fn, v.Ints[off])
				case v.Floats != nil:
					a.addFloat(spec.fn, v.Floats[off])
				default:
					a.addStr(spec.fn, v.Strs[off])
				}
			} else {
				bt.cols[spec.colIdx-nl].accumulate(a, spec.fn, slot)
			}
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return finalizeGroups(ap, workers), stats, nil
}
