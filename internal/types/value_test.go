package types

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindFromName(t *testing.T) {
	cases := map[string]Kind{
		"BIGINT": KindInt, "integer": KindInt, "SMALLINT": KindInt,
		"DOUBLE": KindFloat, "decimal": KindFloat,
		"VARCHAR": KindString, "char": KindString,
		"BOOLEAN": KindBool, "TIMESTAMP": KindTimestamp, "DATE": KindTimestamp,
	}
	for name, want := range cases {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindFromName("BLOB5"); err == nil {
		t.Error("expected error for unknown type name")
	}
}

func TestValueConstructorsAndCoercion(t *testing.T) {
	if v := NewInt(42); v.Kind != KindInt || v.Int != 42 {
		t.Errorf("NewInt: %+v", v)
	}
	if f, ok := NewInt(7).AsFloat(); !ok || f != 7 {
		t.Errorf("AsFloat(int) = %v, %v", f, ok)
	}
	if i, ok := NewFloat(3.9).AsInt(); !ok || i != 3 {
		t.Errorf("AsInt(3.9) = %v, %v", i, ok)
	}
	if i, ok := NewString(" 12 ").AsInt(); !ok || i != 12 {
		t.Errorf("AsInt(' 12 ') = %v, %v", i, ok)
	}
	if b, ok := NewString("yes").AsBool(); !ok || !b {
		t.Errorf("AsBool('yes') = %v, %v", b, ok)
	}
	if _, ok := NewString("maybe").AsBool(); ok {
		t.Error("AsBool('maybe') should fail")
	}
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
	if Null().String() != "NULL" {
		t.Errorf("Null renders as %q", Null().String())
	}
}

func TestCast(t *testing.T) {
	v, err := NewString("3.5").Cast(KindFloat)
	if err != nil || v.Float != 3.5 {
		t.Fatalf("cast string->float: %v %v", v, err)
	}
	v, err = NewFloat(2.0).Cast(KindInt)
	if err != nil || v.Int != 2 {
		t.Fatalf("cast float->int: %v %v", v, err)
	}
	if _, err := NewString("abc").Cast(KindInt); err == nil {
		t.Fatal("cast 'abc'->int should fail")
	}
	n, err := Null().Cast(KindInt)
	if err != nil || !n.IsNull() {
		t.Fatalf("NULL cast should stay NULL: %v %v", n, err)
	}
	ts, err := NewString("2016-03-15 10:30:00").Cast(KindTimestamp)
	if err != nil {
		t.Fatalf("timestamp cast: %v", err)
	}
	if ts.Time().Year() != 2016 || ts.Time().Month() != time.March {
		t.Fatalf("unexpected timestamp %v", ts.Time())
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{Null(), NewInt(1), -1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Error("comparing string with int should fail")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, err1 := Compare(x, y)
		c2, err2 := Compare(y, x)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashEqualityProperty(t *testing.T) {
	// Equal values must hash identically; ints and integral floats agree for
	// ints that survive the float64 round trip.
	f := func(n int32) bool {
		v := int64(n)
		return NewInt(v).Hash() == NewFloat(float64(v)).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = math.Trunc
	g := func(s string) bool {
		return NewString(s).Hash() == NewString(s).Hash()
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupKeyDistinguishesKinds(t *testing.T) {
	keys := map[string]bool{}
	values := []Value{Null(), NewInt(0), NewFloat(0.5), NewString("0"), NewBool(false), NewTimestampMicros(0)}
	for _, v := range values {
		k := v.GroupKey()
		if keys[k] {
			t.Errorf("group key collision for %v", v)
		}
		keys[k] = true
	}
	// Int and integral float share a group key on purpose (numeric GROUP BY).
	if NewInt(3).GroupKey() != NewFloat(3).GroupKey() {
		t.Error("int 3 and float 3.0 should share a group key")
	}
}

func TestSchemaOperations(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", Kind: KindInt, NotNull: true},
		Column{Name: "Name", Kind: KindString},
	)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.IndexOf("NAME") != 1 || s.IndexOf("name") != 1 {
		t.Error("IndexOf should be case-insensitive")
	}
	if s.IndexOf("missing") != -1 {
		t.Error("IndexOf missing should be -1")
	}
	col, ok := s.Column("ID")
	if !ok || col.Kind != KindInt || !col.NotNull {
		t.Errorf("Column(ID) = %+v, %v", col, ok)
	}
	if !s.Equal(s) {
		t.Error("schema should equal itself")
	}
	other := NewSchema(Column{Name: "id", Kind: KindFloat})
	if s.Equal(other) {
		t.Error("different schemas should not be equal")
	}
}

func TestValidateRow(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", Kind: KindInt, NotNull: true},
		Column{Name: "v", Kind: KindFloat},
	)
	row, err := ValidateRow(s, Row{NewString("5"), NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if row[0].Kind != KindInt || row[0].Int != 5 {
		t.Errorf("coercion failed: %+v", row[0])
	}
	if row[1].Kind != KindFloat || row[1].Float != 2 {
		t.Errorf("coercion failed: %+v", row[1])
	}
	if _, err := ValidateRow(s, Row{Null(), NewFloat(1)}); err == nil {
		t.Error("NULL in NOT NULL column should fail")
	}
	if _, err := ValidateRow(s, Row{NewInt(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := ValidateRow(s, Row{NewString("x"), NewFloat(1)}); err == nil {
		t.Error("uncoercible value should fail")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int != 1 {
		t.Error("clone should not share storage")
	}
}

func TestParseTimestampFormats(t *testing.T) {
	good := []string{"2016-03-15", "2016-03-15 10:11:12", "2016-03-15 10:11:12.000001"}
	for _, s := range good {
		if _, err := ParseTimestamp(s); err != nil {
			t.Errorf("ParseTimestamp(%q): %v", s, err)
		}
	}
	if _, err := ParseTimestamp("not a date"); err == nil {
		t.Error("expected error")
	}
}
