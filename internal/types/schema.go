package types

import (
	"fmt"
	"strings"
)

// Column describes one column of a table or intermediate result.
type Column struct {
	// Name is the column name as stored in the catalog (upper-cased, like DB2).
	Name string
	// Kind is the column's value kind.
	Kind Kind
	// NotNull marks columns declared NOT NULL; enforced on INSERT/UPDATE.
	NotNull bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns, normalising names to upper case.
func NewSchema(cols ...Column) Schema {
	out := make([]Column, len(cols))
	for i, c := range cols {
		c.Name = NormalizeName(c.Name)
		out[i] = c
	}
	return Schema{Columns: out}
}

// NormalizeName upper-cases an identifier the way DB2 folds unquoted names.
func NormalizeName(name string) string { return strings.ToUpper(strings.TrimSpace(name)) }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// IndexOf returns the position of the named column or -1.
func (s Schema) IndexOf(name string) int {
	name = NormalizeName(name)
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the column definition for name.
func (s Schema) Column(name string) (Column, bool) {
	i := s.IndexOf(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Columns[i], true
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Equal reports whether two schemas have identical column names and kinds.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i].Name != o.Columns[i].Name || s.Columns[i].Kind != o.Columns[i].Kind {
			return false
		}
	}
	return true
}

// String renders the schema as "(NAME KIND, ...)" for diagnostics.
func (s Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		nn := ""
		if c.NotNull {
			nn = " NOT NULL"
		}
		parts[i] = fmt.Sprintf("%s %s%s", c.Name, c.Kind, nn)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Row is a single tuple. The i-th value corresponds to the i-th schema column.
type Row []Value

// Clone returns a deep-enough copy of the row (values are value types).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// ValidateRow checks arity, NOT NULL constraints and coerces values to the
// schema's column kinds. It returns the coerced row.
func ValidateRow(s Schema, r Row) (Row, error) {
	if len(r) != len(s.Columns) {
		return nil, fmt.Errorf("types: row has %d values, table has %d columns", len(r), len(s.Columns))
	}
	out := make(Row, len(r))
	for i, v := range r {
		col := s.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return nil, fmt.Errorf("types: NULL value for NOT NULL column %s", col.Name)
			}
			out[i] = Null()
			continue
		}
		cv, err := v.Cast(col.Kind)
		if err != nil {
			return nil, fmt.Errorf("types: column %s: %w", col.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}
