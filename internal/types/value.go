// Package types defines the value model shared by the DB2 row engine and the
// accelerator columnar engine: SQL values, column kinds, rows and schemas.
//
// Values are represented as a small tagged struct rather than interface{} so
// that large intermediate results (the accelerator routinely materialises
// millions of rows) do not incur one heap allocation per datum.
package types

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the column types supported by the engines. The set mirrors
// the types the paper's workloads need: numeric measures, categorical strings,
// booleans and timestamps.
type Kind uint8

const (
	// KindNull is the type of the SQL NULL literal before coercion.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer (DB2 BIGINT/INTEGER/SMALLINT).
	KindInt
	// KindFloat is a 64-bit IEEE float (DB2 DOUBLE/DECFLOAT approximation).
	KindFloat
	// KindString is a variable-length character string (VARCHAR).
	KindString
	// KindBool is a boolean (DB2 BOOLEAN).
	KindBool
	// KindTimestamp is a timestamp stored as microseconds since the Unix epoch.
	KindTimestamp
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTimestamp:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// KindFromName parses a SQL type name into a Kind. It accepts the common DB2
// spellings so that schemas written for the real product parse unchanged.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "DECFLOAT", "NUMERIC":
		return KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING", "CLOB", "GRAPHIC", "VARGRAPHIC":
		return KindString, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	case "TIMESTAMP", "DATE", "TIME", "DATETIME":
		return KindTimestamp, nil
	default:
		return KindNull, fmt.Errorf("types: unknown column type %q", name)
	}
}

// Value is a single SQL datum. The Kind field selects which payload field is
// meaningful; KindNull ignores all payloads. Timestamps reuse the Int payload
// (microseconds since epoch).
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// NewTimestamp returns a timestamp value from a time.Time (truncated to µs).
func NewTimestamp(t time.Time) Value {
	return Value{Kind: KindTimestamp, Int: t.UnixMicro()}
}

// NewTimestampMicros returns a timestamp value from raw microseconds.
func NewTimestampMicros(us int64) Value {
	return Value{Kind: KindTimestamp, Int: us}
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Time returns the timestamp payload as a time.Time. It is only meaningful
// for KindTimestamp values.
func (v Value) Time() time.Time { return time.UnixMicro(v.Int).UTC() }

// AsFloat coerces a numeric or boolean value to float64. The second return
// value is false when the value is NULL or not numeric.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt, KindTimestamp:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsInt coerces a numeric value to int64; floats are truncated toward zero.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case KindInt, KindTimestamp:
		return v.Int, true
	case KindFloat:
		return int64(v.Float), true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
			if ferr != nil {
				return 0, false
			}
			return int64(f), true
		}
		return i, true
	default:
		return 0, false
	}
}

// AsBool coerces the value to a boolean using SQL-ish truthiness.
func (v Value) AsBool() (bool, bool) {
	switch v.Kind {
	case KindBool:
		return v.Bool, true
	case KindInt:
		return v.Int != 0, true
	case KindFloat:
		return v.Float != 0, true
	case KindString:
		switch strings.ToLower(strings.TrimSpace(v.Str)) {
		case "true", "t", "yes", "y", "1":
			return true, true
		case "false", "f", "no", "n", "0":
			return false, true
		}
		return false, false
	default:
		return false, false
	}
}

// AsString renders the value as a string without SQL quoting. NULL renders as
// the empty string; use String for display purposes.
func (v Value) AsString() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindTimestamp:
		return v.Time().Format("2006-01-02 15:04:05.000000")
	default:
		return fmt.Sprintf("<%v>", v.Kind)
	}
}

// String implements fmt.Stringer for diagnostics and result rendering.
func (v Value) String() string {
	if v.Kind == KindNull {
		return "NULL"
	}
	return v.AsString()
}

// Cast converts the value to the target kind, returning an error when the
// conversion is not meaningful. NULL casts to NULL of any kind.
func (v Value) Cast(to Kind) (Value, error) {
	if v.Kind == KindNull {
		return Null(), nil
	}
	if v.Kind == to {
		return v, nil
	}
	switch to {
	case KindInt:
		if i, ok := v.AsInt(); ok {
			return NewInt(i), nil
		}
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return NewFloat(f), nil
		}
	case KindString:
		return NewString(v.AsString()), nil
	case KindBool:
		if b, ok := v.AsBool(); ok {
			return NewBool(b), nil
		}
	case KindTimestamp:
		switch v.Kind {
		case KindInt:
			return NewTimestampMicros(v.Int), nil
		case KindString:
			t, err := ParseTimestamp(v.Str)
			if err != nil {
				return Null(), err
			}
			return NewTimestamp(t), nil
		}
	}
	return Null(), fmt.Errorf("types: cannot cast %s value %q to %s", v.Kind, v.AsString(), to)
}

// ParseTimestamp parses the timestamp formats accepted by the loader and the
// CAST function.
func ParseTimestamp(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	layouts := []string{
		"2006-01-02 15:04:05.000000",
		"2006-01-02 15:04:05",
		"2006-01-02T15:04:05Z07:00",
		"2006-01-02",
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("types: unrecognised timestamp %q", s)
}

// Compare orders two values. NULL sorts before every non-NULL value (and
// equals NULL) which matches the ORDER BY semantics we implement. Numeric
// kinds compare numerically across Int/Float; other cross-kind comparisons are
// an error.
func Compare(a, b Value) (int, error) {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == KindNull && b.Kind == KindNull:
			return 0, nil
		case a.Kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if isNumeric(a.Kind) && isNumeric(b.Kind) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("types: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case KindString:
		return strings.Compare(a.Str, b.Str), nil
	case KindBool:
		switch {
		case a.Bool == b.Bool:
			return 0, nil
		case !a.Bool:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("types: cannot compare kind %s", a.Kind)
	}
}

func isNumeric(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindTimestamp
}

// Equal reports whether two values compare equal under Compare. Values of
// incomparable kinds are never equal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Hash returns a stable hash of the value used by hash joins, group-by and
// the accelerator's distribution-key partitioning.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.Kind {
	case KindNull:
		h.Write([]byte{0})
	case KindInt, KindTimestamp:
		writeUint64(h, uint64(v.Int))
	case KindFloat:
		// Hash integral floats identically to ints so numeric group keys agree.
		if v.Float == math.Trunc(v.Float) && !math.IsInf(v.Float, 0) {
			writeUint64(h, uint64(int64(v.Float)))
		} else {
			writeUint64(h, math.Float64bits(v.Float))
		}
	case KindString:
		h.Write([]byte(v.Str))
	case KindBool:
		if v.Bool {
			h.Write([]byte{2})
		} else {
			h.Write([]byte{1})
		}
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, u uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * uint(i)))
	}
	h.Write(buf[:])
}

// GroupKey returns a string usable as a map key for GROUP BY and DISTINCT.
// Distinct values map to distinct keys within a query's lifetime.
func (v Value) GroupKey() string {
	return string(v.AppendGroupKey(nil))
}

// AppendGroupKey appends the GroupKey encoding to dst and returns the
// extended buffer. Hot grouping loops reuse one buffer across rows instead of
// concatenating per-value strings (the buffer escapes into the group map only
// when a new group is first seen).
func (v Value) AppendGroupKey(dst []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, 0x00, 'N')
	case KindInt:
		return strconv.AppendInt(append(dst, 0x01), v.Int, 10)
	case KindTimestamp:
		return strconv.AppendInt(append(dst, 0x05), v.Int, 10)
	case KindFloat:
		if v.Float == math.Trunc(v.Float) && !math.IsInf(v.Float, 0) {
			return strconv.AppendInt(append(dst, 0x01), int64(v.Float), 10)
		}
		return strconv.AppendFloat(append(dst, 0x02), v.Float, 'b', -1, 64)
	case KindString:
		return append(append(dst, 0x03), v.Str...)
	case KindBool:
		if v.Bool {
			return append(dst, 0x04, 'T')
		}
		return append(dst, 0x04, 'F')
	default:
		return append(dst, 0x00, '?')
	}
}
