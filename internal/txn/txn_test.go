package txn

import (
	"testing"
	"time"

	"idaax/internal/types"
)

func TestManagerLifecycle(t *testing.T) {
	m := NewManager()
	t1 := m.Begin(false)
	t2 := m.Begin(true)
	if t1.ID == t2.ID {
		t.Fatal("ids must be unique")
	}
	if !t2.AutoTxn || t1.AutoTxn {
		t.Fatal("auto flag wrong")
	}
	if m.ActiveCount() != 2 {
		t.Fatalf("active = %d", m.ActiveCount())
	}
	m.Finish(t1, true)
	m.Finish(t2, false)
	if t1.Status != StatusCommitted || t2.Status != StatusAborted {
		t.Fatal("statuses wrong")
	}
	if m.ActiveCount() != 0 {
		t.Fatal("active count not decremented")
	}
}

func TestUndoRecordsReverseOrder(t *testing.T) {
	m := NewManager()
	tx := m.Begin(false)
	tx.RecordUndo(UndoRecord{Table: "T", Op: UndoInsert, RowID: 1})
	tx.RecordUndo(UndoRecord{Table: "T", Op: UndoUpdate, RowID: 2, OldRow: types.Row{types.NewInt(1)}})
	tx.RecordUndo(UndoRecord{Table: "T", Op: UndoDelete, RowID: 3})
	recs := tx.UndoRecords()
	if len(recs) != 3 || recs[0].Op != UndoDelete || recs[2].Op != UndoInsert {
		t.Fatalf("undo order wrong: %+v", recs)
	}
}

func TestLockManagerSharedAndExclusive(t *testing.T) {
	lm := NewLockManager(150 * time.Millisecond)
	m := NewManager()
	r1, r2, w := m.Begin(false), m.Begin(false), m.Begin(false)

	// Two readers coexist.
	if err := lm.Acquire(r1, "T", LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(r2, "T", LockShared); err != nil {
		t.Fatal(err)
	}
	// A writer must wait and times out.
	if err := lm.Acquire(w, "T", LockExclusive); err == nil {
		t.Fatal("writer should time out while readers hold the lock")
	}
	lm.ReleaseAll(r1)
	lm.ReleaseAll(r2)
	if err := lm.Acquire(w, "T", LockExclusive); err != nil {
		t.Fatalf("writer should acquire after readers release: %v", err)
	}
	// Re-acquisition by the same owner is a no-op; shared request is satisfied
	// by the held exclusive lock.
	if err := lm.Acquire(w, "T", LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(w, "T", LockShared); err != nil {
		t.Fatal(err)
	}
	// Another reader now blocks.
	if err := lm.Acquire(r1, "T", LockShared); err == nil {
		t.Fatal("reader should time out while writer holds X lock")
	}
	lm.ReleaseAll(w)
	if err := lm.Acquire(r1, "T", LockShared); err != nil {
		t.Fatal(err)
	}
}

func TestLockUpgradeAndReleaseShared(t *testing.T) {
	lm := NewLockManager(150 * time.Millisecond)
	m := NewManager()
	tx := m.Begin(false)
	if err := lm.Acquire(tx, "A", LockShared); err != nil {
		t.Fatal(err)
	}
	// Upgrade S -> X while being the only sharer.
	if err := lm.Acquire(tx, "A", LockExclusive); err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	if err := lm.Acquire(tx, "B", LockShared); err != nil {
		t.Fatal(err)
	}
	if got := tx.LockedTables(); len(got) != 2 {
		t.Fatalf("locked tables: %v", got)
	}
	// Cursor stability: ReleaseShared drops only the S locks.
	lm.ReleaseShared(tx)
	other := m.Begin(false)
	if err := lm.Acquire(other, "B", LockExclusive); err != nil {
		t.Fatalf("B should be free after ReleaseShared: %v", err)
	}
	if err := lm.Acquire(other, "A", LockExclusive); err == nil {
		t.Fatal("A is still X-locked by tx")
	}
	lm.ReleaseAll(tx)
	lm.ReleaseAll(other)
}

func TestLockTimeoutError(t *testing.T) {
	lm := NewLockManager(80 * time.Millisecond)
	m := NewManager()
	a, b := m.Begin(false), m.Begin(false)
	if err := lm.Acquire(a, "T", LockExclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := lm.Acquire(b, "T", LockExclusive)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if _, ok := err.(*ErrLockTimeout); !ok {
		t.Fatalf("error type %T", err)
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("returned before the timeout elapsed")
	}
}
