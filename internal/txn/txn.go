// Package txn implements the DB2-side transaction machinery: transaction
// identifiers, undo logging for rollback, and a table-granularity lock manager
// approximating DB2's cursor-stability isolation level (readers take short
// shared locks, writers hold exclusive locks until commit).
//
// The accelerator side uses MVCC snapshots instead (package accel); the
// federation layer stitches the two together by propagating the DB2
// transaction id, which is the mechanism Section 2 of the paper describes.
package txn

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"idaax/internal/rowstore"
	"idaax/internal/types"
)

// ID is a DB2 transaction identifier. It is propagated to the accelerator for
// every delegated statement so that both sides agree on visibility.
type ID int64

// Status enumerates transaction states.
type Status int

const (
	// StatusActive marks an in-flight transaction.
	StatusActive Status = iota
	// StatusCommitted marks a committed transaction.
	StatusCommitted
	// StatusAborted marks a rolled-back transaction.
	StatusAborted
)

// UndoOp enumerates undo record kinds.
type UndoOp int

const (
	// UndoInsert compensates an INSERT by deleting the inserted row.
	UndoInsert UndoOp = iota
	// UndoDelete compensates a DELETE by re-inserting the old row image.
	UndoDelete
	// UndoUpdate compensates an UPDATE by restoring the old row image.
	UndoUpdate
)

// UndoRecord is one compensation entry. Undo records are applied in reverse
// order on rollback.
type UndoRecord struct {
	Table  string
	Op     UndoOp
	RowID  rowstore.RowID
	OldRow types.Row
}

// Txn is one DB2 transaction.
type Txn struct {
	ID       ID
	Status   Status
	AutoTxn  bool // created implicitly for a single auto-commit statement
	started  time.Time
	undo     []UndoRecord
	locks    map[string]LockMode
	mu       sync.Mutex
	readOnly bool
}

// Started returns the transaction start time.
func (t *Txn) Started() time.Time { return t.started }

// RecordUndo appends an undo record.
func (t *Txn) RecordUndo(rec UndoRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.undo = append(t.undo, rec)
}

// UndoRecords returns the undo log in reverse (apply) order.
func (t *Txn) UndoRecords() []UndoRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]UndoRecord, len(t.undo))
	for i, rec := range t.undo {
		out[len(t.undo)-1-i] = rec
	}
	return out
}

// LockedTables returns the tables this transaction holds locks on, sorted.
func (t *Txn) LockedTables() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.locks))
	for name := range t.locks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Manager creates and tracks transactions.
type Manager struct {
	mu     sync.Mutex
	nextID ID
	active map[ID]*Txn
}

// NewManager creates a transaction manager.
func NewManager() *Manager {
	return &Manager{nextID: 1, active: make(map[ID]*Txn)}
}

// Begin starts a new transaction. auto marks implicit single-statement
// transactions.
func (m *Manager) Begin(auto bool) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &Txn{ID: m.nextID, Status: StatusActive, AutoTxn: auto, started: time.Now(), locks: make(map[string]LockMode)}
	m.nextID++
	m.active[t.ID] = t
	return t
}

// Finish marks the transaction committed or aborted and forgets it.
func (m *Manager) Finish(t *Txn, committed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if committed {
		t.Status = StatusCommitted
	} else {
		t.Status = StatusAborted
	}
	delete(m.active, t.ID)
}

// NextID returns the id the next transaction would get (checkpointing).
func (m *Manager) NextID() ID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextID
}

// EnsureNextAtLeast raises the next transaction id to at least n so a
// recovered system never reuses an id issued before the crash.
func (m *Manager) EnsureNextAtLeast(n ID) {
	m.mu.Lock()
	if m.nextID < n {
		m.nextID = n
	}
	m.mu.Unlock()
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// ---------------------------------------------------------------------------
// Lock manager
// ---------------------------------------------------------------------------

// LockMode is the requested lock strength.
type LockMode int

const (
	// LockShared allows concurrent readers.
	LockShared LockMode = iota
	// LockExclusive is required by writers.
	LockExclusive
)

func (m LockMode) String() string {
	if m == LockExclusive {
		return "X"
	}
	return "S"
}

// ErrLockTimeout is returned when a lock cannot be acquired before the
// configured timeout elapses (the engine treats it like DB2's -911 timeout).
type ErrLockTimeout struct {
	Table string
	Mode  LockMode
}

func (e *ErrLockTimeout) Error() string {
	return fmt.Sprintf("txn: timeout waiting for %s lock on %s", e.Mode, e.Table)
}

type tableLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	sharers map[ID]int
	owner   ID // exclusive owner, 0 when none
	ownerN  int
}

func newTableLock() *tableLock {
	l := &tableLock{sharers: make(map[ID]int)}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// LockManager hands out table-granularity locks with a timeout.
type LockManager struct {
	mu      sync.Mutex
	locks   map[string]*tableLock
	Timeout time.Duration
}

// NewLockManager creates a lock manager with the given acquisition timeout.
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &LockManager{locks: make(map[string]*tableLock), Timeout: timeout}
}

func (lm *LockManager) tableLock(table string) *tableLock {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	name := types.NormalizeName(table)
	l, ok := lm.locks[name]
	if !ok {
		l = newTableLock()
		lm.locks[name] = l
	}
	return l
}

// Acquire obtains a lock on the table for the transaction, upgrading an
// existing shared lock to exclusive when necessary. It blocks until the lock
// is granted or the timeout expires.
func (lm *LockManager) Acquire(t *Txn, table string, mode LockMode) error {
	table = types.NormalizeName(table)
	t.mu.Lock()
	held, ok := t.locks[table]
	t.mu.Unlock()
	if ok && (held == LockExclusive || mode == LockShared) {
		return nil // already strong enough
	}

	l := lm.tableLock(table)

	// Fast path: uncontended acquisition without starting the waker goroutine.
	l.mu.Lock()
	if lm.grantable(l, t.ID, mode) {
		lm.grant(l, t, table, mode)
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	deadline := time.Now().Add(lm.Timeout)

	// Wake all waiters periodically so deadline checks run even without
	// broadcast events.
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(20 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				l.mu.Lock()
				l.cond.Broadcast()
				l.mu.Unlock()
			}
		}
	}()
	defer close(done)

	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if lm.grantable(l, t.ID, mode) {
			lm.grant(l, t, table, mode)
			return nil
		}
		if time.Now().After(deadline) {
			return &ErrLockTimeout{Table: table, Mode: mode}
		}
		l.cond.Wait()
	}
}

func (lm *LockManager) grantable(l *tableLock, id ID, mode LockMode) bool {
	switch mode {
	case LockShared:
		return l.owner == 0 || l.owner == id
	case LockExclusive:
		if l.owner != 0 && l.owner != id {
			return false
		}
		// No other sharer may remain.
		for sid := range l.sharers {
			if sid != id {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (lm *LockManager) grant(l *tableLock, t *Txn, table string, mode LockMode) {
	switch mode {
	case LockShared:
		l.sharers[t.ID]++
	case LockExclusive:
		l.owner = t.ID
		l.ownerN++
		// An upgrade absorbs the shared count.
		delete(l.sharers, t.ID)
	}
	t.mu.Lock()
	if cur, ok := t.locks[table]; !ok || mode > cur {
		t.locks[table] = mode
	}
	t.mu.Unlock()
}

// ReleaseAll releases every lock the transaction holds (commit/rollback).
func (lm *LockManager) ReleaseAll(t *Txn) {
	t.mu.Lock()
	tables := make([]string, 0, len(t.locks))
	for name := range t.locks {
		tables = append(tables, name)
	}
	t.locks = make(map[string]LockMode)
	t.mu.Unlock()

	for _, table := range tables {
		l := lm.tableLock(table)
		l.mu.Lock()
		delete(l.sharers, t.ID)
		if l.owner == t.ID {
			l.owner = 0
			l.ownerN = 0
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// ReleaseShared drops the shared locks a read-only statement took; DB2's
// cursor stability releases read locks at the end of each statement rather
// than at commit.
func (lm *LockManager) ReleaseShared(t *Txn) {
	t.mu.Lock()
	var shared []string
	for name, mode := range t.locks {
		if mode == LockShared {
			shared = append(shared, name)
		}
	}
	for _, name := range shared {
		delete(t.locks, name)
	}
	t.mu.Unlock()

	for _, table := range shared {
		l := lm.tableLock(table)
		l.mu.Lock()
		delete(l.sharers, t.ID)
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}
