// Package core implements the paper's primary contribution on top of the DB2
// and accelerator substrates:
//
//   - accelerator-only tables (AOTs, Section 2): tables whose data lives only
//     inside the accelerator while DB2 keeps a catalog proxy ("nickname") that
//     carries metadata and governance, created with CREATE TABLE ... IN
//     ACCELERATOR and modified with ordinary INSERT/UPDATE/DELETE statements
//     that the federation layer delegates together with the DB2 transaction
//     context; and
//
//   - the in-database analytics procedure framework (Section 3): a registry of
//     named procedures (data transformations, model training, scoring) that
//     are invoked through SQL CALL, privilege-checked against the DB2 catalog,
//     and executed on the accelerator with results materialised into AOTs so
//     they can feed the next pipeline stage without returning to DB2.
package core

import (
	"fmt"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// AcceleratorProvider resolves accelerator names to instances. The federation
// coordinator implements it; the indirection keeps this package free of a
// dependency on the router.
type AcceleratorProvider interface {
	Accelerator(name string) (accel.Backend, error)
	DefaultAccelerator() string
}

// AOTManager creates, drops and describes accelerator-only tables.
type AOTManager struct {
	cat    *catalog.Catalog
	accels AcceleratorProvider
}

// NewAOTManager creates an AOT manager bound to the DB2 catalog and the set of
// paired accelerators.
func NewAOTManager(cat *catalog.Catalog, accels AcceleratorProvider) *AOTManager {
	return &AOTManager{cat: cat, accels: accels}
}

// Create creates an accelerator-only table: the columnar table on the chosen
// accelerator plus the proxy entry in the DB2 catalog. The caller becomes the
// owner, which gives it full privileges via the catalog's owner rule.
func (m *AOTManager) Create(user string, stmt *sqlparse.CreateTableStmt) error {
	if stmt.InAccelerator == "" {
		return fmt.Errorf("core: table %s is not an accelerator-only table (missing IN ACCELERATOR)", stmt.Table)
	}
	accName := types.NormalizeName(stmt.InAccelerator)
	if !m.cat.HasAccelerator(accName) {
		return fmt.Errorf("core: accelerator %s is not paired with this DB2 subsystem", accName)
	}
	acc, err := m.accels.Accelerator(accName)
	if err != nil {
		return err
	}
	name := types.NormalizeName(stmt.Table)
	if m.cat.HasTable(name) {
		if stmt.IfNotExists {
			return nil
		}
		return &catalog.ErrExists{Table: name}
	}
	if len(stmt.Columns) == 0 {
		return fmt.Errorf("core: accelerator-only table %s requires an explicit column list", name)
	}
	schema := schemaFromDefs(stmt.Columns)
	if err := acc.CreateTable(name, schema, stmt.DistributeBy); err != nil {
		return err
	}
	entry := &catalog.Table{
		Name:        name,
		Schema:      schema,
		Kind:        catalog.KindAcceleratorOnly,
		Accelerator: accName,
		DistKey:     types.NormalizeName(stmt.DistributeBy),
		Owner:       types.NormalizeName(user),
	}
	if err := m.cat.CreateTable(entry); err != nil {
		// Roll the accelerator-side table back so both sides stay consistent.
		_ = acc.DropTable(name)
		return err
	}
	return nil
}

// CreateFromSchema creates an AOT directly from a schema (used by the
// analytics framework to materialise procedure outputs).
func (m *AOTManager) CreateFromSchema(user, table, acceleratorName string, schema types.Schema, distKey string) error {
	defs := make([]sqlparse.ColumnDef, len(schema.Columns))
	for i, c := range schema.Columns {
		defs[i] = sqlparse.ColumnDef{Name: c.Name, Kind: c.Kind, NotNull: c.NotNull}
	}
	if acceleratorName == "" {
		acceleratorName = m.accels.DefaultAccelerator()
	}
	return m.Create(user, &sqlparse.CreateTableStmt{
		Table:         table,
		Columns:       defs,
		InAccelerator: acceleratorName,
		DistributeBy:  distKey,
	})
}

// Drop removes an accelerator-only table from both the accelerator and the
// DB2 catalog.
func (m *AOTManager) Drop(table string) error {
	meta, err := m.cat.Table(table)
	if err != nil {
		return err
	}
	if meta.Kind != catalog.KindAcceleratorOnly {
		return fmt.Errorf("core: table %s is not accelerator-only", meta.Name)
	}
	acc, err := m.accels.Accelerator(meta.Accelerator)
	if err != nil {
		return err
	}
	if err := acc.DropTable(meta.Name); err != nil {
		return err
	}
	return m.cat.DropTable(meta.Name)
}

// IsAOT reports whether the table is an accelerator-only table.
func (m *AOTManager) IsAOT(table string) bool {
	meta, err := m.cat.Table(table)
	return err == nil && meta.Kind == catalog.KindAcceleratorOnly
}

// AcceleratorFor returns the accelerator instance hosting the (accelerated or
// accelerator-only) table.
func (m *AOTManager) AcceleratorFor(table string) (accel.Backend, *catalog.Table, error) {
	meta, err := m.cat.Table(table)
	if err != nil {
		return nil, nil, err
	}
	if meta.Kind == catalog.KindRegular {
		return nil, meta, fmt.Errorf("core: table %s has no accelerator copy", meta.Name)
	}
	acc, err := m.accels.Accelerator(meta.Accelerator)
	if err != nil {
		return nil, meta, err
	}
	return acc, meta, nil
}

func schemaFromDefs(defs []sqlparse.ColumnDef) types.Schema {
	cols := make([]types.Column, len(defs))
	for i, d := range defs {
		cols[i] = types.Column{Name: d.Name, Kind: d.Kind, NotNull: d.NotNull}
	}
	return types.NewSchema(cols...)
}
