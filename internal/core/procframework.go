package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/obs"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// ProcContext is the execution context handed to a procedure. Procedures run
// "on the accelerator" conceptually; the Query and Exec callbacks are provided
// by the federation layer and already perform routing and data-movement
// accounting, so a procedure that reads accelerated tables and writes AOTs
// never moves data through DB2.
type ProcContext struct {
	// User is the DB2 authorization id invoking the procedure.
	User string
	// TxnID is the DB2 transaction the CALL runs under (0 for auto-commit).
	TxnID int64
	// Catalog is the DB2 catalog (for metadata lookups and privilege checks).
	Catalog *catalog.Catalog
	// Accelerator is the accelerator the procedure executes on.
	Accelerator accel.Backend
	// AOTs creates/drops accelerator-only tables for procedure outputs.
	AOTs *AOTManager
	// Query executes a SELECT with full routing (including privilege checks).
	Query func(sel *sqlparse.SelectStmt) (*relalg.Relation, error)
	// Exec executes a non-query statement with full routing.
	Exec func(stmt sqlparse.Statement) (int, error)
	// InsertRows bulk-inserts already-materialised rows into a table under the
	// calling transaction, with the same routing, privilege checks and
	// data-movement accounting as an INSERT statement. Procedures use it to
	// write model tables and scored result sets without converting rows back
	// into SQL literals.
	InsertRows func(table string, rows []types.Row) (int, error)
	// BackendFor resolves the backend hosting an accelerated table's rows
	// (possibly a shard group, unlike Accelerator which is the session's
	// default backend) together with its pairing name. nil/"" when the table
	// is not accelerated or unknown. Analytics procedures use it to scatter
	// training and scoring shard-local instead of gathering the table; nil
	// (e.g. in a hand-built context) simply disables the scatter path.
	BackendFor func(table string) (accel.Backend, string)
	// Span is the calling statement's trace span; analytics scatters attach
	// their per-shard partition spans beneath it so a CALL's trace shows the
	// same fan-out a query's does. May be nil (tracing off).
	Span *obs.Span
}

// CheckSelect verifies the caller may read the named table — the privilege
// gate the routed Query path applies, needed explicitly by procedures that
// bypass routing to scan shard-local.
func (c *ProcContext) CheckSelect(table string) error {
	return c.Catalog.CheckPrivilege(c.User, types.NormalizeName(table), catalog.PrivSelect)
}

// QuerySQL parses and runs a SELECT given as text.
func (c *ProcContext) QuerySQL(sql string) (*relalg.Relation, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: expected a SELECT, got %T", st)
	}
	return c.Query(sel)
}

// ExecSQL parses and runs a non-query statement given as text.
func (c *ProcContext) ExecSQL(sql string) (int, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return 0, err
	}
	return c.Exec(st)
}

// ProcResult is what a procedure returns to the caller.
type ProcResult struct {
	// Relation is an optional result set returned to the client.
	Relation *relalg.Relation
	// Message is a human-readable completion message.
	Message string
	// RowsAffected counts rows written by the procedure (e.g. scored rows).
	RowsAffected int
	// OutputTables lists tables (usually AOTs) the procedure materialised.
	OutputTables []string
}

// Procedure is an analytics or administrative operation invocable via CALL.
type Procedure interface {
	// Name is the procedure name as used in CALL (qualified names allowed).
	Name() string
	// Description is a one-line summary shown by SHOW PROCEDURES-style tools.
	Description() string
	// Execute runs the procedure.
	Execute(ctx *ProcContext, args []types.Value) (*ProcResult, error)
}

// FuncProcedure adapts a plain function to the Procedure interface.
type FuncProcedure struct {
	ProcName string
	Desc     string
	Fn       func(ctx *ProcContext, args []types.Value) (*ProcResult, error)
}

// Name implements Procedure.
func (p *FuncProcedure) Name() string { return p.ProcName }

// Description implements Procedure.
func (p *FuncProcedure) Description() string { return p.Desc }

// Execute implements Procedure.
func (p *FuncProcedure) Execute(ctx *ProcContext, args []types.Value) (*ProcResult, error) {
	return p.Fn(ctx, args)
}

// Framework is the registry and dispatcher for analytics procedures. It is the
// generic mechanism the paper describes for passing "code for arbitrary
// algorithms" to the accelerator while privilege management stays in DB2: the
// EXECUTE privilege on each procedure is recorded in the DB2 catalog and
// checked before dispatch.
type Framework struct {
	cat *catalog.Catalog

	mu    sync.RWMutex
	procs map[string]Procedure
}

// NewFramework creates an empty procedure framework.
func NewFramework(cat *catalog.Catalog) *Framework {
	return &Framework{cat: cat, procs: make(map[string]Procedure)}
}

// Register adds a procedure. When public is true, EXECUTE is granted to
// PUBLIC (the usual setting for the built-in SYSPROC.ACCEL_* procedures);
// otherwise only SYSADM and explicit grantees may call it.
func (f *Framework) Register(p Procedure, public bool) error {
	name := types.NormalizeName(p.Name())
	if name == "" {
		return fmt.Errorf("core: procedure requires a name")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.procs[name]; ok {
		return fmt.Errorf("core: procedure %s is already registered", name)
	}
	f.procs[name] = p
	if public {
		f.cat.Grant(catalog.PublicGrantee, catalog.ProcedureObject(name), catalog.PrivExecute)
	}
	return nil
}

// MustRegister registers a procedure and panics on conflicts; used during
// system start-up where a duplicate registration is a programming error.
func (f *Framework) MustRegister(p Procedure, public bool) {
	if err := f.Register(p, public); err != nil {
		panic(err)
	}
}

// GrantExecute grants EXECUTE on a registered procedure to a user.
func (f *Framework) GrantExecute(procName, grantee string) error {
	name := types.NormalizeName(procName)
	f.mu.RLock()
	_, ok := f.procs[name]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: procedure %s is not registered", name)
	}
	f.cat.Grant(grantee, catalog.ProcedureObject(name), catalog.PrivExecute)
	return nil
}

// RevokeExecute revokes EXECUTE on a registered procedure from a user.
func (f *Framework) RevokeExecute(procName, grantee string) {
	f.cat.Revoke(grantee, catalog.ProcedureObject(types.NormalizeName(procName)), catalog.PrivExecute)
}

// Lookup returns the registered procedure.
func (f *Framework) Lookup(name string) (Procedure, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	p, ok := f.procs[types.NormalizeName(name)]
	return p, ok
}

// List returns all registered procedure names, sorted.
func (f *Framework) List() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.procs))
	for name := range f.procs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Call dispatches a procedure invocation: it verifies the EXECUTE privilege in
// the DB2 catalog, then executes the procedure with the supplied context. This
// is the single entry point the federation layer uses for CALL statements.
func (f *Framework) Call(ctx *ProcContext, name string, args []types.Value) (*ProcResult, error) {
	proc, ok := f.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("core: procedure %s is not registered", types.NormalizeName(name))
	}
	object := catalog.ProcedureObject(proc.Name())
	if err := f.cat.CheckPrivilege(ctx.User, object, catalog.PrivExecute); err != nil {
		return nil, err
	}
	res, err := proc.Execute(ctx, args)
	if err != nil {
		return nil, fmt.Errorf("core: procedure %s failed: %w", types.NormalizeName(name), err)
	}
	if res == nil {
		res = &ProcResult{Message: "ok"}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Argument helpers shared by procedure implementations
// ---------------------------------------------------------------------------

// ArgString extracts the i-th argument as a string.
func ArgString(args []types.Value, i int, name string) (string, error) {
	if i >= len(args) || args[i].IsNull() {
		return "", fmt.Errorf("core: missing argument %d (%s)", i+1, name)
	}
	return strings.TrimSpace(args[i].AsString()), nil
}

// ArgStringDefault extracts the i-th argument or returns def when absent.
func ArgStringDefault(args []types.Value, i int, def string) string {
	if i >= len(args) || args[i].IsNull() {
		return def
	}
	s := strings.TrimSpace(args[i].AsString())
	if s == "" {
		return def
	}
	return s
}

// ArgInt extracts the i-th argument as an int with a default.
func ArgInt(args []types.Value, i int, def int64) int64 {
	if i >= len(args) || args[i].IsNull() {
		return def
	}
	if v, ok := args[i].AsInt(); ok {
		return v
	}
	return def
}

// ArgFloat extracts the i-th argument as a float with a default.
func ArgFloat(args []types.Value, i int, def float64) float64 {
	if i >= len(args) || args[i].IsNull() {
		return def
	}
	if v, ok := args[i].AsFloat(); ok {
		return v
	}
	return def
}

// SplitList splits a comma-separated list argument into trimmed, upper-cased
// identifiers ("COL1, col2" -> ["COL1","COL2"]).
func SplitList(s string) []string {
	parts := strings.Split(s, ",")
	var out []string
	for _, p := range parts {
		p = types.NormalizeName(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
