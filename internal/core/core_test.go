package core

import (
	"errors"
	"fmt"
	"testing"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// fixedProvider implements AcceleratorProvider over a static map.
type fixedProvider struct {
	accels map[string]*accel.Accelerator
	def    string
}

func (p *fixedProvider) Accelerator(name string) (accel.Backend, error) {
	if name == "" {
		name = p.def
	}
	a, ok := p.accels[types.NormalizeName(name)]
	if !ok {
		return nil, fmt.Errorf("no accelerator %s", name)
	}
	return a, nil
}

func (p *fixedProvider) DefaultAccelerator() string { return p.def }

func setup(t *testing.T) (*catalog.Catalog, *accel.Accelerator, *AOTManager, *Framework) {
	t.Helper()
	cat := catalog.New()
	cat.AddAccelerator("IDAA1")
	a := accel.New("IDAA1", 2)
	prov := &fixedProvider{accels: map[string]*accel.Accelerator{"IDAA1": a}, def: "IDAA1"}
	return cat, a, NewAOTManager(cat, prov), NewFramework(cat)
}

func createStmt(table, acc string) *sqlparse.CreateTableStmt {
	return &sqlparse.CreateTableStmt{
		Table: table,
		Columns: []sqlparse.ColumnDef{
			{Name: "ID", Kind: types.KindInt, NotNull: true},
			{Name: "V", Kind: types.KindFloat},
		},
		InAccelerator: acc,
	}
}

func TestAOTCreateDropLifecycle(t *testing.T) {
	cat, a, mgr, _ := setup(t)
	if err := mgr.Create("alice", createStmt("stage1", "IDAA1")); err != nil {
		t.Fatal(err)
	}
	meta, err := cat.Table("STAGE1")
	if err != nil || meta.Kind != catalog.KindAcceleratorOnly || meta.Accelerator != "IDAA1" || meta.Owner != "ALICE" {
		t.Fatalf("catalog proxy wrong: %+v, %v", meta, err)
	}
	if !a.HasTable("STAGE1") {
		t.Fatal("accelerator table missing")
	}
	if !mgr.IsAOT("stage1") {
		t.Fatal("IsAOT should be true")
	}
	gotAccel, gotMeta, err := mgr.AcceleratorFor("STAGE1")
	if err != nil || gotAccel != a || gotMeta.Name != "STAGE1" {
		t.Fatalf("AcceleratorFor: %v", err)
	}
	// Duplicate create fails unless IF NOT EXISTS.
	if err := mgr.Create("alice", createStmt("stage1", "IDAA1")); err == nil {
		t.Fatal("duplicate AOT create should fail")
	}
	dup := createStmt("stage1", "IDAA1")
	dup.IfNotExists = true
	if err := mgr.Create("alice", dup); err != nil {
		t.Fatalf("IF NOT EXISTS should succeed: %v", err)
	}
	if err := mgr.Drop("STAGE1"); err != nil {
		t.Fatal(err)
	}
	if cat.HasTable("STAGE1") || a.HasTable("STAGE1") {
		t.Fatal("drop incomplete")
	}
}

func TestAOTCreateValidation(t *testing.T) {
	cat, _, mgr, _ := setup(t)
	if err := mgr.Create("u", createStmt("t1", "")); err == nil {
		t.Fatal("missing IN ACCELERATOR must fail")
	}
	if err := mgr.Create("u", createStmt("t1", "NOPE")); err == nil {
		t.Fatal("unknown accelerator must fail")
	}
	noCols := &sqlparse.CreateTableStmt{Table: "t1", InAccelerator: "IDAA1"}
	if err := mgr.Create("u", noCols); err == nil {
		t.Fatal("AOT without columns must fail")
	}
	// Regular tables are not AOTs.
	_ = cat.CreateTable(&catalog.Table{Name: "REG", Schema: types.NewSchema(types.Column{Name: "X", Kind: types.KindInt})})
	if mgr.IsAOT("REG") {
		t.Fatal("regular table misclassified")
	}
	if err := mgr.Drop("REG"); err == nil {
		t.Fatal("dropping a non-AOT through the AOT manager must fail")
	}
}

func TestAOTCreateFromSchema(t *testing.T) {
	_, a, mgr, _ := setup(t)
	schema := types.NewSchema(types.Column{Name: "K", Kind: types.KindString}, types.Column{Name: "N", Kind: types.KindInt})
	if err := mgr.CreateFromSchema("bob", "derived", "", schema, "K"); err != nil {
		t.Fatal(err)
	}
	tab, err := a.Table("DERIVED")
	if err != nil || !tab.Schema().Equal(schema) {
		t.Fatalf("schema mismatch: %v", err)
	}
	if tab.DistKey() != "K" {
		t.Fatalf("dist key: %q", tab.DistKey())
	}
}

func TestFrameworkRegistrationAndGovernance(t *testing.T) {
	cat, a, mgr, fw := setup(t)
	calls := 0
	proc := &FuncProcedure{ProcName: "test.echo", Desc: "echoes", Fn: func(ctx *ProcContext, args []types.Value) (*ProcResult, error) {
		calls++
		return &ProcResult{Message: "got " + fmt.Sprint(len(args)) + " args"}, nil
	}}
	if err := fw.Register(proc, false); err != nil {
		t.Fatal(err)
	}
	if err := fw.Register(proc, false); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if got := fw.List(); len(got) != 1 || got[0] != "TEST.ECHO" {
		t.Fatalf("list: %v", got)
	}
	ctx := &ProcContext{User: "CAROL", Catalog: cat, Accelerator: a, AOTs: mgr}

	// Not public, no grant: denied with a catalog error.
	_, err := fw.Call(ctx, "TEST.ECHO", nil)
	var denied *catalog.ErrNotAuthorized
	if !errors.As(err, &denied) {
		t.Fatalf("expected authorization error, got %v", err)
	}
	if calls != 0 {
		t.Fatal("procedure must not run without EXECUTE")
	}
	if err := fw.GrantExecute("test.echo", "carol"); err != nil {
		t.Fatal(err)
	}
	res, err := fw.Call(ctx, "test.echo", []types.Value{types.NewInt(1), types.NewString("x")})
	if err != nil || calls != 1 || res.Message != "got 2 args" {
		t.Fatalf("call after grant: %+v, %v", res, err)
	}
	fw.RevokeExecute("test.echo", "carol")
	if _, err := fw.Call(ctx, "test.echo", nil); err == nil {
		t.Fatal("call after revoke should fail")
	}
	// Admin always passes; unknown procedures are reported.
	admin := &ProcContext{User: catalog.AdminUser, Catalog: cat, Accelerator: a}
	if _, err := fw.Call(admin, "test.echo", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Call(admin, "NO.SUCH.PROC", nil); err == nil {
		t.Fatal("unknown procedure should fail")
	}
	if err := fw.GrantExecute("NO.SUCH.PROC", "x"); err == nil {
		t.Fatal("granting on unknown procedure should fail")
	}
}

func TestArgumentHelpers(t *testing.T) {
	args := []types.Value{types.NewString(" tbl "), types.Null(), types.NewInt(7), types.NewFloat(0.25)}
	if v, err := ArgString(args, 0, "t"); err != nil || v != "tbl" {
		t.Fatalf("ArgString: %q, %v", v, err)
	}
	if _, err := ArgString(args, 1, "missing"); err == nil {
		t.Fatal("NULL required arg should fail")
	}
	if _, err := ArgString(args, 9, "missing"); err == nil {
		t.Fatal("absent required arg should fail")
	}
	if v := ArgStringDefault(args, 1, "dflt"); v != "dflt" {
		t.Fatalf("ArgStringDefault: %q", v)
	}
	if v := ArgInt(args, 2, -1); v != 7 {
		t.Fatalf("ArgInt: %d", v)
	}
	if v := ArgInt(args, 9, -1); v != -1 {
		t.Fatalf("ArgInt default: %d", v)
	}
	if v := ArgFloat(args, 3, 0); v != 0.25 {
		t.Fatalf("ArgFloat: %v", v)
	}
	if got := SplitList(" a, b ,,C "); len(got) != 3 || got[2] != "C" {
		t.Fatalf("SplitList: %v", got)
	}
}
