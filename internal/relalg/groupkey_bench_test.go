package relalg

import (
	"fmt"
	"testing"

	"idaax/internal/expr"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// BenchmarkGroupByHighCardinality pins the allocation behaviour of the row
// engine's grouping path: the group key is built into a reused []byte buffer,
// not by per-value string concatenation. With ~N/2 distinct groups over two
// key columns, the concatenating implementation allocated several strings per
// input row; the append implementation allocates only when a new group is
// first seen. Run with -benchmem to compare allocs/op after changes here.
func BenchmarkGroupByHighCardinality(b *testing.B) {
	const n = 50000
	rel := &Relation{Cols: []expr.InputColumn{
		{Name: "ID", Kind: types.KindInt},
		{Name: "TAG", Kind: types.KindString},
		{Name: "V", Kind: types.KindFloat},
	}}
	rel.Rows = make([]types.Row, n)
	for i := 0; i < n; i++ {
		rel.Rows[i] = types.Row{
			types.NewInt(int64(i / 2)),
			types.NewString(fmt.Sprintf("tag-%d", i%7)),
			types.NewFloat(float64(i) * 0.5),
		}
	}
	sel, err := sqlparse.Parse("SELECT id, tag, COUNT(*), SUM(v) FROM t GROUP BY id, tag")
	if err != nil {
		b.Fatal(err)
	}
	stmt := sel.(*sqlparse.SelectStmt)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ExecuteSelect(rel, stmt, Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Rows) == 0 {
			b.Fatal("no groups produced")
		}
	}
}

// BenchmarkDistinctKeys pins the same buffer-reuse behaviour for DISTINCT.
func BenchmarkDistinctKeys(b *testing.B) {
	const n = 50000
	rel := &Relation{Cols: []expr.InputColumn{
		{Name: "A", Kind: types.KindInt},
		{Name: "S", Kind: types.KindString},
	}}
	rel.Rows = make([]types.Row, n)
	for i := 0; i < n; i++ {
		rel.Rows[i] = types.Row{
			types.NewInt(int64(i % 1000)),
			types.NewString(fmt.Sprintf("s%d", i%50)),
		}
	}
	sel, err := sqlparse.Parse("SELECT DISTINCT a, s FROM t")
	if err != nil {
		b.Fatal(err)
	}
	stmt := sel.(*sqlparse.SelectStmt)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ExecuteSelect(rel, stmt, Options{Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Rows) != 1000 {
			b.Fatalf("got %d distinct rows", len(out.Rows))
		}
	}
}
