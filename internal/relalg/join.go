package relalg

import (
	"fmt"
	"sync"

	"idaax/internal/expr"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// JoinMethod selects the physical join algorithm. The planner picks a method
// from cost estimates; MethodAuto keeps the historical heuristic (hash when
// equality keys can be extracted from the ON condition).
type JoinMethod int

const (
	// MethodAuto lets the executor choose: hash join when equi-keys exist,
	// nested loop otherwise.
	MethodAuto JoinMethod = iota
	// MethodHash forces a hash join (falls back to nested loop when no
	// equality keys can be extracted).
	MethodHash
	// MethodNestedLoop forces a nested-loop join.
	MethodNestedLoop
)

// String returns the EXPLAIN spelling of the method.
func (m JoinMethod) String() string {
	switch m {
	case MethodHash:
		return "HASH JOIN"
	case MethodNestedLoop:
		return "NESTED LOOP"
	default:
		return "AUTO"
	}
}

// Join combines two relations. Inner equi-joins use a hash join on the
// equality columns extracted from the ON condition (with the probe phase
// parallelised across `workers` goroutines, mirroring the accelerator's
// slices); everything else falls back to a nested-loop join. LEFT joins emit
// NULL-padded right sides for unmatched left rows. Cross joins have a nil
// condition.
//
// NULL join keys never match in either algorithm: the hash path skips NULL
// keys on both the build and probe side, and the nested-loop path relies on
// SQL comparison semantics (NULL = x evaluates to NULL, collapsed to false).
func Join(left, right *Relation, jt sqlparse.JoinType, on sqlparse.Expr, workers int) (*Relation, error) {
	return JoinWith(left, right, jt, on, MethodAuto, workers)
}

// JoinWith is Join with an explicit method choice.
func JoinWith(left, right *Relation, jt sqlparse.JoinType, on sqlparse.Expr, method JoinMethod, workers int) (*Relation, error) {
	combinedCols := append(append([]expr.InputColumn(nil), left.Cols...), right.Cols...)
	out := &Relation{Cols: combinedCols}

	if on != nil && method != MethodNestedLoop {
		leftIdx, rightIdx, residualOK := extractEquiKeys(on, left, right)
		if len(leftIdx) > 0 && (jt == sqlparse.JoinInner || jt == sqlparse.JoinLeft) && residualOK {
			return hashJoin(left, right, jt, on, leftIdx, rightIdx, out, workers)
		}
	}
	return nestedLoopJoin(left, right, jt, on, out, workers)
}

// extractEquiKeys pulls column-equality pairs "l.col = r.col" out of a
// conjunction. residualOK is true when the whole condition is usable (it may
// still contain extra conjuncts which are re-checked per candidate pair).
func extractEquiKeys(on sqlparse.Expr, left, right *Relation) (leftIdx, rightIdx []int, residualOK bool) {
	lenv := expr.NewEnv(left.Cols)
	renv := expr.NewEnv(right.Cols)
	var conjuncts []sqlparse.Expr
	var collect func(e sqlparse.Expr)
	collect = func(e sqlparse.Expr) {
		if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == sqlparse.OpAnd {
			collect(b.Left)
			collect(b.Right)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	collect(on)
	for _, c := range conjuncts {
		b, ok := c.(*sqlparse.BinaryExpr)
		if !ok || b.Op != sqlparse.OpEq {
			continue
		}
		lref, lok := b.Left.(*sqlparse.ColumnRef)
		rref, rok := b.Right.(*sqlparse.ColumnRef)
		if !lok || !rok {
			continue
		}
		// Try left-side/right-side assignment in both orientations.
		if li, err := lenv.Resolve(lref); err == nil {
			if ri, err2 := renv.Resolve(rref); err2 == nil {
				leftIdx = append(leftIdx, li)
				rightIdx = append(rightIdx, ri)
				continue
			}
		}
		if li, err := lenv.Resolve(rref); err == nil {
			if ri, err2 := renv.Resolve(lref); err2 == nil {
				leftIdx = append(leftIdx, li)
				rightIdx = append(rightIdx, ri)
			}
		}
	}
	return leftIdx, rightIdx, true
}

func hashJoin(left, right *Relation, jt sqlparse.JoinType, on sqlparse.Expr, leftIdx, rightIdx []int, out *Relation, workers int) (*Relation, error) {
	// Build side: right relation hashed on its key columns.
	build := make(map[string][]int, len(right.Rows))
	for ri, row := range right.Rows {
		key, ok := joinKey(row, rightIdx)
		if !ok {
			continue // NULL keys never match
		}
		build[key] = append(build[key], ri)
	}
	nullRight := make(types.Row, len(right.Cols))
	for i := range nullRight {
		nullRight[i] = types.Null()
	}

	probe := func(env *expr.Env, lrows []types.Row) ([]types.Row, error) {
		var rows []types.Row
		for _, lrow := range lrows {
			key, ok := joinKey(lrow, leftIdx)
			matched := false
			if ok {
				for _, ri := range build[key] {
					combined := append(append(make(types.Row, 0, len(out.Cols)), lrow...), right.Rows[ri]...)
					pass, err := env.EvalBool(on, combined)
					if err != nil {
						return nil, err
					}
					if pass {
						matched = true
						rows = append(rows, combined)
					}
				}
			}
			if !matched && jt == sqlparse.JoinLeft {
				combined := append(append(make(types.Row, 0, len(out.Cols)), lrow...), nullRight...)
				rows = append(rows, combined)
			}
		}
		return rows, nil
	}

	n := len(left.Rows)
	if workers < 2 || n < 4096 {
		rows, err := probe(expr.NewEnv(out.Cols), left.Rows)
		if err != nil {
			return nil, err
		}
		out.Rows = rows
		return out, nil
	}
	results, err := parallelOverLeft(n, workers, func(env *expr.Env, lo, hi int) ([]types.Row, error) {
		return probe(env, left.Rows[lo:hi])
	}, out.Cols)
	if err != nil {
		return nil, err
	}
	for _, part := range results {
		out.Rows = append(out.Rows, part...)
	}
	return out, nil
}

// parallelOverLeft splits [0, n) into one contiguous chunk per worker and runs
// fn on each with a worker-private expression environment (environments carry
// per-query override maps and must not be shared across goroutines). Results
// come back in chunk order so the output row order matches a serial run.
func parallelOverLeft(n, workers int, fn func(env *expr.Env, lo, hi int) ([]types.Row, error), cols []expr.InputColumn) ([][]types.Row, error) {
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	results := make([][]types.Row, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w], errs[w] = fn(expr.NewEnv(cols), lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func joinKey(row types.Row, idx []int) (string, bool) {
	key := ""
	for _, i := range idx {
		if row[i].IsNull() {
			return "", false
		}
		key += row[i].GroupKey() + "\x1f"
	}
	return key, true
}

// nestedLoopJoin evaluates the condition for every row pair. Each worker
// reuses one expression environment and one scratch row for the whole chunk
// (the combined row is only cloned when the pair actually joins), and the
// probe side is parallelised like the hash join's when the pair count is
// large enough to amortise the goroutines.
func nestedLoopJoin(left, right *Relation, jt sqlparse.JoinType, on sqlparse.Expr, out *Relation, workers int) (*Relation, error) {
	nullRight := make(types.Row, len(right.Cols))
	for i := range nullRight {
		nullRight[i] = types.Null()
	}
	lw := len(left.Cols)

	probe := func(env *expr.Env, lrows []types.Row) ([]types.Row, error) {
		var rows []types.Row
		scratch := make(types.Row, len(out.Cols))
		for _, lrow := range lrows {
			matched := false
			copy(scratch, lrow)
			for _, rrow := range right.Rows {
				copy(scratch[lw:], rrow)
				if on != nil {
					pass, err := env.EvalBool(on, scratch)
					if err != nil {
						return nil, err
					}
					if !pass {
						continue
					}
				}
				matched = true
				rows = append(rows, append(types.Row(nil), scratch...))
			}
			if !matched && jt == sqlparse.JoinLeft {
				copy(scratch[lw:], nullRight)
				rows = append(rows, append(types.Row(nil), scratch...))
			}
		}
		return rows, nil
	}

	n := len(left.Rows)
	if workers < 2 || n*len(right.Rows) < 1<<14 || n < 2 {
		rows, err := probe(expr.NewEnv(out.Cols), left.Rows)
		if err != nil {
			return nil, err
		}
		out.Rows = rows
		return out, nil
	}
	results, err := parallelOverLeft(n, workers, func(env *expr.Env, lo, hi int) ([]types.Row, error) {
		return probe(env, left.Rows[lo:hi])
	}, out.Cols)
	if err != nil {
		return nil, err
	}
	for _, part := range results {
		out.Rows = append(out.Rows, part...)
	}
	return out, nil
}

// JoinAll folds a FROM clause's relations left to right using each item's join
// type and ON condition. rels[i] corresponds to from[i]. workers controls the
// hash-join probe parallelism (1 for the DB2 row engine, the slice count for
// the accelerator).
func JoinAll(rels []*Relation, from []sqlparse.FromItem, workers int) (*Relation, error) {
	return JoinAllPlanned(rels, from, nil, workers)
}

// JoinAllPlanned is JoinAll with per-step method choices from the planner.
// methods[i-1] applies to the join adding from[i]; nil (or a short slice)
// means MethodAuto for the remaining steps.
func JoinAllPlanned(rels []*Relation, from []sqlparse.FromItem, methods []JoinMethod, workers int) (*Relation, error) {
	if len(rels) == 0 {
		// SELECT without FROM: a single empty row so scalar expressions work.
		return &Relation{Rows: []types.Row{{}}}, nil
	}
	if len(rels) != len(from) {
		return nil, fmt.Errorf("relalg: %d relations for %d FROM items", len(rels), len(from))
	}
	acc := rels[0]
	for i := 1; i < len(rels); i++ {
		jt := from[i].Join
		if jt == sqlparse.JoinNone {
			jt = sqlparse.JoinCross
		}
		method := MethodAuto
		if i-1 < len(methods) {
			method = methods[i-1]
		}
		joined, err := JoinWith(acc, rels[i], jt, from[i].On, method, workers)
		if err != nil {
			return nil, err
		}
		acc = joined
	}
	return acc, nil
}
