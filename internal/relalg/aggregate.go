package relalg

import (
	"sync"

	"idaax/internal/expr"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// groupState accumulates one GROUP BY group.
type groupState struct {
	repRow types.Row // representative input row (first of the group)
	aggs   []*expr.AggState
}

// aggregateAndProject executes the grouped-aggregation path of a SELECT:
// grouping, aggregate evaluation (optionally with per-chunk partial aggregates
// merged across worker slices), HAVING, projection and ORDER BY key
// computation.
func aggregateAndProject(rel *Relation, sel *sqlparse.SelectStmt, opts Options) (*Relation, [][]types.Value, error) {
	env := expr.NewEnv(rel.Cols)

	// Collect the aggregate calls appearing anywhere in the statement. They
	// are identified by node pointer so the same call object found during
	// evaluation maps onto its accumulated value.
	var aggCalls []*sqlparse.FuncCall
	collect := func(e sqlparse.Expr) {
		sqlparse.WalkExprs(e, func(n sqlparse.Expr) {
			if fc, ok := n.(*sqlparse.FuncCall); ok && fc.IsAggregate() {
				aggCalls = append(aggCalls, fc)
			}
		})
	}
	for _, item := range sel.Items {
		collect(item.Expr)
	}
	collect(sel.Having)
	for _, o := range sel.OrderBy {
		collect(o.Expr)
	}

	hasDistinctAgg := false
	for _, fc := range aggCalls {
		if fc.Distinct {
			hasDistinctAgg = true
		}
	}

	workers := opts.workers(len(rel.Rows))
	var groups map[string]*groupState
	var order []string
	var err error
	if workers > 1 && !hasDistinctAgg && len(rel.Rows) > 1024 {
		groups, order, err = buildGroupsParallel(rel, sel, env, aggCalls, workers)
	} else {
		groups, order, err = buildGroups(rel.Rows, sel, env, aggCalls)
	}
	if err != nil {
		return nil, nil, err
	}

	// A global aggregate over zero rows still yields one output row.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		st, err := newGroupState(nil, aggCalls)
		if err != nil {
			return nil, nil, err
		}
		groups = map[string]*groupState{"": st}
		order = []string{""}
	}

	out := &Relation{Cols: outputColumns(sel.Items, rel, env)}
	var sortKeys [][]types.Value
	needKeys := len(sel.OrderBy) > 0

	for _, key := range order {
		g := groups[key]
		overrides := make(map[sqlparse.Expr]types.Value, len(aggCalls))
		for i, fc := range aggCalls {
			overrides[fc] = g.aggs[i].Result()
		}
		env.Overrides = overrides

		rep := g.repRow
		if rep == nil {
			rep = make(types.Row, len(rel.Cols))
			for i := range rep {
				rep[i] = types.Null()
			}
		}
		if sel.Having != nil {
			ok, err := env.EvalBool(sel.Having, rep)
			if err != nil {
				env.Overrides = nil
				return nil, nil, err
			}
			if !ok {
				continue
			}
		}
		projected, err := projectRow(sel.Items, rel, env, rep)
		if err != nil {
			env.Overrides = nil
			return nil, nil, err
		}
		out.Rows = append(out.Rows, projected)
		if needKeys {
			keys, err := computeSortKeys(sel.OrderBy, env, rep, out.Cols, projected)
			if err != nil {
				env.Overrides = nil
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	env.Overrides = nil
	return out, sortKeys, nil
}

func newGroupState(repRow types.Row, aggCalls []*sqlparse.FuncCall) (*groupState, error) {
	st := &groupState{repRow: repRow, aggs: make([]*expr.AggState, len(aggCalls))}
	for i, fc := range aggCalls {
		a, err := expr.NewAggState(fc)
		if err != nil {
			return nil, err
		}
		st.aggs[i] = a
	}
	return st, nil
}

// appendGroupKey renders the row's GROUP BY key into buf (reset first). The
// buffer is reused across rows by buildGroups — string concatenation here was
// an allocation hot spot on high-cardinality GROUP BY; the key is only copied
// to a string when a new group is first seen.
func appendGroupKey(buf []byte, env *expr.Env, groupBy []sqlparse.Expr, row types.Row) ([]byte, error) {
	buf = buf[:0]
	for _, g := range groupBy {
		v, err := env.Eval(g, row)
		if err != nil {
			return buf, err
		}
		buf = v.AppendGroupKey(buf)
		buf = append(buf, 0x1f)
	}
	return buf, nil
}

func accumulate(st *groupState, env *expr.Env, aggCalls []*sqlparse.FuncCall, row types.Row) error {
	for i, fc := range aggCalls {
		if fc.Star {
			st.aggs[i].AddStar()
			continue
		}
		if len(fc.Args) == 0 {
			st.aggs[i].AddStar()
			continue
		}
		v, err := env.Eval(fc.Args[0], row)
		if err != nil {
			return err
		}
		if err := st.aggs[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

func buildGroups(rows []types.Row, sel *sqlparse.SelectStmt, env *expr.Env, aggCalls []*sqlparse.FuncCall) (map[string]*groupState, []string, error) {
	groups := make(map[string]*groupState)
	var order []string
	var keyBuf []byte
	for _, row := range rows {
		var err error
		keyBuf, err = appendGroupKey(keyBuf, env, sel.GroupBy, row)
		if err != nil {
			return nil, nil, err
		}
		st, ok := groups[string(keyBuf)]
		if !ok {
			st, err = newGroupState(row, aggCalls)
			if err != nil {
				return nil, nil, err
			}
			key := string(keyBuf)
			groups[key] = st
			order = append(order, key)
		}
		if err := accumulate(st, env, aggCalls, row); err != nil {
			return nil, nil, err
		}
	}
	return groups, order, nil
}

// buildGroupsParallel partitions the input rows across workers, builds partial
// groups per worker with fresh aggregate accumulators, then merges the partial
// states. This mirrors how the accelerator's slices compute partial aggregates
// that the coordinator combines.
func buildGroupsParallel(rel *Relation, sel *sqlparse.SelectStmt, env *expr.Env, aggCalls []*sqlparse.FuncCall, workers int) (map[string]*groupState, []string, error) {
	n := len(rel.Rows)
	chunk := (n + workers - 1) / workers
	partials := make([]map[string]*groupState, workers)
	partialOrders := make([][]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			localEnv := expr.NewEnv(rel.Cols)
			groups, order, err := buildGroups(rel.Rows[lo:hi], sel, localEnv, aggCalls)
			partials[w] = groups
			partialOrders[w] = order
			errs[w] = err
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	merged := make(map[string]*groupState)
	var order []string
	for w := 0; w < workers; w++ {
		for _, key := range partialOrders[w] {
			part := partials[w][key]
			dst, ok := merged[key]
			if !ok {
				merged[key] = part
				order = append(order, key)
				continue
			}
			for i := range dst.aggs {
				if err := dst.aggs[i].Merge(part.aggs[i]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return merged, order, nil
}
