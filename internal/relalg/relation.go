// Package relalg implements the relational operators shared by the DB2 row
// engine and the accelerator: joins, filtering, grouping/aggregation,
// projection, DISTINCT, ORDER BY and LIMIT over materialised relations.
//
// The two engines differ below this layer (row-oriented heap scans with lock
// checks versus parallel columnar scans with zone-map pruning and MVCC
// visibility) and above it only in how much parallelism they request.
package relalg

import (
	"fmt"

	"idaax/internal/expr"
	"idaax/internal/types"
)

// Relation is a fully materialised intermediate result.
type Relation struct {
	Cols []expr.InputColumn
	Rows []types.Row
}

// Schema converts the relation's columns to a types.Schema (qualifiers are
// dropped; duplicate names get positional suffixes so the schema stays valid).
func (r *Relation) Schema() types.Schema {
	seen := map[string]int{}
	cols := make([]types.Column, len(r.Cols))
	for i, c := range r.Cols {
		name := types.NormalizeName(c.Name)
		if name == "" {
			name = fmt.Sprintf("COL%d", i+1)
		}
		if n, ok := seen[name]; ok {
			seen[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n+1)
		} else {
			seen[name] = 1
		}
		cols[i] = types.Column{Name: name, Kind: c.Kind}
	}
	return types.Schema{Columns: cols}
}

// Env builds an expression environment over the relation's columns.
func (r *Relation) Env() *expr.Env { return expr.NewEnv(r.Cols) }

// Clone returns a shallow copy with an independent row slice header.
func (r *Relation) Clone() *Relation {
	return &Relation{Cols: append([]expr.InputColumn(nil), r.Cols...), Rows: append([]types.Row(nil), r.Rows...)}
}

// FromTable builds a single-table relation with every column qualified by the
// given name (the table name or its alias).
func FromTable(qualifier string, schema types.Schema, rows []types.Row) *Relation {
	cols := make([]expr.InputColumn, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = expr.InputColumn{Qualifier: types.NormalizeName(qualifier), Name: c.Name, Kind: c.Kind}
	}
	return &Relation{Cols: cols, Rows: rows}
}

// Requalify returns a copy of the relation with all columns re-qualified, used
// when a subquery in FROM gets an alias.
func Requalify(r *Relation, qualifier string) *Relation {
	cols := make([]expr.InputColumn, len(r.Cols))
	for i, c := range r.Cols {
		cols[i] = expr.InputColumn{Qualifier: types.NormalizeName(qualifier), Name: c.Name, Kind: c.Kind}
	}
	return &Relation{Cols: cols, Rows: r.Rows}
}
