package relalg

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"idaax/internal/expr"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

func joinTestRelation(qualifier string, n int, nullEvery int) *Relation {
	cols := []expr.InputColumn{
		{Qualifier: qualifier, Name: "K", Kind: types.KindInt},
		{Qualifier: qualifier, Name: "V", Kind: types.KindString},
	}
	rel := &Relation{Cols: cols}
	for i := 0; i < n; i++ {
		k := types.NewInt(int64(i % 7))
		if nullEvery > 0 && i%nullEvery == 0 {
			k = types.Null()
		}
		rel.Rows = append(rel.Rows, types.Row{k, types.NewString(fmt.Sprintf("%s%d", qualifier, i))})
	}
	return rel
}

func equiCondition(l, r string) sqlparse.Expr {
	return &sqlparse.BinaryExpr{
		Op:    sqlparse.OpEq,
		Left:  &sqlparse.ColumnRef{Table: l, Name: "K"},
		Right: &sqlparse.ColumnRef{Table: r, Name: "K"},
	}
}

func rowFingerprints(rel *Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.GroupKey()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestJoinMethodsAgreeOnNulls is the NULL-consistency check of the join
// satellite: NULL keys must never match in the hash path, the serial
// nested-loop path, or the parallel nested-loop path, for INNER and LEFT
// joins alike.
func TestJoinMethodsAgreeOnNulls(t *testing.T) {
	left := joinTestRelation("L", 120, 5) // every 5th key NULL
	right := joinTestRelation("R", 90, 4) // every 4th key NULL
	on := equiCondition("L", "R")

	for _, jt := range []sqlparse.JoinType{sqlparse.JoinInner, sqlparse.JoinLeft} {
		hash, err := JoinWith(left, right, jt, on, MethodHash, 1)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := JoinWith(left, right, jt, on, MethodNestedLoop, 1)
		if err != nil {
			t.Fatal(err)
		}
		nlPar, err := JoinWith(left, right, jt, on, MethodNestedLoop, 8)
		if err != nil {
			t.Fatal(err)
		}
		h, n, np := rowFingerprints(hash), rowFingerprints(nl), rowFingerprints(nlPar)
		if len(h) == 0 {
			t.Fatalf("join type %v produced no rows", jt)
		}
		for i := range h {
			if h[i] != n[i] || h[i] != np[i] {
				t.Fatalf("join type %v: row %d differs between methods:\nhash: %s\nnl:   %s\nnlp:  %s",
					jt, i, h[i], n[i], np[i])
			}
		}
		// No NULL key may appear in a matched (inner) row.
		if jt == sqlparse.JoinInner {
			for _, row := range hash.Rows {
				if row[0].IsNull() || row[2].IsNull() {
					t.Fatalf("inner join emitted a NULL key row: %v", row)
				}
			}
		}
	}
}

// TestNestedLoopParallelMatchesSerial checks the parallelised nested loop on
// a non-equi condition (no hash fallback possible).
func TestNestedLoopParallelMatchesSerial(t *testing.T) {
	left := joinTestRelation("L", 200, 0)
	right := joinTestRelation("R", 100, 0)
	on := &sqlparse.BinaryExpr{
		Op:    sqlparse.OpLt,
		Left:  &sqlparse.ColumnRef{Table: "L", Name: "K"},
		Right: &sqlparse.ColumnRef{Table: "R", Name: "K"},
	}
	serial, err := Join(left, right, sqlparse.JoinInner, on, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Join(left, right, sqlparse.JoinInner, on, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, p := rowFingerprints(serial), rowFingerprints(parallel)
	if len(s) != len(p) {
		t.Fatalf("row counts differ: %d vs %d", len(s), len(p))
	}
	for i := range s {
		if s[i] != p[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	// Parallel execution must also preserve the serial row order (chunks
	// concatenate in order).
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if serial.Rows[i][j].GroupKey() != parallel.Rows[i][j].GroupKey() {
				t.Fatalf("ordering differs at row %d", i)
			}
		}
	}
}
