package relalg

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"idaax/internal/expr"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// Options tunes how the select pipeline executes. The DB2 engine uses
// Parallelism 1 (tuple-at-a-time semantics), the accelerator passes its number
// of worker slices.
type Options struct {
	// Parallelism is the number of goroutines used for filter and aggregation.
	// Values < 1 mean "one".
	Parallelism int
}

func (o Options) workers(n int) int {
	p := o.Parallelism
	if p < 1 {
		p = 1
	}
	if p > runtime.NumCPU()*4 {
		p = runtime.NumCPU() * 4
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// ExecuteSelect runs WHERE, GROUP BY/aggregation, HAVING, projection,
// DISTINCT, ORDER BY and LIMIT/OFFSET of sel over the already-joined FROM
// relation. The caller is responsible for building `from` (scan + joins) so
// that engine-specific storage details stay out of this package.
func ExecuteSelect(from *Relation, sel *sqlparse.SelectStmt, opts Options) (*Relation, error) {
	filtered, err := Filter(from, sel.Where, opts)
	if err != nil {
		return nil, err
	}

	var projected *Relation
	var sortKeys [][]types.Value
	if needsAggregation(sel) {
		projected, sortKeys, err = aggregateAndProject(filtered, sel, opts)
	} else {
		projected, sortKeys, err = projectPlain(filtered, sel)
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		projected, sortKeys = distinct(projected, sortKeys)
	}
	if len(sel.OrderBy) > 0 {
		if err := orderBy(projected, sortKeys, sel.OrderBy); err != nil {
			return nil, err
		}
	}
	applyLimit(projected, sel.Limit, sel.Offset)
	return projected, nil
}

// Filter returns the rows of rel satisfying where. With Parallelism > 1 the
// predicate is evaluated on row chunks concurrently (the accelerator's
// "snippet processors").
func Filter(rel *Relation, where sqlparse.Expr, opts Options) (*Relation, error) {
	if where == nil {
		return rel, nil
	}
	out := &Relation{Cols: rel.Cols}
	n := len(rel.Rows)
	if n == 0 {
		return out, nil
	}
	workers := opts.workers(n)
	if workers == 1 {
		env := expr.NewEnv(rel.Cols)
		for _, row := range rel.Rows {
			ok, err := env.EvalBool(where, row)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil
	}

	chunk := (n + workers - 1) / workers
	results := make([][]types.Row, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			env := expr.NewEnv(rel.Cols)
			var keep []types.Row
			for _, row := range rel.Rows[lo:hi] {
				ok, err := env.EvalBool(where, row)
				if err != nil {
					errs[w] = err
					return
				}
				if ok {
					keep = append(keep, row)
				}
			}
			results[w] = keep
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, part := range results {
		out.Rows = append(out.Rows, part...)
	}
	return out, nil
}

// NeedsAggregation reports whether the SELECT takes the grouped-aggregation
// path (GROUP BY, aggregate functions in the select list, or HAVING). The
// shard scatter-gather executor uses it to pick between plain row merging and
// two-phase partial aggregation.
func NeedsAggregation(sel *sqlparse.SelectStmt) bool { return needsAggregation(sel) }

func needsAggregation(sel *sqlparse.SelectStmt) bool {
	if len(sel.GroupBy) > 0 {
		return true
	}
	for _, item := range sel.Items {
		if item.Expr != nil && sqlparse.ContainsAggregate(item.Expr) {
			return true
		}
	}
	if sel.Having != nil {
		return true
	}
	return false
}

// outputColumns derives the projected column descriptors for a select list.
func outputColumns(items []sqlparse.SelectItem, rel *Relation, env *expr.Env) []expr.InputColumn {
	var cols []expr.InputColumn
	for i, item := range items {
		if item.Star {
			for _, c := range rel.Cols {
				if item.StarTable != "" && !strings.EqualFold(item.StarTable, c.Qualifier) {
					continue
				}
				cols = append(cols, expr.InputColumn{Name: c.Name, Kind: c.Kind})
			}
			continue
		}
		name := item.Alias
		if name == "" {
			name = expr.OutputName(item.Expr, i)
		}
		cols = append(cols, expr.InputColumn{Name: types.NormalizeName(name), Kind: env.InferKind(item.Expr)})
	}
	return cols
}

// projectRow evaluates the select list for one input row.
func projectRow(items []sqlparse.SelectItem, rel *Relation, env *expr.Env, row types.Row) (types.Row, error) {
	out := make(types.Row, 0, len(items))
	for _, item := range items {
		if item.Star {
			for ci, c := range rel.Cols {
				if item.StarTable != "" && !strings.EqualFold(item.StarTable, c.Qualifier) {
					continue
				}
				out = append(out, row[ci])
			}
			continue
		}
		v, err := env.Eval(item.Expr, row)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func projectPlain(rel *Relation, sel *sqlparse.SelectStmt) (*Relation, [][]types.Value, error) {
	env := expr.NewEnv(rel.Cols)
	out := &Relation{Cols: outputColumns(sel.Items, rel, env)}
	var sortKeys [][]types.Value
	needKeys := len(sel.OrderBy) > 0
	outEnvCols := out.Cols

	for _, row := range rel.Rows {
		projected, err := projectRow(sel.Items, rel, env, row)
		if err != nil {
			return nil, nil, err
		}
		out.Rows = append(out.Rows, projected)
		if needKeys {
			keys, err := computeSortKeys(sel.OrderBy, env, row, outEnvCols, projected)
			if err != nil {
				return nil, nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	return out, sortKeys, nil
}

// computeSortKeys evaluates ORDER BY expressions. Each expression is evaluated
// against the projected output when it only references output columns (or is
// an output position literal); otherwise it is evaluated against the input row.
func computeSortKeys(orderBy []sqlparse.OrderItem, inEnv *expr.Env, inRow types.Row, outCols []expr.InputColumn, outRow types.Row) ([]types.Value, error) {
	keys := make([]types.Value, len(orderBy))
	outEnv := expr.NewEnv(outCols)
	for i, item := range orderBy {
		if lit, ok := item.Expr.(*sqlparse.Literal); ok && lit.Val.Kind == types.KindInt {
			pos := int(lit.Val.Int)
			if pos < 1 || pos > len(outRow) {
				return nil, fmt.Errorf("relalg: ORDER BY position %d out of range", pos)
			}
			keys[i] = outRow[pos-1]
			continue
		}
		if refsResolvable(item.Expr, outEnv) {
			v, err := outEnv.Eval(item.Expr, outRow)
			if err == nil {
				keys[i] = v
				continue
			}
		}
		v, err := inEnv.Eval(item.Expr, inRow)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

func refsResolvable(e sqlparse.Expr, env *expr.Env) bool {
	ok := true
	sqlparse.WalkExprs(e, func(n sqlparse.Expr) {
		if ref, isRef := n.(*sqlparse.ColumnRef); isRef {
			if _, err := env.Resolve(ref); err != nil {
				ok = false
			}
		}
	})
	return ok
}

func distinct(rel *Relation, sortKeys [][]types.Value) (*Relation, [][]types.Value) {
	seen := make(map[string]bool, len(rel.Rows))
	out := &Relation{Cols: rel.Cols}
	var keys [][]types.Value
	var buf []byte
	for i, row := range rel.Rows {
		buf = appendRowKey(buf[:0], row)
		if seen[string(buf)] {
			continue
		}
		seen[string(buf)] = true
		out.Rows = append(out.Rows, row)
		if sortKeys != nil {
			keys = append(keys, sortKeys[i])
		}
	}
	return out, keys
}

// appendRowKey renders the whole row as a DISTINCT key into buf (reused
// across rows; the key is copied by the map insert only for unseen rows).
func appendRowKey(buf []byte, row types.Row) []byte {
	for _, v := range row {
		buf = v.AppendGroupKey(buf)
		buf = append(buf, 0x1f)
	}
	return buf
}

func orderBy(rel *Relation, sortKeys [][]types.Value, items []sqlparse.OrderItem) error {
	if len(sortKeys) != len(rel.Rows) {
		return fmt.Errorf("relalg: internal error: %d sort keys for %d rows", len(sortKeys), len(rel.Rows))
	}
	indices := make([]int, len(rel.Rows))
	for i := range indices {
		indices[i] = i
	}
	var sortErr error
	sort.SliceStable(indices, func(a, b int) bool {
		ka, kb := sortKeys[indices[a]], sortKeys[indices[b]]
		for i, item := range items {
			c, err := types.Compare(ka[i], kb[i])
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	newRows := make([]types.Row, len(rel.Rows))
	for i, idx := range indices {
		newRows[i] = rel.Rows[idx]
	}
	rel.Rows = newRows
	return nil
}

func applyLimit(rel *Relation, limit, offset int64) {
	if offset > 0 {
		if offset >= int64(len(rel.Rows)) {
			rel.Rows = nil
		} else {
			rel.Rows = rel.Rows[offset:]
		}
	}
	if limit >= 0 && int64(len(rel.Rows)) > limit {
		rel.Rows = rel.Rows[:limit]
	}
}
