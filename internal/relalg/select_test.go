package relalg

import (
	"testing"

	"idaax/internal/expr"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

func ordersRelation() *Relation {
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "REGION", Kind: types.KindString},
		types.Column{Name: "AMOUNT", Kind: types.KindFloat},
	)
	rows := []types.Row{
		{types.NewInt(1), types.NewString("EU"), types.NewFloat(10)},
		{types.NewInt(2), types.NewString("US"), types.NewFloat(20)},
		{types.NewInt(3), types.NewString("EU"), types.NewFloat(30)},
		{types.NewInt(4), types.NewString("US"), types.NewFloat(40)},
		{types.NewInt(5), types.NewString("EU"), types.Null()},
	}
	return FromTable("ORDERS", schema, rows)
}

func customersRelation() *Relation {
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "NAME", Kind: types.KindString},
	)
	rows := []types.Row{
		{types.NewInt(1), types.NewString("ann")},
		{types.NewInt(2), types.NewString("bob")},
		{types.NewInt(3), types.NewString("cyd")},
	}
	return FromTable("CUSTOMERS", schema, rows)
}

func mustSelect(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlparse.SelectStmt)
}

func execOn(t *testing.T, rel *Relation, sql string, par int) *Relation {
	t.Helper()
	out, err := ExecuteSelect(rel, mustSelect(t, sql), Options{Parallelism: par})
	if err != nil {
		t.Fatalf("ExecuteSelect(%q): %v", sql, err)
	}
	return out
}

func TestFilterAndProjection(t *testing.T) {
	out := execOn(t, ordersRelation(), "SELECT id, amount * 2 AS dbl FROM orders WHERE amount > 15", 1)
	if len(out.Rows) != 3 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	if out.Cols[1].Name != "DBL" {
		t.Errorf("alias: %q", out.Cols[1].Name)
	}
	if f, _ := out.Rows[0][1].AsFloat(); f != 40 {
		t.Errorf("projection value: %v", out.Rows[0][1])
	}
}

func TestStarProjection(t *testing.T) {
	out := execOn(t, ordersRelation(), "SELECT * FROM orders", 1)
	if len(out.Cols) != 3 || len(out.Rows) != 5 {
		t.Fatalf("star projection: %d cols, %d rows", len(out.Cols), len(out.Rows))
	}
}

func TestGroupByAggregates(t *testing.T) {
	out := execOn(t, ordersRelation(),
		"SELECT region, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS avg_a, MIN(amount), MAX(amount) FROM orders GROUP BY region ORDER BY region", 1)
	if len(out.Rows) != 2 {
		t.Fatalf("groups = %d", len(out.Rows))
	}
	eu := out.Rows[0]
	if eu[0].AsString() != "EU" {
		t.Fatalf("first group %v", eu[0])
	}
	if n, _ := eu[1].AsInt(); n != 3 {
		t.Errorf("COUNT(*) EU = %d (NULL amount still counts the row)", n)
	}
	if s, _ := eu[2].AsFloat(); s != 40 {
		t.Errorf("SUM EU = %v", s)
	}
	if a, _ := eu[3].AsFloat(); a != 20 {
		t.Errorf("AVG EU = %v (NULLs excluded)", a)
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	rel := &Relation{Cols: ordersRelation().Cols}
	out := execOn(t, rel, "SELECT COUNT(*), SUM(amount) FROM orders", 1)
	if len(out.Rows) != 1 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	if n, _ := out.Rows[0][0].AsInt(); n != 0 {
		t.Errorf("COUNT on empty = %v", n)
	}
	if !out.Rows[0][1].IsNull() {
		t.Errorf("SUM on empty should be NULL")
	}
}

func TestHaving(t *testing.T) {
	out := execOn(t, ordersRelation(),
		"SELECT region, SUM(amount) AS total FROM orders GROUP BY region HAVING SUM(amount) > 50", 1)
	if len(out.Rows) != 1 || out.Rows[0][0].AsString() != "US" {
		t.Fatalf("having result: %+v", out.Rows)
	}
}

func TestDistinctOrderByLimit(t *testing.T) {
	out := execOn(t, ordersRelation(), "SELECT DISTINCT region FROM orders ORDER BY region DESC", 1)
	if len(out.Rows) != 2 || out.Rows[0][0].AsString() != "US" {
		t.Fatalf("distinct/order: %+v", out.Rows)
	}
	out = execOn(t, ordersRelation(), "SELECT id FROM orders ORDER BY amount DESC LIMIT 2", 1)
	if len(out.Rows) != 2 {
		t.Fatalf("limit: %d", len(out.Rows))
	}
	if id, _ := out.Rows[0][0].AsInt(); id != 4 {
		t.Errorf("order by desc first id = %d", id)
	}
	out = execOn(t, ordersRelation(), "SELECT id FROM orders ORDER BY 1 DESC LIMIT 1 OFFSET 1", 1)
	if id, _ := out.Rows[0][0].AsInt(); id != 4 {
		t.Errorf("positional order by + offset: %d", id)
	}
}

func TestOrderByAliasAndExpression(t *testing.T) {
	out := execOn(t, ordersRelation(), "SELECT id, amount * -1 AS neg FROM orders WHERE amount IS NOT NULL ORDER BY neg", 1)
	if id, _ := out.Rows[0][0].AsInt(); id != 4 {
		t.Fatalf("order by alias: first id = %d", id)
	}
	out = execOn(t, ordersRelation(), "SELECT id FROM orders WHERE amount IS NOT NULL ORDER BY amount + id DESC", 1)
	if id, _ := out.Rows[0][0].AsInt(); id != 4 {
		t.Fatalf("order by input expression: first id = %d", id)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	queries := []string{
		"SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region",
		"SELECT id FROM orders WHERE amount >= 20 ORDER BY id",
		"SELECT COUNT(*) FROM orders WHERE region = 'EU'",
	}
	// Build a larger relation to force the parallel paths.
	base := ordersRelation()
	big := &Relation{Cols: base.Cols}
	for i := 0; i < 2000; i++ {
		for _, r := range base.Rows {
			row := r.Clone()
			row[0] = types.NewInt(int64(i*10) + row[0].Int)
			big.Rows = append(big.Rows, row)
		}
	}
	for _, q := range queries {
		seq := execOn(t, big, q, 1)
		par := execOn(t, big, q, 8)
		if len(seq.Rows) != len(par.Rows) {
			t.Fatalf("%q: %d vs %d rows", q, len(seq.Rows), len(par.Rows))
		}
		for i := range seq.Rows {
			for j := range seq.Rows[i] {
				if !types.Equal(seq.Rows[i][j], par.Rows[i][j]) && !(seq.Rows[i][j].IsNull() && par.Rows[i][j].IsNull()) {
					t.Fatalf("%q row %d col %d: %v vs %v", q, i, j, seq.Rows[i][j], par.Rows[i][j])
				}
			}
		}
	}
}

func TestJoinInnerAndLeft(t *testing.T) {
	sel := mustSelect(t, "SELECT o.id, c.name FROM orders o INNER JOIN customers c ON o.id = c.id ORDER BY o.id")
	joined, err := JoinAll([]*Relation{Requalify(ordersRelation(), "O"), Requalify(customersRelation(), "C")}, sel.From, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSelect(joined, sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("inner join rows = %d", len(out.Rows))
	}

	sel = mustSelect(t, "SELECT o.id, c.name FROM orders o LEFT JOIN customers c ON o.id = c.id ORDER BY o.id")
	joined, err = JoinAll([]*Relation{Requalify(ordersRelation(), "O"), Requalify(customersRelation(), "C")}, sel.From, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err = ExecuteSelect(joined, sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 5 {
		t.Fatalf("left join rows = %d", len(out.Rows))
	}
	if !out.Rows[4][1].IsNull() {
		t.Errorf("unmatched left row should have NULL name: %v", out.Rows[4][1])
	}
}

func TestHashJoinParallelMatchesSequential(t *testing.T) {
	left := ordersRelation()
	big := &Relation{Cols: left.Cols}
	for i := 0; i < 3000; i++ {
		for _, r := range left.Rows {
			row := r.Clone()
			row[0] = types.NewInt(int64(i%3) + 1)
			big.Rows = append(big.Rows, row)
		}
	}
	sel := mustSelect(t, "SELECT o.id, c.name FROM orders o INNER JOIN customers c ON o.id = c.id")
	seq, err := JoinAll([]*Relation{Requalify(big, "O"), Requalify(customersRelation(), "C")}, sel.From, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := JoinAll([]*Relation{Requalify(big, "O"), Requalify(customersRelation(), "C")}, sel.From, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Rows) != len(par.Rows) {
		t.Fatalf("parallel join cardinality %d vs %d", len(par.Rows), len(seq.Rows))
	}
}

func TestCrossJoin(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM a, b")
	out, err := JoinAll([]*Relation{Requalify(customersRelation(), "A"), Requalify(customersRelation(), "B")}, sel.From, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 9 {
		t.Fatalf("cross join rows = %d", len(out.Rows))
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	empty, err := JoinAll(nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ExecuteSelect(empty, mustSelect(t, "SELECT 1 + 1 AS two, UPPER('x') AS s"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 || out.Rows[0][0].Int != 2 || out.Rows[0][1].Str != "X" {
		t.Fatalf("scalar select: %+v", out.Rows)
	}
}

func TestSchemaDerivation(t *testing.T) {
	rel := ordersRelation()
	s := rel.Schema()
	if s.Len() != 3 || s.Columns[0].Name != "ID" {
		t.Fatalf("schema: %v", s)
	}
	// Duplicate output names get disambiguated.
	dup := &Relation{Cols: append(append([]expr.InputColumn(nil), rel.Cols...), rel.Cols[0])}
	ds := dup.Schema()
	if ds.Columns[3].Name == ds.Columns[0].Name {
		t.Errorf("duplicate column names not disambiguated: %v", ds.Names())
	}
}
