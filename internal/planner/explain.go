package planner

import (
	"fmt"
	"strings"
	"time"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// ScanActuals is what one plan scan operator actually did at execution time,
// summed over every shard that scanned the table (EXPLAIN ANALYZE).
type ScanActuals struct {
	// Rows the scan produced (after pushdown filtering), across all shards.
	Rows int64
	// Elapsed is the longest single-shard scan time — the wall-clock cost of
	// the parallel scan, comparable to the statement's elapsed time.
	Elapsed time.Duration
	// Shards is how many per-shard scans fed the operator.
	Shards int
	// BlocksPruned and Batches aggregate the scans' zone-map and batch work.
	BlocksPruned int64
	Batches      int64
}

// Actuals carries a statement's measured execution profile into
// DescribeAnalyze, keyed the way the plan names its operators.
type Actuals struct {
	// Elapsed and Rows are the whole statement's wall time and result size.
	Elapsed time.Duration
	Rows    int64
	// Retries counts rebalance-racing re-executions (sharded backends).
	Retries int64
	// Scans maps the normalized FROM item name to that scan's actuals.
	Scans map[string]ScanActuals
}

// Describe renders the plan as indented text lines for EXPLAIN.
func (p *Plan) Describe() []string { return p.describe(nil) }

// DescribeAnalyze renders the plan with each operator's actual rows and
// elapsed time from a traced execution beside the planner's estimates, so
// estimation error is directly visible (EXPLAIN ANALYZE).
func (p *Plan) DescribeAnalyze(a Actuals) []string { return p.describe(&a) }

func (p *Plan) describe(a *Actuals) []string {
	var lines []string
	lines = append(lines, fmt.Sprintf("estimated cost=%.1f rows=%.0f", p.EstCost, p.EstRows))
	if a != nil {
		actual := fmt.Sprintf("actual rows=%d time=%s", a.Rows, fmtDur(a.Elapsed))
		if a.Retries > 0 {
			actual += fmt.Sprintf(" retries=%d", a.Retries)
		}
		lines = append(lines, actual)
	}
	if p.Vectorized {
		lines = append(lines, fmt.Sprintf("execution: vectorized (%s)", p.VectorizedMode))
	} else {
		lines = append(lines, "execution: row-at-a-time")
	}
	if p.Shards > 1 {
		lines = append(lines, p.placementLine())
	}
	lines = append(lines, p.treeLines(a)...)
	return lines
}

// fmtDur renders a duration for plan display (milliseconds, fixed precision,
// so golden tests can normalize with one pattern).
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
}

func (p *Plan) placementLine() string {
	participants := p.Shards
	if p.Candidates != nil {
		participants = len(p.Candidates)
	}
	switch {
	case p.EmptyCandidates:
		return fmt.Sprintf("placement: pruned to 0 of %d shards (distribution-key predicate is unsatisfiable)", p.Shards)
	case p.Placement == PlacementColocated && participants == 1 && p.Candidates != nil:
		return fmt.Sprintf("placement: single shard %d of %d (pruned by distribution key)", p.Candidates[0], p.Shards)
	case p.Placement == PlacementColocated:
		return fmt.Sprintf("placement: co-located, shard-local execution on %s", p.shardSetText(participants))
	case p.Placement == PlacementBroadcast:
		var names []string
		for _, scan := range p.Scans {
			if scan.Broadcast {
				names = append(names, scan.Item.Name())
			}
		}
		return fmt.Sprintf("placement: broadcast %s to %s, join shard-local",
			strings.Join(names, ", "), p.shardSetText(participants))
	default:
		return fmt.Sprintf("placement: gather base rows from %d shards, join at coordinator", p.Shards)
	}
}

func (p *Plan) shardSetText(participants int) string {
	if p.Candidates == nil || participants == p.Shards {
		return fmt.Sprintf("all %d shards", p.Shards)
	}
	parts := make([]string, len(p.Candidates))
	for i, s := range p.Candidates {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return fmt.Sprintf("shards [%s] (%d of %d pruned)",
		strings.Join(parts, " "), p.Shards-participants, p.Shards)
}

// treeLines renders the left-deep join tree, deepest scan first.
func (p *Plan) treeLines(a *Actuals) []string {
	var render func(step int) []string
	render = func(step int) []string {
		if step < 0 {
			return []string{p.scanLine(0, a)}
		}
		s := p.Steps[step]
		method := s.Method.String()
		if method == "AUTO" { // unrewritten statement: the executor chooses
			method = "JOIN"
		}
		head := fmt.Sprintf("%s rows=%.0f cost=%.1f", method, s.EstRows, s.EstCost)
		if s.On != nil {
			head = fmt.Sprintf("%s (%s) rows=%.0f cost=%.1f", method, FormatExpr(s.On), s.EstRows, s.EstCost)
		}
		if s.KeyJoin {
			head += " [co-located on distribution keys]"
		}
		if s.Vectorized {
			head += " [vectorized batch]"
		}
		out := []string{head}
		for _, l := range render(step - 1) {
			out = append(out, "  "+l)
		}
		out = append(out, "  "+p.scanLine(step+1, a))
		return out
	}
	return render(len(p.Steps) - 1)
}

func (p *Plan) scanLine(i int, a *Actuals) string {
	scan := p.Scans[i]
	name := scan.Item.Name()
	if scan.Item.Subquery != nil {
		return fmt.Sprintf("SUBQUERY %s rows=%.0f", name, scan.EstRows)
	}
	var sb strings.Builder
	label := scan.Item.Table
	if label == "" {
		label = name
	} else if !strings.EqualFold(label, name) {
		label += " " + name
	}
	fmt.Fprintf(&sb, "SCAN %s rows=%.0f/%.0f", label, scan.EstRows, scan.BaseRows)
	if len(scan.Conjuncts) > 0 {
		parts := make([]string, len(scan.Conjuncts))
		for i, c := range scan.Conjuncts {
			parts[i] = FormatExpr(c)
		}
		fmt.Fprintf(&sb, " pushdown=[%s]", strings.Join(parts, " AND "))
	}
	if scan.Known && scan.Info.Stats.Analyzed {
		sb.WriteString(" (analyzed)")
	}
	if scan.Encoding != "" {
		fmt.Fprintf(&sb, " encoding=%s", scan.Encoding)
	}
	if scan.Broadcast {
		sb.WriteString(" [broadcast]")
	}
	if scan.EmptyCandidates {
		sb.WriteString(" [no candidate shards]")
	} else if scan.Candidates != nil {
		parts := make([]string, len(scan.Candidates))
		for i, s := range scan.Candidates {
			parts[i] = fmt.Sprintf("%d", s)
		}
		fmt.Fprintf(&sb, " [shards %s]", strings.Join(parts, " "))
	}
	if a != nil {
		if act, ok := a.Scans[types.NormalizeName(name)]; ok {
			fmt.Fprintf(&sb, " (actual rows=%d time=%s", act.Rows, fmtDur(act.Elapsed))
			if act.Shards > 1 {
				fmt.Fprintf(&sb, " shards=%d", act.Shards)
			}
			if act.BlocksPruned > 0 {
				fmt.Fprintf(&sb, " pruned=%d", act.BlocksPruned)
			}
			sb.WriteString(")")
		} else {
			sb.WriteString(" (actual: not executed)")
		}
	}
	return sb.String()
}

// FormatExpr renders an expression in SQL-ish syntax for plan display.
func FormatExpr(e sqlparse.Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *sqlparse.ColumnRef:
		return n.String()
	case *sqlparse.Literal:
		if n.Val.Kind == types.KindString {
			return "'" + n.Val.Str + "'"
		}
		return n.Val.String()
	case *sqlparse.BinaryExpr:
		return fmt.Sprintf("%s %s %s", FormatExpr(n.Left), n.Op, FormatExpr(n.Right))
	case *sqlparse.UnaryExpr:
		return fmt.Sprintf("%s %s", n.Op, FormatExpr(n.Operand))
	case *sqlparse.FuncCall:
		if n.Star {
			return strings.ToUpper(n.Name) + "(*)"
		}
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = FormatExpr(a)
		}
		return strings.ToUpper(n.Name) + "(" + strings.Join(parts, ", ") + ")"
	case *sqlparse.InExpr:
		parts := make([]string, len(n.List))
		for i, v := range n.List {
			parts[i] = FormatExpr(v)
		}
		op := "IN"
		if n.Negate {
			op = "NOT IN"
		}
		return fmt.Sprintf("%s %s (%s)", FormatExpr(n.Operand), op, strings.Join(parts, ", "))
	case *sqlparse.BetweenExpr:
		op := "BETWEEN"
		if n.Negate {
			op = "NOT BETWEEN"
		}
		return fmt.Sprintf("%s %s %s AND %s", FormatExpr(n.Operand), op, FormatExpr(n.Low), FormatExpr(n.High))
	case *sqlparse.IsNullExpr:
		if n.Negate {
			return FormatExpr(n.Operand) + " IS NOT NULL"
		}
		return FormatExpr(n.Operand) + " IS NULL"
	case *sqlparse.LikeExpr:
		op := "LIKE"
		if n.Negate {
			op = "NOT LIKE"
		}
		return fmt.Sprintf("%s %s %s", FormatExpr(n.Operand), op, FormatExpr(n.Pattern))
	case *sqlparse.CastExpr:
		return fmt.Sprintf("CAST(%s AS %s)", FormatExpr(n.Operand), n.To)
	case *sqlparse.CaseExpr:
		return "CASE ... END"
	default:
		return fmt.Sprintf("%T", e)
	}
}
