package planner

import (
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/stats"
)

// Cost model constants. Units are "row touches"; only ratios matter.
const (
	costHashBuildPerRow = 2.0  // hash table insert
	costHashProbePerRow = 1.2  // hash lookup
	costPairPerRow      = 1.0  // nested-loop pair evaluation
	costOutputPerRow    = 0.5  // materialising a joined row
	costNetworkPerRow   = 2.0  // shipping a row shard -> coordinator (or copy)
	minEstRows          = 0.05 // floor that keeps products meaningful
)

func clampRows(r float64) float64 {
	if r < minEstRows {
		return minEstRows
	}
	return r
}

// reorderable reports whether the FROM clause may be rearranged: inner/cross
// joins only, every reference resolvable, and no bare `*` (whose output
// column order follows the FROM order).
func (a *analysis) reorderable() bool {
	return len(a.scans) > 1 && a.innerOnly && a.ownersKnown && !a.bareStar
}

// rewritable is reorderable minus the bare-star restriction: the FROM order
// is kept but ON conditions may still be re-derived (e.g. hoisting WHERE
// equalities into comma joins).
func (a *analysis) rewritable() bool {
	return len(a.scans) > 1 && a.innerOnly && a.ownersKnown
}

// edgeSelectivity estimates one equality edge as 1/max(NDV left, NDV right).
func (a *analysis) edgeSelectivity(e equiEdge) float64 {
	ndv := 0.0
	if col := a.column(a.scans[e.a], e.acol); col != nil && col.NDV > ndv {
		ndv = col.NDV
	}
	if col := a.column(a.scans[e.b], e.bcol); col != nil && col.NDV > ndv {
		ndv = col.NDV
	}
	if ndv < 1 {
		return stats.DefaultEqSelectivity
	}
	return 1 / ndv
}

// joinEstimate estimates rows and cost of joining item t into the set mask.
func (a *analysis) joinEstimate(mask uint64, maskRows float64, t int) (outRows, stepCost float64, method relalg.JoinMethod, keyJoin bool) {
	tRows := clampRows(a.scans[t].EstRows)
	maskRows = clampRows(maskRows)
	sel := 1.0
	hasEqui := false
	for _, e := range a.equiEdges {
		var other int
		switch {
		case e.a == t && mask&(1<<uint(e.b)) != 0:
			other = e.b
		case e.b == t && mask&(1<<uint(e.a)) != 0:
			other = e.a
		default:
			continue
		}
		hasEqui = true
		sel *= a.edgeSelectivity(e)
		if a.isKeyEdge(e, t, other) {
			keyJoin = true
		}
	}
	for _, oc := range a.crossConjuncts {
		if oc.mask&(1<<uint(t)) != 0 && oc.mask&^(mask|1<<uint(t)) == 0 {
			sel *= stats.DefaultRangeSelectivity
		}
	}
	outRows = clampRows(maskRows * tRows * sel)

	hashCost := costHashBuildPerRow*tRows + costHashProbePerRow*maskRows + costOutputPerRow*outRows
	nlCost := costPairPerRow*maskRows*tRows + costOutputPerRow*outRows
	if hasEqui && hashCost <= nlCost {
		return outRows, hashCost, relalg.MethodHash, keyJoin
	}
	return outRows, nlCost, relalg.MethodNestedLoop, keyJoin
}

// isKeyEdge reports that edge e joins t's distribution key to other's
// distribution key — the property that keeps a hash-partitioned join
// shard-local.
func (a *analysis) isKeyEdge(e equiEdge, t, other int) bool {
	ti, oi := a.scans[t].Info, a.scans[other].Info
	if ti.DistKey == "" || oi.DistKey == "" {
		return false
	}
	if ti.Migrating || oi.Migrating {
		// Mid-rebalance, equal keys of a migrating table may briefly live on
		// different shards; the join must not assume co-location.
		return false
	}
	tcol, ocol := e.acol, e.bcol
	if e.b == t {
		tcol, ocol = e.bcol, e.acol
	}
	return tcol == ti.DistKey && ocol == oi.DistKey
}

// chooseOrder picks the join order: exhaustive left-deep dynamic programming
// up to maxDPTables, greedy insertion beyond. It returns the original order
// when reordering is not admissible.
func chooseOrder(a *analysis) (order []int, reordered bool) {
	n := len(a.scans)
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	if !a.reorderable() {
		return order, false
	}
	var best []int
	if n <= maxDPTables {
		best = a.dpOrder()
	} else {
		best = a.greedyOrder()
	}
	for i := range best {
		if best[i] != order[i] {
			return best, true
		}
	}
	return best, false
}

type dpState struct {
	rows  float64
	cost  float64
	order []int
	set   bool
}

func (a *analysis) dpOrder() []int {
	n := len(a.scans)
	dp := make([]dpState, 1<<uint(n))
	for i := 0; i < n; i++ {
		rows := clampRows(a.scans[i].EstRows)
		dp[1<<uint(i)] = dpState{rows: rows, cost: rows, order: []int{i}, set: true}
	}
	for mask := uint64(1); mask < 1<<uint(n); mask++ {
		cur := dp[mask]
		if !cur.set {
			continue
		}
		for t := 0; t < n; t++ {
			bit := uint64(1) << uint(t)
			if mask&bit != 0 {
				continue
			}
			outRows, stepCost, _, _ := a.joinEstimate(mask, cur.rows, t)
			next := mask | bit
			total := cur.cost + clampRows(a.scans[t].EstRows) + stepCost
			if !dp[next].set || total < dp[next].cost {
				dp[next] = dpState{
					rows:  outRows,
					cost:  total,
					order: append(append([]int(nil), cur.order...), t),
					set:   true,
				}
			}
		}
	}
	return dp[1<<uint(n)-1].order
}

func (a *analysis) greedyOrder() []int {
	n := len(a.scans)
	used := make([]bool, n)
	// Start with the cheapest scan.
	start := 0
	for i := 1; i < n; i++ {
		if a.scans[i].EstRows < a.scans[start].EstRows {
			start = i
		}
	}
	order := []int{start}
	used[start] = true
	mask := uint64(1) << uint(start)
	rows := clampRows(a.scans[start].EstRows)
	for len(order) < n {
		bestT, bestCost, bestRows := -1, 0.0, 0.0
		for t := 0; t < n; t++ {
			if used[t] {
				continue
			}
			outRows, stepCost, _, _ := a.joinEstimate(mask, rows, t)
			if bestT < 0 || stepCost < bestCost {
				bestT, bestCost, bestRows = t, stepCost, outRows
			}
		}
		order = append(order, bestT)
		used[bestT] = true
		mask |= 1 << uint(bestT)
		rows = bestRows
	}
	return order
}

// rebuildStatement produces the statement the executors run: the FROM items
// in plan order, each non-first item carrying the AND of the join-graph
// conjuncts first evaluable at that position. When the analysis is not
// rewritable the original statement is returned untouched.
func rebuildStatement(a *analysis, order []int, reordered bool) (*sqlparse.SelectStmt, []*JoinStep, []relalg.JoinMethod) {
	n := len(order)
	steps := make([]*JoinStep, 0, n-1)
	methods := make([]relalg.JoinMethod, 0, n-1)

	if !a.rewritable() {
		// Keep the statement as-is; still estimate each step for EXPLAIN.
		mask := uint64(1)
		rows := clampRows(a.scans[0].EstRows)
		cost := rows
		for i := 1; i < n; i++ {
			outRows, stepCost, method, keyJoin := a.joinEstimate(mask, rows, i)
			cost += clampRows(a.scans[i].EstRows) + stepCost
			steps = append(steps, &JoinStep{
				Method:  relalg.MethodAuto,
				On:      a.sel.From[i].On,
				KeyJoin: keyJoin,
				EstRows: outRows,
				EstCost: cost,
			})
			methods = append(methods, relalg.MethodAuto)
			_ = method
			mask |= 1 << uint(i)
			rows = outRows
		}
		return a.sel, steps, methods
	}

	assigned := make([]bool, len(a.onConjuncts))
	newFrom := make([]sqlparse.FromItem, n)
	first := a.sel.From[order[0]]
	first.Join = sqlparse.JoinNone
	first.On = nil
	newFrom[0] = first

	mask := uint64(1) << uint(order[0])
	rows := clampRows(a.scans[order[0]].EstRows)
	cost := rows
	for k := 1; k < n; k++ {
		t := order[k]
		covered := mask | 1<<uint(t)
		var on sqlparse.Expr
		for ci, oc := range a.onConjuncts {
			if assigned[ci] || oc.mask&^covered != 0 {
				continue
			}
			assigned[ci] = true
			if on == nil {
				on = oc.e
			} else {
				on = &sqlparse.BinaryExpr{Op: sqlparse.OpAnd, Left: on, Right: oc.e}
			}
		}
		item := a.sel.From[t]
		if on != nil {
			item.Join = sqlparse.JoinInner
		} else {
			item.Join = sqlparse.JoinCross
		}
		item.On = on
		newFrom[k] = item

		outRows, stepCost, method, keyJoin := a.joinEstimate(mask, rows, t)
		cost += clampRows(a.scans[t].EstRows) + stepCost
		steps = append(steps, &JoinStep{
			Method:  method,
			On:      on,
			KeyJoin: keyJoin,
			EstRows: outRows,
			EstCost: cost,
		})
		methods = append(methods, method)
		mask = covered
		rows = outRows
	}

	newSel := *a.sel
	newSel.From = newFrom
	return &newSel, steps, methods
}

// choosePlacement decides the shard strategy for the plan. The decision only
// applies when every FROM item is a sharded base table of the same group; the
// executor falls back to gather otherwise.
func choosePlacement(a *analysis, p *Plan) {
	shards := 1
	allSharded := true
	for _, scan := range p.Scans {
		if !scan.Known || scan.Info.Shards <= 1 {
			allSharded = false
			continue
		}
		if shards == 1 {
			shards = scan.Info.Shards
		} else if scan.Info.Shards != shards {
			allSharded = false
		}
	}
	p.Shards = shards
	if shards == 1 {
		p.Placement = PlacementLocal
		return
	}
	if !allSharded {
		p.Placement = PlacementGather
		return
	}

	if len(p.Scans) == 1 {
		// Single sharded table: scatter is trivially "co-located"; the
		// candidate set decides pruning.
		p.Placement = PlacementColocated
		p.Candidates = p.Scans[0].Candidates
		p.EmptyCandidates = p.Scans[0].EmptyCandidates
		return
	}
	if !a.rewritable() {
		p.Placement = PlacementGather
		return
	}

	// Walk the execution order: a table stays shard-local when it is
	// hash-distributed and joined to an already-local table on both
	// distribution keys; everything else must be broadcast.
	orderIdx := make([]int, len(p.Scans)) // position in analysis order
	for k := range p.Scans {
		for i, s := range a.scans {
			if s == p.Scans[k] {
				orderIdx[k] = i
			}
		}
	}
	var localMask uint64
	var localRows, broadcastRows float64
	anyLocal := false
	for k, scan := range p.Scans {
		t := orderIdx[k]
		isHash := scan.Info.DistKey != "" && scan.Info.PlaceKey != nil && !scan.Info.Migrating
		local := false
		if isHash && !anyLocal {
			local = true
		} else if isHash {
			for _, e := range a.equiEdges {
				var other int
				switch {
				case e.a == t && localMask&(1<<uint(e.b)) != 0:
					other = e.b
				case e.b == t && localMask&(1<<uint(e.a)) != 0:
					other = e.a
				default:
					continue
				}
				if a.isKeyEdge(e, t, other) {
					local = true
					break
				}
			}
		}
		if local {
			anyLocal = true
			localMask |= 1 << uint(t)
			localRows += scan.EstRows
			p.Candidates = intersectCandidates(p.Candidates, scan.Candidates)
		} else {
			scan.Broadcast = true
			broadcastRows += scan.EstRows
		}
	}
	if !anyLocal {
		for _, scan := range p.Scans {
			scan.Broadcast = false
		}
		p.Placement = PlacementGather
		return
	}
	if p.Candidates != nil && len(p.Candidates) == 0 {
		p.EmptyCandidates = true
	}

	participants := shards
	if p.Candidates != nil {
		participants = len(p.Candidates)
	}
	if participants == 0 {
		participants = 1
	}

	broadcast := false
	for _, scan := range p.Scans {
		if scan.Broadcast {
			broadcast = true
		}
	}
	if !broadcast {
		p.Placement = PlacementColocated
		return
	}

	// Broadcast vs gather: replicating the broadcast tables to every
	// participating shard and joining locally, versus shipping every table's
	// base rows to the coordinator and joining once.
	gatherCost := costNetworkPerRow * (localRows + broadcastRows)
	joinCost := p.EstCost
	costGatherPlan := gatherCost + joinCost
	costBroadcastPlan := costNetworkPerRow*broadcastRows*float64(1+participants) + joinCost/float64(participants)
	if costBroadcastPlan <= costGatherPlan {
		p.Placement = PlacementBroadcast
		return
	}
	for _, scan := range p.Scans {
		scan.Broadcast = false
	}
	p.Placement = PlacementGather
}
