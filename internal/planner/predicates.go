package planner

import (
	"math"
	"sort"
	"strings"

	"idaax/internal/sqlparse"
	"idaax/internal/stats"
	"idaax/internal/types"
)

// analysis is the decomposed view of a statement the planning passes share.
type analysis struct {
	sel   *sqlparse.SelectStmt
	scans []*ScanNode // in original FROM order

	// innerOnly is true when every join is INNER/CROSS (or the implicit comma
	// cross product) — the precondition for reordering and shard-local plans.
	innerOnly bool
	// ownersKnown is true when every column reference in the ON conditions
	// and WHERE clause resolves to exactly one FROM item.
	ownersKnown bool
	// bareStar is true when the select list contains an unqualified `*`,
	// whose output column order depends on the FROM order (blocks reordering).
	bareStar bool

	// onConjuncts are the flattened conjuncts of every ON condition, each with
	// its owner mask; joinConjuncts additionally holds copies of WHERE
	// conjuncts that connect two items with an equality (hoisted into ON so
	// comma-joins hash instead of building cross products).
	onConjuncts []ownedExpr
	// equiEdges are the column-equality edges of the join graph, from both ON
	// and WHERE.
	equiEdges []equiEdge
	// crossConjuncts counts non-equality multi-item conjuncts per item pair,
	// used only for selectivity.
	crossConjuncts []ownedExpr
}

type ownedExpr struct {
	e       sqlparse.Expr
	mask    uint64 // bit per FROM item referenced
	unknown bool   // a reference did not resolve
}

// equiEdge is one "items[a].acol = items[b].bcol" equality.
type equiEdge struct {
	a, b       int
	acol, bcol string
}

func analyze(sel *sqlparse.SelectStmt, cat Catalog) *analysis {
	a := &analysis{sel: sel, innerOnly: true, ownersKnown: true}
	for _, item := range sel.Items {
		if item.Star && item.StarTable == "" {
			a.bareStar = true
		}
	}
	for i, item := range sel.From {
		scan := &ScanNode{Item: item}
		if item.Subquery == nil {
			if info, ok := cat(item.Table); ok {
				scan.Info = info
				scan.Known = true
			}
		}
		scan.Selectivity = 1
		a.scans = append(a.scans, scan)
		if i > 0 {
			switch item.Join {
			case sqlparse.JoinInner, sqlparse.JoinCross, sqlparse.JoinNone:
			default:
				a.innerOnly = false
			}
		}
		if !scan.Known {
			a.ownersKnown = false
		}
	}

	// Classify the ON conjuncts and the WHERE conjuncts.
	for i, item := range sel.From {
		if i == 0 || item.On == nil {
			continue
		}
		for _, c := range conjunctsOf(item.On) {
			oc := a.owned(c)
			a.onConjuncts = append(a.onConjuncts, oc)
			a.recordEdge(oc)
		}
	}
	for _, c := range conjunctsOf(sel.Where) {
		oc := a.owned(c)
		if oc.unknown {
			continue
		}
		if n := maskBits(oc.mask); n == 1 {
			idx := maskFirst(oc.mask)
			a.scans[idx].Conjuncts = append(a.scans[idx].Conjuncts, c)
			continue
		} else if n >= 2 {
			if a.recordEdge(oc) {
				// Hoist the equality into the join graph; it will also be
				// placed into an ON condition by the statement rebuild (the
				// WHERE clause still re-applies it, harmlessly).
				a.onConjuncts = append(a.onConjuncts, oc)
			} else {
				a.crossConjuncts = append(a.crossConjuncts, oc)
			}
		}
	}

	// Scan estimates and distribution-key candidate sets.
	for _, scan := range a.scans {
		a.estimateScan(scan)
	}
	return a
}

// conjunctsOf flattens the top-level AND tree of an expression.
func conjunctsOf(e sqlparse.Expr) []sqlparse.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == sqlparse.OpAnd {
		return append(conjunctsOf(b.Left), conjunctsOf(b.Right)...)
	}
	return []sqlparse.Expr{e}
}

// refOwner resolves a column reference to the FROM item that provides it,
// or -1 when unknown or ambiguous.
func (a *analysis) refOwner(ref *sqlparse.ColumnRef) int {
	if ref.Table != "" {
		for i, scan := range a.scans {
			if strings.EqualFold(ref.Table, scan.Item.Name()) {
				return i
			}
		}
		return -1
	}
	owner := -1
	name := types.NormalizeName(ref.Name)
	for i, scan := range a.scans {
		if !scan.Known {
			return -1 // cannot prove uniqueness against an opaque item
		}
		if scan.Info.Schema.IndexOf(name) >= 0 {
			if owner >= 0 {
				return -1 // ambiguous
			}
			owner = i
		}
	}
	return owner
}

func (a *analysis) owned(e sqlparse.Expr) ownedExpr {
	oc := ownedExpr{e: e}
	sqlparse.WalkExprs(e, func(n sqlparse.Expr) {
		if ref, ok := n.(*sqlparse.ColumnRef); ok {
			idx := a.refOwner(ref)
			if idx < 0 {
				oc.unknown = true
				return
			}
			oc.mask |= 1 << uint(idx)
		}
	})
	if oc.unknown {
		a.ownersKnown = false
	}
	return oc
}

// recordEdge registers "col_a = col_b" conjuncts connecting two items as join
// graph edges. It reports whether the conjunct was such an edge.
func (a *analysis) recordEdge(oc ownedExpr) bool {
	if oc.unknown {
		return false
	}
	b, ok := oc.e.(*sqlparse.BinaryExpr)
	if !ok || b.Op != sqlparse.OpEq {
		return false
	}
	lref, lok := b.Left.(*sqlparse.ColumnRef)
	rref, rok := b.Right.(*sqlparse.ColumnRef)
	if !lok || !rok {
		return false
	}
	li, ri := a.refOwner(lref), a.refOwner(rref)
	if li < 0 || ri < 0 || li == ri {
		return false
	}
	a.equiEdges = append(a.equiEdges, equiEdge{
		a: li, b: ri,
		acol: types.NormalizeName(lref.Name),
		bcol: types.NormalizeName(rref.Name),
	})
	return true
}

func maskBits(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func maskFirst(m uint64) int {
	for i := 0; i < 64; i++ {
		if m&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Scan estimation: selectivity and distribution-key candidate shards
// ---------------------------------------------------------------------------

func (a *analysis) estimateScan(scan *ScanNode) {
	if !scan.Known {
		scan.BaseRows = defaultTableRows
		scan.EstRows = defaultTableRows
		return
	}
	scan.BaseRows = float64(scan.Info.Stats.Rows)
	if scan.Info.Stats.Rows == 0 && len(scan.Info.Stats.Cols) == 0 {
		scan.BaseRows = defaultTableRows
	}
	sel := 1.0
	for _, c := range scan.Conjuncts {
		sel *= a.conjunctSelectivity(c, scan)
	}
	scan.Selectivity = sel
	scan.EstRows = scan.BaseRows * sel
	a.keyCandidates(scan)
}

func (a *analysis) column(scan *ScanNode, name string) *stats.ColumnSnapshot {
	if !scan.Known {
		return nil
	}
	return scan.Info.Stats.Column(name)
}

// conjunctSelectivity estimates the fraction of the scan's rows satisfying a
// single-table predicate.
func (a *analysis) conjunctSelectivity(e sqlparse.Expr, scan *ScanNode) float64 {
	switch n := e.(type) {
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case sqlparse.OpAnd:
			return a.conjunctSelectivity(n.Left, scan) * a.conjunctSelectivity(n.Right, scan)
		case sqlparse.OpOr:
			l := a.conjunctSelectivity(n.Left, scan)
			r := a.conjunctSelectivity(n.Right, scan)
			return l + r - l*r
		}
		ref, lit, op, ok := comparisonOperands(n)
		if !ok {
			return stats.DefaultRangeSelectivity
		}
		col := a.column(scan, ref.Name)
		switch op {
		case sqlparse.OpEq:
			return col.SelectivityEq(lit)
		case sqlparse.OpNe:
			return 1 - col.SelectivityEq(lit)
		case sqlparse.OpLt:
			return col.SelectivityRange(nil, &lit, false, false)
		case sqlparse.OpLe:
			return col.SelectivityRange(nil, &lit, false, true)
		case sqlparse.OpGt:
			return col.SelectivityRange(&lit, nil, false, false)
		case sqlparse.OpGe:
			return col.SelectivityRange(&lit, nil, true, false)
		}
		return stats.DefaultRangeSelectivity
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			return 1 - a.conjunctSelectivity(n.Operand, scan)
		}
	case *sqlparse.InExpr:
		ref, ok := n.Operand.(*sqlparse.ColumnRef)
		if !ok {
			return stats.DefaultRangeSelectivity
		}
		vals, ok := literalList(n.List)
		if !ok {
			return stats.DefaultRangeSelectivity
		}
		col := a.column(scan, ref.Name)
		s := col.SelectivityIn(vals)
		if n.Negate {
			return 1 - s
		}
		return s
	case *sqlparse.BetweenExpr:
		ref, okRef := n.Operand.(*sqlparse.ColumnRef)
		lo, okLo := literalValue(n.Low)
		hi, okHi := literalValue(n.High)
		if !okRef || !okLo || !okHi {
			return stats.DefaultRangeSelectivity
		}
		col := a.column(scan, ref.Name)
		s := col.SelectivityRange(&lo, &hi, true, true)
		if n.Negate {
			return 1 - s
		}
		return s
	case *sqlparse.IsNullExpr:
		ref, ok := n.Operand.(*sqlparse.ColumnRef)
		if !ok {
			return stats.DefaultRangeSelectivity
		}
		if col := a.column(scan, ref.Name); col != nil {
			if n.Negate {
				return 1 - col.NullFraction()
			}
			return col.NullFraction()
		}
	case *sqlparse.LikeExpr:
		return 0.25
	}
	return stats.DefaultRangeSelectivity
}

// comparisonOperands recognises "col <op> literal" and "literal <op> col",
// flipping the operator for the latter.
func comparisonOperands(b *sqlparse.BinaryExpr) (*sqlparse.ColumnRef, types.Value, sqlparse.BinOp, bool) {
	if ref, ok := b.Left.(*sqlparse.ColumnRef); ok {
		if v, ok2 := literalValue(b.Right); ok2 {
			return ref, v, b.Op, true
		}
	}
	if ref, ok := b.Right.(*sqlparse.ColumnRef); ok {
		if v, ok2 := literalValue(b.Left); ok2 {
			return ref, v, flipCompare(b.Op), true
		}
	}
	return nil, types.Null(), 0, false
}

func flipCompare(op sqlparse.BinOp) sqlparse.BinOp {
	switch op {
	case sqlparse.OpLt:
		return sqlparse.OpGt
	case sqlparse.OpLe:
		return sqlparse.OpGe
	case sqlparse.OpGt:
		return sqlparse.OpLt
	case sqlparse.OpGe:
		return sqlparse.OpLe
	default:
		return op
	}
}

func literalValue(e sqlparse.Expr) (types.Value, bool) {
	if lit, ok := e.(*sqlparse.Literal); ok {
		return lit.Val, true
	}
	if u, ok := e.(*sqlparse.UnaryExpr); ok && u.Op == "-" {
		if lit, ok2 := u.Operand.(*sqlparse.Literal); ok2 {
			switch lit.Val.Kind {
			case types.KindInt:
				return types.NewInt(-lit.Val.Int), true
			case types.KindFloat:
				return types.NewFloat(-lit.Val.Float), true
			}
		}
	}
	return types.Null(), false
}

func literalList(es []sqlparse.Expr) ([]types.Value, bool) {
	vals := make([]types.Value, 0, len(es))
	for _, e := range es {
		v, ok := literalValue(e)
		if !ok {
			return nil, false
		}
		vals = append(vals, v)
	}
	return vals, true
}

// maxRangeEnumeration caps how many integer distribution-key values a bounded
// range predicate may enumerate for shard pruning.
const maxRangeEnumeration = 1024

// keyCandidates computes the set of shards that can hold rows matching the
// scan's distribution-key conjuncts: equality and IN-lists place each value
// with the table's partitioner, and bounded integer ranges (BETWEEN, or a <
// and > pair) enumerate the covered key values when the range is narrow.
// Candidates stays nil (= all shards) when no usable key predicate exists.
func (a *analysis) keyCandidates(scan *ScanNode) {
	info := scan.Info
	if !scan.Known || info.DistKey == "" || info.PlaceKey == nil || !info.Partitioned() {
		return
	}
	keyIdx := info.Schema.IndexOf(info.DistKey)
	if keyIdx < 0 {
		return
	}
	keyKind := info.Schema.Columns[keyIdx].Kind

	all := true
	candidates := map[int]bool{}
	merge := func(set map[int]bool) {
		if all {
			all = false
			for s := range set {
				candidates[s] = true
			}
			return
		}
		for s := range candidates {
			if !set[s] {
				delete(candidates, s)
			}
		}
	}
	// place maps key values to their owning shards. ok=false reports a
	// non-NULL value the backend refuses to place — a sharded router answers
	// that for keys whose rows are mid-migration — and then the conjunct must
	// not narrow the candidate set at all: the rows may transiently live on
	// any shard. (NULL values are merely skipped; = NULL and IN (NULL) match
	// nothing, so a NULL-only list still restricts to the empty set.)
	place := func(vals []types.Value) (map[int]bool, bool) {
		set := map[int]bool{}
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			s, ok := info.PlaceKey(v)
			if !ok {
				return nil, false
			}
			set[s] = true
		}
		return set, true
	}
	mergePlaced := func(vals []types.Value) {
		if set, ok := place(vals); ok {
			merge(set)
		}
	}

	var lo, hi *int64 // tightest integer bounds accumulated over conjuncts
	tightenLo := func(v int64) {
		if lo == nil || v > *lo {
			lo = &v
		}
	}
	tightenHi := func(v int64) {
		if hi == nil || v < *hi {
			hi = &v
		}
	}
	intBound := func(v types.Value) (int64, bool) {
		if keyKind != types.KindInt {
			return 0, false
		}
		if v.Kind != types.KindInt {
			return 0, false
		}
		return v.Int, true
	}

	for _, c := range scan.Conjuncts {
		switch n := c.(type) {
		case *sqlparse.BinaryExpr:
			ref, lit, op, ok := comparisonOperands(n)
			if !ok || types.NormalizeName(ref.Name) != info.DistKey {
				continue
			}
			switch op {
			case sqlparse.OpEq:
				mergePlaced([]types.Value{lit})
			case sqlparse.OpGe:
				if v, ok := intBound(lit); ok {
					tightenLo(v)
				}
			case sqlparse.OpGt:
				if v, ok := intBound(lit); ok {
					if v == math.MaxInt64 {
						merge(map[int]bool{}) // key > MaxInt64 matches nothing
					} else {
						tightenLo(v + 1)
					}
				}
			case sqlparse.OpLe:
				if v, ok := intBound(lit); ok {
					tightenHi(v)
				}
			case sqlparse.OpLt:
				if v, ok := intBound(lit); ok {
					if v == math.MinInt64 {
						merge(map[int]bool{}) // key < MinInt64 matches nothing
					} else {
						tightenHi(v - 1)
					}
				}
			}
		case *sqlparse.InExpr:
			if n.Negate {
				continue
			}
			ref, ok := n.Operand.(*sqlparse.ColumnRef)
			if !ok || types.NormalizeName(ref.Name) != info.DistKey {
				continue
			}
			if vals, ok := literalList(n.List); ok {
				mergePlaced(vals)
			}
		case *sqlparse.BetweenExpr:
			if n.Negate {
				continue
			}
			ref, ok := n.Operand.(*sqlparse.ColumnRef)
			if !ok || types.NormalizeName(ref.Name) != info.DistKey {
				continue
			}
			loV, okLo := literalValue(n.Low)
			hiV, okHi := literalValue(n.High)
			if !okLo || !okHi {
				continue
			}
			if lv, ok1 := intBound(loV); ok1 {
				if hv, ok2 := intBound(hiV); ok2 {
					tightenLo(lv)
					tightenHi(hv)
				}
			}
		}
	}

	// A bounded, narrow integer range enumerates its key values. The gap is
	// computed in uint64 (two's complement subtraction is exact for any
	// lo <= hi pair) and the loop counts values instead of comparing against
	// hi, so bounds at the int64 extremes can neither overflow the width
	// into a false "empty" verdict nor wrap the loop variable forever.
	if lo != nil && hi != nil {
		if *lo > *hi {
			merge(map[int]bool{})
		} else if gap := uint64(*hi) - uint64(*lo); gap < maxRangeEnumeration {
			vals := make([]types.Value, 0, gap+1)
			v := *lo
			for i := uint64(0); i <= gap; i++ {
				vals = append(vals, types.NewInt(v))
				v++
			}
			mergePlaced(vals)
		}
	}

	if all {
		return
	}
	if len(candidates) == 0 {
		scan.EmptyCandidates = true
		scan.Candidates = []int{}
		scan.EstRows = 0
		return
	}
	if len(candidates) >= info.Shards {
		return // every shard is still a candidate
	}
	out := make([]int, 0, len(candidates))
	for s := range candidates {
		out = append(out, s)
	}
	sort.Ints(out)
	scan.Candidates = out
}

// intersectCandidates intersects two candidate sets with nil meaning "all".
func intersectCandidates(a, b []int) []int {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	set := map[int]bool{}
	for _, s := range b {
		set[s] = true
	}
	out := make([]int, 0, len(a))
	for _, s := range a {
		if set[s] {
			out = append(out, s)
		}
	}
	return out
}
