package planner

import (
	"strings"
	"testing"

	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/stats"
	"idaax/internal/types"
)

// fakeTable builds a TableInfo with synthetic statistics: `rows` rows, the
// named int columns each with the given NDV.
func fakeTable(name string, rows int64, distKey string, shards int, cols map[string]float64) TableInfo {
	var schemaCols []types.Column
	snap := stats.Snapshot{Rows: rows}
	for col := range cols {
		schemaCols = append(schemaCols, types.Column{Name: types.NormalizeName(col), Kind: types.KindInt})
	}
	// Deterministic order for schema lookups.
	for i := 0; i < len(schemaCols); i++ {
		for j := i + 1; j < len(schemaCols); j++ {
			if schemaCols[j].Name < schemaCols[i].Name {
				schemaCols[i], schemaCols[j] = schemaCols[j], schemaCols[i]
			}
		}
	}
	for _, c := range schemaCols {
		snap.Cols = append(snap.Cols, stats.ColumnSnapshot{
			Name:    c.Name,
			Kind:    c.Kind,
			NonNull: rows,
			NDV:     cols[strings.ToLower(c.Name)] + cols[c.Name],
			Min:     types.NewInt(0),
			Max:     types.NewInt(1 << 30),
		})
	}
	info := TableInfo{
		Name:    types.NormalizeName(name),
		Schema:  types.NewSchema(schemaCols...),
		Stats:   snap,
		DistKey: types.NormalizeName(distKey),
		Shards:  shards,
	}
	if info.DistKey != "" && shards > 1 {
		info.PlaceKey = func(v types.Value) (int, bool) {
			return int(v.Hash() % uint64(shards)), true
		}
	}
	return info
}

func catalogOf(infos ...TableInfo) Catalog {
	m := map[string]TableInfo{}
	for _, info := range infos {
		m[info.Name] = info
	}
	return func(table string) (TableInfo, bool) {
		info, ok := m[types.NormalizeName(table)]
		return info, ok
	}
}

func parseSelect(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := st.(*sqlparse.SelectStmt)
	if !ok {
		t.Fatalf("not a select: %q", sql)
	}
	return sel
}

func TestJoinOrderAvoidsCrossProducts(t *testing.T) {
	cat := catalogOf(
		fakeTable("BIG", 1000000, "", 1, map[string]float64{"ID": 1000000, "SMALL_ID": 100}),
		fakeTable("SMALL", 100, "", 1, map[string]float64{"ID": 100}),
		fakeTable("MID", 10000, "", 1, map[string]float64{"ID": 10000, "SMALL_ID": 100}),
	)
	// Comma-join with the connecting predicates in WHERE: the naive FROM-order
	// execution builds BIG x SMALL (a 100M row cross product) first.
	sel := parseSelect(t,
		"SELECT big.id FROM big, small, mid WHERE big.id = mid.id AND mid.small_id = small.id")
	p := PlanSelect(sel, cat)
	if p == nil {
		t.Fatal("no plan")
	}
	if len(p.Sel.From) != 3 {
		t.Fatalf("from items: %d", len(p.Sel.From))
	}
	for _, step := range p.Steps {
		if step.On == nil {
			t.Fatalf("planned a cross product:\n%s", describe(p))
		}
		if step.Method != relalg.MethodHash {
			t.Fatalf("expected hash joins, got %v:\n%s", step.Method, describe(p))
		}
	}
	if !p.Reordered {
		t.Fatalf("expected a reorder away from BIG, SMALL, MID:\n%s", describe(p))
	}
}

func TestCommaJoinGetsEquiCondition(t *testing.T) {
	cat := catalogOf(
		fakeTable("A", 1000, "", 1, map[string]float64{"K": 1000}),
		fakeTable("B", 1000, "", 1, map[string]float64{"K": 1000}),
	)
	sel := parseSelect(t, "SELECT a.k FROM a, b WHERE a.k = b.k")
	p := PlanSelect(sel, cat)
	if len(p.Steps) != 1 || p.Steps[0].On == nil {
		t.Fatalf("WHERE equality was not hoisted into the join: %v", describe(p))
	}
	if p.Steps[0].Method != relalg.MethodHash {
		t.Fatalf("expected hash join, got %v", p.Steps[0].Method)
	}
}

func TestBareStarBlocksReorder(t *testing.T) {
	cat := catalogOf(
		fakeTable("A", 1000000, "", 1, map[string]float64{"K": 1000}),
		fakeTable("B", 10, "", 1, map[string]float64{"K": 10}),
	)
	sel := parseSelect(t, "SELECT * FROM a JOIN b ON a.k = b.k")
	p := PlanSelect(sel, cat)
	if p.Reordered {
		t.Fatal("bare * output order depends on FROM order; reorder must be suppressed")
	}
	if p.Sel.From[0].Name() != "A" {
		t.Fatalf("FROM order changed: %s", p.Sel.From[0].Name())
	}
}

func TestLeftJoinKeepsOrderAndGathers(t *testing.T) {
	cat := catalogOf(
		fakeTable("A", 100, "K", 4, map[string]float64{"K": 100}),
		fakeTable("B", 100, "K", 4, map[string]float64{"K": 100}),
	)
	sel := parseSelect(t, "SELECT a.k FROM a LEFT JOIN b ON a.k = b.k")
	p := PlanSelect(sel, cat)
	if p.Reordered {
		t.Fatal("left join must not reorder")
	}
	if p.Placement != PlacementGather {
		t.Fatalf("left join placement = %v, want gather", p.Placement)
	}
}

func TestColocatedPlacement(t *testing.T) {
	cat := catalogOf(
		fakeTable("ORDERS", 10000, "CUSTOMER_ID", 4, map[string]float64{"CUSTOMER_ID": 1000, "AMOUNT": 500}),
		fakeTable("CUSTOMERS", 1000, "ID", 4, map[string]float64{"ID": 1000}),
	)
	sel := parseSelect(t,
		"SELECT o.amount FROM orders o JOIN customers c ON o.customer_id = c.id")
	p := PlanSelect(sel, cat)
	if p.Placement != PlacementColocated {
		t.Fatalf("placement = %v, want co-located:\n%s", p.Placement, describe(p))
	}
	if p.Shards != 4 || p.Candidates != nil {
		t.Fatalf("shards=%d candidates=%v", p.Shards, p.Candidates)
	}
	found := false
	for _, step := range p.Steps {
		if step.KeyJoin {
			found = true
		}
	}
	if !found {
		t.Fatalf("no key join flagged:\n%s", describe(p))
	}
	if !strings.Contains(describe(p), "co-located") {
		t.Fatalf("explain missing co-located marker:\n%s", describe(p))
	}
}

func TestBroadcastPlacement(t *testing.T) {
	cat := catalogOf(
		fakeTable("FACTS", 100000, "K", 4, map[string]float64{"K": 100000, "D": 50}),
		fakeTable("DIMS", 50, "", 4, map[string]float64{"D": 50}), // round robin
	)
	sel := parseSelect(t, "SELECT f.k FROM facts f JOIN dims ON f.d = dims.d")
	p := PlanSelect(sel, cat)
	if p.Placement != PlacementBroadcast {
		t.Fatalf("placement = %v, want broadcast:\n%s", p.Placement, describe(p))
	}
	broadcast := 0
	for _, scan := range p.Scans {
		if scan.Broadcast {
			broadcast++
			if scan.Item.Name() != "DIMS" {
				t.Fatalf("broadcast the wrong table: %s", scan.Item.Name())
			}
		}
	}
	if broadcast != 1 {
		t.Fatalf("broadcast %d tables", broadcast)
	}
}

func TestShardCandidatesFromPredicates(t *testing.T) {
	info := fakeTable("T", 10000, "ID", 4, map[string]float64{"ID": 10000, "X": 100})
	cat := catalogOf(info)

	cases := []struct {
		sql     string
		wantMax int  // maximum candidate count (pruning must reach at most this)
		all     bool // nil candidates expected
		empty   bool
	}{
		{"SELECT * FROM t WHERE id = 7", 1, false, false},
		{"SELECT * FROM t WHERE id IN (1, 2, 3)", 3, false, false},
		{"SELECT * FROM t WHERE id BETWEEN 10 AND 11", 2, false, false},
		{"SELECT * FROM t WHERE id >= 5 AND id < 8", 3, false, false},
		{"SELECT * FROM t WHERE id > 5", 0, true, false},
		{"SELECT * FROM t WHERE x = 7", 0, true, false},
		{"SELECT * FROM t WHERE id = 1 AND id = 999999", 0, false, true},
		{"SELECT * FROM t WHERE id IN (1, 2) AND id = 3", 0, false, true},
		// Bounds at the int64 extremes: the enumeration must neither hang
		// (loop-variable wraparound) nor misreport a satisfiable range as
		// empty (width overflow) — these stay un-pruned or prune correctly.
		{"SELECT * FROM t WHERE id BETWEEN -9000000000000000000 AND 9000000000000000000", 0, true, false},
		{"SELECT * FROM t WHERE id BETWEEN 9223372036854775797 AND 9223372036854775807", 0, true, false},
		{"SELECT * FROM t WHERE id > 9223372036854775807", 0, false, true},
		{"SELECT * FROM t WHERE id BETWEEN 10 AND 5", 0, false, true},
	}
	for _, tc := range cases {
		p := PlanSelect(parseSelect(t, tc.sql), cat)
		scan := p.Scans[0]
		if tc.all {
			if scan.Candidates != nil {
				t.Fatalf("%s: candidates=%v, want all", tc.sql, scan.Candidates)
			}
			continue
		}
		if tc.empty {
			if !scan.EmptyCandidates {
				t.Fatalf("%s: want empty candidates, got %v", tc.sql, scan.Candidates)
			}
			continue
		}
		if scan.Candidates == nil || len(scan.Candidates) > tc.wantMax {
			t.Fatalf("%s: candidates=%v, want at most %d", tc.sql, scan.Candidates, tc.wantMax)
		}
		// The candidate set must contain the shard that actually owns each
		// listed key value (checked for the equality case).
		if tc.sql == "SELECT * FROM t WHERE id = 7" {
			owner, _ := info.PlaceKey(types.NewInt(7))
			if scan.Candidates[0] != owner {
				t.Fatalf("candidate %d, owner %d", scan.Candidates[0], owner)
			}
		}
	}
}

func TestSingleTableStatementCandidates(t *testing.T) {
	cat := catalogOf(fakeTable("T", 10000, "ID", 4, map[string]float64{"ID": 10000}))
	p := PlanSelect(parseSelect(t, "SELECT COUNT(*) FROM t WHERE id IN (5, 6)"), cat)
	if p.Placement != PlacementColocated {
		t.Fatalf("placement = %v", p.Placement)
	}
	if p.Candidates == nil || len(p.Candidates) > 2 {
		t.Fatalf("statement candidates = %v", p.Candidates)
	}
}

func describe(p *Plan) string { return strings.Join(p.Describe(), "\n") }

// TestUnplaceableKeysDoNotPrune pins the mid-migration pruning contract: when
// PlaceKey answers ok=false for a value (the shard router does this for keys
// whose owner the active placement maps disagree on), the conjunct must not
// narrow the candidate shard set — treating it as "matches nothing" would
// silently drop the key's rows from results while they migrate.
func TestUnplaceableKeysDoNotPrune(t *testing.T) {
	info := fakeTable("t", 1000, "id", 4, map[string]float64{"id": 1000})
	stable := info.PlaceKey
	info.PlaceKey = func(v types.Value) (int, bool) {
		if v.Int == 7 {
			return 0, false // key 7 is mid-migration
		}
		return stable(v)
	}
	info.Migrating = true
	cat := catalogOf(info)

	for _, sql := range []string{
		"SELECT * FROM t WHERE id = 7",
		"SELECT * FROM t WHERE id IN (3, 7)",
		"SELECT * FROM t WHERE id BETWEEN 5 AND 9",
	} {
		pl := PlanSelect(parseSelect(t, sql), cat)
		if pl.EmptyCandidates {
			t.Fatalf("%q: unplaceable key produced EmptyCandidates (rows would vanish mid-migration)", sql)
		}
		if pl.Scans[0].Candidates != nil {
			t.Fatalf("%q: candidates %v, want nil (all shards) while the key is unplaceable", sql, pl.Scans[0].Candidates)
		}
	}

	// Stable keys keep pruning even while the table is migrating.
	pl := PlanSelect(parseSelect(t, "SELECT * FROM t WHERE id = 3"), cat)
	if got := pl.Scans[0].Candidates; len(got) != 1 {
		t.Fatalf("stable key candidates = %v, want exactly one shard", got)
	}
	// And NULL-only predicates still restrict to nothing (NULL matches no row).
	pl = PlanSelect(parseSelect(t, "SELECT * FROM t WHERE id = NULL"), cat)
	if !pl.Scans[0].EmptyCandidates {
		t.Fatalf("id = NULL should keep its empty candidate set, got %v", pl.Scans[0].Candidates)
	}
}
