// Package planner is the cost-based query optimizer shared by the single
// accelerator and the shard router. It consumes a parsed SelectStmt plus
// table statistics (internal/stats) and produces an explicit plan: scans with
// pushed-down predicates and estimated cardinalities, a join order chosen by
// estimated cost (dynamic programming over left-deep orders, greedy beyond 12
// tables), a physical method per join (hash vs nested loop), and — for
// sharded backends — a placement decision: prune to the shards that can hold
// matching distribution-key values, execute co-located joins entirely
// shard-local when tables are joined on their distribution keys, broadcast
// the smaller side when only part of the join graph is co-located, or gather
// base rows to the coordinator as the general fallback.
//
// The planner never changes statement semantics: it rewrites only the FROM
// clause (join order and ON placement of inner joins), and executors re-apply
// the full WHERE clause after the joins, so every plan returns exactly the
// rows the un-planned execution would.
package planner

import (
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/stats"
	"idaax/internal/types"
)

// TableInfo is what the planner knows about one base table.
type TableInfo struct {
	// Name is the normalized table name.
	Name string
	// Schema is the table schema.
	Schema types.Schema
	// Stats is the current statistics snapshot (zero-valued when none).
	Stats stats.Snapshot
	// DistKey is the hash-distribution column ("" for round robin or
	// unsharded tables).
	DistKey string
	// Shards is the number of shards holding partitions of the table
	// (1 for a single accelerator).
	Shards int
	// PlaceKey maps a distribution-key value to its owning shard ordinal.
	// nil when the table has no key placement (round robin / unsharded).
	// ok=false means the value cannot be placed right now — the backing
	// router answers that for keys whose owner the active placement maps
	// disagree on mid-migration — and the planner must then not restrict the
	// candidate shard set on that value (its rows may be on any shard).
	PlaceKey func(types.Value) (int, bool)
	// Migrating marks a table whose rows are being rebalanced between shards:
	// two rows sharing a distribution-key value may temporarily live on
	// different shards, so co-located join placement is suspended for it
	// (pruning through PlaceKey stays safe — the router only places keys
	// every active map agrees on).
	Migrating bool
	// Members are the names of the backends holding the table's partitions,
	// in shard ordinal order (a single accelerator reports just itself).
	// Shard-local analytics procedures consult it for placement: scoring
	// writes predictions next to the partition they were computed from, and a
	// prediction table keyed by the input's distribution key inherits that key
	// so scores stay co-located with their input rows.
	Members []string
}

// Partitioned reports whether the table is spread over more than one shard.
func (t TableInfo) Partitioned() bool { return t.Shards > 1 }

// Catalog resolves table names to TableInfo. The second result is false for
// unknown tables.
type Catalog func(table string) (TableInfo, bool)

// Placement is the shard-level execution strategy of a plan.
type Placement int

const (
	// PlacementLocal is single-backend execution (no sharding involved).
	PlacementLocal Placement = iota
	// PlacementColocated runs the whole FROM — joins included — shard-local
	// on every candidate shard; the coordinator only merges result partitions.
	PlacementColocated
	// PlacementBroadcast runs the join shard-local after replicating the
	// broadcast-marked tables to every candidate shard.
	PlacementBroadcast
	// PlacementGather ships base rows of every table to the coordinator and
	// joins there (the pre-planner behaviour).
	PlacementGather
)

// String names the placement for EXPLAIN.
func (p Placement) String() string {
	switch p {
	case PlacementLocal:
		return "local"
	case PlacementColocated:
		return "co-located"
	case PlacementBroadcast:
		return "broadcast"
	default:
		return "gather"
	}
}

// ScanNode is one planned base-table (or subquery) scan. Scans[i] of a Plan
// always corresponds to Plan.Sel.From[i].
type ScanNode struct {
	// Item is the FROM item the scan materialises.
	Item sqlparse.FromItem
	// Info is the catalog entry; only meaningful when Known.
	Info TableInfo
	// Known is false for subqueries and tables the catalog cannot resolve.
	Known bool
	// Conjuncts are the WHERE conjuncts that reference only this item
	// (candidates for scan pushdown, and the basis of Selectivity).
	Conjuncts []sqlparse.Expr
	// Selectivity is the estimated fraction of base rows surviving Conjuncts.
	Selectivity float64
	// BaseRows is the statistics row count (fleet-wide for sharded tables).
	BaseRows float64
	// EstRows = BaseRows * Selectivity.
	EstRows float64
	// Candidates are the shards that can hold rows matching the
	// distribution-key predicates (nil = all shards).
	Candidates []int
	// EmptyCandidates marks a provably unsatisfiable distribution-key
	// predicate (no shard can match).
	EmptyCandidates bool
	// Broadcast marks a table replicated to every participating shard by a
	// PlacementBroadcast plan.
	Broadcast bool
	// Encoding summarises the table's non-plain column encodings for EXPLAIN
	// ("dict(cat:3,grp:5)"); empty when every column is plain. The backend
	// annotates it after planning — the planner itself is storage-agnostic.
	Encoding string
}

// JoinStep is one left-deep join step: joining Plan.Sel.From[i] (i = step
// index + 1) to everything planned before it.
type JoinStep struct {
	// Method is the physical algorithm chosen by cost.
	Method relalg.JoinMethod
	// On is the join condition of the rewritten FROM item (nil = cross).
	On sqlparse.Expr
	// KeyJoin reports that the step joins the new table on its distribution
	// key to a co-located table (the edge that keeps execution shard-local).
	KeyJoin bool
	// EstRows estimates the rows after this step.
	EstRows float64
	// EstCost is the cumulative cost up to and including this step.
	EstCost float64
	// Vectorized reports that the executing backend runs this step as a batch
	// hash join (build over column batches, probe with selection vectors).
	// Annotated by the backend alongside Plan.VectorizedMode.
	Vectorized bool
}

// Plan is a planned SELECT.
type Plan struct {
	// Sel is the statement to execute: FROM possibly reordered and ON
	// conditions re-derived; every other clause aliases the original.
	Sel *sqlparse.SelectStmt
	// Scans align with Sel.From.
	Scans []*ScanNode
	// Steps align with Sel.From[1:].
	Steps []*JoinStep
	// Methods align with Sel.From[1:] (the relalg.JoinAllPlanned argument).
	Methods []relalg.JoinMethod
	// Placement is the shard strategy.
	Placement Placement
	// Shards is the shard count of the backing group (1 = single backend).
	Shards int
	// Candidates is the statement-level candidate shard set for
	// co-located/broadcast placements and single-table statements
	// (nil = all shards).
	Candidates []int
	// EmptyCandidates marks a statement that provably matches no shard.
	EmptyCandidates bool
	// Reordered reports that the FROM order differs from the original.
	Reordered bool
	// Vectorized reports that the executing backend runs the statement through
	// its vectorized batch engine; VectorizedMode says how far the batches
	// carry ("scan", "scan+filter", or "scan+filter+aggregate"). The backend
	// annotates these after planning — the planner itself is engine-agnostic.
	Vectorized     bool
	VectorizedMode string
	// EstRows and EstCost are the final estimates.
	EstRows float64
	EstCost float64
}

// maxDPTables bounds the dynamic-programming join enumeration (2^n subsets);
// beyond it the planner switches to greedy ordering.
const maxDPTables = 12

// defaultTableRows is assumed when a table has no statistics at all.
const defaultTableRows = 1000

// PlanSelect plans a SELECT against the catalog. It returns nil when there is
// nothing to plan (no FROM clause).
func PlanSelect(sel *sqlparse.SelectStmt, cat Catalog) *Plan {
	if sel == nil || len(sel.From) == 0 {
		return nil
	}
	a := analyze(sel, cat)

	order, reordered := chooseOrder(a)
	newSel, steps, methods := rebuildStatement(a, order, reordered)

	p := &Plan{
		Sel:       newSel,
		Steps:     steps,
		Methods:   methods,
		Placement: PlacementLocal,
		Shards:    1,
		Reordered: reordered,
	}
	for _, pos := range order {
		p.Scans = append(p.Scans, a.scans[pos])
	}
	if len(p.Steps) > 0 {
		last := p.Steps[len(p.Steps)-1]
		p.EstRows, p.EstCost = last.EstRows, last.EstCost
	} else {
		p.EstRows = p.Scans[0].EstRows
		p.EstCost = p.Scans[0].EstRows
	}
	choosePlacement(a, p)
	return p
}
