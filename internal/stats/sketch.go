package stats

import "sort"

// kmvK is the number of minimum hashes the NDV sketch retains. 256 gives a
// relative standard error of roughly 1/sqrt(k-1) ≈ 6%, plenty for join-order
// and selectivity decisions, at a fixed 2 KiB per column.
const kmvK = 256

// KMV is a k-minimum-values distinct-count sketch. It keeps the k smallest
// 64-bit hashes seen; the density of the k-th smallest hash in [0, 2^64)
// estimates how many distinct hashes exist in total. Updates are cheap once
// the sketch is warm: a new hash is only inserted when it undercuts the
// current k-th minimum, which happens with probability ~k/NDV.
type KMV struct {
	hashes []uint64 // sorted ascending, at most kmvK entries, no duplicates
}

// Add offers one value hash to the sketch.
func (s *KMV) Add(h uint64) {
	n := len(s.hashes)
	if n == kmvK && h >= s.hashes[n-1] {
		return
	}
	i := sort.Search(n, func(i int) bool { return s.hashes[i] >= h })
	if i < n && s.hashes[i] == h {
		return
	}
	if n < kmvK {
		s.hashes = append(s.hashes, 0)
	} else {
		n-- // drop the current maximum to make room
	}
	copy(s.hashes[i+1:], s.hashes[i:n])
	s.hashes[i] = h
}

// Estimate returns the estimated number of distinct values offered so far.
func (s *KMV) Estimate() float64 {
	n := len(s.hashes)
	if n < kmvK {
		// Fewer than k distinct hashes seen: the sketch is exact.
		return float64(n)
	}
	kth := s.hashes[n-1]
	if kth == 0 {
		return float64(n)
	}
	// (k-1) distinct hashes landed below the k-th minimum; scale by its
	// position in the hash space.
	return float64(kmvK-1) / (float64(kth) / float64(^uint64(0)))
}

// Reset discards all state.
func (s *KMV) Reset() { s.hashes = s.hashes[:0] }
