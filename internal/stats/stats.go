// Package stats maintains per-table and per-column statistics for the
// cost-based planner: live row counts, null fractions, min/max bounds,
// distinct-value estimates from a k-minimum-values hash sketch, and equi-depth
// histograms built by ANALYZE. Counters are maintained incrementally on every
// insert/delete (cheap, approximate upper bounds); ANALYZE TABLE rebuilds them
// exactly from the visible rows and adds histograms.
//
// The package is storage-agnostic: colstore feeds a Collector under its table
// mutex, and the planner consumes immutable Snapshots.
package stats

import (
	"idaax/internal/types"
)

// ColumnStats accumulates one column's statistics.
type ColumnStats struct {
	Name    string
	Kind    types.Kind
	NonNull int64
	Nulls   int64
	// Min/Max are valid when NonNull > 0. They only widen between ANALYZE runs
	// (deletes do not shrink them).
	Min, Max types.Value
	sketch   KMV
	Hist     *Histogram
}

func (c *ColumnStats) observe(v types.Value) {
	if v.IsNull() {
		c.Nulls++
		return
	}
	c.NonNull++
	c.sketch.Add(v.Hash())
	if c.NonNull == 1 {
		c.Min, c.Max = v, v
		return
	}
	if cmp, err := types.Compare(v, c.Min); err == nil && cmp < 0 {
		c.Min = v
	}
	if cmp, err := types.Compare(v, c.Max); err == nil && cmp > 0 {
		c.Max = v
	}
}

// Collector accumulates statistics for one table. It is not internally
// synchronised: the owning storage layer calls it under its own mutex.
type Collector struct {
	schema types.Schema
	// liveRows tracks inserts minus deletes. It can drift from the exact
	// committed count (aborted transactions leave their inserts counted until
	// the next ANALYZE); the planner only needs the order of magnitude.
	liveRows int64
	analyzed bool
	cols     []ColumnStats
}

// NewCollector creates an empty collector for the schema.
func NewCollector(schema types.Schema) *Collector {
	c := &Collector{schema: schema}
	c.resetColumns()
	return c
}

func (c *Collector) resetColumns() {
	c.cols = make([]ColumnStats, c.schema.Len())
	for i, col := range c.schema.Columns {
		c.cols[i] = ColumnStats{Name: col.Name, Kind: col.Kind}
	}
}

// ObserveInsert folds one inserted row into the statistics.
func (c *Collector) ObserveInsert(row types.Row) {
	c.liveRows++
	for i := range c.cols {
		if i < len(row) {
			c.cols[i].observe(row[i])
		}
	}
}

// ObserveDelete records one row removed.
func (c *Collector) ObserveDelete() {
	if c.liveRows > 0 {
		c.liveRows--
	}
}

// ObserveUndelete compensates a rolled-back delete.
func (c *Collector) ObserveUndelete() { c.liveRows++ }

// AnalyzeRows rebuilds the statistics exactly from the given visible rows and
// builds equi-depth histograms for the numeric columns.
func (c *Collector) AnalyzeRows(rows []types.Row) {
	c.resetColumns()
	c.liveRows = int64(len(rows))
	c.analyzed = true
	samples := make([][]float64, len(c.cols))
	for _, row := range rows {
		for i := range c.cols {
			if i >= len(row) {
				continue
			}
			c.cols[i].observe(row[i])
			if v := row[i]; !v.IsNull() && numericKind(v.Kind) {
				if f, ok := v.AsFloat(); ok {
					samples[i] = append(samples[i], f)
				}
			}
		}
	}
	for i := range c.cols {
		c.cols[i].Hist = BuildHistogram(samples[i])
	}
}

func numericKind(k types.Kind) bool {
	switch k {
	case types.KindInt, types.KindFloat, types.KindTimestamp, types.KindBool:
		return true
	default:
		return false
	}
}

// ColumnSnapshot is an immutable copy of one column's statistics plus the
// estimators the planner uses.
type ColumnSnapshot struct {
	Name    string
	Kind    types.Kind
	NonNull int64
	Nulls   int64
	NDV     float64
	Min     types.Value
	Max     types.Value
	Hist    *Histogram
}

// Snapshot is an immutable copy of a table's statistics.
type Snapshot struct {
	// Rows is the estimated live row count.
	Rows int64
	// Analyzed reports whether ANALYZE has run (histograms present, counters
	// exact as of that run).
	Analyzed bool
	Cols     []ColumnSnapshot
}

// Snapshot copies the current statistics.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{Rows: c.liveRows, Analyzed: c.analyzed, Cols: make([]ColumnSnapshot, len(c.cols))}
	for i := range c.cols {
		col := &c.cols[i]
		ndv := col.sketch.Estimate()
		if ndv > float64(col.NonNull) {
			ndv = float64(col.NonNull)
		}
		s.Cols[i] = ColumnSnapshot{
			Name:    col.Name,
			Kind:    col.Kind,
			NonNull: col.NonNull,
			Nulls:   col.Nulls,
			NDV:     ndv,
			Min:     col.Min,
			Max:     col.Max,
			Hist:    col.Hist,
		}
	}
	return s
}

// Column returns the snapshot of the named column, or nil.
func (s *Snapshot) Column(name string) *ColumnSnapshot {
	name = types.NormalizeName(name)
	for i := range s.Cols {
		if s.Cols[i].Name == name {
			return &s.Cols[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Selectivity estimators
// ---------------------------------------------------------------------------

// Default selectivities when no statistics apply, the classic System R
// constants.
const (
	DefaultEqSelectivity    = 0.1
	DefaultRangeSelectivity = 1.0 / 3.0
)

// NullFraction returns the fraction of NULL values.
func (c *ColumnSnapshot) NullFraction() float64 {
	total := c.NonNull + c.Nulls
	if total == 0 {
		return 0
	}
	return float64(c.Nulls) / float64(total)
}

func (c *ColumnSnapshot) notNullFraction() float64 { return 1 - c.NullFraction() }

// SelectivityEq estimates the fraction of rows with column = v.
func (c *ColumnSnapshot) SelectivityEq(v types.Value) float64 {
	if c == nil {
		return DefaultEqSelectivity
	}
	if v.IsNull() {
		return 0 // = NULL never matches
	}
	if c.NonNull == 0 {
		return 0
	}
	// Outside the observed min/max the value cannot exist.
	if out, known := c.outOfRange(v); known && out {
		return 0
	}
	if c.NDV >= 1 {
		return clampSel(c.notNullFraction() / c.NDV)
	}
	return DefaultEqSelectivity
}

// SelectivityIn estimates the fraction of rows with column IN (vs...).
func (c *ColumnSnapshot) SelectivityIn(vs []types.Value) float64 {
	s := 0.0
	for _, v := range vs {
		s += c.SelectivityEq(v)
	}
	return clampSel(s)
}

// SelectivityRange estimates the fraction of rows inside [lo, hi]; nil bounds
// are unbounded, loInc/hiInc select closed or open ends.
func (c *ColumnSnapshot) SelectivityRange(lo, hi *types.Value, loInc, hiInc bool) float64 {
	if c == nil {
		return DefaultRangeSelectivity
	}
	if c.NonNull == 0 {
		return 0
	}
	var lof, hif *float64
	if lo != nil {
		if f, ok := lo.AsFloat(); ok {
			lof = &f
		} else {
			return DefaultRangeSelectivity
		}
	}
	if hi != nil {
		if f, ok := hi.AsFloat(); ok {
			hif = &f
		} else {
			return DefaultRangeSelectivity
		}
	}
	if c.Hist != nil {
		return clampSel(c.notNullFraction() * c.Hist.FractionRange(lof, hif, loInc, hiInc))
	}
	// No histogram: interpolate uniformly between the observed min and max.
	minF, okMin := c.Min.AsFloat()
	maxF, okMax := c.Max.AsFloat()
	if !okMin || !okMax || maxF <= minF {
		return DefaultRangeSelectivity
	}
	loB, hiB := minF, maxF
	if lof != nil && *lof > loB {
		loB = *lof
	}
	if hif != nil && *hif < hiB {
		hiB = *hif
	}
	if hiB < loB {
		return 0
	}
	return clampSel(c.notNullFraction() * (hiB - loB) / (maxF - minF))
}

func (c *ColumnSnapshot) outOfRange(v types.Value) (out, known bool) {
	if c.Min.IsNull() || c.Max.IsNull() {
		return false, false
	}
	cmpLo, err1 := types.Compare(v, c.Min)
	cmpHi, err2 := types.Compare(v, c.Max)
	if err1 != nil || err2 != nil {
		return false, false
	}
	return cmpLo < 0 || cmpHi > 0, true
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Merge combines per-shard snapshots of the same table into a fleet-wide
// view: row and null counts add, min/max widen, and NDV sums capped by the
// non-null count (an upper bound — a key present on two shards is counted
// twice; good enough for planning, and exact again after ANALYZE for
// distribution-key columns, which never repeat across shards).
func Merge(snaps []Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		if len(out.Cols) == 0 {
			out.Analyzed = s.Analyzed
			out.Cols = make([]ColumnSnapshot, len(s.Cols))
			copy(out.Cols, s.Cols)
			for i := range out.Cols {
				out.Cols[i].Hist = nil // per-shard histograms do not merge
			}
			out.Rows = s.Rows
			continue
		}
		out.Rows += s.Rows
		out.Analyzed = out.Analyzed && s.Analyzed
		for i := range out.Cols {
			if i >= len(s.Cols) {
				break
			}
			a, b := &out.Cols[i], &s.Cols[i]
			a.NonNull += b.NonNull
			a.Nulls += b.Nulls
			a.NDV += b.NDV
			if a.NDV > float64(a.NonNull) {
				a.NDV = float64(a.NonNull)
			}
			if a.Min.IsNull() {
				a.Min = b.Min
			} else if !b.Min.IsNull() {
				if cmp, err := types.Compare(b.Min, a.Min); err == nil && cmp < 0 {
					a.Min = b.Min
				}
			}
			if a.Max.IsNull() {
				a.Max = b.Max
			} else if !b.Max.IsNull() {
				if cmp, err := types.Compare(b.Max, a.Max); err == nil && cmp > 0 {
					a.Max = b.Max
				}
			}
		}
	}
	return out
}
