package stats

import "sort"

// histogramBuckets is the equi-depth bucket count ANALYZE builds. 64 buckets
// bound the range-selectivity error at ~1.6% of the rows per boundary.
const histogramBuckets = 64

// Histogram is an equi-depth histogram over the numeric projection of a
// column (ints, floats, timestamps and booleans; strings have no histogram).
// Bucket i covers (Bounds[i-1], Bounds[i]] — the first bucket starts at Lo —
// and every bucket holds approximately Total/len(Bounds) values.
type Histogram struct {
	Lo     float64
	Bounds []float64
	Total  int64
}

// BuildHistogram sorts the sample and cuts it into equal-count buckets.
// It returns nil when there are too few values to be useful.
func BuildHistogram(vals []float64) *Histogram {
	if len(vals) < 2*histogramBuckets {
		return nil
	}
	sort.Float64s(vals)
	n := len(vals)
	h := &Histogram{Lo: vals[0], Total: int64(n)}
	for b := 1; b <= histogramBuckets; b++ {
		idx := b*n/histogramBuckets - 1
		bound := vals[idx]
		// Collapse duplicate boundaries (heavily skewed columns) so FractionBelow
		// interpolation stays monotone.
		if len(h.Bounds) > 0 && bound <= h.Bounds[len(h.Bounds)-1] {
			continue
		}
		h.Bounds = append(h.Bounds, bound)
	}
	if len(h.Bounds) == 0 {
		return nil
	}
	return h
}

// FractionBelow estimates the fraction of values v with v < x (inclusive
// false) or v <= x (inclusive true).
func (h *Histogram) FractionBelow(x float64, inclusive bool) float64 {
	if h == nil || len(h.Bounds) == 0 {
		return 0.5
	}
	if x < h.Lo || (x == h.Lo && !inclusive) {
		return 0
	}
	last := h.Bounds[len(h.Bounds)-1]
	if x > last || (x == last && inclusive) {
		return 1
	}
	// Locate the bucket containing x and interpolate linearly inside it.
	per := 1.0 / float64(len(h.Bounds))
	lo := h.Lo
	for i, hi := range h.Bounds {
		if x <= hi {
			frac := 1.0
			if hi > lo {
				frac = (x - lo) / (hi - lo)
			}
			return float64(i)*per + frac*per
		}
		lo = hi
	}
	return 1
}

// FractionRange estimates the fraction of values inside [lo, hi] (nil bound =
// unbounded on that side; loInc/hiInc select open or closed ends).
func (h *Histogram) FractionRange(lo, hi *float64, loInc, hiInc bool) float64 {
	below := 1.0
	if hi != nil {
		below = h.FractionBelow(*hi, hiInc)
	}
	above := 0.0
	if lo != nil {
		above = h.FractionBelow(*lo, !loInc)
	}
	f := below - above
	if f < 0 {
		return 0
	}
	return f
}
