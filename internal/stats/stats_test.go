package stats

import (
	"fmt"
	"math"
	"testing"

	"idaax/internal/types"
)

func testSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "AMOUNT", Kind: types.KindFloat},
		types.Column{Name: "REGION", Kind: types.KindString},
	)
}

func TestIncrementalCounters(t *testing.T) {
	c := NewCollector(testSchema())
	for i := 0; i < 1000; i++ {
		region := types.NewString(fmt.Sprintf("R%d", i%4))
		if i%10 == 0 {
			region = types.Null()
		}
		c.ObserveInsert(types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i) / 2), region})
	}
	for i := 0; i < 100; i++ {
		c.ObserveDelete()
	}
	c.ObserveUndelete()
	s := c.Snapshot()
	if s.Rows != 901 {
		t.Fatalf("rows = %d, want 901", s.Rows)
	}
	id := s.Column("id")
	if id == nil || id.NonNull != 1000 {
		t.Fatalf("id stats: %+v", id)
	}
	if got, _ := id.Min.AsInt(); got != 0 {
		t.Fatalf("id min = %v", id.Min)
	}
	if got, _ := id.Max.AsInt(); got != 999 {
		t.Fatalf("id max = %v", id.Max)
	}
	if id.NDV < 900 || id.NDV > 1100 {
		t.Fatalf("id NDV = %.0f, want ~1000", id.NDV)
	}
	region := s.Column("REGION")
	if region.NDV != 4 {
		t.Fatalf("region NDV = %.0f, want 4 exactly (under sketch capacity)", region.NDV)
	}
	if nf := region.NullFraction(); math.Abs(nf-0.1) > 0.001 {
		t.Fatalf("region null fraction = %f", nf)
	}
}

func TestKMVAccuracy(t *testing.T) {
	var s KMV
	// Distinct hashes spread over the space via a multiplicative generator.
	const n = 50000
	for i := uint64(1); i <= n; i++ {
		s.Add(i * 0x9e3779b97f4a7c15)
	}
	est := s.Estimate()
	if est < 0.75*n || est > 1.25*n {
		t.Fatalf("KMV estimate %.0f for %d distinct", est, n)
	}
	// Duplicates must not inflate the estimate.
	before := s.Estimate()
	for i := uint64(1); i <= 1000; i++ {
		s.Add(i * 0x9e3779b97f4a7c15)
	}
	if s.Estimate() != before {
		t.Fatalf("duplicate adds changed the estimate")
	}
}

func TestAnalyzeHistogramSelectivity(t *testing.T) {
	c := NewCollector(testSchema())
	rows := make([]types.Row, 0, 10000)
	for i := 0; i < 10000; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(float64(i % 100)),
			types.NewString("X"),
		})
	}
	c.AnalyzeRows(rows)
	s := c.Snapshot()
	if !s.Analyzed {
		t.Fatal("snapshot not marked analyzed")
	}
	id := s.Column("ID")
	if id.Hist == nil {
		t.Fatal("no histogram on ID after analyze")
	}
	lo := types.NewInt(0)
	hi := types.NewInt(2499)
	sel := id.SelectivityRange(&lo, &hi, true, true)
	if sel < 0.2 || sel > 0.3 {
		t.Fatalf("range selectivity = %f, want ~0.25", sel)
	}
	eq := id.SelectivityEq(types.NewInt(42))
	if eq < 0.5/10000 || eq > 2.0/10000 {
		t.Fatalf("eq selectivity = %f, want ~1/10000", eq)
	}
	if got := id.SelectivityEq(types.NewInt(123456)); got != 0 {
		t.Fatalf("out-of-range eq selectivity = %f, want 0", got)
	}
	amount := s.Column("AMOUNT")
	if amount.NDV != 100 {
		t.Fatalf("amount NDV = %.0f, want 100", amount.NDV)
	}
}

func TestMergeSnapshots(t *testing.T) {
	var snaps []Snapshot
	for sh := 0; sh < 3; sh++ {
		c := NewCollector(testSchema())
		for i := sh * 100; i < (sh+1)*100; i++ {
			c.ObserveInsert(types.Row{types.NewInt(int64(i)), types.NewFloat(1), types.NewString("A")})
		}
		snaps = append(snaps, c.Snapshot())
	}
	m := Merge(snaps)
	if m.Rows != 300 {
		t.Fatalf("merged rows = %d", m.Rows)
	}
	id := m.Column("ID")
	if got, _ := id.Min.AsInt(); got != 0 {
		t.Fatalf("merged min = %v", id.Min)
	}
	if got, _ := id.Max.AsInt(); got != 299 {
		t.Fatalf("merged max = %v", id.Max)
	}
	if id.NDV < 290 || id.NDV > 300 {
		t.Fatalf("merged NDV = %.0f", id.NDV)
	}
}
