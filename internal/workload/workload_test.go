package workload

import (
	"strings"
	"testing"

	"idaax/internal/types"
)

func TestGeneratorsAreDeterministicAndValid(t *testing.T) {
	cases := []struct {
		name   string
		schema types.Schema
		gen    func(seed int64) []types.Row
	}{
		{"customers", CustomerSchema(), func(s int64) []types.Row { return Customers(200, s) }},
		{"orders", OrderSchema(), func(s int64) []types.Row { return Orders(300, 50, s) }},
		{"churn", ChurnSchema(), func(s int64) []types.Row { return Churn(250, s) }},
		{"sensor", SensorSchema(), func(s int64) []types.Row { return SensorReadings(150, 10, s) }},
		{"social", SocialPostSchema(), func(s int64) []types.Row { return SocialPosts(180, 40, s) }},
	}
	for _, c := range cases {
		a := c.gen(7)
		b := c.gen(7)
		other := c.gen(8)
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("%s: unexpected sizes %d/%d", c.name, len(a), len(b))
		}
		differs := false
		for i := range a {
			if len(a[i]) != c.schema.Len() {
				t.Fatalf("%s: row arity %d != schema %d", c.name, len(a[i]), c.schema.Len())
			}
			if _, err := types.ValidateRow(c.schema, a[i]); err != nil {
				t.Fatalf("%s: invalid row: %v", c.name, err)
			}
			for j := range a[i] {
				if a[i][j].String() != b[i][j].String() {
					t.Fatalf("%s: not deterministic at row %d col %d", c.name, i, j)
				}
				if i < len(other) && a[i][j].String() != other[i][j].String() {
					differs = true
				}
			}
		}
		if !differs {
			t.Errorf("%s: different seeds should produce different data", c.name)
		}
	}
}

func TestChurnHasBothClassesAndSignal(t *testing.T) {
	rows := Churn(5000, 11)
	churned := 0
	for _, r := range rows {
		if r[6].Int == 1 {
			churned++
		}
	}
	if churned < 500 || churned > 4500 {
		t.Fatalf("degenerate class balance: %d of %d churned", churned, len(rows))
	}
}

func TestCSVRendering(t *testing.T) {
	csv := SocialPostsCSV(10, 5, 3)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 11 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "POST_ID,CUSTOMER_ID") {
		t.Fatalf("header: %q", lines[0])
	}
	if got := len(strings.Split(lines[1], ",")); got != 6 {
		t.Fatalf("fields = %d", got)
	}
	ccsv := CustomersCSV(5, 2)
	if len(strings.Split(strings.TrimSpace(ccsv), "\n")) != 6 {
		t.Fatal("customers csv size")
	}
}

func TestRandHelpers(t *testing.T) {
	r := NewRand(0)
	if r.Intn(0) != 0 {
		t.Fatal("Intn(0) should be 0")
	}
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
	// Norm should be roughly centred.
	sum := 0.0
	for i := 0; i < 5000; i++ {
		sum += r.Norm(10, 2)
	}
	mean := sum / 5000
	if mean < 9 || mean > 11 {
		t.Fatalf("Norm mean = %v", mean)
	}
}
