// Package workload generates the deterministic synthetic datasets used by the
// examples, the test suite and the benchmark harness: customers, orders,
// churn-labelled behaviour features, sensor readings and social-media posts
// (the paper's motivating example for loading non-mainframe data directly into
// the accelerator). All generators are seeded and pure so every run of an
// experiment sees identical data.
package workload

import (
	"fmt"
	"strings"
	"time"

	"idaax/internal/types"
)

// Rand is a small deterministic generator (xorshift64*), independent of
// math/rand so results cannot drift across Go releases.
type Rand struct{ state uint64 }

// NewRand creates a deterministic generator from a seed.
func NewRand(seed int64) *Rand {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &Rand{state: s}
}

func (r *Rand) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Float64 returns a number in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Intn returns a number in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Norm returns an approximately normal value (Irwin–Hall with 6 summands).
func (r *Rand) Norm(mean, stddev float64) float64 {
	sum := 0.0
	for i := 0; i < 6; i++ {
		sum += r.Float64()
	}
	return mean + stddev*(sum-3)/0.7071
}

var regions = []string{"EMEA", "AMERICAS", "APAC", "DACH"}
var segments = []string{"CONSUMER", "SMB", "ENTERPRISE"}
var productCategories = []string{"CHECKING", "SAVINGS", "CREDIT", "MORTGAGE", "BROKERAGE"}
var sentiments = []string{"POSITIVE", "NEUTRAL", "NEGATIVE"}

// baseTime anchors generated timestamps so runs are reproducible.
var baseTime = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

// CustomerSchema returns the schema of the CUSTOMERS table.
func CustomerSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "CUSTOMER_ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "NAME", Kind: types.KindString},
		types.Column{Name: "REGION", Kind: types.KindString},
		types.Column{Name: "SEGMENT", Kind: types.KindString},
		types.Column{Name: "AGE", Kind: types.KindInt},
		types.Column{Name: "INCOME", Kind: types.KindFloat},
		types.Column{Name: "SINCE", Kind: types.KindTimestamp},
	)
}

// Customers generates n customer rows.
func Customers(n int, seed int64) []types.Row {
	r := NewRand(seed)
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("CUST_%06d", i+1)),
			types.NewString(regions[r.Intn(len(regions))]),
			types.NewString(segments[r.Intn(len(segments))]),
			types.NewInt(int64(18 + r.Intn(62))),
			types.NewFloat(20000 + r.Float64()*180000),
			types.NewTimestamp(baseTime.AddDate(0, 0, -r.Intn(3650))),
		}
	}
	return rows
}

// OrderSchema returns the schema of the ORDERS table.
func OrderSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ORDER_ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "CUSTOMER_ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "PRODUCT", Kind: types.KindString},
		types.Column{Name: "QUANTITY", Kind: types.KindInt},
		types.Column{Name: "AMOUNT", Kind: types.KindFloat},
		types.Column{Name: "ORDER_TS", Kind: types.KindTimestamp},
	)
}

// Orders generates n order rows referencing customers 1..customerCount.
func Orders(n, customerCount int, seed int64) []types.Row {
	r := NewRand(seed)
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		qty := 1 + r.Intn(9)
		rows[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewInt(int64(1 + r.Intn(maxInt(customerCount, 1)))),
			types.NewString(productCategories[r.Intn(len(productCategories))]),
			types.NewInt(int64(qty)),
			types.NewFloat(float64(qty) * (5 + r.Float64()*495)),
			types.NewTimestamp(baseTime.AddDate(0, 0, -r.Intn(365)).Add(time.Duration(r.Intn(86400)) * time.Second)),
		}
	}
	return rows
}

// ChurnSchema returns the schema of the churn-labelled behaviour table used by
// the predictive-analytics experiments.
func ChurnSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "CUSTOMER_ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "TENURE_MONTHS", Kind: types.KindFloat},
		types.Column{Name: "MONTHLY_SPEND", Kind: types.KindFloat},
		types.Column{Name: "SUPPORT_CALLS", Kind: types.KindFloat},
		types.Column{Name: "LATE_PAYMENTS", Kind: types.KindFloat},
		types.Column{Name: "DISCOUNT_RATE", Kind: types.KindFloat},
		types.Column{Name: "CHURNED", Kind: types.KindInt},
	)
}

// Churn generates n labelled churn rows. The label follows a logistic model of
// the features plus noise, so trained classifiers have real signal to find.
func Churn(n int, seed int64) []types.Row {
	r := NewRand(seed)
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		tenure := 1 + r.Float64()*72
		spend := 10 + r.Float64()*290
		calls := float64(r.Intn(12))
		late := float64(r.Intn(6))
		discount := r.Float64() * 0.4
		// Latent churn propensity: short tenure, many support calls and late
		// payments increase churn; discounts reduce it.
		z := 1.5 - 0.06*tenure + 0.35*calls + 0.45*late - 3.0*discount - 0.004*spend + r.Norm(0, 0.8)
		churned := int64(0)
		if sigmoidApprox(z) > 0.5 {
			churned = 1
		}
		rows[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewFloat(tenure),
			types.NewFloat(spend),
			types.NewFloat(calls),
			types.NewFloat(late),
			types.NewFloat(discount),
			types.NewInt(churned),
		}
	}
	return rows
}

func sigmoidApprox(z float64) float64 {
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	// Cheap logistic approximation is fine for label generation.
	e := 1.0
	x := -z
	term := 1.0
	for i := 1; i <= 12; i++ {
		term *= x / float64(i)
		e += term
	}
	return 1 / (1 + e)
}

// SensorSchema returns the schema of the SENSOR_READINGS table.
func SensorSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "SENSOR_ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "READING_TS", Kind: types.KindTimestamp},
		types.Column{Name: "TEMPERATURE", Kind: types.KindFloat},
		types.Column{Name: "PRESSURE", Kind: types.KindFloat},
		types.Column{Name: "VIBRATION", Kind: types.KindFloat},
	)
}

// SensorReadings generates n readings across sensorCount sensors.
func SensorReadings(n, sensorCount int, seed int64) []types.Row {
	r := NewRand(seed)
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(1 + r.Intn(maxInt(sensorCount, 1)))),
			types.NewTimestamp(baseTime.Add(time.Duration(i) * time.Second)),
			types.NewFloat(r.Norm(65, 8)),
			types.NewFloat(r.Norm(101, 2.5)),
			types.NewFloat(r.Norm(0.2, 0.08)),
		}
	}
	return rows
}

// SocialPostSchema returns the schema of the SOCIAL_POSTS table (external
// enrichment data loaded directly into the accelerator).
func SocialPostSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "POST_ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "CUSTOMER_ID", Kind: types.KindInt},
		types.Column{Name: "PLATFORM", Kind: types.KindString},
		types.Column{Name: "SENTIMENT", Kind: types.KindString},
		types.Column{Name: "SENTIMENT_SCORE", Kind: types.KindFloat},
		types.Column{Name: "POSTED_TS", Kind: types.KindTimestamp},
	)
}

// SocialPosts generates n social-media posts referencing customers.
func SocialPosts(n, customerCount int, seed int64) []types.Row {
	r := NewRand(seed)
	platforms := []string{"TWITTER", "FACEBOOK", "FORUM", "REVIEW_SITE"}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		sentiment := sentiments[r.Intn(len(sentiments))]
		score := r.Float64()
		if sentiment == "NEGATIVE" {
			score = -score
		} else if sentiment == "NEUTRAL" {
			score = (score - 0.5) / 5
		}
		rows[i] = types.Row{
			types.NewInt(int64(i + 1)),
			types.NewInt(int64(1 + r.Intn(maxInt(customerCount, 1)))),
			types.NewString(platforms[r.Intn(len(platforms))]),
			types.NewString(sentiment),
			types.NewFloat(score),
			types.NewTimestamp(baseTime.AddDate(0, 0, -r.Intn(180))),
		}
	}
	return rows
}

// SocialPostsCSV renders generated posts as CSV with a header, the format the
// IDAA Loader ingests in the examples and benchmarks.
func SocialPostsCSV(n, customerCount int, seed int64) string {
	rows := SocialPosts(n, customerCount, seed)
	var sb strings.Builder
	sb.WriteString("POST_ID,CUSTOMER_ID,PLATFORM,SENTIMENT,SENTIMENT_SCORE,POSTED_TS\n")
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("%s,%s,%s,%s,%s,%s\n",
			row[0].AsString(), row[1].AsString(), row[2].AsString(), row[3].AsString(), row[4].AsString(), row[5].AsString()))
	}
	return sb.String()
}

// CustomersCSV renders generated customers as CSV with a header.
func CustomersCSV(n int, seed int64) string {
	rows := Customers(n, seed)
	var sb strings.Builder
	sb.WriteString("CUSTOMER_ID,NAME,REGION,SEGMENT,AGE,INCOME,SINCE\n")
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("%s,%s,%s,%s,%s,%s,%s\n",
			row[0].AsString(), row[1].AsString(), row[2].AsString(), row[3].AsString(), row[4].AsString(), row[5].AsString(), row[6].AsString()))
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
