package sqlparse

import (
	"testing"
	"testing/quick"

	"idaax/internal/types"
)

func parseOne(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := parseOne(t, `CREATE TABLE IF NOT EXISTS sales (id BIGINT NOT NULL, amount DECIMAL(10,2), region VARCHAR(16), active BOOLEAN)`)
	ct, ok := st.(*CreateTableStmt)
	if !ok {
		t.Fatalf("wrong type %T", st)
	}
	if !ct.IfNotExists || ct.Table != "SALES" || len(ct.Columns) != 4 {
		t.Fatalf("unexpected: %+v", ct)
	}
	if ct.Columns[0].Kind != types.KindInt || !ct.Columns[0].NotNull {
		t.Errorf("column 0: %+v", ct.Columns[0])
	}
	if ct.Columns[1].Kind != types.KindFloat {
		t.Errorf("column 1: %+v", ct.Columns[1])
	}
	if ct.InAccelerator != "" {
		t.Errorf("unexpectedly in accelerator")
	}
}

func TestParseCreateAcceleratorOnlyTable(t *testing.T) {
	st := parseOne(t, `CREATE TABLE stage1 (k BIGINT, v DOUBLE) IN ACCELERATOR idaa1 DISTRIBUTE BY (k)`)
	ct := st.(*CreateTableStmt)
	if ct.InAccelerator != "IDAA1" {
		t.Errorf("accelerator = %q", ct.InAccelerator)
	}
	if ct.DistributeBy != "K" {
		t.Errorf("distribute by = %q", ct.DistributeBy)
	}
	st = parseOne(t, `CREATE TABLE s2 (k BIGINT, v DOUBLE) IN ACCELERATOR acc AS SELECT a, b FROM t`)
	ct = st.(*CreateTableStmt)
	if ct.AsSelect == nil {
		t.Error("AS SELECT missing")
	}
}

func TestParseDistributeBy(t *testing.T) {
	cases := []struct {
		sql string
		key string
	}{
		{`CREATE TABLE t1 (k BIGINT, v DOUBLE) IN ACCELERATOR shards DISTRIBUTE BY HASH(k)`, "K"},
		{`CREATE TABLE t2 (k BIGINT, v DOUBLE) IN ACCELERATOR shards DISTRIBUTE BY HASH ( v )`, "V"},
		{`CREATE TABLE t3 (k BIGINT) IN ACCELERATOR shards DISTRIBUTE BY RANDOM`, ""},
		{`CREATE TABLE t4 (k BIGINT) IN ACCELERATOR shards DISTRIBUTE BY (k)`, "K"},
		{`CREATE TABLE t5 (k BIGINT) IN ACCELERATOR shards DISTRIBUTE BY k`, "K"},
		// A column that happens to be named HASH still works with the legacy
		// spelling (no parenthesis follows).
		{`CREATE TABLE t6 (hash BIGINT) IN ACCELERATOR shards DISTRIBUTE BY hash`, "HASH"},
		// A column named RANDOM needs the parenthesised spelling; bare RANDOM
		// is always the round-robin keyword (empty key).
		{`CREATE TABLE t8 (random BIGINT) IN ACCELERATOR shards DISTRIBUTE BY (random)`, "RANDOM"},
		{`CREATE TABLE t9 (random BIGINT) IN ACCELERATOR shards DISTRIBUTE BY random`, ""},
	}
	for _, tc := range cases {
		ct := parseOne(t, tc.sql).(*CreateTableStmt)
		if ct.DistributeBy != tc.key {
			t.Errorf("%s: key=%q, want key=%q", tc.sql, ct.DistributeBy, tc.key)
		}
	}
	// The clause order is flexible: DISTRIBUTE BY before IN ACCELERATOR.
	ct := parseOne(t, `CREATE TABLE t7 (k BIGINT) DISTRIBUTE BY HASH(k) IN ACCELERATOR shards`).(*CreateTableStmt)
	if ct.InAccelerator != "SHARDS" || ct.DistributeBy != "K" {
		t.Errorf("reordered clauses: %+v", ct)
	}
}

func TestParseInsertForms(t *testing.T) {
	st := parseOne(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)`)
	ins := st.(*InsertStmt)
	if ins.Table != "T" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("unexpected insert: %+v", ins)
	}
	st = parseOne(t, `INSERT INTO t SELECT a, b FROM src WHERE a > 1`)
	ins = st.(*InsertStmt)
	if ins.Select == nil {
		t.Fatal("INSERT SELECT missing select")
	}
}

func TestParseSelectFull(t *testing.T) {
	st := parseOne(t, `SELECT DISTINCT c.region AS r, COUNT(*) AS n, SUM(o.amount)
		FROM orders o INNER JOIN customers c ON o.cid = c.id LEFT JOIN extra e ON e.id = c.id
		WHERE o.amount > 10.5 AND c.segment IN ('A', 'B') AND o.note LIKE '%x%'
		GROUP BY c.region HAVING COUNT(*) > 2
		ORDER BY n DESC, r LIMIT 5 OFFSET 2`)
	sel := st.(*SelectStmt)
	if !sel.Distinct || len(sel.Items) != 3 || len(sel.From) != 3 {
		t.Fatalf("unexpected select: %+v", sel)
	}
	if sel.From[1].Join != JoinInner || sel.From[2].Join != JoinLeft {
		t.Errorf("join types: %v %v", sel.From[1].Join, sel.From[2].Join)
	}
	if sel.Limit != 5 || sel.Offset != 2 {
		t.Errorf("limit/offset: %d/%d", sel.Limit, sel.Offset)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil || len(sel.OrderBy) != 2 {
		t.Error("group/having/order parsing failed")
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("order direction wrong")
	}
	tables := ReferencedTables(sel)
	if len(tables) != 3 {
		t.Errorf("referenced tables: %v", tables)
	}
}

func TestParseSubqueryInFrom(t *testing.T) {
	st := parseOne(t, `SELECT x.a FROM (SELECT a FROM t WHERE a > 1) AS x WHERE x.a < 10`)
	sel := st.(*SelectStmt)
	if sel.From[0].Subquery == nil || sel.From[0].Alias != "X" {
		t.Fatalf("subquery parse failed: %+v", sel.From[0])
	}
	if _, err := Parse(`SELECT a FROM (SELECT a FROM t)`); err == nil {
		t.Error("subquery without alias should fail")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st := parseOne(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id BETWEEN 1 AND 10`)
	up := st.(*UpdateStmt)
	if len(up.Assignments) != 2 || up.Where == nil {
		t.Fatalf("update: %+v", up)
	}
	st = parseOne(t, `DELETE FROM t WHERE a IS NOT NULL`)
	del := st.(*DeleteStmt)
	if del.Where == nil {
		t.Fatal("delete where missing")
	}
}

func TestParseGrantRevokeCall(t *testing.T) {
	st := parseOne(t, `GRANT SELECT, INSERT ON TABLE secure TO alice`)
	g := st.(*GrantStmt)
	if len(g.Privileges) != 2 || g.Table != "SECURE" || g.Grantee != "ALICE" {
		t.Fatalf("grant: %+v", g)
	}
	st = parseOne(t, `REVOKE SELECT ON secure FROM PUBLIC`)
	r := st.(*RevokeStmt)
	if r.Grantee != "PUBLIC" {
		t.Fatalf("revoke: %+v", r)
	}
	st = parseOne(t, `CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'T1,T2')`)
	c := st.(*CallStmt)
	if c.Procedure != "SYSPROC.ACCEL_ADD_TABLES" || len(c.Args) != 2 {
		t.Fatalf("call: %+v", c)
	}
	st = parseOne(t, `CALL NOARGS`)
	if len(st.(*CallStmt).Args) != 0 {
		t.Fatal("no-arg call")
	}
}

func TestParseTransactionAndSet(t *testing.T) {
	if _, ok := parseOne(t, "BEGIN").(*BeginStmt); !ok {
		t.Error("BEGIN")
	}
	if _, ok := parseOne(t, "COMMIT WORK").(*CommitStmt); !ok {
		t.Error("COMMIT")
	}
	if _, ok := parseOne(t, "ROLLBACK").(*RollbackStmt); !ok {
		t.Error("ROLLBACK")
	}
	set := parseOne(t, "SET CURRENT QUERY ACCELERATION = ALL").(*SetStmt)
	if set.Name != "CURRENT QUERY ACCELERATION" || set.Value != "ALL" {
		t.Fatalf("set: %+v", set)
	}
	set = parseOne(t, "SET CURRENT QUERY ACCELERATION NONE").(*SetStmt)
	if set.Value != "NONE" {
		t.Fatalf("set without '=': %+v", set)
	}
}

func TestParseExplainShow(t *testing.T) {
	an := parseOne(t, "ANALYZE TABLE sales").(*AnalyzeStmt)
	if an.Table != "SALES" {
		t.Fatalf("ANALYZE table = %q", an.Table)
	}
	an = parseOne(t, "ANALYZE sales").(*AnalyzeStmt)
	if an.Table != "SALES" {
		t.Fatalf("ANALYZE short form table = %q", an.Table)
	}

	ex := parseOne(t, "EXPLAIN SELECT * FROM t").(*ExplainStmt)
	if _, ok := ex.Target.(*SelectStmt); !ok {
		t.Fatal("explain target")
	}
	sh := parseOne(t, "SHOW TABLES").(*ShowStmt)
	if sh.What != "TABLES" {
		t.Fatal("show what")
	}
}

func TestParseExpressions(t *testing.T) {
	e, err := ParseExpr(`CASE WHEN a > 1 THEN 'big' ELSE 'small' END`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*CaseExpr); !ok {
		t.Fatalf("case expr: %T", e)
	}
	e, err = ParseExpr(`CAST(a AS DOUBLE) * -2 + COALESCE(b, 0)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*BinaryExpr); !ok {
		t.Fatalf("binary expr: %T", e)
	}
	e, err = ParseExpr(`NOT (a = 1 OR b <> 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*UnaryExpr); !ok {
		t.Fatalf("unary expr: %T", e)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*BinaryExpr)
	if b.Op != OpAdd {
		t.Fatalf("top op %v", b.Op)
	}
	right := b.Right.(*BinaryExpr)
	if right.Op != OpMul {
		t.Fatalf("right op %v", right.Op)
	}

	e, err = ParseExpr("a = 1 AND b = 2 OR c = 3")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinaryExpr).Op != OpOr {
		t.Fatal("OR should bind loosest")
	}
}

func TestParseMulti(t *testing.T) {
	stmts, err := ParseMulti(`CREATE TABLE a (x BIGINT); INSERT INTO a VALUES (1); SELECT * FROM a;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELEC * FROM t",
		"CREATE TABLE t",
		"INSERT INTO t VALUSE (1)",
		"SELECT * FROM t WHERE",
		"GRANT ON t TO u",
		"SELECT * FROM t GROUP",
		"CREATE TABLE t (a BADTYPE)",
		"SELECT 'unterminated FROM t",
		"UPDATE t SET",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestCommentsAndQuoting(t *testing.T) {
	st := parseOne(t, `-- leading comment
		SELECT a /* inline */ FROM "MyTable" WHERE s = 'it''s'`)
	sel := st.(*SelectStmt)
	// Quoted identifiers are accepted; like unquoted ones they are folded to
	// upper case by the catalog's normalisation rules.
	if sel.From[0].Table != "MYTABLE" {
		t.Errorf("quoted identifier: %q", sel.From[0].Table)
	}
	lit := sel.Where.(*BinaryExpr).Right.(*Literal)
	if lit.Val.Str != "it's" {
		t.Errorf("escaped quote: %q", lit.Val.Str)
	}
}

func TestStatementTables(t *testing.T) {
	st := parseOne(t, "INSERT INTO tgt SELECT * FROM src1, src2")
	tables := StatementTables(st)
	if len(tables) != 3 {
		t.Fatalf("tables = %v", tables)
	}
}

func TestContainsAggregate(t *testing.T) {
	e, _ := ParseExpr("SUM(a) + 1")
	if !ContainsAggregate(e) {
		t.Error("SUM should be detected")
	}
	e, _ = ParseExpr("UPPER(a)")
	if ContainsAggregate(e) {
		t.Error("UPPER is not an aggregate")
	}
}

// TestLexerNeverPanicsProperty feeds arbitrary strings to the parser; it may
// return errors but must never panic.
func TestLexerNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", s, r)
			}
		}()
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFetchFirstRows(t *testing.T) {
	sel := parseOne(t, "SELECT a FROM t FETCH FIRST 7 ROWS ONLY").(*SelectStmt)
	if sel.Limit != 7 {
		t.Fatalf("limit = %d", sel.Limit)
	}
}

func TestParseAlterAccelerator(t *testing.T) {
	st := parseOne(t, `ALTER ACCELERATOR shards ADD MEMBER idaa4 SLICES 8`)
	al, ok := st.(*AlterAcceleratorStmt)
	if !ok {
		t.Fatalf("wrong type %T", st)
	}
	if al.Accelerator != "SHARDS" || al.Member != "IDAA4" || al.Remove || al.Slices != 8 {
		t.Fatalf("unexpected: %+v", al)
	}

	st = parseOne(t, `ALTER ACCELERATOR SHARDS ADD MEMBER IDAA5`)
	al = st.(*AlterAcceleratorStmt)
	if al.Remove || al.Slices != 0 || al.Member != "IDAA5" {
		t.Fatalf("unexpected: %+v", al)
	}

	st = parseOne(t, `ALTER ACCELERATOR SHARDS REMOVE MEMBER IDAA2;`)
	al = st.(*AlterAcceleratorStmt)
	if !al.Remove || al.Member != "IDAA2" {
		t.Fatalf("unexpected: %+v", al)
	}

	for _, bad := range []string{
		`ALTER ACCELERATOR SHARDS`,
		`ALTER ACCELERATOR SHARDS DROP MEMBER IDAA2`,
		`ALTER ACCELERATOR SHARDS ADD IDAA2`,
		`ALTER ACCELERATOR SHARDS ADD MEMBER IDAA2 SLICES x`,
		`ALTER ACCELERATOR SHARDS ADD MEMBER IDAA2 SLICES 0`,
		`ALTER TABLE t ADD COLUMN c INT`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}
