package sqlparse

import (
	"strings"

	"idaax/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// ColumnDef is one column of a CREATE TABLE statement.
type ColumnDef struct {
	Name    string
	Kind    types.Kind
	NotNull bool
}

// CreateTableStmt represents CREATE TABLE, including the paper's
// "IN ACCELERATOR <name>" clause that creates an accelerator-only table.
//
// DistributeBy carries the distribution key of DISTRIBUTE BY HASH(col) (or
// the legacy spellings DISTRIBUTE BY (col) / DISTRIBUTE BY col); it is empty
// for DISTRIBUTE BY RANDOM and when the clause is absent, both of which place
// rows round robin.
type CreateTableStmt struct {
	Table         string
	IfNotExists   bool
	Columns       []ColumnDef
	InAccelerator string // accelerator name; empty for a regular DB2 table
	DistributeBy  string // distribution key column; empty = round robin
	AsSelect      *SelectStmt
}

func (*CreateTableStmt) stmt() {}

// DropTableStmt represents DROP TABLE [IF EXISTS] t.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

func (*DropTableStmt) stmt() {}

// TruncateStmt represents TRUNCATE TABLE t.
type TruncateStmt struct{ Table string }

func (*TruncateStmt) stmt() {}

// InsertStmt represents INSERT INTO t [(cols)] VALUES (...),(...) | SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

func (*InsertStmt) stmt() {}

// Assignment is one SET col = expr clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt represents UPDATE t SET ... [WHERE ...].
type UpdateStmt struct {
	Table       string
	Assignments []Assignment
	Where       Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt represents DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// JoinType enumerates the supported join methods.
type JoinType int

const (
	// JoinNone marks the first FROM item or a comma-separated cross product.
	JoinNone JoinType = iota
	// JoinInner is INNER JOIN ... ON.
	JoinInner
	// JoinLeft is LEFT [OUTER] JOIN ... ON.
	JoinLeft
	// JoinCross is CROSS JOIN (no ON condition).
	JoinCross
)

// FromItem is one table reference in a FROM clause. Either Table or Subquery
// is set. Items after the first carry the join type and ON condition that
// connect them to the preceding items.
type FromItem struct {
	Table    string
	Alias    string
	Subquery *SelectStmt
	Join     JoinType
	On       Expr
}

// Name returns the name by which the item's columns are qualified.
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Table
}

// SelectItem is one entry of the select list.
type SelectItem struct {
	Star      bool   // SELECT * or t.*
	StarTable string // qualifier of t.*
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt represents a (possibly nested) SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	Offset   int64 // 0 when absent
}

func (*SelectStmt) stmt() {}

// GrantStmt represents GRANT priv[, priv] ON t TO user.
type GrantStmt struct {
	Privileges []string
	Table      string
	Grantee    string
}

func (*GrantStmt) stmt() {}

// RevokeStmt represents REVOKE priv[, priv] ON t FROM user.
type RevokeStmt struct {
	Privileges []string
	Table      string
	Grantee    string
}

func (*RevokeStmt) stmt() {}

// CallStmt represents CALL proc(arg, ...), the entry point of the analytics
// procedure framework (e.g. CALL ACCEL_ADD_TABLES(...), CALL IDAX_KMEANS(...)).
type CallStmt struct {
	Procedure string
	Args      []Expr
}

func (*CallStmt) stmt() {}

// BeginStmt starts an explicit transaction.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt commits the current transaction.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt rolls back the current transaction.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// SetStmt represents SET <register> = <value>; the register we care about is
// CURRENT QUERY ACCELERATION (NONE | ENABLE | ELIGIBLE | ALL).
type SetStmt struct {
	Name  string
	Value string
}

func (*SetStmt) stmt() {}

// ExplainStmt wraps another statement and asks for its routing decision and
// execution plan. With Analyze set (EXPLAIN ANALYZE <stmt>) the target is
// also executed and the plan is annotated with per-operator actual rows and
// elapsed time next to the planner's estimates.
type ExplainStmt struct {
	Target  Statement
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// AnalyzeStmt represents ANALYZE TABLE t: rebuild the planner statistics of
// the table's accelerator copies (row counts, NDV, min/max, histograms).
type AnalyzeStmt struct{ Table string }

func (*AnalyzeStmt) stmt() {}

// ShowStmt represents SHOW TABLES / SHOW ACCELERATORS.
type ShowStmt struct{ What string }

func (*ShowStmt) stmt() {}

// AlterAcceleratorStmt represents the elastic-fleet DDL
//
//	ALTER ACCELERATOR <group> ADD MEMBER <accelerator> [SLICES n]
//	ALTER ACCELERATOR <group> REMOVE MEMBER <accelerator>
//
// ADD MEMBER pairs the accelerator (creating it when unknown) and grows the
// shard group, kicking off a background rebalance; REMOVE MEMBER drains the
// member's rows onto the remaining shards and detaches it.
type AlterAcceleratorStmt struct {
	Accelerator string // the shard group being altered
	Member      string // the member accelerator added or removed
	Remove      bool   // false = ADD MEMBER, true = REMOVE MEMBER
	Slices      int    // scan parallelism for a newly created member (0 = default)
}

func (*AlterAcceleratorStmt) stmt() {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) expr() {}

// String renders the reference as [table.]name.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct{ Val types.Value }

func (*Literal) expr() {}

// BinOp enumerates binary operators.
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
)

// String returns the SQL spelling of the operator.
func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	default:
		return "?"
	}
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op    BinOp
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op      string // "NOT" or "-"
	Operand Expr
}

func (*UnaryExpr) expr() {}

// FuncCall is a scalar or aggregate function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncCall) expr() {}

// IsAggregate reports whether the function is one of the supported aggregates.
func (f *FuncCall) IsAggregate() bool {
	switch strings.ToUpper(f.Name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE":
		return true
	default:
		return false
	}
}

// WhenClause is one WHEN ... THEN ... arm of a CASE expression.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

func (*CaseExpr) expr() {}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Negate  bool
}

func (*IsNullExpr) expr() {}

// InExpr is x [NOT] IN (v1, v2, ...).
type InExpr struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

func (*InExpr) expr() {}

// BetweenExpr is x [NOT] BETWEEN low AND high.
type BetweenExpr struct {
	Operand Expr
	Low     Expr
	High    Expr
	Negate  bool
}

func (*BetweenExpr) expr() {}

// LikeExpr is x [NOT] LIKE pattern ('%' and '_' wildcards).
type LikeExpr struct {
	Operand Expr
	Pattern Expr
	Negate  bool
}

func (*LikeExpr) expr() {}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	Operand Expr
	To      types.Kind
}

func (*CastExpr) expr() {}

// ---------------------------------------------------------------------------
// AST helpers shared by the two engines
// ---------------------------------------------------------------------------

// WalkExprs calls fn for every expression node reachable from e (pre-order).
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExprs(x.Left, fn)
		WalkExprs(x.Right, fn)
	case *UnaryExpr:
		WalkExprs(x.Operand, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *CaseExpr:
		WalkExprs(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExprs(w.Cond, fn)
			WalkExprs(w.Result, fn)
		}
		WalkExprs(x.Else, fn)
	case *IsNullExpr:
		WalkExprs(x.Operand, fn)
	case *InExpr:
		WalkExprs(x.Operand, fn)
		for _, v := range x.List {
			WalkExprs(v, fn)
		}
	case *BetweenExpr:
		WalkExprs(x.Operand, fn)
		WalkExprs(x.Low, fn)
		WalkExprs(x.High, fn)
	case *LikeExpr:
		WalkExprs(x.Operand, fn)
		WalkExprs(x.Pattern, fn)
	case *CastExpr:
		WalkExprs(x.Operand, fn)
	}
}

// ContainsAggregate reports whether the expression tree contains an aggregate
// function call.
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExprs(e, func(n Expr) {
		if f, ok := n.(*FuncCall); ok && f.IsAggregate() {
			found = true
		}
	})
	return found
}

// ReferencedTables returns the base table names referenced by a SELECT,
// including tables referenced by subqueries in the FROM clause.
func ReferencedTables(sel *SelectStmt) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(s *SelectStmt)
	visit = func(s *SelectStmt) {
		if s == nil {
			return
		}
		for _, f := range s.From {
			if f.Subquery != nil {
				visit(f.Subquery)
				continue
			}
			name := types.NormalizeName(f.Table)
			if name != "" && !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	visit(sel)
	return out
}

// StatementTables returns the base tables a statement reads or writes. It is
// used by the federation layer for both routing and privilege checking.
func StatementTables(st Statement) []string {
	switch s := st.(type) {
	case *SelectStmt:
		return ReferencedTables(s)
	case *InsertStmt:
		tables := []string{types.NormalizeName(s.Table)}
		if s.Select != nil {
			tables = append(tables, ReferencedTables(s.Select)...)
		}
		return tables
	case *UpdateStmt:
		return []string{types.NormalizeName(s.Table)}
	case *DeleteStmt:
		return []string{types.NormalizeName(s.Table)}
	case *TruncateStmt:
		return []string{types.NormalizeName(s.Table)}
	case *CreateTableStmt:
		if s.AsSelect != nil {
			return append([]string{types.NormalizeName(s.Table)}, ReferencedTables(s.AsSelect)...)
		}
		return []string{types.NormalizeName(s.Table)}
	case *DropTableStmt:
		return []string{types.NormalizeName(s.Table)}
	case *ExplainStmt:
		return StatementTables(s.Target)
	case *AnalyzeStmt:
		return []string{types.NormalizeName(s.Table)}
	default:
		return nil
	}
}
