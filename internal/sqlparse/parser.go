package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"idaax/internal/types"
)

// Parse parses a single SQL statement. A trailing semicolon is permitted.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected trailing input at %q", p.peek().Text)
	}
	return st, nil
}

// ParseMulti parses a script of semicolon-separated statements.
func ParseMulti(sql string) ([]Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for {
		for p.accept(tokSymbol, ";") {
		}
		if p.atEOF() {
			return out, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(tokSymbol, ";") && !p.atEOF() {
			return nil, fmt.Errorf("sql: expected ';' between statements, got %q", p.peek().Text)
		}
	}
}

// ParseExpr parses a standalone scalar expression (used by the analytics
// framework for column expressions passed as procedure arguments).
func ParseExpr(sql string) (Expr, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected trailing input in expression at %q", p.peek().Text)
	}
	return e, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) atEOF() bool { return p.peek().Type == tokEOF }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Type != tokEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token if it matches type and (case-insensitive) text.
func (p *parser) accept(tt TokenType, text string) bool {
	t := p.peek()
	if t.Type != tt {
		return false
	}
	if text != "" && !strings.EqualFold(t.Text, text) {
		return false
	}
	p.advance()
	return true
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(tokKeyword, kw) }

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if !p.accept(tokSymbol, sym) {
		return fmt.Errorf("sql: expected %q, got %q", sym, p.peek().Text)
	}
	return nil
}

// peekIdent reports whether the next token is the given identifier without
// consuming it.
func (p *parser) peekIdent(text string) bool {
	t := p.peek()
	return t.Type == tokIdent && strings.EqualFold(t.Text, text)
}

// peekAheadSymbol reports whether the token after the next one is the given
// symbol. It lets the CREATE TABLE grammar distinguish DISTRIBUTE BY HASH(col)
// from a distribution column that happens to be named HASH.
func (p *parser) peekAheadSymbol(sym string) bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+1]
	return t.Type == tokSymbol && strings.EqualFold(t.Text, sym)
}

// identifier accepts an identifier or a non-reserved keyword used as a name
// (the lexer classifies e.g. COUNT and ACCELERATION as keywords).
func (p *parser) identifier() (string, error) {
	t := p.peek()
	if t.Type == tokIdent || t.Type == tokKeyword {
		p.advance()
		return types.NormalizeName(t.Text), nil
	}
	return "", fmt.Errorf("sql: expected identifier, got %q", t.Text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Type != tokKeyword {
		return nil, fmt.Errorf("sql: expected a statement keyword, got %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreateTable()
	case "ALTER":
		return p.parseAlterAccelerator()
	case "DROP":
		return p.parseDropTable()
	case "TRUNCATE":
		return p.parseTruncate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "GRANT":
		return p.parseGrant()
	case "REVOKE":
		return p.parseRevoke()
	case "CALL":
		return p.parseCall()
	case "BEGIN":
		p.advance()
		p.acceptKeyword("TRANSACTION")
		p.acceptKeyword("WORK")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.advance()
		p.acceptKeyword("WORK")
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.advance()
		p.acceptKeyword("WORK")
		return &RollbackStmt{}, nil
	case "SET":
		return p.parseSet()
	case "EXPLAIN":
		p.advance()
		analyze := p.acceptKeyword("ANALYZE")
		target, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Target: target, Analyze: analyze}, nil
	case "ANALYZE":
		p.advance()
		p.acceptKeyword("TABLE")
		name, err := p.qualifiedName()
		if err != nil {
			return nil, err
		}
		return &AnalyzeStmt{Table: name}, nil
	case "SHOW":
		p.advance()
		what, err := p.identifier()
		if err != nil {
			return nil, err
		}
		return &ShowStmt{What: what}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement starting with %q", t.Text)
	}
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name

	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}

	for {
		switch {
		case p.acceptKeyword("IN"):
			if err := p.expectKeyword("ACCELERATOR"); err != nil {
				return nil, err
			}
			acc, err := p.identifier()
			if err != nil {
				return nil, err
			}
			st.InAccelerator = acc
		case p.acceptKeyword("DISTRIBUTE"):
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			switch {
			case p.peekIdent("RANDOM") && !p.peekAheadSymbol("("):
				// DISTRIBUTE BY RANDOM: round-robin placement, no key. A bare
				// RANDOM always means the keyword; hash-distribute on a column
				// that happens to be named RANDOM with the parenthesised
				// spelling DISTRIBUTE BY (random).
				p.advance()
				st.DistributeBy = ""
			case p.peekIdent("HASH") && p.peekAheadSymbol("("):
				// DISTRIBUTE BY HASH ( col )
				p.advance()
				if err := p.expectSymbol("("); err != nil {
					return nil, err
				}
				col, err := p.identifier()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				st.DistributeBy = col
			default:
				// Legacy spellings: DISTRIBUTE BY (col) and DISTRIBUTE BY col,
				// both meaning hash distribution on the column.
				hasParen := p.accept(tokSymbol, "(")
				col, err := p.identifier()
				if err != nil {
					return nil, err
				}
				if hasParen {
					if err := p.expectSymbol(")"); err != nil {
						return nil, err
					}
				}
				st.DistributeBy = col
			}
		case p.acceptKeyword("AS"):
			p.accept(tokSymbol, "(")
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			p.accept(tokSymbol, ")")
			st.AsSelect = sel
		default:
			if len(st.Columns) == 0 && st.AsSelect == nil {
				return nil, fmt.Errorf("sql: CREATE TABLE %s needs a column list or AS SELECT", st.Table)
			}
			return st, nil
		}
	}
}

// parseAlterAccelerator parses the elastic-fleet DDL:
// ALTER ACCELERATOR <group> ADD MEMBER <name> [SLICES n] | REMOVE MEMBER <name>.
func (p *parser) parseAlterAccelerator() (Statement, error) {
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ACCELERATOR"); err != nil {
		return nil, err
	}
	group, err := p.identifier()
	if err != nil {
		return nil, err
	}
	st := &AlterAcceleratorStmt{Accelerator: group}
	switch {
	case p.acceptKeyword("ADD"):
	case p.acceptKeyword("REMOVE"):
		st.Remove = true
	default:
		return nil, fmt.Errorf("sql: ALTER ACCELERATOR %s: expected ADD or REMOVE, got %q", group, p.peek().Text)
	}
	if err := p.expectKeyword("MEMBER"); err != nil {
		return nil, err
	}
	member, err := p.identifier()
	if err != nil {
		return nil, err
	}
	st.Member = member
	if !st.Remove && p.acceptKeyword("SLICES") {
		t := p.peek()
		if t.Type != tokNumber {
			return nil, fmt.Errorf("sql: SLICES expects a number, got %q", t.Text)
		}
		p.advance()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sql: invalid SLICES value %q", t.Text)
		}
		st.Slices = n
	}
	return st, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.identifier()
	if err != nil {
		return ColumnDef{}, err
	}
	typeName, err := p.identifier()
	if err != nil {
		return ColumnDef{}, fmt.Errorf("sql: column %s: %w", name, err)
	}
	// Swallow optional length/precision: VARCHAR(32), DECIMAL(10,2).
	if p.accept(tokSymbol, "(") {
		for !p.accept(tokSymbol, ")") {
			if p.atEOF() {
				return ColumnDef{}, fmt.Errorf("sql: unterminated type parameters for column %s", name)
			}
			p.advance()
		}
	}
	kind, err := types.KindFromName(typeName)
	if err != nil {
		return ColumnDef{}, err
	}
	def := ColumnDef{Name: name, Kind: kind}
	for {
		switch {
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.acceptKeyword("UNIQUE"), p.acceptKeyword("NULL"):
			// accepted and ignored
		default:
			return def, nil
		}
	}
}

func (p *parser) parseDropTable() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	return st, nil
}

func (p *parser) parseTruncate() (Statement, error) {
	if err := p.expectKeyword("TRUNCATE"); err != nil {
		return nil, err
	}
	p.acceptKeyword("TABLE")
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	return &TruncateStmt{Table: name}, nil
}

// qualifiedName parses NAME or SCHEMA.NAME and returns the flattened,
// dot-joined, upper-cased name.
func (p *parser) qualifiedName() (string, error) {
	first, err := p.identifier()
	if err != nil {
		return "", err
	}
	if p.accept(tokSymbol, ".") {
		second, err := p.identifier()
		if err != nil {
			return "", err
		}
		return first + "." + second, nil
	}
	return first, nil
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKeyword("VALUES"):
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.accept(tokSymbol, ",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	case p.peek().Type == tokKeyword && p.peek().Text == "SELECT":
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
	case p.accept(tokSymbol, "("):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Select = sel
	default:
		return nil, fmt.Errorf("sql: INSERT expects VALUES or SELECT, got %q", p.peek().Text)
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Assignments = append(st.Assignments, Assignment{Column: col, Value: val})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		st.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		st.From = from
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		st.Offset = n
	}
	// DB2's FETCH FIRST n ROWS ONLY.
	if p.acceptKeyword("FETCH") {
		p.acceptKeyword("FIRST")
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		// Swallow ROWS ONLY / ROW ONLY.
		for {
			txt := strings.ToUpper(p.peek().Text)
			if (p.peek().Type == tokKeyword || p.peek().Type == tokIdent) && (txt == "ROWS" || txt == "ROW" || txt == "ONLY") {
				p.advance()
				continue
			}
			break
		}
	}
	return st, nil
}

func (p *parser) parseIntLiteral() (int64, error) {
	t := p.peek()
	if t.Type != tokNumber {
		return 0, fmt.Errorf("sql: expected integer literal, got %q", t.Text)
	}
	p.advance()
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: invalid integer %q", t.Text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: identifier '.' '*'
	if p.peek().Type == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Type == tokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Type == tokSymbol && p.toks[p.pos+2].Text == "*" {
		tbl := types.NormalizeName(p.advance().Text)
		p.advance() // .
		p.advance() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.identifier()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Type == tokIdent {
		item.Alias = types.NormalizeName(p.advance().Text)
	}
	return item, nil
}

func (p *parser) parseFrom() ([]FromItem, error) {
	var items []FromItem
	first, err := p.parseFromItem(JoinNone)
	if err != nil {
		return nil, err
	}
	items = append(items, first)
	for {
		switch {
		case p.accept(tokSymbol, ","):
			it, err := p.parseFromItem(JoinCross)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			it, err := p.parseJoinItem(JoinInner)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			it, err := p.parseJoinItem(JoinLeft)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		case p.acceptKeyword("CROSS"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			it, err := p.parseFromItem(JoinCross)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		case p.acceptKeyword("JOIN"):
			it, err := p.parseJoinItem(JoinInner)
			if err != nil {
				return nil, err
			}
			items = append(items, it)
		default:
			return items, nil
		}
	}
}

func (p *parser) parseJoinItem(jt JoinType) (FromItem, error) {
	it, err := p.parseFromItem(jt)
	if err != nil {
		return FromItem{}, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return FromItem{}, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return FromItem{}, err
	}
	it.On = on
	return it, nil
}

func (p *parser) parseFromItem(jt JoinType) (FromItem, error) {
	it := FromItem{Join: jt}
	if p.accept(tokSymbol, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return FromItem{}, err
		}
		it.Subquery = sel
	} else {
		name, err := p.qualifiedName()
		if err != nil {
			return FromItem{}, err
		}
		it.Table = name
	}
	if p.acceptKeyword("AS") {
		alias, err := p.identifier()
		if err != nil {
			return FromItem{}, err
		}
		it.Alias = alias
	} else if p.peek().Type == tokIdent {
		it.Alias = types.NormalizeName(p.advance().Text)
	}
	if it.Subquery != nil && it.Alias == "" {
		return FromItem{}, fmt.Errorf("sql: subquery in FROM requires an alias")
	}
	return it, nil
}

// ---------------------------------------------------------------------------
// Governance, procedures, session control
// ---------------------------------------------------------------------------

func (p *parser) parseGrant() (Statement, error) {
	if err := p.expectKeyword("GRANT"); err != nil {
		return nil, err
	}
	st := &GrantStmt{}
	privs, err := p.parsePrivilegeList()
	if err != nil {
		return nil, err
	}
	st.Privileges = privs
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	p.acceptKeyword("TABLE")
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("PUBLIC") {
		st.Grantee = "PUBLIC"
	} else {
		g, err := p.identifier()
		if err != nil {
			return nil, err
		}
		st.Grantee = g
	}
	return st, nil
}

func (p *parser) parseRevoke() (Statement, error) {
	if err := p.expectKeyword("REVOKE"); err != nil {
		return nil, err
	}
	st := &RevokeStmt{}
	privs, err := p.parsePrivilegeList()
	if err != nil {
		return nil, err
	}
	st.Privileges = privs
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	p.acceptKeyword("TABLE")
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("PUBLIC") {
		st.Grantee = "PUBLIC"
	} else {
		g, err := p.identifier()
		if err != nil {
			return nil, err
		}
		st.Grantee = g
	}
	return st, nil
}

func (p *parser) parsePrivilegeList() ([]string, error) {
	var privs []string
	for {
		t := p.peek()
		if t.Type != tokKeyword && t.Type != tokIdent {
			return nil, fmt.Errorf("sql: expected privilege name, got %q", t.Text)
		}
		p.advance()
		privs = append(privs, strings.ToUpper(t.Text))
		if p.accept(tokSymbol, ",") {
			continue
		}
		return privs, nil
	}
}

func (p *parser) parseCall() (Statement, error) {
	if err := p.expectKeyword("CALL"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedName()
	if err != nil {
		return nil, err
	}
	st := &CallStmt{Procedure: name}
	if p.accept(tokSymbol, "(") {
		if !p.accept(tokSymbol, ")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Args = append(st.Args, e)
				if p.accept(tokSymbol, ",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

func (p *parser) parseSet() (Statement, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	// SET CURRENT QUERY ACCELERATION [=] value, or SET <ident> [=] value.
	var nameParts []string
	for {
		t := p.peek()
		if t.Type == tokKeyword || t.Type == tokIdent {
			if t.Type == tokKeyword && (t.Text == "NONE" || t.Text == "ALL" || t.Text == "ENABLE" || t.Text == "ELIGIBLE" || t.Text == "TRUE" || t.Text == "FALSE") && len(nameParts) > 0 {
				break
			}
			nameParts = append(nameParts, t.Text)
			p.advance()
			continue
		}
		break
	}
	if len(nameParts) == 0 {
		return nil, fmt.Errorf("sql: SET requires a register name")
	}
	p.accept(tokSymbol, "=")
	var value string
	t := p.peek()
	switch t.Type {
	case tokKeyword, tokIdent, tokNumber, tokString:
		value = t.Text
		p.advance()
	default:
		return nil, fmt.Errorf("sql: SET %s requires a value", strings.Join(nameParts, " "))
	}
	return &SetStmt{Name: strings.ToUpper(strings.Join(nameParts, " ")), Value: strings.ToUpper(value)}, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: operand}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Operand: left, Negate: negate}, nil
	}
	negate := false
	if p.peek().Type == tokKeyword && p.peek().Text == "NOT" {
		next := p.toks[p.pos+1]
		if next.Type == tokKeyword && (next.Text == "IN" || next.Text == "BETWEEN" || next.Text == "LIKE") {
			p.advance()
			negate = true
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Operand: left, List: list, Negate: negate}, nil
	case p.acceptKeyword("BETWEEN"):
		low, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		high, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Operand: left, Low: low, High: high, Negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		pattern, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Operand: left, Pattern: pattern, Negate: negate}, nil
	}
	t := p.peek()
	if t.Type == tokSymbol {
		var op BinOp
		matched := true
		switch t.Text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			matched = false
		}
		if matched {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Type != tokSymbol {
			return left, nil
		}
		var op BinOp
		switch t.Text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Type != tokSymbol {
			return left, nil
		}
		var op BinOp
		switch t.Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := operand.(*Literal); ok {
			switch lit.Val.Kind {
			case types.KindInt:
				return &Literal{Val: types.NewInt(-lit.Val.Int)}, nil
			case types.KindFloat:
				return &Literal{Val: types.NewFloat(-lit.Val.Float)}, nil
			}
		}
		return &UnaryExpr{Op: "-", Operand: operand}, nil
	}
	if p.accept(tokSymbol, "+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Type {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: invalid number %q", t.Text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, fmt.Errorf("sql: invalid number %q", t.Text)
			}
			return &Literal{Val: types.NewFloat(f)}, nil
		}
		return &Literal{Val: types.NewInt(n)}, nil
	case tokString:
		p.advance()
		return &Literal{Val: types.NewString(t.Text)}, nil
	case tokSymbol:
		if t.Text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("sql: unexpected token %q in expression", t.Text)
	case tokKeyword:
		switch t.Text {
		case "NULL":
			p.advance()
			return &Literal{Val: types.Null()}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: types.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncOrColumn()
		default:
			// Non-reserved keyword used as identifier (e.g. ACCELERATION).
			return p.parseFuncOrColumn()
		}
	case tokIdent:
		return p.parseFuncOrColumn()
	default:
		return nil, fmt.Errorf("sql: unexpected token %q in expression", t.Text)
	}
}

func (p *parser) parseFuncOrColumn() (Expr, error) {
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	// Function call.
	if p.accept(tokSymbol, "(") {
		fc := &FuncCall{Name: name}
		if p.accept(tokSymbol, "*") {
			fc.Star = true
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		if p.acceptKeyword("DISTINCT") {
			fc.Distinct = true
		}
		if !p.accept(tokSymbol, ")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if p.accept(tokSymbol, ",") {
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		return fc, nil
	}
	// Qualified column reference.
	if p.accept(tokSymbol, ".") {
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	if p.peek().Type != tokKeyword || p.peek().Text != "WHEN" {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = operand
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Result: result})
	}
	if len(ce.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN clause")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	operand, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	typeName, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if p.accept(tokSymbol, "(") {
		for !p.accept(tokSymbol, ")") {
			if p.atEOF() {
				return nil, fmt.Errorf("sql: unterminated CAST type parameters")
			}
			p.advance()
		}
	}
	kind, err := types.KindFromName(typeName)
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Operand: operand, To: kind}, nil
}
