// Package sqlparse implements the SQL dialect shared by the DB2 engine and the
// accelerator. The dialect covers the statements the paper relies on:
// CREATE TABLE ... IN ACCELERATOR (accelerator-only tables), INSERT/UPDATE/
// DELETE, SELECT with joins/grouping/ordering, GRANT/REVOKE for governance,
// CALL for the analytics procedure framework, and SET CURRENT QUERY
// ACCELERATION for offload control.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenType classifies lexer tokens.
type TokenType int

const (
	tokEOF TokenType = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// Token is a single lexical token with its source position (1-based).
type Token struct {
	Type TokenType
	Text string // keywords are upper-cased; identifiers preserve quoting rules
	Pos  int
}

func (t Token) String() string {
	switch t.Type {
	case tokEOF:
		return "<eof>"
	case tokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "DISTINCT": true, "ALL": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"IS": true, "IN": true, "BETWEEN": true, "LIKE": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "CAST": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"ON": true, "CROSS": true, "UNION": true,
	"CREATE": true, "TABLE": true, "DROP": true, "IF": true, "EXISTS": true,
	"PRIMARY": true, "KEY": true, "UNIQUE": true, "DEFAULT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "TRUNCATE": true,
	"ACCELERATOR": true, "ONLY": true, "DISTRIBUTE": true,
	"GRANT": true, "REVOKE": true, "TO": true, "PUBLIC": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true, "WORK": true,
	"CALL": true, "CURRENT": true, "QUERY": true, "ACCELERATION": true,
	"NONE": true, "ENABLE": true, "ELIGIBLE": true, "WITH": true, "FAILBACK": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"EXPLAIN": true, "SHOW": true, "TABLES": true, "ACCELERATORS": true, "ANALYZE": true,
	"FETCH": true, "FIRST": true, "ROWS": true, "ROW": true,
	"ALTER": true, "ADD": true, "REMOVE": true, "MEMBER": true, "SLICES": true,
}

// lexer turns SQL text into tokens.
type lexer struct {
	input string
	pos   int
}

func lex(input string) ([]Token, error) {
	l := &lexer{input: input}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Type == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.input) {
		return Token{Type: tokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	ch := l.input[l.pos]
	switch {
	case isIdentStart(rune(ch)):
		return l.lexIdent(start), nil
	case ch >= '0' && ch <= '9':
		return l.lexNumber(start), nil
	case ch == '\'':
		return l.lexString(start)
	case ch == '"':
		return l.lexQuotedIdent(start)
	case ch == '.' && l.pos+1 < len(l.input) && isDigit(l.input[l.pos+1]):
		return l.lexNumber(start), nil
	default:
		return l.lexSymbol(start)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.input) {
		ch := l.input[l.pos]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			l.pos++
		case ch == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-':
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		case ch == '/' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.input) && !(l.input[l.pos] == '*' && l.input[l.pos+1] == '/') {
				l.pos++
			}
			l.pos += 2
			if l.pos > len(l.input) {
				l.pos = len(l.input)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$' || r == '#'
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func (l *lexer) lexIdent(start int) Token {
	for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
		l.pos++
	}
	text := l.input[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Type: tokKeyword, Text: upper, Pos: start}
	}
	return Token{Type: tokIdent, Text: upper, Pos: start}
}

func (l *lexer) lexQuotedIdent(start int) (Token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		ch := l.input[l.pos]
		if ch == '"' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '"' {
				sb.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: tokIdent, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(ch)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

func (l *lexer) lexNumber(start int) Token {
	seenDot := false
	seenExp := false
	for l.pos < len(l.input) {
		ch := l.input[l.pos]
		switch {
		case isDigit(ch):
			l.pos++
		case ch == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (ch == 'e' || ch == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
				l.pos++
			}
		default:
			return Token{Type: tokNumber, Text: l.input[start:l.pos], Pos: start}
		}
	}
	return Token{Type: tokNumber, Text: l.input[start:l.pos], Pos: start}
}

func (l *lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		ch := l.input[l.pos]
		if ch == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: tokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(ch)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

var twoCharSymbols = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

func (l *lexer) lexSymbol(start int) (Token, error) {
	if l.pos+1 < len(l.input) {
		two := l.input[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.pos += 2
			return Token{Type: tokSymbol, Text: two, Pos: start}, nil
		}
	}
	ch := l.input[l.pos]
	switch ch {
	case '(', ')', ',', '.', ';', '*', '/', '+', '-', '=', '<', '>', '?', '%':
		l.pos++
		return Token{Type: tokSymbol, Text: string(ch), Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", ch, start)
	}
}
