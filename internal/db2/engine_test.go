package db2

import (
	"strings"
	"sync"
	"testing"
	"time"

	"idaax/internal/catalog"
	"idaax/internal/sqlparse"
	"idaax/internal/txn"
	"idaax/internal/types"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(catalog.New())
	e.Locks.Timeout = 200 * time.Millisecond
	return e
}

func exec(t *testing.T, e *Engine, tx *txn.Txn, sql string) (*ExecResult, error) {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	_, res, err := e.ExecStatement(tx, st, "TESTER")
	return res, err
}

func query(t *testing.T, e *Engine, tx *txn.Txn, sql string) [][]types.Value {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := e.Query(tx, st.(*sqlparse.SelectStmt))
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	out := make([][]types.Value, len(rel.Rows))
	for i, r := range rel.Rows {
		out[i] = r
	}
	return out
}

func TestEngineDDLDMLQuery(t *testing.T) {
	e := newEngine(t)
	if _, err := exec(t, e, nil, "CREATE TABLE items (id BIGINT NOT NULL, name VARCHAR(20), price DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := exec(t, e, nil, "CREATE TABLE items (id BIGINT)"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	res, err := exec(t, e, nil, "INSERT INTO items VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)")
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	rows := query(t, e, nil, "SELECT name FROM items WHERE price > 15 ORDER BY price DESC")
	if len(rows) != 2 || rows[0][0].Str != "c" {
		t.Fatalf("query result: %+v", rows)
	}
	res, _ = exec(t, e, nil, "UPDATE items SET price = price * 2 WHERE id = 1")
	if res.RowsAffected != 1 {
		t.Fatalf("update affected %d", res.RowsAffected)
	}
	res, _ = exec(t, e, nil, "DELETE FROM items WHERE id = 3")
	if res.RowsAffected != 1 {
		t.Fatalf("delete affected %d", res.RowsAffected)
	}
	rows = query(t, e, nil, "SELECT COUNT(*), SUM(price) FROM items")
	if n, _ := rows[0][0].AsInt(); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if s, _ := rows[0][1].AsFloat(); s != 40 {
		t.Fatalf("sum = %v", s)
	}
	if _, err := exec(t, e, nil, "DROP TABLE items"); err != nil {
		t.Fatal(err)
	}
	if _, err := exec(t, e, nil, "SELECT * FROM items"); err == nil {
		t.Fatal("query on dropped table should fail")
	}
}

func TestEngineConstraintsAndErrors(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE c (id BIGINT NOT NULL, v DOUBLE)")
	if _, err := exec(t, e, nil, "INSERT INTO c VALUES (NULL, 1)"); err == nil {
		t.Fatal("NOT NULL violation should fail")
	}
	if _, err := exec(t, e, nil, "INSERT INTO c VALUES (1)"); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if _, err := exec(t, e, nil, "UPDATE c SET nosuch = 1"); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := exec(t, e, nil, "SELECT * FROM nosuch"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestTransactionRollbackRestoresState(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE t (id BIGINT, v DOUBLE)")
	_, _ = exec(t, e, nil, "INSERT INTO t VALUES (1, 1), (2, 2)")

	tx := e.Begin(false)
	if _, err := exec(t, e, tx, "INSERT INTO t VALUES (3, 3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := exec(t, e, tx, "UPDATE t SET v = 100 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := exec(t, e, tx, "DELETE FROM t WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	// Own transaction sees its changes (in-place engine + X locks).
	rows := query(t, e, tx, "SELECT COUNT(*) FROM t")
	if n, _ := rows[0][0].AsInt(); n != 2 {
		t.Fatalf("in-txn count = %d", n)
	}
	if err := e.Rollback(tx); err != nil {
		t.Fatal(err)
	}

	rows = query(t, e, nil, "SELECT COUNT(*) FROM t")
	if n, _ := rows[0][0].AsInt(); n != 2 {
		t.Fatalf("post-rollback count = %d", n)
	}
	rows = query(t, e, nil, "SELECT v FROM t WHERE id = 1")
	if f, _ := rows[0][0].AsFloat(); f != 1 {
		t.Fatalf("post-rollback value = %v", f)
	}
	rows = query(t, e, nil, "SELECT COUNT(*) FROM t WHERE id = 2")
	if n, _ := rows[0][0].AsInt(); n != 1 {
		t.Fatal("deleted row should be restored")
	}
}

func TestWriterBlocksWriter(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE locked (id BIGINT)")
	tx1 := e.Begin(false)
	if _, err := exec(t, e, tx1, "INSERT INTO locked VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	// A concurrent writer times out while tx1 holds the X lock.
	start := time.Now()
	_, err := exec(t, e, nil, "INSERT INTO locked VALUES (2)")
	if err == nil {
		t.Fatal("expected lock timeout")
	}
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("unexpected error: %v", err)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Error("should have waited for the lock timeout")
	}
	e.Commit(tx1)
	if _, err := exec(t, e, nil, "INSERT INTO locked VALUES (3)"); err != nil {
		t.Fatalf("after commit the lock should be free: %v", err)
	}
}

func TestConcurrentReadersDoNotBlock(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE r (id BIGINT)")
	_, _ = exec(t, e, nil, "INSERT INTO r VALUES (1), (2), (3)")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, _ := sqlparse.Parse("SELECT COUNT(*) FROM r")
			if _, err := e.Query(nil, st.(*sqlparse.SelectStmt)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestChangeCaptureForAcceleratedTables(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE cdc (id BIGINT, v DOUBLE)")
	_, _ = exec(t, e, nil, "INSERT INTO cdc VALUES (1, 1)")
	// Not accelerated yet: nothing captured.
	if got := e.Changes.PendingCount("CDC", 0); got != 0 {
		t.Fatalf("captured %d changes for non-accelerated table", got)
	}
	if err := e.Catalog().SetKind("CDC", catalog.KindAccelerated, "IDAA1"); err != nil {
		t.Fatal(err)
	}
	_, _ = exec(t, e, nil, "INSERT INTO cdc VALUES (2, 2)")
	_, _ = exec(t, e, nil, "UPDATE cdc SET v = 20 WHERE id = 2")
	_, _ = exec(t, e, nil, "DELETE FROM cdc WHERE id = 1")
	recs := e.Changes.Since("CDC", 0)
	if len(recs) != 3 {
		t.Fatalf("captured %d records, want 3", len(recs))
	}
	if recs[0].Op != ChangeInsert || recs[1].Op != ChangeUpdate || recs[2].Op != ChangeDelete {
		t.Fatalf("ops: %v %v %v", recs[0].Op, recs[1].Op, recs[2].Op)
	}
	e.Changes.Discard("CDC", recs[1].Seq)
	if got := e.Changes.PendingCount("CDC", 0); got != 1 {
		t.Fatalf("after discard %d pending", got)
	}
}

func TestInsertSelectAndIndexedMatch(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE src (id BIGINT, v DOUBLE)")
	_, _ = exec(t, e, nil, "CREATE TABLE dst (id BIGINT, v DOUBLE)")
	_, _ = exec(t, e, nil, "INSERT INTO src VALUES (1,1),(2,2),(3,3),(4,4)")
	res, err := exec(t, e, nil, "INSERT INTO dst SELECT id, v FROM src WHERE v >= 2")
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("insert-select: %+v, %v", res, err)
	}
	if err := e.CreateIndex("dst", "ID"); err != nil {
		t.Fatal(err)
	}
	res, err = exec(t, e, nil, "UPDATE dst SET v = 0 WHERE id = 3")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("indexed update: %+v, %v", res, err)
	}
	rows := query(t, e, nil, "SELECT v FROM dst WHERE id = 3")
	if f, _ := rows[0][0].AsFloat(); f != 0 {
		t.Fatalf("indexed update value = %v", f)
	}
}

func TestGroupJoinSubqueryQueries(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE o (id BIGINT, cid BIGINT, amount DOUBLE)")
	_, _ = exec(t, e, nil, "CREATE TABLE c (cid BIGINT, region VARCHAR(8))")
	_, _ = exec(t, e, nil, "INSERT INTO c VALUES (1,'EU'),(2,'US')")
	_, _ = exec(t, e, nil, "INSERT INTO o VALUES (1,1,10),(2,1,20),(3,2,5),(4,2,15),(5,9,99)")

	rows := query(t, e, nil, `SELECT c.region, SUM(o.amount) AS total FROM o INNER JOIN c ON o.cid = c.cid GROUP BY c.region ORDER BY total DESC`)
	if len(rows) != 2 || rows[0][0].Str != "EU" {
		t.Fatalf("join+group: %+v", rows)
	}
	rows = query(t, e, nil, `SELECT region, total FROM (SELECT c.region AS region, SUM(o.amount) AS total FROM o INNER JOIN c ON o.cid = c.cid GROUP BY c.region) sub WHERE total > 25`)
	if len(rows) != 1 || rows[0][0].Str != "EU" {
		t.Fatalf("subquery: %+v", rows)
	}
	rows = query(t, e, nil, `SELECT o.id FROM o LEFT JOIN c ON o.cid = c.cid WHERE c.cid IS NULL`)
	if len(rows) != 1 {
		t.Fatalf("anti-join via LEFT JOIN: %+v", rows)
	}
}

func TestTruncateAndRowCounts(t *testing.T) {
	e := newEngine(t)
	_, _ = exec(t, e, nil, "CREATE TABLE tr (id BIGINT)")
	_, _ = exec(t, e, nil, "INSERT INTO tr VALUES (1),(2),(3)")
	res, err := exec(t, e, nil, "TRUNCATE TABLE tr")
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("truncate: %+v, %v", res, err)
	}
	st, _ := e.Storage("TR")
	if st.RowCount() != 0 {
		t.Fatalf("row count after truncate = %d", st.RowCount())
	}
	stats := e.Stats()
	if stats.RowsInserted != 3 || stats.QueriesRun != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}
