package db2

import (
	"idaax/internal/catalog"
	"idaax/internal/durable"
	"idaax/internal/rowstore"
	"idaax/internal/txn"
	"idaax/internal/types"
)

// DB2-side durability. The engine journals redo at commit time: every
// mutation is buffered per transaction and written as one commit record while
// the transaction still holds its table locks, so WAL order respects data
// dependencies (a later transaction can only touch the same rows after the
// earlier one released its exclusive lock, i.e. after its commit record was
// appended). Rollback journals nothing — the undo happens in memory before
// the buffered redo is discarded. Change-capture records are journaled as
// they happen (tagged with their transaction) because the replicator consumes
// them before the transaction settles; recovery prunes the tags of
// transactions that never committed.

// ChangeJournal receives change-capture durability events, called under the
// change log's lock.
type ChangeJournal interface {
	LogChange(rec ChangeRecord)
	LogChangeDiscard(table string, upToSeq int64)
}

// Journal is the engine's durability sink, implemented by the federation
// coordinator on top of the durable store.
type Journal interface {
	ChangeJournal
	// LogCommit appends the redo record of a committing transaction. Called
	// while the transaction still holds its table locks.
	LogCommit(txnID int64, ops []durable.RowOp)
	// LogCatalog appends a full catalog snapshot (journaled on every DDL).
	LogCatalog(blob []byte)
	// Barrier makes everything journaled so far durable per the fsync policy.
	Barrier() error
}

// SetJournal attaches the durability sink to the engine, its change log and
// the catalog (nil detaches everywhere). Attach only while no transactions
// are in flight — typically right after recovery, before serving traffic.
func (e *Engine) SetJournal(j Journal) {
	e.journal = j
	var cj ChangeJournal
	if j != nil {
		cj = j
	}
	e.Changes.SetJournal(cj)
	if j != nil {
		e.cat.SetOnChange(func() { j.LogCatalog(e.cat.Snapshot()) })
	} else {
		e.cat.SetOnChange(nil)
	}
}

// enterGate takes the checkpoint gate for the transaction at its first
// mutation. The gate is held until the transaction settles, so a checkpoint
// capture (which takes the gate exclusively) never observes a transaction
// halfway through its mutations.
func (e *Engine) enterGate(tx *txn.Txn) {
	if e.journal == nil {
		return
	}
	id := int64(tx.ID)
	e.redoMu.Lock()
	already := e.gated[id]
	if !already {
		e.gated[id] = true
	}
	e.redoMu.Unlock()
	if !already {
		e.ckptGate.RLock()
	}
}

// exitGate releases the checkpoint gate when the transaction settles.
func (e *Engine) exitGate(id int64) {
	e.redoMu.Lock()
	was := e.gated[id]
	delete(e.gated, id)
	e.redoMu.Unlock()
	if was {
		e.ckptGate.RUnlock()
	}
}

// recordRedo buffers one redo operation for the transaction.
func (e *Engine) recordRedo(tx *txn.Txn, op durable.RowOp) {
	if e.journal == nil {
		return
	}
	id := int64(tx.ID)
	e.redoMu.Lock()
	e.redo[id] = append(e.redo[id], op)
	e.redoMu.Unlock()
}

// takeRedo removes and returns the transaction's buffered redo.
func (e *Engine) takeRedo(id int64) []durable.RowOp {
	e.redoMu.Lock()
	ops := e.redo[id]
	delete(e.redo, id)
	e.redoMu.Unlock()
	return ops
}

// CheckpointGate runs fn with the checkpoint gate held exclusively: no
// transaction is between its first mutation and its settle, so fn sees only
// settled row-store state.
func (e *Engine) CheckpointGate(fn func() error) error {
	e.ckptGate.Lock()
	defer e.ckptGate.Unlock()
	return fn()
}

// TablesSnapshot captures every row-store table for checkpointing. Call under
// CheckpointGate so no transaction is mid-mutation.
func (e *Engine) TablesSnapshot() map[string]*rowstore.TableSnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]*rowstore.TableSnapshot, len(e.tables))
	for name, t := range e.tables {
		out[name] = t.Snapshot()
	}
	return out
}

// RestoreStorage installs a recovered row-store table, replacing any
// existing storage of the same name.
func (e *Engine) RestoreStorage(name string, snap *rowstore.TableSnapshot) {
	e.mu.Lock()
	e.tables[types.NormalizeName(name)] = rowstore.RestoreTable(snap)
	e.mu.Unlock()
}

// SyncStorageWithCatalog reconciles row storage with the catalog: tables the
// catalog knows (other than accelerator-only proxies) get empty storage if
// they have none, and storage of tables no longer in the catalog is dropped.
// Recovery calls it after restoring or replaying a catalog snapshot.
func (e *Engine) SyncStorageWithCatalog() {
	want := make(map[string]types.Schema)
	for _, t := range e.cat.Tables() {
		if t.Kind != catalog.KindAcceleratorOnly {
			want[t.Name] = t.Schema
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, schema := range want {
		if _, ok := e.tables[name]; !ok {
			e.tables[name] = rowstore.NewTable(schema)
		}
	}
	for name := range e.tables {
		if _, ok := want[name]; !ok {
			delete(e.tables, name)
		}
	}
}

// ApplyRedo replays the redo operations of one journaled commit. Operations
// on tables without storage are skipped: the table was dropped later in the
// log and the final catalog state wins.
func (e *Engine) ApplyRedo(ops []durable.RowOp) {
	for _, op := range ops {
		st, err := e.Storage(op.Table)
		if err != nil {
			continue
		}
		switch op.Kind {
		case durable.RowOpInsert:
			st.ApplyInsertAt(rowstore.RowID(op.ID), op.Row)
		case durable.RowOpUpdate:
			st.ApplyUpdateAt(rowstore.RowID(op.ID), op.Row)
		case durable.RowOpDelete:
			st.ApplyDeleteAt(rowstore.RowID(op.ID))
		case durable.RowOpTruncate:
			st.Truncate()
		}
	}
}
