package db2

import (
	"sync"
	"time"

	"idaax/internal/rowstore"
	"idaax/internal/types"
)

// ChangeOp enumerates the change-data-capture operations recorded for
// accelerated tables. The replication component ships them to the
// accelerator's shadow copies.
type ChangeOp int

const (
	// ChangeInsert records a newly committed row.
	ChangeInsert ChangeOp = iota
	// ChangeUpdate records a replaced row (new image in Row, addressed by RowID).
	ChangeUpdate
	// ChangeDelete records a deleted row (old image in Row, addressed by RowID).
	ChangeDelete
	// ChangeTruncate records a full-table truncation.
	ChangeTruncate
)

// String names the operation for logs.
func (o ChangeOp) String() string {
	switch o {
	case ChangeInsert:
		return "INSERT"
	case ChangeUpdate:
		return "UPDATE"
	case ChangeDelete:
		return "DELETE"
	case ChangeTruncate:
		return "TRUNCATE"
	default:
		return "UNKNOWN"
	}
}

// ChangeRecord is one captured change of a DB2 table.
type ChangeRecord struct {
	Seq   int64
	Table string
	Op    ChangeOp
	RowID rowstore.RowID
	Row   types.Row
	// At is when the change was captured; the replicator derives CDC apply
	// lag from the oldest unapplied record's age.
	At time.Time
	// Txn is the DB2 transaction that produced the change. Changes are
	// journaled as they are captured (before the transaction settles), so
	// recovery uses the tag to prune records of transactions that never
	// committed.
	Txn int64
}

// ChangeLog captures committed changes per table. Only changes of tables whose
// catalog entry has acceleration enabled are recorded; everything else would
// be wasted work, exactly like the real product's CDC capture scope.
type ChangeLog struct {
	mu      sync.Mutex
	nextSeq int64
	records map[string][]ChangeRecord
	journal ChangeJournal
}

// SetJournal attaches a durability sink (nil detaches). Append and Discard
// journal under the log's lock, so WAL order equals sequence order.
func (c *ChangeLog) SetJournal(j ChangeJournal) {
	c.mu.Lock()
	c.journal = j
	c.mu.Unlock()
}

// NewChangeLog creates an empty change log.
func NewChangeLog() *ChangeLog {
	return &ChangeLog{nextSeq: 1, records: make(map[string][]ChangeRecord)}
}

// Append records a change made by txnID and returns its sequence number.
func (c *ChangeLog) Append(table string, op ChangeOp, rowID rowstore.RowID, row types.Row, txnID int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	table = types.NormalizeName(table)
	rec := ChangeRecord{Seq: c.nextSeq, Table: table, Op: op, RowID: rowID, Row: row, At: time.Now(), Txn: txnID}
	c.nextSeq++
	c.records[table] = append(c.records[table], rec)
	if c.journal != nil {
		c.journal.LogChange(rec)
	}
	return rec.Seq
}

// ApplyChange replays a journaled change with its original sequence number.
// Records with a sequence the log has already issued are skipped: they are
// either present or were discarded before the checkpoint, so replay after a
// crash is idempotent.
func (c *ChangeLog) ApplyChange(rec ChangeRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec.Seq < c.nextSeq {
		return
	}
	c.nextSeq = rec.Seq + 1
	rec.Table = types.NormalizeName(rec.Table)
	c.records[rec.Table] = append(c.records[rec.Table], rec)
}

// SnapshotAll copies the full log content and the next sequence number for
// checkpointing.
func (c *ChangeLog) SnapshotAll() (map[string][]ChangeRecord, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]ChangeRecord, len(c.records))
	for table, recs := range c.records {
		if len(recs) == 0 {
			continue
		}
		out[table] = append([]ChangeRecord(nil), recs...)
	}
	return out, c.nextSeq
}

// Restore replaces the log content with a checkpoint image.
func (c *ChangeLog) Restore(records map[string][]ChangeRecord, nextSeq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = make(map[string][]ChangeRecord, len(records))
	for table, recs := range records {
		c.records[types.NormalizeName(table)] = append([]ChangeRecord(nil), recs...)
	}
	if nextSeq < 1 {
		nextSeq = 1
	}
	for _, recs := range c.records {
		for _, rec := range recs {
			if rec.Seq >= nextSeq {
				nextSeq = rec.Seq + 1
			}
		}
	}
	c.nextSeq = nextSeq
}

// PruneTxns drops records whose transaction fails the keep predicate and
// returns how many were removed. Recovery uses it to erase changes captured
// for transactions that never committed (including the compensation records
// a crashed rollback had already journaled). Records with txn tag 0 predate
// tagging and are kept.
func (c *ChangeLog) PruneTxns(keep func(txnID int64) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for table, recs := range c.records {
		kept := recs[:0]
		for _, rec := range recs {
			if rec.Txn == 0 || keep(rec.Txn) {
				kept = append(kept, rec)
			} else {
				removed++
			}
		}
		c.records[table] = kept
	}
	return removed
}

// Since returns all records of the table with sequence numbers greater than
// afterSeq, in order.
func (c *ChangeLog) Since(table string, afterSeq int64) []ChangeRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ChangeRecord
	for _, rec := range c.records[types.NormalizeName(table)] {
		if rec.Seq > afterSeq {
			out = append(out, rec)
		}
	}
	return out
}

// PendingCount returns the number of captured records for the table after the
// given sequence number.
func (c *ChangeLog) PendingCount(table string, afterSeq int64) int {
	return len(c.Since(table, afterSeq))
}

// OldestPending returns the capture time of the oldest record for the table
// after the given sequence number (false when nothing is pending).
func (c *ChangeLog) OldestPending(table string, afterSeq int64) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range c.records[types.NormalizeName(table)] {
		if rec.Seq > afterSeq {
			return rec.At, true
		}
	}
	return time.Time{}, false
}

// Discard drops all records of the table up to and including seq. The
// replicator calls it after a successful apply so memory stays bounded.
func (c *ChangeLog) Discard(table string, upToSeq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	table = types.NormalizeName(table)
	recs := c.records[table]
	keep := recs[:0]
	for _, rec := range recs {
		if rec.Seq > upToSeq {
			keep = append(keep, rec)
		}
	}
	c.records[table] = keep
	if c.journal != nil {
		c.journal.LogChangeDiscard(table, upToSeq)
	}
}

// LatestSeq returns the highest sequence number issued so far.
func (c *ChangeLog) LatestSeq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextSeq - 1
}
