package db2

import (
	"sync"
	"time"

	"idaax/internal/rowstore"
	"idaax/internal/types"
)

// ChangeOp enumerates the change-data-capture operations recorded for
// accelerated tables. The replication component ships them to the
// accelerator's shadow copies.
type ChangeOp int

const (
	// ChangeInsert records a newly committed row.
	ChangeInsert ChangeOp = iota
	// ChangeUpdate records a replaced row (new image in Row, addressed by RowID).
	ChangeUpdate
	// ChangeDelete records a deleted row (old image in Row, addressed by RowID).
	ChangeDelete
	// ChangeTruncate records a full-table truncation.
	ChangeTruncate
)

// String names the operation for logs.
func (o ChangeOp) String() string {
	switch o {
	case ChangeInsert:
		return "INSERT"
	case ChangeUpdate:
		return "UPDATE"
	case ChangeDelete:
		return "DELETE"
	case ChangeTruncate:
		return "TRUNCATE"
	default:
		return "UNKNOWN"
	}
}

// ChangeRecord is one captured change of a DB2 table.
type ChangeRecord struct {
	Seq   int64
	Table string
	Op    ChangeOp
	RowID rowstore.RowID
	Row   types.Row
	// At is when the change was captured; the replicator derives CDC apply
	// lag from the oldest unapplied record's age.
	At time.Time
}

// ChangeLog captures committed changes per table. Only changes of tables whose
// catalog entry has acceleration enabled are recorded; everything else would
// be wasted work, exactly like the real product's CDC capture scope.
type ChangeLog struct {
	mu      sync.Mutex
	nextSeq int64
	records map[string][]ChangeRecord
}

// NewChangeLog creates an empty change log.
func NewChangeLog() *ChangeLog {
	return &ChangeLog{nextSeq: 1, records: make(map[string][]ChangeRecord)}
}

// Append records a change and returns its sequence number.
func (c *ChangeLog) Append(table string, op ChangeOp, rowID rowstore.RowID, row types.Row) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	table = types.NormalizeName(table)
	rec := ChangeRecord{Seq: c.nextSeq, Table: table, Op: op, RowID: rowID, Row: row, At: time.Now()}
	c.nextSeq++
	c.records[table] = append(c.records[table], rec)
	return rec.Seq
}

// Since returns all records of the table with sequence numbers greater than
// afterSeq, in order.
func (c *ChangeLog) Since(table string, afterSeq int64) []ChangeRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ChangeRecord
	for _, rec := range c.records[types.NormalizeName(table)] {
		if rec.Seq > afterSeq {
			out = append(out, rec)
		}
	}
	return out
}

// PendingCount returns the number of captured records for the table after the
// given sequence number.
func (c *ChangeLog) PendingCount(table string, afterSeq int64) int {
	return len(c.Since(table, afterSeq))
}

// OldestPending returns the capture time of the oldest record for the table
// after the given sequence number (false when nothing is pending).
func (c *ChangeLog) OldestPending(table string, afterSeq int64) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range c.records[types.NormalizeName(table)] {
		if rec.Seq > afterSeq {
			return rec.At, true
		}
	}
	return time.Time{}, false
}

// Discard drops all records of the table up to and including seq. The
// replicator calls it after a successful apply so memory stays bounded.
func (c *ChangeLog) Discard(table string, upToSeq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	table = types.NormalizeName(table)
	recs := c.records[table]
	keep := recs[:0]
	for _, rec := range recs {
		if rec.Seq > upToSeq {
			keep = append(keep, rec)
		}
	}
	c.records[table] = keep
}

// LatestSeq returns the highest sequence number issued so far.
func (c *ChangeLog) LatestSeq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextSeq - 1
}
