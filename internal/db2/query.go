package db2

import (
	"fmt"

	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/txn"
	"idaax/internal/types"
)

// Query executes a SELECT against DB2-resident tables using the row-at-a-time
// executor. Shared (read) locks are taken per referenced table for the
// duration of the statement and released afterwards, which is DB2's cursor
// stability behaviour.
func (e *Engine) Query(t *txn.Txn, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	e.statsMu.Lock()
	e.queriesRun++
	e.statsMu.Unlock()

	run := func(tx *txn.Txn) (*relalg.Relation, error) {
		for _, table := range sqlparse.ReferencedTables(sel) {
			if !e.HasStorage(table) {
				return nil, fmt.Errorf("db2: table %s is not stored in DB2 (accelerator-only tables must be queried via the accelerator)", table)
			}
			if err := e.Locks.Acquire(tx, table, txn.LockShared); err != nil {
				return nil, err
			}
		}
		from, err := e.buildFrom(tx, sel.From)
		if err != nil {
			return nil, err
		}
		rel, err := relalg.ExecuteSelect(from, sel, relalg.Options{Parallelism: 1})
		if err != nil {
			return nil, err
		}
		// Cursor stability: read locks do not persist past the statement.
		e.Locks.ReleaseShared(tx)
		return rel, nil
	}

	if t != nil {
		return run(t)
	}
	auto := e.Begin(true)
	rel, err := run(auto)
	if err != nil {
		_ = e.Rollback(auto)
		return nil, err
	}
	if err := e.Commit(auto); err != nil {
		return nil, err
	}
	return rel, nil
}

// buildFrom materialises and joins the FROM clause.
func (e *Engine) buildFrom(t *txn.Txn, from []sqlparse.FromItem) (*relalg.Relation, error) {
	if len(from) == 0 {
		return relalg.JoinAll(nil, nil, 1)
	}
	rels := make([]*relalg.Relation, len(from))
	for i, item := range from {
		if item.Subquery != nil {
			sub, err := e.Query(t, item.Subquery)
			if err != nil {
				return nil, err
			}
			rels[i] = relalg.Requalify(sub, item.Name())
			continue
		}
		st, err := e.Storage(item.Table)
		if err != nil {
			return nil, err
		}
		rows := st.SnapshotRows()
		e.addScanned(int64(len(rows)))
		rels[i] = relalg.FromTable(item.Name(), st.Schema(), rows)
	}
	return relalg.JoinAll(rels, from, 1)
}

// ---------------------------------------------------------------------------
// Convenience statement execution (used by unit tests and the SQL shell when
// no federation layer is in front of the engine)
// ---------------------------------------------------------------------------

// ExecResult describes the outcome of a non-query statement.
type ExecResult struct {
	RowsAffected int
}

// ExecStatement parses nothing — it executes an already-parsed statement
// entirely inside DB2. The federation layer performs routing; this method is
// the "acceleration disabled" path and the engine's test entry point.
func (e *Engine) ExecStatement(t *txn.Txn, st sqlparse.Statement, user string) (*relalg.Relation, *ExecResult, error) {
	switch s := st.(type) {
	case *sqlparse.SelectStmt:
		rel, err := e.Query(t, s)
		return rel, nil, err
	case *sqlparse.CreateTableStmt:
		if s.InAccelerator != "" {
			return nil, nil, fmt.Errorf("db2: accelerator-only tables require the federation layer")
		}
		schema := SchemaFromColumnDefs(s.Columns)
		if err := e.CreateTable(s.Table, schema, user); err != nil {
			if s.IfNotExists && e.cat.HasTable(s.Table) {
				return nil, &ExecResult{}, nil
			}
			return nil, nil, err
		}
		return nil, &ExecResult{}, nil
	case *sqlparse.DropTableStmt:
		if err := e.DropTable(s.Table); err != nil {
			if s.IfExists {
				return nil, &ExecResult{}, nil
			}
			return nil, nil, err
		}
		return nil, &ExecResult{}, nil
	case *sqlparse.TruncateStmt:
		n, err := e.Truncate(t, s.Table)
		if err != nil {
			return nil, nil, err
		}
		return nil, &ExecResult{RowsAffected: n}, nil
	case *sqlparse.InsertStmt:
		rows, err := e.insertSourceRows(t, s)
		if err != nil {
			return nil, nil, err
		}
		n, err := e.Insert(t, s.Table, rows)
		if err != nil {
			return nil, nil, err
		}
		return nil, &ExecResult{RowsAffected: n}, nil
	case *sqlparse.UpdateStmt:
		n, err := e.Update(t, s.Table, s.Assignments, s.Where)
		if err != nil {
			return nil, nil, err
		}
		return nil, &ExecResult{RowsAffected: n}, nil
	case *sqlparse.DeleteStmt:
		n, err := e.Delete(t, s.Table, s.Where)
		if err != nil {
			return nil, nil, err
		}
		return nil, &ExecResult{RowsAffected: n}, nil
	case *sqlparse.GrantStmt:
		e.cat.Grant(s.Grantee, s.Table, s.Privileges...)
		return nil, &ExecResult{}, nil
	case *sqlparse.RevokeStmt:
		e.cat.Revoke(s.Grantee, s.Table, s.Privileges...)
		return nil, &ExecResult{}, nil
	default:
		return nil, nil, fmt.Errorf("db2: statement %T must be executed through the federation layer", st)
	}
}

// insertSourceRows evaluates VALUES or runs the source SELECT of an INSERT.
func (e *Engine) insertSourceRows(t *txn.Txn, s *sqlparse.InsertStmt) ([]types.Row, error) {
	meta, err := e.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	if s.Select != nil {
		src, err := e.Query(t, s.Select)
		if err != nil {
			return nil, err
		}
		return expr.MapSelectRows(s.Columns, src.Rows, meta.Schema)
	}
	return expr.BuildInsertRows(s.Columns, s.Rows, meta.Schema)
}

// SchemaFromColumnDefs converts parsed column definitions into a schema.
func SchemaFromColumnDefs(defs []sqlparse.ColumnDef) types.Schema {
	cols := make([]types.Column, len(defs))
	for i, d := range defs {
		cols[i] = types.Column{Name: d.Name, Kind: d.Kind, NotNull: d.NotNull}
	}
	return types.NewSchema(cols...)
}
