// Package db2 implements the host database system the accelerator is attached
// to: a transactional row-store engine with a catalog, table-level locking
// (cursor stability), undo-based rollback, privilege enforcement and change
// capture for replication. It stands in for DB2 for z/OS in the paper's
// architecture; applications connect to it and never talk to the accelerator
// directly.
package db2

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"idaax/internal/catalog"
	"idaax/internal/durable"
	"idaax/internal/expr"
	"idaax/internal/obs"
	"idaax/internal/rowstore"
	"idaax/internal/sqlparse"
	"idaax/internal/txn"
	"idaax/internal/types"
)

// Engine is the DB2 row-store engine.
type Engine struct {
	cat *catalog.Catalog

	mu     sync.RWMutex
	tables map[string]*rowstore.Table

	Locks   *txn.LockManager
	Txns    *txn.Manager
	Changes *ChangeLog

	// Durability (see durable.go). journal is attached once, before traffic.
	journal  Journal
	redoMu   sync.Mutex
	redo     map[int64][]durable.RowOp
	gated    map[int64]bool
	ckptGate sync.RWMutex

	statsMu      sync.Mutex
	rowsScanned  int64
	rowsInserted int64
	queriesRun   int64
}

// Stats summarises engine activity for the benchmark harness.
type Stats struct {
	RowsScanned  int64
	RowsInserted int64
	QueriesRun   int64
}

// New creates an engine bound to the shared catalog.
func New(cat *catalog.Catalog) *Engine {
	return &Engine{
		cat:     cat,
		tables:  make(map[string]*rowstore.Table),
		Locks:   txn.NewLockManager(2 * time.Second),
		Txns:    txn.NewManager(),
		Changes: NewChangeLog(),
		redo:    make(map[int64][]durable.RowOp),
		gated:   make(map[int64]bool),
	}
}

// Catalog returns the shared catalog (owned by DB2 in the paper's design).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return Stats{RowsScanned: e.rowsScanned, RowsInserted: e.rowsInserted, QueriesRun: e.queriesRun}
}

func (e *Engine) addScanned(n int64) {
	e.statsMu.Lock()
	e.rowsScanned += n
	e.statsMu.Unlock()
}

// Resources reports the per-table heap footprint of the row store for the
// ops plane's resource accounting (the host side of the capacity picture;
// the accelerator members report theirs through accel.Backend.Resources).
func (e *Engine) Resources() obs.StoreResources {
	e.mu.RLock()
	names := make([]string, 0, len(e.tables))
	tables := make([]*rowstore.Table, 0, len(e.tables))
	for n, t := range e.tables {
		names = append(names, n)
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	res := obs.StoreResources{Member: "DB2"}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
	for _, i := range order {
		res.AddTable(obs.TableResources{
			Table: names[i],
			Rows:  int64(tables[i].RowCount()),
			Bytes: tables[i].ApproxBytes(),
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// CreateTable creates a regular DB2 table: a catalog entry plus row storage.
func (e *Engine) CreateTable(name string, schema types.Schema, owner string) error {
	name = types.NormalizeName(name)
	if err := e.cat.CreateTable(&catalog.Table{Name: name, Schema: schema, Kind: catalog.KindRegular, Owner: owner}); err != nil {
		return err
	}
	e.mu.Lock()
	e.tables[name] = rowstore.NewTable(schema)
	e.mu.Unlock()
	return nil
}

// DropTable removes storage and the catalog entry of a regular table.
func (e *Engine) DropTable(name string) error {
	name = types.NormalizeName(name)
	if err := e.cat.DropTable(name); err != nil {
		return err
	}
	e.mu.Lock()
	delete(e.tables, name)
	e.mu.Unlock()
	return nil
}

// Storage returns the row store behind a regular or accelerated table.
func (e *Engine) Storage(name string) (*rowstore.Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[types.NormalizeName(name)]
	if !ok {
		return nil, fmt.Errorf("db2: table %s has no DB2 storage", types.NormalizeName(name))
	}
	return t, nil
}

// HasStorage reports whether the table has DB2-side row storage (false for
// accelerator-only tables, which exist in the catalog as proxies only).
func (e *Engine) HasStorage(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.tables[types.NormalizeName(name)]
	return ok
}

// CreateIndex builds a hash index on a column of a regular table.
func (e *Engine) CreateIndex(table, column string) error {
	st, err := e.Storage(table)
	if err != nil {
		return err
	}
	return st.CreateIndex(column)
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

// Begin starts a DB2 transaction. auto marks an implicit single-statement
// transaction.
func (e *Engine) Begin(auto bool) *txn.Txn { return e.Txns.Begin(auto) }

// Commit commits the transaction. The buffered redo is journaled first,
// while the transaction still holds its table locks, so the WAL's commit
// order respects data dependencies; then locks are released and the undo log
// dropped. The returned error reports a durability failure (the in-memory
// commit has happened regardless).
func (e *Engine) Commit(t *txn.Txn) error {
	id := int64(t.ID)
	ops := e.takeRedo(id)
	j := e.journal
	if j != nil && len(ops) > 0 {
		j.LogCommit(id, ops)
	}
	e.Locks.ReleaseAll(t)
	e.Txns.Finish(t, true)
	e.exitGate(id)
	if j != nil && len(ops) > 0 {
		return j.Barrier()
	}
	return nil
}

// Rollback undoes every change the transaction made in reverse order and
// releases its locks.
func (e *Engine) Rollback(t *txn.Txn) error {
	var firstErr error
	for _, rec := range t.UndoRecords() {
		st, err := e.Storage(rec.Table)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		switch rec.Op {
		case txn.UndoInsert:
			if _, ok := st.Delete(rec.RowID); !ok && firstErr == nil {
				firstErr = fmt.Errorf("db2: rollback could not remove inserted row %d of %s", rec.RowID, rec.Table)
			}
			e.captureChange(t, rec.Table, ChangeDelete, rec.RowID, rec.OldRow)
		case txn.UndoDelete:
			st.InsertRaw(rec.OldRow)
			e.captureChange(t, rec.Table, ChangeInsert, rec.RowID, rec.OldRow)
		case txn.UndoUpdate:
			if _, err := st.Update(rec.RowID, rec.OldRow); err != nil && firstErr == nil {
				firstErr = err
			}
			e.captureChange(t, rec.Table, ChangeUpdate, rec.RowID, rec.OldRow)
		}
	}
	// No redo is journaled for an aborted transaction. The compensation
	// change records above carry the same txn tag as the originals, so a
	// crash mid-rollback prunes both at recovery — net zero either way.
	id := int64(t.ID)
	e.takeRedo(id)
	e.Locks.ReleaseAll(t)
	e.Txns.Finish(t, false)
	e.exitGate(id)
	return firstErr
}

// autoTxn wraps fn in an implicit transaction when t is nil.
func (e *Engine) autoTxn(t *txn.Txn, fn func(t *txn.Txn) error) error {
	if t != nil {
		return fn(t)
	}
	auto := e.Begin(true)
	if err := fn(auto); err != nil {
		_ = e.Rollback(auto)
		return err
	}
	return e.Commit(auto)
}

// captureChange records CDC data for tables that are accelerated with
// replication enabled.
func (e *Engine) captureChange(tx *txn.Txn, table string, op ChangeOp, rowID rowstore.RowID, row types.Row) {
	meta, err := e.cat.Table(table)
	if err != nil || meta.Kind != catalog.KindAccelerated {
		return
	}
	e.Changes.Append(table, op, rowID, row, int64(tx.ID))
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// Insert appends rows to a regular table under the given transaction (nil for
// auto-commit). It returns the number of rows inserted.
func (e *Engine) Insert(t *txn.Txn, table string, rows []types.Row) (int, error) {
	st, err := e.Storage(table)
	if err != nil {
		return 0, err
	}
	count := 0
	err = e.autoTxn(t, func(tx *txn.Txn) error {
		if err := e.Locks.Acquire(tx, table, txn.LockExclusive); err != nil {
			return err
		}
		e.enterGate(tx)
		for _, row := range rows {
			id, err := st.Insert(row)
			if err != nil {
				return err
			}
			stored, _ := st.Get(id)
			tx.RecordUndo(txn.UndoRecord{Table: types.NormalizeName(table), Op: txn.UndoInsert, RowID: id, OldRow: stored})
			e.captureChange(tx, table, ChangeInsert, id, stored)
			e.recordRedo(tx, durable.RowOp{Kind: durable.RowOpInsert, Table: types.NormalizeName(table), ID: int64(id), Row: stored.Clone()})
			count++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	e.statsMu.Lock()
	e.rowsInserted += int64(count)
	e.statsMu.Unlock()
	return count, nil
}

// Update modifies rows matching where. Assignments are evaluated against the
// current row image.
func (e *Engine) Update(t *txn.Txn, table string, assignments []sqlparse.Assignment, where sqlparse.Expr) (int, error) {
	st, err := e.Storage(table)
	if err != nil {
		return 0, err
	}
	schema := st.Schema()
	env := expr.NewEnv(tableColumns(table, schema))
	for _, a := range assignments {
		if schema.IndexOf(a.Column) < 0 {
			return 0, fmt.Errorf("db2: UPDATE references unknown column %s", a.Column)
		}
	}
	count := 0
	err = e.autoTxn(t, func(tx *txn.Txn) error {
		if err := e.Locks.Acquire(tx, table, txn.LockExclusive); err != nil {
			return err
		}
		e.enterGate(tx)
		ids, err := e.matchRows(st, table, schema, where)
		if err != nil {
			return err
		}
		for _, id := range ids {
			old, ok := st.Get(id)
			if !ok {
				continue
			}
			updated := old.Clone()
			for _, a := range assignments {
				idx := schema.IndexOf(a.Column)
				v, err := env.Eval(a.Value, old)
				if err != nil {
					return err
				}
				updated[idx] = v
			}
			if _, err := st.Update(id, updated); err != nil {
				return err
			}
			stored, _ := st.Get(id)
			tx.RecordUndo(txn.UndoRecord{Table: types.NormalizeName(table), Op: txn.UndoUpdate, RowID: id, OldRow: old})
			e.captureChange(tx, table, ChangeUpdate, id, stored)
			e.recordRedo(tx, durable.RowOp{Kind: durable.RowOpUpdate, Table: types.NormalizeName(table), ID: int64(id), Row: stored.Clone()})
			count++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}

// Delete removes rows matching where.
func (e *Engine) Delete(t *txn.Txn, table string, where sqlparse.Expr) (int, error) {
	st, err := e.Storage(table)
	if err != nil {
		return 0, err
	}
	schema := st.Schema()
	count := 0
	err = e.autoTxn(t, func(tx *txn.Txn) error {
		if err := e.Locks.Acquire(tx, table, txn.LockExclusive); err != nil {
			return err
		}
		e.enterGate(tx)
		ids, err := e.matchRows(st, table, schema, where)
		if err != nil {
			return err
		}
		for _, id := range ids {
			old, ok := st.Delete(id)
			if !ok {
				continue
			}
			tx.RecordUndo(txn.UndoRecord{Table: types.NormalizeName(table), Op: txn.UndoDelete, RowID: id, OldRow: old})
			e.captureChange(tx, table, ChangeDelete, id, old)
			e.recordRedo(tx, durable.RowOp{Kind: durable.RowOpDelete, Table: types.NormalizeName(table), ID: int64(id)})
			count++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}

// Truncate removes all rows of a regular table.
func (e *Engine) Truncate(t *txn.Txn, table string) (int, error) {
	st, err := e.Storage(table)
	if err != nil {
		return 0, err
	}
	count := 0
	err = e.autoTxn(t, func(tx *txn.Txn) error {
		if err := e.Locks.Acquire(tx, table, txn.LockExclusive); err != nil {
			return err
		}
		e.enterGate(tx)
		// Log undo per row so rollback can restore them.
		if err := st.Scan(func(id rowstore.RowID, row types.Row) error {
			tx.RecordUndo(txn.UndoRecord{Table: types.NormalizeName(table), Op: txn.UndoDelete, RowID: id, OldRow: row.Clone()})
			return nil
		}); err != nil {
			return err
		}
		count = st.Truncate()
		e.captureChange(tx, table, ChangeTruncate, 0, nil)
		e.recordRedo(tx, durable.RowOp{Kind: durable.RowOpTruncate, Table: types.NormalizeName(table)})
		return nil
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}

// matchRows returns the row ids matching where, using a hash index for simple
// equality predicates on an indexed column and a scan otherwise.
func (e *Engine) matchRows(st *rowstore.Table, table string, schema types.Schema, where sqlparse.Expr) ([]rowstore.RowID, error) {
	if col, val, ok := indexableEquality(where, schema); ok {
		if ids, found := st.LookupIndex(col, val); found {
			return ids, nil
		}
	}
	env := expr.NewEnv(tableColumns(table, schema))
	var ids []rowstore.RowID
	scanned := int64(0)
	err := st.Scan(func(id rowstore.RowID, row types.Row) error {
		scanned++
		if where == nil {
			ids = append(ids, id)
			return nil
		}
		ok, err := env.EvalBool(where, row)
		if err != nil {
			return err
		}
		if ok {
			ids = append(ids, id)
		}
		return nil
	})
	e.addScanned(scanned)
	return ids, err
}

// indexableEquality recognises "col = literal" predicates.
func indexableEquality(where sqlparse.Expr, schema types.Schema) (string, types.Value, bool) {
	b, ok := where.(*sqlparse.BinaryExpr)
	if !ok || b.Op != sqlparse.OpEq {
		return "", types.Null(), false
	}
	if ref, ok := b.Left.(*sqlparse.ColumnRef); ok {
		if lit, ok := b.Right.(*sqlparse.Literal); ok && schema.IndexOf(ref.Name) >= 0 {
			return ref.Name, lit.Val, true
		}
	}
	if ref, ok := b.Right.(*sqlparse.ColumnRef); ok {
		if lit, ok := b.Left.(*sqlparse.Literal); ok && schema.IndexOf(ref.Name) >= 0 {
			return ref.Name, lit.Val, true
		}
	}
	return "", types.Null(), false
}

func tableColumns(qualifier string, schema types.Schema) []expr.InputColumn {
	cols := make([]expr.InputColumn, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = expr.InputColumn{Qualifier: types.NormalizeName(qualifier), Name: c.Name, Kind: c.Kind}
	}
	return cols
}
