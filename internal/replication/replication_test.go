package replication

import (
	"fmt"
	"testing"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/db2"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

type provider struct{ a *accel.Accelerator }

func (p *provider) Accelerator(name string) (*accel.Accelerator, error) {
	if types.NormalizeName(name) != "IDAA1" && name != "" {
		return nil, fmt.Errorf("unknown accelerator %s", name)
	}
	return p.a, nil
}

func setup(t *testing.T) (*db2.Engine, *accel.Accelerator, *Replicator) {
	t.Helper()
	cat := catalog.New()
	cat.AddAccelerator("IDAA1")
	engine := db2.New(cat)
	a := accel.New("IDAA1", 2)
	r := New(engine, &provider{a: a})
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindFloat},
	)
	if err := engine.CreateTable("FACTS", schema, "SYSADM"); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Insert(nil, "FACTS", []types.Row{
		{types.NewInt(1), types.NewFloat(1)},
		{types.NewInt(2), types.NewFloat(2)},
		{types.NewInt(3), types.NewFloat(3)},
	}); err != nil {
		t.Fatal(err)
	}
	return engine, a, r
}

func TestAddFullLoadRemove(t *testing.T) {
	engine, a, r := setup(t)
	if _, err := r.FullLoad("FACTS"); err == nil {
		t.Fatal("full load before AddTable should fail")
	}
	if err := r.AddTable("FACTS", "IDAA1", "ID"); err != nil {
		t.Fatal(err)
	}
	meta, _ := engine.Catalog().Table("FACTS")
	if meta.Kind != catalog.KindAccelerated {
		t.Fatalf("catalog kind: %v", meta.Kind)
	}
	n, err := r.FullLoad("FACTS")
	if err != nil || n != 3 {
		t.Fatalf("full load: %d, %v", n, err)
	}
	if got, _ := a.RowCount(0, "FACTS"); got != 3 {
		t.Fatalf("shadow rows: %d", got)
	}
	st, ok := r.State("FACTS")
	if !ok || st.FullLoads != 1 || st.RowsFullLoaded != 3 {
		t.Fatalf("state: %+v", st)
	}
	// Re-load replaces the contents rather than duplicating them.
	if _, err := r.FullLoad("FACTS"); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.RowCount(0, "FACTS"); got != 3 {
		t.Fatalf("shadow rows after reload: %d", got)
	}
	if err := r.RemoveTable("FACTS"); err != nil {
		t.Fatal(err)
	}
	meta, _ = engine.Catalog().Table("FACTS")
	if meta.Kind != catalog.KindRegular || a.HasTable("FACTS") {
		t.Fatal("remove incomplete")
	}
	if err := r.RemoveTable("FACTS"); err == nil {
		t.Fatal("removing a non-accelerated table should fail")
	}
}

func TestIncrementalApply(t *testing.T) {
	engine, a, r := setup(t)
	if err := r.AddTable("FACTS", "IDAA1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FullLoad("FACTS"); err != nil {
		t.Fatal(err)
	}
	if err := r.EnableReplication("FACTS"); err != nil {
		t.Fatal(err)
	}

	// Captured changes: insert, update, delete.
	if _, err := engine.Insert(nil, "FACTS", []types.Row{{types.NewInt(4), types.NewFloat(4)}}); err != nil {
		t.Fatal(err)
	}
	upd := mustParse(t, "UPDATE facts SET v = 20 WHERE id = 2").(*sqlparse.UpdateStmt)
	if _, err := engine.Update(nil, "FACTS", upd.Assignments, upd.Where); err != nil {
		t.Fatal(err)
	}
	del := mustParse(t, "DELETE FROM facts WHERE id = 1").(*sqlparse.DeleteStmt)
	if _, err := engine.Delete(nil, "FACTS", del.Where); err != nil {
		t.Fatal(err)
	}
	if pending := r.PendingChanges("FACTS"); pending != 3 {
		t.Fatalf("pending = %d", pending)
	}
	applied, err := r.SyncAll()
	if err != nil || applied != 3 {
		t.Fatalf("sync: %d, %v", applied, err)
	}
	if pending := r.PendingChanges("FACTS"); pending != 0 {
		t.Fatalf("pending after sync = %d", pending)
	}
	// Shadow now matches DB2: rows {2->20, 3, 4}, row 1 deleted.
	if got, _ := a.RowCount(0, "FACTS"); got != 3 {
		t.Fatalf("shadow rows = %d", got)
	}
	stats := r.Stats()
	if stats.RowsIncremental != 3 || stats.IncrementalRuns != 1 || stats.RowsFullLoaded != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	// Disabled replication is skipped by SyncAll.
	if err := r.DisableReplication("FACTS"); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Insert(nil, "FACTS", []types.Row{{types.NewInt(9), types.NewFloat(9)}}); err != nil {
		t.Fatal(err)
	}
	n, err := r.SyncAll()
	if err != nil || n != 0 {
		t.Fatalf("sync with replication disabled applied %d, %v", n, err)
	}
}

func mustParse(t *testing.T, sql string) sqlparse.Statement {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
