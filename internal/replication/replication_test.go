package replication

import (
	"fmt"
	"sync"
	"testing"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/db2"
	"idaax/internal/rowstore"
	"idaax/internal/shard"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

type provider struct{ a *accel.Accelerator }

func (p *provider) Accelerator(name string) (accel.Backend, error) {
	if types.NormalizeName(name) != "IDAA1" && name != "" {
		return nil, fmt.Errorf("unknown accelerator %s", name)
	}
	return p.a, nil
}

func setup(t *testing.T) (*db2.Engine, *accel.Accelerator, *Replicator) {
	t.Helper()
	cat := catalog.New()
	cat.AddAccelerator("IDAA1")
	engine := db2.New(cat)
	a := accel.New("IDAA1", 2)
	r := New(engine, &provider{a: a})
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindFloat},
	)
	if err := engine.CreateTable("FACTS", schema, "SYSADM"); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Insert(nil, "FACTS", []types.Row{
		{types.NewInt(1), types.NewFloat(1)},
		{types.NewInt(2), types.NewFloat(2)},
		{types.NewInt(3), types.NewFloat(3)},
	}); err != nil {
		t.Fatal(err)
	}
	return engine, a, r
}

func TestAddFullLoadRemove(t *testing.T) {
	engine, a, r := setup(t)
	if _, err := r.FullLoad("FACTS"); err == nil {
		t.Fatal("full load before AddTable should fail")
	}
	if err := r.AddTable("FACTS", "IDAA1", "ID"); err != nil {
		t.Fatal(err)
	}
	meta, _ := engine.Catalog().Table("FACTS")
	if meta.Kind != catalog.KindAccelerated {
		t.Fatalf("catalog kind: %v", meta.Kind)
	}
	n, err := r.FullLoad("FACTS")
	if err != nil || n != 3 {
		t.Fatalf("full load: %d, %v", n, err)
	}
	if got, _ := a.RowCount(0, "FACTS"); got != 3 {
		t.Fatalf("shadow rows: %d", got)
	}
	st, ok := r.State("FACTS")
	if !ok || st.FullLoads != 1 || st.RowsFullLoaded != 3 {
		t.Fatalf("state: %+v", st)
	}
	// Re-load replaces the contents rather than duplicating them.
	if _, err := r.FullLoad("FACTS"); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.RowCount(0, "FACTS"); got != 3 {
		t.Fatalf("shadow rows after reload: %d", got)
	}
	if err := r.RemoveTable("FACTS"); err != nil {
		t.Fatal(err)
	}
	meta, _ = engine.Catalog().Table("FACTS")
	if meta.Kind != catalog.KindRegular || a.HasTable("FACTS") {
		t.Fatal("remove incomplete")
	}
	if err := r.RemoveTable("FACTS"); err == nil {
		t.Fatal("removing a non-accelerated table should fail")
	}
}

func TestIncrementalApply(t *testing.T) {
	engine, a, r := setup(t)
	if err := r.AddTable("FACTS", "IDAA1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FullLoad("FACTS"); err != nil {
		t.Fatal(err)
	}
	if err := r.EnableReplication("FACTS"); err != nil {
		t.Fatal(err)
	}

	// Captured changes: insert, update, delete.
	if _, err := engine.Insert(nil, "FACTS", []types.Row{{types.NewInt(4), types.NewFloat(4)}}); err != nil {
		t.Fatal(err)
	}
	upd := mustParse(t, "UPDATE facts SET v = 20 WHERE id = 2").(*sqlparse.UpdateStmt)
	if _, err := engine.Update(nil, "FACTS", upd.Assignments, upd.Where); err != nil {
		t.Fatal(err)
	}
	del := mustParse(t, "DELETE FROM facts WHERE id = 1").(*sqlparse.DeleteStmt)
	if _, err := engine.Delete(nil, "FACTS", del.Where); err != nil {
		t.Fatal(err)
	}
	if pending := r.PendingChanges("FACTS"); pending != 3 {
		t.Fatalf("pending = %d", pending)
	}
	applied, err := r.SyncAll()
	if err != nil || applied != 3 {
		t.Fatalf("sync: %d, %v", applied, err)
	}
	if pending := r.PendingChanges("FACTS"); pending != 0 {
		t.Fatalf("pending after sync = %d", pending)
	}
	// Shadow now matches DB2: rows {2->20, 3, 4}, row 1 deleted.
	if got, _ := a.RowCount(0, "FACTS"); got != 3 {
		t.Fatalf("shadow rows = %d", got)
	}
	stats := r.Stats()
	if stats.RowsIncremental != 3 || stats.IncrementalRuns != 1 || stats.RowsFullLoaded != 3 {
		t.Fatalf("stats: %+v", stats)
	}
	// Disabled replication is skipped by SyncAll.
	if err := r.DisableReplication("FACTS"); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Insert(nil, "FACTS", []types.Row{{types.NewInt(9), types.NewFloat(9)}}); err != nil {
		t.Fatal(err)
	}
	n, err := r.SyncAll()
	if err != nil || n != 0 {
		t.Fatalf("sync with replication disabled applied %d, %v", n, err)
	}
}

func mustParse(t *testing.T, sql string) sqlparse.Statement {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// shardedProvider resolves both the shard-group name and the member names.
type shardedProvider struct{ router *shard.Router }

func (p *shardedProvider) Accelerator(name string) (accel.Backend, error) {
	name = types.NormalizeName(name)
	if name == "" || name == "SHARDS" {
		return p.router, nil
	}
	for _, m := range p.router.Members() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("unknown accelerator %s", name)
}

func setupSharded(t *testing.T, shards int) (*db2.Engine, *shard.Router, *Replicator) {
	t.Helper()
	cat := catalog.New()
	cat.AddAccelerator("SHARDS")
	engine := db2.New(cat)
	members := make([]*accel.Accelerator, shards)
	for i := range members {
		members[i] = accel.New(fmt.Sprintf("NODE%d", i), 2)
	}
	router, err := shard.NewRouter("SHARDS", members)
	if err != nil {
		t.Fatal(err)
	}
	r := New(engine, &shardedProvider{router: router})
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindFloat},
	)
	if err := engine.CreateTable("FACTS", schema, "SYSADM"); err != nil {
		t.Fatal(err)
	}
	return engine, router, r
}

// TestIncrementalApplyConcurrentWriters drives the incremental CDC path while
// writers keep committing: several goroutines insert into DB2 concurrently
// with a syncer that repeatedly applies pending changes, and the shadow copy
// must converge to the exact DB2 contents with every row mirrored on exactly
// one shard.
func TestIncrementalApplyConcurrentWriters(t *testing.T) {
	engine, router, r := setupSharded(t, 3)
	if err := r.AddTable("FACTS", "SHARDS", "ID"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FullLoad("FACTS"); err != nil {
		t.Fatal(err)
	}
	if err := r.EnableReplication("FACTS"); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 200
	var wg sync.WaitGroup
	writeErrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				_, err := engine.Insert(nil, "FACTS", []types.Row{
					{types.NewInt(id), types.NewFloat(float64(id) * 0.5)},
				})
				if err != nil {
					writeErrs[w] = err
					return
				}
			}
		}(w)
	}

	// Syncer races the writers: repeatedly apply whatever is pending.
	stop := make(chan struct{})
	var syncErr error
	var syncerDone sync.WaitGroup
	syncerDone.Add(1)
	go func() {
		defer syncerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := r.ApplyPending("FACTS"); err != nil {
					syncErr = err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	syncerDone.Wait()
	if syncErr != nil {
		t.Fatalf("syncer: %v", syncErr)
	}
	for w, err := range writeErrs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	// Drain whatever the racing syncer had not yet applied.
	if _, err := r.ApplyPending("FACTS"); err != nil {
		t.Fatal(err)
	}
	if pending := r.PendingChanges("FACTS"); pending != 0 {
		t.Fatalf("pending after final sync = %d", pending)
	}

	// The shadow fleet holds exactly the DB2 rows, each on exactly one shard.
	const total = writers * perWriter
	if got, _ := router.RowCount(0, "FACTS"); got != total {
		t.Fatalf("fleet rows = %d, want %d", got, total)
	}
	st, err := engine.Storage("FACTS")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Scan(func(id rowstore.RowID, row types.Row) error {
		holders := 0
		for _, m := range router.Members() {
			if m.HasReplicatedSource("FACTS", int64(id)) {
				holders++
			}
		}
		if holders != 1 {
			return fmt.Errorf("DB2 row %d mirrored on %d shards, want exactly 1", id, holders)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Distribution is not degenerate: every shard received a share.
	for _, m := range router.Members() {
		n, err := m.RowCount(0, "FACTS")
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("shard %s holds no replicated rows", m.Name())
		}
	}
}

// TestShardedIncrementalUpdateDelete verifies that captured updates and
// deletes land on the owning shard, including key changes that migrate rows.
func TestShardedIncrementalUpdateDelete(t *testing.T) {
	engine, router, r := setupSharded(t, 2)
	if _, err := engine.Insert(nil, "FACTS", []types.Row{
		{types.NewInt(1), types.NewFloat(1)},
		{types.NewInt(2), types.NewFloat(2)},
		{types.NewInt(3), types.NewFloat(3)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddTable("FACTS", "SHARDS", "ID"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FullLoad("FACTS"); err != nil {
		t.Fatal(err)
	}
	if err := r.EnableReplication("FACTS"); err != nil {
		t.Fatal(err)
	}

	// A key-changing update must migrate the shadow row to its new owner.
	upd := mustParse(t, "UPDATE facts SET id = 100, v = 10 WHERE id = 2").(*sqlparse.UpdateStmt)
	if _, err := engine.Update(nil, "FACTS", upd.Assignments, upd.Where); err != nil {
		t.Fatal(err)
	}
	del := mustParse(t, "DELETE FROM facts WHERE id = 3").(*sqlparse.DeleteStmt)
	if _, err := engine.Delete(nil, "FACTS", del.Where); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyPending("FACTS"); err != nil {
		t.Fatal(err)
	}
	if got, _ := router.RowCount(0, "FACTS"); got != 2 {
		t.Fatalf("fleet rows = %d, want 2", got)
	}
	st, _ := engine.Storage("FACTS")
	if err := st.Scan(func(id rowstore.RowID, row types.Row) error {
		holders := 0
		for _, m := range router.Members() {
			if m.HasReplicatedSource("FACTS", int64(id)) {
				holders++
			}
		}
		if holders != 1 {
			return fmt.Errorf("DB2 row %d on %d shards after update/delete", id, holders)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
