package replication

import (
	"idaax/internal/catalog"
	"idaax/internal/types"
)

// Durability: the replicator journals one record per table whenever its
// applied change sequence moves (after a full load and after each
// incremental apply). The presence of a journaled state marks the full load
// as complete — recovery of a table without one redoes the full load, while
// a table with one only needs an incremental CDC catch-up from the recorded
// sequence.

// Journal receives replication-progress durability events.
type Journal interface {
	LogReplState(table string, appliedSeq int64)
}

// SetJournal attaches a durability sink (nil detaches).
func (r *Replicator) SetJournal(j Journal) {
	r.mu.Lock()
	r.journal = j
	r.mu.Unlock()
}

// journalState must be called with r.mu held.
func (r *Replicator) journalState(table string, appliedSeq int64) {
	if r.journal != nil {
		r.journal.LogReplState(table, appliedSeq)
	}
}

// StatesSnapshot returns each table's applied change sequence for
// checkpointing. Tables that never completed a full load are absent.
func (r *Replicator) StatesSnapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.states))
	for table, st := range r.states {
		if st.FullLoads > 0 || st.AppliedSeq > 0 {
			out[table] = st.AppliedSeq
		}
	}
	return out
}

// ApplyReplState restores or replays one table's replication progress. The
// accelerator name is refreshed from the catalog; the sequence only moves
// forward so checkpoint image and WAL replay compose in any order.
func (r *Replicator) ApplyReplState(table string, appliedSeq int64) {
	table = types.NormalizeName(table)
	accName := ""
	if meta, err := r.cat.Table(table); err == nil {
		accName = meta.Accelerator
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.states[table]
	if !ok {
		st = &TableState{Table: table, Accelerator: accName}
		r.states[table] = st
	}
	if st.FullLoads == 0 {
		st.FullLoads = 1 // the journaled state implies a completed full load
	}
	if appliedSeq > st.AppliedSeq {
		st.AppliedSeq = appliedSeq
	}
}

// NeedsFullLoad reports whether the accelerated table has no completed full
// load on record — after recovery such tables must be reloaded rather than
// caught up incrementally.
func (r *Replicator) NeedsFullLoad(table string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.states[types.NormalizeName(table)]
	return !ok || st.FullLoads == 0
}

// RecoverAll brings every accelerated table's shadow copy back in sync after
// a restart: tables with a journaled replication state are caught up from the
// pending change stream (the cheap path a rejoining member takes), tables
// without one get a fresh full load. It returns how many tables took each
// path.
func (r *Replicator) RecoverAll() (caughtUp, fullLoaded int, err error) {
	for _, meta := range r.cat.Tables() {
		if meta.Kind != catalog.KindAccelerated {
			continue
		}
		if r.NeedsFullLoad(meta.Name) {
			if _, err := r.FullLoad(meta.Name); err != nil {
				return caughtUp, fullLoaded, err
			}
			fullLoaded++
			continue
		}
		if _, err := r.ApplyPending(meta.Name); err != nil {
			return caughtUp, fullLoaded, err
		}
		caughtUp++
	}
	return caughtUp, fullLoaded, nil
}
