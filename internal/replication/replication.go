// Package replication copies data of accelerated DB2 tables to their columnar
// shadow copies on an accelerator: an initial full load plus incremental
// application of captured changes (CDC). This is the data path the paper's
// introduction identifies as the bottleneck for multi-stage workloads — every
// stage that materialises its result in DB2 must flow through here before the
// accelerator can use it — and the data path accelerator-only tables avoid.
package replication

import (
	"fmt"
	"sync"
	"time"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/db2"
	"idaax/internal/rowstore"
	"idaax/internal/types"
)

// AcceleratorProvider resolves accelerator names (implemented by the
// federation coordinator).
type AcceleratorProvider interface {
	Accelerator(name string) (accel.Backend, error)
}

// TableState tracks replication progress for one accelerated table.
type TableState struct {
	Table           string
	Accelerator     string
	AppliedSeq      int64
	RowsFullLoaded  int64
	RowsIncremental int64
	FullLoads       int64
	LastSync        time.Time
}

// Stats aggregates replication activity.
type Stats struct {
	RowsFullLoaded  int64
	RowsIncremental int64
	FullLoads       int64
	IncrementalRuns int64
}

// Replicator owns the DB2 -> accelerator copy process.
type Replicator struct {
	engine *db2.Engine
	cat    *catalog.Catalog
	accels AcceleratorProvider

	mu      sync.Mutex
	states  map[string]*TableState
	stats   Stats
	journal Journal
}

// New creates a replicator.
func New(engine *db2.Engine, accels AcceleratorProvider) *Replicator {
	return &Replicator{engine: engine, cat: engine.Catalog(), accels: accels, states: make(map[string]*TableState)}
}

// Stats returns aggregate counters.
func (r *Replicator) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// State returns a copy of the per-table replication state.
func (r *Replicator) State(table string) (TableState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.states[types.NormalizeName(table)]
	if !ok {
		return TableState{}, false
	}
	return *st, true
}

// AddTable turns a regular DB2 table into an accelerated table: it creates the
// shadow columnar table on the accelerator and updates the catalog. Data is
// not copied yet; call FullLoad (the equivalent of ACCEL_LOAD_TABLES).
func (r *Replicator) AddTable(table, acceleratorName, distKey string) error {
	table = types.NormalizeName(table)
	meta, err := r.cat.Table(table)
	if err != nil {
		return err
	}
	if meta.Kind == catalog.KindAcceleratorOnly {
		return fmt.Errorf("replication: %s is accelerator-only and needs no replication", table)
	}
	if !r.engine.HasStorage(table) {
		return fmt.Errorf("replication: %s has no DB2 storage", table)
	}
	acc, err := r.accels.Accelerator(acceleratorName)
	if err != nil {
		return err
	}
	if !acc.HasTable(table) {
		if err := acc.CreateTable(table, meta.Schema, distKey); err != nil {
			return err
		}
	}
	if err := r.cat.SetKind(table, catalog.KindAccelerated, acceleratorName); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.states[table]; !ok {
		r.states[table] = &TableState{Table: table, Accelerator: types.NormalizeName(acceleratorName)}
	}
	return nil
}

// RemoveTable detaches a table from the accelerator: the shadow copy is
// dropped and the catalog entry reverts to a regular table.
func (r *Replicator) RemoveTable(table string) error {
	table = types.NormalizeName(table)
	meta, err := r.cat.Table(table)
	if err != nil {
		return err
	}
	if meta.Kind != catalog.KindAccelerated {
		return fmt.Errorf("replication: %s is not an accelerated table", table)
	}
	acc, err := r.accels.Accelerator(meta.Accelerator)
	if err != nil {
		return err
	}
	if acc.HasTable(table) {
		if err := acc.DropTable(table); err != nil {
			return err
		}
	}
	if err := r.cat.SetKind(table, catalog.KindRegular, ""); err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.states, table)
	r.mu.Unlock()
	return nil
}

// FullLoad (re)copies the complete DB2 table into its shadow copy, replacing
// previous contents, and fast-forwards the applied change sequence. It returns
// the number of rows copied.
func (r *Replicator) FullLoad(table string) (int, error) {
	table = types.NormalizeName(table)
	meta, err := r.cat.Table(table)
	if err != nil {
		return 0, err
	}
	if meta.Kind != catalog.KindAccelerated {
		return 0, fmt.Errorf("replication: %s is not an accelerated table", table)
	}
	acc, err := r.accels.Accelerator(meta.Accelerator)
	if err != nil {
		return 0, err
	}
	st, err := r.engine.Storage(table)
	if err != nil {
		return 0, err
	}

	// Snapshot rows together with their DB2 row ids so later incremental
	// updates and deletes can be applied by source id.
	var rows []types.Row
	var srcIDs []int64
	if err := st.Scan(func(id rowstore.RowID, row types.Row) error {
		rows = append(rows, row.Clone())
		srcIDs = append(srcIDs, int64(id))
		return nil
	}); err != nil {
		return 0, err
	}
	latestSeq := r.engine.Changes.LatestSeq()

	// Replace the shadow contents under an internal accelerator transaction.
	if _, err := acc.TruncateReplicated(table); err != nil {
		return 0, err
	}
	n, err := acc.InsertReplicated(table, rows, srcIDs)
	if err != nil {
		return n, err
	}

	r.mu.Lock()
	state, ok := r.states[table]
	if !ok {
		state = &TableState{Table: table, Accelerator: meta.Accelerator}
		r.states[table] = state
	}
	state.AppliedSeq = latestSeq
	state.RowsFullLoaded += int64(n)
	state.FullLoads++
	state.LastSync = time.Now()
	r.stats.RowsFullLoaded += int64(n)
	r.stats.FullLoads++
	r.journalState(table, latestSeq)
	r.mu.Unlock()

	// Changes up to the snapshot point are subsumed by the full load.
	r.engine.Changes.Discard(table, latestSeq)
	return n, nil
}

// EnableReplication turns on incremental change capture for the table.
func (r *Replicator) EnableReplication(table string) error {
	return r.cat.SetReplication(table, true)
}

// DisableReplication turns incremental change capture off.
func (r *Replicator) DisableReplication(table string) error {
	return r.cat.SetReplication(table, false)
}

// ApplyLag reports the table's CDC backlog: how many captured changes have
// not been applied to the shadow copy yet, and the age of the oldest of them
// (0 when nothing is pending).
func (r *Replicator) ApplyLag(table string) (pending int, lag time.Duration) {
	table = types.NormalizeName(table)
	r.mu.Lock()
	applied := int64(0)
	if st, ok := r.states[table]; ok {
		applied = st.AppliedSeq
	}
	r.mu.Unlock()
	pending = r.engine.Changes.PendingCount(table, applied)
	if pending > 0 {
		if oldest, ok := r.engine.Changes.OldestPending(table, applied); ok {
			lag = time.Since(oldest)
		}
	}
	return pending, lag
}

// LagReport aggregates the CDC backlog across every replicated table: the
// total pending change count and the worst apply lag. It feeds the
// repl_pending_changes / repl_apply_lag_ms gauges.
func (r *Replicator) LagReport() (pending int, maxLag time.Duration) {
	r.mu.Lock()
	tables := make([]string, 0, len(r.states))
	for t := range r.states {
		tables = append(tables, t)
	}
	r.mu.Unlock()
	for _, t := range tables {
		p, lag := r.ApplyLag(t)
		pending += p
		if lag > maxLag {
			maxLag = lag
		}
	}
	return pending, maxLag
}

// PendingChanges returns how many captured changes have not been applied yet.
func (r *Replicator) PendingChanges(table string) int {
	r.mu.Lock()
	applied := int64(0)
	if st, ok := r.states[types.NormalizeName(table)]; ok {
		applied = st.AppliedSeq
	}
	r.mu.Unlock()
	return r.engine.Changes.PendingCount(table, applied)
}

// ApplyPending applies all captured changes of the table to its shadow copy
// and returns the number of change records applied.
func (r *Replicator) ApplyPending(table string) (int, error) {
	table = types.NormalizeName(table)
	meta, err := r.cat.Table(table)
	if err != nil {
		return 0, err
	}
	if meta.Kind != catalog.KindAccelerated {
		return 0, fmt.Errorf("replication: %s is not an accelerated table", table)
	}
	acc, err := r.accels.Accelerator(meta.Accelerator)
	if err != nil {
		return 0, err
	}

	r.mu.Lock()
	state, ok := r.states[table]
	if !ok {
		state = &TableState{Table: table, Accelerator: meta.Accelerator}
		r.states[table] = state
	}
	applied := state.AppliedSeq
	r.mu.Unlock()

	changes := r.engine.Changes.Since(table, applied)
	if len(changes) == 0 {
		return 0, nil
	}
	count := 0
	var lastSeq int64
	for _, ch := range changes {
		switch ch.Op {
		case db2.ChangeInsert:
			if _, err := acc.InsertReplicated(table, []types.Row{ch.Row}, []int64{int64(ch.RowID)}); err != nil {
				return count, err
			}
		case db2.ChangeUpdate:
			if err := acc.ApplyReplicatedUpdate(table, int64(ch.RowID), ch.Row); err != nil {
				return count, err
			}
		case db2.ChangeDelete:
			if _, err := acc.ApplyReplicatedDelete(table, int64(ch.RowID)); err != nil {
				return count, err
			}
		case db2.ChangeTruncate:
			if _, err := acc.TruncateReplicated(table); err != nil {
				return count, err
			}
		}
		count++
		lastSeq = ch.Seq
	}

	r.mu.Lock()
	state.AppliedSeq = lastSeq
	state.RowsIncremental += int64(count)
	state.LastSync = time.Now()
	r.stats.RowsIncremental += int64(count)
	r.stats.IncrementalRuns++
	r.journalState(table, lastSeq)
	r.mu.Unlock()

	r.engine.Changes.Discard(table, lastSeq)
	return count, nil
}

// SyncAll applies pending changes for every accelerated table with replication
// enabled and returns the total number of change records applied.
func (r *Replicator) SyncAll() (int, error) {
	total := 0
	for _, meta := range r.cat.Tables() {
		if meta.Kind != catalog.KindAccelerated || !meta.ReplicationEnabled {
			continue
		}
		n, err := r.ApplyPending(meta.Name)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
