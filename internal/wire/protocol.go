// Package wire is the network serving layer: a versioned HTTP/JSON protocol
// (the /v1 endpoints) over the federation's session machinery, a session pool
// with per-session transaction state, idle reaping and graceful drain, and
// admission control in front of every statement. The protocol contract is
// documented in docs/WIRE_PROTOCOL.md; this file holds the request/response
// shapes both the server and the Go client marshal.
package wire

import "time"

// ProtocolVersion is the wire protocol's version prefix ("/v1").
const ProtocolVersion = "v1"

// PriorityHeader carries the per-request priority class ("interactive" or
// "batch"); it overrides the session's default priority for one statement.
const PriorityHeader = "X-IDAA-Priority"

// Stable machine-readable error codes (the "code" field of errorBody).
const (
	CodeBadRequest     = "bad_request"     // malformed JSON / missing sql
	CodeSQLError       = "sql_error"       // the statement itself failed
	CodeUnknownSession = "unknown_session" // token expired, reaped or never issued
	CodeQueueFull      = "queue_full"      // admission shed (HTTP 429)
	CodeDraining       = "draining"        // server is shutting down (HTTP 503)
)

// openSessionRequest is the body of POST /v1/sessions.
type openSessionRequest struct {
	// User is the authorization id the session runs as (server default when
	// empty).
	User string `json:"user,omitempty"`
	// Priority is the session's default priority class: "interactive"
	// (default) or "batch".
	Priority string `json:"priority,omitempty"`
}

// openSessionResponse is the body returned by POST /v1/sessions.
type openSessionResponse struct {
	Session  string `json:"session"`
	User     string `json:"user"`
	Priority string `json:"priority"`
}

// statementRequest is the body of POST /v1/query and POST /v1/exec.
type statementRequest struct {
	// SQL is the single statement to execute.
	SQL string `json:"sql"`
	// Session is a token from POST /v1/sessions; empty runs the statement on
	// a one-shot auto-commit session.
	Session string `json:"session,omitempty"`
	// User sets the authorization id for one-shot requests (ignored when a
	// session token is given).
	User string `json:"user,omitempty"`
	// Stream asks for the NDJSON chunked framing instead of one JSON body
	// (POST /v1/query only).
	Stream bool `json:"stream,omitempty"`
	// ChunkRows caps rows per streamed chunk (server default when <= 0).
	ChunkRows int `json:"chunk_rows,omitempty"`
}

// statementResponse is the body of a non-streamed statement: the rendered
// result set plus the serving-layer timings.
type statementResponse struct {
	Columns      []string   `json:"columns,omitempty"`
	Rows         [][]string `json:"rows,omitempty"`
	RowsAffected int        `json:"rows_affected,omitempty"`
	Routed       string     `json:"routed,omitempty"`
	Message      string     `json:"message,omitempty"`
	// QueuedMS is time spent waiting for an admission slot.
	QueuedMS float64 `json:"queued_ms"`
	// ElapsedMS is execution time once admitted.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Frame is one line of the streamed (NDJSON) response of POST /v1/query with
// "stream": true. The sequence is: one "columns" frame, zero or more "rows"
// frames, then exactly one "done" or "error" frame.
type Frame struct {
	// Type is "columns", "rows", "done" or "error".
	Type string `json:"type"`
	// Columns is set on the "columns" frame.
	Columns []string `json:"columns,omitempty"`
	// Rows is set on "rows" frames (at most chunk_rows rows each).
	Rows [][]string `json:"rows,omitempty"`
	// RowsAffected, Routed, Message, QueuedMS and ElapsedMS are set on the
	// "done" frame.
	RowsAffected int     `json:"rows_affected,omitempty"`
	Routed       string  `json:"routed,omitempty"`
	Message      string  `json:"message,omitempty"`
	QueuedMS     float64 `json:"queued_ms,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms,omitempty"`
	// Error is set on the "error" frame.
	Error string `json:"error,omitempty"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Result is a statement outcome as the serving layer sees it: result-set
// values rendered as strings (NULL as the literal "NULL"), exactly what goes
// on the wire.
type Result struct {
	Columns      []string
	Rows         [][]string
	RowsAffected int
	Routed       string
	Message      string
}

// Session is what the serving layer needs from an engine session. The root
// package adapts its Session facade to this interface, keeping the wire
// package free of engine imports. Implementations are not concurrency-safe;
// the server serialises access per pooled session.
type Session interface {
	// Exec parses and executes one SQL statement.
	Exec(sql string) (*Result, error)
	// InTransaction reports whether an explicit transaction is open.
	InTransaction() bool
	// Rollback aborts the open explicit transaction.
	Rollback() error
}

// QueueWaiter is optionally implemented by sessions that can attach the
// admission queue wait to the next statement's trace.
type QueueWaiter interface {
	NoteQueueWait(d time.Duration)
}
