package wire

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idaax/internal/admission"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
)

// Config parameterises a wire server.
type Config struct {
	// NewSession opens an engine session for an authorization id (required).
	NewSession func(user string) Session
	// CloseSession releases an engine session when the pool drops it (nil ok;
	// open transactions are rolled back first either way).
	CloseSession func(Session)
	// Admission gates every statement (nil = admission off, everything runs
	// immediately).
	Admission *admission.Controller
	// Obs receives the wire_* metrics (nil ok).
	Obs *obs.Registry
	// Events receives lifecycle and reaping events (nil ok).
	Events *eventlog.Log
	// OpsHandler, when set, serves every path outside /v1/ — mounting the
	// read-only ops endpoints (/metrics, /healthz, ...) on the same port.
	OpsHandler http.Handler
	// DefaultUser is the authorization id used when a request names none.
	DefaultUser string
	// IdleTimeout reaps pooled sessions unused for this long (default 5m;
	// negative disables reaping).
	IdleTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight statements
	// before shutting down anyway (default 30s).
	DrainTimeout time.Duration
	// ChunkRows is the default rows-per-frame of streamed responses
	// (default 512).
	ChunkRows int
}

// Defaults used when Config leaves them zero.
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultDrainTimeout = 30 * time.Second
	DefaultChunkRows    = 512
)

// pooledSession is one entry of the session pool: the engine session, its
// defaults, and the bookkeeping the reaper reads. The mutex serialises
// statements — engine sessions are not concurrency-safe, and serialising here
// preserves transaction ordering for clients that pipeline requests.
type pooledSession struct {
	mu       sync.Mutex
	sess     Session
	user     string
	priority admission.Class
	lastUsed atomic.Int64 // unix nanos
	closed   bool
}

// Server is the wire-protocol HTTP server. Create with NewServer, start with
// Start (or mount Handler under a test server), stop with Close — which
// drains in-flight statements before the listener goes away.
type Server struct {
	cfg Config

	httpSrv *http.Server
	ln      net.Listener

	mu       sync.Mutex
	sessions map[string]*pooledSession

	inflight sync.WaitGroup
	nInfl    atomic.Int64
	draining atomic.Bool

	reapStop chan struct{}
	reapDone chan struct{}
}

// NewServer builds a server for the config; call Start (with an address) or
// serve Handler yourself.
func NewServer(cfg Config) *Server {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.ChunkRows <= 0 {
		cfg.ChunkRows = DefaultChunkRows
	}
	if cfg.DefaultUser == "" {
		cfg.DefaultUser = "PUBLIC"
	}
	s := &Server{
		cfg:      cfg,
		sessions: make(map[string]*pooledSession),
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	if r := cfg.Obs; r != nil {
		r.Counter("wire_requests_total")
		r.Counter("wire_errors_total")
		r.Counter("wire_sessions_opened")
		r.Counter("wire_sessions_reaped")
		r.GaugeFunc("wire_sessions_open", func() int64 { return int64(s.SessionCount()) })
		r.GaugeFunc("wire_inflight", func() int64 { return s.nInfl.Load() })
		r.Histogram("wire_request_seconds")
	}
	if cfg.IdleTimeout > 0 {
		go s.reapLoop()
	} else {
		close(s.reapDone)
	}
	return s
}

// Handler returns the route table as a plain http.Handler so tests can drive
// the protocol through httptest without a socket. Paths outside /v1/ fall
// through to Config.OpsHandler when one is mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sessions", s.handleSessions)
	mux.HandleFunc("/v1/sessions/", s.handleSessionClose)
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) { s.handleStatement(w, r, true) })
	mux.HandleFunc("/v1/exec", func(w http.ResponseWriter, r *http.Request) { s.handleStatement(w, r, false) })
	if s.cfg.OpsHandler != nil {
		mux.Handle("/", s.cfg.OpsHandler)
	}
	return mux
}

// Start binds addr and serves in the background; it returns once the address
// is bound (so Addr is valid) or with the bind error.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.cfg.Events.Emitf(eventlog.TypeWireServer, eventlog.Info, "", "",
		"wire server listening on "+ln.Addr().String())
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound address (useful with ":0"); empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Draining reports whether Close has begun: new statements are rejected with
// 503 while in-flight ones finish.
func (s *Server) Draining() bool { return s.draining.Load() }

// SessionCount returns how many pooled sessions are open.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close drains and shuts down: new statements get 503 immediately, in-flight
// statements are given DrainTimeout to finish (so an acknowledged commit is
// never cut off mid-handshake), every pooled session is rolled back and
// released, the reaper stops and the listener closes. Safe to call twice.
func (s *Server) Close() error {
	if s.draining.Swap(true) {
		return nil
	}
	s.cfg.Events.Emitf(eventlog.TypeWireServer, eventlog.Info, "", "",
		fmt.Sprintf("wire server draining: %d statement(s) in flight", s.nInfl.Load()))

	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.cfg.Events.Emitf(eventlog.TypeWireServer, eventlog.Warn, "", "",
			fmt.Sprintf("wire drain timed out after %s with %d statement(s) in flight", s.cfg.DrainTimeout, s.nInfl.Load()))
	}

	close(s.reapStop)
	<-s.reapDone

	s.mu.Lock()
	sessions := s.sessions
	s.sessions = make(map[string]*pooledSession)
	s.mu.Unlock()
	for _, ps := range sessions {
		s.releaseSession(ps)
	}

	var err error
	if s.ln != nil {
		// In-flight statements were drained above, so the HTTP teardown only
		// has connections to collect: give idle ones a moment to close
		// cleanly, then force-close stragglers (speculative client
		// connections that never sent a request would otherwise hold
		// Shutdown until their header timeout).
		ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
		serr := s.httpSrv.Shutdown(ctx)
		cancel()
		_ = s.httpSrv.Close()
		if serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
			err = serr
		}
	}
	s.cfg.Events.Emitf(eventlog.TypeWireServer, eventlog.Info, "", "", "wire server stopped")
	return err
}

// releaseSession rolls back any open transaction and hands the session back.
func (s *Server) releaseSession(ps *pooledSession) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed {
		return
	}
	ps.closed = true
	if ps.sess.InTransaction() {
		_ = ps.sess.Rollback()
	}
	if s.cfg.CloseSession != nil {
		s.cfg.CloseSession(ps.sess)
	}
}

// reapLoop drops sessions idle past IdleTimeout, rolling back whatever
// transaction they left open — the server-side guard against clients that
// vanish holding locks.
func (s *Server) reapLoop() {
	defer close(s.reapDone)
	interval := s.cfg.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-ticker.C:
			cutoff := time.Now().Add(-s.cfg.IdleTimeout).UnixNano()
			var expired []*pooledSession
			var tokens []string
			s.mu.Lock()
			for tok, ps := range s.sessions {
				if ps.lastUsed.Load() < cutoff {
					expired = append(expired, ps)
					tokens = append(tokens, tok)
					delete(s.sessions, tok)
				}
			}
			s.mu.Unlock()
			for i, ps := range expired {
				s.releaseSession(ps)
				s.count("wire_sessions_reaped")
				s.cfg.Events.Emitf(eventlog.TypeSessionReaped, eventlog.Info, "", "",
					fmt.Sprintf("idle session %s (user %s) reaped after %s", tokens[i][:8], ps.user, s.cfg.IdleTimeout))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

// handleSessions opens a pooled session: POST /v1/sessions.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest, "use POST to open a session")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	// An empty body opens a default session: every field is optional.
	var req openSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	prio, ok := admission.ParseClass(req.Priority)
	if !ok {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("unknown priority %q (use interactive or batch)", req.Priority))
		return
	}
	user := req.User
	if user == "" {
		user = s.cfg.DefaultUser
	}
	tok := newToken()
	ps := &pooledSession{sess: s.cfg.NewSession(user), user: user, priority: prio}
	ps.lastUsed.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.sessions[tok] = ps
	s.mu.Unlock()
	s.count("wire_sessions_opened")
	writeJSON(w, http.StatusOK, openSessionResponse{Session: tok, User: user, Priority: prio.String()})
}

// handleSessionClose closes a pooled session: DELETE /v1/sessions/{token}.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		w.Header().Set("Allow", "DELETE")
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest, "use DELETE /v1/sessions/{token}")
		return
	}
	tok := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	s.mu.Lock()
	ps, ok := s.sessions[tok]
	delete(s.sessions, tok)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownSession, "unknown session token")
		return
	}
	s.releaseSession(ps)
	writeJSON(w, http.StatusOK, map[string]string{"closed": tok})
}

// handleStatement runs POST /v1/query (query=true; may stream) and
// POST /v1/exec: admission, session resolution, execution, response.
func (s *Server) handleStatement(w http.ResponseWriter, r *http.Request, query bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, CodeBadRequest, "use POST")
		return
	}
	s.count("wire_requests_total")
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "server is draining")
		return
	}
	var req statementRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, `missing "sql"`)
		return
	}

	// Resolve the session: pooled by token, or one-shot for this request.
	var ps *pooledSession
	if req.Session != "" {
		s.mu.Lock()
		ps = s.sessions[req.Session]
		s.mu.Unlock()
		if ps == nil {
			writeError(w, http.StatusNotFound, CodeUnknownSession, "unknown session token (expired or reaped?)")
			return
		}
	} else {
		user := req.User
		if user == "" {
			user = s.cfg.DefaultUser
		}
		ps = &pooledSession{sess: s.cfg.NewSession(user), user: user}
	}

	// Priority: per-request header overrides the session default.
	prio := ps.priority
	if h := r.Header.Get(PriorityHeader); h != "" {
		p, ok := admission.ParseClass(h)
		if !ok {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Sprintf("unknown %s %q (use interactive or batch)", PriorityHeader, h))
			return
		}
		prio = p
	}

	// Track the statement as in-flight before admission so Close's drain
	// covers queued work too.
	s.inflight.Add(1)
	s.nInfl.Add(1)
	defer func() { s.nInfl.Add(-1); s.inflight.Done() }()

	ticket, err := s.cfg.Admission.Acquire(r.Context(), prio)
	if err != nil {
		s.count("wire_errors_total")
		if errors.Is(err, admission.ErrQueueFull) || errors.Is(err, context.DeadlineExceeded) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, CodeQueueFull, err.Error())
		} else {
			writeError(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
		}
		return
	}
	defer ticket.Release()

	start := time.Now()
	ps.mu.Lock()
	if ps.closed {
		ps.mu.Unlock()
		writeError(w, http.StatusNotFound, CodeUnknownSession, "session closed while request was queued")
		return
	}
	if qw, ok := ps.sess.(QueueWaiter); ok && ticket.Queued > 0 {
		qw.NoteQueueWait(ticket.Queued)
	}
	res, execErr := ps.sess.Exec(req.SQL)
	ps.mu.Unlock()
	ps.lastUsed.Store(time.Now().UnixNano())
	elapsed := time.Since(start)
	s.observe("wire_request_seconds", elapsed)

	if execErr != nil {
		s.count("wire_errors_total")
		writeError(w, http.StatusBadRequest, CodeSQLError, execErr.Error())
		return
	}
	if res == nil {
		res = &Result{}
	}
	queuedMS := float64(ticket.Queued) / float64(time.Millisecond)
	elapsedMS := float64(elapsed) / float64(time.Millisecond)

	if query && req.Stream {
		s.streamResult(w, res, req.ChunkRows, queuedMS, elapsedMS)
		return
	}
	writeJSON(w, http.StatusOK, statementResponse{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
		Routed:       res.Routed,
		Message:      res.Message,
		QueuedMS:     queuedMS,
		ElapsedMS:    elapsedMS,
	})
}

// streamResult writes the NDJSON framing: columns, row chunks, done.
func (s *Server) streamResult(w http.ResponseWriter, res *Result, chunkRows int, queuedMS, elapsedMS float64) {
	if chunkRows <= 0 {
		chunkRows = s.cfg.ChunkRows
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	cols := res.Columns
	if cols == nil {
		cols = []string{}
	}
	_ = enc.Encode(Frame{Type: "columns", Columns: cols})
	flush()
	for off := 0; off < len(res.Rows); off += chunkRows {
		end := off + chunkRows
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		if err := enc.Encode(Frame{Type: "rows", Rows: res.Rows[off:end]}); err != nil {
			return // client went away; nothing to clean up
		}
		flush()
	}
	_ = enc.Encode(Frame{
		Type:         "done",
		RowsAffected: res.RowsAffected,
		Routed:       res.Routed,
		Message:      res.Message,
		QueuedMS:     queuedMS,
		ElapsedMS:    elapsedMS,
	})
	flush()
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorBody{Error: msg, Code: code})
}

// newToken mints an unguessable session token.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

func (s *Server) count(name string) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Counter(name).Inc()
	}
}

func (s *Server) observe(name string, d time.Duration) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Histogram(name).Observe(d)
	}
}
