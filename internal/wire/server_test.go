package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idaax/internal/admission"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
)

// stubSession is a scripted engine session: it answers every statement from a
// function, tracks a fake transaction flag, and records what ran.
type stubSession struct {
	mu     sync.Mutex
	user   string
	stmts  []string
	inTxn  bool
	rolled int
	exec   func(sql string) (*Result, error)
	block  chan struct{} // when set, Exec waits here first
}

func (s *stubSession) Exec(sql string) (*Result, error) {
	s.mu.Lock()
	block := s.block
	s.stmts = append(s.stmts, sql)
	s.mu.Unlock()
	if block != nil {
		<-block
	}
	up := strings.ToUpper(strings.TrimSpace(sql))
	switch {
	case up == "BEGIN":
		s.mu.Lock()
		s.inTxn = true
		s.mu.Unlock()
		return &Result{Message: "transaction started"}, nil
	case up == "COMMIT":
		s.mu.Lock()
		s.inTxn = false
		s.mu.Unlock()
		return &Result{Message: "committed"}, nil
	}
	if s.exec != nil {
		return s.exec(sql)
	}
	return &Result{Columns: []string{"V"}, Rows: [][]string{{"1"}}, Routed: "STUB"}, nil
}

func (s *stubSession) InTransaction() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inTxn
}

func (s *stubSession) Rollback() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inTxn = false
	s.rolled++
	return nil
}

// testHarness is one wire server over stub sessions, listening on a loopback
// port (the protocol is exercised over a real socket, like production).
type testHarness struct {
	srv      *Server
	client   *Client
	mu       sync.Mutex
	sessions []*stubSession
}

func newHarness(t *testing.T, mut func(*Config)) *testHarness {
	t.Helper()
	h := &testHarness{}
	cfg := Config{
		NewSession: func(user string) Session {
			ss := &stubSession{user: user}
			h.mu.Lock()
			h.sessions = append(h.sessions, ss)
			h.mu.Unlock()
			return ss
		},
		IdleTimeout: -1, // tests opt in to reaping explicitly
	}
	if mut != nil {
		mut(&cfg)
	}
	h.srv = NewServer(cfg)
	if err := h.srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.srv.Close() })
	h.client = NewClient(h.srv.Addr(), nil)
	return h
}

func TestQueryRoundTrip(t *testing.T) {
	h := newHarness(t, nil)
	res, err := h.client.Query("SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "1" || res.Routed != "STUB" {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.ElapsedMS < 0 {
		t.Fatalf("elapsed_ms = %v", res.ElapsedMS)
	}
}

func TestExecRoundTrip(t *testing.T) {
	h := newHarness(t, nil)
	h.mu.Lock()
	h.mu.Unlock()
	res, err := h.client.Exec("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed != "STUB" {
		t.Fatalf("unexpected result: %+v", res)
	}
}

// TestStreamingFraming proves the NDJSON framing: columns, bounded row
// chunks, one done frame.
func TestStreamingFraming(t *testing.T) {
	rows := make([][]string, 25)
	for i := range rows {
		rows[i] = []string{fmt.Sprint(i)}
	}
	h := newHarness(t, func(c *Config) {
		base := c.NewSession
		c.NewSession = func(user string) Session {
			ss := base(user).(*stubSession)
			ss.exec = func(string) (*Result, error) {
				return &Result{Columns: []string{"N"}, Rows: rows, Routed: "STUB"}, nil
			}
			return ss
		}
	})
	var chunks [][][]string
	res, err := h.client.QueryStream("SELECT n FROM t", 10, func(rows [][]string) error {
		chunks = append(chunks, rows)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "N" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(chunks) != 3 || len(chunks[0]) != 10 || len(chunks[2]) != 5 {
		t.Fatalf("chunk shape wrong: %d chunks", len(chunks))
	}
	var total int
	for _, c := range chunks {
		total += len(c)
	}
	if total != 25 {
		t.Fatalf("streamed %d rows, want 25", total)
	}
}

// TestSessionTransactionAcrossRequests proves a pooled session keeps its
// transaction open between HTTP requests and a later request commits it.
func TestSessionTransactionAcrossRequests(t *testing.T) {
	h := newHarness(t, nil)
	if err := h.client.OpenSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	ss := h.sessions[0]
	h.mu.Unlock()
	if !ss.InTransaction() {
		t.Fatal("transaction not open after BEGIN")
	}
	if _, err := h.client.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if ss.InTransaction() {
		t.Fatal("transaction still open after COMMIT")
	}
	if err := h.client.CloseSession(); err != nil {
		t.Fatal(err)
	}
	if got := h.srv.SessionCount(); got != 0 {
		t.Fatalf("session count = %d after close", got)
	}
}

func TestUnknownSession(t *testing.T) {
	h := newHarness(t, nil)
	h.client.session = "deadbeef"
	_, err := h.client.Query("SELECT 1")
	se, ok := err.(*ServerError)
	if !ok || se.Status != http.StatusNotFound || se.Code != CodeUnknownSession {
		t.Fatalf("err = %v, want 404 unknown_session", err)
	}
}

func TestMethodAndBodyValidation(t *testing.T) {
	h := newHarness(t, nil)
	base := "http://" + h.srv.Addr()
	resp, err := http.Get(base + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader(`{"sql":""}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json = %d, want 400", resp.StatusCode)
	}
	// Unknown priority header is rejected, not silently defaulted.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/query", strings.NewReader(`{"sql":"SELECT 1"}`))
	req.Header.Set(PriorityHeader, "bulk")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority = %d, want 400", resp.StatusCode)
	}
}

// TestAdmissionShed429 proves a full admission queue surfaces as HTTP 429
// with the queue_full code and a Retry-After header.
func TestAdmissionShed429(t *testing.T) {
	block := make(chan struct{})
	h := newHarness(t, func(c *Config) {
		c.Admission = admission.New(admission.Config{Slots: 1, MaxQueue: 1})
		base := c.NewSession
		c.NewSession = func(user string) Session {
			ss := base(user).(*stubSession)
			ss.block = block
			return ss
		}
	})
	// Occupy the slot...
	done := make(chan error, 1)
	go func() {
		_, err := h.client.Query("SELECT slow")
		done <- err
	}()
	waitFor(t, func() bool { return h.srv.cfg.Admission.Inflight() == 1 })
	// ...queue one...
	queued := make(chan error, 1)
	go func() {
		_, err := h.client.Query("SELECT queued")
		queued <- err
	}()
	waitFor(t, func() bool { return h.srv.cfg.Admission.Queued(admission.Interactive) == 1 })
	// ...and the third is shed.
	_, err := h.client.Query("SELECT shed")
	if !IsShed(err) {
		t.Fatalf("err = %v, want 429 shed", err)
	}
	se := err.(*ServerError)
	if se.Code != CodeQueueFull {
		t.Fatalf("code = %q, want %q", se.Code, CodeQueueFull)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
}

// TestPriorityHeaderClassing proves the header routes requests to the right
// admission class.
func TestPriorityHeaderClassing(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHarness(t, func(c *Config) {
		c.Admission = admission.New(admission.Config{Slots: 2, MaxQueue: 4, Obs: reg})
	})
	h.client.SetPriority("batch")
	if _, err := h.client.Query("SELECT 1"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["admission_admitted_batch"] != 1 {
		t.Fatalf("batch admitted = %d, want 1", snap.Counters["admission_admitted_batch"])
	}
}

// TestIdleReap proves the pool rolls back and drops sessions idle past the
// timeout, and a later request on the reaped token gets 404.
func TestIdleReap(t *testing.T) {
	events := eventlog.New(16)
	h := newHarness(t, func(c *Config) {
		c.IdleTimeout = 40 * time.Millisecond
		c.Events = events
	})
	if err := h.client.OpenSession(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.client.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	ss := h.sessions[0]
	h.mu.Unlock()
	waitFor(t, func() bool { return h.srv.SessionCount() == 0 })
	ss.mu.Lock()
	rolled := ss.rolled
	ss.mu.Unlock()
	if rolled != 1 {
		t.Fatalf("reap rolled back %d times, want 1", rolled)
	}
	_, err := h.client.Query("SELECT 1")
	se, ok := err.(*ServerError)
	if !ok || se.Status != http.StatusNotFound {
		t.Fatalf("post-reap err = %v, want 404", err)
	}
	if evs := events.Recent(0, eventlog.Filter{Type: eventlog.TypeSessionReaped}); len(evs) != 1 {
		t.Fatalf("reap events = %d, want 1", len(evs))
	}
}

// TestDrain proves Close waits for in-flight statements, rejects new ones
// with 503, and rolls back pooled sessions left in a transaction.
func TestDrain(t *testing.T) {
	block := make(chan struct{})
	h := newHarness(t, func(c *Config) {
		c.DrainTimeout = 5 * time.Second
		base := c.NewSession
		c.NewSession = func(user string) Session {
			ss := base(user).(*stubSession)
			ss.block = block
			return ss
		}
	})
	// A pooled session with an open transaction (BEGIN blocks on `block`, so
	// open it via the stub directly).
	if err := h.client.OpenSession(); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	h.sessions[0].inTxn = true
	h.mu.Unlock()

	inflight := make(chan error, 1)
	go func() {
		_, err := h.client.Query("SELECT inflight")
		inflight <- err
	}()
	waitFor(t, func() bool { return h.srv.nInfl.Load() >= 1 })

	closed := make(chan error, 1)
	go func() { closed <- h.srv.Close() }()
	waitFor(t, func() bool { return h.srv.Draining() })

	// New work is rejected while draining.
	_, err := h.client.Query("SELECT rejected")
	se, ok := err.(*ServerError)
	if !ok || se.Status != http.StatusServiceUnavailable || se.Code != CodeDraining {
		t.Fatalf("err during drain = %v, want 503 draining", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a statement was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(block) // let the in-flight statement finish
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight statement failed: %v", err)
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ss := range h.sessions {
		if ss.InTransaction() {
			t.Fatal("pooled session left in transaction after drain")
		}
	}
}

// TestOpsHandlerMount proves non-/v1 paths fall through to the mounted ops
// handler.
func TestOpsHandlerMount(t *testing.T) {
	h := newHarness(t, func(c *Config) {
		c.OpsHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("ops:" + r.URL.Path))
		})
	})
	resp, err := http.Get("http://" + h.srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [64]byte
	n, _ := resp.Body.Read(buf[:])
	if got := string(buf[:n]); got != "ops:/metrics" {
		t.Fatalf("ops mount served %q", got)
	}
}

// TestQueueWaitForwarded proves the server forwards admission queue time to
// sessions that accept it.
func TestQueueWaitForwarded(t *testing.T) {
	var noted atomic.Int64
	block := make(chan struct{})
	h := newHarness(t, func(c *Config) {
		c.Admission = admission.New(admission.Config{Slots: 1, MaxQueue: 4})
		base := c.NewSession
		c.NewSession = func(user string) Session {
			ss := base(user).(*stubSession)
			ss.block = block
			return &queueWaitStub{stubSession: ss, noted: &noted}
		}
	})
	first := make(chan error, 1)
	go func() {
		_, err := h.client.Query("SELECT hold")
		first <- err
	}()
	waitFor(t, func() bool { return h.srv.cfg.Admission.Inflight() == 1 })
	second := make(chan error, 1)
	go func() {
		_, err := h.client.Query("SELECT waited")
		second <- err
	}()
	waitFor(t, func() bool { return h.srv.cfg.Admission.Queued(admission.Interactive) == 1 })
	time.Sleep(10 * time.Millisecond) // accumulate measurable queue time
	close(block)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; err != nil {
		t.Fatal(err)
	}
	if noted.Load() <= 0 {
		t.Fatal("queue wait was not forwarded to the session")
	}
}

type queueWaitStub struct {
	*stubSession
	noted *atomic.Int64
}

func (q *queueWaitStub) NoteQueueWait(d time.Duration) { q.noted.Add(int64(d)) }

// TestClientJSONShapes pins the exact JSON field names of the protocol (the
// contract documented in docs/WIRE_PROTOCOL.md).
func TestClientJSONShapes(t *testing.T) {
	h := newHarness(t, nil)
	resp, err := http.Post("http://"+h.srv.Addr()+"/v1/query", "application/json",
		strings.NewReader(`{"sql":"SELECT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"columns", "rows", "routed", "queued_ms", "elapsed_ms"} {
		if _, ok := body[key]; !ok {
			t.Errorf("response missing %q field: %v", key, body)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for {
		if cond() {
			return
		}
		select {
		case <-ctx.Done():
			t.Fatal("condition never became true")
		case <-time.After(time.Millisecond):
		}
	}
}
