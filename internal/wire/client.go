package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// ServerError is a non-2xx response from the wire server, carrying the HTTP
// status and the machine-readable code (CodeQueueFull for admission sheds).
type ServerError struct {
	Status  int
	Code    string
	Message string
}

// Error renders the server error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("wire: server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// IsShed reports whether the error is an admission shed (HTTP 429) — the
// client should back off and retry.
func IsShed(err error) bool {
	se, ok := err.(*ServerError)
	return ok && se.Status == http.StatusTooManyRequests
}

// ClientResult is a statement outcome as seen by a client, including the
// serving-layer timings the server reports.
type ClientResult struct {
	Columns      []string
	Rows         [][]string
	RowsAffected int
	Routed       string
	Message      string
	// QueuedMS is how long the statement waited for an admission slot.
	QueuedMS float64
	// ElapsedMS is the server-side execution time once admitted.
	ElapsedMS float64
}

// Client speaks the /v1 wire protocol. A zero-session client runs every
// statement on a server-side one-shot session; OpenSession pins a pooled
// server session so explicit transactions span requests. Client is safe for
// concurrent use only without a pinned session (a pooled session serialises
// server-side anyway, but shares one token).
type Client struct {
	base     string
	http     *http.Client
	user     string
	priority string
	session  string
}

// NewClient builds a client for addr ("host:port" or a full http:// URL).
// The optional httpClient lets callers share a tuned Transport (the 1k-client
// bench does); nil uses a private default.
func NewClient(addr string, httpClient *http.Client) *Client {
	base := addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{base: base, http: httpClient}
}

// SetPriority sets the priority class sent with every request ("interactive"
// or "batch"; "" = server default).
func (c *Client) SetPriority(p string) { c.priority = p }

// SetUser sets the authorization id for one-shot statements and OpenSession.
func (c *Client) SetUser(u string) { c.user = u }

// Session returns the pinned session token ("" when none).
func (c *Client) Session() string { return c.session }

// OpenSession opens a pooled server session; subsequent Exec/Query calls run
// on it, so BEGIN/COMMIT span requests and the priority class sticks.
func (c *Client) OpenSession() error {
	body, err := c.post("/v1/sessions", openSessionRequest{User: c.user, Priority: c.priority}, nil)
	if err != nil {
		return err
	}
	var resp openSessionResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("wire: bad session response: %w", err)
	}
	c.session = resp.Session
	return nil
}

// CloseSession releases the pinned session (no-op without one).
func (c *Client) CloseSession() error {
	if c.session == "" {
		return nil
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/sessions/"+c.session, nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.session = ""
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	return nil
}

// Exec runs one statement through POST /v1/exec.
func (c *Client) Exec(sql string) (*ClientResult, error) {
	return c.statement("/v1/exec", sql)
}

// Query runs one statement through POST /v1/query (buffered response).
func (c *Client) Query(sql string) (*ClientResult, error) {
	return c.statement("/v1/query", sql)
}

// QueryStream runs one statement with the NDJSON framing, invoking fn for
// every row chunk as it arrives. The returned result carries the columns and
// the done-frame fields but no rows.
func (c *Client) QueryStream(sql string, chunkRows int, fn func(rows [][]string) error) (*ClientResult, error) {
	reqBody := statementRequest{SQL: sql, Session: c.session, User: c.user, Stream: true, ChunkRows: chunkRows}
	raw, _ := json.Marshal(reqBody)
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/query", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.priority != "" {
		req.Header.Set(PriorityHeader, c.priority)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	out := &ClientResult{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var f Frame
		if err := json.Unmarshal(line, &f); err != nil {
			return nil, fmt.Errorf("wire: bad frame: %w", err)
		}
		switch f.Type {
		case "columns":
			out.Columns = f.Columns
		case "rows":
			if fn != nil {
				if err := fn(f.Rows); err != nil {
					return nil, err
				}
			}
		case "done":
			out.RowsAffected = f.RowsAffected
			out.Routed = f.Routed
			out.Message = f.Message
			out.QueuedMS = f.QueuedMS
			out.ElapsedMS = f.ElapsedMS
			return out, nil
		case "error":
			return nil, fmt.Errorf("wire: %s", f.Error)
		default:
			return nil, fmt.Errorf("wire: unknown frame type %q", f.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("wire: stream ended without a done frame")
}

// Health fetches the mounted ops /healthz report (any JSON shape).
func (c *Client) Health() (json.RawMessage, int, error) {
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, resp.StatusCode, err
	}
	return buf.Bytes(), resp.StatusCode, nil
}

// Events fetches the n most recent journal events from the mounted ops
// /events endpoint.
func (c *Client) Events(n int) (json.RawMessage, error) {
	resp, err := c.http.Get(fmt.Sprintf("%s/events?n=%d", c.base, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// statement posts a statementRequest and decodes the buffered response.
func (c *Client) statement(path, sql string) (*ClientResult, error) {
	body, err := c.post(path, statementRequest{SQL: sql, Session: c.session, User: c.user}, nil)
	if err != nil {
		return nil, err
	}
	var resp statementResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("wire: bad response: %w", err)
	}
	return &ClientResult{
		Columns:      resp.Columns,
		Rows:         resp.Rows,
		RowsAffected: resp.RowsAffected,
		Routed:       resp.Routed,
		Message:      resp.Message,
		QueuedMS:     resp.QueuedMS,
		ElapsedMS:    resp.ElapsedMS,
	}, nil
}

// post sends a JSON body and returns the raw 200 response body.
func (c *Client) post(path string, v any, hdr http.Header) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.priority != "" {
		req.Header.Set(PriorityHeader, c.priority)
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeError turns a non-2xx response into a *ServerError.
func decodeError(resp *http.Response) error {
	var eb errorBody
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if err := json.Unmarshal(buf.Bytes(), &eb); err != nil || eb.Error == "" {
		eb.Error = strings.TrimSpace(buf.String())
		if eb.Error == "" {
			eb.Error = resp.Status
		}
	}
	return &ServerError{Status: resp.StatusCode, Code: eb.Code, Message: eb.Error}
}
