package colstore

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"idaax/internal/types"
)

// buildMixedTable creates a table spanning several zone blocks with every
// column kind, NULLs sprinkled in, and some rows deleted.
func buildMixedTable(t *testing.T, n int) (*Table, Visibility) {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindFloat},
		types.Column{Name: "S", Kind: types.KindString},
		types.Column{Name: "B", Kind: types.KindBool},
		types.Column{Name: "TS", Kind: types.KindTimestamp},
	)
	tab := NewTable("MIX", schema, "")
	rng := rand.New(rand.NewSource(7))
	rows := make([]types.Row, n)
	for i := range rows {
		row := types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(float64(rng.Intn(1000)) / 4),
			types.NewString(fmt.Sprintf("s-%03d", rng.Intn(500))),
			types.NewBool(i%2 == 0),
			types.NewTimestampMicros(int64(1700000000000000 + i)),
		}
		if i%11 == 0 {
			row[1] = types.Null()
		}
		if i%13 == 0 {
			row[2] = types.Null()
		}
		rows[i] = row
	}
	if _, err := tab.Insert(1, rows); err != nil {
		t.Fatal(err)
	}
	// Delete a scattered subset under a different transaction.
	for i := 0; i < n; i += 17 {
		tab.MarkDeleted(i, 2)
	}
	// Committed-data snapshot: txn 1 committed, txn 2's deletes visible too.
	vis := func(created, deleted int64) bool { return created == 1 && deleted == 0 }
	return tab, vis
}

func rowsEqual(t *testing.T, want, got []types.Row, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows vs %d rows", label, len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: row %d arity mismatch", label, i)
		}
		for j := range want[i] {
			if want[i][j].String() != got[i][j].String() {
				t.Fatalf("%s: row %d col %d: %s vs %s", label, i, j, want[i][j], got[i][j])
			}
		}
	}
}

// TestScanMaterializeMatchesParallelScan pins the batch scan against the row
// scan: same rows, same order, same pruning — across predicate shapes,
// parallelism degrees and NULL/deleted-row patterns.
func TestScanMaterializeMatchesParallelScan(t *testing.T) {
	tab, vis := buildMixedTable(t, 3*ZoneBlockSize+500)
	predSets := [][]SimplePredicate{
		nil,
		{NewSimplePredicate(0, CmpGt, types.NewInt(5000))},
		{NewSimplePredicate(1, CmpLe, types.NewFloat(120.5))},
		{NewSimplePredicate(0, CmpGe, types.NewInt(100)), NewSimplePredicate(0, CmpLt, types.NewInt(9000)), NewSimplePredicate(1, CmpNe, types.NewFloat(10))},
		{NewSimplePredicate(2, CmpEq, types.NewString("s-100"))},
		{NewSimplePredicate(2, CmpGt, types.NewString("s-400"))},
		{NewSimplePredicate(3, CmpEq, types.NewBool(true))},
		{NewSimplePredicate(4, CmpLt, types.NewTimestampMicros(1700000000004000))},
		// Odd kind combinations: types.Compare rejects them, so the predicate
		// matches no row — on both scan implementations.
		{NewSimplePredicate(2, CmpEq, types.NewInt(7))},      // string col vs int lit
		{NewSimplePredicate(3, CmpEq, types.NewInt(1))},      // bool col vs int lit
		{NewSimplePredicate(0, CmpGt, types.NewBool(true))},  // int col vs bool lit
		{NewSimplePredicate(1, CmpEq, types.NewBool(false))}, // float col vs bool lit
		{NewSimplePredicate(3, CmpEq, types.NewBool(true))},  // bool col vs bool lit (matches)
		// Numeric column vs numeric string literal (isNum stays false) takes
		// the generic fallback on both paths.
		{NewSimplePredicate(0, CmpLt, types.NewString("200"))},
	}
	for pi, preds := range predSets {
		for _, slices := range []int{1, 3, 8} {
			want, wantStats := tab.ParallelScan(slices, vis, preds)
			got, gotStats := tab.ScanMaterialize(slices, vis, preds)
			label := fmt.Sprintf("preds[%d] slices=%d", pi, slices)
			rowsEqual(t, want, got, label)
			if wantStats.BlocksPruned != gotStats.BlocksPruned {
				t.Fatalf("%s: pruned %d blocks vs %d", label, wantStats.BlocksPruned, gotStats.BlocksPruned)
			}
			if gotStats.RowsMaterialized != len(got) {
				t.Fatalf("%s: RowsMaterialized=%d for %d rows", label, gotStats.RowsMaterialized, len(got))
			}
		}
	}
}

// TestStringZoneMapPruning pins satellite 6: string min/max zone entries prune
// blocks for string predicates, and pruning is never incorrect — every scan
// returns exactly the rows a full scan plus row filter returns.
func TestStringZoneMapPruning(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "TAG", Kind: types.KindString},
	)
	tab := NewTable("CLUSTERED", schema, "")
	// Clustered string values: block k holds tags "t-k-*" (lexicographically
	// grouped because k is zero-padded), so equality predicates can skip
	// whole blocks.
	n := 4 * ZoneBlockSize
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		block := i / ZoneBlockSize
		tag := types.NewString(fmt.Sprintf("t-%02d-%04d", block, i%977))
		if i%53 == 0 {
			tag = types.Null()
		}
		rows = append(rows, types.Row{types.NewInt(int64(i)), tag})
	}
	if _, err := tab.Insert(1, rows); err != nil {
		t.Fatal(err)
	}
	vis := func(created, deleted int64) bool { return deleted == 0 }

	naive := func(pred SimplePredicate) []types.Row {
		var out []types.Row
		all, _ := tab.ParallelScan(1, vis, nil)
		for _, row := range all {
			v := row[pred.ColIdx]
			if v.IsNull() {
				continue
			}
			c, err := types.Compare(v, pred.Value)
			if err != nil {
				continue
			}
			if cmpSatisfies(c, pred.Op) {
				out = append(out, row)
			}
		}
		return out
	}

	preds := []SimplePredicate{
		NewSimplePredicate(1, CmpEq, types.NewString("t-02-0500")),
		NewSimplePredicate(1, CmpLt, types.NewString("t-01")),
		NewSimplePredicate(1, CmpGe, types.NewString("t-03")),
		NewSimplePredicate(1, CmpGt, types.NewString("t-99")), // matches nothing
		NewSimplePredicate(1, CmpNe, types.NewString("t-00-0000")),
	}
	prunedSomewhere := false
	for pi, pred := range preds {
		want := naive(pred)
		for _, scan := range []string{"row", "batch"} {
			var got []types.Row
			var stats ScanStats
			if scan == "row" {
				got, stats = tab.ParallelScan(2, vis, []SimplePredicate{pred})
			} else {
				got, stats = tab.ScanMaterialize(2, vis, []SimplePredicate{pred})
			}
			rowsEqual(t, want, got, fmt.Sprintf("string pred[%d] %s scan", pi, scan))
			if stats.BlocksPruned > 0 {
				prunedSomewhere = true
			}
		}
	}
	if !prunedSomewhere {
		t.Fatal("string zone maps never pruned a block on clustered data")
	}

	// An all-NULL string block is prunable outright (NULL never matches).
	nullTab := NewTable("NULLS", schema, "")
	nullRows := make([]types.Row, ZoneBlockSize)
	for i := range nullRows {
		nullRows[i] = types.Row{types.NewInt(int64(i)), types.Null()}
	}
	if _, err := nullTab.Insert(1, nullRows); err != nil {
		t.Fatal(err)
	}
	got, stats := nullTab.ParallelScan(1, vis, []SimplePredicate{NewSimplePredicate(1, CmpEq, types.NewString("x"))})
	if len(got) != 0 || stats.BlocksPruned != 1 {
		t.Fatalf("all-NULL string block: %d rows, %d pruned", len(got), stats.BlocksPruned)
	}
}

// TestScanBatchesSelectionSemantics pins batch shape invariants: selections
// are ascending in-range offsets and Materialize reconstructs exact rows.
func TestScanBatchesSelectionSemantics(t *testing.T) {
	tab, vis := buildMixedTable(t, ZoneBlockSize+123)
	preds := []SimplePredicate{NewSimplePredicate(0, CmpGe, types.NewInt(10))}
	var seen atomic.Int64
	_, err := tab.ScanBatches(4, vis, preds, func(worker int, b *Batch) error {
		if len(b.Sel) == 0 {
			t.Error("empty batch delivered")
		}
		last := -1
		for _, off := range b.Sel {
			if off <= last || off >= b.N {
				t.Errorf("selection offset %d out of order or range (N=%d)", off, b.N)
			}
			last = off
			id := b.Cols[0].Value(off)
			if id.Int != int64(b.Base+off) {
				t.Errorf("vector value mismatch at base %d off %d: %s", b.Base, off, id)
			}
			seen.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen.Load() == 0 {
		t.Fatal("no rows delivered")
	}
}
