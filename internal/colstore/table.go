package colstore

import (
	"fmt"
	"sync"

	"idaax/internal/obs"
	"idaax/internal/stats"
	"idaax/internal/types"
)

// Visibility decides whether a row version (created by createTxn, deleted by
// deleteTxn, 0 when not deleted) is visible to the caller's snapshot. The
// accelerator's transaction registry provides implementations.
type Visibility func(createdTxn, deletedTxn int64) bool

// CompareOp is the comparison operator of a pushed-down simple predicate.
type CompareOp int

const (
	CmpEq CompareOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// SimplePredicate is a "column <op> literal" predicate that the accelerator
// pushes into the columnar scan so that zone maps can prune whole blocks.
type SimplePredicate struct {
	ColIdx  int
	Op      CompareOp
	Value   types.Value
	numeric float64
	isNum   bool

	// Dictionary resolution (filled by resolveDictPredicates under the scan's
	// read lock when the column is dictionary-encoded): dictMatch[code]
	// reports whether dict[code] satisfies the predicate, dictEq is the
	// literal's own code (-1 when absent from the dictionary).
	dictMatch    []bool
	dictEq       int32
	dictResolved bool
}

// NewSimplePredicate builds a pushdown predicate.
func NewSimplePredicate(colIdx int, op CompareOp, v types.Value) SimplePredicate {
	p := SimplePredicate{ColIdx: colIdx, Op: op, Value: v}
	if f, ok := v.AsFloat(); ok && v.Kind != types.KindString {
		p.numeric = f
		p.isNum = true
	}
	return p
}

// blockMayMatch consults the zone map of the predicate's column: the numeric
// min/max for numeric columns, the lexicographic min/max for string columns
// compared against string literals. Any combination without a zone map (e.g. a
// string column compared to a numeric literal) conservatively matches, so
// pruning can only ever skip blocks that provably hold no matching row.
func (p SimplePredicate) blockMayMatch(col *Column, block int) bool {
	if p.Value.Kind == types.KindString && col.Kind == types.KindString {
		if p.dictResolved && col.DictEncoded() {
			// Dictionary code ranges: codes are assigned in first-appearance
			// order, so they prune equality exactly and detect single-code
			// blocks; ordered operators fall through to the string zone map.
			minC, maxC, ok := col.BlockCodeRange(block)
			if !ok {
				return false
			}
			switch p.Op {
			case CmpEq:
				return p.dictEq >= minC && p.dictEq <= maxC
			case CmpNe:
				if minC == maxC && minC == p.dictEq {
					return false
				}
			}
		}
		min, max, ok := col.BlockStringRange(block)
		if !ok {
			// Block contains only NULLs; NULL never satisfies a comparison.
			return false
		}
		s := p.Value.Str
		switch p.Op {
		case CmpEq:
			return s >= min && s <= max
		case CmpLt:
			return min < s
		case CmpLe:
			return min <= s
		case CmpGt:
			return max > s
		case CmpGe:
			return max >= s
		default:
			return true
		}
	}
	if !p.isNum || !col.IsNumeric() {
		return true
	}
	min, max, ok := col.BlockRange(block)
	if !ok {
		// Block contains only NULLs; NULL never satisfies a comparison.
		return false
	}
	switch p.Op {
	case CmpEq:
		return p.numeric >= min && p.numeric <= max
	case CmpLt:
		return min < p.numeric
	case CmpLe:
		return min <= p.numeric
	case CmpGt:
		return max > p.numeric
	case CmpGe:
		return max >= p.numeric
	default:
		return true
	}
}

// rowMatches evaluates the predicate for one row.
func (p SimplePredicate) rowMatches(col *Column, i int) bool {
	if col.IsNull(i) {
		return false
	}
	v := col.Value(i)
	c, err := types.Compare(v, p.Value)
	if err != nil {
		return false
	}
	switch p.Op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// Table is a multi-versioned columnar table.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  types.Schema
	distKey string

	cols    []*Column
	created []int64
	deleted []int64
	srcIDs  []int64       // originating DB2 row id for replicated rows, -1 otherwise
	bySrc   map[int64]int // live version index per source row id

	// stats accumulates planner statistics incrementally under mu; ANALYZE
	// rebuilds them exactly (see Analyze).
	stats *stats.Collector

	// opSeq numbers journaled mutations; journal (when set) receives each
	// mutation under mu. See durable.go.
	opSeq   int64
	journal Journal
}

// NewTable creates an empty columnar table.
func NewTable(name string, schema types.Schema, distKey string) *Table {
	cols := make([]*Column, schema.Len())
	for i, c := range schema.Columns {
		cols[i] = NewColumn(c.Kind)
	}
	return &Table{
		name:    types.NormalizeName(name),
		schema:  schema,
		distKey: types.NormalizeName(distKey),
		cols:    cols,
		bySrc:   make(map[int64]int),
		stats:   stats.NewCollector(schema),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() types.Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema
}

// DistKey returns the distribution column ("" = round robin).
func (t *Table) DistKey() string { return t.distKey }

// VersionCount returns the total number of row versions (including deleted).
func (t *Table) VersionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.created)
}

// ApproxBytes estimates the table's memory footprint.
func (t *Table) ApproxBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b int64
	for _, c := range t.cols {
		b += c.ApproxBytes()
	}
	b += int64(len(t.created)+len(t.deleted)+len(t.srcIDs)) * 8
	return b
}

// Resources reports the table's storage footprint in per-column detail:
// bytes, row-block counts and zone-map slots, for the ops plane's resource
// accounting. Rows counts row versions (deleted-but-unswept included), so the
// number also surfaces version-sweep debt.
func (t *Table) Resources() obs.TableResources {
	t.mu.RLock()
	defer t.mu.RUnlock()
	res := obs.TableResources{Table: t.name, Rows: int64(len(t.created))}
	for i, c := range t.cols {
		cr := obs.ColumnResources{
			Name:           t.schema.Columns[i].Name,
			Kind:           c.Kind.String(),
			Bytes:          c.ApproxBytes(),
			Blocks:         c.Blocks(),
			ZoneMapEntries: c.ZoneMapEntries(),
		}
		res.Bytes += cr.Bytes
		res.ZoneMapEntries += cr.ZoneMapEntries
		if cr.Blocks > res.Blocks {
			res.Blocks = cr.Blocks
		}
		res.Columns = append(res.Columns, cr)
	}
	// Version metadata (created/deleted txn ids, source row ids).
	res.Bytes += int64(len(t.created)+len(t.deleted)+len(t.srcIDs)) * 8
	return res
}

// Insert appends new row versions created by txnID. Rows are validated and
// coerced against the schema.
func (t *Table) Insert(txnID int64, rows []types.Row) (int, error) {
	return t.insert(txnID, rows, nil)
}

// InsertWithSource appends rows that mirror DB2 rows (replication); srcIDs
// aligns with rows and enables later UpdateBySource/DeleteBySource calls.
func (t *Table) InsertWithSource(txnID int64, rows []types.Row, srcIDs []int64) (int, error) {
	if len(srcIDs) != len(rows) {
		return 0, fmt.Errorf("colstore: %d source ids for %d rows", len(srcIDs), len(rows))
	}
	return t.insert(txnID, rows, srcIDs)
}

func (t *Table) insert(txnID int64, rows []types.Row, srcIDs []int64) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	base := len(t.created)
	var appended []types.Row
	var appendedSrc []int64
	journalAppended := func() {
		if len(appended) > 0 {
			t.logLocked(TableOpInsert, base, appended, appendedSrc, nil, txnID)
		}
	}
	count := 0
	for ri, row := range rows {
		validated, err := types.ValidateRow(t.schema, row)
		if err != nil {
			journalAppended()
			return count, err
		}
		for ci, col := range t.cols {
			col.Append(validated[ci])
		}
		t.stats.ObserveInsert(validated)
		idx := len(t.created)
		t.created = append(t.created, txnID)
		t.deleted = append(t.deleted, 0)
		// A negative source id means "no DB2 source row" (bulk imports mix
		// replicated and native rows); only real ids join the bySrc index.
		src := int64(-1)
		if srcIDs != nil {
			src = srcIDs[ri]
			if src >= 0 {
				t.bySrc[src] = idx
			}
		}
		t.srcIDs = append(t.srcIDs, src)
		appended = append(appended, validated)
		appendedSrc = append(appendedSrc, src)
		count++
	}
	journalAppended()
	return count, nil
}

// ReadRow materialises the idx-th row version.
func (t *Table) ReadRow(idx int) types.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.readRowLocked(idx)
}

func (t *Table) readRowLocked(idx int) types.Row {
	row := make(types.Row, len(t.cols))
	for ci, col := range t.cols {
		row[ci] = col.Value(idx)
	}
	return row
}

// VisibleIndices returns the version indices visible under vis.
func (t *Table) VisibleIndices(vis Visibility) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for i := range t.created {
		if vis(t.created[i], t.deleted[i]) {
			out = append(out, i)
		}
	}
	return out
}

// VisibleRowCount counts rows visible under vis.
func (t *Table) VisibleRowCount(vis Visibility) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for i := range t.created {
		if vis(t.created[i], t.deleted[i]) {
			n++
		}
	}
	return n
}

// MarkDeleted marks a row version deleted by txnID. It reports whether the
// version was live before the call.
func (t *Table) MarkDeleted(idx int, txnID int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.deleted) || t.deleted[idx] != 0 {
		return false
	}
	t.deleted[idx] = txnID
	t.stats.ObserveDelete()
	if src := t.srcIDs[idx]; src >= 0 {
		delete(t.bySrc, src)
	}
	t.logLocked(TableOpMarks, 0, nil, nil, []int64{int64(idx)}, txnID)
	return true
}

// UndoDelete clears a deletion marker set by txnID (rollback support).
func (t *Table) UndoDelete(idx int, txnID int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx >= 0 && idx < len(t.deleted) && t.deleted[idx] == txnID {
		t.deleted[idx] = 0
		t.stats.ObserveUndelete()
		if src := t.srcIDs[idx]; src >= 0 {
			t.bySrc[src] = idx
		}
		t.logLocked(TableOpUnmarks, 0, nil, nil, []int64{int64(idx)}, txnID)
	}
}

// UndoDeletesBy clears every deletion marker set by txnID and returns how many
// rows were resurrected. Accelerator.AbortTxn calls it so that a rolled-back
// DELETE/UPDATE leaves its victim rows deletable again — without the undo the
// marker would keep later transactions (and the shard rebalancer) from ever
// deleting those rows, even though reads correctly ignore aborted deleters.
func (t *Table) UndoDeletesBy(txnID int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	var idxs []int64
	for i := range t.deleted {
		if t.deleted[i] == txnID {
			t.deleted[i] = 0
			t.stats.ObserveUndelete()
			if src := t.srcIDs[i]; src >= 0 {
				t.bySrc[src] = i
			}
			idxs = append(idxs, int64(i))
			n++
		}
	}
	if n > 0 {
		t.logLocked(TableOpUnmarks, 0, nil, nil, idxs, txnID)
	}
	return n
}

// VersionMeta copies the per-version bookkeeping (creating transaction,
// deleting transaction, source row id) in storage order. Row content at an
// index stays immutable once appended, so a caller holding the copy can read
// individual rows afterwards with ReadRow; versions appended after the copy
// are simply not covered. The shard rebalancer drives its migration sweeps off
// this snapshot.
func (t *Table) VersionMeta() (created, deleted, srcIDs []int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	created = append([]int64(nil), t.created...)
	deleted = append([]int64(nil), t.deleted...)
	srcIDs = append([]int64(nil), t.srcIDs...)
	return created, deleted, srcIDs
}

// DeleteBySource marks the live version mirroring the DB2 row srcID deleted.
func (t *Table) DeleteBySource(txnID, srcID int64) bool {
	t.mu.Lock()
	idx, ok := t.bySrc[srcID]
	t.mu.Unlock()
	if !ok {
		return false
	}
	return t.MarkDeleted(idx, txnID)
}

// HasSource reports whether a live version mirrors the DB2 row srcID.
func (t *Table) HasSource(srcID int64) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.bySrc[srcID]
	return ok
}

// UpdateBySource replaces the version mirroring srcID with a new image.
func (t *Table) UpdateBySource(txnID, srcID int64, row types.Row) error {
	if !t.DeleteBySource(txnID, srcID) {
		// The row may not have been replicated yet; treat as insert.
	}
	_, err := t.InsertWithSource(txnID, []types.Row{row}, []int64{srcID})
	return err
}

// TruncateVisible marks every row version visible under vis as deleted by
// txnID and returns the number of rows affected.
func (t *Table) TruncateVisible(txnID int64, vis Visibility) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	var idxs []int64
	for i := range t.created {
		if t.deleted[i] == 0 && vis(t.created[i], t.deleted[i]) {
			t.deleted[i] = txnID
			t.stats.ObserveDelete()
			if src := t.srcIDs[i]; src >= 0 {
				delete(t.bySrc, src)
			}
			idxs = append(idxs, int64(i))
			n++
		}
	}
	if n > 0 {
		t.logLocked(TableOpMarks, 0, nil, nil, idxs, txnID)
	}
	return n
}

// Statistics returns a snapshot of the table's planner statistics.
func (t *Table) Statistics() stats.Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats.Snapshot()
}

// Analyze rebuilds the planner statistics exactly from the rows visible under
// vis, including equi-depth histograms for numeric columns, and returns the
// number of rows analyzed. It implements ANALYZE TABLE for one shard.
func (t *Table) Analyze(vis Visibility) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rows []types.Row
	for i := range t.created {
		if vis(t.created[i], t.deleted[i]) {
			rows = append(rows, t.readRowLocked(i))
		}
	}
	t.stats.AnalyzeRows(rows)
	return len(rows)
}

// ScanStats reports what a scan did, for the accelerator's monitoring tables.
type ScanStats struct {
	VersionsConsidered int
	BlocksPruned       int
	RowsMaterialized   int
	// Batches counts the column batches delivered by a batch scan (0 for the
	// row-at-a-time ParallelScan path).
	Batches int
}

// ParallelScan materialises the rows visible under vis that satisfy all
// pushed-down predicates, scanning with the requested number of worker slices
// and pruning zone-map blocks that cannot match. The result order is by row
// position (slices own contiguous ranges and results are concatenated in
// slice order).
func (t *Table) ParallelScan(slices int, vis Visibility, preds []SimplePredicate) ([]types.Row, ScanStats) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	n := len(t.created)
	stats := ScanStats{VersionsConsidered: n}
	if n == 0 {
		return nil, stats
	}
	if slices < 1 {
		slices = 1
	}
	// Avoid pathological per-slice overhead on small tables: give every slice
	// at least a reasonable chunk of rows to work on.
	if maxUseful := (n + 2047) / 2048; slices > maxUseful {
		slices = maxUseful
	}
	if slices > n {
		slices = n
	}

	type sliceResult struct {
		rows   []types.Row
		pruned int
	}
	results := make([]sliceResult, slices)
	chunk := (n + slices - 1) / slices
	var wg sync.WaitGroup
	for s := 0; s < slices; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			// First pass records surviving row indices (cheap ints), so the
			// row buffer can be allocated once at its exact final size instead
			// of growing through repeated appends on large scans.
			idxs := make([]int, 0, min(hi-lo, 4*ZoneBlockSize))
			pruned := 0
			blockStart := lo
			for blockStart < hi {
				block := blockStart / ZoneBlockSize
				blockEnd := (block + 1) * ZoneBlockSize
				if blockEnd > hi {
					blockEnd = hi
				}
				skip := false
				for _, p := range preds {
					if !p.blockMayMatch(t.cols[p.ColIdx], block) {
						skip = true
						break
					}
				}
				if skip {
					pruned++
					blockStart = blockEnd
					continue
				}
				for i := blockStart; i < blockEnd; i++ {
					if !vis(t.created[i], t.deleted[i]) {
						continue
					}
					match := true
					for _, p := range preds {
						if !p.rowMatches(t.cols[p.ColIdx], i) {
							match = false
							break
						}
					}
					if !match {
						continue
					}
					idxs = append(idxs, i)
				}
				blockStart = blockEnd
			}
			rows := make([]types.Row, len(idxs))
			for j, i := range idxs {
				rows[j] = t.readRowLocked(i)
			}
			results[s] = sliceResult{rows: rows, pruned: pruned}
		}(s, lo, hi)
	}
	wg.Wait()

	total := 0
	for _, r := range results {
		total += len(r.rows)
		stats.BlocksPruned += r.pruned
	}
	out := make([]types.Row, 0, total)
	for _, r := range results {
		out = append(out, r.rows...)
	}
	stats.RowsMaterialized = len(out)
	return out, stats
}
