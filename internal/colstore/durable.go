package colstore

import (
	"idaax/internal/stats"
	"idaax/internal/types"
)

// TableOpKind enumerates the journaled mutations of a columnar table.
type TableOpKind int

const (
	// TableOpInsert appends a batch of row versions.
	TableOpInsert TableOpKind = iota
	// TableOpMarks sets deletion markers.
	TableOpMarks
	// TableOpUnmarks clears deletion markers (rollback).
	TableOpUnmarks
)

// TableOp is one journaled mutation. Seq is the table's operation sequence
// number: every journaled mutation gets the next number under the table
// lock, and a checkpoint snapshot records the sequence it covers — replay
// skips ops at or below the snapshot's sequence, which makes the
// checkpoint/WAL cut exact without quiescing writers.
//
// Deletes and undos carry the explicit affected indexes rather than their
// logical form (predicate, visibility): replaying TRUNCATE or DELETE
// logically against replay-time visibility could resolve differently than it
// did live, silently corrupting recovery.
type TableOp struct {
	Table  string
	Seq    int64
	Kind   TableOpKind
	Base   int // row count before an insert
	Rows   []types.Row
	SrcIDs []int64
	Idxs   []int64
	Txn    int64
}

// Journal receives every mutation of a table, called under the table lock so
// the journal order is exactly the mutation order. Implementations must not
// call back into the table. Append failures are latched by the journal
// implementation and surfaced on the next durability barrier (commit/sync),
// matching crash semantics: an unjournaled mutation is never acknowledged.
type Journal interface {
	LogTableOp(op *TableOp)
}

// SetJournal attaches a journal; nil detaches it.
func (t *Table) SetJournal(j Journal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.journal = j
}

// OpSeq returns the table's current operation sequence number.
func (t *Table) OpSeq() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.opSeq
}

// logLocked journals op with the next sequence number. Caller holds t.mu.
func (t *Table) logLocked(kind TableOpKind, base int, rows []types.Row, srcIDs []int64, idxs []int64, txn int64) {
	t.opSeq++
	if t.journal == nil {
		return
	}
	t.journal.LogTableOp(&TableOp{
		Table: t.name, Seq: t.opSeq, Kind: kind,
		Base: base, Rows: rows, SrcIDs: srcIDs, Idxs: idxs, Txn: txn,
	})
}

// ---------------------------------------------------------------------------
// Checkpoint capture and restore
// ---------------------------------------------------------------------------

// ColumnData is one column's raw payload, as captured for a segment file and
// as loaded back from one. Zone maps are not part of it: they are rebuilt on
// restore. For dictionary-encoded string columns Dict and Codes carry the
// dictionary (in code order) and the per-row codes alongside Strs; the
// segment encoder persists the dictionary form (each distinct string stored
// once) and the decoder re-materializes Strs, so consumers can always read
// Strs regardless of how the column travelled.
type ColumnData struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
	Dict   []string
	Codes  []int32
}

// TableSnapshot is a consistent point-in-time image of a table, cheap enough
// to take under the table lock: column payload slices and created/srcIDs are
// append-only, so the snapshot shares their backing arrays (a later append
// that grows them leaves the captured prefix untouched); deleted mutates in
// place and is deep-copied.
type TableSnapshot struct {
	Name    string
	Schema  types.Schema
	DistKey string
	OpSeq   int64
	Created []int64
	Deleted []int64
	SrcIDs  []int64
	Cols    []ColumnData
}

// Snapshot captures the table. The result is immutable even while writers
// continue appending.
func (t *Table) Snapshot() *TableSnapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.created)
	snap := &TableSnapshot{
		Name:    t.name,
		Schema:  t.schema,
		DistKey: t.distKey,
		OpSeq:   t.opSeq,
		Created: t.created[:n:n],
		Deleted: append([]int64(nil), t.deleted[:n]...),
		SrcIDs:  t.srcIDs[:n:n],
		Cols:    make([]ColumnData, len(t.cols)),
	}
	for i, c := range t.cols {
		cd := ColumnData{Kind: c.Kind}
		switch c.Kind {
		case types.KindInt, types.KindTimestamp, types.KindBool:
			cd.Ints = c.ints[:n:n]
		case types.KindFloat:
			cd.Floats = c.floats[:n:n]
		default:
			cd.Strs = c.strs[:n:n]
			if c.DictEncoded() {
				d := len(c.dict)
				cd.Dict = c.dict[:d:d]
				cd.Codes = c.codes[:n:n]
			}
		}
		cd.Nulls = c.nulls[:n:n]
		snap.Cols[i] = cd
	}
	return snap
}

// restoreColumn rebuilds a column, including its zone maps, from raw payload.
func restoreColumn(cd ColumnData, n int) *Column {
	c := NewColumn(cd.Kind)
	c.nulls = cd.Nulls[:n:n]
	switch cd.Kind {
	case types.KindInt, types.KindTimestamp, types.KindBool:
		c.ints = cd.Ints[:n:n]
		for i := 0; i < n; i++ {
			if c.nulls[i] {
				c.updateZone(i, 0, false)
			} else {
				c.updateZone(i, float64(c.ints[i]), true)
			}
		}
	case types.KindFloat:
		c.floats = cd.Floats[:n:n]
		for i := 0; i < n; i++ {
			if c.nulls[i] {
				c.updateZone(i, 0, false)
			} else {
				c.updateZone(i, c.floats[i], true)
			}
		}
	default:
		c.strs = cd.Strs[:n:n]
		for i := 0; i < n; i++ {
			c.updateZone(i, 0, false)
			c.updateZoneStr(i, c.strs[i], !c.nulls[i])
			// Rebuild the dictionary by append order — the same first-
			// appearance walk the live column performed, so the restored
			// dictionary (codes included) is identical, and a column that
			// spilled spills again at the same row.
			c.appendDict(i, c.strs[i], !c.nulls[i])
		}
	}
	return c
}

// RestoreTable rebuilds a table from a snapshot: columns with fresh zone
// maps, the live-version source index, and the incremental planner
// statistics (one observed insert per version, one observed delete per set
// marker), exactly as the live table accumulated them.
func RestoreTable(snap *TableSnapshot) *Table {
	n := len(snap.Created)
	t := &Table{
		name:    snap.Name,
		schema:  snap.Schema,
		distKey: snap.DistKey,
		opSeq:   snap.OpSeq,
		created: snap.Created[:n:n],
		deleted: append([]int64(nil), snap.Deleted[:n]...),
		srcIDs:  snap.SrcIDs[:n:n],
		bySrc:   make(map[int64]int),
		cols:    make([]*Column, len(snap.Cols)),
		stats:   stats.NewCollector(snap.Schema),
	}
	for i, cd := range snap.Cols {
		t.cols[i] = restoreColumn(cd, n)
	}
	for i := 0; i < n; i++ {
		t.stats.ObserveInsert(t.readRowLocked(i))
		if t.deleted[i] != 0 {
			t.stats.ObserveDelete()
		} else if src := t.srcIDs[i]; src >= 0 {
			t.bySrc[src] = i
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// WAL replay
// ---------------------------------------------------------------------------

// ApplyOp replays one journaled mutation. Ops at or below the snapshot's
// sequence number are already reflected in the loaded segments and are
// skipped; everything later applies exactly once, in journal order. The
// replayed rows were validated before they were journaled, so they append
// without re-validation.
func (t *Table) ApplyOp(op *TableOp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if op.Seq <= t.opSeq {
		return
	}
	t.opSeq = op.Seq
	switch op.Kind {
	case TableOpInsert:
		for ri, row := range op.Rows {
			for ci, col := range t.cols {
				col.Append(row[ci])
			}
			t.stats.ObserveInsert(row)
			idx := len(t.created)
			t.created = append(t.created, op.Txn)
			t.deleted = append(t.deleted, 0)
			src := int64(-1)
			if op.SrcIDs != nil {
				src = op.SrcIDs[ri]
				if src >= 0 {
					t.bySrc[src] = idx
				}
			}
			t.srcIDs = append(t.srcIDs, src)
		}
	case TableOpMarks:
		for _, idx := range op.Idxs {
			i := int(idx)
			if i >= 0 && i < len(t.deleted) && t.deleted[i] == 0 {
				t.deleted[i] = op.Txn
				t.stats.ObserveDelete()
				if src := t.srcIDs[i]; src >= 0 {
					delete(t.bySrc, src)
				}
			}
		}
	case TableOpUnmarks:
		for _, idx := range op.Idxs {
			i := int(idx)
			if i >= 0 && i < len(t.deleted) && t.deleted[i] == op.Txn {
				t.deleted[i] = 0
				t.stats.ObserveUndelete()
				if src := t.srcIDs[i]; src >= 0 {
					t.bySrc[src] = i
				}
			}
		}
	}
}

// ClearMarksBy clears every deletion marker set by txnID without journaling;
// recovery uses it to sweep markers left by transactions it resolves as
// aborted (the journal already proves the markers, and recovery re-derives
// the sweep deterministically from the same WAL on a repeated crash).
func (t *Table) ClearMarksBy(txnID int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.deleted {
		if t.deleted[i] == txnID {
			t.deleted[i] = 0
			t.stats.ObserveUndelete()
			if src := t.srcIDs[i]; src >= 0 {
				t.bySrc[src] = i
			}
			n++
		}
	}
	return n
}
