// Package colstore implements the accelerator's storage layer: append-only
// columnar segments with null bitmaps, per-block zone maps for scan pruning,
// and multi-version rows (create/delete transaction ids) that give the
// accelerator snapshot-isolation semantics while still exposing a DB2
// transaction's own uncommitted changes — the behaviour accelerator-only
// tables require (paper, Section 2).
package colstore

import (
	"fmt"
	"math"

	"idaax/internal/types"
)

// ZoneBlockSize is the number of rows covered by one zone-map entry.
const ZoneBlockSize = 4096

// Column stores one column's values in typed vectors. Exactly one of the
// payload slices is populated, chosen by Kind; nulls[i] marks NULL entries.
type Column struct {
	Kind   types.Kind
	ints   []int64
	floats []float64
	strs   []string
	nulls  []bool

	// Zone maps: per block of ZoneBlockSize rows the minimum and maximum
	// numeric value (ints and floats; timestamps use their microsecond value).
	zoneMin []float64
	zoneMax []float64

	// String zone maps: per block the lexicographically smallest and largest
	// non-NULL string, maintained only for string columns. zoneStrOk marks
	// blocks that hold at least one non-NULL string; a block of only NULLs can
	// be pruned outright because NULL never satisfies a comparison.
	zoneMinStr []string
	zoneMaxStr []string
	zoneStrOk  []bool

	// Dictionary encoding for low-cardinality string columns: dict holds the
	// distinct values in first-appearance order, codes aligns with strs
	// (codes[i] indexes dict; NULL rows carry the placeholder 0 with nulls
	// authoritative), and zoneMinCode/zoneMaxCode track per-block code ranges
	// (max < 0 marks an all-NULL block). strs stays authoritative throughout:
	// the dictionary is an auxiliary structure that scans, joins and group-bys
	// use to compare int codes instead of strings. Once the distinct count
	// would exceed the threshold the column spills: dictOff is set and the
	// auxiliary slices are nil'd (never mutated — snapshots sharing them stay
	// valid). See dict.go.
	dict        []string
	dictMap     map[string]int32
	codes       []int32
	dictOff     bool
	zoneMinCode []int32
	zoneMaxCode []int32
}

// NewColumn creates an empty column of the given kind.
func NewColumn(kind types.Kind) *Column { return &Column{Kind: kind} }

// Len returns the number of stored values.
func (c *Column) Len() int { return len(c.nulls) }

// Append adds a value (which must already be coerced to the column kind or be
// NULL).
func (c *Column) Append(v types.Value) {
	idx := len(c.nulls)
	c.nulls = append(c.nulls, v.IsNull())
	var numeric float64
	hasNumeric := false
	switch c.Kind {
	case types.KindInt, types.KindTimestamp:
		val := int64(0)
		if !v.IsNull() {
			val = v.Int
			numeric, hasNumeric = float64(val), true
		}
		c.ints = append(c.ints, val)
	case types.KindFloat:
		val := 0.0
		if !v.IsNull() {
			val = v.Float
			numeric, hasNumeric = val, true
		}
		c.floats = append(c.floats, val)
	case types.KindBool:
		val := int64(0)
		if !v.IsNull() && v.Bool {
			val = 1
		}
		if !v.IsNull() {
			numeric, hasNumeric = float64(val), true
		}
		c.ints = append(c.ints, val)
	default: // strings and anything else
		s := ""
		if !v.IsNull() {
			s = v.AsString()
		}
		c.strs = append(c.strs, s)
		c.updateZoneStr(idx, s, !v.IsNull())
		c.appendDict(idx, s, !v.IsNull())
	}
	c.updateZone(idx, numeric, hasNumeric)
}

func (c *Column) updateZone(idx int, numeric float64, hasNumeric bool) {
	block := idx / ZoneBlockSize
	for len(c.zoneMin) <= block {
		c.zoneMin = append(c.zoneMin, math.Inf(1))
		c.zoneMax = append(c.zoneMax, math.Inf(-1))
	}
	if !hasNumeric {
		return
	}
	if numeric < c.zoneMin[block] {
		c.zoneMin[block] = numeric
	}
	if numeric > c.zoneMax[block] {
		c.zoneMax[block] = numeric
	}
}

func (c *Column) updateZoneStr(idx int, s string, hasValue bool) {
	block := idx / ZoneBlockSize
	for len(c.zoneStrOk) <= block {
		c.zoneMinStr = append(c.zoneMinStr, "")
		c.zoneMaxStr = append(c.zoneMaxStr, "")
		c.zoneStrOk = append(c.zoneStrOk, false)
	}
	if !hasValue {
		return
	}
	if !c.zoneStrOk[block] {
		c.zoneMinStr[block] = s
		c.zoneMaxStr[block] = s
		c.zoneStrOk[block] = true
		return
	}
	if s < c.zoneMinStr[block] {
		c.zoneMinStr[block] = s
	}
	if s > c.zoneMaxStr[block] {
		c.zoneMaxStr[block] = s
	}
}

// Value reconstructs the i-th value.
func (c *Column) Value(i int) types.Value {
	if c.nulls[i] {
		return types.Null()
	}
	switch c.Kind {
	case types.KindInt:
		return types.NewInt(c.ints[i])
	case types.KindTimestamp:
		return types.NewTimestampMicros(c.ints[i])
	case types.KindFloat:
		return types.NewFloat(c.floats[i])
	case types.KindBool:
		return types.NewBool(c.ints[i] != 0)
	default:
		return types.NewString(c.strs[i])
	}
}

// IsNull reports whether the i-th value is NULL.
func (c *Column) IsNull(i int) bool { return c.nulls[i] }

// Numeric returns the i-th value as float64 for zone-map comparable kinds.
func (c *Column) Numeric(i int) (float64, bool) {
	if c.nulls[i] {
		return 0, false
	}
	switch c.Kind {
	case types.KindInt, types.KindTimestamp, types.KindBool:
		return float64(c.ints[i]), true
	case types.KindFloat:
		return c.floats[i], true
	default:
		return 0, false
	}
}

// BlockRange returns the zone-map min/max for the block containing row start.
// ok is false when the block holds no non-NULL numeric values.
func (c *Column) BlockRange(block int) (min, max float64, ok bool) {
	if block < 0 || block >= len(c.zoneMin) {
		return 0, 0, false
	}
	if math.IsInf(c.zoneMin[block], 1) {
		return 0, 0, false
	}
	return c.zoneMin[block], c.zoneMax[block], true
}

// BlockStringRange returns the string zone-map min/max for a block of a
// string column. ok is false when the block holds no non-NULL strings (or the
// column is not a string column), in which case no string comparison can match
// inside the block.
func (c *Column) BlockStringRange(block int) (min, max string, ok bool) {
	if block < 0 || block >= len(c.zoneStrOk) || !c.zoneStrOk[block] {
		return "", "", false
	}
	return c.zoneMinStr[block], c.zoneMaxStr[block], true
}

// IsNumeric reports whether zone maps are meaningful for this column.
func (c *Column) IsNumeric() bool {
	switch c.Kind {
	case types.KindInt, types.KindFloat, types.KindTimestamp, types.KindBool:
		return true
	default:
		return false
	}
}

// ApproxBytes estimates the in-memory footprint of the column, used by the
// accelerator's statistics (the paper's system reports per-table sizes).
func (c *Column) ApproxBytes() int64 {
	var b int64
	b += int64(len(c.ints)) * 8
	b += int64(len(c.floats)) * 8
	b += int64(len(c.nulls))
	for _, s := range c.strs {
		b += int64(len(s)) + 16
	}
	b += int64(len(c.zoneMin)+len(c.zoneMax)) * 8
	for i := range c.zoneMinStr {
		b += int64(len(c.zoneMinStr[i])+len(c.zoneMaxStr[i])) + 1
	}
	b += int64(len(c.codes)) * 4
	for _, s := range c.dict {
		b += int64(len(s)) + 16
	}
	b += int64(len(c.zoneMinCode)+len(c.zoneMaxCode)) * 4
	return b
}

// Blocks returns the number of ZoneBlockSize row blocks the column spans.
func (c *Column) Blocks() int { return len(c.zoneMin) }

// ZoneMapEntries counts the zone-map slots maintained for the column: a
// numeric min/max pair per block, plus a string min/max pair per block for
// string columns, plus a code-range pair per block for dictionary-encoded
// columns. Feeds the resource accounting of the ops plane.
func (c *Column) ZoneMapEntries() int {
	return len(c.zoneMin) + len(c.zoneStrOk) + len(c.zoneMinCode)
}

func (c *Column) String() string {
	return fmt.Sprintf("Column{kind=%s, len=%d}", c.Kind, c.Len())
}
