package colstore

import (
	"sync"

	"idaax/internal/types"
)

// BatchSize is the number of row positions covered by one scan batch. It
// divides ZoneBlockSize so a batch never spans a zone-map block boundary.
const BatchSize = 1024

// Vector is a typed, zero-copy view of one column over a batch's row range.
// Exactly one payload slice is populated, chosen by Kind (booleans and
// timestamps share the Ints payload, like Column); Nulls always aligns with
// the payload. Vectors alias column storage and must be treated as read-only.
type Vector struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool

	// Codes and Dict are set (alongside Strs) when the column is dictionary-
	// encoded: Codes[i] indexes Dict for non-NULL rows (NULL rows carry the
	// placeholder 0 — check Nulls first), and Dict is the whole dictionary in
	// code order, shared by every batch of the scan. Consumers that compare or
	// group on strings can work on int32 codes instead.
	Codes []int32
	Dict  []string
}

// Value reconstructs the value at batch offset i.
func (v Vector) Value(i int) types.Value {
	if v.Nulls[i] {
		return types.Null()
	}
	switch v.Kind {
	case types.KindInt:
		return types.NewInt(v.Ints[i])
	case types.KindTimestamp:
		return types.NewTimestampMicros(v.Ints[i])
	case types.KindFloat:
		return types.NewFloat(v.Floats[i])
	case types.KindBool:
		return types.NewBool(v.Ints[i] != 0)
	default:
		return types.NewString(v.Strs[i])
	}
}

// Batch is a view of up to BatchSize consecutive row versions of a table,
// with the rows surviving visibility and predicate evaluation recorded in the
// selection vector. Operators consume the typed vectors directly and only
// materialize types.Row values for rows that survive every filter (late
// materialization).
type Batch struct {
	// Cols holds one vector per table column, aliasing column storage.
	Cols []Vector
	// Base is the absolute row index of batch offset 0.
	Base int
	// N is the number of row positions the batch covers (Sel entries are in
	// [0, N)).
	N int
	// Sel lists the surviving batch offsets in ascending order.
	Sel []int
}

// Materialize appends the selected rows to dst (late materialization).
func (b *Batch) Materialize(dst []types.Row) []types.Row {
	for _, off := range b.Sel {
		row := make(types.Row, len(b.Cols))
		for ci := range b.Cols {
			row[ci] = b.Cols[ci].Value(off)
		}
		dst = append(dst, row)
	}
	return dst
}

// ScanBatches streams the rows visible under vis that satisfy all pushed-down
// predicates as column batches, without materializing types.Row values: per
// zone-map block that survives pruning, visibility fills the selection vector
// and each predicate shrinks it with a typed vector loop. fn runs on `slices`
// workers (worker indices are < max(1, slices)); each worker owns a contiguous
// row range and delivers its batches in ascending position order, so
// concatenating per-worker results in worker order yields position order —
// the same order ParallelScan returns. The batch passed to fn (vectors and
// selection vector included) is reused and only valid for the duration of the
// call. ScanStats.RowsMaterialized counts the selected rows delivered.
func (t *Table) ScanBatches(slices int, vis Visibility, preds []SimplePredicate, fn func(worker int, b *Batch) error) (ScanStats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	n := len(t.created)
	stats := ScanStats{VersionsConsidered: n}
	if n == 0 {
		return stats, nil
	}
	// Rewrite string predicates over dictionary-encoded columns into code
	// comparisons once for the whole scan. The read lock is held until the
	// scan completes and a dictionary spill requires the write lock, so the
	// resolved tables cannot go stale mid-scan.
	preds = resolveDictPredicates(t.cols, preds)
	if slices < 1 {
		slices = 1
	}
	if maxUseful := (n + 2047) / 2048; slices > maxUseful {
		slices = maxUseful
	}
	if slices > n {
		slices = n
	}

	type sliceResult struct {
		pruned   int
		selected int
		batches  int
		err      error
	}
	results := make([]sliceResult, slices)
	chunk := (n + slices - 1) / slices
	var wg sync.WaitGroup
	for s := 0; s < slices; s++ {
		lo := s * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			pruned, selected, batches, err := t.scanChunkBatches(s, lo, hi, vis, preds, fn)
			results[s] = sliceResult{pruned: pruned, selected: selected, batches: batches, err: err}
		}(s, lo, hi)
	}
	wg.Wait()
	for _, r := range results {
		stats.BlocksPruned += r.pruned
		stats.RowsMaterialized += r.selected
		stats.Batches += r.batches
		if r.err != nil {
			return stats, r.err
		}
	}
	return stats, nil
}

// scanChunkBatches is one worker's share of ScanBatches: rows [lo, hi).
func (t *Table) scanChunkBatches(worker, lo, hi int, vis Visibility, preds []SimplePredicate, fn func(worker int, b *Batch) error) (pruned, selected, batches int, err error) {
	batch := &Batch{Cols: make([]Vector, len(t.cols))}
	selBuf := make([]int, 0, BatchSize)
	blockStart := lo
	for blockStart < hi {
		block := blockStart / ZoneBlockSize
		blockEnd := min((block+1)*ZoneBlockSize, hi)
		skip := false
		for _, p := range preds {
			if !p.blockMayMatch(t.cols[p.ColIdx], block) {
				skip = true
				break
			}
		}
		if skip {
			pruned++
			blockStart = blockEnd
			continue
		}
		for start := blockStart; start < blockEnd; start += BatchSize {
			end := min(start+BatchSize, blockEnd)
			sel := selBuf[:0]
			for i := start; i < end; i++ {
				if vis(t.created[i], t.deleted[i]) {
					sel = append(sel, i-start)
				}
			}
			if len(sel) == 0 {
				continue
			}
			t.fillBatch(batch, start, end)
			for _, p := range preds {
				sel = p.applyVector(batch.Cols[p.ColIdx], sel)
				if len(sel) == 0 {
					break
				}
			}
			if len(sel) == 0 {
				continue
			}
			batch.Sel = sel
			selected += len(sel)
			batches++
			if err := fn(worker, batch); err != nil {
				return pruned, selected, batches, err
			}
		}
		blockStart = blockEnd
	}
	return pruned, selected, batches, nil
}

// fillBatch points the batch's vectors at rows [start, end) of every column.
func (t *Table) fillBatch(b *Batch, start, end int) {
	b.Base = start
	b.N = end - start
	for ci, c := range t.cols {
		v := Vector{Kind: c.Kind, Nulls: c.nulls[start:end]}
		switch c.Kind {
		case types.KindInt, types.KindTimestamp, types.KindBool:
			v.Ints = c.ints[start:end]
		case types.KindFloat:
			v.Floats = c.floats[start:end]
		default:
			v.Strs = c.strs[start:end]
			if c.DictEncoded() {
				v.Codes = c.codes[start:end]
				v.Dict = c.dict
			}
		}
		b.Cols[ci] = v
	}
}

// ScanMaterialize is the batch-scan twin of ParallelScan: it returns exactly
// the same rows in the same (position) order, but evaluates predicates with
// vector loops and materializes only surviving rows into per-worker buffers
// sized from batch survivor counts.
func (t *Table) ScanMaterialize(slices int, vis Visibility, preds []SimplePredicate) ([]types.Row, ScanStats) {
	nw := max(slices, 1)
	buckets := make([][]types.Row, nw)
	stats, _ := t.ScanBatches(slices, vis, preds, func(w int, b *Batch) error {
		buckets[w] = b.Materialize(buckets[w])
		return nil
	})
	out := make([]types.Row, 0, stats.RowsMaterialized)
	for _, rows := range buckets {
		out = append(out, rows...)
	}
	return out, stats
}

// applyVector compacts sel in place to the offsets whose value satisfies the
// predicate, using tight typed loops per column kind — no per-value branching
// on the tagged Value struct. NULL never matches. The kept set is exactly the
// set rowMatches would keep: numeric kinds compare as float64 (matching
// types.Compare), booleans compare against boolean literals only, strings
// compare lexicographically, and any combination types.Compare rejects (a
// boolean column against a numeric literal, a numeric column against a string
// literal, ...) keeps nothing via the generic fallback — the typed loops are
// reserved for combinations whose comparison the row path performs too.
func (p SimplePredicate) applyVector(v Vector, sel []int) []int {
	colNum := v.Kind == types.KindInt || v.Kind == types.KindTimestamp || v.Kind == types.KindFloat
	litNum := p.Value.Kind == types.KindInt || p.Value.Kind == types.KindTimestamp || p.Value.Kind == types.KindFloat
	boolPair := v.Kind == types.KindBool && p.Value.Kind == types.KindBool
	switch {
	case p.dictResolved && v.Codes != nil:
		return p.selectDictCodes(v.Codes, v.Nulls, sel)
	case v.Ints != nil && p.isNum && ((colNum && litNum) || boolPair):
		return selectIntsCmp(v.Ints, v.Nulls, sel, p.numeric, p.Op)
	case v.Floats != nil && p.isNum && litNum:
		return selectFloatsCmp(v.Floats, v.Nulls, sel, p.numeric, p.Op)
	case v.Kind == types.KindString && p.Value.Kind == types.KindString:
		return selectStringsCmp(v.Strs, v.Nulls, sel, p.Value.Str, p.Op)
	default:
		// Odd kind combinations (string column vs numeric literal, boolean
		// column vs string literal, ...) fall back to the row comparator so
		// the semantics stay identical to the row-at-a-time scan.
		out := sel[:0]
		for _, i := range sel {
			if v.Nulls[i] {
				continue
			}
			c, err := types.Compare(v.Value(i), p.Value)
			if err != nil {
				continue
			}
			if cmpSatisfies(c, p.Op) {
				out = append(out, i)
			}
		}
		return out
	}
}

func cmpSatisfies(c int, op CompareOp) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// selectIntsCmp filters an int64 payload (ints, timestamps, booleans) against
// a numeric literal. Values convert to float64 for the comparison, exactly as
// types.Compare does on the row path.
func selectIntsCmp(vals []int64, nulls []bool, sel []int, lit float64, op CompareOp) []int {
	out := sel[:0]
	switch op {
	case CmpEq:
		for _, i := range sel {
			if !nulls[i] && float64(vals[i]) == lit {
				out = append(out, i)
			}
		}
	case CmpNe:
		for _, i := range sel {
			if !nulls[i] && float64(vals[i]) != lit {
				out = append(out, i)
			}
		}
	case CmpLt:
		for _, i := range sel {
			if !nulls[i] && float64(vals[i]) < lit {
				out = append(out, i)
			}
		}
	case CmpLe:
		for _, i := range sel {
			if !nulls[i] && float64(vals[i]) <= lit {
				out = append(out, i)
			}
		}
	case CmpGt:
		for _, i := range sel {
			if !nulls[i] && float64(vals[i]) > lit {
				out = append(out, i)
			}
		}
	case CmpGe:
		for _, i := range sel {
			if !nulls[i] && float64(vals[i]) >= lit {
				out = append(out, i)
			}
		}
	}
	return out
}

func selectFloatsCmp(vals []float64, nulls []bool, sel []int, lit float64, op CompareOp) []int {
	out := sel[:0]
	switch op {
	case CmpEq:
		for _, i := range sel {
			if !nulls[i] && vals[i] == lit {
				out = append(out, i)
			}
		}
	case CmpNe:
		for _, i := range sel {
			if !nulls[i] && vals[i] != lit {
				out = append(out, i)
			}
		}
	case CmpLt:
		for _, i := range sel {
			if !nulls[i] && vals[i] < lit {
				out = append(out, i)
			}
		}
	case CmpLe:
		for _, i := range sel {
			if !nulls[i] && vals[i] <= lit {
				out = append(out, i)
			}
		}
	case CmpGt:
		for _, i := range sel {
			if !nulls[i] && vals[i] > lit {
				out = append(out, i)
			}
		}
	case CmpGe:
		for _, i := range sel {
			if !nulls[i] && vals[i] >= lit {
				out = append(out, i)
			}
		}
	}
	return out
}

func selectStringsCmp(vals []string, nulls []bool, sel []int, lit string, op CompareOp) []int {
	out := sel[:0]
	switch op {
	case CmpEq:
		for _, i := range sel {
			if !nulls[i] && vals[i] == lit {
				out = append(out, i)
			}
		}
	case CmpNe:
		for _, i := range sel {
			if !nulls[i] && vals[i] != lit {
				out = append(out, i)
			}
		}
	case CmpLt:
		for _, i := range sel {
			if !nulls[i] && vals[i] < lit {
				out = append(out, i)
			}
		}
	case CmpLe:
		for _, i := range sel {
			if !nulls[i] && vals[i] <= lit {
				out = append(out, i)
			}
		}
	case CmpGt:
		for _, i := range sel {
			if !nulls[i] && vals[i] > lit {
				out = append(out, i)
			}
		}
	case CmpGe:
		for _, i := range sel {
			if !nulls[i] && vals[i] >= lit {
				out = append(out, i)
			}
		}
	}
	return out
}
