package colstore

import (
	"strings"
	"sync/atomic"

	"idaax/internal/types"
)

// DefaultDictThreshold is the cardinality ceiling for per-column string
// dictionaries: a string column keeps an int32-coded dictionary while its
// distinct non-NULL value count stays at or below the threshold, and spills
// back to raw strings the first time a new distinct value would exceed it.
// ZoneBlockSize is a natural ceiling — past it a "low-cardinality" column no
// longer prunes blocks or shrinks group-key tables meaningfully.
const DefaultDictThreshold = ZoneBlockSize

var dictThreshold atomic.Int64

func init() { dictThreshold.Store(DefaultDictThreshold) }

// SetDictThreshold sets the process-wide dictionary cardinality threshold and
// returns the previous value. A threshold <= 0 disables dictionary encoding
// for columns that receive any non-NULL string (differential tests use this to
// force the raw-string path). Lowering the threshold does not spill existing
// dictionaries retroactively; it applies to subsequent appends and restores.
func SetDictThreshold(n int) int {
	return int(dictThreshold.Swap(int64(n)))
}

// DictThreshold returns the current dictionary cardinality threshold.
func DictThreshold() int { return int(dictThreshold.Load()) }

// appendDict maintains the column's dictionary for the value appended at row
// idx. Caller has already appended to strs/nulls. NULL rows record the
// placeholder code 0 (nulls stays authoritative; readers must check it before
// trusting a code). A new distinct value past the threshold spills the
// dictionary: the auxiliary structures are dropped and the column serves raw
// strings from then on. Spilling only nils pointers — it never mutates the
// shared backing arrays, so snapshots taken before the spill stay valid.
func (c *Column) appendDict(idx int, s string, hasValue bool) {
	if c.dictOff || c.Kind != types.KindString {
		return
	}
	var code int32
	if hasValue {
		var ok bool
		code, ok = c.dictMap[s]
		if !ok {
			if int64(len(c.dict)) >= dictThreshold.Load() {
				c.spillDict()
				return
			}
			if c.dictMap == nil {
				c.dictMap = make(map[string]int32)
			}
			code = int32(len(c.dict))
			c.dict = append(c.dict, s)
			c.dictMap[s] = code
		}
	}
	c.codes = append(c.codes, code)
	c.updateZoneCode(idx, code, hasValue)
}

func (c *Column) spillDict() {
	c.dictOff = true
	c.dict = nil
	c.dictMap = nil
	c.codes = nil
	c.zoneMinCode = nil
	c.zoneMaxCode = nil
}

// updateZoneCode maintains the per-block code range (the dictionary analogue
// of the numeric zone map: equality predicates prune on code ranges).
func (c *Column) updateZoneCode(idx int, code int32, hasValue bool) {
	block := idx / ZoneBlockSize
	for len(c.zoneMinCode) <= block {
		c.zoneMinCode = append(c.zoneMinCode, int32(1<<30))
		c.zoneMaxCode = append(c.zoneMaxCode, -1)
	}
	if !hasValue {
		return
	}
	if code < c.zoneMinCode[block] {
		c.zoneMinCode[block] = code
	}
	if code > c.zoneMaxCode[block] {
		c.zoneMaxCode[block] = code
	}
}

// DictEncoded reports whether the column currently serves a dictionary.
func (c *Column) DictEncoded() bool {
	return c.Kind == types.KindString && !c.dictOff
}

// DictSize returns the number of distinct values in the dictionary (0 when
// the column is not dictionary-encoded).
func (c *Column) DictSize() int {
	if !c.DictEncoded() {
		return 0
	}
	return len(c.dict)
}

// DictStrings returns the dictionary in code order. The slice aliases the
// column's append-only dictionary and must be treated as read-only.
func (c *Column) DictStrings() []string {
	if !c.DictEncoded() {
		return nil
	}
	d := len(c.dict)
	return c.dict[:d:d]
}

// DictCode returns the code for s, or -1 when s is not in the dictionary (or
// the column is not dictionary-encoded).
func (c *Column) DictCode(s string) int32 {
	if !c.DictEncoded() {
		return -1
	}
	if code, ok := c.dictMap[s]; ok {
		return code
	}
	return -1
}

// BlockCodeRange returns the dictionary-code range of a block. ok is false
// when the block holds no non-NULL value (no code can match) or the column is
// not dictionary-encoded.
func (c *Column) BlockCodeRange(block int) (min, max int32, ok bool) {
	if !c.DictEncoded() || block < 0 || block >= len(c.zoneMinCode) {
		return 0, 0, false
	}
	if c.zoneMaxCode[block] < 0 {
		return 0, 0, false
	}
	return c.zoneMinCode[block], c.zoneMaxCode[block], true
}

// resolveDictPredicates rewrites string-literal predicates over dictionary-
// encoded columns into code comparisons: a per-dictionary match table (one
// strings.Compare per distinct value instead of one per row) plus the literal's
// own code for the equality fast path. Called under the table lock by scans;
// the dictionary cannot change for the duration (appends and spills need the
// write lock), so the tables stay valid for the whole scan.
func resolveDictPredicates(cols []*Column, preds []SimplePredicate) []SimplePredicate {
	resolved := preds
	copied := false
	for i, p := range preds {
		col := cols[p.ColIdx]
		if !col.DictEncoded() || p.Value.Kind != types.KindString {
			continue
		}
		if !copied {
			resolved = append([]SimplePredicate(nil), preds...)
			copied = true
		}
		match := make([]bool, len(col.dict))
		for code, s := range col.dict {
			if cmpSatisfies(strings.Compare(s, p.Value.Str), p.Op) {
				match[code] = true
			}
		}
		resolved[i].dictMatch = match
		resolved[i].dictEq = col.DictCode(p.Value.Str)
		resolved[i].dictResolved = true
	}
	return resolved
}

// selectDictCodes filters a dictionary-coded payload against a resolved
// predicate: equality compares one int32 per row, every other operator reads
// the per-dictionary match table. NULL never matches (checked before the code
// is trusted — NULL rows carry the placeholder code 0).
func (p SimplePredicate) selectDictCodes(codes []int32, nulls []bool, sel []int) []int {
	out := sel[:0]
	if p.Op == CmpEq {
		eq := p.dictEq
		if eq < 0 {
			return out
		}
		for _, i := range sel {
			if !nulls[i] && codes[i] == eq {
				out = append(out, i)
			}
		}
		return out
	}
	m := p.dictMatch
	for _, i := range sel {
		if !nulls[i] && m[codes[i]] {
			out = append(out, i)
		}
	}
	return out
}

// ColumnEncoding describes one column's physical encoding for EXPLAIN and the
// ops plane.
type ColumnEncoding struct {
	Name string
	Kind string
	// Dict reports whether the column is dictionary-encoded; DictSize is the
	// distinct-value count. Spilled is true for string columns that exceeded
	// the cardinality threshold and fell back to raw strings.
	Dict     bool
	DictSize int
	Spilled  bool
}

// String renders the encoding the way EXPLAIN prints it.
func (e ColumnEncoding) String() string {
	if e.Dict {
		return "dict"
	}
	if e.Spilled {
		return "raw(spilled)"
	}
	return "plain"
}

// ColumnEncodings reports each column's current physical encoding.
func (t *Table) ColumnEncodings() []ColumnEncoding {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]ColumnEncoding, len(t.cols))
	for i, c := range t.cols {
		out[i] = ColumnEncoding{
			Name:     t.schema.Columns[i].Name,
			Kind:     c.Kind.String(),
			Dict:     c.DictEncoded(),
			DictSize: c.DictSize(),
			Spilled:  c.Kind == types.KindString && c.dictOff,
		}
	}
	return out
}
