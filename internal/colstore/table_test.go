package colstore

import (
	"testing"
	"testing/quick"

	"idaax/internal/types"
)

func testSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "V", Kind: types.KindFloat},
		types.Column{Name: "S", Kind: types.KindString},
	)
}

func row(id int64, v float64, s string) types.Row {
	return types.Row{types.NewInt(id), types.NewFloat(v), types.NewString(s)}
}

// allVisible is a Visibility treating every non-deleted version as visible.
func allVisible(created, deleted int64) bool { return deleted == 0 }

func TestInsertAndReadRow(t *testing.T) {
	tab := NewTable("T", testSchema(), "ID")
	n, err := tab.Insert(1, []types.Row{row(1, 1.5, "a"), row(2, 2.5, "b")})
	if err != nil || n != 2 {
		t.Fatalf("insert: %d, %v", n, err)
	}
	if tab.VersionCount() != 2 {
		t.Fatalf("versions = %d", tab.VersionCount())
	}
	r := tab.ReadRow(1)
	if r[0].Int != 2 || r[1].Float != 2.5 || r[2].Str != "b" {
		t.Fatalf("read row: %+v", r)
	}
	if tab.DistKey() != "ID" || tab.Name() != "T" {
		t.Error("metadata lost")
	}
	if _, err := tab.Insert(1, []types.Row{{types.Null(), types.NewFloat(1), types.NewString("x")}}); err == nil {
		t.Error("NOT NULL violation should fail")
	}
}

func TestMVCCVisibility(t *testing.T) {
	tab := NewTable("T", testSchema(), "")
	_, _ = tab.Insert(10, []types.Row{row(1, 1, "a")})
	_, _ = tab.Insert(20, []types.Row{row(2, 2, "b")})

	// Only txn 10's row committed.
	vis := func(created, deleted int64) bool {
		committed := created == 10
		own := created == 30
		if !(committed || own) {
			return false
		}
		return deleted == 0
	}
	if got := tab.VisibleRowCount(vis); got != 1 {
		t.Fatalf("visible = %d", got)
	}

	// Delete by an uncommitted foreign transaction stays invisible to others.
	if !tab.MarkDeleted(0, 99) {
		t.Fatal("mark deleted failed")
	}
	visIgnoringDelete := func(created, deleted int64) bool {
		return created == 10 && (deleted == 0 || deleted != 10)
	}
	if got := tab.VisibleRowCount(visIgnoringDelete); got != 1 {
		t.Fatalf("delete by uncommitted txn should not hide the row here, visible = %d", got)
	}
	// Undo the delete (rollback).
	tab.UndoDelete(0, 99)
	if got := tab.VisibleRowCount(allVisible); got != 2 {
		t.Fatalf("after undo visible = %d", got)
	}
	// Double delete of the same version fails.
	if !tab.MarkDeleted(0, 99) || tab.MarkDeleted(0, 100) {
		t.Fatal("second delete of the same version should fail")
	}
}

func TestSourceRowTracking(t *testing.T) {
	tab := NewTable("T", testSchema(), "")
	_, err := tab.InsertWithSource(1, []types.Row{row(1, 1, "a"), row(2, 2, "b")}, []int64{100, 101})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.DeleteBySource(2, 100) {
		t.Fatal("delete by source failed")
	}
	if tab.DeleteBySource(2, 100) {
		t.Fatal("second delete by source should fail")
	}
	if err := tab.UpdateBySource(3, 101, row(2, 20, "bb")); err != nil {
		t.Fatal(err)
	}
	live := tab.VisibleIndices(allVisible)
	if len(live) != 1 {
		t.Fatalf("live versions = %d", len(live))
	}
	if r := tab.ReadRow(live[0]); r[1].Float != 20 {
		t.Fatalf("updated value = %v", r[1])
	}
	// Updating a source id that was never replicated inserts the new image.
	if err := tab.UpdateBySource(4, 999, row(9, 9, "new")); err != nil {
		t.Fatal(err)
	}
	if got := tab.VisibleRowCount(allVisible); got != 2 {
		t.Fatalf("after upsert visible = %d", got)
	}
}

func TestTruncateVisible(t *testing.T) {
	tab := NewTable("T", testSchema(), "")
	_, _ = tab.Insert(1, []types.Row{row(1, 1, "a"), row(2, 2, "b"), row(3, 3, "c")})
	n := tab.TruncateVisible(2, allVisible)
	if n != 3 {
		t.Fatalf("truncated %d", n)
	}
	if got := tab.VisibleRowCount(allVisible); got != 0 {
		t.Fatalf("visible after truncate = %d", got)
	}
}

func TestParallelScanWithPredicatesAndZoneMaps(t *testing.T) {
	tab := NewTable("T", testSchema(), "")
	var rows []types.Row
	for i := 0; i < 3*ZoneBlockSize; i++ {
		rows = append(rows, row(int64(i), float64(i), "s"))
	}
	if _, err := tab.Insert(1, rows); err != nil {
		t.Fatal(err)
	}
	// Predicate selecting only the last block's range.
	pred := NewSimplePredicate(0, CmpGe, types.NewInt(int64(2*ZoneBlockSize+10)))
	out, stats := tab.ParallelScan(4, allVisible, []SimplePredicate{pred})
	want := ZoneBlockSize - 10
	if len(out) != want {
		t.Fatalf("scan returned %d rows, want %d", len(out), want)
	}
	if stats.BlocksPruned == 0 {
		t.Error("zone maps should have pruned at least one block")
	}
	// Equality predicate far outside the data range prunes everything.
	out, stats = tab.ParallelScan(4, allVisible, []SimplePredicate{NewSimplePredicate(0, CmpEq, types.NewInt(1<<40))})
	if len(out) != 0 || stats.BlocksPruned == 0 {
		t.Fatalf("out-of-range equality: %d rows, %d pruned", len(out), stats.BlocksPruned)
	}
}

func TestParallelScanSliceCountsAgree(t *testing.T) {
	tab := NewTable("T", testSchema(), "")
	var rows []types.Row
	for i := 0; i < 10000; i++ {
		rows = append(rows, row(int64(i), float64(i%7), "x"))
	}
	_, _ = tab.Insert(1, rows)
	pred := []SimplePredicate{NewSimplePredicate(1, CmpLt, types.NewFloat(3))}
	ref, _ := tab.ParallelScan(1, allVisible, pred)
	for _, slices := range []int{2, 4, 16} {
		got, _ := tab.ParallelScan(slices, allVisible, pred)
		if len(got) != len(ref) {
			t.Fatalf("slices=%d returned %d rows, want %d", slices, len(got), len(ref))
		}
	}
}

// TestScanEquivalenceProperty: for random data and a random threshold, the
// pushdown scan returns exactly the rows a naive full scan would.
func TestScanEquivalenceProperty(t *testing.T) {
	f := func(vals []int16, threshold int16, slices uint8) bool {
		if len(vals) == 0 {
			return true
		}
		tab := NewTable("P", testSchema(), "")
		rows := make([]types.Row, len(vals))
		for i, v := range vals {
			rows[i] = row(int64(i), float64(v), "x")
		}
		if _, err := tab.Insert(1, rows); err != nil {
			return false
		}
		pred := NewSimplePredicate(1, CmpGt, types.NewFloat(float64(threshold)))
		got, _ := tab.ParallelScan(int(slices%8)+1, allVisible, []SimplePredicate{pred})
		want := 0
		for _, v := range vals {
			if float64(v) > float64(threshold) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestColumnKindsAndNulls(t *testing.T) {
	col := NewColumn(types.KindFloat)
	col.Append(types.NewFloat(1.5))
	col.Append(types.Null())
	if col.Len() != 2 || !col.IsNull(1) || col.Value(0).Float != 1.5 {
		t.Fatalf("column state wrong")
	}
	if _, ok := col.Numeric(1); ok {
		t.Error("NULL should not be numeric")
	}
	min, max, ok := col.BlockRange(0)
	if !ok || min != 1.5 || max != 1.5 {
		t.Errorf("zone map: %v %v %v", min, max, ok)
	}
	bcol := NewColumn(types.KindBool)
	bcol.Append(types.NewBool(true))
	if v := bcol.Value(0); !v.Bool {
		t.Error("bool round trip")
	}
	tcol := NewColumn(types.KindTimestamp)
	tcol.Append(types.NewTimestampMicros(123456))
	if v := tcol.Value(0); v.Int != 123456 || v.Kind != types.KindTimestamp {
		t.Error("timestamp round trip")
	}
	scol := NewColumn(types.KindString)
	scol.Append(types.NewString("hi"))
	if scol.IsNumeric() || scol.ApproxBytes() == 0 {
		t.Error("string column properties")
	}
}

func TestTableResources(t *testing.T) {
	tab := NewTable("T", testSchema(), "ID")
	rows := make([]types.Row, ZoneBlockSize+10) // span two blocks
	for i := range rows {
		rows[i] = row(int64(i), float64(i), "abc")
	}
	if _, err := tab.Insert(1, rows); err != nil {
		t.Fatal(err)
	}
	res := tab.Resources()
	if res.Table != "T" || res.Rows != int64(len(rows)) {
		t.Fatalf("resources header = %+v", res)
	}
	if len(res.Columns) != 3 {
		t.Fatalf("columns = %d", len(res.Columns))
	}
	if res.Blocks != 2 {
		t.Fatalf("blocks = %d, want 2", res.Blocks)
	}
	var sum int64
	for _, c := range res.Columns {
		if c.Bytes <= 0 || c.Blocks != 2 {
			t.Fatalf("column %+v", c)
		}
		sum += c.Bytes
	}
	if res.Bytes <= sum {
		t.Fatalf("table bytes %d should exceed column sum %d (version metadata)", res.Bytes, sum)
	}
	if res.Bytes < tab.ApproxBytes() {
		t.Fatalf("Resources bytes %d < ApproxBytes %d", res.Bytes, tab.ApproxBytes())
	}
	// String column carries string zone maps on top of the numeric slots.
	s := res.Columns[2]
	if s.Kind != "VARCHAR" {
		t.Fatalf("kind = %q", s.Kind)
	}
	if s.ZoneMapEntries <= res.Columns[0].ZoneMapEntries {
		t.Fatalf("string column zone entries %d should exceed int column's %d", s.ZoneMapEntries, res.Columns[0].ZoneMapEntries)
	}
}
