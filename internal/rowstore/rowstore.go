// Package rowstore is the DB2-side storage layer: an in-memory heap of rows
// per table with tombstone deletes, a monotonically growing row-id space and
// optional hash indexes for point predicates. It deliberately stays
// row-oriented and single-threaded per scan — the performance contrast with
// the accelerator's columnar, sliced storage is part of what the paper's
// evaluation demonstrates.
package rowstore

import (
	"fmt"
	"sync"

	"idaax/internal/types"
)

// RowID identifies a row within one table for its whole lifetime.
type RowID int64

// Table is an in-memory heap table.
type Table struct {
	mu      sync.RWMutex
	schema  types.Schema
	rows    []types.Row
	deleted []bool
	live    int
	indexes map[string]*HashIndex
}

// NewTable creates an empty heap table with the given schema.
func NewTable(schema types.Schema) *Table {
	return &Table{schema: schema, indexes: make(map[string]*HashIndex)}
}

// Schema returns the table's schema.
func (t *Table) Schema() types.Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema
}

// ApproxBytes estimates the in-memory footprint of the heap: the Value
// structs of every stored row version (tombstoned rows included until
// truncate), string payloads, and the tombstone bitmap. Feeds the resource
// accounting of the ops plane, where the rowstore appears beside the
// accelerator members.
func (t *Table) ApproxBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b int64
	for _, row := range t.rows {
		b += int64(len(row)) * 40 // sizeof(types.Value)
		for _, v := range row {
			b += int64(len(v.Str))
		}
	}
	b += int64(len(t.deleted))
	return b
}

// RowCount returns the number of live (non-deleted) rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Insert validates the row against the schema and appends it, returning its
// row id.
func (t *Table) Insert(row types.Row) (RowID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	validated, err := types.ValidateRow(t.schema, row)
	if err != nil {
		return 0, err
	}
	id := RowID(len(t.rows))
	t.rows = append(t.rows, validated)
	t.deleted = append(t.deleted, false)
	t.live++
	for _, idx := range t.indexes {
		idx.insert(validated, id)
	}
	return id, nil
}

// InsertRaw appends a row that has already been validated (used by rollback to
// restore deleted rows without re-checking constraints that held before).
func (t *Table) InsertRaw(row types.Row) RowID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := RowID(len(t.rows))
	t.rows = append(t.rows, row.Clone())
	t.deleted = append(t.deleted, false)
	t.live++
	for _, idx := range t.indexes {
		idx.insert(row, id)
	}
	return id
}

// Get returns the row stored under id (nil, false when deleted or unknown).
func (t *Table) Get(id RowID) (types.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.rows) || t.deleted[id] {
		return nil, false
	}
	return t.rows[id].Clone(), true
}

// Delete tombstones the row. It returns the deleted row so callers can log
// undo information.
func (t *Table) Delete(id RowID) (types.Row, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.deleted[id] {
		return nil, false
	}
	old := t.rows[id]
	t.deleted[id] = true
	t.live--
	for _, idx := range t.indexes {
		idx.remove(old, id)
	}
	return old.Clone(), true
}

// Update replaces the row under id, returning the previous image.
func (t *Table) Update(id RowID, row types.Row) (types.Row, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.deleted[id] {
		return nil, fmt.Errorf("rowstore: row %d does not exist", id)
	}
	validated, err := types.ValidateRow(t.schema, row)
	if err != nil {
		return nil, err
	}
	old := t.rows[id]
	for _, idx := range t.indexes {
		idx.remove(old, id)
		idx.insert(validated, id)
	}
	t.rows[id] = validated
	return old.Clone(), nil
}

// Scan calls fn for every live row in row-id order. The callback receives a
// reference to the stored row; callers must not mutate it.
func (t *Table) Scan(fn func(id RowID, row types.Row) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, row := range t.rows {
		if t.deleted[i] {
			continue
		}
		if err := fn(RowID(i), row); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotRows returns copies of all live rows; the replication full-load path
// and the row engine's scans use it to decouple query execution from writers
// that update rows in place after the statement's read locks are released.
func (t *Table) SnapshotRows() []types.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]types.Row, 0, t.live)
	for i, row := range t.rows {
		if t.deleted[i] {
			continue
		}
		out = append(out, row.Clone())
	}
	return out
}

// Truncate removes all rows and returns how many live rows were dropped.
func (t *Table) Truncate() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.live
	t.rows = nil
	t.deleted = nil
	t.live = 0
	for _, idx := range t.indexes {
		idx.clear()
	}
	return n
}

// CreateIndex builds a hash index on the named column. Point-equality
// UPDATE/DELETE statements use it to avoid full scans.
func (t *Table) CreateIndex(column string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	col := t.schema.IndexOf(column)
	if col < 0 {
		return fmt.Errorf("rowstore: cannot index unknown column %s", column)
	}
	name := types.NormalizeName(column)
	if _, ok := t.indexes[name]; ok {
		return nil
	}
	idx := newHashIndex(col)
	for i, row := range t.rows {
		if t.deleted[i] {
			continue
		}
		idx.insert(row, RowID(i))
	}
	t.indexes[name] = idx
	return nil
}

// LookupIndex returns the row ids whose indexed column equals v, and whether
// an index on that column exists.
func (t *Table) LookupIndex(column string, v types.Value) ([]RowID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[types.NormalizeName(column)]
	if !ok {
		return nil, false
	}
	return idx.lookup(v), true
}

// HasIndex reports whether a hash index exists on the column.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[types.NormalizeName(column)]
	return ok
}

// HashIndex is an equality index from column value to row ids.
type HashIndex struct {
	col     int
	entries map[string][]RowID
}

func newHashIndex(col int) *HashIndex {
	return &HashIndex{col: col, entries: make(map[string][]RowID)}
}

func (h *HashIndex) insert(row types.Row, id RowID) {
	key := row[h.col].GroupKey()
	h.entries[key] = append(h.entries[key], id)
}

func (h *HashIndex) remove(row types.Row, id RowID) {
	key := row[h.col].GroupKey()
	ids := h.entries[key]
	for i, existing := range ids {
		if existing == id {
			h.entries[key] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

func (h *HashIndex) lookup(v types.Value) []RowID {
	return append([]RowID(nil), h.entries[v.GroupKey()]...)
}

func (h *HashIndex) clear() { h.entries = make(map[string][]RowID) }
