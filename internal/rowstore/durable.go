package rowstore

import (
	"sort"

	"idaax/internal/types"
)

// TableSnapshot is a point-in-time image of a heap table for checkpointing.
// It must cover tombstoned rows too: row ids are heap positions, and redo
// records replayed on top of the snapshot address rows by id.
type TableSnapshot struct {
	Schema  types.Schema
	Rows    []types.Row
	Deleted []bool
	// Indexes lists the indexed column names; index contents are rebuilt on
	// restore.
	Indexes []string
}

// Snapshot captures the table. Stored rows are never mutated in place
// (updates swap the whole row), so the snapshot shares row slices and copies
// only the outer bookkeeping.
func (t *Table) Snapshot() *TableSnapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	snap := &TableSnapshot{
		Schema:  t.schema,
		Rows:    append([]types.Row(nil), t.rows...),
		Deleted: append([]bool(nil), t.deleted...),
	}
	for name := range t.indexes {
		snap.Indexes = append(snap.Indexes, name)
	}
	sort.Strings(snap.Indexes)
	return snap
}

// RestoreTable rebuilds a heap table (and its hash indexes) from a snapshot.
func RestoreTable(snap *TableSnapshot) *Table {
	t := NewTable(snap.Schema)
	t.rows = append([]types.Row(nil), snap.Rows...)
	t.deleted = append([]bool(nil), snap.Deleted...)
	for i := range t.rows {
		if t.rows[i] == nil {
			// Hole left by an uncommitted insert at crash time: keep the id
			// space but never surface the row.
			t.deleted[i] = true
			t.rows[i] = make(types.Row, t.schema.Len())
		}
		if !t.deleted[i] {
			t.live++
		}
	}
	for _, col := range snap.Indexes {
		_ = t.CreateIndex(col)
	}
	return t
}

// ---------------------------------------------------------------------------
// Redo replay. These apply committed redo images by explicit row id and are
// idempotent: replaying an op whose effect is already present (because the
// checkpoint raced ahead of the WAL cut) changes nothing.
// ---------------------------------------------------------------------------

// ApplyInsertAt places row at id, growing the heap (with tombstoned holes)
// as needed. Holes occur when a later transaction committed first: its row
// ids are beyond those of an earlier uncommitted one that never committed.
func (t *Table) ApplyInsertAt(id RowID, row types.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for int64(len(t.rows)) <= int64(id) {
		t.rows = append(t.rows, make(types.Row, t.schema.Len()))
		t.deleted = append(t.deleted, true)
	}
	if !t.deleted[id] {
		// Already applied.
		return
	}
	t.rows[id] = row.Clone()
	t.deleted[id] = false
	t.live++
	for _, idx := range t.indexes {
		idx.insert(t.rows[id], id)
	}
}

// ApplyUpdateAt overwrites the row at id with the committed after-image.
func (t *Table) ApplyUpdateAt(id RowID, row types.Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.deleted[id] {
		return
	}
	old := t.rows[id]
	validated := row.Clone()
	for _, idx := range t.indexes {
		idx.remove(old, id)
		idx.insert(validated, id)
	}
	t.rows[id] = validated
}

// ApplyDeleteAt tombstones the row at id.
func (t *Table) ApplyDeleteAt(id RowID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || int(id) >= len(t.rows) || t.deleted[id] {
		return
	}
	old := t.rows[id]
	t.deleted[id] = true
	t.live--
	for _, idx := range t.indexes {
		idx.remove(old, id)
	}
}

// Live returns the number of non-tombstoned rows.
func (t *Table) Live() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// IndexColumns returns the indexed column names, sorted.
func (t *Table) IndexColumns() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for name := range t.indexes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
