package rowstore

import (
	"testing"

	"idaax/internal/types"
)

func schema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "V", Kind: types.KindFloat},
	)
}

func TestInsertGetUpdateDelete(t *testing.T) {
	tab := NewTable(schema())
	id1, err := tab.Insert(types.Row{types.NewInt(1), types.NewFloat(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := tab.Insert(types.Row{types.NewInt(2), types.NewFloat(2.5)})
	if tab.RowCount() != 2 {
		t.Fatalf("count = %d", tab.RowCount())
	}
	row, ok := tab.Get(id1)
	if !ok || row[1].Float != 1.5 {
		t.Fatalf("get: %v %v", row, ok)
	}
	old, err := tab.Update(id1, types.Row{types.NewInt(1), types.NewFloat(9)})
	if err != nil || old[1].Float != 1.5 {
		t.Fatalf("update old image: %v %v", old, err)
	}
	deleted, ok := tab.Delete(id2)
	if !ok || deleted[0].Int != 2 {
		t.Fatalf("delete: %v %v", deleted, ok)
	}
	if _, ok := tab.Get(id2); ok {
		t.Fatal("deleted row still visible")
	}
	if _, ok := tab.Delete(id2); ok {
		t.Fatal("double delete should fail")
	}
	if _, err := tab.Update(id2, types.Row{types.NewInt(2), types.NewFloat(1)}); err == nil {
		t.Fatal("update of deleted row should fail")
	}
	if _, err := tab.Insert(types.Row{types.Null(), types.NewFloat(1)}); err != nil {
		// NOT NULL enforced
	} else {
		t.Fatal("NOT NULL should be enforced")
	}
}

func TestScanSnapshotTruncate(t *testing.T) {
	tab := NewTable(schema())
	for i := 0; i < 10; i++ {
		_, _ = tab.Insert(types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i))})
	}
	_, _ = tab.Delete(3)
	count := 0
	_ = tab.Scan(func(id RowID, row types.Row) error { count++; return nil })
	if count != 9 {
		t.Fatalf("scan visited %d rows", count)
	}
	snap := tab.SnapshotRows()
	if len(snap) != 9 {
		t.Fatalf("snapshot has %d rows", len(snap))
	}
	// Snapshots are isolated from later updates.
	_, _ = tab.Update(0, types.Row{types.NewInt(0), types.NewFloat(99)})
	if snap[0][1].Float == 99 {
		t.Fatal("snapshot should not observe later updates")
	}
	if n := tab.Truncate(); n != 9 {
		t.Fatalf("truncate removed %d", n)
	}
	if tab.RowCount() != 0 {
		t.Fatal("truncate incomplete")
	}
}

func TestHashIndex(t *testing.T) {
	tab := NewTable(schema())
	for i := 0; i < 100; i++ {
		_, _ = tab.Insert(types.Row{types.NewInt(int64(i % 10)), types.NewFloat(float64(i))})
	}
	if err := tab.CreateIndex("ID"); err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("NOPE"); err == nil {
		t.Fatal("index on unknown column should fail")
	}
	if !tab.HasIndex("id") {
		t.Fatal("index missing")
	}
	ids, ok := tab.LookupIndex("ID", types.NewInt(3))
	if !ok || len(ids) != 10 {
		t.Fatalf("lookup: %d ids, %v", len(ids), ok)
	}
	// Index maintenance on delete and update.
	_, _ = tab.Delete(ids[0])
	ids, _ = tab.LookupIndex("ID", types.NewInt(3))
	if len(ids) != 9 {
		t.Fatalf("after delete: %d ids", len(ids))
	}
	_, _ = tab.Update(ids[0], types.Row{types.NewInt(77), types.NewFloat(0)})
	if got, _ := tab.LookupIndex("ID", types.NewInt(77)); len(got) != 1 {
		t.Fatalf("after update: %d ids", len(got))
	}
}
