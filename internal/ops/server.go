// Package ops is the read-only operations HTTP server: Prometheus metrics,
// health and readiness probes, the structured event journal, the query
// history, the fleet capacity view and the Go profiling endpoints. It depends
// only on the obs packages — the federation layer hands it closures over its
// own surfaces — so it carries no query-engine code and can never mutate
// state.
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/obs/health"
)

// Source is everything the server serves, expressed as read-only closures so
// the package stays decoupled from the federation layer.
type Source struct {
	// MetricsText renders the registry in Prometheus exposition format.
	MetricsText func() string
	// Health aggregates the component checks into the fleet verdict.
	Health func() health.Report
	// Events is the structured event journal (may be nil).
	Events *eventlog.Log
	// Queries returns the n most recent statements, newest first; slow
	// restricts to statements that crossed the slow-query threshold.
	Queries func(n int, slow bool) []obs.QueryRecord
	// Fleet returns the fleet capacity view.
	Fleet func() obs.FleetResources
}

// Server is the operations HTTP server. Create with NewServer, start with
// Start, stop with Close (graceful: in-flight requests get shutdownTimeout to
// finish).
type Server struct {
	addr string
	src  Source

	httpSrv *http.Server
	ln      net.Listener
}

// shutdownTimeout bounds how long Close waits for in-flight requests.
const shutdownTimeout = 5 * time.Second

// NewServer builds a server for addr (e.g. ":8080", "127.0.0.1:0").
func NewServer(addr string, src Source) *Server {
	s := &Server{addr: addr, src: src}
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the route table as a plain http.Handler, so tests can drive
// the endpoints through httptest without opening a socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/fleet", s.handleFleet)
	// The profiling endpoints are registered explicitly: the server runs its
	// own mux, never http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return readOnly(mux)
}

// readOnly rejects anything but GET and HEAD: every endpoint is a view, so
// the ops port can be exposed without write risk.
func readOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "ops server is read-only", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Start binds the listener and serves in the background. It returns once the
// address is bound (so Addr is valid), or with the bind error.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("ops: listen %s: %w", s.addr, err)
	}
	s.ln = ln
	if s.src.Events != nil {
		s.src.Events.Emitf(eventlog.TypeOpsServer, eventlog.Info, "", "",
			"ops server listening on "+ln.Addr().String())
	}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound address (useful with ":0"); empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the server down, waiting up to shutdownTimeout for
// in-flight requests. Safe to call more than once and before Start.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := s.httpSrv.Shutdown(ctx)
	if s.src.Events != nil {
		s.src.Events.Emitf(eventlog.TypeOpsServer, eventlog.Info, "", "", "ops server stopped")
	}
	return err
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"/metrics":      "Prometheus exposition of every counter, gauge and latency summary",
		"/healthz":      "fleet health report; 503 when any component is unhealthy",
		"/readyz":       "readiness; 503 unless every component is healthy",
		"/events":       "structured event journal, newest first (?n=, ?severity=WARN, ?type=)",
		"/queries":      "query history, newest first (?n=, ?slow=1)",
		"/fleet":        "per-member resource accounting and capacity skew",
		"/debug/pprof/": "Go runtime profiles",
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var text string
	if s.src.MetricsText != nil {
		text = s.src.MetricsText()
	}
	_, _ = w.Write([]byte(text))
}

func (s *Server) report() health.Report {
	if s.src.Health == nil {
		return health.Report{}
	}
	return s.src.Health()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := s.report()
	status := http.StatusOK
	if !rep.Healthy() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rep := s.report()
	status := http.StatusOK
	if !rep.Ready() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := intParam(r, "n", 100)
	var f eventlog.Filter
	if sev := r.URL.Query().Get("severity"); sev != "" {
		parsed, ok := eventlog.ParseSeverity(sev)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown severity %q (use INFO, WARN or ERROR)", sev), http.StatusBadRequest)
			return
		}
		f.MinSeverity = parsed
	}
	f.Type = strings.TrimSpace(r.URL.Query().Get("type"))
	evs := s.src.Events.Recent(n, f)
	if evs == nil {
		evs = []eventlog.Event{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// queryView is the JSON shape of one history entry: stable lowercase names
// and elapsed in milliseconds (obs.QueryRecord itself carries Go-side types).
type queryView struct {
	Seq       int64   `json:"seq"`
	SQL       string  `json:"sql"`
	User      string  `json:"user"`
	Class     string  `json:"class"`
	Routed    string  `json:"routed"`
	Start     string  `json:"start"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Rows      int     `json:"rows"`
	Err       string  `json:"error,omitempty"`
	Slow      bool    `json:"slow"`
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	n := intParam(r, "n", 50)
	slow := r.URL.Query().Get("slow") != ""
	var recs []obs.QueryRecord
	if s.src.Queries != nil {
		recs = s.src.Queries(n, slow)
	}
	views := make([]queryView, len(recs))
	for i, rec := range recs {
		views[i] = queryView{
			Seq:       rec.Seq,
			SQL:       rec.SQL,
			User:      rec.User,
			Class:     rec.Class,
			Routed:    rec.Routed,
			Start:     rec.Start.Format(time.RFC3339Nano),
			ElapsedMS: float64(rec.Elapsed) / float64(time.Millisecond),
			Rows:      rec.Rows,
			Err:       rec.Err,
			Slow:      rec.Slow(),
		}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var fr obs.FleetResources
	if s.src.Fleet != nil {
		fr = s.src.Fleet()
	}
	writeJSON(w, http.StatusOK, fr)
}
