package ops

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/obs/health"
)

func testSource(t *health.Tracker, log *eventlog.Log) Source {
	reg := obs.NewRegistry()
	reg.Counter("test_total").Inc()
	return Source{
		MetricsText: reg.Text,
		Health:      t.Report,
		Events:      log,
		Queries: func(n int, slow bool) []obs.QueryRecord {
			recs := []obs.QueryRecord{
				{Seq: 2, SQL: "SELECT 2", User: "U", Class: "select", Start: time.Now(), Elapsed: 250 * time.Millisecond, Trace: "slow"},
				{Seq: 1, SQL: "SELECT 1", User: "U", Class: "select", Start: time.Now(), Elapsed: time.Millisecond},
			}
			if slow {
				return recs[:1]
			}
			return recs
		},
		Fleet: func() obs.FleetResources {
			return obs.AggregateFleet([]obs.StoreResources{
				{Member: "A", Bytes: 100, Rows: 10, Tables: 1},
				{Member: "B", Bytes: 300, Rows: 30, Tables: 1},
			})
		},
	}
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestMetricsEndpoint(t *testing.T) {
	srv := NewServer(":0", testSource(health.NewTracker(), eventlog.New(8)))
	rec := get(t, srv.Handler(), "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "test_total 1") {
		t.Fatalf("missing counter sample:\n%s", body)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

func TestHealthzFlips(t *testing.T) {
	tr := health.NewTracker()
	tr.Register("ok", func() health.Probe { return health.Ok("") })
	srv := NewServer(":0", testSource(tr, nil))
	h := srv.Handler()

	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("healthy /readyz = %d", rec.Code)
	}

	// Degraded: /healthz stays 200 (still serving), /readyz flips 503.
	tr.SetOverride("ok", health.Degrade("wobbly"))
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("degraded /healthz = %d", rec.Code)
	}
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d", rec.Code)
	}

	// Unhealthy: both 503, and the component detail is in the JSON.
	tr.SetOverride("ok", health.Fail("down"))
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz = %d", rec.Code)
	}
	var rep health.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if rep.Status != health.Unhealthy || len(rep.Components) != 1 || rep.Components[0].Detail != "down" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestEventsEndpointFilters(t *testing.T) {
	log := eventlog.New(16)
	log.Emitf(eventlog.TypeMemberAdded, eventlog.Info, "S1", "", "joined")
	log.Emitf(eventlog.TypeCDCLagHigh, eventlog.Warn, "", "T", "lag")
	log.Emitf(eventlog.TypeRebalanceFailed, eventlog.Error, "S2", "", "boom")
	srv := NewServer(":0", testSource(health.NewTracker(), log))
	h := srv.Handler()

	var evs []eventlog.Event
	rec := get(t, h, "/events")
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("events body: %v", err)
	}
	if len(evs) != 3 || evs[0].Type != eventlog.TypeRebalanceFailed {
		t.Fatalf("events = %+v", evs)
	}

	rec = get(t, h, "/events?severity=WARN&n=10")
	evs = nil
	_ = json.Unmarshal(rec.Body.Bytes(), &evs)
	if len(evs) != 2 {
		t.Fatalf("warn events = %+v", evs)
	}

	rec = get(t, h, "/events?type="+eventlog.TypeCDCLagHigh)
	evs = nil
	_ = json.Unmarshal(rec.Body.Bytes(), &evs)
	if len(evs) != 1 || evs[0].Table != "T" {
		t.Fatalf("typed events = %+v", evs)
	}

	if rec := get(t, h, "/events?severity=BOGUS"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus severity = %d", rec.Code)
	}
}

func TestQueriesAndFleetEndpoints(t *testing.T) {
	srv := NewServer(":0", testSource(health.NewTracker(), nil))
	h := srv.Handler()

	var qs []map[string]any
	rec := get(t, h, "/queries")
	if err := json.Unmarshal(rec.Body.Bytes(), &qs); err != nil {
		t.Fatalf("queries body: %v", err)
	}
	if len(qs) != 2 || qs[0]["sql"] != "SELECT 2" || qs[0]["slow"] != true {
		t.Fatalf("queries = %+v", qs)
	}
	rec = get(t, h, "/queries?slow=1")
	qs = nil
	_ = json.Unmarshal(rec.Body.Bytes(), &qs)
	if len(qs) != 1 {
		t.Fatalf("slow queries = %+v", qs)
	}

	var fleet obs.FleetResources
	rec = get(t, h, "/fleet")
	if err := json.Unmarshal(rec.Body.Bytes(), &fleet); err != nil {
		t.Fatalf("fleet body: %v", err)
	}
	if len(fleet.Members) != 2 || fleet.TotalBytes != 400 || fleet.MaxMemberBytes != 300 {
		t.Fatalf("fleet = %+v", fleet)
	}
	if fleet.SkewPct != 50 {
		t.Fatalf("skew = %v", fleet.SkewPct)
	}
}

func TestReadOnlyGuardAndIndex(t *testing.T) {
	srv := NewServer(":0", testSource(health.NewTracker(), eventlog.New(4)))
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader("x"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d", rec.Code)
	}
	for _, method := range []string{http.MethodPut, http.MethodDelete} {
		req := httptest.NewRequest(method, "/events", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s /events = %d", method, rec.Code)
		}
	}

	if rec := get(t, h, "/"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/healthz") {
		t.Fatalf("index = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", rec.Code)
	}
	if rec := get(t, h, "/debug/pprof/"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index = %d", rec.Code)
	}
}

func TestStartServeClose(t *testing.T) {
	log := eventlog.New(8)
	srv := NewServer("127.0.0.1:0", testSource(health.NewTracker(), log))
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /healthz = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
	evs := log.Recent(0, eventlog.Filter{Type: eventlog.TypeOpsServer})
	if len(evs) < 2 {
		t.Fatalf("expected start+stop events, got %+v", evs)
	}
}
