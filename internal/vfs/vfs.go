// Package vfs abstracts the handful of filesystem operations the durability
// layer needs — sequential file creation, fsync, atomic rename, directory
// listing — behind an interface so tests can substitute a crash-injecting
// in-memory filesystem (internal/testutil/crashfs) for the real one.
//
// The surface is deliberately tiny and write-append oriented: the WAL and
// segment writers only ever create new files and append to them, never seek
// or rewrite, which keeps both the OS implementation and the crash model
// simple.
package vfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"syscall"
)

// File is a sequentially-written file. Writes append at the end; Sync makes
// everything written so far durable.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem slice the durability layer uses. Paths are
// forward-slash relative paths rooted at the store directory.
type FS interface {
	// Create creates (or truncates) a file for sequential writing.
	Create(name string) (File, error)
	// ReadFile returns the full contents of a file.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the entry names in a directory, sorted. A missing
	// directory returns an empty list, not an error.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file. Removing a missing file is not an error.
	Remove(name string) error
	// RemoveAll deletes a directory tree. Missing is not an error.
	RemoveAll(dir string) error
	// SyncDir makes directory entries (created files, renames, removals)
	// durable.
	SyncDir(dir string) error
}

// OS returns an FS rooted at dir on the real filesystem.
func OS(dir string) FS { return osFS{root: dir} }

type osFS struct{ root string }

func (f osFS) path(name string) string { return filepath.Join(f.root, filepath.FromSlash(name)) }

func (f osFS) Create(name string) (File, error) {
	p := f.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	return os.OpenFile(p, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (f osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(f.path(name)) }

func (f osFS) MkdirAll(dir string) error { return os.MkdirAll(f.path(dir), 0o755) }

func (f osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(f.path(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (f osFS) Rename(oldname, newname string) error {
	return os.Rename(f.path(oldname), f.path(newname))
}

func (f osFS) Remove(name string) error {
	err := os.Remove(f.path(name))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

func (f osFS) RemoveAll(dir string) error { return os.RemoveAll(f.path(dir)) }

func (f osFS) SyncDir(dir string) error {
	d, err := os.Open(f.path(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer d.Close()
	// Directory fsync returns EINVAL on filesystems that do not support it;
	// that is advisory, not fatal.
	if err := d.Sync(); err != nil && !errors.Is(err, fs.ErrInvalid) && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
