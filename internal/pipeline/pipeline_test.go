package pipeline

import (
	"testing"

	"idaax/internal/federation"
	"idaax/internal/workload"
)

func setupSystem(t *testing.T, orders int) (*federation.Coordinator, *federation.Session) {
	t.Helper()
	coord := federation.NewCoordinator(federation.Config{AcceleratorName: "IDAA1", Slices: 2})
	s := coord.Session("SYSADM")
	mustExec := func(sql string) {
		if _, err := s.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE customers (customer_id BIGINT NOT NULL, name VARCHAR(32), region VARCHAR(16), segment VARCHAR(16), age BIGINT, income DOUBLE, since TIMESTAMP)")
	mustExec("CREATE TABLE orders (order_id BIGINT NOT NULL, customer_id BIGINT NOT NULL, product VARCHAR(16), quantity BIGINT, amount DOUBLE, order_ts TIMESTAMP)")
	if _, err := coord.BulkInsert("SYSADM", "CUSTOMERS", workload.Customers(orders/10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.BulkInsert("SYSADM", "ORDERS", workload.Orders(orders, orders/10, 2)); err != nil {
		t.Fatal(err)
	}
	mustExec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'CUSTOMERS,ORDERS')")
	mustExec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'CUSTOMERS,ORDERS')")
	return coord, s
}

func TestPipelineModesProduceIdenticalResultsAndDifferentMovement(t *testing.T) {
	const orders = 3000
	stages := ChurnFeaturePipeline("P")

	results := map[Materialization]*Report{}
	finalCounts := map[Materialization]string{}
	for _, mode := range []Materialization{MaterializeDB2, MaterializeAOT} {
		coord, session := setupSystem(t, orders)
		runner := NewRunner(coord, session, "IDAA1")
		report, err := runner.Run(stages, mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(report.Stages) != 4 || report.TotalRows == 0 {
			t.Fatalf("%s: unexpected report %+v", mode, report)
		}
		results[mode] = report
		res, err := session.Query("SELECT COUNT(*) FROM P_STG4_FEATURES")
		if err != nil {
			t.Fatal(err)
		}
		finalCounts[mode] = res.Rows[0][0].AsString()
	}

	if finalCounts[MaterializeDB2] != finalCounts[MaterializeAOT] {
		t.Fatalf("modes disagree on the final result: %v", finalCounts)
	}
	db2Rep, aotRep := results[MaterializeDB2], results[MaterializeAOT]
	if db2Rep.RowsMovedToAcc == 0 || db2Rep.ReplicationRows == 0 {
		t.Fatalf("DB2-materialised pipeline should move data: %+v", db2Rep)
	}
	if aotRep.RowsMovedToAcc != 0 || aotRep.RowsMovedToDB2 != 0 || aotRep.ReplicationRows != 0 {
		t.Fatalf("AOT pipeline should not move data across systems: %+v", aotRep)
	}
	if db2Rep.TotalRows != aotRep.TotalRows {
		t.Fatalf("intermediate row counts differ: %d vs %d", db2Rep.TotalRows, aotRep.TotalRows)
	}
}

func TestPipelineRunLocalOnly(t *testing.T) {
	coord, session := setupSystem(t, 1000)
	if _, err := session.Exec("SET CURRENT QUERY ACCELERATION = NONE"); err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(coord, session, "IDAA1")
	report, err := runner.RunLocalOnly(ChurnFeaturePipeline("L"))
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplicationRows != 0 || report.RowsMovedToAcc != 0 {
		t.Fatalf("local-only run should not touch the accelerator: %+v", report)
	}
	res, err := session.Query("SELECT COUNT(*) FROM L_STG4_FEATURES")
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed != "DB2" {
		t.Fatalf("final table should be DB2-resident, query ran on %s", res.Routed)
	}
}

func TestPipelineIsRerunnable(t *testing.T) {
	coord, session := setupSystem(t, 1000)
	runner := NewRunner(coord, session, "IDAA1")
	if _, err := runner.Run(ChurnFeaturePipeline("R"), MaterializeAOT); err != nil {
		t.Fatal(err)
	}
	// Second run drops and recreates the stage targets.
	if _, err := runner.Run(ChurnFeaturePipeline("R"), MaterializeAOT); err != nil {
		t.Fatalf("second run failed: %v", err)
	}
}
