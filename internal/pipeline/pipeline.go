// Package pipeline runs multi-stage transformation pipelines of the kind SPSS
// Modeler and similar predictive-analytics tools generate: a chain of SQL
// statements where each stage materialises an intermediate table that feeds
// the next stage. The runner supports two materialisation strategies so the
// benefit of accelerator-only tables can be measured directly:
//
//   - MaterializeDB2 (the pre-AOT baseline): every stage result is written to
//     a regular DB2 table and must be replicated to the accelerator before the
//     next stage can use it there;
//   - MaterializeAOT (the paper's contribution): every stage result is written
//     to an accelerator-only table and never leaves the accelerator.
package pipeline

import (
	"fmt"
	"strings"
	"time"

	"idaax/internal/federation"
	"idaax/internal/types"
)

// Materialization selects where intermediate stage results live.
type Materialization int

const (
	// MaterializeDB2 writes stage outputs to regular DB2 tables and reloads
	// them into the accelerator before dependent stages run there.
	MaterializeDB2 Materialization = iota
	// MaterializeAOT writes stage outputs to accelerator-only tables.
	MaterializeAOT
)

// String names the strategy.
func (m Materialization) String() string {
	if m == MaterializeAOT {
		return "ACCELERATOR-ONLY"
	}
	return "DB2-MATERIALIZED"
}

// Stage is one step of a pipeline. The stage's query is executed and its
// result is materialised under Target with the declared schema.
type Stage struct {
	// Name identifies the stage in reports.
	Name string
	// Query is the SELECT producing the stage output. Earlier stages are
	// referenced by their Target names.
	Query string
	// Target is the table the stage materialises into.
	Target string
	// Columns declares the target schema as "NAME TYPE" pairs; it must match
	// the query's output arity.
	Columns []string
}

// Runner executes pipelines against a coordinator session.
type Runner struct {
	session *federation.Session
	coord   *federation.Coordinator
	// Accelerator is the accelerator used for AOT materialisation and reloads.
	Accelerator string
}

// NewRunner creates a pipeline runner. The session's user needs the privileges
// required by the stage queries.
func NewRunner(coord *federation.Coordinator, session *federation.Session, accelerator string) *Runner {
	if accelerator == "" {
		accelerator = coord.DefaultAccelerator()
	}
	return &Runner{session: session, coord: coord, Accelerator: accelerator}
}

// StageReport describes one executed stage.
type StageReport struct {
	Stage        string
	Target       string
	Rows         int
	Elapsed      time.Duration
	RowsToAccel  int64
	RowsFromAcc  int64
	Materialized string
}

// Report summarises a pipeline run.
type Report struct {
	Mode            Materialization
	Stages          []StageReport
	TotalRows       int
	Elapsed         time.Duration
	RowsMovedToAcc  int64
	RowsMovedToDB2  int64
	ReplicationRows int64
}

// Run executes the stages in order with the chosen materialisation strategy
// and returns a movement/latency report. Existing stage targets are dropped
// first so runs are repeatable.
func (r *Runner) Run(stages []Stage, mode Materialization) (*Report, error) {
	return r.run(stages, mode, true)
}

// RunLocalOnly executes the stages entirely in DB2: stage results are
// materialised in DB2 tables and are NOT added to or reloaded on the
// accelerator. It is the "no accelerator at all" baseline of the ablation
// experiment.
func (r *Runner) RunLocalOnly(stages []Stage) (*Report, error) {
	return r.run(stages, MaterializeDB2, false)
}

func (r *Runner) run(stages []Stage, mode Materialization, reloadToAccelerator bool) (*Report, error) {
	report := &Report{Mode: mode}
	start := time.Now()
	baselineMetrics := r.coord.Metrics()
	baselineRepl := r.coord.Repl.Stats()

	for _, stage := range stages {
		if err := r.dropTarget(stage.Target); err != nil {
			return nil, err
		}
	}

	for _, stage := range stages {
		stageStart := time.Now()
		before := r.coord.Metrics()

		if err := r.createTarget(stage, mode); err != nil {
			return nil, fmt.Errorf("pipeline: stage %s: %w", stage.Name, err)
		}
		res, err := r.session.Exec(fmt.Sprintf("INSERT INTO %s %s", stage.Target, stage.Query))
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %s: %w", stage.Name, err)
		}
		// In the DB2-materialisation baseline the stage output must be copied
		// to the accelerator before an accelerated successor stage can read it
		// there (ACCEL_ADD_TABLES + ACCEL_LOAD_TABLES round trip).
		if mode == MaterializeDB2 && reloadToAccelerator {
			if _, err := r.session.Exec(fmt.Sprintf("CALL SYSPROC.ACCEL_ADD_TABLES('%s', '%s')", r.Accelerator, stage.Target)); err != nil {
				return nil, fmt.Errorf("pipeline: stage %s: %w", stage.Name, err)
			}
			if _, err := r.session.Exec(fmt.Sprintf("CALL SYSPROC.ACCEL_LOAD_TABLES('%s', '%s')", r.Accelerator, stage.Target)); err != nil {
				return nil, fmt.Errorf("pipeline: stage %s: %w", stage.Name, err)
			}
		}

		after := r.coord.Metrics()
		report.Stages = append(report.Stages, StageReport{
			Stage:        stage.Name,
			Target:       types.NormalizeName(stage.Target),
			Rows:         res.RowsAffected,
			Elapsed:      time.Since(stageStart),
			RowsToAccel:  after.RowsMovedToAccel - before.RowsMovedToAccel,
			RowsFromAcc:  after.RowsMovedToDB2 - before.RowsMovedToDB2,
			Materialized: mode.String(),
		})
		report.TotalRows += res.RowsAffected
	}

	final := r.coord.Metrics()
	finalRepl := r.coord.Repl.Stats()
	report.Elapsed = time.Since(start)
	report.RowsMovedToAcc = final.RowsMovedToAccel - baselineMetrics.RowsMovedToAccel
	report.RowsMovedToDB2 = final.RowsMovedToDB2 - baselineMetrics.RowsMovedToDB2
	report.ReplicationRows = (finalRepl.RowsFullLoaded + finalRepl.RowsIncremental) - (baselineRepl.RowsFullLoaded + baselineRepl.RowsIncremental)
	return report, nil
}

func (r *Runner) createTarget(stage Stage, mode Materialization) error {
	cols := strings.Join(stage.Columns, ", ")
	var ddl string
	if mode == MaterializeAOT {
		ddl = fmt.Sprintf("CREATE TABLE %s (%s) IN ACCELERATOR %s", stage.Target, cols, r.Accelerator)
	} else {
		ddl = fmt.Sprintf("CREATE TABLE %s (%s)", stage.Target, cols)
	}
	_, err := r.session.Exec(ddl)
	return err
}

func (r *Runner) dropTarget(target string) error {
	_, err := r.session.Exec("DROP TABLE IF EXISTS " + target)
	return err
}

// ChurnFeaturePipeline returns the four-stage customer/orders feature pipeline
// used by the E1/E7 experiments and the elt_pipeline example: filter recent
// orders, aggregate per customer, join demographics, derive model features.
func ChurnFeaturePipeline(prefix string) []Stage {
	p := strings.ToUpper(prefix)
	return []Stage{
		{
			Name:   "filter_orders",
			Target: p + "_STG1_RECENT_ORDERS",
			Columns: []string{
				"ORDER_ID BIGINT", "CUSTOMER_ID BIGINT", "PRODUCT VARCHAR(16)",
				"QUANTITY BIGINT", "AMOUNT DOUBLE",
			},
			Query: "SELECT order_id, customer_id, product, quantity, amount FROM orders WHERE amount > 50",
		},
		{
			Name:   "aggregate_per_customer",
			Target: p + "_STG2_CUST_AGG",
			Columns: []string{
				"CUSTOMER_ID BIGINT", "ORDER_COUNT BIGINT", "TOTAL_AMOUNT DOUBLE", "AVG_AMOUNT DOUBLE", "MAX_AMOUNT DOUBLE",
			},
			Query: "SELECT customer_id, COUNT(*), SUM(amount), AVG(amount), MAX(amount) FROM " + p + "_STG1_RECENT_ORDERS GROUP BY customer_id",
		},
		{
			Name:   "join_demographics",
			Target: p + "_STG3_JOINED",
			Columns: []string{
				"CUSTOMER_ID BIGINT", "REGION VARCHAR(16)", "SEGMENT VARCHAR(16)", "AGE BIGINT",
				"INCOME DOUBLE", "ORDER_COUNT BIGINT", "TOTAL_AMOUNT DOUBLE", "AVG_AMOUNT DOUBLE",
			},
			Query: "SELECT c.customer_id, c.region, c.segment, c.age, c.income, a.order_count, a.total_amount, a.avg_amount " +
				"FROM customers c INNER JOIN " + p + "_STG2_CUST_AGG a ON c.customer_id = a.customer_id",
		},
		{
			Name:   "derive_features",
			Target: p + "_STG4_FEATURES",
			Columns: []string{
				"CUSTOMER_ID BIGINT", "AGE BIGINT", "INCOME DOUBLE", "ORDER_COUNT BIGINT",
				"TOTAL_AMOUNT DOUBLE", "SPEND_RATIO DOUBLE", "HIGH_VALUE BIGINT",
			},
			Query: "SELECT customer_id, age, income, order_count, total_amount, total_amount / income, " +
				"CASE WHEN total_amount > 1000 THEN 1 ELSE 0 END FROM " + p + "_STG3_JOINED WHERE income > 0",
		},
	}
}
