// Package catalog implements the DB2-side system catalog. It owns table
// metadata, the acceleration state of each table (not accelerated, accelerated
// copy, accelerator-only), the nickname proxies for accelerator-only tables,
// and all privileges. Keeping governance metadata here and only here mirrors
// the paper's design: "ensuring data governance aspects like privilege
// management on DB2".
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"idaax/internal/types"
)

// TableKind distinguishes the three storage states a table can be in.
type TableKind int

const (
	// KindRegular is an ordinary DB2 table with no accelerator copy.
	KindRegular TableKind = iota
	// KindAccelerated is a DB2 table with a replicated copy on an accelerator.
	KindAccelerated
	// KindAcceleratorOnly is an accelerator-only table (AOT): data lives only
	// in the accelerator, DB2 keeps this proxy entry (the "nickname").
	KindAcceleratorOnly
)

// String names the table kind for SHOW TABLES and diagnostics.
func (k TableKind) String() string {
	switch k {
	case KindRegular:
		return "REGULAR"
	case KindAccelerated:
		return "ACCELERATED"
	case KindAcceleratorOnly:
		return "ACCELERATOR-ONLY"
	default:
		return "UNKNOWN"
	}
}

// Table is one catalog entry.
type Table struct {
	Name        string
	Schema      types.Schema
	Kind        TableKind
	Accelerator string // accelerator name for accelerated tables and AOTs
	DistKey     string // distribution column on the accelerator ("" = round robin)
	Owner       string
	// ReplicationEnabled marks accelerated tables that receive incremental
	// updates (as opposed to full-reload only).
	ReplicationEnabled bool
}

// Clone returns a copy safe to hand out to callers.
func (t *Table) Clone() *Table {
	cp := *t
	cp.Schema = types.Schema{Columns: append([]types.Column(nil), t.Schema.Columns...)}
	return &cp
}

// Privilege names follow DB2: SELECT, INSERT, UPDATE, DELETE, EXECUTE, ALL.
const (
	PrivSelect  = "SELECT"
	PrivInsert  = "INSERT"
	PrivUpdate  = "UPDATE"
	PrivDelete  = "DELETE"
	PrivExecute = "EXECUTE"
	PrivAll     = "ALL"
)

// PublicGrantee is the pseudo-user every session matches.
const PublicGrantee = "PUBLIC"

// AdminUser has implicit authority on everything (SYSADM).
const AdminUser = "SYSADM"

// ErrNotFound is returned when a table is not in the catalog.
type ErrNotFound struct{ Table string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("catalog: table %s does not exist", e.Table) }

// ErrExists is returned when creating a table that already exists.
type ErrExists struct{ Table string }

func (e *ErrExists) Error() string { return fmt.Sprintf("catalog: table %s already exists", e.Table) }

// ErrNotAuthorized is returned by privilege checks.
type ErrNotAuthorized struct {
	User      string
	Privilege string
	Object    string
}

func (e *ErrNotAuthorized) Error() string {
	return fmt.Sprintf("catalog: user %s lacks %s privilege on %s", e.User, e.Privilege, e.Object)
}

// Catalog is the concurrent catalog store.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// grants[grantee][object][privilege] = true. Objects are table names or
	// "PROCEDURE <name>" for EXECUTE grants.
	grants map[string]map[string]map[string]bool
	// accelerators known to the system (paired via CALL ACCEL_ADD_ACCELERATOR
	// or configuration).
	accelerators map[string]bool
	// onChange is notified after every mutation, outside the lock (durability).
	onChange func()
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:       make(map[string]*Table),
		grants:       make(map[string]map[string]map[string]bool),
		accelerators: make(map[string]bool),
	}
}

// ---------------------------------------------------------------------------
// Accelerators
// ---------------------------------------------------------------------------

// AddAccelerator registers (pairs) an accelerator by name.
func (c *Catalog) AddAccelerator(name string) {
	defer c.note()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.accelerators[types.NormalizeName(name)] = true
}

// HasAccelerator reports whether the named accelerator is paired.
func (c *Catalog) HasAccelerator(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.accelerators[types.NormalizeName(name)]
}

// Accelerators returns the sorted list of paired accelerator names.
func (c *Catalog) Accelerators() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.accelerators))
	for name := range c.accelerators {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// CreateTable adds a table entry.
func (c *Catalog) CreateTable(t *Table) error {
	defer c.note()
	c.mu.Lock()
	defer c.mu.Unlock()
	name := types.NormalizeName(t.Name)
	if _, ok := c.tables[name]; ok {
		return &ErrExists{Table: name}
	}
	cp := t.Clone()
	cp.Name = name
	c.tables[name] = cp
	return nil
}

// DropTable removes a table entry and all grants on it.
func (c *Catalog) DropTable(name string) error {
	defer c.note()
	c.mu.Lock()
	defer c.mu.Unlock()
	name = types.NormalizeName(name)
	if _, ok := c.tables[name]; !ok {
		return &ErrNotFound{Table: name}
	}
	delete(c.tables, name)
	for _, objects := range c.grants {
		delete(objects, name)
	}
	return nil
}

// Table returns a copy of the catalog entry for name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[types.NormalizeName(name)]
	if !ok {
		return nil, &ErrNotFound{Table: types.NormalizeName(name)}
	}
	return t.Clone(), nil
}

// HasTable reports whether the table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[types.NormalizeName(name)]
	return ok
}

// Tables returns all entries sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetKind updates a table's acceleration state (e.g. when ACCEL_ADD_TABLES
// turns a regular table into an accelerated one).
func (c *Catalog) SetKind(name string, kind TableKind, accelerator string) error {
	defer c.note()
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[types.NormalizeName(name)]
	if !ok {
		return &ErrNotFound{Table: types.NormalizeName(name)}
	}
	t.Kind = kind
	t.Accelerator = types.NormalizeName(accelerator)
	return nil
}

// SetReplication toggles incremental replication for an accelerated table.
func (c *Catalog) SetReplication(name string, enabled bool) error {
	defer c.note()
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[types.NormalizeName(name)]
	if !ok {
		return &ErrNotFound{Table: types.NormalizeName(name)}
	}
	t.ReplicationEnabled = enabled
	return nil
}

// ---------------------------------------------------------------------------
// Privileges (governance stays in DB2)
// ---------------------------------------------------------------------------

// Grant adds privileges on an object to a grantee.
func (c *Catalog) Grant(grantee, object string, privileges ...string) {
	defer c.note()
	c.mu.Lock()
	defer c.mu.Unlock()
	grantee = types.NormalizeName(grantee)
	object = types.NormalizeName(object)
	if c.grants[grantee] == nil {
		c.grants[grantee] = make(map[string]map[string]bool)
	}
	if c.grants[grantee][object] == nil {
		c.grants[grantee][object] = make(map[string]bool)
	}
	for _, p := range privileges {
		c.grants[grantee][object][strings.ToUpper(p)] = true
	}
}

// Revoke removes privileges on an object from a grantee.
func (c *Catalog) Revoke(grantee, object string, privileges ...string) {
	defer c.note()
	c.mu.Lock()
	defer c.mu.Unlock()
	grantee = types.NormalizeName(grantee)
	object = types.NormalizeName(object)
	objs, ok := c.grants[grantee]
	if !ok {
		return
	}
	privs, ok := objs[object]
	if !ok {
		return
	}
	for _, p := range privileges {
		p = strings.ToUpper(p)
		if p == PrivAll {
			delete(objs, object)
			return
		}
		delete(privs, p)
	}
}

// HasPrivilege reports whether user holds the privilege on the object, either
// directly, via PUBLIC, via an ALL grant, or by being the admin or the owner.
func (c *Catalog) HasPrivilege(user, object, privilege string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	user = types.NormalizeName(user)
	object = types.NormalizeName(object)
	privilege = strings.ToUpper(privilege)
	if user == AdminUser {
		return true
	}
	if t, ok := c.tables[object]; ok && types.NormalizeName(t.Owner) == user && user != "" {
		return true
	}
	for _, grantee := range []string{user, PublicGrantee} {
		if privs, ok := c.grants[grantee][object]; ok {
			if privs[privilege] || privs[PrivAll] {
				return true
			}
		}
	}
	return false
}

// CheckPrivilege returns an ErrNotAuthorized error when the user lacks the
// privilege; it is the single enforcement point used before any delegation to
// the accelerator.
func (c *Catalog) CheckPrivilege(user, object, privilege string) error {
	if c.HasPrivilege(user, object, privilege) {
		return nil
	}
	return &ErrNotAuthorized{User: types.NormalizeName(user), Privilege: strings.ToUpper(privilege), Object: types.NormalizeName(object)}
}

// GrantsFor lists the (object, privilege) pairs a grantee holds, sorted.
func (c *Catalog) GrantsFor(grantee string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for object, privs := range c.grants[types.NormalizeName(grantee)] {
		for p := range privs {
			out = append(out, object+":"+p)
		}
	}
	sort.Strings(out)
	return out
}

// ProcedureObject builds the catalog object name under which EXECUTE
// privileges on analytics procedures are recorded.
func ProcedureObject(procName string) string {
	return "PROCEDURE " + types.NormalizeName(procName)
}
