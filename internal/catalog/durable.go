package catalog

import (
	"encoding/json"
	"sort"

	"idaax/internal/types"
)

// Durability: the catalog serialises to one JSON snapshot journaled in full
// on every DDL mutation. DDL is rare and the catalog small, so last-writer-
// wins snapshots keep replay trivially idempotent — no per-mutation redo
// records to order.

type snapshotGrant struct {
	Grantee    string   `json:"grantee"`
	Object     string   `json:"object"`
	Privileges []string `json:"privileges"`
}

type snapshot struct {
	Tables       []*Table        `json:"tables"`
	Grants       []snapshotGrant `json:"grants"`
	Accelerators []string        `json:"accelerators"`
}

// SetOnChange installs a callback invoked after every catalog mutation (DDL,
// grants, accelerator pairing), outside the catalog lock. The federation
// coordinator journals a full snapshot from it.
func (c *Catalog) SetOnChange(fn func()) {
	c.mu.Lock()
	c.onChange = fn
	c.mu.Unlock()
}

// note runs the change callback; every mutator calls it after unlocking.
func (c *Catalog) note() {
	c.mu.RLock()
	fn := c.onChange
	c.mu.RUnlock()
	if fn != nil {
		fn()
	}
}

// Snapshot serialises the full catalog to JSON.
func (c *Catalog) Snapshot() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var s snapshot
	for _, t := range c.tables {
		s.Tables = append(s.Tables, t.Clone())
	}
	sort.Slice(s.Tables, func(i, j int) bool { return s.Tables[i].Name < s.Tables[j].Name })
	for grantee, objects := range c.grants {
		for object, privs := range objects {
			g := snapshotGrant{Grantee: grantee, Object: object}
			for p := range privs {
				g.Privileges = append(g.Privileges, p)
			}
			sort.Strings(g.Privileges)
			s.Grants = append(s.Grants, g)
		}
	}
	sort.Slice(s.Grants, func(i, j int) bool {
		if s.Grants[i].Grantee != s.Grants[j].Grantee {
			return s.Grants[i].Grantee < s.Grants[j].Grantee
		}
		return s.Grants[i].Object < s.Grants[j].Object
	})
	for name := range c.accelerators {
		s.Accelerators = append(s.Accelerators, name)
	}
	sort.Strings(s.Accelerators)
	data, err := json.Marshal(&s)
	if err != nil {
		// The snapshot type contains nothing unmarshalable.
		panic("catalog: snapshot marshal: " + err.Error())
	}
	return data
}

// Restore replaces the catalog content with a snapshot produced by Snapshot.
// The change callback is not invoked.
func (c *Catalog) Restore(data []byte) error {
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables = make(map[string]*Table, len(s.Tables))
	for _, t := range s.Tables {
		c.tables[types.NormalizeName(t.Name)] = t.Clone()
	}
	c.grants = make(map[string]map[string]map[string]bool)
	for _, g := range s.Grants {
		if c.grants[g.Grantee] == nil {
			c.grants[g.Grantee] = make(map[string]map[string]bool)
		}
		privs := make(map[string]bool, len(g.Privileges))
		for _, p := range g.Privileges {
			privs[p] = true
		}
		c.grants[g.Grantee][g.Object] = privs
	}
	c.accelerators = make(map[string]bool, len(s.Accelerators))
	for _, name := range s.Accelerators {
		c.accelerators[name] = true
	}
	return nil
}
