package catalog

import (
	"errors"
	"testing"

	"idaax/internal/types"
)

func schema() types.Schema {
	return types.NewSchema(types.Column{Name: "ID", Kind: types.KindInt})
}

func TestTableLifecycle(t *testing.T) {
	c := New()
	if err := c.CreateTable(&Table{Name: "t1", Schema: schema(), Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(&Table{Name: "T1", Schema: schema()}); err == nil {
		t.Fatal("duplicate (case-insensitive) create should fail")
	}
	var exists *ErrExists
	if err := c.CreateTable(&Table{Name: "t1", Schema: schema()}); !errors.As(err, &exists) {
		t.Fatalf("expected ErrExists, got %v", err)
	}
	meta, err := c.Table("t1")
	if err != nil || meta.Name != "T1" || meta.Kind != KindRegular {
		t.Fatalf("lookup: %+v, %v", meta, err)
	}
	// Returned entries are copies.
	meta.Kind = KindAcceleratorOnly
	again, _ := c.Table("T1")
	if again.Kind != KindRegular {
		t.Fatal("catalog entry mutated through returned copy")
	}
	if err := c.SetKind("T1", KindAccelerated, "IDAA1"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetReplication("T1", true); err != nil {
		t.Fatal(err)
	}
	updated, _ := c.Table("t1")
	if updated.Kind != KindAccelerated || updated.Accelerator != "IDAA1" || !updated.ReplicationEnabled {
		t.Fatalf("update lost: %+v", updated)
	}
	if len(c.Tables()) != 1 {
		t.Fatal("tables list")
	}
	if err := c.DropTable("t1"); err != nil {
		t.Fatal(err)
	}
	var notFound *ErrNotFound
	if err := c.DropTable("t1"); !errors.As(err, &notFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestAccelerators(t *testing.T) {
	c := New()
	if c.HasAccelerator("IDAA1") {
		t.Fatal("unexpected accelerator")
	}
	c.AddAccelerator("idaa1")
	c.AddAccelerator("IDAA2")
	if !c.HasAccelerator("IDAA1") {
		t.Fatal("accelerator not registered")
	}
	if got := c.Accelerators(); len(got) != 2 || got[0] != "IDAA1" {
		t.Fatalf("accelerators: %v", got)
	}
}

func TestPrivileges(t *testing.T) {
	c := New()
	_ = c.CreateTable(&Table{Name: "data", Schema: schema(), Owner: "owner1"})

	if c.HasPrivilege("bob", "data", PrivSelect) {
		t.Fatal("bob should have no privilege yet")
	}
	// Admin and owner always pass.
	if !c.HasPrivilege(AdminUser, "data", PrivDelete) || !c.HasPrivilege("owner1", "data", PrivInsert) {
		t.Fatal("admin/owner implicit authority missing")
	}
	c.Grant("bob", "data", PrivSelect, PrivInsert)
	if !c.HasPrivilege("BOB", "DATA", "select") {
		t.Fatal("grant not case-insensitive")
	}
	if c.HasPrivilege("bob", "data", PrivDelete) {
		t.Fatal("ungranted privilege should fail")
	}
	c.Revoke("bob", "data", PrivSelect)
	if c.HasPrivilege("bob", "data", PrivSelect) {
		t.Fatal("revoke ineffective")
	}
	if !c.HasPrivilege("bob", "data", PrivInsert) {
		t.Fatal("revoke removed too much")
	}
	// ALL grant and PUBLIC.
	c.Grant("carol", "data", PrivAll)
	if !c.HasPrivilege("carol", "data", PrivUpdate) {
		t.Fatal("ALL grant should cover UPDATE")
	}
	c.Grant(PublicGrantee, "data", PrivSelect)
	if !c.HasPrivilege("mallory", "data", PrivSelect) {
		t.Fatal("PUBLIC grant should apply to everyone")
	}
	var denied *ErrNotAuthorized
	if err := c.CheckPrivilege("mallory", "data", PrivDelete); !errors.As(err, &denied) {
		t.Fatalf("expected ErrNotAuthorized, got %v", err)
	}
	// Revoking ALL wipes the object grants.
	c.Revoke("carol", "data", PrivAll)
	if c.HasPrivilege("carol", "data", PrivUpdate) {
		t.Fatal("revoke ALL ineffective")
	}
	// Dropping a table removes its grants.
	c.Grant("dave", "data", PrivSelect)
	_ = c.DropTable("data")
	_ = c.CreateTable(&Table{Name: "data", Schema: schema(), Owner: "other"})
	if c.HasPrivilege("dave", "data", PrivSelect) {
		t.Fatal("grants should not survive drop/recreate")
	}
}

func TestGrantsForAndProcedureObject(t *testing.T) {
	c := New()
	c.Grant("eve", ProcedureObject("idax.kmeans"), PrivExecute)
	got := c.GrantsFor("eve")
	if len(got) != 1 || got[0] != "PROCEDURE IDAX.KMEANS:EXECUTE" {
		t.Fatalf("grants for eve: %v", got)
	}
	if !c.HasPrivilege("eve", ProcedureObject("IDAX.KMEANS"), PrivExecute) {
		t.Fatal("procedure grant lookup failed")
	}
}
