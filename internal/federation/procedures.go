package federation

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"idaax/internal/catalog"
	"idaax/internal/core"
	"idaax/internal/expr"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// sortedKeys returns a map's keys in sorted order for stable result sets.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// registerBuiltinProcedures installs the administrative stored procedures that
// mirror the SYSPROC.ACCEL_* interface of the real product. They are the
// supported way for applications to manage acceleration without leaving SQL.
func (c *Coordinator) registerBuiltinProcedures() {
	register := func(name, desc string, fn func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error)) {
		c.Procs.MustRegister(&core.FuncProcedure{ProcName: name, Desc: desc, Fn: fn}, true)
	}

	register("SYSPROC.ACCEL_ADD_TABLES",
		"Add DB2 tables to an accelerator (creates empty shadow copies): (accelerator, 'T1,T2'[, distKey])",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			accName := core.ArgStringDefault(args, 0, c.DefaultAccelerator())
			list, err := core.ArgString(args, 1, "table list")
			if err != nil {
				return nil, err
			}
			distKey := core.ArgStringDefault(args, 2, "")
			var added []string
			for _, table := range core.SplitList(list) {
				if err := ctx.Catalog.CheckPrivilege(ctx.User, table, catalog.PrivSelect); err != nil {
					return nil, err
				}
				if err := c.Repl.AddTable(table, accName, distKey); err != nil {
					return nil, err
				}
				added = append(added, table)
			}
			return &core.ProcResult{Message: fmt.Sprintf("added %s to %s", strings.Join(added, ","), types.NormalizeName(accName)), OutputTables: added}, nil
		})

	register("SYSPROC.ACCEL_LOAD_TABLES",
		"Fully (re)load accelerated tables from DB2: (accelerator, 'T1,T2')",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			list, err := core.ArgString(args, 1, "table list")
			if err != nil {
				// Allow single-argument form: ACCEL_LOAD_TABLES('T1,T2').
				list, err = core.ArgString(args, 0, "table list")
				if err != nil {
					return nil, err
				}
			}
			total := 0
			for _, table := range core.SplitList(list) {
				if err := ctx.Catalog.CheckPrivilege(ctx.User, table, catalog.PrivSelect); err != nil {
					return nil, err
				}
				n, err := c.Repl.FullLoad(table)
				if err != nil {
					return nil, err
				}
				c.addMoved(true, n)
				total += n
			}
			return &core.ProcResult{RowsAffected: total, Message: fmt.Sprintf("loaded %d rows", total)}, nil
		})

	register("SYSPROC.ACCEL_REMOVE_TABLES",
		"Remove tables from an accelerator: (accelerator, 'T1,T2')",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			list, err := core.ArgString(args, 1, "table list")
			if err != nil {
				list, err = core.ArgString(args, 0, "table list")
				if err != nil {
					return nil, err
				}
			}
			for _, table := range core.SplitList(list) {
				meta, err := ctx.Catalog.Table(table)
				if err != nil {
					return nil, err
				}
				if types.NormalizeName(meta.Owner) != ctx.User && ctx.User != catalog.AdminUser {
					return nil, &catalog.ErrNotAuthorized{User: ctx.User, Privilege: "CONTROL", Object: meta.Name}
				}
				if err := c.Repl.RemoveTable(table); err != nil {
					return nil, err
				}
			}
			return &core.ProcResult{Message: "tables removed from accelerator"}, nil
		})

	register("SYSPROC.ACCEL_SET_TABLES_REPLICATION",
		"Enable or disable incremental replication: (accelerator, 'T1,T2', 'ON'|'OFF')",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			list, err := core.ArgString(args, 1, "table list")
			if err != nil {
				return nil, err
			}
			mode := strings.ToUpper(core.ArgStringDefault(args, 2, "ON"))
			for _, table := range core.SplitList(list) {
				if mode == "ON" || mode == "ENABLE" {
					if err := c.Repl.EnableReplication(table); err != nil {
						return nil, err
					}
				} else {
					if err := c.Repl.DisableReplication(table); err != nil {
						return nil, err
					}
				}
			}
			return &core.ProcResult{Message: "replication " + mode}, nil
		})

	register("SYSPROC.ACCEL_SYNC_TABLES",
		"Apply pending captured changes to accelerated tables: (accelerator[, 'T1,T2'])",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			list := core.ArgStringDefault(args, 1, "")
			total := 0
			if list == "" {
				n, err := c.Repl.SyncAll()
				if err != nil {
					return nil, err
				}
				total = n
			} else {
				for _, table := range core.SplitList(list) {
					n, err := c.Repl.ApplyPending(table)
					if err != nil {
						return nil, err
					}
					total += n
				}
			}
			c.addMoved(true, total)
			return &core.ProcResult{RowsAffected: total, Message: fmt.Sprintf("applied %d changes", total)}, nil
		})

	register("SYSPROC.ACCEL_ANALYZE",
		"Rebuild planner statistics (row counts, NDV, min/max, histograms) for accelerated tables: (accelerator, 'T1,T2')",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			list, err := core.ArgString(args, 1, "table list")
			if err != nil {
				// Allow single-argument form: ACCEL_ANALYZE('T1,T2').
				list, err = core.ArgString(args, 0, "table list")
				if err != nil {
					return nil, err
				}
			}
			total := 0
			var analyzed []string
			for _, table := range core.SplitList(list) {
				if err := ctx.Catalog.CheckPrivilege(ctx.User, table, catalog.PrivSelect); err != nil {
					return nil, err
				}
				meta, err := ctx.Catalog.Table(table)
				if err != nil {
					return nil, err
				}
				if meta.Kind == catalog.KindRegular {
					return nil, fmt.Errorf("federation: ACCEL_ANALYZE %s: the table has no accelerator copy", meta.Name)
				}
				a, err := c.Accelerator(meta.Accelerator)
				if err != nil {
					return nil, err
				}
				n, err := a.Analyze(meta.Name)
				if err != nil {
					return nil, err
				}
				total += n
				analyzed = append(analyzed, meta.Name)
			}
			return &core.ProcResult{
				RowsAffected: total,
				Message:      fmt.Sprintf("analyzed %s: %d rows", strings.Join(analyzed, ","), total),
				OutputTables: analyzed,
			}, nil
		})

	register("SYSPROC.ACCEL_REBALANCE",
		"Rebalance a shard group's rows onto the current member set and wait for convergence: (group)",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			if ctx.User != catalog.AdminUser && ctx.User != types.NormalizeName(c.cfg.AdminUser) {
				return nil, &catalog.ErrNotAuthorized{User: ctx.User, Privilege: "CONTROL", Object: "REBALANCE"}
			}
			group := core.ArgStringDefault(args, 0, c.cfg.ShardGroup)
			router, err := c.ShardGroup(group)
			if err != nil {
				return nil, err
			}
			before := router.RebalanceStatus()
			router.StartRebalance()
			if err := router.WaitRebalance(); err != nil {
				return nil, err
			}
			after := router.RebalanceStatus()
			moved := after.RowsMigrated - before.RowsMigrated
			return &core.ProcResult{
				RowsAffected: int(moved),
				Message: fmt.Sprintf("rebalanced %s: %d rows migrated in %d batches (epoch %d)",
					types.NormalizeName(group), moved, after.Batches-before.Batches, after.Epoch),
			}, nil
		})

	register("SYSPROC.ACCEL_GRANT_PROCEDURE",
		"Grant EXECUTE on an analytics procedure: (procedure, user)",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			proc, err := core.ArgString(args, 0, "procedure")
			if err != nil {
				return nil, err
			}
			user, err := core.ArgString(args, 1, "user")
			if err != nil {
				return nil, err
			}
			if ctx.User != catalog.AdminUser && ctx.User != types.NormalizeName(c.cfg.AdminUser) {
				return nil, &catalog.ErrNotAuthorized{User: ctx.User, Privilege: catalog.PrivExecute, Object: catalog.ProcedureObject(proc)}
			}
			if err := c.Procs.GrantExecute(proc, user); err != nil {
				return nil, err
			}
			return &core.ProcResult{Message: "granted EXECUTE on " + types.NormalizeName(proc) + " to " + types.NormalizeName(user)}, nil
		})

	register("SYSPROC.ACCEL_REVOKE_PROCEDURE",
		"Revoke EXECUTE on an analytics procedure: (procedure, user)",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			proc, err := core.ArgString(args, 0, "procedure")
			if err != nil {
				return nil, err
			}
			user, err := core.ArgString(args, 1, "user")
			if err != nil {
				return nil, err
			}
			if ctx.User != catalog.AdminUser && ctx.User != types.NormalizeName(c.cfg.AdminUser) {
				return nil, &catalog.ErrNotAuthorized{User: ctx.User, Privilege: catalog.PrivExecute, Object: catalog.ProcedureObject(proc)}
			}
			c.Procs.RevokeExecute(proc, user)
			return &core.ProcResult{Message: "revoked"}, nil
		})

	register("SYSPROC.ACCEL_METRICS",
		"Snapshot the metrics registry — counters, gauges and latency histograms (count/mean/p50/p95/p99) — as one result set",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			rep := c.Obs.Snapshot()
			rel := &relalg.Relation{Cols: []expr.InputColumn{
				{Name: "METRIC", Kind: types.KindString},
				{Name: "KIND", Kind: types.KindString},
				{Name: "VALUE", Kind: types.KindFloat},
			}}
			add := func(name, kind string, v float64) {
				rel.Rows = append(rel.Rows, types.Row{
					types.NewString(name), types.NewString(kind), types.NewFloat(v),
				})
			}
			for _, k := range sortedKeys(rep.Counters) {
				add(k, "counter", float64(rep.Counters[k]))
			}
			for _, k := range sortedKeys(rep.Gauges) {
				add(k, "gauge", float64(rep.Gauges[k]))
			}
			for _, k := range sortedKeys(rep.Histograms) {
				h := rep.Histograms[k]
				ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
				add(k+"_count", "histogram", float64(h.Count))
				add(k+"_mean_ms", "histogram", ms(h.Mean))
				add(k+"_p50_ms", "histogram", ms(h.P50))
				add(k+"_p95_ms", "histogram", ms(h.P95))
				add(k+"_p99_ms", "histogram", ms(h.P99))
			}
			return &core.ProcResult{
				Relation: rel,
				Message:  fmt.Sprintf("%d metric samples", len(rel.Rows)),
			}, nil
		})

	register("SYSPROC.ACCEL_QUERY_HISTORY",
		"Return the most recent statements from the query history, newest first: ([n[, 'SLOW']])",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			n := int(core.ArgInt(args, 0, 50))
			slowOnly := strings.EqualFold(core.ArgStringDefault(args, 1, ""), "SLOW")
			var recs []obs.QueryRecord
			if slowOnly {
				recs = c.History.SlowQueries(n)
			} else {
				recs = c.History.Recent(n)
			}
			rel := &relalg.Relation{Cols: []expr.InputColumn{
				{Name: "SEQ", Kind: types.KindInt},
				{Name: "SQL", Kind: types.KindString},
				{Name: "USERID", Kind: types.KindString},
				{Name: "CLASS", Kind: types.KindString},
				{Name: "ROUTED_TO", Kind: types.KindString},
				{Name: "ELAPSED_MS", Kind: types.KindFloat},
				{Name: "ROWS", Kind: types.KindInt},
				{Name: "ERROR", Kind: types.KindString},
				{Name: "SLOW", Kind: types.KindInt},
			}}
			for _, r := range recs {
				slow := int64(0)
				if r.Slow() {
					slow = 1
				}
				rel.Rows = append(rel.Rows, types.Row{
					types.NewInt(r.Seq),
					types.NewString(r.SQL),
					types.NewString(r.User),
					types.NewString(r.Class),
					types.NewString(r.Routed),
					types.NewFloat(float64(r.Elapsed) / float64(time.Millisecond)),
					types.NewInt(int64(r.Rows)),
					types.NewString(r.Err),
					types.NewInt(slow),
				})
			}
			return &core.ProcResult{
				Relation: rel,
				Message:  fmt.Sprintf("%d statements", len(recs)),
			}, nil
		})

	register("SYSPROC.ACCEL_EVENTS",
		"Return the most recent fleet events from the journal, newest first: ([n[, 'WARN'|'ERROR']])",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			n := int(core.ArgInt(args, 0, 50))
			var f eventlog.Filter
			if s := core.ArgStringDefault(args, 1, ""); s != "" {
				sev, ok := eventlog.ParseSeverity(s)
				if !ok {
					return nil, fmt.Errorf("federation: ACCEL_EVENTS: unknown severity %q (use INFO, WARN or ERROR)", s)
				}
				f.MinSeverity = sev
			}
			evs := c.Events.Recent(n, f)
			rel := &relalg.Relation{Cols: []expr.InputColumn{
				{Name: "SEQ", Kind: types.KindInt},
				{Name: "TIME", Kind: types.KindString},
				{Name: "TYPE", Kind: types.KindString},
				{Name: "SEVERITY", Kind: types.KindString},
				{Name: "SHARD", Kind: types.KindString},
				{Name: "TABNAME", Kind: types.KindString},
				{Name: "MESSAGE", Kind: types.KindString},
			}}
			for _, e := range evs {
				rel.Rows = append(rel.Rows, types.Row{
					types.NewInt(e.Seq),
					types.NewString(e.Time.Format(time.RFC3339Nano)),
					types.NewString(e.Type),
					types.NewString(e.Severity.String()),
					types.NewString(e.Shard),
					types.NewString(e.Table),
					types.NewString(e.Message),
				})
			}
			return &core.ProcResult{
				Relation: rel,
				Message:  fmt.Sprintf("%d events", len(evs)),
			}, nil
		})

	register("SYSPROC.ACCEL_TABLE_INFO",
		"Describe a table's acceleration state: (table)",
		func(ctx *core.ProcContext, args []types.Value) (*core.ProcResult, error) {
			table, err := core.ArgString(args, 0, "table")
			if err != nil {
				return nil, err
			}
			meta, err := ctx.Catalog.Table(table)
			if err != nil {
				return nil, err
			}
			db2Rows := int64(-1)
			if st, err := c.DB2.Storage(meta.Name); err == nil {
				db2Rows = int64(st.RowCount())
			}
			accelRows := int64(-1)
			if meta.Kind != catalog.KindRegular {
				if a, err := c.Accelerator(meta.Accelerator); err == nil {
					if n, err := a.RowCount(ctx.TxnID, meta.Name); err == nil {
						accelRows = int64(n)
					}
				}
			}
			pending := int64(c.Repl.PendingChanges(meta.Name))
			msg := fmt.Sprintf("%s kind=%s accelerator=%s db2_rows=%d accel_rows=%d pending_changes=%d",
				meta.Name, meta.Kind, meta.Accelerator, db2Rows, accelRows, pending)
			return &core.ProcResult{Message: msg}, nil
		})
}
