// Package federation is the glue between DB2 and the attached accelerators:
// it owns statement routing (query offload and DML delegation), propagation of
// the DB2 transaction context to the accelerator, the commit handshake across
// both systems, privilege enforcement before any delegation, and the
// data-movement accounting the evaluation reports.
package federation

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/core"
	"idaax/internal/db2"
	"idaax/internal/durable"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/obs/health"
	"idaax/internal/replication"
	"idaax/internal/shard"
	"idaax/internal/types"
	"idaax/internal/vfs"
)

// AcceleratorSpec describes one accelerator of a multi-accelerator fleet.
type AcceleratorSpec struct {
	// Name is the accelerator's pairing name.
	Name string
	// Slices is the accelerator's scan parallelism (default: number of CPUs).
	Slices int
}

// Config configures a coordinator and its accelerator fleet.
type Config struct {
	// AcceleratorName is the name of the default accelerator (default "IDAA1").
	// Ignored when Accelerators is set (the first spec becomes the default).
	AcceleratorName string
	// Slices is the default accelerator's scan parallelism (default: number of
	// CPUs).
	Slices int
	// Accelerators, when non-empty, pairs a fleet of accelerators instead of
	// the single default one. With two or more entries a shard group named
	// ShardGroup is registered over the whole fleet, so tables created IN
	// ACCELERATOR <ShardGroup> are hash- or round-robin-partitioned across
	// every member.
	Accelerators []AcceleratorSpec
	// ShardGroup names the sharded virtual accelerator (default "SHARDS").
	ShardGroup string
	// LockTimeout bounds DB2 lock waits.
	LockTimeout time.Duration
	// AdminUser is granted implicit authority (default catalog.AdminUser).
	AdminUser string
	// QueryHistorySize caps the in-memory query history ring buffer
	// (default 256 statements; the slow-query log keeps the last 64).
	QueryHistorySize int
	// SlowQueryThreshold is the statement latency at or above which the full
	// trace is captured into the slow-query log (default 100ms; a negative
	// value disables the slow log).
	SlowQueryThreshold time.Duration
	// EventLogSize caps the structured event journal ring (default 1024
	// events; the oldest are overwritten).
	EventLogSize int
	// WatchdogInterval is the health watchdog's evaluation period (default
	// 1s). The watchdog is created armed but not started; the ops server (or
	// an explicit Watchdog.Start) runs it.
	WatchdogInterval time.Duration
	// CDCLagThreshold is the replication apply lag at which the watchdog
	// degrades the replication component and journals a cdc_lag_high event
	// (default 5s).
	CDCLagThreshold time.Duration

	// DataDir, when non-empty, makes the system durable: a write-ahead log
	// and checkpoint segments live under this directory, and OpenCoordinator
	// recovers from them. Empty (and FS nil) means purely in-memory.
	DataDir string
	// FS overrides the filesystem the durable store writes through (tests
	// inject a crash-simulating filesystem). When set, DataDir may be empty.
	FS vfs.FS
	// FsyncPolicy is "always" (default; fsync before a commit returns),
	// "grouped" (background fsync every GroupCommitInterval) or "never"
	// (fsync only on rotate/close).
	FsyncPolicy string
	// GroupCommitInterval is the background fsync period for the "grouped"
	// policy (default 2ms).
	GroupCommitInterval time.Duration
	// CheckpointWALBytes triggers an automatic checkpoint when the WAL grows
	// past this many bytes (default 64 MiB; negative disables the trigger).
	CheckpointWALBytes int64
	// RecoveryParallelism bounds how many tables recovery loads concurrently
	// (default: number of CPUs).
	RecoveryParallelism int

	// fleetConfigured records that the user listed more than one accelerator,
	// before duplicate names were folded away (set by withDefaults).
	fleetConfigured bool
}

func (c Config) withDefaults() Config {
	if len(c.Accelerators) > 0 {
		// Normalise the fleet: fold names like the catalog does, give unnamed
		// entries positional defaults, and drop duplicates (the first entry
		// with a name wins) so a sloppy config cannot register the same
		// accelerator as two shards. The pre-dedup length still decides
		// whether a shard group is registered (see NewCoordinator), so a
		// duplicated name cannot silently turn the fleet config into a
		// groupless single accelerator.
		fleet := len(c.Accelerators) > 1
		seen := make(map[string]bool, len(c.Accelerators))
		specs := make([]AcceleratorSpec, 0, len(c.Accelerators))
		for i, spec := range c.Accelerators {
			name := types.NormalizeName(spec.Name)
			if name == "" {
				name = fmt.Sprintf("IDAA%d", i+1)
			}
			if seen[name] {
				continue
			}
			seen[name] = true
			specs = append(specs, AcceleratorSpec{Name: name, Slices: spec.Slices})
		}
		c.Accelerators = specs
		c.AcceleratorName = specs[0].Name
		c.fleetConfigured = fleet
	}
	if c.AcceleratorName == "" {
		c.AcceleratorName = "IDAA1"
	}
	if c.ShardGroup == "" {
		c.ShardGroup = "SHARDS"
	}
	if c.AdminUser == "" {
		c.AdminUser = catalog.AdminUser
	}
	if c.QueryHistorySize <= 0 {
		c.QueryHistorySize = 256
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 100 * time.Millisecond
	}
	if c.EventLogSize <= 0 {
		c.EventLogSize = 1024
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = time.Second
	}
	if c.CDCLagThreshold <= 0 {
		c.CDCLagThreshold = 5 * time.Second
	}
	return c
}

// Metrics counts cross-system data movement and routing decisions. They are
// the quantities experiment E1/E3/E5 report.
type Metrics struct {
	RowsMovedToAccel     int64 // rows shipped DB2 -> accelerator by statements
	RowsMovedToDB2       int64 // rows shipped accelerator -> DB2 by statements
	RowsReturnedToClient int64
	StatementsOffloaded  int64
	StatementsLocal      int64
	ProcedureCalls       int64
}

// Coordinator wires the DB2 engine, the accelerators, replication, the AOT
// manager and the procedure framework together.
type Coordinator struct {
	cfg Config

	DB2 *db2.Engine
	cat *catalog.Catalog

	// accelMu guards accels: the fleet is elastic (ALTER ACCELERATOR ... ADD
	// MEMBER pairs accelerators at runtime), so lookups and registrations can
	// race.
	accelMu sync.RWMutex
	accels  map[string]accel.Backend

	AOTs  *core.AOTManager
	Procs *core.Framework
	Repl  *replication.Replicator

	// Obs is the metrics registry: statement latency histograms and error
	// counters land here, and the long-standing movement/routing/accelerator/
	// rebalance/replication counters are mirrored in as callback gauges so one
	// snapshot (or the Prometheus-style text endpoint) covers everything.
	Obs *obs.Registry
	// History is the query history ring buffer plus the slow-query log
	// (statements at or above the threshold, with their full trace).
	History *obs.History
	// Events is the fleet's structured event journal: membership changes,
	// rebalance lifecycle, CDC lag crossings, slow queries, scatter and scan
	// failures, transaction aborts and watchdog verdict flips all land here
	// (SQL surface: CALL SYSPROC.ACCEL_EVENTS; HTTP surface: /events).
	Events *eventlog.Log
	// Health aggregates per-component health checks into the fleet verdict
	// served by the ops server's /healthz and /readyz endpoints.
	Health *health.Tracker
	// Watchdog evaluates temporal degradation rules (rebalance no-progress,
	// CDC lag, slow-query spikes, scan-error streaks) against Health. It is
	// created armed but not started; the ops server starts it.
	Watchdog *health.Watchdog

	metrics Metrics

	// store is the durability engine (nil for an in-memory coordinator). It
	// is set once during OpenCoordinator, before any traffic.
	store    *durable.Store
	recovery RecoveryStats
	// recentMu guards recentCommits, the bounded ring of recently committed
	// DB2 transaction ids each checkpoint carries for in-doubt resolution.
	recentMu      sync.Mutex
	recentCommits []int64
	closeOnce     sync.Once

	// Failpoint, when non-nil, is invoked at named stages of the commit
	// handshake ("after-prepare", "after-db2-commit") and lets tests inject
	// coordinator failures between the two systems.
	Failpoint func(stage string) error
}

// NewCoordinator builds a complete system: catalog, DB2 engine, one paired
// accelerator, replication, AOT manager, procedure framework and the built-in
// SYSPROC.ACCEL_* procedures.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	cat := catalog.New()
	engine := db2.New(cat)
	if cfg.LockTimeout > 0 {
		engine.Locks.Timeout = cfg.LockTimeout
	}
	c := &Coordinator{
		cfg:    cfg,
		DB2:    engine,
		cat:    cat,
		accels: make(map[string]accel.Backend),
	}
	c.Obs = obs.NewRegistry()
	c.Events = eventlog.New(cfg.EventLogSize)
	c.Health = health.NewTracker()
	c.History = obs.NewHistory(cfg.QueryHistorySize, 64)
	c.History.SetSlowThreshold(cfg.SlowQueryThreshold)
	c.AOTs = core.NewAOTManager(cat, c)
	c.Procs = core.NewFramework(cat)
	c.Repl = replication.New(engine, c)
	if len(cfg.Accelerators) == 0 {
		c.AddAccelerator(cfg.AcceleratorName, cfg.Slices)
	} else {
		names := make([]string, len(cfg.Accelerators))
		for i, spec := range cfg.Accelerators {
			c.AddAccelerator(spec.Name, spec.Slices)
			names[i] = spec.Name
		}
		// The fleet is also addressable as one sharded backend — unless a
		// member explicitly claimed the group's name, in which case the name
		// keeps referring to that accelerator. The group is registered
		// whenever more than one accelerator was configured, even if
		// duplicate names folded the fleet down to one member, so
		// IN ACCELERATOR <group> keeps working instead of failing with a
		// misleading not-paired error.
		if _, taken := c.accels[types.NormalizeName(cfg.ShardGroup)]; cfg.fleetConfigured && !taken {
			if _, err := c.AddShardGroup(cfg.ShardGroup, names...); err != nil {
				panic(err) // unreachable: members exist and the group name is free
			}
		}
	}
	c.registerBuiltinProcedures()
	c.registerObsGauges()
	c.registerOps()
	return c
}

// Close stops the coordinator's background machinery (the health watchdog)
// and, for a durable coordinator, flushes a final checkpoint and closes the
// WAL so a clean shutdown recovers instantly and loses nothing. An active
// rebalance worker drains on its own.
func (c *Coordinator) Close() error {
	c.Watchdog.Stop()
	var err error
	c.closeOnce.Do(func() { err = c.closeDurability() })
	return err
}

// Catalog returns the shared DB2 catalog.
func (c *Coordinator) Catalog() *catalog.Catalog { return c.cat }

// AddAccelerator pairs an additional accelerator with the DB2 subsystem. It
// is idempotent for an already-paired accelerator of the same name and
// returns nil (without touching the registration) when the name belongs to a
// shard group.
func (c *Coordinator) AddAccelerator(name string, slices int) *accel.Accelerator {
	name = types.NormalizeName(name)
	c.accelMu.Lock()
	defer c.accelMu.Unlock()
	if existing, ok := c.accels[name]; ok {
		a, _ := existing.(*accel.Accelerator)
		return a // nil when the name is a shard group; never clobber it
	}
	a := accel.New(name, slices)
	if c.store != nil {
		a.SetJournal(&memberJournal{c: c, scope: name})
	}
	c.accels[name] = a
	c.cat.AddAccelerator(name)
	return a
}

// AddShardGroup registers a sharded virtual accelerator spanning the named,
// already-paired member accelerators. Tables created IN ACCELERATOR <name>
// are partitioned across every member (DISTRIBUTE BY HASH for key placement,
// round robin otherwise), queries scatter-gather over the fleet, and
// replication fans captured changes out to the owning shard.
func (c *Coordinator) AddShardGroup(name string, memberNames ...string) (*shard.Router, error) {
	name = types.NormalizeName(name)
	c.accelMu.Lock()
	defer c.accelMu.Unlock()
	if _, ok := c.accels[name]; ok {
		return nil, fmt.Errorf("federation: %s is already paired", name)
	}
	members := make([]*accel.Accelerator, len(memberNames))
	seen := make(map[string]bool, len(memberNames))
	for i, mn := range memberNames {
		mname := types.NormalizeName(mn)
		if seen[mname] {
			return nil, fmt.Errorf("federation: accelerator %s listed twice in shard group %s", mname, name)
		}
		seen[mname] = true
		b, ok := c.accels[mname]
		if !ok {
			return nil, fmt.Errorf("federation: shard group member %s is not paired", mname)
		}
		a, ok := b.(*accel.Accelerator)
		if !ok {
			return nil, fmt.Errorf("federation: shard group member %s is itself a shard group", mname)
		}
		members[i] = a
	}
	router, err := shard.NewRouter(name, members)
	if err != nil {
		return nil, err
	}
	router.SetEventLog(c.Events)
	if c.store != nil {
		router.SetJournal(multiJournal{c})
	}
	c.accels[name] = router
	c.cat.AddAccelerator(name)
	return router, nil
}

// AddShardMember grows a shard group at runtime: the named accelerator is
// paired first if unknown (with the given scan parallelism), joins the group,
// and a background rebalance starts migrating the rows it now owns. Queries
// and replication keep running throughout; callers that need the fleet to
// have converged wait with WaitRebalance on the group's router (or
// System.WaitForRebalance).
func (c *Coordinator) AddShardMember(group, member string, slices int) error {
	router, err := c.ShardGroup(group)
	if err != nil {
		return err
	}
	member = types.NormalizeName(member)
	c.accelMu.RLock()
	existing, paired := c.accels[member]
	c.accelMu.RUnlock()
	var a *accel.Accelerator
	if paired {
		var ok bool
		a, ok = existing.(*accel.Accelerator)
		if !ok {
			return fmt.Errorf("federation: %s is a shard group, not an accelerator", member)
		}
	} else {
		a = c.AddAccelerator(member, slices)
		if a == nil {
			return fmt.Errorf("federation: cannot pair %s", member)
		}
	}
	return router.AddMember(a)
}

// RemoveShardMember shrinks a shard group at runtime: the member's rows are
// drained onto the remaining shards and the member is detached from the
// group (it stays paired as a standalone accelerator). The call blocks until
// the drain completes. Shrinking a two-member group is refused — a group
// needs at least two members to shard over.
func (c *Coordinator) RemoveShardMember(group, member string) error {
	router, err := c.ShardGroup(group)
	if err != nil {
		return err
	}
	return router.RemoveMember(member)
}

// Accelerator implements core.AcceleratorProvider and
// replication.AcceleratorProvider. The returned backend is either a single
// accelerator or a shard router; callers cannot (and need not) distinguish.
func (c *Coordinator) Accelerator(name string) (accel.Backend, error) {
	if name == "" {
		name = c.cfg.AcceleratorName
	}
	c.accelMu.RLock()
	a, ok := c.accels[types.NormalizeName(name)]
	c.accelMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("federation: accelerator %s is not paired", types.NormalizeName(name))
	}
	return a, nil
}

// ShardGroup returns the shard router registered under name.
func (c *Coordinator) ShardGroup(name string) (*shard.Router, error) {
	b, err := c.Accelerator(name)
	if err != nil {
		return nil, err
	}
	router, ok := b.(*shard.Router)
	if !ok {
		return nil, fmt.Errorf("federation: %s is a single accelerator, not a shard group", b.Name())
	}
	return router, nil
}

// DefaultAccelerator implements core.AcceleratorProvider.
func (c *Coordinator) DefaultAccelerator() string { return types.NormalizeName(c.cfg.AcceleratorName) }

// Accelerators returns the paired accelerator names.
func (c *Coordinator) Accelerators() []string { return c.cat.Accelerators() }

// Metrics returns a snapshot of the movement/routing counters.
func (c *Coordinator) Metrics() Metrics {
	return Metrics{
		RowsMovedToAccel:     atomic.LoadInt64(&c.metrics.RowsMovedToAccel),
		RowsMovedToDB2:       atomic.LoadInt64(&c.metrics.RowsMovedToDB2),
		RowsReturnedToClient: atomic.LoadInt64(&c.metrics.RowsReturnedToClient),
		StatementsOffloaded:  atomic.LoadInt64(&c.metrics.StatementsOffloaded),
		StatementsLocal:      atomic.LoadInt64(&c.metrics.StatementsLocal),
		ProcedureCalls:       atomic.LoadInt64(&c.metrics.ProcedureCalls),
	}
}

// ResetMetrics zeroes the movement/routing counters (benchmark harness use).
func (c *Coordinator) ResetMetrics() {
	atomic.StoreInt64(&c.metrics.RowsMovedToAccel, 0)
	atomic.StoreInt64(&c.metrics.RowsMovedToDB2, 0)
	atomic.StoreInt64(&c.metrics.RowsReturnedToClient, 0)
	atomic.StoreInt64(&c.metrics.StatementsOffloaded, 0)
	atomic.StoreInt64(&c.metrics.StatementsLocal, 0)
	atomic.StoreInt64(&c.metrics.ProcedureCalls, 0)
}

func (c *Coordinator) addMoved(toAccel bool, n int) {
	if n <= 0 {
		return
	}
	if toAccel {
		atomic.AddInt64(&c.metrics.RowsMovedToAccel, int64(n))
	} else {
		atomic.AddInt64(&c.metrics.RowsMovedToDB2, int64(n))
	}
}

func (c *Coordinator) noteRouting(offloaded bool) {
	if offloaded {
		atomic.AddInt64(&c.metrics.StatementsOffloaded, 1)
	} else {
		atomic.AddInt64(&c.metrics.StatementsLocal, 1)
	}
}

// Session opens a new session for the given authorization id. Sessions are not
// safe for concurrent use; open one per goroutine (like one DB2 thread per
// connection).
func (c *Coordinator) Session(user string) *Session {
	return &Session{
		coord:        c,
		user:         types.NormalizeName(user),
		mode:         AccelerationEnable,
		participants: make(map[string]accel.Backend),
	}
}

func (c *Coordinator) failpoint(stage string) error {
	if c.Failpoint == nil {
		return nil
	}
	return c.Failpoint(stage)
}

// BulkInsert writes already-materialised rows into a table on behalf of a user
// under an auto-commit transaction, with the usual privilege checks and AOT
// delegation. The loader and the benchmark harness use it as their row sink;
// rows targeting an accelerator-only table go straight to the accelerator
// (the loader's "bypass DB2" path), rows targeting DB2 tables take the normal
// insert path including change capture.
func (c *Coordinator) BulkInsert(user, table string, rows []types.Row) (int, error) {
	s := c.Session(user)
	tx, done := s.stmtTxn()
	n, err := s.insertMaterialized(tx, table, rows)
	if ferr := done(err); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}
