// Package federation is the glue between DB2 and the attached accelerators:
// it owns statement routing (query offload and DML delegation), propagation of
// the DB2 transaction context to the accelerator, the commit handshake across
// both systems, privilege enforcement before any delegation, and the
// data-movement accounting the evaluation reports.
package federation

import (
	"fmt"
	"sync/atomic"
	"time"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/core"
	"idaax/internal/db2"
	"idaax/internal/replication"
	"idaax/internal/types"
)

// Config configures a coordinator and its default accelerator.
type Config struct {
	// AcceleratorName is the name of the default accelerator (default "IDAA1").
	AcceleratorName string
	// Slices is the accelerator's scan parallelism (default: number of CPUs).
	Slices int
	// LockTimeout bounds DB2 lock waits.
	LockTimeout time.Duration
	// AdminUser is granted implicit authority (default catalog.AdminUser).
	AdminUser string
}

func (c Config) withDefaults() Config {
	if c.AcceleratorName == "" {
		c.AcceleratorName = "IDAA1"
	}
	if c.AdminUser == "" {
		c.AdminUser = catalog.AdminUser
	}
	return c
}

// Metrics counts cross-system data movement and routing decisions. They are
// the quantities experiment E1/E3/E5 report.
type Metrics struct {
	RowsMovedToAccel     int64 // rows shipped DB2 -> accelerator by statements
	RowsMovedToDB2       int64 // rows shipped accelerator -> DB2 by statements
	RowsReturnedToClient int64
	StatementsOffloaded  int64
	StatementsLocal      int64
	ProcedureCalls       int64
}

// Coordinator wires the DB2 engine, the accelerators, replication, the AOT
// manager and the procedure framework together.
type Coordinator struct {
	cfg Config

	DB2    *db2.Engine
	cat    *catalog.Catalog
	accels map[string]*accel.Accelerator

	AOTs  *core.AOTManager
	Procs *core.Framework
	Repl  *replication.Replicator

	metrics Metrics

	// Failpoint, when non-nil, is invoked at named stages of the commit
	// handshake ("after-prepare", "after-db2-commit") and lets tests inject
	// coordinator failures between the two systems.
	Failpoint func(stage string) error
}

// NewCoordinator builds a complete system: catalog, DB2 engine, one paired
// accelerator, replication, AOT manager, procedure framework and the built-in
// SYSPROC.ACCEL_* procedures.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	cat := catalog.New()
	engine := db2.New(cat)
	if cfg.LockTimeout > 0 {
		engine.Locks.Timeout = cfg.LockTimeout
	}
	c := &Coordinator{
		cfg:    cfg,
		DB2:    engine,
		cat:    cat,
		accels: make(map[string]*accel.Accelerator),
	}
	c.AOTs = core.NewAOTManager(cat, c)
	c.Procs = core.NewFramework(cat)
	c.Repl = replication.New(engine, c)
	c.AddAccelerator(cfg.AcceleratorName, cfg.Slices)
	c.registerBuiltinProcedures()
	return c
}

// Catalog returns the shared DB2 catalog.
func (c *Coordinator) Catalog() *catalog.Catalog { return c.cat }

// AddAccelerator pairs an additional accelerator with the DB2 subsystem.
func (c *Coordinator) AddAccelerator(name string, slices int) *accel.Accelerator {
	name = types.NormalizeName(name)
	if existing, ok := c.accels[name]; ok {
		return existing
	}
	a := accel.New(name, slices)
	c.accels[name] = a
	c.cat.AddAccelerator(name)
	return a
}

// Accelerator implements core.AcceleratorProvider and
// replication.AcceleratorProvider.
func (c *Coordinator) Accelerator(name string) (*accel.Accelerator, error) {
	if name == "" {
		name = c.cfg.AcceleratorName
	}
	a, ok := c.accels[types.NormalizeName(name)]
	if !ok {
		return nil, fmt.Errorf("federation: accelerator %s is not paired", types.NormalizeName(name))
	}
	return a, nil
}

// DefaultAccelerator implements core.AcceleratorProvider.
func (c *Coordinator) DefaultAccelerator() string { return types.NormalizeName(c.cfg.AcceleratorName) }

// Accelerators returns the paired accelerator names.
func (c *Coordinator) Accelerators() []string { return c.cat.Accelerators() }

// Metrics returns a snapshot of the movement/routing counters.
func (c *Coordinator) Metrics() Metrics {
	return Metrics{
		RowsMovedToAccel:     atomic.LoadInt64(&c.metrics.RowsMovedToAccel),
		RowsMovedToDB2:       atomic.LoadInt64(&c.metrics.RowsMovedToDB2),
		RowsReturnedToClient: atomic.LoadInt64(&c.metrics.RowsReturnedToClient),
		StatementsOffloaded:  atomic.LoadInt64(&c.metrics.StatementsOffloaded),
		StatementsLocal:      atomic.LoadInt64(&c.metrics.StatementsLocal),
		ProcedureCalls:       atomic.LoadInt64(&c.metrics.ProcedureCalls),
	}
}

// ResetMetrics zeroes the movement/routing counters (benchmark harness use).
func (c *Coordinator) ResetMetrics() {
	atomic.StoreInt64(&c.metrics.RowsMovedToAccel, 0)
	atomic.StoreInt64(&c.metrics.RowsMovedToDB2, 0)
	atomic.StoreInt64(&c.metrics.RowsReturnedToClient, 0)
	atomic.StoreInt64(&c.metrics.StatementsOffloaded, 0)
	atomic.StoreInt64(&c.metrics.StatementsLocal, 0)
	atomic.StoreInt64(&c.metrics.ProcedureCalls, 0)
}

func (c *Coordinator) addMoved(toAccel bool, n int) {
	if n <= 0 {
		return
	}
	if toAccel {
		atomic.AddInt64(&c.metrics.RowsMovedToAccel, int64(n))
	} else {
		atomic.AddInt64(&c.metrics.RowsMovedToDB2, int64(n))
	}
}

func (c *Coordinator) noteRouting(offloaded bool) {
	if offloaded {
		atomic.AddInt64(&c.metrics.StatementsOffloaded, 1)
	} else {
		atomic.AddInt64(&c.metrics.StatementsLocal, 1)
	}
}

// Session opens a new session for the given authorization id. Sessions are not
// safe for concurrent use; open one per goroutine (like one DB2 thread per
// connection).
func (c *Coordinator) Session(user string) *Session {
	return &Session{
		coord:        c,
		user:         types.NormalizeName(user),
		mode:         AccelerationEnable,
		participants: make(map[string]*accel.Accelerator),
	}
}

func (c *Coordinator) failpoint(stage string) error {
	if c.Failpoint == nil {
		return nil
	}
	return c.Failpoint(stage)
}

// BulkInsert writes already-materialised rows into a table on behalf of a user
// under an auto-commit transaction, with the usual privilege checks and AOT
// delegation. The loader and the benchmark harness use it as their row sink;
// rows targeting an accelerator-only table go straight to the accelerator
// (the loader's "bypass DB2" path), rows targeting DB2 tables take the normal
// insert path including change capture.
func (c *Coordinator) BulkInsert(user, table string, rows []types.Row) (int, error) {
	s := c.Session(user)
	tx, done := s.stmtTxn()
	n, err := s.insertMaterialized(tx, table, rows)
	if ferr := done(err); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}
